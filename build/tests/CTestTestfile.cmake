# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/gpu_test[1]_include.cmake")
include("/root/repo/build/tests/cuda_test[1]_include.cmake")
include("/root/repo/build/tests/vgpu_test[1]_include.cmake")
include("/root/repo/build/tests/kubeshare_test[1]_include.cmake")
include("/root/repo/build/tests/k8s_test[1]_include.cmake")
include("/root/repo/build/tests/scenario_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
