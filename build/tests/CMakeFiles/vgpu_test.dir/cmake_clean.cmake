file(REMOVE_RECURSE
  "CMakeFiles/vgpu_test.dir/vgpu/frontend_hook_test.cpp.o"
  "CMakeFiles/vgpu_test.dir/vgpu/frontend_hook_test.cpp.o.d"
  "CMakeFiles/vgpu_test.dir/vgpu/isolation_property_test.cpp.o"
  "CMakeFiles/vgpu_test.dir/vgpu/isolation_property_test.cpp.o.d"
  "CMakeFiles/vgpu_test.dir/vgpu/swap_test.cpp.o"
  "CMakeFiles/vgpu_test.dir/vgpu/swap_test.cpp.o.d"
  "CMakeFiles/vgpu_test.dir/vgpu/token_backend_test.cpp.o"
  "CMakeFiles/vgpu_test.dir/vgpu/token_backend_test.cpp.o.d"
  "CMakeFiles/vgpu_test.dir/vgpu/token_churn_property_test.cpp.o"
  "CMakeFiles/vgpu_test.dir/vgpu/token_churn_property_test.cpp.o.d"
  "vgpu_test"
  "vgpu_test.pdb"
  "vgpu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vgpu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
