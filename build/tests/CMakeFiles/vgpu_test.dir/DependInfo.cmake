
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/vgpu/frontend_hook_test.cpp" "tests/CMakeFiles/vgpu_test.dir/vgpu/frontend_hook_test.cpp.o" "gcc" "tests/CMakeFiles/vgpu_test.dir/vgpu/frontend_hook_test.cpp.o.d"
  "/root/repo/tests/vgpu/isolation_property_test.cpp" "tests/CMakeFiles/vgpu_test.dir/vgpu/isolation_property_test.cpp.o" "gcc" "tests/CMakeFiles/vgpu_test.dir/vgpu/isolation_property_test.cpp.o.d"
  "/root/repo/tests/vgpu/swap_test.cpp" "tests/CMakeFiles/vgpu_test.dir/vgpu/swap_test.cpp.o" "gcc" "tests/CMakeFiles/vgpu_test.dir/vgpu/swap_test.cpp.o.d"
  "/root/repo/tests/vgpu/token_backend_test.cpp" "tests/CMakeFiles/vgpu_test.dir/vgpu/token_backend_test.cpp.o" "gcc" "tests/CMakeFiles/vgpu_test.dir/vgpu/token_backend_test.cpp.o.d"
  "/root/repo/tests/vgpu/token_churn_property_test.cpp" "tests/CMakeFiles/vgpu_test.dir/vgpu/token_churn_property_test.cpp.o" "gcc" "tests/CMakeFiles/vgpu_test.dir/vgpu/token_churn_property_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ks_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ks_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/ks_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/cuda/CMakeFiles/ks_cuda.dir/DependInfo.cmake"
  "/root/repo/build/src/vgpu/CMakeFiles/ks_vgpu.dir/DependInfo.cmake"
  "/root/repo/build/src/k8s/CMakeFiles/ks_k8s.dir/DependInfo.cmake"
  "/root/repo/build/src/kubeshare/CMakeFiles/ks_kubeshare.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ks_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/ks_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/ks_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ks_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/scenario/CMakeFiles/ks_scenario.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
