
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/k8s/apiserver_test.cpp" "tests/CMakeFiles/k8s_test.dir/k8s/apiserver_test.cpp.o" "gcc" "tests/CMakeFiles/k8s_test.dir/k8s/apiserver_test.cpp.o.d"
  "/root/repo/tests/k8s/cluster_integration_test.cpp" "tests/CMakeFiles/k8s_test.dir/k8s/cluster_integration_test.cpp.o" "gcc" "tests/CMakeFiles/k8s_test.dir/k8s/cluster_integration_test.cpp.o.d"
  "/root/repo/tests/k8s/device_plugin_test.cpp" "tests/CMakeFiles/k8s_test.dir/k8s/device_plugin_test.cpp.o" "gcc" "tests/CMakeFiles/k8s_test.dir/k8s/device_plugin_test.cpp.o.d"
  "/root/repo/tests/k8s/events_test.cpp" "tests/CMakeFiles/k8s_test.dir/k8s/events_test.cpp.o" "gcc" "tests/CMakeFiles/k8s_test.dir/k8s/events_test.cpp.o.d"
  "/root/repo/tests/k8s/kubelet_test.cpp" "tests/CMakeFiles/k8s_test.dir/k8s/kubelet_test.cpp.o" "gcc" "tests/CMakeFiles/k8s_test.dir/k8s/kubelet_test.cpp.o.d"
  "/root/repo/tests/k8s/resources_test.cpp" "tests/CMakeFiles/k8s_test.dir/k8s/resources_test.cpp.o" "gcc" "tests/CMakeFiles/k8s_test.dir/k8s/resources_test.cpp.o.d"
  "/root/repo/tests/k8s/runtime_test.cpp" "tests/CMakeFiles/k8s_test.dir/k8s/runtime_test.cpp.o" "gcc" "tests/CMakeFiles/k8s_test.dir/k8s/runtime_test.cpp.o.d"
  "/root/repo/tests/k8s/scheduler_test.cpp" "tests/CMakeFiles/k8s_test.dir/k8s/scheduler_test.cpp.o" "gcc" "tests/CMakeFiles/k8s_test.dir/k8s/scheduler_test.cpp.o.d"
  "/root/repo/tests/k8s/store_test.cpp" "tests/CMakeFiles/k8s_test.dir/k8s/store_test.cpp.o" "gcc" "tests/CMakeFiles/k8s_test.dir/k8s/store_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ks_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ks_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/ks_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/cuda/CMakeFiles/ks_cuda.dir/DependInfo.cmake"
  "/root/repo/build/src/vgpu/CMakeFiles/ks_vgpu.dir/DependInfo.cmake"
  "/root/repo/build/src/k8s/CMakeFiles/ks_k8s.dir/DependInfo.cmake"
  "/root/repo/build/src/kubeshare/CMakeFiles/ks_kubeshare.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ks_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/ks_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/ks_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ks_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/scenario/CMakeFiles/ks_scenario.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
