file(REMOVE_RECURSE
  "CMakeFiles/k8s_test.dir/k8s/apiserver_test.cpp.o"
  "CMakeFiles/k8s_test.dir/k8s/apiserver_test.cpp.o.d"
  "CMakeFiles/k8s_test.dir/k8s/cluster_integration_test.cpp.o"
  "CMakeFiles/k8s_test.dir/k8s/cluster_integration_test.cpp.o.d"
  "CMakeFiles/k8s_test.dir/k8s/device_plugin_test.cpp.o"
  "CMakeFiles/k8s_test.dir/k8s/device_plugin_test.cpp.o.d"
  "CMakeFiles/k8s_test.dir/k8s/events_test.cpp.o"
  "CMakeFiles/k8s_test.dir/k8s/events_test.cpp.o.d"
  "CMakeFiles/k8s_test.dir/k8s/kubelet_test.cpp.o"
  "CMakeFiles/k8s_test.dir/k8s/kubelet_test.cpp.o.d"
  "CMakeFiles/k8s_test.dir/k8s/resources_test.cpp.o"
  "CMakeFiles/k8s_test.dir/k8s/resources_test.cpp.o.d"
  "CMakeFiles/k8s_test.dir/k8s/runtime_test.cpp.o"
  "CMakeFiles/k8s_test.dir/k8s/runtime_test.cpp.o.d"
  "CMakeFiles/k8s_test.dir/k8s/scheduler_test.cpp.o"
  "CMakeFiles/k8s_test.dir/k8s/scheduler_test.cpp.o.d"
  "CMakeFiles/k8s_test.dir/k8s/store_test.cpp.o"
  "CMakeFiles/k8s_test.dir/k8s/store_test.cpp.o.d"
  "k8s_test"
  "k8s_test.pdb"
  "k8s_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/k8s_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
