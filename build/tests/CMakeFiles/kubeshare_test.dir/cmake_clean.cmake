file(REMOVE_RECURSE
  "CMakeFiles/kubeshare_test.dir/kubeshare/algorithm_test.cpp.o"
  "CMakeFiles/kubeshare_test.dir/kubeshare/algorithm_test.cpp.o.d"
  "CMakeFiles/kubeshare_test.dir/kubeshare/devmgr_edge_test.cpp.o"
  "CMakeFiles/kubeshare_test.dir/kubeshare/devmgr_edge_test.cpp.o.d"
  "CMakeFiles/kubeshare_test.dir/kubeshare/extensions_test.cpp.o"
  "CMakeFiles/kubeshare_test.dir/kubeshare/extensions_test.cpp.o.d"
  "CMakeFiles/kubeshare_test.dir/kubeshare/kubeshare_integration_test.cpp.o"
  "CMakeFiles/kubeshare_test.dir/kubeshare/kubeshare_integration_test.cpp.o.d"
  "CMakeFiles/kubeshare_test.dir/kubeshare/pool_test.cpp.o"
  "CMakeFiles/kubeshare_test.dir/kubeshare/pool_test.cpp.o.d"
  "CMakeFiles/kubeshare_test.dir/kubeshare/priority_test.cpp.o"
  "CMakeFiles/kubeshare_test.dir/kubeshare/priority_test.cpp.o.d"
  "kubeshare_test"
  "kubeshare_test.pdb"
  "kubeshare_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kubeshare_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
