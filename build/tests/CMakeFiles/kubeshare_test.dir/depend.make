# Empty dependencies file for kubeshare_test.
# This may be replaced when dependencies are built.
