# Empty compiler generated dependencies file for inference_service.
# This may be replaced when dependencies are built.
