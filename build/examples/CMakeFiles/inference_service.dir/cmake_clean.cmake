file(REMOVE_RECURSE
  "CMakeFiles/inference_service.dir/inference_service.cpp.o"
  "CMakeFiles/inference_service.dir/inference_service.cpp.o.d"
  "inference_service"
  "inference_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inference_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
