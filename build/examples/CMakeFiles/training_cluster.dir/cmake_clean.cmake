file(REMOVE_RECURSE
  "CMakeFiles/training_cluster.dir/training_cluster.cpp.o"
  "CMakeFiles/training_cluster.dir/training_cluster.cpp.o.d"
  "training_cluster"
  "training_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/training_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
