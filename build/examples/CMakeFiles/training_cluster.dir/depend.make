# Empty dependencies file for training_cluster.
# This may be replaced when dependencies are built.
