# Empty dependencies file for interference_antiaffinity.
# This may be replaced when dependencies are built.
