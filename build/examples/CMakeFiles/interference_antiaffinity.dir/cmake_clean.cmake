file(REMOVE_RECURSE
  "CMakeFiles/interference_antiaffinity.dir/interference_antiaffinity.cpp.o"
  "CMakeFiles/interference_antiaffinity.dir/interference_antiaffinity.cpp.o.d"
  "interference_antiaffinity"
  "interference_antiaffinity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interference_antiaffinity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
