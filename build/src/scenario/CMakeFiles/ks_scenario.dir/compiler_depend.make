# Empty compiler generated dependencies file for ks_scenario.
# This may be replaced when dependencies are built.
