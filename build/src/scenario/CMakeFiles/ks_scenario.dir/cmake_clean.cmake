file(REMOVE_RECURSE
  "CMakeFiles/ks_scenario.dir/scenario.cpp.o"
  "CMakeFiles/ks_scenario.dir/scenario.cpp.o.d"
  "libks_scenario.a"
  "libks_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ks_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
