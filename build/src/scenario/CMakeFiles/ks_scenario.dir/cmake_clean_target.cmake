file(REMOVE_RECURSE
  "libks_scenario.a"
)
