file(REMOVE_RECURSE
  "CMakeFiles/ks_baselines.dir/extender.cpp.o"
  "CMakeFiles/ks_baselines.dir/extender.cpp.o.d"
  "CMakeFiles/ks_baselines.dir/fractional_client.cpp.o"
  "CMakeFiles/ks_baselines.dir/fractional_client.cpp.o.d"
  "libks_baselines.a"
  "libks_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ks_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
