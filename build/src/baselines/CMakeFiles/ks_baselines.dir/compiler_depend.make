# Empty compiler generated dependencies file for ks_baselines.
# This may be replaced when dependencies are built.
