file(REMOVE_RECURSE
  "libks_baselines.a"
)
