
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vgpu/frontend_hook.cpp" "src/vgpu/CMakeFiles/ks_vgpu.dir/frontend_hook.cpp.o" "gcc" "src/vgpu/CMakeFiles/ks_vgpu.dir/frontend_hook.cpp.o.d"
  "/root/repo/src/vgpu/swap.cpp" "src/vgpu/CMakeFiles/ks_vgpu.dir/swap.cpp.o" "gcc" "src/vgpu/CMakeFiles/ks_vgpu.dir/swap.cpp.o.d"
  "/root/repo/src/vgpu/token_backend.cpp" "src/vgpu/CMakeFiles/ks_vgpu.dir/token_backend.cpp.o" "gcc" "src/vgpu/CMakeFiles/ks_vgpu.dir/token_backend.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ks_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ks_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/ks_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/cuda/CMakeFiles/ks_cuda.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
