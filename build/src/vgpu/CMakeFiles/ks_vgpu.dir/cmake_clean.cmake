file(REMOVE_RECURSE
  "CMakeFiles/ks_vgpu.dir/frontend_hook.cpp.o"
  "CMakeFiles/ks_vgpu.dir/frontend_hook.cpp.o.d"
  "CMakeFiles/ks_vgpu.dir/swap.cpp.o"
  "CMakeFiles/ks_vgpu.dir/swap.cpp.o.d"
  "CMakeFiles/ks_vgpu.dir/token_backend.cpp.o"
  "CMakeFiles/ks_vgpu.dir/token_backend.cpp.o.d"
  "libks_vgpu.a"
  "libks_vgpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ks_vgpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
