file(REMOVE_RECURSE
  "libks_vgpu.a"
)
