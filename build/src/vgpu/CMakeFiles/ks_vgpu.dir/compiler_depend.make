# Empty compiler generated dependencies file for ks_vgpu.
# This may be replaced when dependencies are built.
