file(REMOVE_RECURSE
  "CMakeFiles/ks_cuda.dir/context.cpp.o"
  "CMakeFiles/ks_cuda.dir/context.cpp.o.d"
  "libks_cuda.a"
  "libks_cuda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ks_cuda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
