file(REMOVE_RECURSE
  "libks_cuda.a"
)
