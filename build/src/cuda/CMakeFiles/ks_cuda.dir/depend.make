# Empty dependencies file for ks_cuda.
# This may be replaced when dependencies are built.
