file(REMOVE_RECURSE
  "libks_metrics.a"
)
