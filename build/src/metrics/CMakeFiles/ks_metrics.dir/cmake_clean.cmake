file(REMOVE_RECURSE
  "CMakeFiles/ks_metrics.dir/cluster_metrics.cpp.o"
  "CMakeFiles/ks_metrics.dir/cluster_metrics.cpp.o.d"
  "CMakeFiles/ks_metrics.dir/prometheus.cpp.o"
  "CMakeFiles/ks_metrics.dir/prometheus.cpp.o.d"
  "CMakeFiles/ks_metrics.dir/sampler.cpp.o"
  "CMakeFiles/ks_metrics.dir/sampler.cpp.o.d"
  "CMakeFiles/ks_metrics.dir/throughput.cpp.o"
  "CMakeFiles/ks_metrics.dir/throughput.cpp.o.d"
  "libks_metrics.a"
  "libks_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ks_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
