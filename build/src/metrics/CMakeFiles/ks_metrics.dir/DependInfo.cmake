
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/cluster_metrics.cpp" "src/metrics/CMakeFiles/ks_metrics.dir/cluster_metrics.cpp.o" "gcc" "src/metrics/CMakeFiles/ks_metrics.dir/cluster_metrics.cpp.o.d"
  "/root/repo/src/metrics/prometheus.cpp" "src/metrics/CMakeFiles/ks_metrics.dir/prometheus.cpp.o" "gcc" "src/metrics/CMakeFiles/ks_metrics.dir/prometheus.cpp.o.d"
  "/root/repo/src/metrics/sampler.cpp" "src/metrics/CMakeFiles/ks_metrics.dir/sampler.cpp.o" "gcc" "src/metrics/CMakeFiles/ks_metrics.dir/sampler.cpp.o.d"
  "/root/repo/src/metrics/throughput.cpp" "src/metrics/CMakeFiles/ks_metrics.dir/throughput.cpp.o" "gcc" "src/metrics/CMakeFiles/ks_metrics.dir/throughput.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ks_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ks_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/k8s/CMakeFiles/ks_k8s.dir/DependInfo.cmake"
  "/root/repo/build/src/kubeshare/CMakeFiles/ks_kubeshare.dir/DependInfo.cmake"
  "/root/repo/build/src/vgpu/CMakeFiles/ks_vgpu.dir/DependInfo.cmake"
  "/root/repo/build/src/cuda/CMakeFiles/ks_cuda.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/ks_gpu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
