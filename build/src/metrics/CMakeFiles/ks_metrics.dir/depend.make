# Empty dependencies file for ks_metrics.
# This may be replaced when dependencies are built.
