# Empty dependencies file for ks_k8s.
# This may be replaced when dependencies are built.
