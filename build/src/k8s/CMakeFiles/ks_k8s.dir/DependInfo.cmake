
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/k8s/cluster.cpp" "src/k8s/CMakeFiles/ks_k8s.dir/cluster.cpp.o" "gcc" "src/k8s/CMakeFiles/ks_k8s.dir/cluster.cpp.o.d"
  "/root/repo/src/k8s/device_plugin.cpp" "src/k8s/CMakeFiles/ks_k8s.dir/device_plugin.cpp.o" "gcc" "src/k8s/CMakeFiles/ks_k8s.dir/device_plugin.cpp.o.d"
  "/root/repo/src/k8s/kubelet.cpp" "src/k8s/CMakeFiles/ks_k8s.dir/kubelet.cpp.o" "gcc" "src/k8s/CMakeFiles/ks_k8s.dir/kubelet.cpp.o.d"
  "/root/repo/src/k8s/runtime.cpp" "src/k8s/CMakeFiles/ks_k8s.dir/runtime.cpp.o" "gcc" "src/k8s/CMakeFiles/ks_k8s.dir/runtime.cpp.o.d"
  "/root/repo/src/k8s/scheduler.cpp" "src/k8s/CMakeFiles/ks_k8s.dir/scheduler.cpp.o" "gcc" "src/k8s/CMakeFiles/ks_k8s.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ks_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ks_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/ks_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/vgpu/CMakeFiles/ks_vgpu.dir/DependInfo.cmake"
  "/root/repo/build/src/cuda/CMakeFiles/ks_cuda.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
