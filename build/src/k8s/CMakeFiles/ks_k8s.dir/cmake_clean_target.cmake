file(REMOVE_RECURSE
  "libks_k8s.a"
)
