file(REMOVE_RECURSE
  "CMakeFiles/ks_k8s.dir/cluster.cpp.o"
  "CMakeFiles/ks_k8s.dir/cluster.cpp.o.d"
  "CMakeFiles/ks_k8s.dir/device_plugin.cpp.o"
  "CMakeFiles/ks_k8s.dir/device_plugin.cpp.o.d"
  "CMakeFiles/ks_k8s.dir/kubelet.cpp.o"
  "CMakeFiles/ks_k8s.dir/kubelet.cpp.o.d"
  "CMakeFiles/ks_k8s.dir/runtime.cpp.o"
  "CMakeFiles/ks_k8s.dir/runtime.cpp.o.d"
  "CMakeFiles/ks_k8s.dir/scheduler.cpp.o"
  "CMakeFiles/ks_k8s.dir/scheduler.cpp.o.d"
  "libks_k8s.a"
  "libks_k8s.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ks_k8s.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
