# Empty compiler generated dependencies file for ks_common.
# This may be replaced when dependencies are built.
