file(REMOVE_RECURSE
  "libks_common.a"
)
