file(REMOVE_RECURSE
  "CMakeFiles/ks_runtime.dir/token_server.cpp.o"
  "CMakeFiles/ks_runtime.dir/token_server.cpp.o.d"
  "CMakeFiles/ks_runtime.dir/worker.cpp.o"
  "CMakeFiles/ks_runtime.dir/worker.cpp.o.d"
  "libks_runtime.a"
  "libks_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ks_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
