# Empty dependencies file for ks_runtime.
# This may be replaced when dependencies are built.
