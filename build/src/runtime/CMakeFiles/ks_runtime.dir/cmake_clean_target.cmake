file(REMOVE_RECURSE
  "libks_runtime.a"
)
