file(REMOVE_RECURSE
  "CMakeFiles/ks_workload.dir/generator.cpp.o"
  "CMakeFiles/ks_workload.dir/generator.cpp.o.d"
  "CMakeFiles/ks_workload.dir/host.cpp.o"
  "CMakeFiles/ks_workload.dir/host.cpp.o.d"
  "CMakeFiles/ks_workload.dir/job.cpp.o"
  "CMakeFiles/ks_workload.dir/job.cpp.o.d"
  "CMakeFiles/ks_workload.dir/trace.cpp.o"
  "CMakeFiles/ks_workload.dir/trace.cpp.o.d"
  "libks_workload.a"
  "libks_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ks_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
