# Empty dependencies file for ks_workload.
# This may be replaced when dependencies are built.
