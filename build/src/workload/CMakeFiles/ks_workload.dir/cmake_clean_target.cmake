file(REMOVE_RECURSE
  "libks_workload.a"
)
