file(REMOVE_RECURSE
  "CMakeFiles/ks_gpu.dir/device.cpp.o"
  "CMakeFiles/ks_gpu.dir/device.cpp.o.d"
  "CMakeFiles/ks_gpu.dir/nvml.cpp.o"
  "CMakeFiles/ks_gpu.dir/nvml.cpp.o.d"
  "CMakeFiles/ks_gpu.dir/utilization.cpp.o"
  "CMakeFiles/ks_gpu.dir/utilization.cpp.o.d"
  "libks_gpu.a"
  "libks_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ks_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
