# Empty dependencies file for ks_gpu.
# This may be replaced when dependencies are built.
