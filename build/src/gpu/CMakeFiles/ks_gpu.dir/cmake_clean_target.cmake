file(REMOVE_RECURSE
  "libks_gpu.a"
)
