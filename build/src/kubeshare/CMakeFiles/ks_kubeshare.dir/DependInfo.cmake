
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kubeshare/algorithm.cpp" "src/kubeshare/CMakeFiles/ks_kubeshare.dir/algorithm.cpp.o" "gcc" "src/kubeshare/CMakeFiles/ks_kubeshare.dir/algorithm.cpp.o.d"
  "/root/repo/src/kubeshare/devmgr.cpp" "src/kubeshare/CMakeFiles/ks_kubeshare.dir/devmgr.cpp.o" "gcc" "src/kubeshare/CMakeFiles/ks_kubeshare.dir/devmgr.cpp.o.d"
  "/root/repo/src/kubeshare/kubeshare.cpp" "src/kubeshare/CMakeFiles/ks_kubeshare.dir/kubeshare.cpp.o" "gcc" "src/kubeshare/CMakeFiles/ks_kubeshare.dir/kubeshare.cpp.o.d"
  "/root/repo/src/kubeshare/pool.cpp" "src/kubeshare/CMakeFiles/ks_kubeshare.dir/pool.cpp.o" "gcc" "src/kubeshare/CMakeFiles/ks_kubeshare.dir/pool.cpp.o.d"
  "/root/repo/src/kubeshare/replicaset.cpp" "src/kubeshare/CMakeFiles/ks_kubeshare.dir/replicaset.cpp.o" "gcc" "src/kubeshare/CMakeFiles/ks_kubeshare.dir/replicaset.cpp.o.d"
  "/root/repo/src/kubeshare/scheduler.cpp" "src/kubeshare/CMakeFiles/ks_kubeshare.dir/scheduler.cpp.o" "gcc" "src/kubeshare/CMakeFiles/ks_kubeshare.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ks_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ks_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/ks_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/vgpu/CMakeFiles/ks_vgpu.dir/DependInfo.cmake"
  "/root/repo/build/src/k8s/CMakeFiles/ks_k8s.dir/DependInfo.cmake"
  "/root/repo/build/src/cuda/CMakeFiles/ks_cuda.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
