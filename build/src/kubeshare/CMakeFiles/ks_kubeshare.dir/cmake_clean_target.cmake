file(REMOVE_RECURSE
  "libks_kubeshare.a"
)
