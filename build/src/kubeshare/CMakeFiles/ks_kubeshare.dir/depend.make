# Empty dependencies file for ks_kubeshare.
# This may be replaced when dependencies are built.
