file(REMOVE_RECURSE
  "CMakeFiles/ks_kubeshare.dir/algorithm.cpp.o"
  "CMakeFiles/ks_kubeshare.dir/algorithm.cpp.o.d"
  "CMakeFiles/ks_kubeshare.dir/devmgr.cpp.o"
  "CMakeFiles/ks_kubeshare.dir/devmgr.cpp.o.d"
  "CMakeFiles/ks_kubeshare.dir/kubeshare.cpp.o"
  "CMakeFiles/ks_kubeshare.dir/kubeshare.cpp.o.d"
  "CMakeFiles/ks_kubeshare.dir/pool.cpp.o"
  "CMakeFiles/ks_kubeshare.dir/pool.cpp.o.d"
  "CMakeFiles/ks_kubeshare.dir/replicaset.cpp.o"
  "CMakeFiles/ks_kubeshare.dir/replicaset.cpp.o.d"
  "CMakeFiles/ks_kubeshare.dir/scheduler.cpp.o"
  "CMakeFiles/ks_kubeshare.dir/scheduler.cpp.o.d"
  "libks_kubeshare.a"
  "libks_kubeshare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ks_kubeshare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
