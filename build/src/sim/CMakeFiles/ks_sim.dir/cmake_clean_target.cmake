file(REMOVE_RECURSE
  "libks_sim.a"
)
