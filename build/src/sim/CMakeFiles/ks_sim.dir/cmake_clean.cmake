file(REMOVE_RECURSE
  "CMakeFiles/ks_sim.dir/simulation.cpp.o"
  "CMakeFiles/ks_sim.dir/simulation.cpp.o.d"
  "libks_sim.a"
  "libks_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ks_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
