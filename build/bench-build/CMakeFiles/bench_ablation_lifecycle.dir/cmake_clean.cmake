file(REMOVE_RECURSE
  "../bench/bench_ablation_lifecycle"
  "../bench/bench_ablation_lifecycle.pdb"
  "CMakeFiles/bench_ablation_lifecycle.dir/bench_ablation_lifecycle.cpp.o"
  "CMakeFiles/bench_ablation_lifecycle.dir/bench_ablation_lifecycle.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_lifecycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
