# Empty compiler generated dependencies file for bench_ablation_lifecycle.
# This may be replaced when dependencies are built.
