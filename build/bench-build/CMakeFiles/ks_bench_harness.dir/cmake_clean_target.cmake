file(REMOVE_RECURSE
  "libks_bench_harness.a"
)
