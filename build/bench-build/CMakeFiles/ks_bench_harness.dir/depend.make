# Empty dependencies file for ks_bench_harness.
# This may be replaced when dependencies are built.
