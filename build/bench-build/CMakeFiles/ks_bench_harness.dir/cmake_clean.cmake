file(REMOVE_RECURSE
  "CMakeFiles/ks_bench_harness.dir/harness.cpp.o"
  "CMakeFiles/ks_bench_harness.dir/harness.cpp.o.d"
  "libks_bench_harness.a"
  "libks_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ks_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
