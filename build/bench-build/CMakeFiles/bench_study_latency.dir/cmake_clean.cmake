file(REMOVE_RECURSE
  "../bench/bench_study_latency"
  "../bench/bench_study_latency.pdb"
  "CMakeFiles/bench_study_latency.dir/bench_study_latency.cpp.o"
  "CMakeFiles/bench_study_latency.dir/bench_study_latency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_study_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
