
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig3.cpp" "bench-build/CMakeFiles/bench_fig3.dir/bench_fig3.cpp.o" "gcc" "bench-build/CMakeFiles/bench_fig3.dir/bench_fig3.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench-build/CMakeFiles/ks_bench_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/ks_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/ks_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ks_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/kubeshare/CMakeFiles/ks_kubeshare.dir/DependInfo.cmake"
  "/root/repo/build/src/k8s/CMakeFiles/ks_k8s.dir/DependInfo.cmake"
  "/root/repo/build/src/vgpu/CMakeFiles/ks_vgpu.dir/DependInfo.cmake"
  "/root/repo/build/src/cuda/CMakeFiles/ks_cuda.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/ks_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ks_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ks_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ks_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
