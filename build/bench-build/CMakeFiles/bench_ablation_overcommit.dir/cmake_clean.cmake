file(REMOVE_RECURSE
  "../bench/bench_ablation_overcommit"
  "../bench/bench_ablation_overcommit.pdb"
  "CMakeFiles/bench_ablation_overcommit.dir/bench_ablation_overcommit.cpp.o"
  "CMakeFiles/bench_ablation_overcommit.dir/bench_ablation_overcommit.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_overcommit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
