# Empty compiler generated dependencies file for bench_study_burstiness.
# This may be replaced when dependencies are built.
