file(REMOVE_RECURSE
  "../bench/bench_study_burstiness"
  "../bench/bench_study_burstiness.pdb"
  "CMakeFiles/bench_study_burstiness.dir/bench_study_burstiness.cpp.o"
  "CMakeFiles/bench_study_burstiness.dir/bench_study_burstiness.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_study_burstiness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
