file(REMOVE_RECURSE
  "../bench/bench_ablation_kernel_length"
  "../bench/bench_ablation_kernel_length.pdb"
  "CMakeFiles/bench_ablation_kernel_length.dir/bench_ablation_kernel_length.cpp.o"
  "CMakeFiles/bench_ablation_kernel_length.dir/bench_ablation_kernel_length.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_kernel_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
