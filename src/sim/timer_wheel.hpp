#pragma once

#include <cstdint>
#include <vector>

#include "common/time.hpp"
#include "sim/simulation.hpp"

namespace ks::sim {

/// Opaque handle to a wheel timer. Like sim::EventId it packs
/// (sequence, slot): the sequence is globally monotonic, so a stale id can
/// never resolve to a recycled slot — Cancel() on a fired, cancelled, or
/// invalidated timer is a correct O(1) no-op.
using TimerId = std::uint64_t;
inline constexpr TimerId kInvalidTimer = 0;

/// Hierarchical timer wheel (Varghese & Lauck) multiplexing many timers
/// onto ONE pending simulation event.
///
/// The engine's heap already makes individual timers cheap; what it cannot
/// do is make N timers cost less than N events. Components with per-entity
/// deadlines (the token backend's per-container renewals, per-device
/// re-evaluation polls) each used to keep a private pending event; a
/// 64-container node was worth hundreds of heap pushes per simulated
/// second. The wheel batches them: deadlines are quantized UP to a tick
/// grid (`tick` — the coalescing window), same-tick timers fire from a
/// single engine event, and the wheel keeps exactly one event armed, at
/// the earliest non-empty tick.
///
/// Semantics:
///  - a timer scheduled for time T fires at QuantizeUp(T) — with tick
///    <= 1us the wheel is exact, since sim::Time has microsecond
///    resolution;
///  - timers sharing a fire instant run ordered by (requested time,
///    insertion order), matching the engine's own FIFO tie-break, so a
///    component ported from raw events keeps its event ordering whenever
///    its deadlines land on the grid;
///  - callbacks may schedule and cancel freely, including new timers due
///    at the instant currently firing;
///  - InvalidateAll() drops every pending timer at once (the token
///    backend's restart path: nothing from the old incarnation may fire
///    into the new one).
///
/// Layout: three 64-slot levels (spans of 64, 64^2, 64^3 ticks) plus an
/// unsorted overflow bin for timers beyond the top span. The armed event
/// always targets an actual deadline (the earliest one); when the wheel
/// jumps there it cascades every coarse bucket position the jump crossed,
/// so far timers refine toward level 0 with amortized-constant work and
/// no engine event is ever spent on bookkeeping alone. Re-arm scans are
/// O(buckets + resident timers), which is trivial at the fan-in the wheel
/// exists to serve (tens of timers per wheel).
class TimerWheel {
 public:
  /// `tick` is the quantization grid (coalescing window). Values <= 1us
  /// (including zero) make the wheel exact.
  TimerWheel(Simulation* sim, Duration tick);
  ~TimerWheel();
  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  TimerId ScheduleAt(Time t, EventCallback fn);
  TimerId ScheduleAfter(Duration delay, EventCallback fn);

  /// Cancels a pending timer. Safe on ids that already fired, were
  /// cancelled, or were invalidated (returns false). When the last live
  /// timer is cancelled the armed engine event is released too, so an
  /// idle wheel contributes zero pending events.
  bool Cancel(TimerId id);

  /// Drops every pending timer and disarms the wheel. Outstanding ids all
  /// become stale (the generation stamp guarantees a later Cancel or fire
  /// cannot touch a recycled slot). Returns the number of timers dropped.
  std::size_t InvalidateAll();

  /// The instant a timer requested for `t` will actually fire.
  Time QuantizeUp(Time t) const;
  Duration tick() const { return Duration{tick_us_}; }

  std::size_t pending() const { return live_; }
  bool armed() const { return armed_event_ != kInvalidEvent; }

  struct Stats {
    std::uint64_t scheduled = 0;    ///< timers accepted
    std::uint64_t fired = 0;        ///< timer callbacks run
    std::uint64_t cancelled = 0;    ///< explicit Cancel() hits
    std::uint64_t invalidated = 0;  ///< dropped by InvalidateAll()
    /// Engine events the wheel consumed. Every tick fires at least one
    /// timer; fired / ticks is the coalescing ratio the wheel earns.
    std::uint64_t ticks = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  static constexpr int kLevelBits = 6;
  static constexpr std::uint64_t kBuckets = 1ull << kLevelBits;  // 64
  static constexpr int kLevels = 3;
  static constexpr std::uint64_t kTopSpan = 1ull << (kLevelBits * kLevels);
  static constexpr int kSlotBits = 20;
  static constexpr std::uint64_t kSlotMask = (1ull << kSlotBits) - 1;

  struct Slot {
    EventCallback fn;
    TimerId key = 0;  // 0 = vacant
    Time due{0};      // requested (pre-quantization) fire time
    std::uint64_t deadline_tick = 0;
    // Current residence, so Cancel can unlink in O(bucket size).
    std::uint8_t level = 0;  // kLevels == overflow bin
    std::uint8_t bucket = 0;
    bool extracted = false;  // pulled into the currently-firing batch
  };

  std::uint64_t TickOf(Time t) const;
  std::uint32_t AcquireSlot();
  void ReleaseSlot(std::uint32_t slot);
  /// Files a slot into the level/bucket its deadline demands, relative to
  /// cur_tick_.
  void Place(std::uint32_t slot);
  void Unlink(const Slot& s, TimerId key);
  /// Ensures the armed engine event targets the earliest actionable tick.
  void Rearm();
  std::uint64_t FindNextTarget() const;
  void ArmAt(std::uint64_t target_tick);
  void OnTick();
  void CascadeAcross(std::uint64_t from_tick, std::uint64_t to_tick);

  Simulation* sim_;
  std::int64_t tick_us_;
  std::uint64_t cur_tick_ = 0;
  std::uint64_t next_seq_ = 1;
  std::size_t live_ = 0;
  bool firing_ = false;

  EventId armed_event_ = kInvalidEvent;
  std::uint64_t armed_target_ = 0;

  std::vector<TimerId> buckets_[kLevels][kBuckets];
  std::vector<TimerId> overflow_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  Stats stats_;
};

}  // namespace ks::sim
