#pragma once

#include <cstdint>
#include <map>

#include "common/time.hpp"
#include "sim/timer_wheel.hpp"

namespace ks::sim {

/// Repeating-callback multiplexer on a TimerWheel: the "single shared
/// sampler tick". Every periodic instrument (metrics samplers, the NVML
/// poller) used to keep a private self-rescheduling event — one engine
/// event per sample per instrument. A TickHub subscription instead rides
/// the hub's wheel: subscribers whose deadlines land on the same wheel
/// tick share one engine event, and the hub keeps at most one event armed
/// no matter how many instruments it carries.
///
/// Each subscription fires at exact multiples of its period from the
/// subscription time (next_due advances by period, never from the fire
/// time), so a pull-mode sampler records byte-identical timestamps to the
/// push-mode one whenever its period sits on the hub's grid.
class TickHub {
 public:
  using SubId = std::uint64_t;

  /// `granularity` is the wheel tick; zero (the default) keeps the hub
  /// exact at microsecond resolution.
  explicit TickHub(Simulation* sim, Duration granularity = Duration{0})
      : sim_(sim), wheel_(sim, granularity) {}

  Simulation* sim() const { return sim_; }

  /// Registers a callback fired every `period`, first at now + period.
  SubId Subscribe(Duration period, EventCallback fn);

  /// Stops a subscription. Safe on ids already unsubscribed.
  bool Unsubscribe(SubId id);

  std::size_t subscribers() const { return subs_.size(); }
  /// Callback invocations across all subscriptions.
  std::uint64_t fires() const { return fires_; }
  /// Engine events consumed; fires()/ticks() is the sharing ratio.
  std::uint64_t ticks() const { return wheel_.stats().ticks; }
  const TimerWheel& wheel() const { return wheel_; }

 private:
  struct Sub {
    Duration period{0};
    EventCallback fn;
    Time next_due{0};
    TimerId timer = kInvalidTimer;
  };

  void Arm(SubId id);

  Simulation* sim_;
  TimerWheel wheel_;
  std::map<SubId, Sub> subs_;
  SubId next_id_ = 1;
  std::uint64_t fires_ = 0;
};

}  // namespace ks::sim
