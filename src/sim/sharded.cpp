#include "sim/sharded.hpp"

#include <algorithm>
#include <string>
#include <utility>

namespace ks::sim {
namespace {

/// Index of the shard the current thread is draining, or -1 when outside
/// any drain (setup code, the barrier thread between windows). thread_local
/// so worker threads and the serial path share one mechanism.
thread_local int tls_current_shard = -1;

}  // namespace

std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

int ShardForIndex(std::uint64_t seed, std::uint64_t index, int node_shards) {
  if (node_shards <= 1) return node_shards;  // 0 shards: everything global
  const std::uint64_t h = SplitMix64(SplitMix64(seed) ^ index);
  return 1 + static_cast<int>(h % static_cast<std::uint64_t>(node_shards));
}

ShardedSimulation::ShardedSimulation(ShardedConfig config)
    : config_(config), window_(config.window) {
  if (config_.node_shards < 1) config_.node_shards = 1;
  if (window_.count() <= 0) window_ = Millis(1);
  shards_.reserve(static_cast<std::size_t>(config_.node_shards) + 1);
  for (int i = 0; i <= config_.node_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ShardedSimulation::~ShardedSimulation() {
  if (!workers_.empty()) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_work_.notify_all();
    for (auto& w : workers_) w.join();
  }
}

ShardedSimulation::EventRef ShardedSimulation::ScheduleAt(int shard, Time t,
                                                          EventCallback fn) {
  Shard& target = *shards_[shard];
  const int from = tls_current_shard;
  if (from < 0 || from == shard) {
    // Direct insert: setup code, the barrier thread, or a shard scheduling
    // onto itself.
    return EventRef{shard, target.sim.ScheduleAt(t, std::move(fn))};
  }
  // Cross-shard: buffer in the sender's outbox; transferred at the barrier.
  Time fire = t;
  if (fire < window_end_) {
    fire = window_end_;
    ++shards_[from]->lookahead_violations;  // thread-owned with the outbox
  }
  shards_[from]->outbox.push_back(PendingSend{shard, fire, std::move(fn)});
  // The shard-local id is unknown until the flush; cross-shard events are
  // fire-and-forget (cancellation across shards would race anyway).
  return EventRef{shard, kInvalidEvent};
}

ShardedSimulation::EventRef ShardedSimulation::ScheduleAfter(
    int shard, Duration delay, EventCallback fn) {
  if (delay.count() < 0) delay = Duration{0};
  const int from = tls_current_shard;
  const Time base = from >= 0 ? shards_[from]->sim.Now() : now_;
  return ScheduleAt(shard, base + delay, std::move(fn));
}

bool ShardedSimulation::Cancel(const EventRef& ref) {
  if (!ref.valid()) return false;
  // Legal from the event's own shard or from outside any drain; a
  // cross-shard cancel during a parallel drain would race the target heap.
  return shards_[ref.shard]->sim.Cancel(ref.id);
}

void ShardedSimulation::RunUntil(Time t) {
  for (;;) {
    // Earliest pending event across all shards (skip-ahead: idle stretches
    // cost nothing, the engine jumps straight to the next populated window).
    Time next = Time::max();
    for (auto& s : shards_) {
      const auto nt = s->sim.NextEventTime();
      if (nt && *nt < next) next = *nt;
    }
    if (next == Time::max() || next > t) break;

    const std::int64_t w = window_.count();
    const Time anchor = std::max(next, now_);
    const Time base{Duration{(anchor.count() / w) * w}};
    const Time end = base + window_;
    window_end_ = end;
    // Events at exactly `end` belong to the next window; clamp to t so a
    // RunUntil ending mid-window stops exactly there.
    const Time drain_to = std::min(end - Duration{1}, t);
    DrainShards(drain_to);
    FlushOutboxes();
    now_ = std::min(end, t);
    ++windows_;
  }
  // Advance every clock to exactly t (events are all > t now).
  for (auto& s : shards_) s->sim.RunUntil(t);
  if (t > now_) now_ = t;
  window_end_ = now_;
}

void ShardedSimulation::DrainShards(Time target) {
  const int threads = std::min<int>(config_.threads, shard_count());
  if (threads <= 1) {
    for (int i = 0; i < shard_count(); ++i) {
      tls_current_shard = i;
      shards_[i]->sim.RunUntil(target);
      tls_current_shard = -1;
    }
    return;
  }
  if (workers_.empty()) StartWorkers();
  {
    std::lock_guard<std::mutex> lk(mu_);
    drain_target_ = target;
    workers_done_ = 0;
    next_shard_.store(0, std::memory_order_relaxed);
    ++generation_;
  }
  cv_work_.notify_all();
  std::unique_lock<std::mutex> lk(mu_);
  cv_done_.wait(lk, [&] {
    return workers_done_ == static_cast<int>(workers_.size());
  });
}

void ShardedSimulation::StartWorkers() {
  const int threads = std::min<int>(config_.threads, shard_count());
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void ShardedSimulation::WorkerLoop() {
  std::uint64_t seen = 0;
  for (;;) {
    Time target;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_work_.wait(lk, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      target = drain_target_;
    }
    for (;;) {
      const int i = next_shard_.fetch_add(1, std::memory_order_relaxed);
      if (i >= shard_count()) break;
      tls_current_shard = i;
      shards_[i]->sim.RunUntil(target);
      tls_current_shard = -1;
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (++workers_done_ == static_cast<int>(workers_.size())) {
        cv_done_.notify_one();
      }
    }
  }
}

void ShardedSimulation::FlushOutboxes() {
  // Serial, in shard order: the target-shard insertion sequence of
  // barrier-transferred events is a pure function of (source shard, send
  // order), independent of how many threads drained the window.
  for (auto& s : shards_) {
    for (auto& send : s->outbox) {
      ++cross_shard_sends_;
      shards_[send.target]->sim.ScheduleAt(send.at, std::move(send.fn));
    }
    s->outbox.clear();
  }
}

std::size_t ShardedSimulation::pending() const {
  std::size_t n = 0;
  for (const auto& s : shards_) n += s->sim.pending();
  return n;
}

std::uint64_t ShardedSimulation::executed() const {
  std::uint64_t n = 0;
  for (const auto& s : shards_) n += s->sim.executed();
  return n;
}

std::uint64_t ShardedSimulation::lifetime_events() const {
  std::uint64_t n = 0;
  for (const auto& s : shards_) n += s->sim.lifetime_events();
  return n;
}

bool ShardedSimulation::exhausted() const {
  for (const auto& s : shards_) {
    if (s->sim.exhausted()) return true;
  }
  return false;
}

Status ShardedSimulation::CapacityStatus() const {
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Status st = shards_[i]->sim.CapacityStatus();
    if (!st.ok()) {
      return ResourceExhaustedError("shard " + std::to_string(i) + ": " +
                                    std::string(st.message()));
    }
  }
  return Status::Ok();
}

}  // namespace ks::sim
