#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace ks::sim {

/// Move-only callable wrapper tuned for the event loop.
///
/// `std::function` heap-allocates any capture list larger than its tiny
/// implementation-defined buffer and pays a virtual dispatch on every copy;
/// the old engine additionally *copied* the function out of the priority
/// queue on every Step(). EventCallback keeps captures up to kInlineCapacity
/// bytes inline in the event slot (enough for the `this` + a couple of
/// values that nearly every callback in this codebase captures) and only
/// falls back to a single heap allocation beyond that. It is move-only, so
/// the engine can relocate events between slots without ever cloning a
/// capture list.
class EventCallback {
 public:
  /// Inline capture budget. Callbacks at or under this size (and with
  /// ordinary alignment) never touch the heap.
  static constexpr std::size_t kInlineCapacity = 56;

  EventCallback() noexcept = default;

  template <typename F,
            typename D = std::decay_t<F>,
            std::enable_if_t<!std::is_same_v<D, EventCallback> &&
                                 std::is_invocable_r_v<void, D&>,
                             int> = 0>
  EventCallback(F&& fn) {  // NOLINT: implicit by design, mirrors std::function
    if constexpr (sizeof(D) <= kInlineCapacity &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
      ops_ = &kInlineOps<D>;
    } else {
      *reinterpret_cast<D**>(storage_) = new D(std::forward<F>(fn));
      ops_ = &kHeapOps<D>;
    }
  }

  EventCallback(EventCallback&& other) noexcept { MoveFrom(other); }

  EventCallback& operator=(EventCallback&& other) noexcept {
    if (this != &other) {
      reset();
      MoveFrom(other);
    }
    return *this;
  }

  EventCallback(const EventCallback&) = delete;
  EventCallback& operator=(const EventCallback&) = delete;

  ~EventCallback() { reset(); }

  void operator()() { ops_->invoke(storage_); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  /// Destroys the current target (if any) and constructs `fn` in place —
  /// lets the engine build a callback directly in its slot, skipping the
  /// relocation a construct-then-move would cost.
  template <typename F,
            typename D = std::decay_t<F>,
            std::enable_if_t<!std::is_same_v<D, EventCallback> &&
                                 std::is_invocable_r_v<void, D&>,
                             int> = 0>
  void emplace(F&& fn) {
    reset();
    if constexpr (sizeof(D) <= kInlineCapacity &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
      ops_ = &kInlineOps<D>;
    } else {
      *reinterpret_cast<D**>(storage_) = new D(std::forward<F>(fn));
      ops_ = &kHeapOps<D>;
    }
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    /// Move-constructs the callable into `dst` from `src` and destroys the
    /// source — a destructive relocation, the only move the engine needs.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
  };

  template <typename D>
  static constexpr Ops kInlineOps = {
      [](void* storage) { (*std::launder(reinterpret_cast<D*>(storage)))(); },
      [](void* dst, void* src) noexcept {
        D* from = std::launder(reinterpret_cast<D*>(src));
        ::new (dst) D(std::move(*from));
        from->~D();
      },
      [](void* storage) noexcept {
        std::launder(reinterpret_cast<D*>(storage))->~D();
      },
  };

  template <typename D>
  static constexpr Ops kHeapOps = {
      [](void* storage) { (**reinterpret_cast<D**>(storage))(); },
      [](void* dst, void* src) noexcept {
        *reinterpret_cast<D**>(dst) = *reinterpret_cast<D**>(src);
      },
      [](void* storage) noexcept { delete *reinterpret_cast<D**>(storage); },
  };

  void MoveFrom(EventCallback& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineCapacity];
  const Ops* ops_ = nullptr;
};

}  // namespace ks::sim
