#include "sim/timer_wheel.hpp"

#include <algorithm>
#include <cassert>

namespace ks::sim {

TimerWheel::TimerWheel(Simulation* sim, Duration tick)
    : sim_(sim), tick_us_(tick.count() > 0 ? tick.count() : 1) {
  assert(sim_ != nullptr);
  cur_tick_ = static_cast<std::uint64_t>(sim_->Now().count()) /
              static_cast<std::uint64_t>(tick_us_);
}

TimerWheel::~TimerWheel() {
  if (armed_event_ != kInvalidEvent) sim_->Cancel(armed_event_);
}

std::uint64_t TimerWheel::TickOf(Time t) const {
  const std::int64_t us = t.count() > 0 ? t.count() : 0;
  return (static_cast<std::uint64_t>(us) +
          static_cast<std::uint64_t>(tick_us_) - 1) /
         static_cast<std::uint64_t>(tick_us_);
}

Time TimerWheel::QuantizeUp(Time t) const {
  return Time{static_cast<std::int64_t>(TickOf(t)) * tick_us_};
}

std::uint32_t TimerWheel::AcquireSlot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  assert(slots_.size() < kSlotMask);
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void TimerWheel::ReleaseSlot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.fn = EventCallback();
  s.key = 0;
  s.extracted = false;
  free_slots_.push_back(slot);
}

void TimerWheel::Place(std::uint32_t slot) {
  Slot& s = slots_[slot];
  const std::uint64_t delta =
      s.deadline_tick > cur_tick_ ? s.deadline_tick - cur_tick_ : 0;
  if (delta >= kTopSpan) {
    s.level = kLevels;
    s.bucket = 0;
    overflow_.push_back(s.key);
    return;
  }
  int level = 0;
  while (delta >= (1ull << (kLevelBits * (level + 1)))) ++level;
  const std::uint8_t bucket = static_cast<std::uint8_t>(
      (s.deadline_tick >> (kLevelBits * level)) & (kBuckets - 1));
  s.level = static_cast<std::uint8_t>(level);
  s.bucket = bucket;
  buckets_[level][bucket].push_back(s.key);
}

void TimerWheel::Unlink(const Slot& s, TimerId key) {
  std::vector<TimerId>& bin =
      s.level == kLevels ? overflow_ : buckets_[s.level][s.bucket];
  bin.erase(std::remove(bin.begin(), bin.end(), key), bin.end());
}

TimerId TimerWheel::ScheduleAt(Time t, EventCallback fn) {
  if (t < sim_->Now()) t = sim_->Now();
  const std::uint32_t slot = AcquireSlot();
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  s.due = t;
  std::uint64_t dt = TickOf(t);
  if (dt < cur_tick_) dt = cur_tick_;
  s.deadline_tick = dt;
  const TimerId key = (next_seq_++ << kSlotBits) | slot;
  s.key = key;
  Place(slot);
  ++live_;
  ++stats_.scheduled;
  if (!firing_) {
    // The armed event always targets the earliest deadline; re-arm only
    // when this timer beats it.
    if (armed_event_ == kInvalidEvent) {
      ArmAt(dt);
    } else if (dt < armed_target_) {
      sim_->Cancel(armed_event_);
      ArmAt(dt);
    }
  }
  return key;
}

TimerId TimerWheel::ScheduleAfter(Duration delay, EventCallback fn) {
  if (delay.count() < 0) delay = Duration{0};
  return ScheduleAt(sim_->Now() + delay, std::move(fn));
}

bool TimerWheel::Cancel(TimerId id) {
  if (id == kInvalidTimer) return false;
  const std::uint64_t slot = id & kSlotMask;
  if (slot >= slots_.size()) return false;
  Slot& s = slots_[slot];
  if (s.key != id) return false;
  if (!s.extracted) Unlink(s, id);
  ReleaseSlot(static_cast<std::uint32_t>(slot));
  --live_;
  ++stats_.cancelled;
  if (live_ == 0 && !firing_ && armed_event_ != kInvalidEvent) {
    sim_->Cancel(armed_event_);
    armed_event_ = kInvalidEvent;
  }
  return true;
}

std::size_t TimerWheel::InvalidateAll() {
  const std::size_t dropped = live_;
  for (int level = 0; level < kLevels; ++level) {
    for (std::uint64_t b = 0; b < kBuckets; ++b) buckets_[level][b].clear();
  }
  overflow_.clear();
  free_slots_.clear();
  for (std::size_t i = slots_.size(); i-- > 0;) {
    Slot& s = slots_[i];
    s.fn = EventCallback();
    s.key = 0;
    s.extracted = false;
    free_slots_.push_back(static_cast<std::uint32_t>(i));
  }
  live_ = 0;
  stats_.invalidated += dropped;
  if (!firing_ && armed_event_ != kInvalidEvent) {
    sim_->Cancel(armed_event_);
    armed_event_ = kInvalidEvent;
  }
  return dropped;
}

void TimerWheel::ArmAt(std::uint64_t target_tick) {
  armed_target_ = target_tick;
  const Time at{static_cast<std::int64_t>(target_tick) * tick_us_};
  armed_event_ = sim_->ScheduleAt(at, [this] { OnTick(); });
}

std::uint64_t TimerWheel::FindNextTarget() const {
  // Exhaustive min-deadline scan: 3*64 bucket checks plus one comparison
  // per resident timer. The wheel serves tens of timers, so this is
  // cheaper than maintaining incremental occupancy summaries — and it
  // lets the armed event target the deadline itself instead of a cascade
  // boundary, so no engine event is ever spent on bookkeeping alone.
  std::uint64_t best = UINT64_MAX;
  for (int level = 0; level < kLevels; ++level) {
    for (std::uint64_t b = 0; b < kBuckets; ++b) {
      for (const TimerId key : buckets_[level][b]) {
        const Slot& s = slots_[key & kSlotMask];
        if (s.deadline_tick < best) best = s.deadline_tick;
      }
    }
  }
  for (const TimerId key : overflow_) {
    const Slot& s = slots_[key & kSlotMask];
    if (s.deadline_tick < best) best = s.deadline_tick;
  }
  assert(best != UINT64_MAX);
  return best;
}

void TimerWheel::CascadeAcross(std::uint64_t from_tick,
                               std::uint64_t to_tick) {
  // The jump from_tick -> to_tick crossed some coarse bucket positions;
  // re-place the contents of each crossed position (at most one full
  // rotation per level) so everything due soon refines toward level 0.
  // Overflow first, then coarse-to-fine: each stage may deposit into a
  // bucket a finer stage is about to sweep.
  std::vector<TimerId> moved;
  if (!overflow_.empty()) {
    std::vector<TimerId> keep;
    for (const TimerId key : overflow_) {
      const Slot& s = slots_[key & kSlotMask];
      if (s.deadline_tick - to_tick < kTopSpan) {
        moved.push_back(key);
      } else {
        keep.push_back(key);
      }
    }
    overflow_.swap(keep);
    for (const TimerId key : moved) Place(key & kSlotMask);
  }
  for (int level = kLevels - 1; level >= 1; --level) {
    const int shift = kLevelBits * level;
    const std::uint64_t from = from_tick >> shift;
    const std::uint64_t to = to_tick >> shift;
    if (to == from) continue;
    const std::uint64_t steps = std::min(to - from, kBuckets);
    for (std::uint64_t i = 1; i <= steps; ++i) {
      std::vector<TimerId>& bucket =
          buckets_[level][(from + i) & (kBuckets - 1)];
      if (bucket.empty()) continue;
      moved.clear();
      moved.swap(bucket);
      for (const TimerId key : moved) Place(key & kSlotMask);
    }
  }
}

void TimerWheel::OnTick() {
  armed_event_ = kInvalidEvent;
  const std::uint64_t from = cur_tick_;
  if (armed_target_ > cur_tick_) cur_tick_ = armed_target_;
  ++stats_.ticks;
  firing_ = true;
  CascadeAcross(from, cur_tick_);

  // Fire every due timer at this tick in (requested time, insertion seq)
  // order. Callbacks may push new same-tick timers into the bucket, so
  // loop until an extraction pass comes up empty.
  std::vector<TimerId> batch;
  std::vector<TimerId> keep;
  while (true) {
    std::vector<TimerId>& bucket = buckets_[0][cur_tick_ & (kBuckets - 1)];
    batch.clear();
    keep.clear();
    for (const TimerId key : bucket) {
      Slot& s = slots_[key & kSlotMask];
      if (s.deadline_tick <= cur_tick_) {
        s.extracted = true;
        batch.push_back(key);
      } else {
        keep.push_back(key);
      }
    }
    bucket.swap(keep);
    if (batch.empty()) break;
    std::sort(batch.begin(), batch.end(), [this](TimerId a, TimerId b) {
      const Slot& sa = slots_[a & kSlotMask];
      const Slot& sb = slots_[b & kSlotMask];
      if (sa.due != sb.due) return sa.due < sb.due;
      return a < b;  // insertion order: ids embed the global sequence
    });
    for (const TimerId key : batch) {
      const std::uint32_t slot = static_cast<std::uint32_t>(key & kSlotMask);
      Slot& s = slots_[slot];
      if (s.key != key) continue;  // cancelled or invalidated mid-batch
      EventCallback fn = std::move(s.fn);
      ReleaseSlot(slot);
      --live_;
      ++stats_.fired;
      fn();
    }
  }
  firing_ = false;
  if (live_ > 0) {
    ArmAt(FindNextTarget());
  }
}

}  // namespace ks::sim
