#include "sim/simulation.hpp"

#include <cassert>
#include <utility>

namespace ks::sim {

EventId Simulation::ScheduleAt(Time t, std::function<void()> fn) {
  assert(fn && "cannot schedule an empty callback");
  if (t < now_) t = now_;  // clamp: scheduling in the past fires "now"
  const EventId id = next_id_++;
  queue_.push(Event{t, id, std::move(fn)});
  return id;
}

EventId Simulation::ScheduleAfter(Duration delay, std::function<void()> fn) {
  if (delay.count() < 0) delay = Duration{0};
  return ScheduleAt(now_ + delay, std::move(fn));
}

bool Simulation::Cancel(EventId id) {
  if (id == kInvalidEvent || id >= next_id_) return false;
  return cancelled_.insert(id).second;
}

bool Simulation::Step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (auto it = cancelled_.find(ev.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    assert(ev.at >= now_);
    now_ = ev.at;
    ++executed_;
    ev.fn();
    return true;
  }
  return false;
}

void Simulation::Run(std::uint64_t max_events) {
  while (max_events-- > 0 && Step()) {
  }
}

void Simulation::RunUntil(Time t) {
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (cancelled_.count(top.id) > 0) {
      cancelled_.erase(top.id);
      queue_.pop();
      continue;
    }
    if (top.at > t) break;
    Step();
  }
  if (now_ < t) now_ = t;
}

}  // namespace ks::sim
