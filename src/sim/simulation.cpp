#include "sim/simulation.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <utility>

namespace ks::sim {

Simulation::~Simulation() { FreeHeap(); }

EventId Simulation::ScheduleAt(Time t, EventCallback fn) {
  assert(fn && "cannot schedule an empty callback");
  if (t < now_) t = now_;  // clamp: scheduling in the past fires "now"
  if (!HasCapacity()) return kInvalidEvent;
  const std::uint32_t slot = AcquireSlot();
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  const std::uint64_t key = (next_seq_++ << kSlotBits) | slot;
  s.key = key;
  ++live_;
  PushHeap(HeapEntry{t, key});
  return key;
}

EventId Simulation::ScheduleAfter(Duration delay, EventCallback fn) {
  if (delay.count() < 0) delay = Duration{0};
  return ScheduleAt(now_ + delay, std::move(fn));
}

bool Simulation::Cancel(EventId id) {
  const auto slot = static_cast<std::uint32_t>(id & kSlotMask);
  if (id == kInvalidEvent || slot >= slots_.size()) return false;
  Slot& s = slots_[slot];
  // A fired or previously-cancelled event has released its slot: the slot
  // is either vacant (key 0) or re-issued under a newer sequence. Both
  // compare unequal, making stale cancels correct no-ops.
  if (s.key != id) return false;
  ReleaseSlot(slot);
  --live_;
  // The heap entry dies lazily when it surfaces; purge when dead entries
  // outnumber live ones so cancel/reschedule churn cannot grow the heap
  // unboundedly.
  if (heap_size_ - live_ > live_ + kPurgeSlack) PurgeStale();
  return true;
}

bool Simulation::Step() {
  DropStaleRoots();
  if (heap_size_ == 0) {
    CompactIfDrained();
    return false;
  }
  const HeapEntry top = heap_[0];
  assert(top.at >= now_);
  Slot& s = slots_[top.key & kSlotMask];
  EventCallback fn = std::move(s.fn);
  // The slot is released *before* the callback runs, so a callback that
  // reschedules itself (the usual timer pattern) reuses its own slot.
  ReleaseSlot(top.key & kSlotMask);
  --live_;
  PopRoot();
  now_ = top.at;
  ++executed_;
  fn();
  return true;
}

void Simulation::Run(std::uint64_t max_events) {
  while (max_events-- > 0 && Step()) {
  }
}

void Simulation::RunUntil(Time t) {
  // Single drain path: Step() is the only place live events are popped.
  // DropStaleRoots() keeps the root live, so peeking its time is exact.
  for (;;) {
    DropStaleRoots();
    if (heap_size_ == 0 || heap_[0].at > t) break;
    Step();
  }
  if (now_ < t) now_ = t;
  CompactIfDrained();
}

void Simulation::PushHeap(HeapEntry e) {
  if (heap_size_ == heap_cap_) GrowHeap();
  std::uint32_t pos = heap_size_++;
  while (pos > 0) {
    const std::uint32_t parent = (pos - 1) >> 2;
    if (!Earlier(e, heap_[parent])) break;
    heap_[pos] = heap_[parent];
    pos = parent;
  }
  heap_[pos] = e;
}

void Simulation::PopRoot() {
  const std::uint32_t n = --heap_size_;
  if (n == 0) return;
  const HeapEntry last = heap_[n];
  // Bottom-up delete-min: walk the hole down the min-child path without
  // comparing against `last` (it came from the bottom and nearly always
  // belongs there), then sift it up the short remaining distance.
  std::uint32_t pos = 0;
  const bool prefetch = n > 4096;
  for (;;) {
    const std::uint32_t first = 4 * pos + 1;
    if (first >= n) break;
    std::uint32_t best = first;
    const std::uint32_t end = std::min(first + 4, n);
    const std::uint32_t gc = 4 * first + 1;
    if (prefetch && gc < n) {
      __builtin_prefetch(heap_ + gc);
      __builtin_prefetch(heap_ + gc + 4);
      __builtin_prefetch(heap_ + gc + 8);
      __builtin_prefetch(heap_ + gc + 12);
    }
    for (std::uint32_t c = first + 1; c < end; ++c) {
      if (Earlier(heap_[c], heap_[best])) best = c;
    }
    heap_[pos] = heap_[best];
    pos = best;
  }
  while (pos > 0) {
    const std::uint32_t parent = (pos - 1) >> 2;
    if (!Earlier(last, heap_[parent])) break;
    heap_[pos] = heap_[parent];
    pos = parent;
  }
  heap_[pos] = last;
}

void Simulation::SiftDown(std::uint32_t pos) {
  const HeapEntry e = heap_[pos];
  for (;;) {
    const std::uint32_t first = 4 * pos + 1;
    if (first >= heap_size_) break;
    std::uint32_t best = first;
    const std::uint32_t end = std::min(first + 4, heap_size_);
    for (std::uint32_t c = first + 1; c < end; ++c) {
      if (Earlier(heap_[c], heap_[best])) best = c;
    }
    if (!Earlier(heap_[best], e)) break;
    heap_[pos] = heap_[best];
    pos = best;
  }
  heap_[pos] = e;
}

void Simulation::DropStaleRoots() {
  while (heap_size_ > 0 &&
         slots_[heap_[0].key & kSlotMask].key != heap_[0].key) {
    PopRoot();
  }
}

void Simulation::PurgeStale() {
  // Compact live entries in place, then heapify. Deterministic: the
  // comparator is a strict total order (keys are unique), so any valid
  // heap arrangement drains in the same order.
  std::uint32_t kept = 0;
  for (std::uint32_t i = 0; i < heap_size_; ++i) {
    const HeapEntry e = heap_[i];
    if (slots_[e.key & kSlotMask].key == e.key) heap_[kept++] = e;
  }
  heap_size_ = kept;
  if (kept > 1) {
    for (std::uint32_t i = (kept - 2) >> 2; ; --i) {
      SiftDown(i);
      if (i == 0) break;
    }
  }
}

void Simulation::GrowHeap() {
  const std::uint32_t cap = heap_cap_ == 0 ? 64 : heap_cap_ * 2;
  // +3 entries of slack so heap_[1] lands on a 64-byte boundary: sibling
  // group [4i+1 .. 4i+4] then always occupies exactly one cache line.
  void* raw = ::operator new((static_cast<std::size_t>(cap) + 3) *
                                 sizeof(HeapEntry),
                             std::align_val_t{64});
  auto* data = static_cast<HeapEntry*>(raw) + 3;
  if (heap_size_ > 0) {
    std::memcpy(static_cast<void*>(data), static_cast<void*>(heap_),
                heap_size_ * sizeof(HeapEntry));
  }
  FreeHeap();
  raw_heap_ = raw;
  heap_ = data;
  heap_cap_ = cap;
}

void Simulation::FreeHeap() {
  if (raw_heap_ != nullptr) {
    ::operator delete(raw_heap_, std::align_val_t{64});
    raw_heap_ = nullptr;
    heap_ = nullptr;
    heap_cap_ = 0;
  }
}

bool Simulation::HasCapacity() {
  if (exhausted_) return false;
  if (next_seq_ > kMaxSeq) {
    MarkExhausted("lifetime event-id space (2^40 - 1)");
    return false;
  }
  if (free_slots_.empty() && slots_.size() > kSlotMask) {
    MarkExhausted("pending-event slots (2^24 - 1)");
    return false;
  }
  return true;
}

void Simulation::MarkExhausted(const char* limit) {
  exhausted_ = true;
  std::fprintf(stderr,
               "ks::sim::Simulation capacity exhausted: %s spent "
               "(lifetime_events=%llu pending=%u); further Schedule calls "
               "return kInvalidEvent\n",
               limit, static_cast<unsigned long long>(lifetime_events()),
               live_);
}

Status Simulation::CapacityStatus() const {
  if (!exhausted_) return Status::Ok();
  const char* limit = next_seq_ > kMaxSeq
                          ? "lifetime event-id space (2^40 - 1)"
                          : "pending-event slots (2^24 - 1)";
  return ResourceExhaustedError(
      std::string("simulation capacity exhausted: ") + limit +
      " spent; lifetime_events=" + std::to_string(lifetime_events()) +
      " pending=" + std::to_string(live_));
}

std::uint32_t Simulation::AcquireSlot() {
  // Capacity is vetted by HasCapacity() before every acquisition, so both
  // branches below are infallible.
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  return slot;
}

void Simulation::ReleaseSlot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.fn.reset();
  s.key = 0;
  free_slots_.push_back(slot);
}

void Simulation::CompactIfDrained() {
  // Amortized compaction point: with nothing in flight both arenas can be
  // dropped wholesale. The sequence counter survives the reset, so ids
  // minted before compaction can never alias events scheduled after it.
  if (heap_size_ != 0 || slots_.size() < kCompactThreshold) return;
  slots_.clear();
  slots_.shrink_to_fit();
  free_slots_.clear();
  free_slots_.shrink_to_fit();
  FreeHeap();
  heap_size_ = 0;
}

}  // namespace ks::sim
