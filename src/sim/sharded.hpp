#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/status.hpp"
#include "common/time.hpp"
#include "sim/event_callback.hpp"
#include "sim/simulation.hpp"

namespace ks::sim {

/// Configuration for ShardedSimulation.
struct ShardedConfig {
  /// Number of node shards. The engine owns node_shards + 1 Simulations:
  /// shard 0 is the global shard (apiserver, scheduler, controllers), shards
  /// 1..node_shards hold the per-node components.
  int node_shards = 4;
  /// Worker threads draining shards inside a window. 0 or 1 runs the drain
  /// serially on the calling thread, in shard order — the deterministic
  /// reference used by the differential tests; any thread count produces
  /// identical results because shard drains are independent by construction.
  int threads = 0;
  /// Synchronization window width. Must not exceed the minimum cross-shard
  /// latency (the conservative-PDES lookahead): every cross-shard message
  /// sent inside window [B, B+W) fires no earlier than B+W, so shards never
  /// need to roll back. In this codebase the anchor is
  /// LatencyModel::watch_propagation (1 ms).
  Duration window = Millis(1);
};

/// Conservative time-window parallel discrete-event engine: N+1 independent
/// sim::Simulation shards advanced in lock-step windows.
///
/// Invariants (the whole determinism argument rests on these):
///  - an event scheduled on shard S runs on S's Simulation, ordered by S's
///    own (time, insertion-seq) heap — per-shard sequence numbers, so the
///    2^40 lifetime-id budget is per shard, not global;
///  - a callback running on shard S may schedule onto S directly, but a
///    schedule targeting another shard is buffered in S's outbox and only
///    transferred at the window barrier, clamped to fire no earlier than the
///    end of the current window (the lookahead rule). Cross-shard messages
///    are therefore appended while the target shard is quiescent — never
///    while another thread drains it;
///  - outboxes are flushed serially in shard order after every window, so
///    the target-shard insertion order of barrier-transferred events is a
///    pure function of (window, source shard, send order within the source)
///    — independent of thread count and thread scheduling.
///
/// Determinism across thread counts is exact, not statistical: the
/// differential suite pins serial (threads=0) against threaded runs
/// byte-for-byte, and the single-engine run remains the oracle for the
/// model layered on top (see tests/scale/).
class ShardedSimulation {
 public:
  static constexpr int kGlobalShard = 0;

  /// Cross-shard event handle: shard index plus the shard-local EventId.
  struct EventRef {
    int shard = -1;
    EventId id = kInvalidEvent;
    bool valid() const { return shard >= 0 && id != kInvalidEvent; }
  };

  explicit ShardedSimulation(ShardedConfig config = {});
  ~ShardedSimulation();

  ShardedSimulation(const ShardedSimulation&) = delete;
  ShardedSimulation& operator=(const ShardedSimulation&) = delete;

  int shard_count() const { return static_cast<int>(shards_.size()); }
  const ShardedConfig& config() const { return config_; }

  /// Global barrier time: every shard has fully executed all events strictly
  /// before this time.
  Time Now() const { return now_; }
  /// A shard's local clock (its Simulation's Now()).
  Time Now(int shard) const { return shards_[shard]->sim.Now(); }

  /// Schedules `fn` on `shard` at absolute time `t`.
  ///
  /// From outside any shard callback (setup code, between RunUntil calls)
  /// this inserts directly — any shard, any time >= Now(). From inside a
  /// callback running on the same shard it also inserts directly. From a
  /// callback on a *different* shard the event is buffered in the sender's
  /// outbox and transferred at the next window barrier; if `t` lands inside
  /// the current window it is clamped to the window end and
  /// lookahead_violations() is bumped — a model bug (latency below the
  /// window), made visible instead of silently non-deterministic.
  EventRef ScheduleAt(int shard, Time t, EventCallback fn);
  EventRef ScheduleAfter(int shard, Duration delay, EventCallback fn);

  /// Cancels a pending event. Only valid from the event's own shard or from
  /// outside the drain loop (cross-shard cancellation during a parallel
  /// drain would race the target heap). Returns true if it was pending.
  bool Cancel(const EventRef& ref);

  /// Runs every shard's events with time <= t in conservative windows, then
  /// advances all clocks to exactly t.
  void RunUntil(Time t);

  /// Aggregates across shards.
  std::size_t pending() const;
  std::uint64_t executed() const;
  std::uint64_t lifetime_events() const;
  bool exhausted() const;
  /// Ok while every shard is healthy; otherwise the first exhausted shard's
  /// CapacityStatus, prefixed with the shard index.
  Status CapacityStatus() const;

  std::uint64_t windows() const { return windows_; }
  std::uint64_t cross_shard_sends() const { return cross_shard_sends_; }
  /// Cross-shard sends whose requested fire time fell inside the sending
  /// window (clamped to the window end). Always 0 for a correctly-modelled
  /// system; counted, not asserted, so benches can report it. Accumulated
  /// per sending shard (thread-owned during drains), summed here.
  std::uint64_t lookahead_violations() const {
    std::uint64_t n = 0;
    for (const auto& s : shards_) n += s->lookahead_violations;
    return n;
  }

  /// Direct access to a shard's engine (tests, capacity injection).
  Simulation& shard(int i) { return shards_[i]->sim; }
  void InjectLifetimeEventCountForTest(int shard, std::uint64_t count) {
    shards_[shard]->sim.InjectLifetimeEventCountForTest(count);
  }

 private:
  struct PendingSend {
    int target;
    Time at;
    EventCallback fn;
  };

  /// Cache-line aligned so adjacent shards' hot counters never false-share
  /// under threaded drains.
  struct alignas(64) Shard {
    Simulation sim;
    /// Cross-shard sends originated by this shard during the current
    /// window. Only touched by the thread draining this shard, and by the
    /// barrier thread after the drain handshake.
    std::vector<PendingSend> outbox;
    std::uint64_t lookahead_violations = 0;
  };

  void DrainShards(Time target);
  void FlushOutboxes();
  void WorkerLoop();
  void StartWorkers();

  ShardedConfig config_;
  Duration window_;
  std::vector<std::unique_ptr<Shard>> shards_;

  Time now_{0};
  /// End of the window currently being drained; cross-shard sends clamp to
  /// this. Written only at the barrier (single-threaded), read by drains.
  Time window_end_{0};
  std::uint64_t windows_ = 0;
  std::uint64_t cross_shard_sends_ = 0;

  // Worker pool (created lazily on the first threaded drain).
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::uint64_t generation_ = 0;  // bumped per drain pass
  Time drain_target_{0};
  int workers_done_ = 0;
  bool stop_ = false;
  std::atomic<int> next_shard_{0};
};

/// Deterministic shard assignment for entity `index` under `seed`: a
/// splitmix64 hash of (seed, index) mapped onto the node shards
/// 1..node_shards. Pure function of its arguments — never pointer values or
/// container iteration order — so shard layouts (and therefore
/// BENCH_scale.json) are byte-reproducible across runs and platforms.
int ShardForIndex(std::uint64_t seed, std::uint64_t index, int node_shards);

/// The underlying mix, exposed for model code that needs more deterministic
/// per-entity draws from the same stream discipline.
std::uint64_t SplitMix64(std::uint64_t x);

}  // namespace ks::sim
