#pragma once

#include <cstdint>
#include <optional>
#include <type_traits>
#include <vector>

#include "common/status.hpp"
#include "common/time.hpp"
#include "sim/event_callback.hpp"

namespace ks::sim {

/// Opaque handle to a scheduled event. Encodes (sequence, slot) so Cancel()
/// resolves the event in O(1) with a single comparison — no hash lookup.
/// Callers treat it as an opaque token exactly as before.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

/// Deterministic discrete-event simulation core.
///
/// Every cluster-scale experiment in this reproduction runs on one of these:
/// components (kubelet sync loops, the token backend's quota timers, client
/// request processes) schedule callbacks at absolute or relative virtual
/// times, and the engine executes them in (time, insertion-order) order.
/// Ties are broken by insertion order, which makes runs reproducible given
/// a fixed seed — there is no dependence on heap iteration order or real
/// wall-clock.
///
/// Internals (see docs/performance.md for the design rationale):
///  - callbacks live in a slot arena as EventCallback (small-buffer
///    optimized; captures <= 56 bytes never allocate) and are *moved*, not
///    copied, on fire; free slots recycle through a free list, so
///    steady-state timer churn performs zero allocations;
///  - the ready queue is a 4-ary min-heap of 16-byte (time, key) entries
///    laid out so every 4-child sibling group shares one cache line — a
///    sift touches one line per level instead of up to four;
///  - delete-min uses the bottom-up ("Wegener") variant: the hole descends
///    the min-child path comparison-free against the displaced leaf, which
///    then sifts up a short distance — roughly half the comparisons of the
///    textbook algorithm;
///  - every slot is generation-stamped: Cancel() invalidates the slot in
///    O(1) and the heap entry dies lazily when it surfaces (or at the next
///    purge, which keeps dead entries bounded by the live count). There is
///    no tombstone set, and pending() is an exact live counter by
///    construction, so cancelling a fired id is a correct no-op and
///    pending() can never underflow.
///
/// Capacity limits of the packed event key (documented, checked at
/// runtime): at most 2^24 - 1 events pending at once, at most 2^40 - 1
/// events scheduled over a Simulation's lifetime. Hitting either limit is
/// not a crash: ScheduleAt/ScheduleAfter return kInvalidEvent, the engine
/// latches into an exhausted state (CapacityStatus() reports which limit
/// tripped and the counts), and a single diagnostic goes to stderr.
class Simulation {
 public:
  Simulation() = default;
  ~Simulation();
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  Time Now() const { return now_; }

  /// Schedules `fn` at absolute virtual time `t` (>= Now()). Returns an id
  /// usable with Cancel().
  EventId ScheduleAt(Time t, EventCallback fn);

  /// Schedules `fn` after `delay` from now.
  EventId ScheduleAfter(Duration delay, EventCallback fn);

  /// Fast paths: construct the callable directly in its event slot instead
  /// of building an EventCallback and relocating it in.
  template <typename F,
            std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventCallback> &&
                    std::is_invocable_r_v<void, std::decay_t<F>&>,
                int> = 0>
  EventId ScheduleAt(Time t, F&& fn) {
    if (t < now_) t = now_;
    if (!HasCapacity()) return kInvalidEvent;
    const std::uint32_t slot = AcquireSlot();
    Slot& s = slots_[slot];
    s.fn.emplace(std::forward<F>(fn));
    const std::uint64_t key = (next_seq_++ << kSlotBits) | slot;
    s.key = key;
    ++live_;
    PushHeap(HeapEntry{t, key});
    return key;
  }

  template <typename F,
            std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventCallback> &&
                    std::is_invocable_r_v<void, std::decay_t<F>&>,
                int> = 0>
  EventId ScheduleAfter(Duration delay, F&& fn) {
    if (delay.count() < 0) delay = Duration{0};
    return ScheduleAt(now_ + delay, std::forward<F>(fn));
  }

  /// Cancels a pending event. Safe to call with an id that already fired or
  /// was already cancelled (no-op). Returns true if the event was pending.
  bool Cancel(EventId id);

  /// Executes the next pending event, if any. Returns false when the queue
  /// is empty.
  bool Step();

  /// Runs until the queue drains or `max_events` fire (guard against
  /// accidental infinite self-rescheduling in tests).
  void Run(std::uint64_t max_events = UINT64_MAX);

  /// Runs events with time <= t, then advances the clock to exactly t even
  /// if no event lands on it.
  void RunUntil(Time t);

  /// Fire time of the earliest pending event, or nullopt when the queue is
  /// empty. Purges stale (cancelled) roots first, so the answer is exact.
  /// The sharded engine uses this to skip idle shards straight to the next
  /// populated synchronization window.
  std::optional<Time> NextEventTime() {
    DropStaleRoots();
    if (heap_size_ == 0) return std::nullopt;
    return heap_[0].at;
  }

  /// Exact count of live (scheduled, not yet fired or cancelled) events.
  std::size_t pending() const { return live_; }
  std::uint64_t executed() const { return executed_; }

  /// Events ever scheduled over this Simulation's lifetime (the id-space
  /// consumption measured against the 2^40 - 1 lifetime cap).
  std::uint64_t lifetime_events() const { return next_seq_ - 1; }

  /// True once either capacity limit has tripped. From that point every
  /// Schedule call returns kInvalidEvent; already-queued events still run.
  bool exhausted() const { return exhausted_; }

  /// Ok while healthy; once exhausted, a kResourceExhausted status naming
  /// the limit that tripped and the current counts.
  Status CapacityStatus() const;

  /// Test hook: pretends `count` events were already scheduled over this
  /// Simulation's lifetime, so a unit test can exercise the exhaustion
  /// guard without scheduling ~10^12 real events. Only ratchets forward.
  void InjectLifetimeEventCountForTest(std::uint64_t count) {
    if (count + 1 > next_seq_) next_seq_ = count + 1;
  }

 private:
  /// Heap entry: fire time plus the packed event key. The key doubles as
  /// the public EventId and as the tie-breaker — its high 40 bits are the
  /// global insertion sequence, so comparing keys compares insertion order.
  struct HeapEntry {
    Time at;
    std::uint64_t key;
  };

  struct Slot {
    EventCallback fn;
    std::uint64_t key = 0;  // key of the current occupant; 0 = vacant
  };

  static constexpr int kSlotBits = 24;
  static constexpr std::uint64_t kSlotMask = (1ull << kSlotBits) - 1;
  static constexpr std::uint64_t kMaxSeq = (1ull << 40) - 1;
  /// Arena-reset threshold: once the queue drains, arenas larger than this
  /// are released so a burst does not pin its peak footprint forever.
  static constexpr std::size_t kCompactThreshold = 4096;
  /// A stale-entry purge triggers when dead heap entries outnumber live
  /// ones by this margin.
  static constexpr std::uint32_t kPurgeSlack = 64;

  static bool Earlier(const HeapEntry& a, const HeapEntry& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.key < b.key;  // FIFO among same-time events
  }

  void PushHeap(HeapEntry e);
  void PopRoot();
  void SiftDown(std::uint32_t pos);
  /// Pops stale roots so heap_[0], when present, is always live.
  void DropStaleRoots();
  void PurgeStale();
  void GrowHeap();
  void FreeHeap();

  std::uint32_t AcquireSlot();
  void ReleaseSlot(std::uint32_t slot);
  void CompactIfDrained();
  /// Capacity gate run before every slot acquisition. Returns false (and
  /// latches the exhausted state, emitting one stderr diagnostic) when the
  /// lifetime id space or the pending-slot arena is spent.
  bool HasCapacity();
  void MarkExhausted(const char* limit);

  Time now_{0};
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::uint32_t live_ = 0;
  bool exhausted_ = false;

  /// 4-ary heap in a 64-byte-aligned buffer offset so element 1 starts a
  /// cache line: sibling groups [4i+1 .. 4i+4] each occupy exactly one
  /// line. raw_heap_ owns the allocation; heap_ = raw + 3.
  HeapEntry* heap_ = nullptr;
  void* raw_heap_ = nullptr;
  std::uint32_t heap_size_ = 0;
  std::uint32_t heap_cap_ = 0;

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
};

}  // namespace ks::sim
