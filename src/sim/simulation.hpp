#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/time.hpp"

namespace ks::sim {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

/// Deterministic discrete-event simulation core.
///
/// Every cluster-scale experiment in this reproduction runs on one of these:
/// components (kubelet sync loops, the token backend's quota timers, client
/// request processes) schedule callbacks at absolute or relative virtual
/// times, and the engine executes them in (time, insertion-order) order.
/// Ties are broken by insertion order, which makes runs reproducible given
/// a fixed seed — there is no dependence on heap iteration order or real
/// wall-clock.
class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  Time Now() const { return now_; }

  /// Schedules `fn` at absolute virtual time `t` (>= Now()). Returns an id
  /// usable with Cancel().
  EventId ScheduleAt(Time t, std::function<void()> fn);

  /// Schedules `fn` after `delay` from now.
  EventId ScheduleAfter(Duration delay, std::function<void()> fn);

  /// Cancels a pending event. Safe to call with an id that already fired or
  /// was already cancelled (no-op). Returns true if the event was pending.
  bool Cancel(EventId id);

  /// Executes the next pending event, if any. Returns false when the queue
  /// is empty.
  bool Step();

  /// Runs until the queue drains or `max_events` fire (guard against
  /// accidental infinite self-rescheduling in tests).
  void Run(std::uint64_t max_events = UINT64_MAX);

  /// Runs events with time <= t, then advances the clock to exactly t even
  /// if no event lands on it.
  void RunUntil(Time t);

  std::size_t pending() const { return queue_.size() - cancelled_.size(); }
  std::uint64_t executed() const { return executed_; }

 private:
  struct Event {
    Time at;
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.id > b.id;  // FIFO among same-time events
    }
  };

  Time now_{0};
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace ks::sim
