#include "sim/tick_hub.hpp"

#include <cassert>

namespace ks::sim {

TickHub::SubId TickHub::Subscribe(Duration period, EventCallback fn) {
  assert(period.count() > 0);
  const SubId id = next_id_++;
  Sub& sub = subs_[id];
  sub.period = period;
  sub.fn = std::move(fn);
  sub.next_due = sim_->Now() + period;
  Arm(id);
  return id;
}

bool TickHub::Unsubscribe(SubId id) {
  auto it = subs_.find(id);
  if (it == subs_.end()) return false;
  wheel_.Cancel(it->second.timer);
  subs_.erase(it);
  return true;
}

void TickHub::Arm(SubId id) {
  Sub& sub = subs_.at(id);
  sub.timer = wheel_.ScheduleAt(sub.next_due, [this, id] {
    auto it = subs_.find(id);
    if (it == subs_.end()) return;
    it->second.timer = kInvalidTimer;
    // Moved out so a callback that unsubscribes itself does not destroy
    // the callable mid-invocation.
    EventCallback fn = std::move(it->second.fn);
    ++fires_;
    fn();
    it = subs_.find(id);
    if (it == subs_.end()) return;  // unsubscribed itself
    it->second.fn = std::move(fn);
    it->second.next_due += it->second.period;
    Arm(id);
  });
}

}  // namespace ks::sim
