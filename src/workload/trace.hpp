#pragma once

#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "kubeshare/kubeshare.hpp"
#include "workload/host.hpp"

namespace ks::workload {

/// One job of a workload trace. Traces are the file interface of this
/// reproduction: the synthetic generators can be snapshotted to a trace,
/// edited, and replayed bit-for-bit — or a user can bring their own
/// cluster log converted to this format.
struct TraceEntry {
  double submit_s = 0.0;
  std::string name;
  std::string kind = "inference";  // "inference" | "training"
  // Inference: client demand + nominal duration; training: steps.
  double demand = 0.3;
  double duration_s = 60.0;
  int steps = 0;
  double kernel_ms = 20.0;
  // SharePod resource spec.
  double gpu_request = 0.3;
  double gpu_limit = 1.0;
  double gpu_mem = 0.2;
  double model_gb = 2.0;
  // Locality labels (empty = none).
  std::string affinity;
  std::string anti_affinity;
  std::string exclusion;
};

/// CSV header used by Parse/Format (one line per entry, '#' comments and
/// blank lines ignored):
///   submit_s,name,kind,demand,duration_s,steps,kernel_ms,
///   gpu_request,gpu_limit,gpu_mem,model_gb,affinity,anti_affinity,exclusion
Expected<std::vector<TraceEntry>> ParseTrace(std::istream& in);
void FormatTrace(const std::vector<TraceEntry>& entries, std::ostream& out);

/// Builds the Job object described by a trace entry.
std::unique_ptr<Job> MakeTraceJob(const TraceEntry& entry,
                                  std::uint64_t seed);

/// Materializes the synthetic §5.3 workload (Poisson arrivals, normal
/// demand) as a concrete trace — the bridge between the generators and the
/// file format: generate once, inspect/edit the CSV, replay bit-for-bit.
std::vector<TraceEntry> GenerateTrace(const struct WorkloadConfig& config);

/// Replays a trace against a cluster, through KubeShare (sharePods) or as
/// native whole-GPU pods.
class TraceReplayer {
 public:
  enum class Mode { kNative, kKubeShare };

  TraceReplayer(k8s::Cluster* cluster, WorkloadHost* host, Mode mode,
                kubeshare::KubeShare* kubeshare);

  /// Schedules every entry's submission. Entries must have unique names.
  Status Load(std::vector<TraceEntry> entries, std::uint64_t seed = 1);

  bool AllDone() const;
  std::size_t submitted() const { return submitted_; }

 private:
  void SubmitEntry(const TraceEntry& entry, std::uint64_t seed);

  k8s::Cluster* cluster_;
  WorkloadHost* host_;
  Mode mode_;
  kubeshare::KubeShare* kubeshare_;
  std::size_t total_ = 0;
  std::size_t submitted_ = 0;
};

}  // namespace ks::workload
