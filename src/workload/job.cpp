#include "workload/job.hpp"

#include <algorithm>
#include <cassert>

namespace ks::workload {

// ---- TrainingJob ----------------------------------------------------------

void TrainingJob::Start(cuda::CudaApi* api, sim::Simulation* /*sim*/,
                        DoneFn done) {
  assert(api != nullptr);
  api_ = api;
  done_ = std::move(done);

  gpu::DevicePtr model = 0;
  const cuda::CudaResult alloc = api_->MemAlloc(&model, spec_.model_bytes);
  if (alloc != cuda::CudaResult::kSuccess) {
    // Over-quota model: the device library rejected the allocation — the
    // crash mode the paper's memory interception turns into a clean error.
    if (done_) done_(false);
    return;
  }
  if (spec_.steps <= 0) {
    if (done_) done_(true);
    return;
  }
  gpu::KernelDesc kernel;
  kernel.nominal_duration = spec_.step_kernel;
  kernel.bandwidth_demand = spec_.bandwidth_demand;
  kernel.sm_demand = spec_.sm_demand;
  kernel.name = "train-step";
  // The whole run is one declared kernel stream: the steps are identical
  // and back to back, which is what lets the device retire them fused.
  const cuda::CudaResult r = api_->LaunchKernelStream(
      kernel, spec_.steps, cuda::kDefaultStream, [this](Time /*finish*/) {
        if (stopped_) return;
        ++completed_steps_;
        if (completed_steps_ >= spec_.steps) {
          finished_ = true;
          if (done_) done_(true);
        }
      });
  if (r != cuda::CudaResult::kSuccess && done_) done_(false);
}

void TrainingJob::Stop() {
  if (!stopped_ && !finished_ && api_ != nullptr) {
    // Freeze the step count at the analytic value before the probe's API
    // goes away with the container.
    completed_steps_ =
        static_cast<int>(api_->RetiredUnits(cuda::kDefaultStream));
  }
  stopped_ = true;
  finished_ = true;
  if (api_ != nullptr) (void)api_->CancelPending(cuda::kDefaultStream);
}

// ---- PhasedTrainingJob ------------------------------------------------------

void PhasedTrainingJob::Start(cuda::CudaApi* api, sim::Simulation* sim,
                              DoneFn done) {
  assert(api != nullptr && sim != nullptr);
  api_ = api;
  sim_ = sim;
  done_ = std::move(done);

  gpu::DevicePtr model = 0;
  if (api_->MemAlloc(&model, spec_.model_bytes) != cuda::CudaResult::kSuccess) {
    if (done_) done_(false);
    return;
  }
  if (spec_.epochs <= 0 || spec_.steps_per_epoch <= 0) {
    if (done_) done_(true);
    return;
  }
  NextEpoch();
}

void PhasedTrainingJob::Stop() {
  stopped_ = true;
  if (sim_ != nullptr && io_event_ != sim::kInvalidEvent) {
    sim_->Cancel(io_event_);
    io_event_ = sim::kInvalidEvent;
  }
  if (api_ != nullptr) (void)api_->CancelPending(cuda::kDefaultStream);
}

void PhasedTrainingJob::NextEpoch() {
  if (stopped_) return;
  gpu::KernelDesc kernel;
  kernel.nominal_duration = spec_.step_kernel;
  kernel.bandwidth_demand = spec_.bandwidth_demand;
  kernel.sm_demand = spec_.sm_demand;
  kernel.name = "phased-step";
  // Each compute burst is one declared stream; the off-GPU phase between
  // epochs is the membership boundary that naturally ends a fused run.
  const cuda::CudaResult r = api_->LaunchKernelStream(
      kernel, spec_.steps_per_epoch, cuda::kDefaultStream,
      [this](Time /*finish*/) {
        if (stopped_) return;
        if (++steps_in_epoch_ >= spec_.steps_per_epoch) FinishEpoch();
      });
  if (r != cuda::CudaResult::kSuccess && done_) done_(false);
}

void PhasedTrainingJob::FinishEpoch() {
  steps_in_epoch_ = 0;
  ++completed_epochs_;
  if (completed_epochs_ >= spec_.epochs) {
    if (done_) done_(true);
    return;
  }
  // The off-GPU phase: checkpoint + input pipeline. The GPU (and the
  // token) are free for anyone else.
  io_event_ = sim_->ScheduleAfter(spec_.io_per_epoch, [this] {
    io_event_ = sim::kInvalidEvent;
    NextEpoch();
  });
}

// ---- InferenceJob ---------------------------------------------------------

InferenceSpec InferenceSpec::ForDemand(double demand, int total_requests,
                                       Duration kernel) {
  InferenceSpec spec;
  spec.total_requests = total_requests;
  spec.kernel_per_request = kernel;
  spec.request_rate_hz = std::max(1e-6, demand / ToSeconds(kernel));
  return spec;
}

void InferenceJob::Start(cuda::CudaApi* api, sim::Simulation* sim,
                         DoneFn done) {
  assert(api != nullptr && sim != nullptr);
  api_ = api;
  sim_ = sim;
  done_ = std::move(done);
  rng_ = std::make_unique<Rng>(spec_.seed);

  gpu::DevicePtr model = 0;
  if (api_->MemAlloc(&model, spec_.model_bytes) != cuda::CudaResult::kSuccess) {
    if (done_) done_(false);
    return;
  }
  if (spec_.total_requests <= 0) {
    if (done_) done_(true);
    return;
  }
  ScheduleNextArrival();
}

void InferenceJob::Stop() {
  stopped_ = true;
  if (sim_ != nullptr && next_arrival_ != sim::kInvalidEvent) {
    sim_->Cancel(next_arrival_);
    next_arrival_ = sim::kInvalidEvent;
  }
  if (api_ != nullptr) (void)api_->CancelPending(cuda::kDefaultStream);
}

void InferenceJob::ScheduleNextArrival() {
  if (stopped_ || arrived_ >= spec_.total_requests) return;
  const auto mean =
      Duration{static_cast<std::int64_t>(1e6 / spec_.request_rate_hz)};
  next_arrival_ = sim_->ScheduleAfter(rng_->ExponentialInterarrival(mean),
                                      [this] { OnArrival(); });
}

void InferenceJob::OnArrival() {
  next_arrival_ = sim::kInvalidEvent;
  if (stopped_) return;
  ++arrived_;
  gpu::KernelDesc kernel;
  kernel.nominal_duration = spec_.kernel_per_request;
  kernel.bandwidth_demand = spec_.bandwidth_demand;
  kernel.sm_demand = spec_.sm_demand;
  kernel.name = "inference";
  const Time arrival = sim_->Now();
  // A declared single-unit stream: a backlog of queued requests presents
  // as a run of identical units the driver can coalesce and the device can
  // fuse. The unit's finish time is exact even when delivered in arrears.
  const cuda::CudaResult r = api_->LaunchKernelStream(
      kernel, 1, cuda::kDefaultStream,
      [this, arrival](Time finish) { OnServed(arrival, finish); });
  if (r != cuda::CudaResult::kSuccess) {
    if (done_) done_(false);
    return;
  }
  ScheduleNextArrival();
}

void InferenceJob::OnServed(Time arrival, Time finish) {
  if (stopped_) return;
  ++served_;
  latencies_.push_back(finish - arrival);
  if (served_ >= spec_.total_requests) {
    if (done_) done_(true);
  }
}

// ---- RequestServerJob -----------------------------------------------------

void RequestServerJob::Start(cuda::CudaApi* api, sim::Simulation* /*sim*/,
                             DoneFn done) {
  assert(api != nullptr);
  api_ = api;
  done_ = std::move(done);

  gpu::DevicePtr model = 0;
  if (api_->MemAlloc(&model, spec_.model_bytes) != cuda::CudaResult::kSuccess) {
    if (done_) done_(false);
    return;
  }
  // The server is up for good: `done` never fires on success — the replica
  // runs until its container is torn down from outside.
  up_ = true;
  if (lifecycle_) lifecycle_(this, true);
}

void RequestServerJob::Stop() {
  if (stopped_) return;
  // Order matters: stopped_ first, so no ServedFn fires out of teardown
  // (the lifecycle observer accounts the still-inflight requests as lost).
  stopped_ = true;
  const bool was_up = up_;
  up_ = false;
  if (api_ != nullptr) (void)api_->CancelPending(cuda::kDefaultStream);
  if (was_up && lifecycle_) lifecycle_(this, false);
}

bool RequestServerJob::Submit(Time arrival, ServedFn on_served) {
  if (!up_ || stopped_ || api_ == nullptr) return false;
  gpu::KernelDesc kernel;
  kernel.nominal_duration = spec_.kernel_per_request;
  kernel.bandwidth_demand = spec_.bandwidth_demand;
  kernel.sm_demand = spec_.sm_demand;
  kernel.name = "serve";
  ++inflight_;
  // Same single-unit declared stream as InferenceJob: a backlog presents
  // as a run of identical units the device can fuse, and the unit callback
  // carries the exact finish time even when delivered in arrears.
  const cuda::CudaResult r = api_->LaunchKernelStream(
      kernel, 1, cuda::kDefaultStream,
      [this, arrival, fn = std::move(on_served)](Time finish) {
        if (stopped_) return;
        --inflight_;
        ++served_;
        if (fn) fn(arrival, finish);
      });
  if (r != cuda::CudaResult::kSuccess) {
    --inflight_;
    return false;
  }
  return true;
}

}  // namespace ks::workload
