#pragma once

#include <string>

#include "common/rng.hpp"
#include "kubeshare/kubeshare.hpp"
#include "workload/host.hpp"
#include "workload/job.hpp"

namespace ks::workload {

/// Shape of a cluster-scale experiment workload, matching §5.3: "a set of
/// model inference jobs; the job inter-arrival time follows a Poisson
/// process, and the job GPU usage demand is randomly generated from a
/// normal distribution."
struct WorkloadConfig {
  int total_jobs = 200;
  /// Mean inter-arrival time of the Poisson arrival process.
  Duration mean_interarrival = Seconds(3.0);
  /// GPU demand distribution (truncated normal).
  double demand_mean = 0.3;
  double demand_stddev = 0.1;
  double demand_min = 0.05;
  double demand_max = 1.0;
  /// Job length when the job runs unthrottled. The client request count is
  /// derived per job as demand/kernel * duration, so duration is demand-
  /// independent — which is why native Kubernetes throughput is agnostic
  /// to the demand distribution (Fig 8b).
  Duration job_duration = Seconds(38.4);
  Duration kernel = Millis(20);
  /// Fractional device memory each job reserves (gpu_mem).
  double gpu_mem = 0.2;
  std::uint64_t model_bytes = 2ull << 30;
  std::int64_t cpu_millicores = 1000;
  std::uint64_t seed = 42;
  /// gpu_limit for KubeShare submissions: 1.0 leaves elasticity on.
  double gpu_limit = 1.0;
  /// Job flavor the generator emits: Poisson inference services (the
  /// paper's §5.3 mix) or continuous training jobs — the same compute
  /// volume issued as one back-to-back kernel stream per job, the
  /// kernel-heavy case that exercises the fused device path.
  enum class JobKind { kInference, kTraining };
  JobKind job_kind = JobKind::kInference;
};

/// Submits one generated workload to the cluster — either through
/// KubeShare sharePods (fractional requests) or as native Kubernetes pods
/// (one whole GPU each, the paper's baseline).
class WorkloadDriver {
 public:
  enum class Mode { kNative, kKubeShare };

  WorkloadDriver(k8s::Cluster* cluster, WorkloadHost* host, Mode mode,
                 kubeshare::KubeShare* kubeshare, WorkloadConfig config);

  /// Begins the Poisson arrival process.
  void Start();

  int submitted() const { return submitted_; }
  bool AllSubmitted() const { return submitted_ >= config_.total_jobs; }
  /// True once every submitted job has finished (successfully or not).
  bool AllDone() const;

  /// Throughput the paper reports: total completed jobs per minute of
  /// makespan (submission of the first job to completion of the last).
  double JobsPerMinute() const;
  Duration Makespan() const;

 private:
  void ScheduleNextArrival();
  void SubmitOne();

  k8s::Cluster* cluster_;
  WorkloadHost* host_;
  Mode mode_;
  kubeshare::KubeShare* kubeshare_;
  WorkloadConfig config_;
  Rng rng_;

  int submitted_ = 0;
  Time first_submit_{0};
  bool started_ = false;
};

}  // namespace ks::workload
