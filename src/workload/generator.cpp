#include "workload/generator.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/log.hpp"
#include "k8s/resources.hpp"

namespace ks::workload {

WorkloadDriver::WorkloadDriver(k8s::Cluster* cluster, WorkloadHost* host,
                               Mode mode, kubeshare::KubeShare* kubeshare,
                               WorkloadConfig config)
    : cluster_(cluster),
      host_(host),
      mode_(mode),
      kubeshare_(kubeshare),
      config_(config),
      rng_(config.seed) {
  assert(cluster_ != nullptr && host_ != nullptr);
  assert(mode_ != Mode::kKubeShare || kubeshare_ != nullptr);
}

void WorkloadDriver::Start() {
  if (started_) return;
  started_ = true;
  first_submit_ = cluster_->sim().Now();
  if (config_.total_jobs <= 0) return;
  SubmitOne();  // first job arrives immediately
}

void WorkloadDriver::ScheduleNextArrival() {
  if (submitted_ >= config_.total_jobs) return;
  cluster_->sim().ScheduleAfter(
      rng_.ExponentialInterarrival(config_.mean_interarrival),
      [this] { SubmitOne(); });
}

void WorkloadDriver::SubmitOne() {
  const int index = submitted_++;
  const std::string name = "job-" + std::to_string(index);
  const double demand =
      rng_.TruncatedNormal(config_.demand_mean, config_.demand_stddev,
                           config_.demand_min, config_.demand_max);

  // Client request count so the unthrottled duration is job_duration.
  const double rate = demand / ToSeconds(config_.kernel);
  const int requests = std::max(
      1, static_cast<int>(std::lround(rate * ToSeconds(config_.job_duration))));
  if (config_.job_kind == WorkloadConfig::JobKind::kTraining) {
    TrainingSpec spec;
    spec.steps = requests;  // same compute volume, issued back to back
    spec.step_kernel = config_.kernel;
    spec.model_bytes = config_.model_bytes;
    host_->ExpectJob(name,
                     [spec] { return std::make_unique<TrainingJob>(spec); });
  } else {
    InferenceSpec spec;
    spec.total_requests = requests;
    spec.request_rate_hz = rate;
    spec.kernel_per_request = config_.kernel;
    spec.model_bytes = config_.model_bytes;
    spec.seed = config_.seed + static_cast<std::uint64_t>(index) * 7919 + 1;
    host_->ExpectJob(
        name, [spec] { return std::make_unique<InferenceJob>(spec); });
  }

  if (mode_ == Mode::kKubeShare) {
    kubeshare::SharePod sp;
    sp.meta.name = name;
    sp.spec.pod.requests.Set(k8s::kResourceCpu, config_.cpu_millicores);
    sp.spec.gpu.gpu_request = demand;
    sp.spec.gpu.gpu_limit = std::max(demand, config_.gpu_limit);
    sp.spec.gpu.gpu_mem = config_.gpu_mem;
    const Status s = kubeshare_->CreateSharePod(sp);
    if (!s.ok()) KS_LOG(kError) << "sharePod submit failed: " << s;
  } else {
    k8s::Pod pod;
    pod.meta.name = name;
    pod.spec.requests.Set(k8s::kResourceCpu, config_.cpu_millicores);
    pod.spec.requests.Set(k8s::kResourceNvidiaGpu, 1);
    const Status s = cluster_->api().pods().Create(pod);
    if (!s.ok()) KS_LOG(kError) << "pod submit failed: " << s;
  }

  ScheduleNextArrival();
}

bool WorkloadDriver::AllDone() const {
  return AllSubmitted() &&
         host_->completed() + host_->failed() >=
             static_cast<std::size_t>(config_.total_jobs);
}

Duration WorkloadDriver::Makespan() const {
  if (host_->completion_times().empty()) return Duration{0};
  return host_->completion_times().back() - first_submit_;
}

double WorkloadDriver::JobsPerMinute() const {
  const Duration span = Makespan();
  if (span.count() <= 0) return 0.0;
  return static_cast<double>(host_->completed()) / (ToSeconds(span) / 60.0);
}

}  // namespace ks::workload
