#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "cuda/api.hpp"
#include "sim/simulation.hpp"

namespace ks::workload {

/// A GPU application running inside a container. A Job sees only the CUDA
/// API surface — whether that surface is the raw driver context or the
/// vGPU device library's interposed frontend is invisible to it, exactly
/// as LD_PRELOAD is invisible to a real TensorFlow process.
class Job {
 public:
  using DoneFn = std::function<void(bool success)>;

  virtual ~Job() = default;

  /// Begins execution against `api`. `done` fires exactly once, when the
  /// job's work completes (or fails, e.g. on an out-of-memory rejection).
  virtual void Start(cuda::CudaApi* api, sim::Simulation* sim, DoneFn done) = 0;

  /// The container is being killed: cancel pending timers; no further
  /// `done` must fire.
  virtual void Stop() = 0;
};

/// Model-training job (the paper's TensorFlow ResNet-50 workload): allocate
/// the model, then run a fixed number of training steps back to back — a
/// continuous kernel stream that will consume every GPU cycle it is
/// allowed. "We fixed all the training parameters, and adjusted the number
/// of training steps to control the length of job execution time" (§5.1).
struct TrainingSpec {
  int steps = 500;
  Duration step_kernel = Millis(10);
  std::uint64_t model_bytes = 2ull << 30;
  double bandwidth_demand = 0.0;
  /// Fraction of the device's SMs one step can saturate (KernelDesc::
  /// sm_demand). Matters only on spatial slices.
  double sm_demand = 1.0;
};

class TrainingJob final : public Job {
 public:
  explicit TrainingJob(TrainingSpec spec) : spec_(spec) {}

  void Start(cuda::CudaApi* api, sim::Simulation* sim, DoneFn done) override;
  void Stop() override;

  /// Steps finished so far. While running this is the driver's analytic
  /// count, which stays exact mid-batch when the device has fused the
  /// stream and unit callbacks are delivered in arrears.
  int completed_steps() const {
    if (api_ != nullptr && !finished_) {
      return static_cast<int>(api_->RetiredUnits(cuda::kDefaultStream));
    }
    return completed_steps_;
  }

 private:
  TrainingSpec spec_;
  cuda::CudaApi* api_ = nullptr;
  DoneFn done_;
  int completed_steps_ = 0;
  bool stopped_ = false;
  bool finished_ = false;
};

/// Phased training job: epochs of back-to-back GPU steps separated by
/// off-GPU phases (checkpointing, data loading, evaluation on CPU). This
/// is the "burstiness of GPU workload" the paper's introduction cites as a
/// core reason single-tenant GPUs sit under-utilized: the job's duty cycle
/// is compute / (compute + io), and everything outside the compute bursts
/// is capacity another container could use.
struct PhasedTrainingSpec {
  int epochs = 10;
  int steps_per_epoch = 100;
  Duration step_kernel = Millis(10);
  /// Off-GPU time after each epoch (checkpoint write + next-epoch input
  /// pipeline).
  Duration io_per_epoch = Seconds(1.0);
  std::uint64_t model_bytes = 2ull << 30;
  double bandwidth_demand = 0.0;
  /// Fraction of the device's SMs one step can saturate (KernelDesc::
  /// sm_demand). Matters only on spatial slices.
  double sm_demand = 1.0;

  /// GPU usage fraction when running alone.
  double duty_cycle() const {
    const double compute = ToSeconds(step_kernel) * steps_per_epoch;
    return compute / (compute + ToSeconds(io_per_epoch));
  }
};

class PhasedTrainingJob final : public Job {
 public:
  explicit PhasedTrainingJob(PhasedTrainingSpec spec) : spec_(spec) {}
  ~PhasedTrainingJob() override { Stop(); }

  void Start(cuda::CudaApi* api, sim::Simulation* sim, DoneFn done) override;
  void Stop() override;

  int completed_epochs() const { return completed_epochs_; }

 private:
  void NextEpoch();
  void FinishEpoch();

  PhasedTrainingSpec spec_;
  cuda::CudaApi* api_ = nullptr;
  sim::Simulation* sim_ = nullptr;
  DoneFn done_;
  int completed_epochs_ = 0;
  int steps_in_epoch_ = 0;
  bool stopped_ = false;
  sim::EventId io_event_ = sim::kInvalidEvent;
};

/// Model-inference job (the paper's TF-Serving DeepLab workload): client
/// requests arrive as a Poisson process; each request runs one
/// forward-propagation kernel. GPU usage is therefore roughly proportional
/// to the client request rate (paper Fig 5), and the job's demand can be
/// dialed by `request_rate_hz`. The job finishes when `total_requests`
/// have been served.
struct InferenceSpec {
  int total_requests = 100;
  double request_rate_hz = 10.0;
  Duration kernel_per_request = Millis(20);
  std::uint64_t model_bytes = 2ull << 30;
  double bandwidth_demand = 0.0;
  /// Fraction of the device's SMs one step can saturate (KernelDesc::
  /// sm_demand). Matters only on spatial slices.
  double sm_demand = 1.0;
  std::uint64_t seed = 1;

  /// GPU usage fraction this job generates when unthrottled.
  double demand() const {
    return request_rate_hz * ToSeconds(kernel_per_request);
  }

  /// Convenience: pick a request rate that yields `demand` GPU usage.
  static InferenceSpec ForDemand(double demand, int total_requests,
                                 Duration kernel = Millis(20));
};

class InferenceJob final : public Job {
 public:
  explicit InferenceJob(InferenceSpec spec) : spec_(spec) {}
  // Destruction without a prior Stop() happens when a job's container dies
  // without a stop notification; the pending arrival timer must not
  // outlive the object.
  ~InferenceJob() override { Stop(); }

  void Start(cuda::CudaApi* api, sim::Simulation* sim, DoneFn done) override;
  void Stop() override;

  int served_requests() const { return served_; }
  int arrived_requests() const { return arrived_; }

  /// Per-request latency (client arrival -> response), in arrival order.
  /// The paper evaluates throughput only; request latency is where the
  /// token quota becomes visible to the service's clients (a request
  /// arriving while another container holds the token waits out the
  /// remaining quota) — bench_study_latency measures exactly that.
  const std::vector<Duration>& request_latencies() const {
    return latencies_;
  }

 private:
  void ScheduleNextArrival();
  void OnArrival();
  void OnServed(Time arrival, Time finish);

  InferenceSpec spec_;
  cuda::CudaApi* api_ = nullptr;
  sim::Simulation* sim_ = nullptr;
  DoneFn done_;
  std::unique_ptr<Rng> rng_;
  int arrived_ = 0;
  int served_ = 0;
  std::vector<Duration> latencies_;
  bool stopped_ = false;
  sim::EventId next_arrival_ = sim::kInvalidEvent;
};

/// One always-on replica of an inference service (TF-Serving process
/// behind a load balancer). Unlike InferenceJob, which generates its own
/// client arrivals, a RequestServerJob is externally fed: the serving
/// frontend (src/serving/) pushes requests into it via Submit(), so the
/// arrival process can live in one batched generator per service instead
/// of one timer per replica. The job never completes on its own — it
/// serves until its container is torn down (replicaset scale-down, node
/// crash), which is what makes it the unit the autoscaler scales.
struct RequestServerSpec {
  Duration kernel_per_request = Millis(10);
  std::uint64_t model_bytes = 1ull << 30;
  double bandwidth_demand = 0.0;
  /// Fraction of the device's SMs one request can saturate (KernelDesc::
  /// sm_demand). Matters only on spatial slices.
  double sm_demand = 1.0;
};

class RequestServerJob final : public Job {
 public:
  /// Fires when a submitted request's kernel retires. `arrival` is the
  /// client-side arrival time the latency is measured from; `finish` is
  /// the kernel's exact retire time (may be delivered in arrears under
  /// fusion — use it, not the current simulation time).
  using ServedFn = std::function<void(Time arrival, Time finish)>;
  /// Replica lifecycle: up=true once the model is resident and the replica
  /// can take requests; up=false when the container is being torn down
  /// (any still-queued requests die with it).
  using LifecycleFn = std::function<void(RequestServerJob* self, bool up)>;

  RequestServerJob(RequestServerSpec spec, LifecycleFn lifecycle)
      : spec_(spec), lifecycle_(std::move(lifecycle)) {}
  ~RequestServerJob() override { Stop(); }

  void Start(cuda::CudaApi* api, sim::Simulation* sim, DoneFn done) override;
  void Stop() override;

  /// Enqueues one request (one forward-propagation kernel). Returns false
  /// if the replica is not up — the caller keeps ownership of the request
  /// and must re-dispatch or account for it.
  bool Submit(Time arrival, ServedFn on_served);

  bool up() const { return up_; }
  std::uint64_t served() const { return served_; }
  /// Requests submitted but not yet retired.
  std::uint64_t inflight() const { return inflight_; }

 private:
  RequestServerSpec spec_;
  LifecycleFn lifecycle_;
  cuda::CudaApi* api_ = nullptr;
  DoneFn done_;
  bool stopped_ = false;
  bool up_ = false;
  std::uint64_t served_ = 0;
  std::uint64_t inflight_ = 0;
};

}  // namespace ks::workload
