#include "workload/trace.hpp"

#include <cassert>
#include <cmath>
#include <sstream>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "k8s/resources.hpp"
#include "workload/generator.hpp"
#include "workload/job.hpp"

namespace ks::workload {

namespace {

constexpr int kFieldCount = 14;

std::vector<std::string> SplitCsv(const std::string& line) {
  std::vector<std::string> out;
  std::stringstream ss(line);
  std::string field;
  while (std::getline(ss, field, ',')) out.push_back(field);
  // A trailing comma yields an implicit empty last field.
  if (!line.empty() && line.back() == ',') out.emplace_back();
  return out;
}

Expected<double> ParseDouble(const std::string& s, const char* what) {
  try {
    std::size_t used = 0;
    const double v = std::stod(s, &used);
    if (used != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    return InvalidArgumentError(std::string("bad ") + what + ": '" + s + "'");
  }
}

}  // namespace

Expected<std::vector<TraceEntry>> ParseTrace(std::istream& in) {
  std::vector<TraceEntry> out;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    // Strip trailing CR (CRLF traces) and skip comments/blanks/header.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    if (line.rfind("submit_s,", 0) == 0) continue;  // header row
    const auto fields = SplitCsv(line);
    if (fields.size() != kFieldCount) {
      return InvalidArgumentError("line " + std::to_string(lineno) +
                                  ": expected " +
                                  std::to_string(kFieldCount) + " fields, got " +
                                  std::to_string(fields.size()));
    }
    TraceEntry e;
    auto submit = ParseDouble(fields[0], "submit_s");
    if (!submit.ok()) return submit.status();
    e.submit_s = *submit;
    e.name = fields[1];
    if (e.name.empty()) {
      return InvalidArgumentError("line " + std::to_string(lineno) +
                                  ": empty job name");
    }
    e.kind = fields[2];
    if (e.kind != "inference" && e.kind != "training") {
      return InvalidArgumentError("line " + std::to_string(lineno) +
                                  ": unknown kind '" + e.kind + "'");
    }
    auto demand = ParseDouble(fields[3], "demand");
    auto duration = ParseDouble(fields[4], "duration_s");
    auto steps = ParseDouble(fields[5], "steps");
    auto kernel = ParseDouble(fields[6], "kernel_ms");
    auto request = ParseDouble(fields[7], "gpu_request");
    auto limit = ParseDouble(fields[8], "gpu_limit");
    auto mem = ParseDouble(fields[9], "gpu_mem");
    auto model = ParseDouble(fields[10], "model_gb");
    for (const auto* v : {&demand, &duration, &steps, &kernel, &request,
                          &limit, &mem, &model}) {
      if (!v->ok()) return v->status();
    }
    e.demand = *demand;
    e.duration_s = *duration;
    e.steps = static_cast<int>(*steps);
    e.kernel_ms = *kernel;
    e.gpu_request = *request;
    e.gpu_limit = *limit;
    e.gpu_mem = *mem;
    e.model_gb = *model;
    e.affinity = fields[11];
    e.anti_affinity = fields[12];
    e.exclusion = fields[13];
    out.push_back(std::move(e));
  }
  return out;
}

void FormatTrace(const std::vector<TraceEntry>& entries, std::ostream& out) {
  // Full round-trip precision: default stream precision truncates to 6
  // significant digits, which would shift replayed arrival times.
  out.precision(15);
  out << "submit_s,name,kind,demand,duration_s,steps,kernel_ms,"
         "gpu_request,gpu_limit,gpu_mem,model_gb,affinity,anti_affinity,"
         "exclusion\n";
  for (const TraceEntry& e : entries) {
    out << e.submit_s << ',' << e.name << ',' << e.kind << ',' << e.demand
        << ',' << e.duration_s << ',' << e.steps << ',' << e.kernel_ms << ','
        << e.gpu_request << ',' << e.gpu_limit << ',' << e.gpu_mem << ','
        << e.model_gb << ',' << e.affinity << ',' << e.anti_affinity << ','
        << e.exclusion << '\n';
  }
}

std::unique_ptr<Job> MakeTraceJob(const TraceEntry& entry,
                                  std::uint64_t seed) {
  const auto model_bytes =
      static_cast<std::uint64_t>(entry.model_gb * 1024.0 * 1024.0 * 1024.0);
  if (entry.kind == "training") {
    TrainingSpec spec;
    spec.steps = entry.steps;
    spec.step_kernel =
        Duration{static_cast<std::int64_t>(entry.kernel_ms * 1000)};
    spec.model_bytes = model_bytes;
    return std::make_unique<TrainingJob>(spec);
  }
  InferenceSpec spec = InferenceSpec::ForDemand(
      entry.demand,
      std::max(1, static_cast<int>(std::lround(
                      entry.demand / (entry.kernel_ms / 1000.0) *
                      entry.duration_s))),
      Duration{static_cast<std::int64_t>(entry.kernel_ms * 1000)});
  spec.model_bytes = model_bytes;
  spec.seed = seed;
  return std::make_unique<InferenceJob>(spec);
}

std::vector<TraceEntry> GenerateTrace(const WorkloadConfig& config) {
  // Mirrors WorkloadDriver::SubmitOne: the same seed yields the same
  // arrival times and demands, so a generated trace replays the driver's
  // workload exactly.
  Rng rng(config.seed);
  std::vector<TraceEntry> out;
  out.reserve(static_cast<std::size_t>(std::max(0, config.total_jobs)));
  Time at{0};
  for (int i = 0; i < config.total_jobs; ++i) {
    TraceEntry e;
    e.submit_s = ToSeconds(at);
    e.name = "job-" + std::to_string(i);
    e.kind = "inference";
    e.demand = rng.TruncatedNormal(config.demand_mean, config.demand_stddev,
                                   config.demand_min, config.demand_max);
    e.duration_s = ToSeconds(config.job_duration);
    e.kernel_ms = ToMillis(config.kernel);
    e.gpu_request = e.demand;
    e.gpu_limit = std::max(e.demand, config.gpu_limit);
    e.gpu_mem = config.gpu_mem;
    e.model_gb = static_cast<double>(config.model_bytes) /
                 (1024.0 * 1024.0 * 1024.0);
    out.push_back(std::move(e));
    at += rng.ExponentialInterarrival(config.mean_interarrival);
  }
  return out;
}

TraceReplayer::TraceReplayer(k8s::Cluster* cluster, WorkloadHost* host,
                             Mode mode, kubeshare::KubeShare* kubeshare)
    : cluster_(cluster), host_(host), mode_(mode), kubeshare_(kubeshare) {
  assert(cluster_ != nullptr && host_ != nullptr);
  assert(mode_ != Mode::kKubeShare || kubeshare_ != nullptr);
}

Status TraceReplayer::Load(std::vector<TraceEntry> entries,
                           std::uint64_t seed) {
  for (std::size_t i = 0; i < entries.size(); ++i) {
    for (std::size_t j = i + 1; j < entries.size(); ++j) {
      if (entries[i].name == entries[j].name) {
        return InvalidArgumentError("duplicate job name: " + entries[i].name);
      }
    }
  }
  total_ += entries.size();
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const TraceEntry entry = entries[i];
    const std::uint64_t job_seed = seed + i * 6151 + 1;
    cluster_->sim().ScheduleAt(Seconds(entry.submit_s),
                               [this, entry, job_seed] {
      SubmitEntry(entry, job_seed);
    });
  }
  return Status::Ok();
}

void TraceReplayer::SubmitEntry(const TraceEntry& entry, std::uint64_t seed) {
  ++submitted_;
  host_->ExpectJob(entry.name, [entry, seed] {
    return MakeTraceJob(entry, seed);
  });
  if (mode_ == Mode::kKubeShare) {
    kubeshare::SharePod sp;
    sp.meta.name = entry.name;
    sp.spec.gpu.gpu_request = entry.gpu_request;
    sp.spec.gpu.gpu_limit = entry.gpu_limit;
    sp.spec.gpu.gpu_mem = entry.gpu_mem;
    if (!entry.affinity.empty()) {
      sp.spec.locality.affinity = Label(entry.affinity);
    }
    if (!entry.anti_affinity.empty()) {
      sp.spec.locality.anti_affinity = Label(entry.anti_affinity);
    }
    if (!entry.exclusion.empty()) {
      sp.spec.locality.exclusion = Label(entry.exclusion);
    }
    const Status s = kubeshare_->CreateSharePod(sp);
    if (!s.ok()) KS_LOG(kError) << "trace submit failed: " << s;
  } else {
    k8s::Pod pod;
    pod.meta.name = entry.name;
    pod.spec.requests.Set(k8s::kResourceNvidiaGpu, 1);
    const Status s = cluster_->api().pods().Create(pod);
    if (!s.ok()) KS_LOG(kError) << "trace submit failed: " << s;
  }
}

bool TraceReplayer::AllDone() const {
  return submitted_ >= total_ &&
         host_->completed() + host_->failed() >= total_;
}

}  // namespace ks::workload
