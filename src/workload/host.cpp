#include "workload/host.hpp"

#include <algorithm>
#include <cassert>

#include "common/log.hpp"

namespace ks::workload {

WorkloadHost::WorkloadHost(k8s::Cluster* cluster) : cluster_(cluster) {
  assert(cluster_ != nullptr);
  if (cluster_->config().oversub.enabled) {
    memory_overcommit_ = true;
    swap_config_ = cluster_->config().oversub.swap;
  }
  cluster_->SetContainerStartHook(
      [this](const k8s::ContainerInstance& inst) { OnContainerStart(inst); });
  cluster_->SetContainerStopHook(
      [this](const k8s::ContainerInstance& inst) { OnContainerStop(inst); });
}

void WorkloadHost::EnableMemoryOvercommit(double link_bandwidth_bytes_per_s) {
  memory_overcommit_ = true;
  swap_config_.link_bandwidth_bytes_per_s = link_bandwidth_bytes_per_s;
}

const vgpu::SwapManager* WorkloadHost::SwapFor(const GpuUuid& uuid) const {
  auto it = swaps_.find(uuid);
  return it == swaps_.end() ? nullptr : it->second.get();
}

void WorkloadHost::ExpectJob(const std::string& name, JobFactory factory) {
  factories_[name] = std::move(factory);
  records_[name].submitted = cluster_->sim().Now();
}

std::string WorkloadHost::JobNameFor(const k8s::ContainerInstance& inst) {
  auto it = inst.env.find(kubeshare::kEnvSharePod);
  if (it != inst.env.end()) return it->second;
  return inst.pod_name;
}

void WorkloadHost::OnContainerStart(const k8s::ContainerInstance& inst) {
  const std::string job_name = JobNameFor(inst);
  auto fit = factories_.find(job_name);
  if (fit == factories_.end()) return;  // not one of ours (acquisition pods)
  if (inst.visible_gpus.empty()) {
    KS_LOG(kError) << "container " << inst.pod_name << " has no GPU";
    FinishJob(job_name, false);
    (void)cluster_->ExitPodContainer(inst.pod_name, false);
    return;
  }

  auto stack = std::make_shared<Stack>();
  stack->job_name = job_name;
  gpu::GpuDevice* device = inst.visible_gpus.front();
  stack->ctx = std::make_unique<cuda::CudaContext>(device, inst.id);
  cuda::CudaApi* api = stack->ctx.get();

  // Install the vGPU device library when DevMgr configured one; otherwise
  // offer the container to the registered baseline decorator.
  if (auto binding = kubeshare::KubeShare::ParseBinding(inst.env)) {
    vgpu::TokenBackendApi* backend = cluster_->BackendForGpu(device->uuid());
    assert(backend != nullptr);
    if (cluster_->config().spatial.enabled && binding->spec.slice_groups > 0) {
      // Pin the container's kernels and memory to its MIG-style slice
      // before any CUDA call runs; torn down on container stop.
      device->SetSliceAssignment(inst.id, binding->spec.slice_groups,
                                 cluster_->config().spatial.sm_groups);
      stack->sliced_device = device;
      stack->container_id = inst.id;
    }
    stack->hook = std::make_unique<vgpu::FrontendHook>(
        stack->ctx.get(), backend, inst.id, device->uuid(), binding->spec,
        device->spec().memory_bytes);
    if (memory_overcommit_) {
      auto& swap = swaps_[device->uuid()];
      if (swap == nullptr) {
        swap = std::make_unique<vgpu::SwapManager>(device->spec().memory_bytes,
                                                   swap_config_);
      }
      stack->hook->EnableMemoryOvercommit(swap.get(), &cluster_->sim());
    }
    api = stack->hook.get();
  } else if (decorator_) {
    stack->custom_hook = decorator_(stack->ctx.get(), inst, device);
    if (stack->custom_hook != nullptr) api = stack->custom_hook.get();
  }

  stack->job = fit->second();
  if (auto stale = active_.find(inst.pod_name); stale != active_.end()) {
    // The pod's previous container died without a stop notification (hard
    // node crash kills the kubelet before it can report): unwind the stale
    // stack the way OnContainerStop would, or its job's pending timers
    // would fire into freed memory once we overwrite the entry.
    std::shared_ptr<Stack> old = std::move(stale->second);
    old->job->Stop();
    if (old->sliced_device != nullptr) {
      old->sliced_device->ClearSliceAssignment(old->container_id);
      old->sliced_device = nullptr;
    }
    cluster_->sim().ScheduleAfter(Duration{0},
                                  [old]() mutable { old.reset(); });
  }
  active_[inst.pod_name] = stack;

  JobRecord& rec = records_[job_name];
  if (rec.has_finished && !rec.success) {
    // A requeued sharePod relaunched after an infrastructure kill (node
    // crash, OOM): reopen the record so the retry's outcome replaces the
    // provisional failure recorded when the first container died.
    rec.has_finished = false;
    ++rec.restarts;
    --failed_;
    ++restarts_;
  }
  rec.started = cluster_->sim().Now();
  rec.has_started = true;
  ++started_;

  const std::string pod_name = inst.pod_name;
  stack->job->Start(api, &cluster_->sim(), [this, job_name,
                                            pod_name](bool success) {
    FinishJob(job_name, success);
    // Exiting tears the container down, which unwinds this stack through
    // OnContainerStop (with deferred destruction).
    (void)cluster_->ExitPodContainer(pod_name, success);
  });
}

void WorkloadHost::OnContainerStop(const k8s::ContainerInstance& inst) {
  auto it = active_.find(inst.pod_name);
  if (it == active_.end()) return;
  std::shared_ptr<Stack> stack = std::move(it->second);
  active_.erase(it);
  stack->job->Stop();
  if (stack->sliced_device != nullptr) {
    // In-flight sliced kernels still retire (the stack's teardown detaches
    // their callbacks); the slice itself frees for the next tenant now.
    stack->sliced_device->ClearSliceAssignment(stack->container_id);
    stack->sliced_device = nullptr;
  }
  // A kill while the job was still running counts as a failure.
  FinishJob(stack->job_name, false);
  // The stop notification can arrive from inside the stack's own kernel
  // completion path; destroying it here would free objects still on the
  // call stack. Defer destruction to the next event.
  cluster_->sim().ScheduleAfter(Duration{0}, [stack]() mutable {
    stack.reset();
  });
}

void WorkloadHost::FinishJob(const std::string& job_name, bool success) {
  auto it = records_.find(job_name);
  if (it == records_.end()) return;
  JobRecord& rec = it->second;
  if (rec.has_finished) return;  // completion already recorded
  rec.has_finished = true;
  rec.finished = cluster_->sim().Now();
  rec.success = success;
  if (success) {
    ++completed_;
    completion_times_.push_back(rec.finished);
  } else {
    ++failed_;
  }
}

const WorkloadHost::JobRecord* WorkloadHost::RecordOf(
    const std::string& name) const {
  auto it = records_.find(name);
  return it == records_.end() ? nullptr : &it->second;
}

std::vector<Duration> WorkloadHost::CompletionDurations() const {
  std::vector<Duration> out;
  for (const auto& [name, rec] : records_) {
    if (rec.has_finished && rec.success) {
      out.push_back(rec.finished - rec.submitted);
    }
  }
  return out;
}

const vgpu::FrontendHook* WorkloadHost::RunningHook(
    const std::string& name) const {
  for (const auto& [pod, stack] : active_) {
    if (stack->job_name == name) return stack->hook.get();
  }
  return nullptr;
}

vgpu::FrontendHook* WorkloadHost::MutableRunningHook(const std::string& name) {
  for (auto& [pod, stack] : active_) {
    if (stack->job_name == name) return stack->hook.get();
  }
  return nullptr;
}

std::vector<std::string> WorkloadHost::RunningKubeShareJobs() const {
  std::vector<std::string> names;
  for (const auto& [pod, stack] : active_) {
    if (stack->hook != nullptr) names.push_back(stack->job_name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

Job* WorkloadHost::RunningJob(const std::string& name) {
  for (auto& [pod, stack] : active_) {
    if (stack->job_name == name) return stack->job.get();
  }
  return nullptr;
}

}  // namespace ks::workload
