#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cuda/context.hpp"
#include "k8s/cluster.hpp"
#include "kubeshare/kubeshare.hpp"
#include "vgpu/frontend_hook.hpp"
#include "workload/job.hpp"

namespace ks::workload {

/// Runs the "application inside the container" side of the simulation.
///
/// The host installs start/stop hooks on every node's container runtime.
/// When a container starts, it looks up the Job registered for it and
/// builds the in-container stack:
///
///   Job  ->  FrontendHook (vGPU device library)  ->  CudaContext  ->  GPU
///
/// The FrontendHook layer is installed exactly when DevMgr injected the
/// KUBESHARE_* environment (i.e. for sharePod workloads); native pods get
/// the raw driver context — the same machine can run both, as in the
/// paper's mixed clusters. When a Job reports completion the host exits the
/// container, which flows back through kubelet into the pod phase.
class WorkloadHost {
 public:
  using JobFactory = std::function<std::unique_ptr<Job>()>;

  explicit WorkloadHost(k8s::Cluster* cluster);

  /// Registers the job that will run in the container of `name`. For
  /// KubeShare workloads, `name` is the *sharePod* name (resolved through
  /// the KUBESHARE_SHAREPOD env var); for native pods it is the pod name.
  /// Also stamps the submission time for completion-latency metrics.
  void ExpectJob(const std::string& name, JobFactory factory);

  struct JobRecord {
    Time submitted{0};
    Time started{0};
    Time finished{0};
    bool has_started = false;
    bool has_finished = false;
    bool success = false;
    /// Container relaunches after an infrastructure kill (the record is
    /// reopened each time, so the final outcome is the retry's).
    int restarts = 0;
  };

  const JobRecord* RecordOf(const std::string& name) const;
  /// Every job this host has seen, keyed by job name.
  const std::unordered_map<std::string, JobRecord>& records() const {
    return records_;
  }
  std::size_t completed() const { return completed_; }
  std::size_t failed() const { return failed_; }
  std::size_t started() const { return started_; }
  /// Jobs whose container was relaunched after an infrastructure kill.
  std::size_t restarts() const { return restarts_; }

  /// Completion timestamps of successful jobs, in completion order.
  const std::vector<Time>& completion_times() const {
    return completion_times_;
  }
  /// submitted -> finished durations of successful jobs.
  std::vector<Duration> CompletionDurations() const;

  /// Live handle to a running job (e.g. to inspect served request counts).
  Job* RunningJob(const std::string& name);

  /// The vGPU device library instance of a running KubeShare job, if any —
  /// used by experiments that sample per-container usage (Fig 6).
  const vgpu::FrontendHook* RunningHook(const std::string& name) const;

  /// Mutable variant, for the chaos injector's adversarial-tenant faults
  /// (a tenant controls its own copy of the device library, so "turn a
  /// tenant hostile" is a client-side switch).
  vgpu::FrontendHook* MutableRunningHook(const std::string& name);

  /// Names of the KubeShare jobs currently running under a frontend hook,
  /// sorted — a deterministic target list for injected tenant misbehavior.
  std::vector<std::string> RunningKubeShareJobs() const;

  /// Custom interposition for non-KubeShare containers (the baseline GPU
  /// sharing systems install their own device libraries this way). The
  /// decorator may return nullptr to leave the raw driver context in place.
  using ApiDecorator = std::function<std::unique_ptr<cuda::CudaApi>(
      cuda::CudaApi* inner, const k8s::ContainerInstance& inst,
      gpu::GpuDevice* device)>;
  void SetApiDecorator(ApiDecorator decorator) {
    decorator_ = std::move(decorator);
  }

  /// Wires every future KubeShare container to a per-device SwapManager,
  /// enabling the GPUswap-style memory over-commitment extension. Pair
  /// with KubeShareConfig::allow_memory_overcommit so the scheduler also
  /// stops rejecting over-committed placements. The declarative route is
  /// ClusterConfig::oversub, which the constructor consumes; this
  /// imperative call keeps the legacy unbounded backing store.
  void EnableMemoryOvercommit(double link_bandwidth_bytes_per_s = 12e9);

  /// The shared SwapManager of the device `uuid`, or nullptr when
  /// over-commitment is off or no container has started on it yet —
  /// metrics exporters and benches read residency counters through this.
  const vgpu::SwapManager* SwapFor(const GpuUuid& uuid) const;

 private:
  struct Stack {
    std::string job_name;
    std::unique_ptr<cuda::CudaContext> ctx;
    std::unique_ptr<vgpu::FrontendHook> hook;
    std::unique_ptr<cuda::CudaApi> custom_hook;
    std::unique_ptr<Job> job;
    /// Set when the container was pinned to a spatial slice: the
    /// assignment on this device is cleared when the stack unwinds.
    gpu::GpuDevice* sliced_device = nullptr;
    ContainerId container_id;
  };

  void OnContainerStart(const k8s::ContainerInstance& inst);
  void OnContainerStop(const k8s::ContainerInstance& inst);
  void FinishJob(const std::string& job_name, bool success);
  static std::string JobNameFor(const k8s::ContainerInstance& inst);

  k8s::Cluster* cluster_;
  ApiDecorator decorator_;
  bool memory_overcommit_ = false;
  vgpu::SwapConfig swap_config_;
  std::unordered_map<GpuUuid, std::unique_ptr<vgpu::SwapManager>> swaps_;

  std::unordered_map<std::string, JobFactory> factories_;
  std::unordered_map<std::string, JobRecord> records_;
  std::unordered_map<std::string, std::shared_ptr<Stack>> active_;  // by pod

  std::size_t completed_ = 0;
  std::size_t failed_ = 0;
  std::size_t started_ = 0;
  std::size_t restarts_ = 0;
  std::vector<Time> completion_times_;
};

}  // namespace ks::workload
