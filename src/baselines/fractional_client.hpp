#pragma once

#include <string>

#include "baselines/traits.hpp"
#include "k8s/cluster.hpp"
#include "workload/host.hpp"

namespace ks::baselines {

/// Environment variables the baseline "device libraries" read, mirroring
/// how the real gpushare/GaiaGPU stacks pass quotas into containers.
inline constexpr const char* kEnvBaselineMem = "BASELINE_GPU_MEM";
inline constexpr const char* kEnvBaselineRequest = "BASELINE_GPU_REQUEST";

/// Client for the scaling-factor GPU sharing baselines (§3.1 / §6): jobs
/// request `round(demand * scale)` integer device units of the scaled
/// device plugin, and the pod is placed by the stock kube-scheduler on
/// aggregate unit counts. Which physical GPU the units map to is decided
/// by the kubelet's unit pick — the implicit, late, fragmentation-prone
/// binding the paper criticizes.
///
/// The traits decide which in-container hooks the decorator installs:
/// memory-only (Aliyun), memory+compute (GaiaGPU), or none (Deepomatic).
class FractionalClient {
 public:
  FractionalClient(k8s::Cluster* cluster, workload::WorkloadHost* host,
                   BaselineTraits traits, int scale = 100);

  /// Submits a job that claims `demand` of a GPU and `mem_fraction` of its
  /// memory. The job object comes from `factory` when the container starts.
  Status Submit(const std::string& name, double demand, double mem_fraction,
                workload::WorkloadHost::JobFactory factory);

  const BaselineTraits& traits() const { return traits_; }
  int scale() const { return scale_; }

 private:
  /// Builds the decorator matching the traits and installs it on the host.
  void InstallDecorator();

  k8s::Cluster* cluster_;
  workload::WorkloadHost* host_;
  BaselineTraits traits_;
  int scale_;
};

}  // namespace ks::baselines
