#pragma once

#include <cstdint>
#include <unordered_map>

#include "cuda/api.hpp"

namespace ks::baselines {

/// Memory-only interposition layer — the isolation level of the Aliyun
/// gpushare baseline: allocations beyond the container's memory quota are
/// rejected, but kernel launches pass straight through (no compute
/// throttling and no token protocol). Contrast with vgpu::FrontendHook.
class MemoryOnlyHook final : public cuda::CudaApi {
 public:
  MemoryOnlyHook(cuda::CudaApi* inner, std::uint64_t quota_bytes)
      : inner_(inner), quota_bytes_(quota_bytes) {}

  cuda::CudaResult MemAlloc(gpu::DevicePtr* out, std::uint64_t bytes) override {
    if (out == nullptr || bytes == 0) {
      return cuda::CudaResult::kErrorInvalidValue;
    }
    if (allocated_ + bytes > quota_bytes_) {
      return cuda::CudaResult::kErrorOutOfMemory;
    }
    const cuda::CudaResult r = inner_->MemAlloc(out, bytes);
    if (r == cuda::CudaResult::kSuccess) {
      allocated_ += bytes;
      ptr_bytes_[*out] = bytes;
    }
    return r;
  }

  cuda::CudaResult MemFree(gpu::DevicePtr ptr) override {
    const cuda::CudaResult r = inner_->MemFree(ptr);
    if (r == cuda::CudaResult::kSuccess) {
      auto it = ptr_bytes_.find(ptr);
      if (it != ptr_bytes_.end()) {
        allocated_ -= it->second;
        ptr_bytes_.erase(it);
      }
    }
    return r;
  }

  cuda::CudaResult ArrayCreate(gpu::DevicePtr* out, std::uint64_t width,
                               std::uint64_t height,
                               std::uint64_t element_bytes) override {
    if (width == 0 || height == 0 || element_bytes == 0) {
      return cuda::CudaResult::kErrorInvalidValue;
    }
    return MemAlloc(out, width * height * element_bytes);
  }

  cuda::CudaResult StreamCreate(cuda::StreamId* out) override {
    return inner_->StreamCreate(out);
  }
  cuda::CudaResult StreamDestroy(cuda::StreamId stream) override {
    return inner_->StreamDestroy(stream);
  }
  cuda::CudaResult LaunchKernel(const gpu::KernelDesc& desc,
                                cuda::StreamId stream,
                                cuda::HostFn on_complete) override {
    // No token, no throttling: the Aliyun baseline cannot bound compute.
    return inner_->LaunchKernel(desc, stream, std::move(on_complete));
  }
  cuda::CudaResult LaunchKernelStream(const gpu::KernelDesc& desc, int count,
                                      cuda::StreamId stream,
                                      gpu::UnitDoneFn on_unit) override {
    return inner_->LaunchKernelStream(desc, count, stream,
                                      std::move(on_unit));
  }
  std::size_t CancelPending(cuda::StreamId stream) override {
    return inner_->CancelPending(stream);
  }
  std::size_t RetiredUnits(cuda::StreamId stream) const override {
    return inner_->RetiredUnits(stream);
  }
  Duration ExclusiveKernelTime(const gpu::KernelDesc& desc) const override {
    return inner_->ExclusiveKernelTime(desc);
  }
  Time Now() const override { return inner_->Now(); }
  cuda::CudaResult Synchronize(cuda::HostFn fn) override {
    return inner_->Synchronize(std::move(fn));
  }
  cuda::CudaResult EventCreate(cuda::EventId* out) override {
    return inner_->EventCreate(out);
  }
  cuda::CudaResult EventRecord(cuda::EventId event,
                               cuda::StreamId stream) override {
    return inner_->EventRecord(event, stream);
  }
  cuda::CudaResult EventQuery(cuda::EventId event) override {
    return inner_->EventQuery(event);
  }
  cuda::CudaResult EventSynchronize(cuda::EventId event,
                                    cuda::HostFn fn) override {
    return inner_->EventSynchronize(event, std::move(fn));
  }
  cuda::CudaResult EventElapsedTime(Duration* out, cuda::EventId start,
                                    cuda::EventId end) override {
    return inner_->EventElapsedTime(out, start, end);
  }
  cuda::CudaResult EventDestroy(cuda::EventId event) override {
    return inner_->EventDestroy(event);
  }
  std::uint64_t AllocatedBytes() const override { return allocated_; }
  std::size_t PendingKernels() const override {
    return inner_->PendingKernels();
  }

  std::uint64_t quota_bytes() const { return quota_bytes_; }

 private:
  cuda::CudaApi* inner_;
  std::uint64_t quota_bytes_;
  std::uint64_t allocated_ = 0;
  std::unordered_map<gpu::DevicePtr, std::uint64_t> ptr_bytes_;
};

}  // namespace ks::baselines
