#pragma once

#include <map>
#include <string>

#include "k8s/cluster.hpp"

namespace ks::baselines {

/// Annotation carrying a fractional GPU demand for extender-scheduled pods.
inline constexpr const char* kExtenderDemand = "gpushare/demand";
inline constexpr const char* kExtenderMem = "gpushare/mem";

/// A gpushare-style *scheduler extender* (the architecture of the Aliyun
/// and GaiaGPU baselines, paper §6): a second scheduler that owns every
/// fractional-GPU pod. Unlike the §3.1 scaling-factor trick it DOES track
/// per-GPU commitments (so it avoids intra-node fragmentation), but:
///
///  - it has no notion of locality labels or user-visible GPU identity;
///    placement is first-fit over its private per-GPU ledger;
///  - it does not coordinate with kube-scheduler: it assumes every GPU in
///    the cluster is exclusively its own. Native GPU pods placed by
///    kube-scheduler are invisible to its ledger (and vice versa), so
///    mixing the two silently over-commits devices — the "cannot co-exist
///    with kube-scheduler" row of Table 1, demonstrable.
///
/// Pods are submitted through Submit(): the extender picks a (node, GPU)
/// immediately, binds the pod itself and injects NVIDIA_VISIBLE_DEVICES.
class ShareExtenderScheduler {
 public:
  explicit ShareExtenderScheduler(k8s::Cluster* cluster);

  /// Creates and binds a fractional-GPU pod. `demand` and `mem_fraction`
  /// are recorded against the chosen GPU's ledger for the pod's lifetime.
  Status Submit(const std::string& name, double demand, double mem_fraction,
                std::map<std::string, std::string> env = {});

  /// Committed compute fraction on a device, per the extender's ledger.
  double CommittedOn(const GpuUuid& uuid) const;

  std::uint64_t scheduled_count() const { return scheduled_; }

 private:
  struct GpuLedger {
    std::string node;
    double compute = 0.0;
    double memory = 0.0;
  };
  struct Placement {
    GpuUuid gpu;
    double demand = 0.0;
    double mem = 0.0;
  };

  void OnPodEvent(const k8s::WatchEvent<k8s::Pod>& event);

  k8s::Cluster* cluster_;
  std::map<GpuUuid, GpuLedger> gpus_;
  std::map<std::string, Placement> placements_;  // by pod name
  std::uint64_t scheduled_ = 0;
};

}  // namespace ks::baselines
