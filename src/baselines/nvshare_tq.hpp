#pragma once

#include <cstdint>
#include <map>

#include "common/ids.hpp"
#include "common/time.hpp"

namespace ks::baselines {

/// nvshare-style anti-thrashing knobs. nvshare (an open-source transparent
/// GPU sharing layer) oversubscribes device memory via unified-memory
/// paging and, when the working sets no longer fit, serializes the
/// contending processes with an exclusive time quantum (30 s by default)
/// so each gets long bursts of residency instead of swapping on every
/// token hand-off. Off by default: with `enabled == false` the token
/// backend's grant path is bit-for-bit unchanged.
struct NvshareTqConfig {
  bool enabled = false;
  /// Exclusive quantum granted to a memory-pressured holder while its
  /// device is in TQ rotation (replaces BackendConfig::quota).
  Duration quantum = Seconds(30);
  /// A device engages TQ when its swap traffic within one detection
  /// window reaches this many bytes (swap-bytes-per-interval threshold).
  std::uint64_t thrash_threshold_bytes = 1ull << 30;
  /// Window over which swap traffic is accumulated.
  Duration detect_window = Seconds(2);
  /// Consecutive calm (below-threshold) windows before a device leaves TQ
  /// rotation and returns to normal sharing.
  int calm_windows = 2;
};

/// Per-device thrash detector + TQ state machine. Deterministic: state
/// depends only on the (report, query) call sequence and their times, so
/// runs replay byte-equal regardless of wall clock or thread count.
///
/// Header-only and dependent only on common/ so the token backend
/// (src/vgpu/) can embed it without a ks_vgpu -> ks_baselines link cycle.
class TqController {
 public:
  explicit TqController(NvshareTqConfig config = {}) : config_(config) {}

  const NvshareTqConfig& config() const { return config_; }

  /// Accounts `bytes` of swap traffic on `device` at `now` (reported by
  /// the frontend hooks after each MakeResident).
  void OnSwapBytes(const GpuUuid& device, std::uint64_t bytes, Time now) {
    if (!config_.enabled || bytes == 0) return;
    Roll(StateOf(device), now);
    StateOf(device).window_bytes += bytes;
  }

  /// True when `device` is under TQ rotation at `now`. Evaluated at grant
  /// time: window boundaries roll forward first, so a device whose swap
  /// traffic stayed calm for `calm_windows` windows disengages here.
  bool Engaged(const GpuUuid& device, Time now) {
    if (!config_.enabled) return false;
    DeviceState& s = StateOf(device);
    Roll(s, now);
    return s.engaged;
  }

  /// Times a device switched from sharing to TQ rotation.
  std::uint64_t engagements() const { return engagements_; }

  /// Non-rolling peek at a device's engagement state (metrics export; the
  /// grant path uses Engaged() so windows advance deterministically with
  /// grant times only).
  bool EngagedNow(const GpuUuid& device) const {
    auto it = devices_.find(device);
    return it != devices_.end() && it->second.engaged;
  }

  /// Restores counters after a token-daemon restart (the detector state
  /// itself is in-memory and rebuilt from live swap reports; the
  /// engagement count is part of the violation-ledger-style state that
  /// survives restarts).
  void RestoreEngagements(std::uint64_t engagements) {
    engagements_ = engagements;
  }

 private:
  struct DeviceState {
    Time window_start{0};
    std::uint64_t window_bytes = 0;
    bool engaged = false;
    int calm = 0;
  };

  DeviceState& StateOf(const GpuUuid& device) { return devices_[device]; }

  /// Closes every detection window that ended before `now`, updating the
  /// engage/disengage state once per closed window.
  void Roll(DeviceState& s, Time now) {
    while (now >= s.window_start + config_.detect_window) {
      const bool thrashing =
          s.window_bytes >= config_.thrash_threshold_bytes;
      if (thrashing) {
        if (!s.engaged) {
          s.engaged = true;
          ++engagements_;
        }
        s.calm = 0;
      } else if (s.engaged) {
        if (++s.calm >= config_.calm_windows) {
          s.engaged = false;
          s.calm = 0;
        }
      }
      s.window_bytes = 0;
      s.window_start = s.window_start + config_.detect_window;
    }
  }

  NvshareTqConfig config_;
  std::map<GpuUuid, DeviceState> devices_;
  std::uint64_t engagements_ = 0;
};

}  // namespace ks::baselines
