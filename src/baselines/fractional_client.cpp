#include "baselines/fractional_client.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>

#include "baselines/memory_hook.hpp"
#include "k8s/resources.hpp"
#include "vgpu/frontend_hook.hpp"

namespace ks::baselines {

FractionalClient::FractionalClient(k8s::Cluster* cluster,
                                   workload::WorkloadHost* host,
                                   BaselineTraits traits, int scale)
    : cluster_(cluster), host_(host), traits_(traits), scale_(scale) {
  assert(cluster_ != nullptr && host_ != nullptr);
  assert(scale_ > 0);
  InstallDecorator();
}

void FractionalClient::InstallDecorator() {
  const BaselineTraits traits = traits_;
  k8s::Cluster* cluster = cluster_;
  host_->SetApiDecorator(
      [traits, cluster](cuda::CudaApi* inner,
                        const k8s::ContainerInstance& inst,
                        gpu::GpuDevice* device)
          -> std::unique_ptr<cuda::CudaApi> {
        auto mem_it = inst.env.find(kEnvBaselineMem);
        if (mem_it == inst.env.end()) return nullptr;  // not a baseline pod
        const double mem_frac = std::strtod(mem_it->second.c_str(), nullptr);
        const auto quota = static_cast<std::uint64_t>(
            mem_frac * static_cast<double>(device->spec().memory_bytes));

        if (traits.compute_isolation) {
          // GaiaGPU-style: kernel-time throttling via the same token
          // mechanism, but hard-capped at the request (no elastic residual
          // sharing) and with no scheduler awareness of which GPU this is.
          double request = 0.0;
          if (auto it = inst.env.find(kEnvBaselineRequest);
              it != inst.env.end()) {
            request = std::strtod(it->second.c_str(), nullptr);
          }
          vgpu::ResourceSpec spec;
          spec.gpu_request = std::min(1.0, request);
          spec.gpu_limit = std::min(1.0, request);
          spec.gpu_mem = std::min(1.0, mem_frac);
          return std::make_unique<vgpu::FrontendHook>(
              inner, cluster->BackendForGpu(device->uuid()), inst.id,
              device->uuid(), spec, device->spec().memory_bytes);
        }
        if (traits.memory_isolation) {
          return std::make_unique<MemoryOnlyHook>(inner, quota);
        }
        return nullptr;  // Deepomatic: fractional accounting, no isolation
      });
}

Status FractionalClient::Submit(const std::string& name, double demand,
                                double mem_fraction,
                                workload::WorkloadHost::JobFactory factory) {
  if (demand <= 0.0 || demand > 1.0) {
    return InvalidArgumentError("demand must be in (0, 1]");
  }
  if (!traits_.multi_gpu_per_node && cluster_->config().gpus_per_node > 1) {
    return FailedPreconditionError(
        traits_.name + " only supports nodes with a single GPU");
  }
  host_->ExpectJob(name, std::move(factory));

  k8s::Pod pod;
  pod.meta.name = name;
  pod.spec.requests.Set(k8s::kResourceCpu, 2000);
  // The scaling-factor trick: fractions become integer device units, with
  // granularity limited to 1/scale.
  const auto units = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::lround(demand * scale_)));
  pod.spec.requests.Set(k8s::kResourceNvidiaGpu, units);
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6f", mem_fraction);
  pod.spec.env[kEnvBaselineMem] = buf;
  std::snprintf(buf, sizeof buf, "%.6f", demand);
  pod.spec.env[kEnvBaselineRequest] = buf;
  return cluster_->api().pods().Create(pod);
}

}  // namespace ks::baselines
