#include "baselines/extender.hpp"

#include <cassert>
#include <cstdio>

#include "k8s/device_plugin.hpp"
#include "k8s/resources.hpp"

namespace ks::baselines {

ShareExtenderScheduler::ShareExtenderScheduler(k8s::Cluster* cluster)
    : cluster_(cluster) {
  assert(cluster_ != nullptr);
  // The extender assumes ownership of EVERY GPU it can see; it never asks
  // the apiserver what kube-scheduler already promised to native pods.
  for (std::size_t n = 0; n < cluster_->node_count(); ++n) {
    auto& node = cluster_->node(n);
    for (auto& dev : node.gpus) {
      gpus_[dev->uuid()] = {node.name, 0.0, 0.0};
    }
  }
  cluster_->api().pods().Watch(
      [this](const k8s::WatchEvent<k8s::Pod>& ev) { OnPodEvent(ev); });
}

Status ShareExtenderScheduler::Submit(const std::string& name, double demand,
                                      double mem_fraction,
                                      std::map<std::string, std::string> env) {
  if (demand <= 0.0 || demand > 1.0) {
    return InvalidArgumentError("demand must be in (0, 1]");
  }
  // First-fit over the private per-GPU ledger (gpushare's binpack).
  GpuUuid chosen;
  for (auto& [uuid, ledger] : gpus_) {
    if (ledger.compute + demand <= 1.0 + 1e-9 &&
        ledger.memory + mem_fraction <= 1.0 + 1e-9) {
      chosen = uuid;
      break;
    }
  }
  if (chosen.empty()) {
    return UnavailableError("extender ledger has no GPU with capacity");
  }

  k8s::Pod pod;
  pod.meta.name = name;
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6f", demand);
  pod.meta.labels[kExtenderDemand] = buf;
  pod.spec.requests.Set(k8s::kResourceCpu, 1000);
  // The extender binds directly and injects the device itself — bypassing
  // both kube-scheduler and the device plugin (so the kubelet's own GPU
  // accounting never sees this pod either).
  pod.status.node_name = gpus_.at(chosen).node;
  pod.spec.env = std::move(env);
  pod.spec.env[k8s::kNvidiaVisibleDevices] = chosen.value();
  std::snprintf(buf, sizeof buf, "%.6f", mem_fraction);
  pod.spec.env[kExtenderMem] = buf;
  KS_RETURN_IF_ERROR(cluster_->api().pods().Create(pod));

  gpus_.at(chosen).compute += demand;
  gpus_.at(chosen).memory += mem_fraction;
  placements_[name] = {chosen, demand, mem_fraction};
  ++scheduled_;
  return Status::Ok();
}

void ShareExtenderScheduler::OnPodEvent(
    const k8s::WatchEvent<k8s::Pod>& event) {
  const k8s::Pod& pod = event.object;
  if (event.type != k8s::WatchEventType::kDeleted && !pod.terminal()) return;
  auto it = placements_.find(pod.meta.name);
  if (it == placements_.end()) return;
  GpuLedger& ledger = gpus_.at(it->second.gpu);
  ledger.compute -= it->second.demand;
  ledger.memory -= it->second.mem;
  placements_.erase(it);
}

double ShareExtenderScheduler::CommittedOn(const GpuUuid& uuid) const {
  auto it = gpus_.find(uuid);
  return it == gpus_.end() ? 0.0 : it->second.compute;
}

}  // namespace ks::baselines
