#pragma once

#include <string>

namespace ks::baselines {

/// Capability matrix of a GPU sharing solution — the rows of the paper's
/// Table 1. Each existing system is described by the subset of properties
/// it implements; `bench_table1` probes each claim against the running
/// implementation.
struct BaselineTraits {
  std::string name;
  bool multi_gpu_per_node = false;
  bool fine_grained_allocation = false;  // "limited" == true with scale quantum
  bool arbitrary_fractions = false;      // KubeShare: any double, not 1/scale
  bool memory_isolation = false;
  bool compute_isolation = false;
  bool first_class_identity = false;
  bool locality_constraints = false;
  bool coexists_with_kube_scheduler = false;
};

/// Deepomatic's shared-GPU device plugin: fractional allocation only, no
/// isolation, single GPU per node.
inline BaselineTraits DeepomaticTraits() {
  BaselineTraits t;
  t.name = "Deepomatic";
  t.multi_gpu_per_node = false;
  t.fine_grained_allocation = true;  // limited (scaling factor quantum)
  return t;
}

/// Aliyun/Alibaba gpushare scheduler-extender: multi-GPU, memory isolation
/// only.
inline BaselineTraits AliyunTraits() {
  BaselineTraits t;
  t.name = "Aliyun";
  t.multi_gpu_per_node = true;
  t.fine_grained_allocation = true;
  t.memory_isolation = true;
  return t;
}

/// GaiaGPU (the paper's "GigaGPU"): extends Aliyun with LD_PRELOAD-based
/// compute isolation.
inline BaselineTraits GaiaGpuTraits() {
  BaselineTraits t;
  t.name = "GaiaGPU";
  t.multi_gpu_per_node = true;
  t.fine_grained_allocation = true;
  t.memory_isolation = true;
  t.compute_isolation = true;
  return t;
}

inline BaselineTraits KubeShareTraits() {
  BaselineTraits t;
  t.name = "KubeShare";
  t.multi_gpu_per_node = true;
  t.fine_grained_allocation = true;
  t.arbitrary_fractions = true;
  t.memory_isolation = true;
  t.compute_isolation = true;
  t.first_class_identity = true;
  t.locality_constraints = true;
  t.coexists_with_kube_scheduler = true;
  return t;
}

}  // namespace ks::baselines
