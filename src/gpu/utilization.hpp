#pragma once

#include <cstdint>
#include <vector>

#include "common/time.hpp"

namespace ks::gpu {

/// Records device busy time into fixed-size buckets so utilization can be
/// queried per time slice (Fig 9 timeline) or over an arbitrary range
/// (overall utilization). The recorder is fed Start/Stop transitions by the
/// execution engine; overlapping activity must be coalesced by the caller
/// (the engine reports device-level busy, i.e. >= 1 active kernel).
class UtilizationTracker {
 public:
  explicit UtilizationTracker(Duration bucket = Seconds(1.0));

  void Start(Time now);
  void Stop(Time now);
  bool active() const { return active_; }

  /// Busy fraction of bucket `index` ([index*bucket, (index+1)*bucket)).
  /// Buckets past the last recorded activity report 0. An in-progress busy
  /// interval is counted up to `now` if provided via Flush().
  double BucketUtilization(std::size_t index) const;

  std::size_t BucketCount() const { return buckets_.size(); }
  Duration bucket_size() const { return bucket_; }

  /// Busy fraction over [from, to).
  double RangeUtilization(Time from, Time to) const;

  /// Total busy time recorded so far.
  Duration TotalBusy() const { return total_busy_; }

  /// Accounts the open interval (if any) up to `now` without closing it.
  /// Call before reading utilization mid-activity.
  void Flush(Time now);

 private:
  void Accumulate(Time from, Time to);

  Duration bucket_;
  std::vector<Duration> buckets_;
  bool active_ = false;
  Time active_since_{0};
  Duration total_busy_{0};
};

}  // namespace ks::gpu
