#include "gpu/device.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ks::gpu {

GpuDevice::GpuDevice(sim::Simulation* sim, GpuUuid uuid, GpuSpec spec)
    : sim_(sim), uuid_(std::move(uuid)), spec_(spec) {
  assert(sim_ != nullptr);
}

Expected<DevicePtr> GpuDevice::Allocate(const ContainerId& owner,
                                        std::uint64_t bytes) {
  if (bytes == 0) return InvalidArgumentError("zero-byte allocation");
  if (used_memory_ + bytes > spec_.memory_bytes) {
    return ResourceExhaustedError("device out of memory on " + uuid_.value());
  }
  used_memory_ += bytes;
  const DevicePtr ptr = next_ptr_++;
  allocations_.emplace(ptr, Allocation{owner, bytes});
  return ptr;
}

Status GpuDevice::Free(DevicePtr ptr) {
  auto it = allocations_.find(ptr);
  if (it == allocations_.end()) {
    return NotFoundError("unknown device pointer");
  }
  used_memory_ -= it->second.bytes;
  allocations_.erase(it);
  return Status::Ok();
}

void GpuDevice::FreeAll(const ContainerId& owner) {
  for (auto it = allocations_.begin(); it != allocations_.end();) {
    if (it->second.owner == owner) {
      used_memory_ -= it->second.bytes;
      it = allocations_.erase(it);
    } else {
      ++it;
    }
  }
}

std::uint64_t GpuDevice::MemoryUsedBy(const ContainerId& owner) const {
  std::uint64_t total = 0;
  for (const auto& [ptr, alloc] : allocations_) {
    if (alloc.owner == owner) total += alloc.bytes;
  }
  return total;
}

double GpuDevice::CurrentRatePerKernel() const {
  if (running_.empty()) return 0.0;
  double bw = 0.0;
  for (const Running& r : running_) bw += r.bandwidth_demand;
  const double stretch =
      std::max(1.0, bw / std::max(1e-9, spec_.bandwidth_capacity));
  return 1.0 / (static_cast<double>(running_.size()) * stretch);
}

void GpuDevice::Progress() {
  const Time now = sim_->Now();
  if (running_.empty() || now <= last_update_) {
    last_update_ = now;
    return;
  }
  const double rate = CurrentRatePerKernel();
  const auto elapsed = static_cast<double>((now - last_update_).count());
  const auto burn = Duration{static_cast<std::int64_t>(elapsed * rate)};
  for (Running& r : running_) {
    r.remaining = (r.remaining > burn) ? r.remaining - burn : Duration{0};
  }
  last_update_ = now;
}

void GpuDevice::Reschedule() {
  if (completion_event_ != sim::kInvalidEvent) {
    sim_->Cancel(completion_event_);
    completion_event_ = sim::kInvalidEvent;
  }
  if (running_.empty()) {
    util_.Stop(sim_->Now());
    return;
  }
  util_.Start(sim_->Now());
  const double rate = CurrentRatePerKernel();
  Duration min_remaining = running_.front().remaining;
  for (const Running& r : running_) {
    min_remaining = std::min(min_remaining, r.remaining);
  }
  const auto wall = Duration{static_cast<std::int64_t>(
      std::ceil(static_cast<double>(min_remaining.count()) / rate))};
  completion_event_ =
      sim_->ScheduleAfter(std::max(Duration{0}, wall), [this] {
        OnCompletionEvent();
      });
}

KernelId GpuDevice::Submit(const ContainerId& owner, const KernelDesc& desc,
                           std::function<void()> on_complete) {
  Progress();
  const KernelId id = next_kernel_++;
  Running r;
  r.id = id;
  r.owner = owner;
  r.bandwidth_demand = desc.bandwidth_demand;
  r.remaining = std::max(Duration{1}, desc.nominal_duration);
  r.on_complete = std::move(on_complete);
  running_.push_back(std::move(r));
  Reschedule();
  return id;
}

void GpuDevice::DetachOwner(const ContainerId& owner) {
  for (Running& r : running_) {
    if (r.owner == owner) r.on_complete = nullptr;
  }
}

void GpuDevice::OnCompletionEvent() {
  completion_event_ = sim::kInvalidEvent;
  Progress();
  // Collect every kernel that has (numerically) finished. Completion
  // callbacks run after the running set is updated so re-entrant Submit()
  // calls from a callback see a consistent device state.
  std::vector<std::function<void()>> done;
  for (auto it = running_.begin(); it != running_.end();) {
    // 1 us tolerance absorbs the floor/ceil rounding between Progress()
    // and the completion-event timing; without it a kernel could hover at
    // remaining == 1 and re-fire the event indefinitely.
    if (it->remaining <= Duration{1}) {
      done.push_back(std::move(it->on_complete));
      it = running_.erase(it);
      ++completed_;
    } else {
      ++it;
    }
  }
  Reschedule();
  for (auto& fn : done) {
    if (fn) fn();
  }
}

}  // namespace ks::gpu
