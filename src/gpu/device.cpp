#include "gpu/device.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ks::gpu {

GpuDevice::GpuDevice(sim::Simulation* sim, GpuUuid uuid, GpuSpec spec)
    : sim_(sim), uuid_(std::move(uuid)), spec_(spec) {
  assert(sim_ != nullptr);
}

Expected<DevicePtr> GpuDevice::Allocate(const ContainerId& owner,
                                        std::uint64_t bytes) {
  if (bytes == 0) return InvalidArgumentError("zero-byte allocation");
  if (used_memory_ + bytes > spec_.memory_bytes) {
    return ResourceExhaustedError("device out of memory on " + uuid_.value());
  }
  const auto sa = slice_assign_.find(owner);
  if (sa != slice_assign_.end()) {
    // The slice's proportional share of device memory is a hard wall, like
    // a MIG instance's dedicated framebuffer.
    const auto wall = static_cast<std::uint64_t>(
        static_cast<double>(spec_.memory_bytes) *
        static_cast<double>(sa->second.groups) /
        static_cast<double>(sa->second.total));
    if (MemoryUsedBy(owner) + bytes > wall) {
      return ResourceExhaustedError("slice memory wall exceeded on " +
                                    uuid_.value());
    }
  }
  const auto quota = memory_quotas_.find(owner);
  if (quota != memory_quotas_.end() &&
      MemoryUsedBy(owner) + bytes > quota->second) {
    ++memory_quota_rejections_;
    if (violation_) violation_(owner, DeviceViolation::kMemoryQuota);
    return ResourceExhaustedError("memory quota exceeded on " +
                                  uuid_.value());
  }
  used_memory_ += bytes;
  const DevicePtr ptr = next_ptr_++;
  allocations_.emplace(ptr, Allocation{owner, bytes});
  return ptr;
}

Status GpuDevice::Free(DevicePtr ptr) {
  auto it = allocations_.find(ptr);
  if (it == allocations_.end()) {
    return NotFoundError("unknown device pointer");
  }
  used_memory_ -= it->second.bytes;
  allocations_.erase(it);
  return Status::Ok();
}

void GpuDevice::FreeAll(const ContainerId& owner) {
  for (auto it = allocations_.begin(); it != allocations_.end();) {
    if (it->second.owner == owner) {
      used_memory_ -= it->second.bytes;
      it = allocations_.erase(it);
    } else {
      ++it;
    }
  }
}

std::uint64_t GpuDevice::MemoryUsedBy(const ContainerId& owner) const {
  std::uint64_t total = 0;
  for (const auto& [ptr, alloc] : allocations_) {
    if (alloc.owner == owner) total += alloc.bytes;
  }
  return total;
}

void GpuDevice::EnforceTokenGate(const ContainerId& owner) {
  token_gates_.emplace(owner, TokenGate{});  // keeps an existing gate's state
}

void GpuDevice::LiftTokenGate(const ContainerId& owner) {
  token_gates_.erase(owner);
}

void GpuDevice::AdmitTokenEpoch(const ContainerId& owner,
                                std::uint64_t epoch) {
  const auto it = token_gates_.find(owner);
  if (it == token_gates_.end()) return;
  it->second.epoch = std::max(it->second.epoch, epoch);
}

void GpuDevice::FenceTokenEpoch(const ContainerId& owner) {
  const auto it = token_gates_.find(owner);
  if (it == token_gates_.end()) return;
  it->second.floor = std::max(it->second.floor, it->second.epoch + 1);
}

bool GpuDevice::TokenGateAdmits(const ContainerId& owner) const {
  const auto it = token_gates_.find(owner);
  if (it == token_gates_.end()) return true;  // ungated owners unaffected
  return it->second.epoch >= it->second.floor;
}

std::uint64_t GpuDevice::FencedRejectionsOf(const ContainerId& owner) const {
  const auto it = token_gates_.find(owner);
  return it == token_gates_.end() ? 0 : it->second.rejections;
}

bool GpuDevice::RejectFencedSubmit(const ContainerId& owner) {
  const auto it = token_gates_.find(owner);
  if (it == token_gates_.end()) return false;
  if (it->second.epoch >= it->second.floor) return false;
  ++it->second.rejections;
  ++fenced_rejections_;
  if (violation_) violation_(owner, DeviceViolation::kFencedSubmit);
  return true;
}

void GpuDevice::SetMemoryQuota(const ContainerId& owner,
                               std::uint64_t bytes) {
  memory_quotas_[owner] = bytes;
}

void GpuDevice::ClearMemoryQuota(const ContainerId& owner) {
  memory_quotas_.erase(owner);
}

Duration GpuDevice::ExclusiveWallTime(const KernelDesc& desc) const {
  const double stretch = std::max(
      1.0, desc.bandwidth_demand / std::max(1e-9, spec_.bandwidth_capacity));
  const double rate = 1.0 / stretch;
  const auto nominal = std::max(Duration{1}, desc.nominal_duration);
  return Duration{static_cast<std::int64_t>(
      std::ceil(static_cast<double>(nominal.count()) / rate))};
}

void GpuDevice::SetSliceAssignment(const ContainerId& owner, int groups,
                                   int total) {
  if (total < 1) total = 1;
  if (groups < 1) groups = 1;
  if (groups > total) groups = total;
  slice_assign_[owner] = SliceAssign{groups, total};
}

void GpuDevice::ClearSliceAssignment(const ContainerId& owner) {
  slice_assign_.erase(owner);
}

bool GpuDevice::HasSliceAssignment(const ContainerId& owner) const {
  return slice_assign_.count(owner) > 0;
}

Duration GpuDevice::SlicedWallTime(const ContainerId& owner,
                                   const KernelDesc& desc) const {
  double fraction = 1.0;
  const auto it = slice_assign_.find(owner);
  if (it != slice_assign_.end()) {
    fraction = static_cast<double>(it->second.groups) /
               static_cast<double>(it->second.total);
  }
  // An isolated partition: the only stretch is the kernel demanding more
  // SMs than the slice has. Bandwidth contention does not apply.
  const double stretch = std::max(1.0, desc.sm_demand / std::max(1e-9, fraction));
  const auto nominal = std::max(Duration{1}, desc.nominal_duration);
  return Duration{static_cast<std::int64_t>(
      std::ceil(static_cast<double>(nominal.count()) * stretch))};
}

Duration GpuDevice::ExclusiveWallTimeFor(const ContainerId& owner,
                                         const KernelDesc& desc) const {
  if (HasSliceAssignment(owner)) return SlicedWallTime(owner, desc);
  return ExclusiveWallTime(desc);
}

bool GpuDevice::EngineBusy() const {
  return !running_.empty() || group_.has_value();
}

KernelId GpuDevice::SubmitSliced(const ContainerId& owner,
                                 const KernelDesc& desc, UnitDoneFn on_done,
                                 RepeatId chain) {
  const KernelId id = next_kernel_++;
  const Time start = sim_->Now();
  const Duration wall = SlicedWallTime(owner, desc);
  const std::uint64_t seq = next_slice_seq_++;
  SlicedRunning r;
  r.id = id;
  r.owner = owner;
  r.name = desc.name;
  r.start = start;
  r.finish = start + wall;
  r.on_done = std::move(on_done);
  r.chain = chain;
  r.event = sim_->ScheduleAfter(wall, [this, seq] { OnSlicedComplete(seq); });
  sliced_.emplace(seq, std::move(r));
  util_.Start(start);
  return id;
}

void GpuDevice::OnSlicedComplete(std::uint64_t seq) {
  auto it = sliced_.find(seq);
  if (it == sliced_.end()) return;
  SlicedRunning r = std::move(it->second);
  sliced_.erase(it);
  ++completed_;
  if (r.chain != 0) {
    auto chain = sliced_chains_.find(r.chain);
    if (chain != sliced_chains_.end()) {
      ++chain->second.finished;
      chain->second.in_flight = false;
    }
  }
  RecordTrace(r.id, r.owner, r.name, r.start, r.finish);
  if (sliced_.empty() && !EngineBusy() && !MigrationBusy()) {
    util_.Stop(r.finish);
  }
  if (r.on_done) r.on_done(r.finish);
  if (r.chain != 0) AdvanceSlicedChain(r.chain);
}

RepeatId GpuDevice::SubmitRepeatSliced(const ContainerId& owner,
                                       const KernelDesc& desc, int count,
                                       UnitDoneFn on_unit) {
  if (count <= 0) return 0;
  const RepeatId rid = next_sliced_repeat_++;
  ChainTail tail;
  tail.owner = owner;
  tail.desc = desc;
  tail.remaining = count - 1;
  tail.on_unit = std::move(on_unit);
  tail.in_flight = true;
  sliced_chains_.emplace(rid, std::move(tail));
  StartSlicedChainUnit(rid);
  return rid;
}

void GpuDevice::StartSlicedChainUnit(RepeatId id) {
  ChainTail& tail = sliced_chains_.at(id);
  SubmitSliced(tail.owner, tail.desc, tail.on_unit, id);
}

void GpuDevice::AdvanceSlicedChain(RepeatId id) {
  auto it = sliced_chains_.find(id);
  if (it == sliced_chains_.end()) return;
  ChainTail& tail = it->second;
  if (tail.remaining <= 0) {
    sliced_chains_.erase(it);
    return;
  }
  --tail.remaining;
  tail.in_flight = true;
  StartSlicedChainUnit(id);
}

std::size_t GpuDevice::CancelSlicedTail(RepeatId id) {
  auto it = sliced_chains_.find(id);
  if (it == sliced_chains_.end()) return 0;
  const auto cancelled =
      static_cast<std::size_t>(std::max(0, it->second.remaining));
  it->second.remaining = 0;
  if (!it->second.in_flight) sliced_chains_.erase(it);
  return cancelled;
}

std::size_t GpuDevice::SlicedUnitsFinished(RepeatId id) const {
  auto it = sliced_chains_.find(id);
  return it == sliced_chains_.end() ? 0 : it->second.finished;
}

void GpuDevice::DetachSlicedOwner(const ContainerId& owner) {
  for (auto& [seq, r] : sliced_) {
    if (r.owner == owner) r.on_done = nullptr;
  }
  for (auto it = sliced_chains_.begin(); it != sliced_chains_.end();) {
    if (it->second.owner == owner) {
      it->second.remaining = 0;
      it->second.on_unit = nullptr;
      if (!it->second.in_flight) {
        it = sliced_chains_.erase(it);
        continue;
      }
    }
    ++it;
  }
}

void GpuDevice::ChargeMigration(const ContainerId& owner, std::uint64_t bytes,
                                Duration duration, UnitDoneFn on_done) {
  ++migrations_charged_;
  migration_bytes_total_ += bytes;
  const std::uint64_t seq = next_migration_seq_++;
  Migration m;
  m.owner = owner;
  m.on_done = std::move(on_done);
  util_.Start(sim_->Now());
  m.event = sim_->ScheduleAfter(std::max(Duration{0}, duration),
                                [this, seq] { OnMigrationComplete(seq); });
  migrations_.emplace(seq, std::move(m));
}

void GpuDevice::OnMigrationComplete(std::uint64_t seq) {
  auto it = migrations_.find(seq);
  if (it == migrations_.end()) return;
  Migration m = std::move(it->second);
  migrations_.erase(it);
  const Time now = sim_->Now();
  if (migrations_.empty() && !EngineBusy() && !SlicedBusy()) util_.Stop(now);
  if (m.on_done) m.on_done(now);
}

void GpuDevice::DetachMigrations(const ContainerId& owner) {
  for (auto& [seq, m] : migrations_) {
    if (m.owner == owner) m.on_done = nullptr;
  }
}

void GpuDevice::RecomputeRate() {
  if (running_.empty()) {
    rate_ = 0.0;
    return;
  }
  // Sum in insertion order: the reference engine iterates its running
  // vector the same way, and double addition is order-sensitive, so this
  // keeps the two engines bit-identical.
  double bw = 0.0;
  for (const auto& [seq, r] : running_) bw += r.bandwidth_demand;
  const double stretch =
      std::max(1.0, bw / std::max(1e-9, spec_.bandwidth_capacity));
  rate_ = 1.0 / (static_cast<double>(running_.size()) * stretch);
}

void GpuDevice::Progress() {
  const Time now = sim_->Now();
  if (running_.empty() || now <= last_update_) {
    last_update_ = now;
    return;
  }
  // The reference engine burns every kernel by the same amount, so pairwise
  // differences are invariant and one accumulator carries the whole set.
  const auto elapsed = static_cast<double>((now - last_update_).count());
  vnow_ += static_cast<std::int64_t>(elapsed * rate_);
  last_update_ = now;
}

void GpuDevice::Reschedule() {
  if (completion_event_ != sim::kInvalidEvent) {
    sim_->Cancel(completion_event_);
    completion_event_ = sim::kInvalidEvent;
  }
  if (running_.empty()) {
    if (!group_ && !SlicedBusy() && !MigrationBusy()) util_.Stop(sim_->Now());
    return;
  }
  util_.Start(sim_->Now());
  const std::int64_t min_remaining = by_end_.begin()->first - vnow_;
  const auto wall = Duration{static_cast<std::int64_t>(
      std::ceil(static_cast<double>(min_remaining) / rate_))};
  completion_event_ =
      sim_->ScheduleAfter(std::max(Duration{0}, wall), [this] {
        OnCompletionEvent();
      });
}

void GpuDevice::InsertRunning(Running r) {
  const std::uint64_t seq = next_seq_++;
  by_end_.insert({r.end_v, seq});
  running_.emplace(seq, std::move(r));
}

KernelId GpuDevice::Submit(const ContainerId& owner, const KernelDesc& desc,
                           std::function<void()> on_complete) {
  if (RejectFencedSubmit(owner)) return 0;
  if (HasSliceAssignment(owner)) {
    UnitDoneFn done;
    if (on_complete) {
      done = [fn = std::move(on_complete)](Time) { fn(); };
    }
    return SubmitSliced(owner, desc, std::move(done), /*chain=*/0);
  }
  if (group_) SplitGroup(/*fire_callbacks=*/true);
  Progress();
  const KernelId id = next_kernel_++;
  Running r;
  r.id = id;
  r.owner = owner;
  r.bandwidth_demand = desc.bandwidth_demand;
  r.end_v = vnow_ + std::max(Duration{1}, desc.nominal_duration).count();
  r.name = desc.name;
  r.start = sim_->Now();
  if (on_complete) {
    r.on_done = [fn = std::move(on_complete)](Time) { fn(); };
  }
  InsertRunning(std::move(r));
  RecomputeRate();
  Reschedule();
  return id;
}

RepeatId GpuDevice::SubmitRepeat(const ContainerId& owner,
                                 const KernelDesc& desc, int count,
                                 UnitDoneFn on_unit) {
  if (count <= 0) return 0;
  if (RejectFencedSubmit(owner)) return 0;
  if (HasSliceAssignment(owner)) {
    return SubmitRepeatSliced(owner, desc, count, std::move(on_unit));
  }
  if (group_) SplitGroup(/*fire_callbacks=*/true);
  const RepeatId rid = next_repeat_++;
  if (running_.empty() && count >= 2) {
    // The stream has the device to itself: unit boundaries are analytic
    // (anchor + i * unit_wall) and the whole run rides one engine event.
    Progress();
    FusedGroup g;
    g.id = rid;
    g.owner = owner;
    g.desc = desc;
    g.total = count;
    g.unit_wall = ExclusiveWallTime(desc);
    g.anchor = sim_->Now();
    g.on_unit = std::move(on_unit);
    const Duration total_wall{g.unit_wall.count() *
                              static_cast<std::int64_t>(count)};
    group_ = std::move(g);
    util_.Start(sim_->Now());
    group_->event = sim_->ScheduleAfter(total_wall, [this] { OnGroupEvent(); });
    return rid;
  }
  ChainTail tail;
  tail.owner = owner;
  tail.desc = desc;
  tail.remaining = count - 1;
  tail.on_unit = std::move(on_unit);
  tail.in_flight = true;
  chains_.emplace(rid, std::move(tail));
  StartChainUnit(rid);
  return rid;
}

void GpuDevice::StartChainUnit(RepeatId id) {
  ChainTail& tail = chains_.at(id);
  Progress();
  Running r;
  r.id = next_kernel_++;
  r.owner = tail.owner;
  r.bandwidth_demand = tail.desc.bandwidth_demand;
  r.end_v =
      vnow_ + std::max(Duration{1}, tail.desc.nominal_duration).count();
  r.name = tail.desc.name;
  r.start = sim_->Now();
  r.on_done = tail.on_unit;
  r.chain = id;
  InsertRunning(std::move(r));
  RecomputeRate();
  Reschedule();
}

void GpuDevice::AdvanceChain(RepeatId id) {
  auto it = chains_.find(id);
  if (it == chains_.end()) return;
  ChainTail& tail = it->second;
  if (tail.remaining <= 0) {
    chains_.erase(it);
    return;
  }
  --tail.remaining;
  tail.in_flight = true;
  StartChainUnit(id);
}

void GpuDevice::SplitGroup(bool fire_callbacks) {
  FusedGroup g = std::move(*group_);
  group_.reset();
  if (g.event != sim::kInvalidEvent) sim_->Cancel(g.event);
  const Time now = sim_->Now();
  const std::int64_t unit_wall = g.unit_wall.count();
  std::int64_t due = (now - g.anchor).count() / unit_wall;
  if (due < 0) due = 0;
  if (due > g.total) due = g.total;

  // Materialize finished units first (ids in start order, matching the
  // oracle's allocation at each unit's start time), then convert the
  // in-flight unit, then deliver the callbacks — a callback may re-enter
  // (Submit / SubmitRepeat), so the engine state must be settled first.
  std::vector<Time> finishes;
  finishes.reserve(static_cast<std::size_t>(due));
  for (std::int64_t i = 0; i < due; ++i) {
    const KernelId id = next_kernel_++;
    const Time start = g.anchor + Duration{i * unit_wall};
    const Time finish = g.anchor + Duration{(i + 1) * unit_wall};
    ++completed_;
    RecordTrace(id, g.owner, g.desc.name, start, finish);
    finishes.push_back(finish);
  }

  if (due < g.total) {
    Progress();
    const Time start = g.anchor + Duration{due * unit_wall};
    // Burn exactly what the oracle's Progress() would have: the unit ran
    // alone since `start` at its exclusive rate.
    const double stretch =
        std::max(1.0, g.desc.bandwidth_demand /
                          std::max(1e-9, spec_.bandwidth_capacity));
    const double rate_alone = 1.0 / stretch;
    const auto nominal = std::max(Duration{1}, g.desc.nominal_duration);
    const auto burn = Duration{static_cast<std::int64_t>(
        static_cast<double>((now - start).count()) * rate_alone)};
    const Duration remaining =
        (nominal > burn) ? nominal - burn : Duration{0};
    Running r;
    r.id = next_kernel_++;
    r.owner = g.owner;
    r.bandwidth_demand = g.desc.bandwidth_demand;
    r.end_v = vnow_ + remaining.count();
    r.name = g.desc.name;
    r.start = start;
    r.on_done = fire_callbacks ? g.on_unit : nullptr;
    r.chain = g.id;
    InsertRunning(std::move(r));
    ChainTail tail;
    tail.owner = g.owner;
    tail.desc = g.desc;
    tail.remaining =
        fire_callbacks ? g.total - static_cast<int>(due) - 1 : 0;
    tail.finished = static_cast<std::size_t>(due);
    tail.on_unit = fire_callbacks ? g.on_unit : nullptr;
    tail.in_flight = true;
    chains_.emplace(g.id, std::move(tail));
    RecomputeRate();
    Reschedule();
  }

  if (fire_callbacks && g.on_unit) {
    for (const Time finish : finishes) g.on_unit(finish);
  }
}

void GpuDevice::OnGroupEvent() {
  FusedGroup g = std::move(*group_);
  group_.reset();
  const std::int64_t unit_wall = g.unit_wall.count();
  std::vector<Time> finishes;
  finishes.reserve(static_cast<std::size_t>(g.total));
  for (int i = 0; i < g.total; ++i) {
    const KernelId id = next_kernel_++;
    const Time start =
        g.anchor + Duration{static_cast<std::int64_t>(i) * unit_wall};
    const Time finish =
        g.anchor + Duration{static_cast<std::int64_t>(i + 1) * unit_wall};
    ++completed_;
    RecordTrace(id, g.owner, g.desc.name, start, finish);
    finishes.push_back(finish);
  }
  Progress();
  Reschedule();  // running set empty, no group -> closes the busy interval
  if (g.on_unit) {
    for (const Time finish : finishes) g.on_unit(finish);
  }
}

std::size_t GpuDevice::CancelRepeatTail(RepeatId id) {
  if (IsSlicedRepeat(id)) return CancelSlicedTail(id);
  if (group_ && group_->id == id) {
    // Deliver due units and demote the in-flight one; the unstarted tail
    // becomes the chain remainder cancelled below.
    SplitGroup(/*fire_callbacks=*/true);
  }
  auto it = chains_.find(id);
  if (it == chains_.end()) return 0;
  const auto cancelled =
      static_cast<std::size_t>(std::max(0, it->second.remaining));
  it->second.remaining = 0;
  if (!it->second.in_flight) chains_.erase(it);
  return cancelled;
}

std::size_t GpuDevice::RepeatUnitsFinished(RepeatId id) const {
  if (IsSlicedRepeat(id)) return SlicedUnitsFinished(id);
  if (group_ && group_->id == id) {
    const std::int64_t unit_wall = group_->unit_wall.count();
    std::int64_t due = (sim_->Now() - group_->anchor).count() / unit_wall;
    if (due < 0) due = 0;
    if (due > group_->total) due = group_->total;
    return static_cast<std::size_t>(due);
  }
  auto it = chains_.find(id);
  return it == chains_.end() ? 0 : it->second.finished;
}

void GpuDevice::DetachOwner(const ContainerId& owner) {
  DetachSlicedOwner(owner);
  DetachMigrations(owner);
  if (group_ && group_->owner == owner) {
    SplitGroup(/*fire_callbacks=*/false);
  }
  for (auto& [seq, r] : running_) {
    if (r.owner == owner) r.on_done = nullptr;
  }
  for (auto it = chains_.begin(); it != chains_.end();) {
    if (it->second.owner == owner) {
      it->second.remaining = 0;
      it->second.on_unit = nullptr;
      if (!it->second.in_flight) {
        it = chains_.erase(it);
        continue;
      }
    }
    ++it;
  }
}

std::size_t GpuDevice::active_kernels() const {
  return running_.size() + (group_ ? 1u : 0u) + sliced_.size();
}

std::uint64_t GpuDevice::completed_kernels() const {
  std::uint64_t total = completed_;
  if (group_) {
    const std::int64_t unit_wall = group_->unit_wall.count();
    std::int64_t due = (sim_->Now() - group_->anchor).count() / unit_wall;
    if (due < 0) due = 0;
    if (due > group_->total) due = group_->total;
    total += static_cast<std::uint64_t>(due);
  }
  return total;
}

void GpuDevice::OnCompletionEvent() {
  completion_event_ = sim::kInvalidEvent;
  Progress();
  const Time now = sim_->Now();
  // Collect every kernel that has (numerically) finished, in submission
  // order like the reference engine's vector scan. Completion callbacks
  // run after the running set is updated so re-entrant Submit() calls
  // from a callback see a consistent device state.
  std::vector<std::uint64_t> seqs;
  for (auto it = by_end_.begin(); it != by_end_.end();) {
    // 1 us tolerance absorbs the floor/ceil rounding between Progress()
    // and the completion-event timing; without it a kernel could hover at
    // remaining == 1 and re-fire the event indefinitely.
    if (it->first - vnow_ > 1) break;
    seqs.push_back(it->second);
    it = by_end_.erase(it);
  }
  std::sort(seqs.begin(), seqs.end());
  struct Done {
    UnitDoneFn fn;
    RepeatId chain;
  };
  std::vector<Done> done;
  done.reserve(seqs.size());
  for (const std::uint64_t seq : seqs) {
    auto it = running_.find(seq);
    Running& r = it->second;
    ++completed_;
    if (r.chain != 0) {
      auto chain = chains_.find(r.chain);
      if (chain != chains_.end()) {
        ++chain->second.finished;
        chain->second.in_flight = false;
      }
    }
    RecordTrace(r.id, r.owner, r.name, r.start, now);
    done.push_back(Done{std::move(r.on_done), r.chain});
    running_.erase(it);
  }
  RecomputeRate();
  Reschedule();
  for (auto& d : done) {
    if (d.fn) d.fn(now);
    if (d.chain != 0) AdvanceChain(d.chain);
  }
}

}  // namespace ks::gpu
