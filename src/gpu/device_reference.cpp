#include "gpu/device_reference.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace ks::gpu {

GpuDeviceReference::GpuDeviceReference(sim::Simulation* sim, GpuUuid uuid,
                                       GpuSpec spec)
    : GpuDevice(sim, std::move(uuid), spec) {}

double GpuDeviceReference::CurrentRatePerKernel() const {
  if (running_.empty()) return 0.0;
  double bw = 0.0;
  for (const Running& r : running_) bw += r.bandwidth_demand;
  const double stretch =
      std::max(1.0, bw / std::max(1e-9, spec_.bandwidth_capacity));
  return 1.0 / (static_cast<double>(running_.size()) * stretch);
}

void GpuDeviceReference::Progress() {
  const Time now = sim_->Now();
  if (running_.empty() || now <= last_update_) {
    last_update_ = now;
    return;
  }
  const double rate = CurrentRatePerKernel();
  const auto elapsed = static_cast<double>((now - last_update_).count());
  const auto burn = Duration{static_cast<std::int64_t>(elapsed * rate)};
  for (Running& r : running_) {
    r.remaining = (r.remaining > burn) ? r.remaining - burn : Duration{0};
  }
  last_update_ = now;
}

void GpuDeviceReference::Reschedule() {
  if (completion_event_ != sim::kInvalidEvent) {
    sim_->Cancel(completion_event_);
    completion_event_ = sim::kInvalidEvent;
  }
  if (running_.empty()) {
    if (!SlicedBusy() && !MigrationBusy()) util_.Stop(sim_->Now());
    return;
  }
  util_.Start(sim_->Now());
  const double rate = CurrentRatePerKernel();
  Duration min_remaining = running_.front().remaining;
  for (const Running& r : running_) {
    min_remaining = std::min(min_remaining, r.remaining);
  }
  const auto wall = Duration{static_cast<std::int64_t>(
      std::ceil(static_cast<double>(min_remaining.count()) / rate))};
  completion_event_ =
      sim_->ScheduleAfter(std::max(Duration{0}, wall), [this] {
        OnCompletionEvent();
      });
}

KernelId GpuDeviceReference::Submit(const ContainerId& owner,
                                    const KernelDesc& desc,
                                    std::function<void()> on_complete) {
  if (RejectFencedSubmit(owner)) return 0;
  if (HasSliceAssignment(owner)) {
    // The slice lane lives in the base class and is shared verbatim by
    // both engines, keeping differential traces byte-equal.
    return GpuDevice::Submit(owner, desc, std::move(on_complete));
  }
  Progress();
  const KernelId id = next_kernel_++;
  Running r;
  r.id = id;
  r.owner = owner;
  r.bandwidth_demand = desc.bandwidth_demand;
  r.remaining = std::max(Duration{1}, desc.nominal_duration);
  r.name = desc.name;
  r.start = sim_->Now();
  if (on_complete) {
    r.on_done = [fn = std::move(on_complete)](Time) { fn(); };
  }
  running_.push_back(std::move(r));
  Reschedule();
  return id;
}

RepeatId GpuDeviceReference::SubmitRepeat(const ContainerId& owner,
                                          const KernelDesc& desc, int count,
                                          UnitDoneFn on_unit) {
  if (count <= 0) return 0;
  if (RejectFencedSubmit(owner)) return 0;
  if (HasSliceAssignment(owner)) {
    return GpuDevice::SubmitRepeat(owner, desc, count, std::move(on_unit));
  }
  const RepeatId rid = next_repeat_++;
  ChainTail tail;
  tail.owner = owner;
  tail.desc = desc;
  tail.remaining = count - 1;
  tail.on_unit = std::move(on_unit);
  tail.in_flight = true;
  chains_.emplace(rid, std::move(tail));
  StartChainUnit(rid);
  return rid;
}

void GpuDeviceReference::StartChainUnit(RepeatId id) {
  ChainTail& tail = chains_.at(id);
  Progress();
  Running r;
  r.id = next_kernel_++;
  r.owner = tail.owner;
  r.bandwidth_demand = tail.desc.bandwidth_demand;
  r.remaining = std::max(Duration{1}, tail.desc.nominal_duration);
  r.name = tail.desc.name;
  r.start = sim_->Now();
  r.on_done = tail.on_unit;
  r.chain = id;
  running_.push_back(std::move(r));
  Reschedule();
}

void GpuDeviceReference::AdvanceChain(RepeatId id) {
  auto it = chains_.find(id);
  if (it == chains_.end()) return;
  ChainTail& tail = it->second;
  if (tail.remaining <= 0) {
    chains_.erase(it);
    return;
  }
  --tail.remaining;
  tail.in_flight = true;
  StartChainUnit(id);
}

std::size_t GpuDeviceReference::CancelRepeatTail(RepeatId id) {
  if (IsSlicedRepeat(id)) return CancelSlicedTail(id);
  auto it = chains_.find(id);
  if (it == chains_.end()) return 0;
  const auto cancelled =
      static_cast<std::size_t>(std::max(0, it->second.remaining));
  it->second.remaining = 0;
  if (!it->second.in_flight) chains_.erase(it);
  return cancelled;
}

std::size_t GpuDeviceReference::RepeatUnitsFinished(RepeatId id) const {
  if (IsSlicedRepeat(id)) return SlicedUnitsFinished(id);
  auto it = chains_.find(id);
  return it == chains_.end() ? 0 : it->second.finished;
}

void GpuDeviceReference::DetachOwner(const ContainerId& owner) {
  DetachSlicedOwner(owner);
  DetachMigrations(owner);
  for (Running& r : running_) {
    if (r.owner == owner) r.on_done = nullptr;
  }
  for (auto it = chains_.begin(); it != chains_.end();) {
    if (it->second.owner == owner) {
      it->second.remaining = 0;
      it->second.on_unit = nullptr;
      if (!it->second.in_flight) {
        it = chains_.erase(it);
        continue;
      }
    }
    ++it;
  }
}

std::size_t GpuDeviceReference::active_kernels() const {
  return running_.size() + sliced_active_kernels();
}

bool GpuDeviceReference::EngineBusy() const { return !running_.empty(); }

std::uint64_t GpuDeviceReference::completed_kernels() const {
  return completed_;
}

void GpuDeviceReference::OnCompletionEvent() {
  completion_event_ = sim::kInvalidEvent;
  Progress();
  const Time now = sim_->Now();
  // Collect every kernel that has (numerically) finished. Completion
  // callbacks run after the running set is updated so re-entrant Submit()
  // calls from a callback see a consistent device state.
  struct Done {
    UnitDoneFn fn;
    RepeatId chain;
  };
  std::vector<Done> done;
  for (auto it = running_.begin(); it != running_.end();) {
    // 1 us tolerance absorbs the floor/ceil rounding between Progress()
    // and the completion-event timing; without it a kernel could hover at
    // remaining == 1 and re-fire the event indefinitely.
    if (it->remaining <= Duration{1}) {
      ++completed_;
      if (it->chain != 0) {
        auto chain = chains_.find(it->chain);
        if (chain != chains_.end()) {
          ++chain->second.finished;
          chain->second.in_flight = false;
        }
      }
      RecordTrace(it->id, it->owner, it->name, it->start, now);
      done.push_back(Done{std::move(it->on_done), it->chain});
      it = running_.erase(it);
    } else {
      ++it;
    }
  }
  Reschedule();
  for (auto& d : done) {
    if (d.fn) d.fn(now);
    if (d.chain != 0) AdvanceChain(d.chain);
  }
}

}  // namespace ks::gpu
