#include "gpu/nvml.hpp"

#include <cassert>

namespace ks::gpu {

namespace {
const std::vector<NvmlSample> kNoSamples;
}

NvmlMonitor::NvmlMonitor(sim::Simulation* sim, Duration period,
                         sim::TickHub* hub)
    : sim_(sim), period_(period), hub_(hub) {
  assert(sim_ != nullptr);
  assert(period_.count() > 0);
}

void NvmlMonitor::Register(GpuDevice* device) {
  assert(device != nullptr);
  devices_.push_back(device);
  samples_.try_emplace(device->uuid());
  busy_at_last_tick_[device->uuid()] = device->utilization().TotalBusy();
}

void NvmlMonitor::Start() {
  if (running_) return;
  running_ = true;
  last_tick_ = sim_->Now();
  if (hub_ != nullptr) {
    sub_ = hub_->Subscribe(period_, [this] { Tick(); });
  } else {
    tick_event_ = sim_->ScheduleAfter(period_, [this] { Tick(); });
  }
}

void NvmlMonitor::Stop() {
  if (!running_) return;
  running_ = false;
  if (hub_ != nullptr) {
    hub_->Unsubscribe(sub_);
    sub_ = 0;
  } else {
    sim_->Cancel(tick_event_);
    tick_event_ = sim::kInvalidEvent;
  }
}

void NvmlMonitor::Tick() {
  const Time now = sim_->Now();
  const auto elapsed = now - last_tick_;
  for (GpuDevice* dev : devices_) {
    dev->utilization().Flush(now);
    const Duration busy_total = dev->utilization().TotalBusy();
    const Duration busy_delta = busy_total - busy_at_last_tick_[dev->uuid()];
    busy_at_last_tick_[dev->uuid()] = busy_total;
    NvmlSample s;
    s.at = now;
    s.gpu_util = elapsed.count() > 0
                     ? static_cast<double>(busy_delta.count()) /
                           static_cast<double>(elapsed.count())
                     : 0.0;
    s.mem_used = static_cast<double>(dev->used_memory()) /
                 static_cast<double>(dev->spec().memory_bytes);
    samples_[dev->uuid()].push_back(s);
  }
  last_tick_ = now;
  if (hub_ == nullptr && running_) {
    tick_event_ = sim_->ScheduleAfter(period_, [this] { Tick(); });
  }
}

const std::vector<NvmlSample>& NvmlMonitor::SamplesFor(
    const GpuUuid& uuid) const {
  auto it = samples_.find(uuid);
  if (it == samples_.end()) return kNoSamples;
  return it->second;
}

double NvmlMonitor::AverageUtilization(const GpuUuid& uuid) const {
  const auto& s = SamplesFor(uuid);
  if (s.empty()) return 0.0;
  double total = 0.0;
  for (const NvmlSample& x : s) total += x.gpu_util;
  return total / static_cast<double>(s.size());
}

double NvmlMonitor::AverageUtilizationAcrossActive(std::size_t i) const {
  double total = 0.0;
  std::size_t active = 0;
  for (const auto& [uuid, series] : samples_) {
    if (i >= series.size()) continue;
    bool was_active = false;
    for (std::size_t k = 0; k <= i; ++k) {
      if (series[k].gpu_util > 0.0) {
        was_active = true;
        break;
      }
    }
    if (!was_active) continue;
    total += series[i].gpu_util;
    ++active;
  }
  return active > 0 ? total / static_cast<double>(active) : 0.0;
}

}  // namespace ks::gpu
