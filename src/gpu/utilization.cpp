#include "gpu/utilization.hpp"

#include <algorithm>
#include <cassert>

namespace ks::gpu {

UtilizationTracker::UtilizationTracker(Duration bucket) : bucket_(bucket) {
  assert(bucket.count() > 0);
}

void UtilizationTracker::Start(Time now) {
  if (active_) return;
  active_ = true;
  active_since_ = now;
}

void UtilizationTracker::Stop(Time now) {
  if (!active_) return;
  Accumulate(active_since_, now);
  active_ = false;
}

void UtilizationTracker::Flush(Time now) {
  if (!active_) return;
  if (now > active_since_) {
    Accumulate(active_since_, now);
    active_since_ = now;
  }
}

void UtilizationTracker::Accumulate(Time from, Time to) {
  if (to <= from) return;
  total_busy_ += to - from;
  auto first = static_cast<std::size_t>(from.count() / bucket_.count());
  auto last = static_cast<std::size_t>((to.count() - 1) / bucket_.count());
  if (buckets_.size() <= last) buckets_.resize(last + 1, Duration{0});
  for (std::size_t b = first; b <= last; ++b) {
    const Time bucket_start{static_cast<std::int64_t>(b) * bucket_.count()};
    const Time bucket_end = bucket_start + bucket_;
    const Time s = std::max(from, bucket_start);
    const Time e = std::min(to, bucket_end);
    if (e > s) buckets_[b] += e - s;
  }
}

double UtilizationTracker::BucketUtilization(std::size_t index) const {
  if (index >= buckets_.size()) return 0.0;
  return static_cast<double>(buckets_[index].count()) /
         static_cast<double>(bucket_.count());
}

double UtilizationTracker::RangeUtilization(Time from, Time to) const {
  if (to <= from) return 0.0;
  Duration busy{0};
  auto first = static_cast<std::size_t>(from.count() / bucket_.count());
  auto last = static_cast<std::size_t>((to.count() - 1) / bucket_.count());
  last = std::min(last, buckets_.empty() ? 0 : buckets_.size() - 1);
  for (std::size_t b = first; b < buckets_.size() && b <= last; ++b) {
    // Bucket-granular approximation: assume busy time is uniform within a
    // bucket when the range cuts through it.
    const Time bucket_start{static_cast<std::int64_t>(b) * bucket_.count()};
    const Time bucket_end = bucket_start + bucket_;
    const Time s = std::max(from, bucket_start);
    const Time e = std::min(to, bucket_end);
    if (e <= s) continue;
    const double overlap = static_cast<double>((e - s).count()) /
                           static_cast<double>(bucket_.count());
    busy += Duration{static_cast<std::int64_t>(
        static_cast<double>(buckets_[b].count()) * overlap)};
  }
  return std::min(1.0, static_cast<double>(busy.count()) /
                           static_cast<double>((to - from).count()));
}

}  // namespace ks::gpu
