#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"
#include "gpu/device.hpp"
#include "sim/simulation.hpp"
#include "sim/tick_hub.hpp"

namespace ks::gpu {

/// One utilization sample, in the style of nvmlDeviceGetUtilizationRates.
struct NvmlSample {
  Time at{0};
  double gpu_util = 0.0;   // fraction of the sample period with a kernel active
  double mem_used = 0.0;   // fraction of device memory allocated
};

/// Periodic utilization monitor modeled after the NVML polling loop the
/// paper uses to produce Fig 5 and Fig 9 ("the overall utilization of a GPU
/// is measured by the GPU usage value reported by the Nvidia NVML library").
///
/// The monitor samples each registered device every `period`, recording the
/// busy fraction of the elapsed period. Start() arms the sampling loop on
/// the simulation; the loop stops when Stop() is called.
///
/// With a sim::TickHub the poll rides the shared sampler tick instead of
/// keeping a private self-rescheduling event — same samples, fewer engine
/// events (the hub coalesces every instrument on its grid).
class NvmlMonitor {
 public:
  NvmlMonitor(sim::Simulation* sim, Duration period = Seconds(1.0),
              sim::TickHub* hub = nullptr);

  void Register(GpuDevice* device);

  void Start();
  void Stop();
  bool running() const { return running_; }

  const std::vector<NvmlSample>& SamplesFor(const GpuUuid& uuid) const;

  /// Mean gpu_util across all samples of one device.
  double AverageUtilization(const GpuUuid& uuid) const;

  /// Mean gpu_util at sample index `i` across devices that were busy at
  /// least once by then ("active" devices, Fig 9's numerator).
  double AverageUtilizationAcrossActive(std::size_t i) const;

 private:
  void Tick();

  sim::Simulation* sim_;
  Duration period_;
  sim::TickHub* hub_ = nullptr;
  bool running_ = false;
  sim::EventId tick_event_ = sim::kInvalidEvent;
  sim::TickHub::SubId sub_ = 0;
  Time last_tick_{0};

  std::vector<GpuDevice*> devices_;
  std::unordered_map<GpuUuid, std::vector<NvmlSample>> samples_;
  std::unordered_map<GpuUuid, Duration> busy_at_last_tick_;
};

}  // namespace ks::gpu
