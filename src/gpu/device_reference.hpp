#pragma once

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "gpu/device.hpp"

namespace ks::gpu {

/// The original one-event-per-kernel processor-sharing engine, kept as the
/// differential oracle for the virtual-time + fused-stream GpuDevice (the
/// same pattern as vgpu::TokenBackendReference). Each Progress() rescales
/// every in-flight kernel's remaining work, and SubmitRepeat always chains
/// units one at a time — one engine event per kernel. Selected per cluster
/// via ClusterConfig::exec (GpuExecMode::kReference).
///
/// Observable behavior — kernel ids, start/finish traces, callback order,
/// utilization intervals, memory ledger — must stay byte-equal to the
/// fused engine; the `differential` test suite pins this across seeded
/// full-cluster runs.
class GpuDeviceReference final : public GpuDevice {
 public:
  GpuDeviceReference(sim::Simulation* sim, GpuUuid uuid, GpuSpec spec = {});

  KernelId Submit(const ContainerId& owner, const KernelDesc& desc,
                  std::function<void()> on_complete) override;
  RepeatId SubmitRepeat(const ContainerId& owner, const KernelDesc& desc,
                        int count, UnitDoneFn on_unit) override;
  std::size_t CancelRepeatTail(RepeatId id) override;
  std::size_t RepeatUnitsFinished(RepeatId id) const override;
  void DetachOwner(const ContainerId& owner) override;
  std::size_t active_kernels() const override;
  std::uint64_t completed_kernels() const override;

 protected:
  bool EngineBusy() const override;

 private:
  struct Running {
    KernelId id;
    ContainerId owner;
    double bandwidth_demand;
    Duration remaining{0};
    std::string name;
    Time start{0};
    UnitDoneFn on_done;
    RepeatId chain = 0;
  };
  struct ChainTail {
    ContainerId owner;
    KernelDesc desc;
    int remaining = 0;
    std::size_t finished = 0;
    UnitDoneFn on_unit;
    bool in_flight = false;
  };

  double CurrentRatePerKernel() const;
  void Progress();
  void Reschedule();
  void OnCompletionEvent();
  void AdvanceChain(RepeatId id);
  void StartChainUnit(RepeatId id);

  std::vector<Running> running_;
  Time last_update_{0};
  sim::EventId completion_event_ = sim::kInvalidEvent;
  RepeatId next_repeat_ = 1;
  std::unordered_map<RepeatId, ChainTail> chains_;
};

}  // namespace ks::gpu
