#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "common/status.hpp"
#include "common/time.hpp"
#include "gpu/utilization.hpp"
#include "sim/simulation.hpp"

namespace ks::gpu {

/// Static properties of a simulated device. Defaults model the paper's
/// testbed GPU (NVIDIA Tesla V100, 16 GB device memory).
struct GpuSpec {
  std::uint64_t memory_bytes = 16ull * 1024 * 1024 * 1024;
  /// Aggregate memory-bandwidth capacity in normalized units. Concurrent
  /// kernels whose bandwidth demands sum past this stretch uniformly.
  double bandwidth_capacity = 1.0;
};

/// A unit of GPU work. `nominal_duration` is the run time of the kernel when
/// it has the device to itself; concurrent kernels share the SMs
/// processor-sharing style, and bandwidth oversubscription stretches
/// everything uniformly (the contention the paper's intro attributes to
/// "limited memory bandwidth").
struct KernelDesc {
  Duration nominal_duration{0};
  double bandwidth_demand = 0.0;
  std::string name;
};

using KernelId = std::uint64_t;
using DevicePtr = std::uint64_t;

/// Simulated GPU device: a memory ledger plus a processor-sharing kernel
/// execution engine driven by the discrete-event simulation.
///
/// The execution model is deliberately simple but captures what the paper's
/// isolation mechanism depends on:
///  - kernels are non-preemptive (a kernel in flight always completes);
///  - kernels submitted concurrently (e.g. by containers sharing a GPU with
///    no compute isolation, as under the Aliyun-style baseline) divide the
///    SMs evenly;
///  - device memory is physically bounded: allocation past capacity fails,
///    which is the crash mode KubeShare's memory interception prevents.
class GpuDevice {
 public:
  GpuDevice(sim::Simulation* sim, GpuUuid uuid, GpuSpec spec = {});
  GpuDevice(const GpuDevice&) = delete;
  GpuDevice& operator=(const GpuDevice&) = delete;

  const GpuUuid& uuid() const { return uuid_; }
  const GpuSpec& spec() const { return spec_; }
  sim::Simulation* sim() const { return sim_; }

  // --- Memory ---------------------------------------------------------
  Expected<DevicePtr> Allocate(const ContainerId& owner, std::uint64_t bytes);
  Status Free(DevicePtr ptr);
  /// Releases every allocation owned by `owner` (container teardown).
  void FreeAll(const ContainerId& owner);

  std::uint64_t used_memory() const { return used_memory_; }
  std::uint64_t MemoryUsedBy(const ContainerId& owner) const;

  // --- Execution ------------------------------------------------------
  /// Enqueues a kernel for execution; `on_complete` fires (via the event
  /// queue) when it finishes. Execution begins immediately — stream
  /// ordering is enforced by the CUDA layer above, not by the device.
  KernelId Submit(const ContainerId& owner, const KernelDesc& desc,
                  std::function<void()> on_complete);

  /// Drops the completion callbacks of every in-flight kernel owned by
  /// `owner`. The kernels still run to completion (the device cannot
  /// preempt), but nothing is invoked when they retire. Called when a
  /// container is torn down while its kernels are on the device — the
  /// callbacks would otherwise dangle into freed per-container state.
  void DetachOwner(const ContainerId& owner);

  std::size_t active_kernels() const { return running_.size(); }
  bool busy() const { return !running_.empty(); }

  /// Device-level utilization (fraction of time >= 1 kernel active).
  const UtilizationTracker& utilization() const { return util_; }
  UtilizationTracker& utilization() { return util_; }

  /// Total kernels completed — a cheap progress probe for tests.
  std::uint64_t completed_kernels() const { return completed_; }

 private:
  struct Running {
    KernelId id;
    ContainerId owner;
    double bandwidth_demand;
    Duration remaining;  // work left at full (exclusive) rate
    std::function<void()> on_complete;
  };

  /// Re-times the pending completion event after the active set changed.
  void Reschedule();
  /// Advances all running kernels' remaining work by the time since
  /// last_update_ at the current sharing rate.
  void Progress();
  double CurrentRatePerKernel() const;
  void OnCompletionEvent();

  sim::Simulation* sim_;
  GpuUuid uuid_;
  GpuSpec spec_;

  std::uint64_t used_memory_ = 0;
  DevicePtr next_ptr_ = 1;
  struct Allocation {
    ContainerId owner;
    std::uint64_t bytes;
  };
  std::unordered_map<DevicePtr, Allocation> allocations_;

  KernelId next_kernel_ = 1;
  std::vector<Running> running_;
  Time last_update_{0};
  sim::EventId completion_event_ = sim::kInvalidEvent;
  UtilizationTracker util_;
  std::uint64_t completed_ = 0;
};

}  // namespace ks::gpu
