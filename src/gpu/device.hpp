#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/ids.hpp"
#include "common/status.hpp"
#include "common/time.hpp"
#include "gpu/utilization.hpp"
#include "sim/simulation.hpp"

namespace ks::gpu {

/// Static properties of a simulated device. Defaults model the paper's
/// testbed GPU (NVIDIA Tesla V100, 16 GB device memory).
struct GpuSpec {
  std::uint64_t memory_bytes = 16ull * 1024 * 1024 * 1024;
  /// Aggregate memory-bandwidth capacity in normalized units. Concurrent
  /// kernels whose bandwidth demands sum past this stretch uniformly.
  double bandwidth_capacity = 1.0;
};

/// A unit of GPU work. `nominal_duration` is the run time of the kernel when
/// it has the device to itself; concurrent kernels share the SMs
/// processor-sharing style, and bandwidth oversubscription stretches
/// everything uniformly (the contention the paper's intro attributes to
/// "limited memory bandwidth").
struct KernelDesc {
  Duration nominal_duration{0};
  double bandwidth_demand = 0.0;
  std::string name;
  /// Fraction of the device's SMs the kernel can saturate. Only consulted
  /// when the owner runs on a spatial slice: a kernel whose demand exceeds
  /// its slice's compute fraction stretches by demand/fraction, while a
  /// small kernel on a matching slice runs at nominal speed (the spatial
  /// goodput win). 1.0 — the default — models a full-device kernel.
  double sm_demand = 1.0;
};

using KernelId = std::uint64_t;
using DevicePtr = std::uint64_t;
/// Handle to a repeated-kernel stream declared with SubmitRepeat.
using RepeatId = std::uint64_t;

/// Per-unit completion callback for repeated kernels. `finish` is the exact
/// retirement time of the unit; callbacks may be *delivered* in arrears
/// (batched onto the stream's single engine event), so implementations must
/// use `finish` rather than Simulation::Now() for timing.
using UnitDoneFn = std::function<void(Time finish)>;

/// One kernel's lifetime, reported in retirement order. `start`/`finish`
/// are exact regardless of the execution mode (fused or per-kernel), which
/// is what the differential suite pins.
struct KernelTraceEvent {
  KernelId id = 0;
  ContainerId owner;
  std::string name;
  Time start{0};
  Time finish{0};
};
using KernelTraceFn = std::function<void(const KernelTraceEvent&)>;

/// What a tenant did wrong, as observed at the device. Reported through the
/// violation observer so the token backend can attribute and escalate.
enum class DeviceViolation {
  kFencedSubmit,  // kernel submitted without an admitted token epoch
  kMemoryQuota,   // cuMemAlloc past the tenant's enforced quota
};
using ViolationFn = std::function<void(const ContainerId&, DeviceViolation)>;

/// Which execution engine a cluster's devices use. kFused is the
/// virtual-time engine with fused kernel streams; kReference is the
/// original one-event-per-kernel implementation kept as the differential
/// oracle (same pattern as vgpu::TokenTimerMode).
enum class GpuExecMode {
  kFused,
  kReference,
};

/// Simulated GPU device: a memory ledger plus a processor-sharing kernel
/// execution engine driven by the discrete-event simulation.
///
/// The execution model is deliberately simple but captures what the paper's
/// isolation mechanism depends on:
///  - kernels are non-preemptive (a kernel in flight always completes);
///  - kernels submitted concurrently (e.g. by containers sharing a GPU with
///    no compute isolation, as under the Aliyun-style baseline) divide the
///    SMs evenly;
///  - device memory is physically bounded: allocation past capacity fails,
///    which is the crash mode KubeShare's memory interception prevents.
///
/// This class is the virtual-time engine: each in-flight kernel's remaining
/// work is a fixed point `end_v` on a global virtual-service axis, Progress
/// advances one accumulator instead of rescaling every kernel, and exactly
/// one completion event is armed at the earliest `end_v` (the TimerWheel's
/// one-armed-event discipline). A completion is therefore O(log n) instead
/// of an O(n) rescale. On top of that, SubmitRepeat lets steady kernel
/// streams retire K identical back-to-back units with a single engine
/// event; any membership, teardown or cancellation event splits the fusion
/// so observable traces (kernel ids/times, utilization, callbacks) are
/// byte-equal to the per-kernel oracle, GpuDeviceReference.
class GpuDevice {
 public:
  GpuDevice(sim::Simulation* sim, GpuUuid uuid, GpuSpec spec = {});
  virtual ~GpuDevice() = default;
  GpuDevice(const GpuDevice&) = delete;
  GpuDevice& operator=(const GpuDevice&) = delete;

  const GpuUuid& uuid() const { return uuid_; }
  const GpuSpec& spec() const { return spec_; }
  sim::Simulation* sim() const { return sim_; }

  // --- Memory ---------------------------------------------------------
  Expected<DevicePtr> Allocate(const ContainerId& owner, std::uint64_t bytes);
  Status Free(DevicePtr ptr);
  /// Releases every allocation owned by `owner` (container teardown).
  void FreeAll(const ContainerId& owner);

  std::uint64_t used_memory() const { return used_memory_; }
  std::uint64_t MemoryUsedBy(const ContainerId& owner) const;

  // --- Execution ------------------------------------------------------
  /// Enqueues a kernel for execution; `on_complete` fires (via the event
  /// queue) when it finishes. Execution begins immediately — stream
  /// ordering is enforced by the CUDA layer above, not by the device.
  virtual KernelId Submit(const ContainerId& owner, const KernelDesc& desc,
                          std::function<void()> on_complete);

  /// Declares `count` identical kernels to run back to back (a steady
  /// kernel stream: train steps, inference requests at a fixed service
  /// time). `on_unit` fires once per unit, in order, with the unit's exact
  /// finish time; delivery may be batched onto one engine event. When the
  /// device is otherwise idle the whole run retires on a single event;
  /// otherwise units are chained one at a time exactly like Submit.
  virtual RepeatId SubmitRepeat(const ContainerId& owner,
                                const KernelDesc& desc, int count,
                                UnitDoneFn on_unit);

  /// Cancels the not-yet-started units of a repeat stream (the in-flight
  /// unit always completes — the device cannot preempt). Units already due
  /// are delivered first. Returns the number of units cancelled.
  virtual std::size_t CancelRepeatTail(RepeatId id);

  /// Units of `id` that have finished by now, including due-but-undelivered
  /// ones — the pull-side progress probe that keeps mid-run introspection
  /// exact under fusion.
  virtual std::size_t RepeatUnitsFinished(RepeatId id) const;

  /// Drops the completion callbacks of every in-flight kernel owned by
  /// `owner` and cancels its unstarted repeat units. In-flight kernels
  /// still run to completion (the device cannot preempt) and are counted
  /// and traced when they retire, but nothing is invoked. Called when a
  /// container is torn down while its kernels are on the device — the
  /// callbacks would otherwise dangle into freed per-container state.
  virtual void DetachOwner(const ContainerId& owner);

  /// Exact wall time one unit of `desc` takes with the device to itself —
  /// the quantum the vGPU frontend sizes token-interval batches with.
  Duration ExclusiveWallTime(const KernelDesc& desc) const;

  // --- Spatial slices ---------------------------------------------------
  /// Pins `owner` onto a `groups`-of-`total` SM slice (MIG-style spatial
  /// partition). Its kernels then run on an isolated lane: fixed wall time
  /// nominal * max(1, sm_demand / slice_fraction), no processor-sharing or
  /// bandwidth coupling with other tenants (hardware isolation), and its
  /// allocations are bounded by the slice's proportional memory wall.
  /// Both execution engines share this lane, so differential traces stay
  /// byte-equal. With no assignment (the default) behavior is untouched.
  void SetSliceAssignment(const ContainerId& owner, int groups, int total);
  void ClearSliceAssignment(const ContainerId& owner);
  bool HasSliceAssignment(const ContainerId& owner) const;
  /// Wall time of one `desc` unit for `owner`, honoring its slice
  /// assignment; equals ExclusiveWallTime(desc) without one.
  Duration ExclusiveWallTimeFor(const ContainerId& owner,
                                const KernelDesc& desc) const;
  /// Kernels currently in flight on slice lanes (subset of active_kernels).
  std::size_t sliced_active_kernels() const { return sliced_.size(); }

  // --- Memory migrations ------------------------------------------------
  /// Charges a host<->device page-migration interval to `owner`: the
  /// device keeps its busy interval open for `duration` and fires
  /// `on_done` (via the event queue) when the transfer lands. The
  /// over-commitment layer routes swap traffic here so migration time is
  /// part of the device's virtual-time accounting. Like the slice lane,
  /// this lane lives in the base class and is used verbatim by the fused
  /// and reference engines, so differential traces stay byte-equal.
  void ChargeMigration(const ContainerId& owner, std::uint64_t bytes,
                       Duration duration, UnitDoneFn on_done);
  std::uint64_t migrations_charged() const { return migrations_charged_; }
  std::uint64_t migration_bytes_total() const {
    return migration_bytes_total_;
  }

  // --- Isolation enforcement -------------------------------------------
  /// Hard token fencing, reusing the k8s::FencingGate idiom: each gated
  /// owner carries a (epoch, floor) pair and a submit is admitted only
  /// while epoch >= floor. The token backend admits a fresh monotonic
  /// epoch on every grant and raises the floor past it on release or on
  /// an overstay fence, so a client that keeps submitting after expiry —
  /// or that floods the device without ever holding the token — is
  /// rejected at Submit/SubmitRepeat (return id 0, no trace, no
  /// callback). Owners with no gate (the default, and every native pod)
  /// are always admitted, so behavior without enforcement is untouched.
  /// The gate lives in this base class and is checked identically by the
  /// fused and reference engines, keeping differential traces byte-equal.
  void EnforceTokenGate(const ContainerId& owner);
  void LiftTokenGate(const ContainerId& owner);
  /// Admits `epoch` for `owner` (token granted). No-op without a gate.
  void AdmitTokenEpoch(const ContainerId& owner, std::uint64_t epoch);
  /// Raises the floor past the current epoch (token released or fenced);
  /// subsequent submits are rejected until a newer epoch is admitted.
  void FenceTokenEpoch(const ContainerId& owner);
  bool TokenGateAdmits(const ContainerId& owner) const;
  std::uint64_t fenced_kernel_rejections() const { return fenced_rejections_; }
  std::uint64_t FencedRejectionsOf(const ContainerId& owner) const;

  /// Server-side memory quota: Allocate fails with kResourceExhausted once
  /// `owner`'s ledger would exceed `bytes`, regardless of what the
  /// (bypassable) frontend hook believes. No quota (the default) keeps the
  /// physical-capacity-only behavior.
  void SetMemoryQuota(const ContainerId& owner, std::uint64_t bytes);
  void ClearMemoryQuota(const ContainerId& owner);
  std::uint64_t memory_quota_rejections() const {
    return memory_quota_rejections_;
  }

  /// Observer fired once per fenced submit / quota-rejected allocation.
  void SetViolationFn(ViolationFn fn) { violation_ = std::move(fn); }

  /// Kernels resident on the device (in flight; queued repeat units do not
  /// count, matching the chained oracle where they are not yet submitted).
  virtual std::size_t active_kernels() const;
  bool busy() const { return active_kernels() > 0; }

  /// Device-level utilization (fraction of time >= 1 kernel active).
  const UtilizationTracker& utilization() const { return util_; }
  UtilizationTracker& utilization() { return util_; }

  /// Total kernels completed — a cheap progress probe for tests. Analytic:
  /// includes due-but-unmaterialized units of an active fused stream.
  virtual std::uint64_t completed_kernels() const;

  /// Observer for per-kernel lifetimes, invoked in retirement order. The
  /// differential suite compares these traces across execution modes.
  void SetKernelTraceFn(KernelTraceFn fn) { trace_ = std::move(fn); }

 protected:
  void RecordTrace(KernelId id, const ContainerId& owner,
                   const std::string& name, Time start, Time finish) {
    if (trace_) trace_(KernelTraceEvent{id, owner, name, start, finish});
  }

  /// Gate check shared by both engines' submit paths. Returns true when
  /// the submit must be rejected; counts the rejection and notifies the
  /// violation observer.
  bool RejectFencedSubmit(const ContainerId& owner);

  // Slice-lane hooks for the execution engines. Repeat streams on slices
  // draw ids from a disjoint range so virtual dispatch can route by id.
  static constexpr RepeatId kSlicedRepeatBase = RepeatId{1} << 32;
  static bool IsSlicedRepeat(RepeatId id) { return id >= kSlicedRepeatBase; }
  bool SlicedBusy() const { return !sliced_.empty(); }
  /// True while the (engine-specific) time-shared lane has work in flight;
  /// the device-level busy interval closes only when both lanes drain.
  virtual bool EngineBusy() const;
  KernelId SubmitSliced(const ContainerId& owner, const KernelDesc& desc,
                        UnitDoneFn on_done, RepeatId chain);
  RepeatId SubmitRepeatSliced(const ContainerId& owner,
                              const KernelDesc& desc, int count,
                              UnitDoneFn on_unit);
  std::size_t CancelSlicedTail(RepeatId id);
  std::size_t SlicedUnitsFinished(RepeatId id) const;
  void DetachSlicedOwner(const ContainerId& owner);

  /// True while a charged migration is in flight; the device-level busy
  /// interval stays open until the transfer lands.
  bool MigrationBusy() const { return !migrations_.empty(); }
  /// Drops the completion callbacks of `owner`'s in-flight migrations
  /// (container teardown; the transfers themselves still finish).
  void DetachMigrations(const ContainerId& owner);

  sim::Simulation* sim_;
  GpuUuid uuid_;
  GpuSpec spec_;
  KernelId next_kernel_ = 1;
  UtilizationTracker util_;
  std::uint64_t completed_ = 0;
  KernelTraceFn trace_;

 private:
  struct Running {
    KernelId id;
    ContainerId owner;
    double bandwidth_demand;
    std::int64_t end_v;  // virtual-time completion point
    std::string name;
    Time start{0};
    UnitDoneFn on_done;     // null once detached
    RepeatId chain = 0;     // repeat stream to advance on retirement
  };
  /// A fused repeat stream: K identical units retiring at analytic
  /// boundaries anchor + i*unit_wall with one armed event at the last.
  struct FusedGroup {
    RepeatId id = 0;
    ContainerId owner;
    KernelDesc desc;
    int total = 0;
    Duration unit_wall{0};
    Time anchor{0};
    UnitDoneFn on_unit;
    sim::EventId event = sim::kInvalidEvent;
  };
  /// Un-started tail of a repeat stream running in chained (per-unit) mode.
  struct ChainTail {
    ContainerId owner;
    KernelDesc desc;
    int remaining = 0;       // units not yet started
    std::size_t finished = 0;
    UnitDoneFn on_unit;
    bool in_flight = false;  // one unit currently running
  };
  /// An owner's spatial slice: `groups` of `total` SM groups.
  struct SliceAssign {
    int groups = 0;
    int total = 1;
  };
  /// A kernel in flight on a slice lane. Wall time is fixed at submit
  /// (hardware-isolated partition: no cross-tenant sharing), so each unit
  /// carries its own completion event.
  struct SlicedRunning {
    KernelId id = 0;
    ContainerId owner;
    std::string name;
    Time start{0};
    Time finish{0};
    UnitDoneFn on_done;  // null once detached
    RepeatId chain = 0;
    sim::EventId event = sim::kInvalidEvent;
  };

  /// Re-times the pending completion event after the active set changed.
  void Reschedule();
  /// Advances the virtual-time accumulator by the time since last_update_
  /// at the current sharing rate (O(1); kernels carry fixed end_v points).
  void Progress();
  void RecomputeRate();
  void OnCompletionEvent();
  void OnGroupEvent();
  /// Collapses the fused group into chained per-unit execution: due units
  /// materialize (ids, traces, callbacks), the in-flight unit becomes a
  /// normal running kernel, the tail keeps chaining. Called on any
  /// membership / cancellation / teardown event so every externally
  /// visible trace matches the per-kernel oracle.
  void SplitGroup(bool fire_callbacks);
  void AdvanceChain(RepeatId id);
  void StartChainUnit(RepeatId id);
  void InsertRunning(Running r);

  /// Per-owner fencing gate (FencingGate idiom): admitted while
  /// epoch >= floor. A fresh gate (epoch 0, floor 1) admits nothing.
  struct TokenGate {
    std::uint64_t epoch = 0;
    std::uint64_t floor = 1;
    std::uint64_t rejections = 0;
  };
  std::map<ContainerId, TokenGate> token_gates_;
  std::map<ContainerId, std::uint64_t> memory_quotas_;
  std::uint64_t fenced_rejections_ = 0;
  std::uint64_t memory_quota_rejections_ = 0;
  ViolationFn violation_;

  std::uint64_t used_memory_ = 0;
  DevicePtr next_ptr_ = 1;
  struct Allocation {
    ContainerId owner;
    std::uint64_t bytes;
  };
  std::unordered_map<DevicePtr, Allocation> allocations_;

  // Virtual-time processor-sharing state.
  std::int64_t vnow_ = 0;
  double rate_ = 0.0;  // per-kernel service rate; recomputed on membership
  std::uint64_t next_seq_ = 1;
  std::map<std::uint64_t, Running> running_;            // insertion order
  std::set<std::pair<std::int64_t, std::uint64_t>> by_end_;  // (end_v, seq)
  Time last_update_{0};
  sim::EventId completion_event_ = sim::kInvalidEvent;

  RepeatId next_repeat_ = 1;
  std::optional<FusedGroup> group_;
  std::unordered_map<RepeatId, ChainTail> chains_;

  // Slice-lane state (shared by both engines).
  Duration SlicedWallTime(const ContainerId& owner,
                          const KernelDesc& desc) const;
  void OnSlicedComplete(std::uint64_t seq);
  void AdvanceSlicedChain(RepeatId id);
  void StartSlicedChainUnit(RepeatId id);

  std::map<ContainerId, SliceAssign> slice_assign_;
  std::uint64_t next_slice_seq_ = 1;
  std::map<std::uint64_t, SlicedRunning> sliced_;
  RepeatId next_sliced_repeat_ = kSlicedRepeatBase;
  std::unordered_map<RepeatId, ChainTail> sliced_chains_;

  // Migration-lane state (shared by both engines).
  struct Migration {
    ContainerId owner;
    UnitDoneFn on_done;  // null once detached
    sim::EventId event = sim::kInvalidEvent;
  };
  void OnMigrationComplete(std::uint64_t seq);

  std::uint64_t next_migration_seq_ = 1;
  std::map<std::uint64_t, Migration> migrations_;
  std::uint64_t migrations_charged_ = 0;
  std::uint64_t migration_bytes_total_ = 0;
};

}  // namespace ks::gpu
