#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <utility>

namespace ks {

/// A strongly typed string identifier. Each Tag instantiation is a distinct
/// type, so a GPU UUID can never be passed where a virtual GPUID is
/// expected — the confusion between the two is exactly the bug class the
/// paper's DevMgr design is careful about (GPUID is virtual, UUID is the
/// physical device identity).
template <typename Tag>
class StringId {
 public:
  StringId() = default;
  explicit StringId(std::string value) : value_(std::move(value)) {}

  const std::string& value() const { return value_; }
  bool empty() const { return value_.empty(); }

  friend auto operator<=>(const StringId&, const StringId&) = default;
  friend std::ostream& operator<<(std::ostream& os, const StringId& id) {
    return os << id.value_;
  }

 private:
  std::string value_;
};

struct GpuIdTag {};
struct GpuUuidTag {};
struct NodeNameTag {};
struct PodNameTag {};
struct ContainerIdTag {};
struct LabelTag {};

/// Virtual vGPU identifier assigned by KubeShare when a physical GPU joins
/// the vGPU pool (paper §4.1). Users and KubeShare-Sched refer to devices by
/// GPUID only.
using GpuId = StringId<GpuIdTag>;

/// Physical device identity as reported by the (simulated) NVIDIA driver and
/// consumed via NVIDIA_VISIBLE_DEVICES. Only KubeShare-DevMgr sees UUIDs.
using GpuUuid = StringId<GpuUuidTag>;

using NodeName = StringId<NodeNameTag>;
using PodName = StringId<PodNameTag>;
using ContainerId = StringId<ContainerIdTag>;

/// Locality label (an arbitrary string, paper §4.2).
using Label = StringId<LabelTag>;

/// Numeric job identifier used by the workload layer.
using JobId = std::uint64_t;

}  // namespace ks

namespace std {
template <typename Tag>
struct hash<ks::StringId<Tag>> {
  size_t operator()(const ks::StringId<Tag>& id) const noexcept {
    return hash<string>{}(id.value());
  }
};
}  // namespace std
