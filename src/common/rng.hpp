#pragma once

#include <cstdint>
#include <random>

#include "common/time.hpp"

namespace ks {

/// Seeded random source shared by the workload generators. Every experiment
/// constructs its own Rng from an explicit seed so that runs are
/// reproducible bit-for-bit; nothing in the library reads global entropy.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  /// Normal sample with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Normal sample truncated (by re-sampling) to [lo, hi]. Used for GPU
  /// demand distributions, which must stay within (0, 1].
  double TruncatedNormal(double mean, double stddev, double lo, double hi);

  /// Exponential sample with the given mean — inter-arrival times of a
  /// Poisson process (paper §5.3: "job inter-arrival time follows a Poisson
  /// process").
  Duration ExponentialInterarrival(Duration mean);

  /// Bernoulli trial.
  bool Chance(double p);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace ks
