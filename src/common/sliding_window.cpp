#include "common/sliding_window.hpp"

#include <algorithm>
#include <cassert>

namespace ks {

void SlidingWindowUsage::Start(Time now) {
  if (!origin_set_) {
    origin_ = now;
    origin_set_ = true;
  }
  if (active_) return;
  active_ = true;
  active_since_ = now;
}

void SlidingWindowUsage::Stop(Time now) {
  if (!active_) return;
  assert(now >= active_since_);
  if (now > active_since_) {
    intervals_.push_back({active_since_, now});
  }
  active_ = false;
}

void SlidingWindowUsage::Compact(Time now) {
  const Time cutoff = (now.count() > window_.count()) ? now - window_
                                                      : kTimeZero;
  while (!intervals_.empty() && intervals_.front().end <= cutoff) {
    intervals_.pop_front();
  }
}

Duration SlidingWindowUsage::BusyTime(Time now) const {
  const Time cutoff = (now.count() > window_.count()) ? now - window_
                                                      : kTimeZero;
  Duration busy{0};
  for (const Interval& iv : intervals_) {
    if (iv.end <= cutoff) continue;
    const Time s = std::max(iv.start, cutoff);
    const Time e = std::min(iv.end, now);
    if (e > s) busy += e - s;
  }
  if (active_ && now > active_since_) {
    const Time s = std::max(active_since_, cutoff);
    if (now > s) busy += now - s;
  }
  return busy;
}

double SlidingWindowUsage::Usage(Time now) const {
  Duration denom = window_;
  if (origin_set_ && now - origin_ < window_) {
    denom = now - origin_;
  }
  if (denom.count() <= 0) return active_ ? 1.0 : 0.0;
  const Duration busy = BusyTime(now);
  return std::min(1.0, static_cast<double>(busy.count()) /
                           static_cast<double>(denom.count()));
}

}  // namespace ks
