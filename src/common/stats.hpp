#pragma once

#include <cstddef>
#include <vector>

namespace ks {

/// Streaming mean/variance accumulator (Welford). Used by the metrics layer
/// to summarize per-run throughput and latency samples.
class RunningStats {
 public:
  void Add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  double variance() const;  // population variance
  double stddev() const;
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Percentile over a copy of the samples (nearest-rank). p in [0, 100].
double Percentile(std::vector<double> samples, double p);

/// Arithmetic mean; 0 for empty input.
double Mean(const std::vector<double>& samples);

}  // namespace ks
