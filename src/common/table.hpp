#pragma once

#include <cstdint>
#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace ks {

/// Console / CSV table used by the benchmark harnesses to print the rows a
/// paper table or figure series reports. Columns are sized to fit; numeric
/// formatting is the caller's responsibility (pass preformatted strings or
/// use the Cell() helpers).
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  /// Pretty-prints with aligned columns and a separator under the header.
  void Print(std::ostream& os) const;

  /// Emits RFC-4180-ish CSV (fields containing commas/quotes are quoted).
  void PrintCsv(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given number of decimal places.
std::string Cell(double value, int decimals = 2);
std::string Cell(std::int64_t value);

}  // namespace ks
