#include "common/rng.hpp"

#include <algorithm>
#include <cassert>

namespace ks {

double Rng::Uniform(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  std::uniform_int_distribution<std::int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::Normal(double mean, double stddev) {
  if (stddev <= 0.0) return mean;
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

double Rng::TruncatedNormal(double mean, double stddev, double lo, double hi) {
  assert(lo <= hi);
  if (stddev <= 0.0) return std::clamp(mean, lo, hi);
  // Re-sample a bounded number of times, then clamp. Clamping only engages
  // for pathological (mean, stddev) far outside the window, where the
  // distribution shape is meaningless anyway.
  for (int attempt = 0; attempt < 64; ++attempt) {
    const double x = Normal(mean, stddev);
    if (x >= lo && x <= hi) return x;
  }
  return std::clamp(mean, lo, hi);
}

Duration Rng::ExponentialInterarrival(Duration mean) {
  assert(mean.count() > 0);
  std::exponential_distribution<double> dist(1.0 /
                                             static_cast<double>(mean.count()));
  const double us = dist(engine_);
  return Duration{std::max<std::int64_t>(1, static_cast<std::int64_t>(us))};
}

bool Rng::Chance(double p) {
  std::bernoulli_distribution dist(std::clamp(p, 0.0, 1.0));
  return dist(engine_);
}

}  // namespace ks
