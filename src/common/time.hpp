#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace ks {

/// Simulation time. All cluster-scale experiments run on a virtual clock
/// measured in microseconds since simulation start. Using the chrono
/// duration type (rather than a bare integer) keeps unit errors out of the
/// scheduler and token-accounting code.
using Time = std::chrono::microseconds;

/// Duration is the same representation as Time; the alias exists purely to
/// document intent at call sites (a point in time vs. a span of time).
using Duration = std::chrono::microseconds;

inline constexpr Time kTimeZero{0};

constexpr Duration Micros(std::int64_t us) { return Duration{us}; }
constexpr Duration Millis(std::int64_t ms) { return Duration{ms * 1000}; }
constexpr Duration Seconds(double s) {
  return Duration{static_cast<std::int64_t>(s * 1e6)};
}
constexpr Duration Minutes(double m) { return Seconds(m * 60.0); }

constexpr double ToSeconds(Duration d) {
  return static_cast<double>(d.count()) / 1e6;
}
constexpr double ToMillis(Duration d) {
  return static_cast<double>(d.count()) / 1e3;
}

/// Formats a time as seconds with millisecond precision, e.g. "123.456s".
std::string FormatTime(Time t);

inline std::string FormatTime(Time t) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3fs", ToSeconds(t));
  return buf;
}

}  // namespace ks
