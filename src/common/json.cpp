#include "common/json.hpp"

#include <cmath>
#include <cstdio>

namespace ks {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

std::string FormatDouble(double d) {
  // JSON has no NaN/Inf; the benches should never produce them, but a
  // report must stay parseable if one slips through.
  if (std::isnan(d) || std::isinf(d)) return "null";
  if (d == static_cast<double>(static_cast<std::int64_t>(d)) &&
      std::abs(d) < 1e15) {
    return std::to_string(static_cast<std::int64_t>(d)) + ".0";
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  // %.17g round-trips exactly; trim to the shortest representation that
  // still round-trips so files stay readable.
  for (int prec = 1; prec < 17; ++prec) {
    char probe[64];
    std::snprintf(probe, sizeof(probe), "%.*g", prec, d);
    double back = 0.0;
    std::sscanf(probe, "%lf", &back);
    if (back == d) return probe;
  }
  return buf;
}

}  // namespace

void JsonValue::Set(const std::string& key, JsonValue value) {
  for (auto& [k, v] : fields_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  fields_.emplace_back(key, std::move(value));
}

void JsonValue::Push(JsonValue value) { items_.push_back(std::move(value)); }

JsonValue& JsonValue::MutableField(const std::string& key) {
  for (auto& [k, v] : fields_) {
    if (k == key) return v;
  }
  fields_.emplace_back(key, JsonValue());
  return fields_.back().second;
}

std::string JsonValue::FieldAsString(const std::string& key) const {
  for (const auto& [k, v] : fields_) {
    if (k == key && v.kind_ == Kind::kString) return v.string_;
  }
  return {};
}

void JsonValue::Write(std::string& out, int indent, bool pretty) const {
  const auto pad = [&](int n) {
    if (pretty) out.append(static_cast<std::size_t>(n) * 2, ' ');
  };
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kInt: out += std::to_string(int_); break;
    case Kind::kDouble: out += FormatDouble(double_); break;
    case Kind::kString:
      out += '"';
      out += JsonEscape(string_);
      out += '"';
      break;
    case Kind::kObject: {
      if (fields_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      if (pretty) out += '\n';
      for (std::size_t i = 0; i < fields_.size(); ++i) {
        pad(indent + 1);
        out += '"';
        out += JsonEscape(fields_[i].first);
        out += pretty ? "\": " : "\":";
        fields_[i].second.Write(out, indent + 1, pretty);
        if (i + 1 < fields_.size()) out += ',';
        if (pretty) out += '\n';
      }
      pad(indent);
      out += '}';
      break;
    }
    case Kind::kArray: {
      if (items_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      if (pretty) out += '\n';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        pad(indent + 1);
        items_[i].Write(out, indent + 1, pretty);
        if (i + 1 < items_.size()) out += ',';
        if (pretty) out += '\n';
      }
      pad(indent);
      out += ']';
      break;
    }
  }
}

std::string JsonValue::Dump() const {
  std::string out;
  Write(out, 0, /*pretty=*/false);
  return out;
}

std::string JsonValue::DumpPretty() const {
  std::string out;
  Write(out, 0, /*pretty=*/true);
  out += '\n';
  return out;
}

}  // namespace ks
