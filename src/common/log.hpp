#pragma once

#include <sstream>
#include <string>

namespace ks {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide minimum level. Benchmarks raise this to kWarn so figure
/// output stays clean; tests may lower it when diagnosing a failure.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {
void Emit(LogLevel level, const std::string& message);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Emit(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace internal

}  // namespace ks

#define KS_LOG(level) \
  ::ks::internal::LogLine(::ks::LogLevel::level)
