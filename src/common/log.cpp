#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace ks {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

namespace internal {
void Emit(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), message.c_str());
}
}  // namespace internal

}  // namespace ks
