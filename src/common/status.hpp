#pragma once

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace ks {

enum class StatusCode {
  kOk,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kResourceExhausted,  // out of memory / capacity
  kUnavailable,        // no device satisfies the request right now
  kRejected,           // constraint violation (paper Algo 1 "return -1")
  kFailedPrecondition,
  kInternal,
  kConflict,           // optimistic-concurrency / fencing write rejection
};

const char* StatusCodeName(StatusCode code);

inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kRejected: return "REJECTED";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kConflict: return "CONFLICT";
  }
  return "UNKNOWN";
}

/// Lightweight status type in the style of absl::Status. The library never
/// throws across module boundaries; fallible operations return Status or
/// Expected<T>.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(StatusCodeName(code_)) + ": " + message_;
  }

  friend std::ostream& operator<<(std::ostream& os, const Status& s) {
    return os << s.ToString();
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status InvalidArgumentError(std::string msg) {
  return {StatusCode::kInvalidArgument, std::move(msg)};
}
inline Status NotFoundError(std::string msg) {
  return {StatusCode::kNotFound, std::move(msg)};
}
inline Status AlreadyExistsError(std::string msg) {
  return {StatusCode::kAlreadyExists, std::move(msg)};
}
inline Status ResourceExhaustedError(std::string msg) {
  return {StatusCode::kResourceExhausted, std::move(msg)};
}
inline Status UnavailableError(std::string msg) {
  return {StatusCode::kUnavailable, std::move(msg)};
}
inline Status RejectedError(std::string msg) {
  return {StatusCode::kRejected, std::move(msg)};
}
inline Status FailedPreconditionError(std::string msg) {
  return {StatusCode::kFailedPrecondition, std::move(msg)};
}
inline Status InternalError(std::string msg) {
  return {StatusCode::kInternal, std::move(msg)};
}
inline Status ConflictError(std::string msg) {
  return {StatusCode::kConflict, std::move(msg)};
}

/// Minimal expected-type (std::expected is C++23; this toolchain is C++20).
/// Holds either a value or a non-OK Status.
template <typename T>
class Expected {
 public:
  Expected(T value) : data_(std::move(value)) {}  // NOLINT: implicit by design
  Expected(Status status) : data_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(data_).ok() &&
           "Expected<T> must not be constructed from an OK status");
  }

  bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(data_);
  }

  T value_or(T fallback) const {
    if (ok()) return std::get<T>(data_);
    return fallback;
  }

 private:
  std::variant<T, Status> data_;
};

}  // namespace ks

#define KS_RETURN_IF_ERROR(expr)          \
  do {                                    \
    ::ks::Status ks_status__ = (expr);    \
    if (!ks_status__.ok()) return ks_status__; \
  } while (false)
