#include "common/table.hpp"

#include <algorithm>
#include <cstdio>

namespace ks {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void Table::Print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << row[c];
      for (std::size_t pad = row[c].size(); pad < width[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  emit(header_);
  std::string rule;
  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (c != 0) rule += "  ";
    rule += std::string(width[c], '-');
  }
  os << rule << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::PrintCsv(std::ostream& os) const {
  auto field = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += "\"\"";
      else out += ch;
    }
    out += '"';
    return out;
  };
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      os << field(row[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::string Cell(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

std::string Cell(std::int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(value));
  return buf;
}

}  // namespace ks
