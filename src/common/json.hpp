#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace ks {

/// Minimal JSON value + writer for the benchmark reports (BENCH_*.json).
///
/// Build-only, no parser: the benches construct a JsonValue tree and
/// serialize it. Serialization is deterministic — object keys keep their
/// insertion order and doubles render with a fixed round-trippable format
/// — so the same results always produce byte-identical files, which is
/// what lets CI diff a parallel sweep against a serial one.
class JsonValue {
 public:
  JsonValue() : kind_(Kind::kNull) {}
  JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}  // NOLINT
  JsonValue(std::int64_t n) : kind_(Kind::kInt), int_(n) {}  // NOLINT
  JsonValue(int n) : kind_(Kind::kInt), int_(n) {}  // NOLINT
  JsonValue(std::size_t n)  // NOLINT
      : kind_(Kind::kInt), int_(static_cast<std::int64_t>(n)) {}
  JsonValue(double d) : kind_(Kind::kDouble), double_(d) {}  // NOLINT
  JsonValue(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}  // NOLINT
  JsonValue(const char* s) : kind_(Kind::kString), string_(s) {}  // NOLINT

  static JsonValue Object() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }
  static JsonValue Array() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }

  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  /// Object field append. Duplicate keys overwrite in place (order kept).
  void Set(const std::string& key, JsonValue value);

  /// Array element append.
  void Push(JsonValue value);

  /// In-place access to an object field; inserts a null field if missing.
  JsonValue& MutableField(const std::string& key);

  /// String value of an object field; "" when absent or not a string.
  std::string FieldAsString(const std::string& key) const;

  std::size_t size() const {
    return kind_ == Kind::kArray ? items_.size() : fields_.size();
  }

  /// Compact single-line serialization.
  std::string Dump() const;

  /// Pretty serialization with 2-space indentation and a trailing newline —
  /// the on-disk format of BENCH_*.json.
  std::string DumpPretty() const;

 private:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kObject, kArray };

  void Write(std::string& out, int indent, bool pretty) const;

  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<std::pair<std::string, JsonValue>> fields_;
  std::vector<JsonValue> items_;
};

/// Escapes `s` per RFC 8259 (quotes, backslash, control characters).
std::string JsonEscape(const std::string& s);

}  // namespace ks
