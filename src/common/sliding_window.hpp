#pragma once

#include <deque>

#include "common/time.hpp"

namespace ks {

/// Tracks the fraction of a trailing time window during which some activity
/// was "on". The vGPU token backend uses one of these per container: the
/// activity is "holds the token", and the resulting fraction is the
/// container's GPU usage rate that the elastic allocation policy compares
/// against gpu_request / gpu_limit (paper §4.5).
///
/// Intervals are recorded as half-open [start, end). The tracker tolerates
/// an open interval (activity started, not yet finished) — usage queries
/// count it up to the query time.
class SlidingWindowUsage {
 public:
  explicit SlidingWindowUsage(Duration window) : window_(window) {}

  Duration window() const { return window_; }

  /// Marks the activity as on at time `now`. No-op if already on.
  void Start(Time now);

  /// Marks the activity as off at time `now`. No-op if already off.
  void Stop(Time now);

  bool active() const { return active_; }

  /// Busy time within [now - window, now].
  Duration BusyTime(Time now) const;

  /// Busy fraction of the trailing window, in [0, 1].
  ///
  /// Before a full window has elapsed since construction the denominator is
  /// the elapsed time, not the window length — so a container that has held
  /// the token for all of the first second reports usage 1.0, not 0.1. This
  /// matches how the paper's backend can start throttling immediately after
  /// a container launches.
  double Usage(Time now) const;

  /// Drops intervals that ended before now - window. Called internally by
  /// queries; exposed so long-running simulations can bound memory.
  void Compact(Time now);

 private:
  struct Interval {
    Time start;
    Time end;
  };

  Duration window_;
  std::deque<Interval> intervals_;
  bool active_ = false;
  Time active_since_{0};
  Time origin_{0};
  bool origin_set_ = false;
};

}  // namespace ks
