#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace ks {

void RunningStats::Add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  if (n_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double rank = std::clamp(p, 0.0, 100.0) / 100.0 *
                      static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

double Mean(const std::vector<double>& samples) {
  if (samples.empty()) return 0.0;
  return std::accumulate(samples.begin(), samples.end(), 0.0) /
         static_cast<double>(samples.size());
}

}  // namespace ks
