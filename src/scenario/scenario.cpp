#include "scenario/scenario.hpp"

#include <fstream>
#include <map>
#include <sstream>

#include "common/table.hpp"
#include "k8s/resources.hpp"
#include "metrics/cluster_metrics.hpp"

namespace ks::scenario {

namespace {

struct Tokenized {
  std::string command;
  std::map<std::string, std::string> args;
};

Expected<Tokenized> Tokenize(const std::string& line, int lineno) {
  Tokenized out;
  std::stringstream ss(line);
  std::string token;
  while (ss >> token) {
    if (out.command.empty()) {
      out.command = token;
      continue;
    }
    const auto eq = token.find('=');
    if (eq == std::string::npos) {
      // Bare words are allowed for report targets ("report jobs").
      out.args[token] = "";
      continue;
    }
    out.args[token.substr(0, eq)] = token.substr(eq + 1);
  }
  if (out.command.empty()) {
    return InvalidArgumentError("line " + std::to_string(lineno) +
                                ": empty command");
  }
  return out;
}

Expected<double> GetDouble(const Tokenized& t, const std::string& key,
                           double fallback, int lineno) {
  auto it = t.args.find(key);
  if (it == t.args.end()) return fallback;
  try {
    std::size_t used = 0;
    const double v = std::stod(it->second, &used);
    if (used != it->second.size()) throw std::invalid_argument(it->second);
    return v;
  } catch (const std::exception&) {
    return InvalidArgumentError("line " + std::to_string(lineno) + ": bad " +
                                key + "='" + it->second + "'");
  }
}

std::string GetString(const Tokenized& t, const std::string& key,
                      const std::string& fallback = "") {
  auto it = t.args.find(key);
  return it == t.args.end() ? fallback : it->second;
}

bool GetSwitch(const Tokenized& t, const std::string& key) {
  const std::string v = GetString(t, key, "off");
  return v == "on" || v == "true" || v == "1" || v == "yes";
}

}  // namespace

Expected<Scenario> Scenario::Parse(std::istream& in) {
  Scenario scenario;
  std::string line;
  int lineno = 0;
  bool saw_cluster = false;
  bool saw_job = false;
  std::vector<std::string> job_names;

  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;

    auto tokens = Tokenize(line, lineno);
    if (!tokens.ok()) return tokens.status();
    const Tokenized& t = *tokens;
    Directive d;
    d.lineno = lineno;

    if (t.command == "cluster") {
      d.kind = Directive::Kind::kCluster;
      auto nodes = GetDouble(t, "nodes", 1, lineno);
      auto gpus = GetDouble(t, "gpus", 1, lineno);
      auto cpu = GetDouble(t, "cpu", 36000, lineno);
      auto scale = GetDouble(t, "scale", 100, lineno);
      for (const auto* v : {&nodes, &gpus, &cpu, &scale}) {
        if (!v->ok()) return v->status();
      }
      d.cluster.nodes = static_cast<int>(*nodes);
      d.cluster.gpus_per_node = static_cast<int>(*gpus);
      d.cluster.cpu_millicores = static_cast<std::int64_t>(*cpu);
      d.cluster.scaled_plugin = GetSwitch(t, "scaled");
      d.cluster.plugin_scale = static_cast<int>(*scale);
      if (d.cluster.nodes <= 0 || d.cluster.gpus_per_node <= 0) {
        return InvalidArgumentError("line " + std::to_string(lineno) +
                                    ": nodes and gpus must be positive");
      }
      saw_cluster = true;
    } else if (t.command == "kubeshare") {
      d.kind = Directive::Kind::kKubeShare;
      const std::string pool = GetString(t, "pool", "ondemand");
      if (pool == "ondemand") {
        d.kconfig.pool_policy = kubeshare::PoolPolicy::kOnDemand;
      } else if (pool == "reservation") {
        d.kconfig.pool_policy = kubeshare::PoolPolicy::kReservation;
      } else if (pool == "hybrid") {
        d.kconfig.pool_policy = kubeshare::PoolPolicy::kHybrid;
      } else {
        return InvalidArgumentError("line " + std::to_string(lineno) +
                                    ": unknown pool policy '" + pool + "'");
      }
      auto reserve = GetDouble(t, "reserve", 2, lineno);
      if (!reserve.ok()) return reserve.status();
      d.kconfig.hybrid_reserve = static_cast<int>(*reserve);
      d.kconfig.allow_memory_overcommit = GetSwitch(t, "overcommit");
    } else if (t.command == "mode") {
      d.kind = Directive::Kind::kMode;
      if (t.args.count("kubeshare") > 0) {
        d.use_kubeshare_mode = true;
      } else if (t.args.count("native") > 0) {
        d.use_kubeshare_mode = false;
      } else {
        return InvalidArgumentError("line " + std::to_string(lineno) +
                                    ": mode kubeshare|native");
      }
      if (saw_job) {
        return InvalidArgumentError("line " + std::to_string(lineno) +
                                    ": mode must precede all jobs");
      }
    } else if (t.command == "job") {
      d.kind = Directive::Kind::kJob;
      workload::TraceEntry& job = d.job;
      job.name = GetString(t, "name");
      if (job.name.empty()) {
        return InvalidArgumentError("line " + std::to_string(lineno) +
                                    ": job needs name=");
      }
      for (const std::string& existing : job_names) {
        if (existing == job.name) {
          return InvalidArgumentError("line " + std::to_string(lineno) +
                                      ": duplicate job name '" + job.name +
                                      "'");
        }
      }
      job_names.push_back(job.name);
      job.kind = GetString(t, "kind", "inference");
      if (job.kind != "inference" && job.kind != "training") {
        return InvalidArgumentError("line " + std::to_string(lineno) +
                                    ": kind inference|training");
      }
      auto at = GetDouble(t, "at", 0, lineno);
      auto demand = GetDouble(t, "demand", 0.3, lineno);
      auto duration = GetDouble(t, "duration", 60, lineno);
      auto steps = GetDouble(t, "steps", 1000, lineno);
      auto kernel = GetDouble(t, "kernel_ms", 20, lineno);
      auto request = GetDouble(t, "request", 0.3, lineno);
      auto limit = GetDouble(t, "limit", 1.0, lineno);
      auto mem = GetDouble(t, "mem", 0.2, lineno);
      auto model = GetDouble(t, "model_gb", 2.0, lineno);
      for (const auto* v : {&at, &demand, &duration, &steps, &kernel,
                            &request, &limit, &mem, &model}) {
        if (!v->ok()) return v->status();
      }
      job.submit_s = *at;
      job.demand = *demand;
      job.duration_s = *duration;
      job.steps = static_cast<int>(*steps);
      job.kernel_ms = *kernel;
      job.gpu_request = *request;
      job.gpu_limit = *limit;
      job.gpu_mem = *mem;
      job.model_gb = *model;
      job.affinity = GetString(t, "affinity");
      job.anti_affinity = GetString(t, "anti_affinity");
      job.exclusion = GetString(t, "exclusion");
      vgpu::ResourceSpec check;
      check.gpu_request = job.gpu_request;
      check.gpu_limit = job.gpu_limit;
      check.gpu_mem = job.gpu_mem;
      if (const Status s = check.Validate(); !s.ok()) {
        return InvalidArgumentError("line " + std::to_string(lineno) + ": " +
                                    s.message());
      }
      saw_job = true;
    } else if (t.command == "trace") {
      d.kind = Directive::Kind::kTrace;
      d.trace_file = GetString(t, "file");
      if (d.trace_file.empty()) {
        return InvalidArgumentError("line " + std::to_string(lineno) +
                                    ": trace needs file=PATH");
      }
      saw_job = true;  // trace jobs pin the mode like inline jobs do
    } else if (t.command == "health") {
      d.kind = Directive::Kind::kHealth;
      auto node = GetDouble(t, "node", 0, lineno);
      auto gpu = GetDouble(t, "gpu", 0, lineno);
      if (!node.ok()) return node.status();
      if (!gpu.ok()) return gpu.status();
      d.health_node = static_cast<int>(*node);
      d.health_gpu = static_cast<int>(*gpu);
      const std::string state = GetString(t, "state", "unhealthy");
      if (state == "healthy") {
        d.health_state = true;
      } else if (state == "unhealthy") {
        d.health_state = false;
      } else {
        return InvalidArgumentError("line " + std::to_string(lineno) +
                                    ": state healthy|unhealthy");
      }
    } else if (t.command == "resize") {
      d.kind = Directive::Kind::kResize;
      d.resize_name = GetString(t, "name");
      if (d.resize_name.empty()) {
        return InvalidArgumentError("line " + std::to_string(lineno) +
                                    ": resize needs name=");
      }
      auto request = GetDouble(t, "request", 0.0, lineno);
      auto limit = GetDouble(t, "limit", 1.0, lineno);
      if (!request.ok()) return request.status();
      if (!limit.ok()) return limit.status();
      d.resize_request = *request;
      d.resize_limit = *limit;
    } else if (t.command == "run") {
      d.kind = Directive::Kind::kRun;
      auto until = GetDouble(t, "until", -1, lineno);
      if (!until.ok()) return until.status();
      if (*until < 0) {
        return InvalidArgumentError("line " + std::to_string(lineno) +
                                    ": run needs until=SECONDS");
      }
      d.until_s = *until;
    } else if (t.command == "report") {
      d.kind = Directive::Kind::kReport;
      for (const char* what :
           {"jobs", "gpus", "pool", "events", "sharepods", "metrics"}) {
        if (t.args.count(what) > 0) d.report_what = what;
      }
      if (d.report_what.empty()) {
        return InvalidArgumentError(
            "line " + std::to_string(lineno) +
            ": report jobs|gpus|pool|sharepods|metrics|events");
      }
      auto tail = GetDouble(t, "tail", 0, lineno);
      if (!tail.ok()) return tail.status();
      d.tail = static_cast<std::size_t>(*tail);
    } else {
      return InvalidArgumentError("line " + std::to_string(lineno) +
                                  ": unknown command '" + t.command + "'");
    }
    scenario.directives_.push_back(std::move(d));
  }
  if (!saw_cluster) {
    return InvalidArgumentError("scenario has no 'cluster' command");
  }
  return scenario;
}

Status Scenario::Run(std::ostream& out) {
  for (const Directive& d : directives_) {
    KS_RETURN_IF_ERROR(Execute(d, out));
  }
  return Status::Ok();
}

Status Scenario::Execute(const Directive& d, std::ostream& out) {
  const std::string at_line = "line " + std::to_string(d.lineno);
  switch (d.kind) {
    case Directive::Kind::kCluster: {
      if (cluster_ != nullptr) {
        return FailedPreconditionError(at_line + ": cluster already built");
      }
      cluster_ = std::make_unique<k8s::Cluster>(d.cluster);
      host_ = std::make_unique<workload::WorkloadHost>(cluster_.get());
      KS_RETURN_IF_ERROR(cluster_->Start());
      out << "cluster: " << d.cluster.nodes << " nodes x "
          << d.cluster.gpus_per_node << " GPUs\n";
      return Status::Ok();
    }
    case Directive::Kind::kKubeShare: {
      if (cluster_ == nullptr) {
        return FailedPreconditionError(at_line + ": kubeshare before cluster");
      }
      if (kubeshare_ != nullptr) {
        return FailedPreconditionError(at_line + ": kubeshare already set up");
      }
      kubeshare_ =
          std::make_unique<kubeshare::KubeShare>(cluster_.get(), d.kconfig);
      if (d.kconfig.allow_memory_overcommit) host_->EnableMemoryOvercommit();
      KS_RETURN_IF_ERROR(kubeshare_->Start());
      kubeshare_requested_ = true;
      out << "kubeshare: installed\n";
      return Status::Ok();
    }
    case Directive::Kind::kMode:
      mode_kubeshare_ = d.use_kubeshare_mode;
      return Status::Ok();
    case Directive::Kind::kJob: {
      if (cluster_ == nullptr) {
        return FailedPreconditionError(at_line + ": job before cluster");
      }
      if (mode_kubeshare_ && !kubeshare_requested_) {
        return FailedPreconditionError(
            at_line + ": kubeshare jobs need a 'kubeshare' command "
                      "(or 'mode native')");
      }
      if (replayer_ == nullptr) {
        replayer_ = std::make_unique<workload::TraceReplayer>(
            cluster_.get(), host_.get(),
            mode_kubeshare_ ? workload::TraceReplayer::Mode::kKubeShare
                            : workload::TraceReplayer::Mode::kNative,
            kubeshare_.get());
      }
      return replayer_->Load({d.job},
                             std::hash<std::string>{}(d.job.name) & 0xffff);
    }
    case Directive::Kind::kTrace: {
      if (cluster_ == nullptr) {
        return FailedPreconditionError(at_line + ": trace before cluster");
      }
      if (mode_kubeshare_ && !kubeshare_requested_) {
        return FailedPreconditionError(
            at_line + ": kubeshare traces need a 'kubeshare' command "
                      "(or 'mode native')");
      }
      std::ifstream file(d.trace_file);
      if (!file) {
        return NotFoundError(at_line + ": cannot open " + d.trace_file);
      }
      auto entries = workload::ParseTrace(file);
      if (!entries.ok()) return entries.status();
      if (replayer_ == nullptr) {
        replayer_ = std::make_unique<workload::TraceReplayer>(
            cluster_.get(), host_.get(),
            mode_kubeshare_ ? workload::TraceReplayer::Mode::kKubeShare
                            : workload::TraceReplayer::Mode::kNative,
            kubeshare_.get());
      }
      KS_RETURN_IF_ERROR(replayer_->Load(*entries));
      out << "trace: loaded " << entries->size() << " jobs from "
          << d.trace_file << "\n";
      return Status::Ok();
    }
    case Directive::Kind::kHealth: {
      if (cluster_ == nullptr) {
        return FailedPreconditionError(at_line + ": health before cluster");
      }
      if (d.health_node < 0 ||
          d.health_node >= static_cast<int>(cluster_->node_count())) {
        return InvalidArgumentError(at_line + ": no such node");
      }
      auto& node = cluster_->node(static_cast<std::size_t>(d.health_node));
      auto* plugin = dynamic_cast<k8s::NvidiaDevicePlugin*>(node.plugin.get());
      if (plugin == nullptr) {
        return FailedPreconditionError(
            at_line + ": health requires the stock (unscaled) plugin");
      }
      if (d.health_gpu < 0 ||
          d.health_gpu >= static_cast<int>(node.gpus.size())) {
        return InvalidArgumentError(at_line + ": no such GPU");
      }
      const std::string uuid = node.gpus[static_cast<std::size_t>(
          d.health_gpu)]->uuid().value();
      KS_RETURN_IF_ERROR(plugin->SetDeviceHealth(uuid, d.health_state));
      KS_RETURN_IF_ERROR(node.kubelet->RefreshDevices());
      out << "health: " << uuid << " -> "
          << (d.health_state ? "healthy" : "unhealthy") << "\n";
      return Status::Ok();
    }
    case Directive::Kind::kResize: {
      if (kubeshare_ == nullptr) {
        return FailedPreconditionError(at_line + ": resize needs kubeshare");
      }
      KS_RETURN_IF_ERROR(kubeshare_->ResizeSharePod(
          d.resize_name, d.resize_request, d.resize_limit));
      out << "resize: " << d.resize_name << " -> request="
          << d.resize_request << " limit=" << d.resize_limit << "\n";
      return Status::Ok();
    }
    case Directive::Kind::kRun:
      if (cluster_ == nullptr) {
        return FailedPreconditionError(at_line + ": run before cluster");
      }
      cluster_->sim().RunUntil(Seconds(d.until_s));
      out << "ran until t=" << FormatTime(cluster_->sim().Now()) << "\n";
      return Status::Ok();
    case Directive::Kind::kReport:
      if (cluster_ == nullptr) {
        return FailedPreconditionError(at_line + ": report before cluster");
      }
      out << "\n== report " << d.report_what << " (t="
          << FormatTime(cluster_->sim().Now()) << ") ==\n";
      if (d.report_what == "jobs") {
        ReportJobs(out);
      } else if (d.report_what == "gpus") {
        ReportGpus(out);
      } else if (d.report_what == "pool") {
        ReportPool(out);
      } else if (d.report_what == "sharepods") {
        ReportSharePods(out);
      } else if (d.report_what == "metrics") {
        metrics::PrometheusExporter exporter;
        metrics::ExportClusterMetrics(*cluster_, kubeshare_.get(), exporter);
        exporter.Write(out);
      } else {
        cluster_->api().events().Print(out, d.tail);
      }
      out << "\n";
      return Status::Ok();
  }
  return InternalError("unhandled directive");
}

void Scenario::ReportJobs(std::ostream& out) const {
  Table table({"job", "submitted", "started", "finished", "outcome"});
  // Sorted by name so reports are stable regardless of hash order; covers
  // inline `job` directives and trace-loaded jobs alike.
  std::map<std::string, const workload::WorkloadHost::JobRecord*> sorted;
  for (const auto& [name, rec] : host_->records()) sorted[name] = &rec;
  for (const auto& [name, rec] : sorted) {
    table.AddRow({name, FormatTime(rec->submitted),
                  rec->has_started ? FormatTime(rec->started) : "-",
                  rec->has_finished ? FormatTime(rec->finished) : "-",
                  rec->has_finished
                      ? (rec->success ? "succeeded" : "failed")
                      : (rec->has_started ? "running" : "pending")});
  }
  table.Print(out);
}

void Scenario::ReportGpus(std::ostream& out) const {
  Table table({"GPU", "node", "busy (s)", "mem used"});
  const Time now = cluster_->sim().Now();
  for (std::size_t n = 0; n < cluster_->node_count(); ++n) {
    auto& node = cluster_->node(n);
    for (auto& dev : node.gpus) {
      dev->utilization().Flush(now);
      table.AddRow({dev->uuid().value(), node.name,
                    Cell(ToSeconds(dev->utilization().TotalBusy()), 1),
                    Cell(static_cast<double>(dev->used_memory()) /
                             static_cast<double>(dev->spec().memory_bytes),
                         2)});
    }
  }
  table.Print(out);
}

void Scenario::ReportSharePods(std::ostream& out) const {
  if (kubeshare_ == nullptr) {
    out << "(kubeshare not installed)\n";
    return;
  }
  Table table({"sharepod", "phase", "vGPU", "node", "request", "limit",
               "mem", "priority"});
  for (const kubeshare::SharePod& sp : kubeshare_->sharepods().List()) {
    table.AddRow({sp.meta.name, SharePodPhaseName(sp.status.phase),
                  sp.spec.gpu_id.value(), sp.spec.node_name,
                  Cell(sp.spec.gpu.gpu_request, 2),
                  Cell(sp.spec.gpu.gpu_limit, 2),
                  Cell(sp.spec.gpu.gpu_mem, 2),
                  Cell(static_cast<std::int64_t>(sp.spec.priority))});
  }
  table.Print(out);
}

void Scenario::ReportPool(std::ostream& out) const {
  if (kubeshare_ == nullptr) {
    out << "(kubeshare not installed)\n";
    return;
  }
  Table table({"vGPU", "node", "state", "used_util", "used_mem", "attached"});
  for (const kubeshare::VgpuInfo* dev : kubeshare_->pool().List()) {
    table.AddRow({dev->id.value(), dev->node, VgpuStateName(dev->state),
                  Cell(dev->used_util, 2), Cell(dev->used_mem, 2),
                  Cell(static_cast<std::int64_t>(dev->attached.size()))});
  }
  table.Print(out);
  out << "acquired " << kubeshare_->devmgr().vgpus_created() << ", released "
      << kubeshare_->devmgr().vgpus_released() << "\n";
}

std::string Scenario::ExampleScript() {
  return R"(# ksim example: two training tenants and a shared inference pair
cluster nodes=2 gpus=2
kubeshare pool=hybrid reserve=1

# A pair of inference services that share one GPU.
job name=svc-a kind=inference at=0  demand=0.30 duration=120 request=0.35 limit=0.9 mem=0.2
job name=svc-b kind=inference at=5  demand=0.25 duration=120 request=0.30 limit=0.9 mem=0.2

# A training job that must not share with anyone.
job name=train kind=training at=10 steps=3000 kernel_ms=10 request=0.8 limit=1.0 mem=0.5 exclusion=team-a

run until=200
report jobs
report pool
report gpus
report events tail=15
)";
}

}  // namespace ks::scenario
