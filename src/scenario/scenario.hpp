#pragma once

#include <istream>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "k8s/cluster.hpp"
#include "kubeshare/kubeshare.hpp"
#include "workload/host.hpp"
#include "workload/trace.hpp"

namespace ks::scenario {

/// A declarative simulation scenario — the `ksim` tool's input language.
/// Line-oriented; `#` starts a comment. Commands:
///
///   cluster nodes=8 gpus=4 [cpu=36000] [scaled=on] [scale=100]
///   kubeshare [pool=ondemand|reservation|hybrid] [reserve=2]
///             [overcommit=on]
///   mode kubeshare|native
///   job name=train1 kind=training at=0 steps=2000 [kernel_ms=10]
///       [request=0.4] [limit=0.8] [mem=0.3] [model_gb=2]
///       [affinity=grp] [anti_affinity=lbl] [exclusion=tenant]
///   job name=svc kind=inference at=5 demand=0.3 duration=60 ...
///   trace file=workload.csv            # load jobs from a CSV trace
///   health node=0 gpu=1 state=unhealthy|healthy   # device health flip
///   resize name=svc request=0.5 limit=0.9   # vertical elasticity
///   run until=300
///   report jobs|gpus|pool|sharepods|metrics|events [tail=20]
///
/// Parse validates the whole script up front; Run executes it against a
/// fresh simulated cluster and writes every report to `out`.
class Scenario {
 public:
  static Expected<Scenario> Parse(std::istream& in);

  /// Runs the scenario to completion. Idempotence is not supported: build
  /// a Scenario per run.
  Status Run(std::ostream& out);

  /// A commented example script (printed by `ksim --example`).
  static std::string ExampleScript();

 private:
  struct Directive {
    enum class Kind {
      kCluster,
      kKubeShare,
      kMode,
      kJob,
      kTrace,
      kHealth,
      kResize,
      kRun,
      kReport
    };
    Kind kind;
    int lineno = 0;
    // cluster / kubeshare knobs
    k8s::ClusterConfig cluster;
    kubeshare::KubeShareConfig kconfig;
    bool use_kubeshare_mode = true;
    // job
    workload::TraceEntry job;
    // trace
    std::string trace_file;
    // health
    int health_node = 0;
    int health_gpu = 0;
    bool health_state = true;
    // resize
    std::string resize_name;
    double resize_request = 0.0;
    double resize_limit = 1.0;
    // run
    double until_s = 0.0;
    // report
    std::string report_what;
    std::size_t tail = 0;
  };

  Status Execute(const Directive& d, std::ostream& out);
  void ReportJobs(std::ostream& out) const;
  void ReportGpus(std::ostream& out) const;
  void ReportPool(std::ostream& out) const;
  void ReportSharePods(std::ostream& out) const;

  std::vector<Directive> directives_;

  // Runtime state (built during Run).
  std::unique_ptr<k8s::Cluster> cluster_;
  std::unique_ptr<kubeshare::KubeShare> kubeshare_;
  std::unique_ptr<workload::WorkloadHost> host_;
  std::unique_ptr<workload::TraceReplayer> replayer_;
  bool mode_kubeshare_ = true;
  bool kubeshare_requested_ = false;
};

}  // namespace ks::scenario
