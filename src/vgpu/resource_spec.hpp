#pragma once

#include "common/status.hpp"

namespace ks::vgpu {

/// Per-container GPU resource demand, matching the paper's SharePodSpec
/// fields (§4.2):
///   gpu_request — guaranteed minimum fraction of kernel execution time in a
///                 sliding window;
///   gpu_limit   — maximum fraction the container may consume (elastic
///                 allocation lets it use residual capacity up to this);
///   gpu_mem     — maximum fraction of device memory it may allocate.
/// All fractions lie in [0, 1]; gpu_request <= gpu_limit.
///
/// slice_groups is the spatial-sharing extension (MIG-style slices): the
/// number of contiguous SM groups the container claims. 0 — the default —
/// means no spatial claim: the container time-shares the whole GPU through
/// the temporal token path exactly as before. Values > 0 only take effect
/// on clusters with SpatialConfig::enabled.
struct ResourceSpec {
  double gpu_request = 0.0;
  double gpu_limit = 1.0;
  double gpu_mem = 1.0;
  int slice_groups = 0;

  Status Validate() const {
    if (slice_groups < 0 || slice_groups > 64) {
      return InvalidArgumentError("slice_groups must be within [0, 64]");
    }
    if (gpu_request < 0.0 || gpu_request > 1.0) {
      return InvalidArgumentError("gpu_request must be within [0, 1]");
    }
    if (gpu_limit < 0.0 || gpu_limit > 1.0) {
      return InvalidArgumentError("gpu_limit must be within [0, 1]");
    }
    if (gpu_mem < 0.0 || gpu_mem > 1.0) {
      return InvalidArgumentError("gpu_mem must be within [0, 1]");
    }
    if (gpu_request > gpu_limit) {
      return InvalidArgumentError("gpu_request must not exceed gpu_limit");
    }
    return Status::Ok();
  }
};

}  // namespace ks::vgpu
