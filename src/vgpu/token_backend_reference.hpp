#pragma once

#include <deque>
#include <map>
#include <optional>
#include <unordered_map>

#include "common/ids.hpp"
#include "common/sliding_window.hpp"
#include "common/status.hpp"
#include "common/time.hpp"
#include "sim/simulation.hpp"
#include "vgpu/token_backend.hpp"

namespace ks::vgpu {

/// The original event-per-deadline backend daemon, kept verbatim as the
/// oracle for the wheel-based TokenBackend (the ScheduleSharePodReference
/// pattern): every quota expiry, grant hand-off, reeval poll, and restart
/// deadline is its own engine event. tests/vgpu/token_wheel_equivalence_
/// test.cpp replays seeded churn through both implementations and demands
/// identical grant/usage/violation traces; bench_engine's token-cluster
/// scenario measures the event-count gap the wheel closes.
///
/// BackendConfig::coalesce_window is ignored here — deadlines fire at
/// their exact microsecond.
class TokenBackendReference : public TokenBackendApi {
 public:
  TokenBackendReference(sim::Simulation* sim, BackendConfig config = {});

  const BackendConfig& config() const override { return config_; }
  void RegisterDevice(const GpuUuid& device) override;
  Status RegisterContainer(const ContainerId& container, const GpuUuid& device,
                           const ResourceSpec& spec,
                           TokenClient* client) override;
  Status UnregisterContainer(const ContainerId& container) override;
  Status UpdateSpec(const ContainerId& container,
                    const ResourceSpec& spec) override;
  Status RequestToken(const ContainerId& container) override;
  Status ReleaseToken(const ContainerId& container) override;
  Status ExtendQuota(const ContainerId& container, Duration extra) override;
  double UsageOf(const ContainerId& container) const override;
  std::optional<ContainerId> HolderOf(const GpuUuid& device) const override;
  std::size_t QueueLength(const GpuUuid& device) const override;
  std::uint64_t grants() const override { return grants_; }
  void Restart() override;
  std::uint64_t restarts() const override { return restarts_; }
  std::uint64_t reattached() const override { return reattached_; }
  bool down() const override { return down_; }
  ContainerStats StatsOf(const ContainerId& container) const override;
  std::size_t pending_timers() const override;

 private:
  struct ContainerState {
    GpuUuid device;
    ResourceSpec spec;
    TokenClient* client = nullptr;
    SlidingWindowUsage usage;
    bool queued = false;
    std::uint64_t enqueue_seq = 0;  // FIFO tie-break
    Time grant_time{0};             // of the current hold
    ContainerStats stats;
    explicit ContainerState(Duration window) : usage(window) {}
  };

  struct DeviceState {
    std::deque<ContainerId> queue;
    std::optional<ContainerId> holder;
    bool token_valid = false;       // false while expired-but-not-released
    bool grant_in_flight = false;   // exchange latency elapsing
    Time expiry{0};                 // current quota deadline
    sim::EventId expiry_event = sim::kInvalidEvent;
    sim::EventId reeval_event = sim::kInvalidEvent;
  };

  void TryGrant(const GpuUuid& device);
  void GrantTo(DeviceState& dev, const GpuUuid& device_id,
               const ContainerId& container);
  void OnExpiry(const GpuUuid& device);
  void ScheduleReeval(DeviceState& dev, const GpuUuid& device_id);
  void CancelIdleReeval(DeviceState& dev);

  /// What the daemon needs to re-admit a surviving frontend after a
  /// restart. Keyed by a sorted map so reattach order is deterministic.
  struct ReattachInfo {
    GpuUuid device;
    ResourceSpec spec;
    TokenClient* client = nullptr;
  };

  sim::Simulation* sim_;
  BackendConfig config_;
  std::unordered_map<GpuUuid, DeviceState> devices_;
  std::unordered_map<ContainerId, ContainerState> containers_;
  std::map<ContainerId, ReattachInfo> pending_reattach_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t grants_ = 0;
  /// Bumped by Restart(); in-flight grant hand-offs no-op across it.
  std::uint64_t epoch_ = 0;
  std::uint64_t restarts_ = 0;
  std::uint64_t reattached_ = 0;
  bool down_ = false;
};

}  // namespace ks::vgpu
