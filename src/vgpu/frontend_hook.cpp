#include "vgpu/frontend_hook.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "common/log.hpp"

namespace ks::vgpu {

FrontendHook::FrontendHook(cuda::CudaApi* inner, TokenBackendApi* backend,
                           ContainerId container, GpuUuid device,
                           ResourceSpec spec,
                           std::uint64_t device_memory_bytes)
    : inner_(inner),
      backend_(backend),
      container_(std::move(container)),
      device_(std::move(device)),
      spec_(spec),
      memory_quota_bytes_(static_cast<std::uint64_t>(
          static_cast<double>(device_memory_bytes) * spec.gpu_mem)) {
  assert(inner_ != nullptr);
  assert(backend_ != nullptr);
  streams_.try_emplace(cuda::kDefaultStream);
  const Status s =
      backend_->RegisterContainer(container_, device_, spec_, this);
  if (!s.ok()) {
    KS_LOG(kError) << "frontend registration failed: " << s;
  }
}

FrontendHook::~FrontendHook() {
  if (swap_ != nullptr) {
    // An in-flight migration lives in the inner driver's prefetch lane; the
    // CudaContext destructor detaches its callback via DetachOwner.
    swap_->FreeAll(container_);
  }
  if (adv_event_ != sim::kInvalidEvent) adv_sim_->Cancel(adv_event_);
  (void)backend_->UnregisterContainer(container_);
}

void FrontendHook::SetAdversarial(const AdversarialSpec& spec,
                                  sim::Simulation* sim) {
  assert(sim != nullptr);
  const bool dropped_overstay =
      adversarial_ && adversarial_->overstay && !spec.overstay;
  adversarial_ = spec;
  adv_sim_ = sim;
  if (dropped_overstay && token_valid_ && Now() >= expiry_) {
    OnTokenExpired();  // the zombie grant dies with the overstay behavior
  }
  if (adv_event_ != sim::kInvalidEvent) adv_sim_->Cancel(adv_event_);
  adv_event_ = adv_sim_->ScheduleAfter(spec.attack_period, [this] {
    adv_event_ = sim::kInvalidEvent;
    AttackTick();
  });
}

void FrontendHook::ClearAdversarial() {
  if (!adversarial_) return;
  const bool was_overstay = adversarial_->overstay;
  adversarial_.reset();
  if (adv_event_ != sim::kInvalidEvent) {
    adv_sim_->Cancel(adv_event_);
    adv_event_ = sim::kInvalidEvent;
  }
  if (was_overstay && token_valid_ && Now() >= expiry_) {
    // The grant this hook kept alive past its expiry is a zombie — drop it
    // through the same path a delivered expiry would have taken. If the
    // backend already fenced and force-reclaimed it, the release below is a
    // harmless no-op on a non-holder.
    OnTokenExpired();
  }
}

void FrontendHook::AttackTick() {
  if (!adversarial_) return;
  ++attack_ticks_;
  const AdversarialSpec spec = *adversarial_;
  if (spec.kernel_flood) {
    // Straight to the driver, bypassing the hook's token-gated queues —
    // the device-side token gate is the only thing standing.
    (void)inner_->LaunchKernel(spec.flood_kernel, cuda::kDefaultStream,
                               nullptr);
  }
  if (spec.memory_probe) {
    // Probe past the quota without touching this hook's ledger (the
    // client-side check is ours to skip). A successful probe is freed
    // immediately — the attack is the attempt, not the hoard.
    gpu::DevicePtr probe = 0;
    if (inner_->MemAlloc(&probe, spec.probe_bytes) ==
        cuda::CudaResult::kSuccess) {
      (void)inner_->MemFree(probe);
    }
  }
  if (spec.metrics_spoof) {
    backend_->ReportUsage(container_,
                          backend_->UsageOf(container_) * spec.spoof_factor);
  }
  if (spec.overstay && token_valid_) {
    Drain();  // keep pushing work on the (possibly zombie) grant
  }
  adv_event_ = adv_sim_->ScheduleAfter(spec.attack_period, [this] {
    adv_event_ = sim::kInvalidEvent;
    AttackTick();
  });
}

void FrontendHook::EnableMemoryOvercommit(SwapManager* swap,
                                          sim::Simulation* sim) {
  assert(swap != nullptr && sim != nullptr);
  assert(allocated_bytes_ == 0 &&
         "enable over-commitment before the first allocation");
  swap_ = swap;
  sim_ = sim;
}

cuda::CudaResult FrontendHook::MemAlloc(gpu::DevicePtr* out,
                                        std::uint64_t bytes) {
  if (out == nullptr || bytes == 0) {
    return cuda::CudaResult::kErrorInvalidValue;
  }
  if (allocated_bytes_ + bytes > memory_quota_bytes_) {
    // Paper §4.5: "our frontend module simply throws out of memory
    // exceptions when a container attempts to allocate more space than it
    // requests" — translated to the driver API's error code.
    ++oom_rejections_;
    return cuda::CudaResult::kErrorOutOfMemory;
  }
  if (swap_ != nullptr) {
    // Over-commitment mode: the SwapManager backs the allocation; host
    // memory is the overflow, so only the per-container quota applies —
    // plus the cluster's oversubscription bound, when one is configured.
    const Status s = swap_->Allocate(container_, bytes);
    if (!s.ok()) {
      if (s.code() == StatusCode::kResourceExhausted) {
        ++oom_rejections_;
        return cuda::CudaResult::kErrorOutOfMemory;
      }
      return cuda::CudaResult::kErrorInvalidValue;
    }
    *out = next_swap_ptr_++;
    allocated_bytes_ += bytes;
    ptr_bytes_[*out] = bytes;
    return cuda::CudaResult::kSuccess;
  }
  const cuda::CudaResult r = inner_->MemAlloc(out, bytes);
  if (r == cuda::CudaResult::kSuccess) {
    allocated_bytes_ += bytes;
    ptr_bytes_[*out] = bytes;
  }
  return r;
}

cuda::CudaResult FrontendHook::MemFree(gpu::DevicePtr ptr) {
  if (swap_ != nullptr) {
    auto it = ptr_bytes_.find(ptr);
    if (it == ptr_bytes_.end()) return cuda::CudaResult::kErrorInvalidValue;
    (void)swap_->Free(container_, it->second);
    allocated_bytes_ -= it->second;
    ptr_bytes_.erase(it);
    return cuda::CudaResult::kSuccess;
  }
  const cuda::CudaResult r = inner_->MemFree(ptr);
  if (r == cuda::CudaResult::kSuccess) {
    auto it = ptr_bytes_.find(ptr);
    if (it != ptr_bytes_.end()) {
      allocated_bytes_ -= it->second;
      ptr_bytes_.erase(it);
    }
  }
  return r;
}

cuda::CudaResult FrontendHook::ArrayCreate(gpu::DevicePtr* out,
                                           std::uint64_t width,
                                           std::uint64_t height,
                                           std::uint64_t element_bytes) {
  if (width == 0 || height == 0 || element_bytes == 0) {
    return cuda::CudaResult::kErrorInvalidValue;
  }
  // Route through our MemAlloc so the quota check covers array creation —
  // the paper's hook intercepts cuArrayCreate for the same reason.
  return MemAlloc(out, width * height * element_bytes);
}

cuda::CudaResult FrontendHook::MemPrefetch(std::uint64_t bytes,
                                           Duration duration,
                                           cuda::HostFn on_complete) {
  // Pass-through: migrations charged by this hook (OnTokenGranted) or by a
  // workload directly land in the driver's migration lane unchanged.
  return inner_->MemPrefetch(bytes, duration, std::move(on_complete));
}

cuda::CudaResult FrontendHook::StreamCreate(cuda::StreamId* out) {
  const cuda::CudaResult r = inner_->StreamCreate(out);
  if (r == cuda::CudaResult::kSuccess) streams_.try_emplace(*out);
  return r;
}

cuda::CudaResult FrontendHook::StreamDestroy(cuda::StreamId stream) {
  auto it = streams_.find(stream);
  if (it == streams_.end()) return cuda::CudaResult::kErrorInvalidHandle;
  if (it->second.in_flight || !it->second.pending.empty()) {
    return cuda::CudaResult::kErrorNotReady;
  }
  const cuda::CudaResult r = inner_->StreamDestroy(stream);
  if (r == cuda::CudaResult::kSuccess) streams_.erase(stream);
  return r;
}

cuda::CudaResult FrontendHook::LaunchKernel(const gpu::KernelDesc& desc,
                                            cuda::StreamId stream,
                                            cuda::HostFn on_complete) {
  auto it = streams_.find(stream);
  if (it == streams_.end()) return cuda::CudaResult::kErrorInvalidHandle;
  if (desc.nominal_duration.count() <= 0) {
    return cuda::CudaResult::kErrorInvalidValue;
  }
  ++pending_kernels_;
  PendingEntry entry;
  entry.desc = desc;
  entry.fn = std::move(on_complete);
  it->second.pending.push_back(std::move(entry));
  if (token_valid_) {
    Drain();
  } else if (!token_held_ && !token_requested_) {
    token_requested_ = true;
    (void)backend_->RequestToken(container_);
  }
  return cuda::CudaResult::kSuccess;
}

cuda::CudaResult FrontendHook::LaunchKernelStream(const gpu::KernelDesc& desc,
                                                  int count,
                                                  cuda::StreamId stream,
                                                  gpu::UnitDoneFn on_unit) {
  auto it = streams_.find(stream);
  if (it == streams_.end()) return cuda::CudaResult::kErrorInvalidHandle;
  if (desc.nominal_duration.count() <= 0 || count <= 0) {
    return cuda::CudaResult::kErrorInvalidValue;
  }
  pending_kernels_ += static_cast<std::size_t>(count);
  PendingEntry entry;
  entry.is_repeat = true;
  entry.count = count;
  entry.desc = desc;
  entry.unit_fn = std::move(on_unit);
  it->second.pending.push_back(std::move(entry));
  if (token_valid_) {
    Drain();
  } else if (!token_held_ && !token_requested_) {
    token_requested_ = true;
    (void)backend_->RequestToken(container_);
  }
  return cuda::CudaResult::kSuccess;
}

std::size_t FrontendHook::CancelPending(cuda::StreamId stream) {
  auto it = streams_.find(stream);
  if (it == streams_.end()) return 0;
  StreamQueue& q = it->second;
  std::size_t cancelled = 0;
  if (q.fwd_size > 0) {
    // Units already due under fusion deliver synchronously during the inner
    // cancel; the in-flight unit retires later and closes the batch.
    const std::size_t tail = inner_->CancelPending(stream);
    if (tail > 0) {
      cancelled += tail;
      q.fwd_size -= tail;
      in_flight_ -= tail;
      pending_kernels_ -= tail;
    }
  }
  for (auto qit = q.pending.begin(); qit != q.pending.end();) {
    if (qit->is_event) {
      ++qit;
      continue;
    }
    const auto units =
        static_cast<std::size_t>(qit->is_repeat ? qit->count : 1);
    pending_kernels_ -= units;
    cancelled += units;
    qit = q.pending.erase(qit);
  }
  FlushMarkers();  // markers at queue heads have nothing ahead of them now
  MaybeReleaseOrRerequest();
  MaybeFireSync();
  return cancelled;
}

std::size_t FrontendHook::RetiredUnits(cuda::StreamId stream) const {
  // Stream ids pass through this hook unchanged, and every retired unit
  // retired through the inner driver; its analytic count (including
  // due-but-undelivered fused units) is exactly the progress jobs poll.
  return inner_->RetiredUnits(stream);
}

Duration FrontendHook::ExclusiveKernelTime(const gpu::KernelDesc& desc) const {
  return inner_->ExclusiveKernelTime(desc);
}

Time FrontendHook::Now() const { return inner_->Now(); }

void FrontendHook::FlushMarkers() {
  for (auto& [stream_id, q] : streams_) {
    while (!q.in_flight && !q.pending.empty() &&
           q.pending.front().is_event) {
      const cuda::EventId event = q.pending.front().event;
      q.pending.pop_front();
      (void)inner_->EventRecord(event, stream_id);
      // Waiters registered while the marker was still queued here.
      auto wit = queued_events_.find(event);
      if (wit != queued_events_.end()) {
        auto waiters = std::move(wit->second);
        queued_events_.erase(wit);
        for (auto& fn : waiters) {
          (void)inner_->EventSynchronize(event, std::move(fn));
        }
      }
    }
  }
}

namespace {
bool SameKernel(const gpu::KernelDesc& a, const gpu::KernelDesc& b) {
  return a.nominal_duration == b.nominal_duration &&
         a.bandwidth_demand == b.bandwidth_demand && a.name == b.name;
}
}  // namespace

void FrontendHook::Drain() {
  FlushMarkers();
  if (!token_valid_ || swap_pending_) return;
  for (auto& [stream_id, q] : streams_) {
    if (q.in_flight || q.pending.empty()) continue;
    if (q.pending.front().is_event) continue;  // handled by FlushMarkers
    const cuda::StreamId sid = stream_id;
    if (q.pending.front().is_repeat) {
      // Token-interval batching: forward as many units of the head run of
      // identical repeat entries as finish strictly inside the current
      // grant, minus one — the final in-quota unit goes alone so the event
      // landing nearest the expiry is a singleton, exactly as unbatched
      // forwarding would arm it.
      const gpu::KernelDesc desc = q.pending.front().desc;
      const Duration unit_wall = inner_->ExclusiveKernelTime(desc);
      std::size_t avail = 0;
      for (const PendingEntry& e : q.pending) {
        if (e.is_event || !e.is_repeat || !SameKernel(e.desc, desc)) break;
        avail += static_cast<std::size_t>(e.count);
      }
      std::size_t batch = 1;
      if (unit_wall.count() > 0 && expiry_ > Now()) {
        const std::int64_t fit = (expiry_ - Now()).count() / unit_wall.count();
        if (fit - 1 >= 2) {
          batch = std::min(avail, static_cast<std::size_t>(fit - 1));
        }
      }
      q.segs.clear();
      q.seg_idx = 0;
      q.seg_fired = 0;
      std::size_t taken = 0;
      while (taken < batch) {
        PendingEntry& head = q.pending.front();
        const int take = static_cast<int>(
            std::min(static_cast<std::size_t>(head.count), batch - taken));
        if (take == head.count) {
          q.segs.emplace_back(take, std::move(head.unit_fn));
          q.pending.pop_front();
        } else {
          // Partial take: the entry keeps its callback for the remainder.
          q.segs.emplace_back(take, head.unit_fn);
          head.count -= take;
        }
        taken += static_cast<std::size_t>(take);
      }
      q.in_flight = true;
      q.fwd_desc = desc;
      q.fwd_size = batch;
      q.fwd_delivered = 0;
      in_flight_ += batch;
      const cuda::CudaResult r = inner_->LaunchKernelStream(
          desc, static_cast<int>(batch), sid,
          [this, sid](Time finish) { OnUnitRetired(sid, finish); });
      if (r != cuda::CudaResult::kSuccess) {
        KS_LOG(kError) << "inner stream launch failed: "
                       << cuda::CudaResultName(r);
        q.in_flight = false;
        q.fwd_size = 0;
        q.segs.clear();
        in_flight_ -= batch;
        pending_kernels_ -= batch;
      }
      continue;
    }
    PendingEntry entry = std::move(q.pending.front());
    q.pending.pop_front();
    q.in_flight = true;
    ++in_flight_;
    const cuda::CudaResult r = inner_->LaunchKernel(
        entry.desc, sid, [this, sid, user_fn = std::move(entry.fn)]() mutable {
          OnKernelRetired(sid, std::move(user_fn));
        });
    if (r != cuda::CudaResult::kSuccess) {
      KS_LOG(kError) << "inner launch failed: " << cuda::CudaResultName(r);
      q.in_flight = false;
      --in_flight_;
      --pending_kernels_;
    }
  }
}

void FrontendHook::OnKernelRetired(cuda::StreamId stream,
                                   cuda::HostFn user_fn) {
  auto it = streams_.find(stream);
  if (it != streams_.end()) it->second.in_flight = false;
  --in_flight_;
  --pending_kernels_;
  if (user_fn) user_fn();
  FlushMarkers();  // events behind the retired kernel are now orderable
  if (token_valid_) {
    Drain();
  }
  MaybeReleaseOrRerequest();
  MaybeFireSync();
}

void FrontendHook::OnUnitRetired(cuda::StreamId stream, Time finish) {
  auto it = streams_.find(stream);
  if (it == streams_.end()) {
    --in_flight_;
    --pending_kernels_;
    MaybeFireSync();
    return;
  }
  StreamQueue& q = it->second;
  ++q.fwd_delivered;
  --in_flight_;
  --pending_kernels_;
  // Map the unit back to its source entry's callback. Recall may have
  // truncated segments; exhausted ones are skipped.
  gpu::UnitDoneFn user_fn;
  while (q.seg_idx < q.segs.size() &&
         q.seg_fired >= q.segs[q.seg_idx].first) {
    ++q.seg_idx;
    q.seg_fired = 0;
  }
  if (q.seg_idx < q.segs.size()) {
    user_fn = q.segs[q.seg_idx].second;
    ++q.seg_fired;
  }
  const bool last = q.fwd_delivered >= q.fwd_size;
  if (last) {
    q.in_flight = false;
    q.fwd_size = 0;
    q.fwd_delivered = 0;
    q.segs.clear();
    q.seg_idx = 0;
    q.seg_fired = 0;
  }
  if (user_fn) user_fn(finish);
  if (last) {
    FlushMarkers();
    if (token_valid_) Drain();
    MaybeReleaseOrRerequest();
  }
  MaybeFireSync();
}

void FrontendHook::RecallForwardedTails() {
  for (auto& [stream_id, q] : streams_) {
    if (q.fwd_size == 0) continue;
    // Due fused units deliver synchronously during the cancel (through
    // OnUnitRetired above) before the unstarted tail comes back.
    const std::size_t cancelled = inner_->CancelPending(stream_id);
    if (cancelled == 0) continue;
    q.fwd_size -= cancelled;
    in_flight_ -= cancelled;
    // The last `cancelled` undelivered units return to the queue front in
    // their original order; the first `keep` stay with the driver (the
    // in-flight one retires and closes the batch). pending_kernels_ is
    // unchanged — recalled units are still pending, just queued here again.
    const std::size_t keep = q.fwd_size - q.fwd_delivered;
    std::vector<PendingEntry> recalled;
    std::size_t skip = keep;
    std::size_t idx = q.seg_idx;
    int fired = q.seg_fired;
    for (; idx < q.segs.size(); ++idx) {
      int remaining = q.segs[idx].first - fired;
      fired = 0;
      if (remaining <= 0) continue;
      if (skip >= static_cast<std::size_t>(remaining)) {
        skip -= static_cast<std::size_t>(remaining);
        continue;
      }
      const int take = remaining - static_cast<int>(skip);
      skip = 0;
      PendingEntry entry;
      entry.is_repeat = true;
      entry.count = take;
      entry.desc = q.fwd_desc;
      entry.unit_fn = q.segs[idx].second;
      recalled.push_back(std::move(entry));
      // Truncate the segment so deliveries stop at the keep boundary.
      q.segs[idx].first -= take;
    }
    for (auto rit = recalled.rbegin(); rit != recalled.rend(); ++rit) {
      q.pending.push_front(std::move(*rit));
    }
  }
}

bool FrontendHook::HasQueuedWork() const {
  // Event markers don't need the token; only kernels count as work.
  for (const auto& [id, q] : streams_) {
    for (const PendingEntry& e : q.pending) {
      if (!e.is_event) return true;
    }
  }
  return false;
}

void FrontendHook::MaybeReleaseOrRerequest() {
  if (!token_held_) {
    // Kernel retired after the token was already released/expired; if work
    // remains, get back in line.
    if (HasQueuedWork() && !token_requested_) {
      token_requested_ = true;
      (void)backend_->RequestToken(container_);
    }
    return;
  }
  if (in_flight_ > 0) return;
  if (token_valid_ && HasQueuedWork()) return;  // keep running
  // Either the quota expired (yield once in-flight work retired) or the
  // queues drained (early release — "revoked by its holder").
  token_held_ = false;
  token_valid_ = false;
  // Re-request BEFORE releasing: the release triggers the backend's next
  // grant decision, and this container's remaining work must be in that
  // comparison (otherwise two sharers strictly alternate and the
  // gpu_request priorities never engage).
  if (HasQueuedWork() && !token_requested_) {
    token_requested_ = true;
    (void)backend_->RequestToken(container_);
  }
  (void)backend_->ReleaseToken(container_);
}

void FrontendHook::OnTokenGranted(Time expiry) {
  token_requested_ = false;
  token_held_ = true;
  token_valid_ = true;
  expiry_ = expiry;
  if (!HasQueuedWork() && in_flight_ == 0) {
    // Work evaporated between request and grant (possible via Synchronize
    // bookkeeping); give the token straight back.
    token_held_ = false;
    token_valid_ = false;
    (void)backend_->ReleaseToken(container_);
    return;
  }
  if (swap_ != nullptr) {
    // Bring the working set on-device before any kernel runs. The quota is
    // extended by the migration time — the time slice covers compute;
    // otherwise a migration longer than the quota would expire every grant
    // before a single kernel launches (thrash with zero progress). The
    // returned duration already includes any queueing delay on the shared
    // host<->device link (concurrent migrations serialize).
    const Duration migration = swap_->MakeResident(container_, sim_->Now());
    const std::uint64_t moved = swap_->last_migration_bytes();
    if (moved > 0) backend_->ReportSwapBytes(container_, moved);
    if (migration.count() > 0) {
      (void)backend_->ExtendQuota(container_, migration);
      swap_pending_ = true;
      // Charge the transfer into the device's migration lane so both sim
      // engines account the bus time identically (and NVML sees the device
      // busy while pages move).
      (void)inner_->MemPrefetch(moved, migration, [this] {
        swap_pending_ = false;
        Drain();  // no-ops if the token lapsed during the migration
      });
      return;
    }
  }
  Drain();
}

void FrontendHook::OnTokenExpired() {
  if (adversarial_ && adversarial_->overstay) {
    // Hostile: pretend the expiry never arrived and keep submitting. The
    // zombie grant lives until the device fences the token epoch at the
    // backend's fence deadline (expiry + fence_grace), after which every
    // forwarded unit is dropped on the floor — this hook's in-flight
    // accounting wedges by design; recovery is clamp-down/eviction, not
    // forgiveness.
    return;
  }
  token_valid_ = false;
  // A forwarded batch was sized to finish inside the grant; if the quota
  // still lapsed under it (extension paths, bursty sharing), pull the
  // unstarted tail back under token control. The in-flight unit retires on
  // its own — same overrun a single unbatched kernel would have.
  RecallForwardedTails();
  MaybeReleaseOrRerequest();
}

void FrontendHook::OnBackendRestart() {
  // Any token this frontend believed it held died with the daemon; the
  // rebuilt backend knows no holder. Reset and get back in line — kernels
  // already on the device retire on their own (non-preemptive).
  token_valid_ = false;
  token_held_ = false;
  token_requested_ = false;
  RecallForwardedTails();
  if (HasQueuedWork()) {
    token_requested_ = true;
    (void)backend_->RequestToken(container_);
  }
}

cuda::CudaResult FrontendHook::Synchronize(cuda::HostFn fn) {
  if (!fn) return cuda::CudaResult::kErrorInvalidValue;
  if (pending_kernels_ == 0) {
    fn();
    return cuda::CudaResult::kSuccess;
  }
  sync_waiters_.push_back(std::move(fn));
  return cuda::CudaResult::kSuccess;
}

void FrontendHook::MaybeFireSync() {
  if (pending_kernels_ != 0 || sync_waiters_.empty()) return;
  auto waiters = std::move(sync_waiters_);
  sync_waiters_.clear();
  for (auto& fn : waiters) fn();
}

cuda::CudaResult FrontendHook::EventCreate(cuda::EventId* out) {
  return inner_->EventCreate(out);
}

cuda::CudaResult FrontendHook::EventRecord(cuda::EventId event,
                                           cuda::StreamId stream) {
  auto it = streams_.find(stream);
  if (it == streams_.end()) return cuda::CudaResult::kErrorInvalidHandle;
  if (!it->second.in_flight && it->second.pending.empty()) {
    // Nothing ahead of it in our queue; the driver orders against its own
    // (already drained) stream.
    return inner_->EventRecord(event, stream);
  }
  PendingEntry marker;
  marker.is_event = true;
  marker.event = event;
  it->second.pending.push_back(std::move(marker));
  queued_events_.try_emplace(event);
  return cuda::CudaResult::kSuccess;
}

cuda::CudaResult FrontendHook::EventQuery(cuda::EventId event) {
  if (queued_events_.count(event) > 0) {
    return cuda::CudaResult::kErrorNotReady;  // marker not forwarded yet
  }
  return inner_->EventQuery(event);
}

cuda::CudaResult FrontendHook::EventSynchronize(cuda::EventId event,
                                                cuda::HostFn fn) {
  if (!fn) return cuda::CudaResult::kErrorInvalidValue;
  auto it = queued_events_.find(event);
  if (it != queued_events_.end()) {
    it->second.push_back(std::move(fn));
    return cuda::CudaResult::kSuccess;
  }
  return inner_->EventSynchronize(event, std::move(fn));
}

cuda::CudaResult FrontendHook::EventElapsedTime(Duration* out,
                                                cuda::EventId start,
                                                cuda::EventId end) {
  return inner_->EventElapsedTime(out, start, end);
}

cuda::CudaResult FrontendHook::EventDestroy(cuda::EventId event) {
  return inner_->EventDestroy(event);
}

}  // namespace ks::vgpu
