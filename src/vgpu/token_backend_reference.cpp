#include "vgpu/token_backend_reference.hpp"

#include <algorithm>
#include <cassert>

#include "common/log.hpp"

namespace ks::vgpu {

TokenBackendReference::TokenBackendReference(sim::Simulation* sim,
                                             BackendConfig config)
    : sim_(sim), config_(config) {
  assert(sim_ != nullptr);
}

void TokenBackendReference::RegisterDevice(const GpuUuid& device) {
  devices_.try_emplace(device);
}

Status TokenBackendReference::RegisterContainer(const ContainerId& container,
                                                const GpuUuid& device,
                                                const ResourceSpec& spec,
                                                TokenClient* client) {
  KS_RETURN_IF_ERROR(spec.Validate());
  if (client == nullptr) return InvalidArgumentError("null token client");
  if (containers_.count(container) > 0) {
    return AlreadyExistsError("container already registered: " +
                              container.value());
  }
  if (down_) {
    // The daemon is restarting; the frontend's connect parks until it is
    // back, then it is admitted with the reattach batch.
    if (pending_reattach_.count(container) > 0) {
      return AlreadyExistsError("container already registered: " +
                                container.value());
    }
    pending_reattach_[container] = {device, spec, client};
    return Status::Ok();
  }
  RegisterDevice(device);
  ContainerState state{config_.usage_window};
  state.device = device;
  state.spec = spec;
  state.client = client;
  containers_.emplace(container, std::move(state));
  return Status::Ok();
}

Status TokenBackendReference::UnregisterContainer(
    const ContainerId& container) {
  // A container dying while the daemon is down (or before its reattach
  // fires) must not be resurrected by the restart path.
  const bool was_pending = pending_reattach_.erase(container) > 0;
  auto it = containers_.find(container);
  if (it == containers_.end()) {
    if (was_pending) return Status::Ok();
    return NotFoundError("container not registered: " + container.value());
  }
  DeviceState& dev = devices_.at(it->second.device);
  const GpuUuid device_id = it->second.device;
  // Drop from the wait queue if present.
  dev.queue.erase(std::remove(dev.queue.begin(), dev.queue.end(), container),
                  dev.queue.end());
  // Same fix as the wheel backend: a reeval poll armed for a queue this
  // unregistration just emptied must not dangle until it fires as a no-op.
  CancelIdleReeval(dev);
  const bool was_holder = dev.holder.has_value() && *dev.holder == container;
  if (was_holder) {
    if (dev.expiry_event != sim::kInvalidEvent) {
      sim_->Cancel(dev.expiry_event);
      dev.expiry_event = sim::kInvalidEvent;
    }
    dev.holder.reset();
    dev.token_valid = false;
    dev.grant_in_flight = false;
  }
  containers_.erase(it);
  if (was_holder) TryGrant(device_id);
  return Status::Ok();
}

Status TokenBackendReference::UpdateSpec(const ContainerId& container,
                                         const ResourceSpec& spec) {
  KS_RETURN_IF_ERROR(spec.Validate());
  auto it = containers_.find(container);
  if (it == containers_.end()) {
    return NotFoundError("container not registered: " + container.value());
  }
  it->second.spec.gpu_request = spec.gpu_request;
  it->second.spec.gpu_limit = spec.gpu_limit;
  // A raised limit may unblock throttled waiters right away.
  TryGrant(it->second.device);
  return Status::Ok();
}

Status TokenBackendReference::RequestToken(const ContainerId& container) {
  auto it = containers_.find(container);
  if (it == containers_.end()) {
    return NotFoundError("container not registered: " + container.value());
  }
  ContainerState& state = it->second;
  DeviceState& dev = devices_.at(state.device);
  if (dev.holder.has_value() && *dev.holder == container &&
      (dev.token_valid || dev.grant_in_flight)) {
    return Status::Ok();  // already holding (or being granted) a valid token
  }
  // An expired holder may queue BEFORE it releases: its re-request must be
  // on the table when the release triggers the next grant decision, or a
  // two-container device degenerates to strict alternation and gpu_request
  // pinning never engages (the releaser would always be absent from the
  // queue the policy chooses from).
  if (state.queued) return Status::Ok();
  state.queued = true;
  state.enqueue_seq = next_seq_++;
  dev.queue.push_back(container);
  TryGrant(state.device);
  return Status::Ok();
}

Status TokenBackendReference::ReleaseToken(const ContainerId& container) {
  auto it = containers_.find(container);
  if (it == containers_.end()) {
    return NotFoundError("container not registered: " + container.value());
  }
  ContainerState& state = it->second;
  DeviceState& dev = devices_.at(state.device);
  if (!dev.holder.has_value() || *dev.holder != container) {
    return FailedPreconditionError("container does not hold the token: " +
                                   container.value());
  }
  state.usage.Stop(sim_->Now());
  // Hold accounting: total hold time and the slice past the quota deadline
  // (overrun from non-preemptive kernels).
  const Time now = sim_->Now();
  if (now > state.grant_time) {
    state.stats.held_total += now - state.grant_time;
  }
  if (!dev.token_valid && now > dev.expiry) {
    state.stats.overrun_total += now - dev.expiry;
  }
  if (dev.expiry_event != sim::kInvalidEvent) {
    sim_->Cancel(dev.expiry_event);
    dev.expiry_event = sim::kInvalidEvent;
  }
  dev.holder.reset();
  dev.token_valid = false;
  RecordGrantTrace("release", container, now);
  TryGrant(state.device);
  return Status::Ok();
}

TokenBackendReference::ContainerStats TokenBackendReference::StatsOf(
    const ContainerId& container) const {
  auto it = containers_.find(container);
  if (it == containers_.end()) return {};
  return it->second.stats;
}

Status TokenBackendReference::ExtendQuota(const ContainerId& container,
                                          Duration extra) {
  auto it = containers_.find(container);
  if (it == containers_.end()) {
    return NotFoundError("container not registered: " + container.value());
  }
  DeviceState& dev = devices_.at(it->second.device);
  if (!dev.holder.has_value() || *dev.holder != container ||
      !dev.token_valid) {
    return FailedPreconditionError("container holds no valid token: " +
                                   container.value());
  }
  if (extra.count() <= 0) return Status::Ok();
  const GpuUuid device_id = it->second.device;
  sim_->Cancel(dev.expiry_event);
  dev.expiry += extra;
  dev.expiry_event = sim_->ScheduleAt(dev.expiry, [this, device_id] {
    OnExpiry(device_id);
  });
  return Status::Ok();
}

double TokenBackendReference::UsageOf(const ContainerId& container) const {
  auto it = containers_.find(container);
  if (it == containers_.end()) return 0.0;
  return it->second.usage.Usage(sim_->Now());
}

std::optional<ContainerId> TokenBackendReference::HolderOf(
    const GpuUuid& device) const {
  auto it = devices_.find(device);
  if (it == devices_.end()) return std::nullopt;
  return it->second.holder;
}

std::size_t TokenBackendReference::QueueLength(const GpuUuid& device) const {
  auto it = devices_.find(device);
  if (it == devices_.end()) return 0;
  return it->second.queue.size();
}

std::size_t TokenBackendReference::pending_timers() const {
  std::size_t n = down_ ? 1 : 0;  // the restart come-back deadline
  for (const auto& [device_id, dev] : devices_) {
    if (dev.expiry_event != sim::kInvalidEvent) ++n;
    if (dev.reeval_event != sim::kInvalidEvent) ++n;
  }
  return n;
}

void TokenBackendReference::ScheduleReeval(DeviceState& dev,
                                           const GpuUuid& device_id) {
  if (dev.reeval_event != sim::kInvalidEvent) return;
  dev.reeval_event = sim_->ScheduleAfter(config_.reeval_period, [this,
                                                                 device_id] {
    auto it = devices_.find(device_id);
    if (it == devices_.end()) return;
    it->second.reeval_event = sim::kInvalidEvent;
    TryGrant(device_id);
  });
}

void TokenBackendReference::CancelIdleReeval(DeviceState& dev) {
  if (dev.queue.empty() && dev.reeval_event != sim::kInvalidEvent) {
    sim_->Cancel(dev.reeval_event);
    dev.reeval_event = sim::kInvalidEvent;
  }
}

void TokenBackendReference::TryGrant(const GpuUuid& device_id) {
  DeviceState& dev = devices_.at(device_id);
  if (dev.holder.has_value() || dev.grant_in_flight) return;
  if (dev.queue.empty()) return;

  const Time now = sim_->Now();

  // Step 1: filter requesters already at their gpu_limit.
  std::vector<ContainerId> eligible;
  for (const ContainerId& c : dev.queue) {
    const ContainerState& s = containers_.at(c);
    if (s.usage.Usage(now) < s.spec.gpu_limit) eligible.push_back(c);
  }
  if (eligible.empty()) {
    // Everyone is throttled; usage decays as the window slides, so check
    // again shortly.
    ScheduleReeval(dev, device_id);
    return;
  }

  // Step 2: prefer the container farthest below its guaranteed minimum.
  const ContainerId* pick = nullptr;
  double best_deficit = 0.0;
  std::uint64_t best_seq = 0;
  for (const ContainerId& c : eligible) {
    const ContainerState& s = containers_.at(c);
    const double deficit = s.spec.gpu_request - s.usage.Usage(now);
    if (deficit <= 0.0) continue;
    if (pick == nullptr || deficit > best_deficit ||
        (deficit == best_deficit && s.enqueue_seq < best_seq)) {
      pick = &c;
      best_deficit = deficit;
      best_seq = s.enqueue_seq;
    }
  }

  // Step 3: all requesters have met their minimum — grant to the lowest
  // current usage so residual capacity is divided fairly.
  if (pick == nullptr) {
    double best_usage = 0.0;
    for (const ContainerId& c : eligible) {
      const ContainerState& s = containers_.at(c);
      const double usage = s.usage.Usage(now);
      if (pick == nullptr || usage < best_usage ||
          (usage == best_usage && s.enqueue_seq < best_seq)) {
        pick = &c;
        best_usage = usage;
        best_seq = s.enqueue_seq;
      }
    }
  }

  assert(pick != nullptr);
  GrantTo(dev, device_id, *pick);
}

void TokenBackendReference::GrantTo(DeviceState& dev, const GpuUuid& device_id,
                                    const ContainerId& container) {
  ContainerState& state = containers_.at(container);
  dev.queue.erase(std::remove(dev.queue.begin(), dev.queue.end(), container),
                  dev.queue.end());
  state.queued = false;
  dev.holder = container;
  dev.grant_in_flight = true;
  ++grants_;

  // The hand-off costs one exchange latency, during which the device is
  // idle; the token is valid from the end of the exchange for one quota.
  const ContainerId granted = container;
  sim_->ScheduleAfter(config_.exchange_latency, [this, device_id, granted,
                                                 epoch = epoch_] {
    if (epoch != epoch_) return;  // daemon restarted mid-exchange
    auto dit = devices_.find(device_id);
    if (dit == devices_.end()) return;
    DeviceState& d = dit->second;
    if (!d.holder.has_value() || *d.holder != granted) return;  // unregistered
    auto cit = containers_.find(granted);
    if (cit == containers_.end()) return;
    d.grant_in_flight = false;
    d.token_valid = true;
    d.expiry = sim_->Now() + config_.quota;
    cit->second.grant_time = sim_->Now();
    ++cit->second.stats.grants;
    cit->second.usage.Start(sim_->Now());
    d.expiry_event = sim_->ScheduleAt(d.expiry, [this, device_id] {
      OnExpiry(device_id);
    });
    RecordGrantTrace("grant", granted, d.expiry);
    cit->second.client->OnTokenGranted(d.expiry);
  });
}

void TokenBackendReference::Restart() {
  ++epoch_;  // invalidate in-flight grant hand-offs
  ++restarts_;
  down_ = true;
  RecordGrantTrace("restart", ContainerId(""), sim_->Now());
  // All per-device token state dies with the daemon; pending timers are
  // cancelled so nothing from the old incarnation fires into the new one.
  for (auto& [device_id, dev] : devices_) {
    if (dev.expiry_event != sim::kInvalidEvent) {
      sim_->Cancel(dev.expiry_event);
      dev.expiry_event = sim::kInvalidEvent;
    }
    if (dev.reeval_event != sim::kInvalidEvent) {
      sim_->Cancel(dev.reeval_event);
      dev.reeval_event = sim::kInvalidEvent;
    }
    dev.queue.clear();
    dev.holder.reset();
    dev.token_valid = false;
    dev.grant_in_flight = false;
  }
  // Registered frontends become reattach candidates: their sockets
  // reconnect once the daemon is back. Sliding-window usage is lost — the
  // rebuilt daemon starts everyone from a clean slate.
  for (const auto& [container, state] : containers_) {
    pending_reattach_[container] = {state.device, state.spec, state.client};
  }
  containers_.clear();
  sim_->ScheduleAfter(config_.restart_downtime, [this, epoch = epoch_] {
    if (epoch != epoch_) return;  // restarted again before coming up
    down_ = false;
    // pending_reattach_ is a sorted map — deterministic reattach order.
    auto batch = std::move(pending_reattach_);
    pending_reattach_.clear();
    for (const auto& [container, info] : batch) {
      if (!RegisterContainer(container, info.device, info.spec, info.client)
               .ok()) {
        continue;
      }
      ++reattached_;
      info.client->OnBackendRestart();
    }
  });
}

void TokenBackendReference::OnExpiry(const GpuUuid& device_id) {
  DeviceState& dev = devices_.at(device_id);
  dev.expiry_event = sim::kInvalidEvent;
  if (!dev.holder.has_value()) return;
  dev.token_valid = false;
  auto it = containers_.find(*dev.holder);
  if (it == containers_.end()) return;
  // The holder keeps the token (and keeps accruing usage) until it releases
  // — its in-flight kernel is non-preemptive.
  RecordGrantTrace("expire", *dev.holder, sim_->Now());
  it->second.client->OnTokenExpired();
}

}  // namespace ks::vgpu
