#include "vgpu/swap.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <tuple>

namespace ks::vgpu {

SwapManager::SwapManager(std::uint64_t capacity_bytes, SwapConfig config)
    : capacity_bytes_(capacity_bytes), config_(config) {
  assert(capacity_bytes_ > 0);
  assert(config_.page_bytes > 0);
  assert(config_.link_bandwidth_bytes_per_s > 0);
  assert(capacity_bytes_ % config_.page_bytes == 0 &&
         "device memory must be a whole number of pages");
}

SwapManager::SwapManager(std::uint64_t capacity_bytes,
                         double link_bandwidth_bytes_per_s)
    : SwapManager(capacity_bytes, [&] {
        SwapConfig c;
        c.link_bandwidth_bytes_per_s = link_bandwidth_bytes_per_s;
        return c;
      }()) {}

Status SwapManager::Allocate(const ContainerId& owner, std::uint64_t bytes) {
  if (bytes == 0) return InvalidArgumentError("zero-byte allocation");
  const std::uint64_t pages = PagesFor(bytes);
  if (config_.oversubscription_factor > 0) {
    const std::uint64_t bound = static_cast<std::uint64_t>(
        static_cast<double>(capacity_pages()) *
        config_.oversubscription_factor);
    if (total_allocated_pages_ + pages > bound) {
      return ResourceExhaustedError("oversubscription bound exceeded");
    }
  }
  auto [it, inserted] = containers_.try_emplace(owner);
  State& s = it->second;
  if (inserted) s.reg_seq = next_reg_seq_++;
  s.pages_allocated += pages;
  total_allocated_pages_ += pages;
  // Greedily place the new pages on-device while space is free; the
  // remainder starts swapped out.
  const std::uint64_t free = capacity_pages() - total_resident_pages_;
  const std::uint64_t place = std::min(pages, free);
  s.pages_resident += place;
  total_resident_pages_ += place;
  return Status::Ok();
}

Status SwapManager::Free(const ContainerId& owner, std::uint64_t bytes) {
  const std::uint64_t pages = PagesFor(bytes);
  auto it = containers_.find(owner);
  if (it == containers_.end() || it->second.pages_allocated < pages) {
    return InvalidArgumentError("freeing more than allocated");
  }
  State& s = it->second;
  s.pages_allocated -= pages;
  total_allocated_pages_ -= pages;
  // Release resident pages first.
  const std::uint64_t from_resident = std::min(pages, s.pages_resident);
  s.pages_resident -= from_resident;
  total_resident_pages_ -= from_resident;
  return Status::Ok();
}

void SwapManager::FreeAll(const ContainerId& owner) {
  auto it = containers_.find(owner);
  if (it == containers_.end()) return;
  total_allocated_pages_ -= it->second.pages_allocated;
  total_resident_pages_ -= it->second.pages_resident;
  containers_.erase(it);
}

Duration SwapManager::MakeResident(const ContainerId& owner, Time now) {
  last_migration_bytes_ = 0;
  auto it = containers_.find(owner);
  if (it == containers_.end()) return Duration{0};
  State& s = it->second;
  s.last_run = now;
  if (s.pages_resident >= s.pages_allocated) return Duration{0};

  std::uint64_t need = s.pages_allocated - s.pages_resident;
  assert(s.pages_allocated <= capacity_pages() &&
         "a single container cannot exceed physical memory");
  std::uint64_t evicted = 0;

  // Evict least-recently-running victims until the working set fits.
  // Never-run owners all carry last_run == 0; among them the earliest
  // registration loses, so the order is identical no matter how the
  // sweep runner named or interleaved the containers.
  while (capacity_pages() - total_resident_pages_ < need) {
    State* victim = nullptr;
    for (auto& [id, st] : containers_) {
      if (id == owner || st.pages_resident == 0) continue;
      if (victim == nullptr ||
          std::tie(st.last_run, st.reg_seq) <
              std::tie(victim->last_run, victim->reg_seq)) {
        victim = &st;
      }
    }
    if (victim == nullptr) break;  // nothing evictable
    const std::uint64_t shortfall =
        need - (capacity_pages() - total_resident_pages_);
    const std::uint64_t take = std::min(victim->pages_resident, shortfall);
    victim->pages_resident -= take;
    total_resident_pages_ -= take;
    evicted += take;
  }

  const std::uint64_t place =
      std::min(need, capacity_pages() - total_resident_pages_);
  s.pages_resident += place;
  total_resident_pages_ += place;
  ++swap_ins_;
  const std::uint64_t moved = (place + evicted) * config_.page_bytes;
  bytes_migrated_ += moved;
  last_migration_bytes_ = moved;

  // One serial link per device: a migration that starts while another is
  // in flight queues behind it. The in-bound owner is charged the wait
  // plus its own transfer.
  const Duration transfer{static_cast<std::int64_t>(
      static_cast<double>(moved) / config_.link_bandwidth_bytes_per_s * 1e6)};
  const Time start = std::max(now, link_free_at_);
  link_free_at_ = start + transfer;
  link_busy_total_ += transfer;
  return link_free_at_ - now;
}

std::uint64_t SwapManager::AllocatedBy(const ContainerId& owner) const {
  auto it = containers_.find(owner);
  return it == containers_.end()
             ? 0
             : it->second.pages_allocated * config_.page_bytes;
}

std::uint64_t SwapManager::ResidentOf(const ContainerId& owner) const {
  auto it = containers_.find(owner);
  return it == containers_.end()
             ? 0
             : it->second.pages_resident * config_.page_bytes;
}

std::uint64_t SwapManager::SwappedOf(const ContainerId& owner) const {
  auto it = containers_.find(owner);
  if (it == containers_.end()) return 0;
  return (it->second.pages_allocated - it->second.pages_resident) *
         config_.page_bytes;
}

double SwapManager::LinkBusyFraction(Time now) const {
  if (now.count() <= 0) return 0.0;
  return std::min(1.0, ToSeconds(link_busy_total_) / ToSeconds(now));
}

std::string SwapManager::DebugString() const {
  std::ostringstream os;
  os << "swap capacity=" << capacity_bytes_
     << " page=" << config_.page_bytes
     << " allocated=" << total_allocated()
     << " resident=" << total_resident() << "\n";
  for (const auto& [id, s] : containers_) {
    os << "  " << id.value() << " allocated=" << s.pages_allocated
       << "p resident=" << s.pages_resident
       << "p last_run_us=" << s.last_run.count() << "\n";
  }
  return os.str();
}

}  // namespace ks::vgpu
