#include "vgpu/swap.hpp"

#include <algorithm>
#include <cassert>

namespace ks::vgpu {

SwapManager::SwapManager(std::uint64_t capacity_bytes,
                         double link_bandwidth_bytes_per_s)
    : capacity_bytes_(capacity_bytes),
      bandwidth_(link_bandwidth_bytes_per_s) {
  assert(capacity_bytes_ > 0);
  assert(bandwidth_ > 0);
}

Status SwapManager::Allocate(const ContainerId& owner, std::uint64_t bytes) {
  if (bytes == 0) return InvalidArgumentError("zero-byte allocation");
  State& s = containers_[owner];
  s.allocated += bytes;
  total_allocated_ += bytes;
  // Greedily place the new pages on-device while space is free; the
  // remainder starts swapped out.
  const std::uint64_t free = capacity_bytes_ - total_resident_;
  const std::uint64_t place = std::min(bytes, free);
  s.resident += place;
  total_resident_ += place;
  return Status::Ok();
}

Status SwapManager::Free(const ContainerId& owner, std::uint64_t bytes) {
  auto it = containers_.find(owner);
  if (it == containers_.end() || it->second.allocated < bytes) {
    return InvalidArgumentError("freeing more than allocated");
  }
  State& s = it->second;
  s.allocated -= bytes;
  total_allocated_ -= bytes;
  // Release resident pages first.
  const std::uint64_t from_resident = std::min(bytes, s.resident);
  s.resident -= from_resident;
  total_resident_ -= from_resident;
  return Status::Ok();
}

void SwapManager::FreeAll(const ContainerId& owner) {
  auto it = containers_.find(owner);
  if (it == containers_.end()) return;
  total_allocated_ -= it->second.allocated;
  total_resident_ -= it->second.resident;
  containers_.erase(it);
}

Duration SwapManager::MakeResident(const ContainerId& owner, Time now) {
  auto it = containers_.find(owner);
  if (it == containers_.end()) return Duration{0};
  State& s = it->second;
  s.last_run = now;
  if (s.resident >= s.allocated) return Duration{0};

  std::uint64_t need = s.allocated - s.resident;
  assert(s.allocated <= capacity_bytes_ &&
         "a single container cannot exceed physical memory");
  std::uint64_t evicted = 0;

  // Evict least-recently-running victims until the working set fits.
  while (capacity_bytes_ - total_resident_ < need) {
    State* victim = nullptr;
    for (auto& [id, st] : containers_) {
      if (id == owner || st.resident == 0) continue;
      if (victim == nullptr || st.last_run < victim->last_run) victim = &st;
    }
    if (victim == nullptr) break;  // nothing evictable
    const std::uint64_t shortfall =
        need - (capacity_bytes_ - total_resident_);
    const std::uint64_t take = std::min(victim->resident, shortfall);
    victim->resident -= take;
    total_resident_ -= take;
    evicted += take;
  }

  const std::uint64_t place =
      std::min(need, capacity_bytes_ - total_resident_);
  s.resident += place;
  total_resident_ += place;
  ++swap_ins_;
  const std::uint64_t moved = place + evicted;
  bytes_migrated_ += moved;
  return Duration{static_cast<std::int64_t>(
      static_cast<double>(moved) / bandwidth_ * 1e6)};
}

std::uint64_t SwapManager::AllocatedBy(const ContainerId& owner) const {
  auto it = containers_.find(owner);
  return it == containers_.end() ? 0 : it->second.allocated;
}

std::uint64_t SwapManager::ResidentOf(const ContainerId& owner) const {
  auto it = containers_.find(owner);
  return it == containers_.end() ? 0 : it->second.resident;
}

}  // namespace ks::vgpu
