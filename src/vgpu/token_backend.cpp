#include "vgpu/token_backend.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/log.hpp"
#include "gpu/device.hpp"

namespace ks::vgpu {

TokenBackend::TokenBackend(sim::Simulation* sim, BackendConfig config)
    : sim_(sim),
      config_(config),
      wheel_(sim, config.coalesce_window),
      tq_(config.tq) {
  assert(sim_ != nullptr);
}

void TokenBackend::RegisterDevice(const GpuUuid& device) {
  devices_.try_emplace(device);
}

Status TokenBackend::RegisterContainer(const ContainerId& container,
                                       const GpuUuid& device,
                                       const ResourceSpec& spec,
                                       TokenClient* client) {
  KS_RETURN_IF_ERROR(spec.Validate());
  if (client == nullptr) return InvalidArgumentError("null token client");
  if (containers_.count(container) > 0) {
    return AlreadyExistsError("container already registered: " +
                              container.value());
  }
  if (down_) {
    // The daemon is restarting; the frontend's connect parks until it is
    // back, then it is admitted with the reattach batch.
    if (pending_reattach_.count(container) > 0) {
      return AlreadyExistsError("container already registered: " +
                                container.value());
    }
    pending_reattach_[container] = {device, spec, client};
    return Status::Ok();
  }
  RegisterDevice(device);
  ContainerState state{config_.usage_window};
  state.device = device;
  state.spec = spec;
  state.client = client;
  containers_.emplace(container, std::move(state));
  if (Enforcing()) {
    if (gpu::GpuDevice* d = ResolveDevice(device)) {
      // Gate closed (no admitted epoch) until the first grant; the memory
      // quota is the server-side wall the bypassable frontend hook only
      // mirrors. Re-registration after a daemon restart keeps an existing
      // gate's state (EnforceTokenGate is emplace-only), so fenced epochs
      // stay fenced across the restart.
      d->EnforceTokenGate(container);
      d->SetMemoryQuota(
          container,
          static_cast<std::uint64_t>(std::llround(
              spec.gpu_mem * static_cast<double>(d->spec().memory_bytes))));
    }
  }
  return Status::Ok();
}

Status TokenBackend::UnregisterContainer(const ContainerId& container) {
  // A container dying while the daemon is down (or before its reattach
  // fires) must not be resurrected by the restart path.
  const bool was_pending = pending_reattach_.erase(container) > 0;
  auto it = containers_.find(container);
  if (it == containers_.end()) {
    if (was_pending) return Status::Ok();
    return NotFoundError("container not registered: " + container.value());
  }
  DeviceState& dev = devices_.at(it->second.device);
  const GpuUuid device_id = it->second.device;
  // Drop from the wait queue if present.
  dev.queue.erase(std::remove(dev.queue.begin(), dev.queue.end(), container),
                  dev.queue.end());
  // A reeval poll armed for a queue this unregistration just emptied would
  // dangle until it fired as a no-op; the wheel's generation stamp makes
  // the cancel safe even if the tick is already being dispatched.
  CancelIdleReeval(dev);
  if (Enforcing()) {
    // The container is gone (OOM-kill, node crash, eviction teardown):
    // its gate and quota leave the device with it. Its violation ledger
    // entry stays — unregistering is not absolution, and a requeued
    // successor under the same id inherits the record.
    if (gpu::GpuDevice* d = ResolveDevice(device_id)) {
      d->LiftTokenGate(container);
      d->ClearMemoryQuota(container);
    }
  }
  if (config_.spatial_enabled) {
    auto hit = dev.holds.find(container);
    const bool held = hit != dev.holds.end();
    if (held) {
      if (hit->second.expiry_timer != sim::kInvalidTimer) {
        wheel_.Cancel(hit->second.expiry_timer);
      }
      if (hit->second.fence_timer != sim::kInvalidTimer) {
        wheel_.Cancel(hit->second.fence_timer);
      }
      dev.groups_held -= hit->second.groups;
      dev.holds.erase(hit);
    }
    containers_.erase(it);
    if (held) TryGrantSpatial(device_id);
    return Status::Ok();
  }
  const bool was_holder = dev.holder.has_value() && *dev.holder == container;
  if (was_holder) {
    if (dev.expiry_timer != sim::kInvalidTimer) {
      wheel_.Cancel(dev.expiry_timer);
      dev.expiry_timer = sim::kInvalidTimer;
    }
    if (dev.fence_timer != sim::kInvalidTimer) {
      wheel_.Cancel(dev.fence_timer);
      dev.fence_timer = sim::kInvalidTimer;
    }
    dev.holder.reset();
    dev.token_valid = false;
    dev.grant_in_flight = false;
  }
  containers_.erase(it);
  if (was_holder) TryGrant(device_id);
  return Status::Ok();
}

Status TokenBackend::UpdateSpec(const ContainerId& container,
                                const ResourceSpec& spec) {
  KS_RETURN_IF_ERROR(spec.Validate());
  auto it = containers_.find(container);
  if (it == containers_.end()) {
    return NotFoundError("container not registered: " + container.value());
  }
  it->second.spec.gpu_request = spec.gpu_request;
  it->second.spec.gpu_limit = spec.gpu_limit;
  // A raised limit may unblock throttled waiters right away.
  TryGrant(it->second.device);
  return Status::Ok();
}

Status TokenBackend::RequestToken(const ContainerId& container) {
  auto it = containers_.find(container);
  if (it == containers_.end()) {
    return NotFoundError("container not registered: " + container.value());
  }
  ContainerState& state = it->second;
  DeviceState& dev = devices_.at(state.device);
  if (config_.spatial_enabled) {
    auto hit = dev.holds.find(container);
    if (hit != dev.holds.end() &&
        (hit->second.valid || hit->second.in_flight)) {
      return Status::Ok();  // already holding (or being granted) a token
    }
  } else if (dev.holder.has_value() && *dev.holder == container &&
             (dev.token_valid || dev.grant_in_flight)) {
    return Status::Ok();  // already holding (or being granted) a valid token
  }
  // An expired holder may queue BEFORE it releases: its re-request must be
  // on the table when the release triggers the next grant decision, or a
  // two-container device degenerates to strict alternation and gpu_request
  // pinning never engages (the releaser would always be absent from the
  // queue the policy chooses from).
  if (state.queued) return Status::Ok();
  state.queued = true;
  state.enqueue_seq = next_seq_++;
  dev.queue.push_back(container);
  TryGrant(state.device);
  return Status::Ok();
}

Status TokenBackend::ReleaseToken(const ContainerId& container) {
  auto it = containers_.find(container);
  if (it == containers_.end()) {
    return NotFoundError("container not registered: " + container.value());
  }
  ContainerState& state = it->second;
  DeviceState& dev = devices_.at(state.device);
  if (config_.spatial_enabled) {
    auto hit = dev.holds.find(container);
    if (hit == dev.holds.end()) {
      return FailedPreconditionError("container does not hold the token: " +
                                     container.value());
    }
    const Time now = sim_->Now();
    state.usage.Stop(now);
    if (now > state.grant_time) {
      state.stats.held_total += now - state.grant_time;
    }
    Hold& hold = hit->second;
    if (!hold.valid && !hold.in_flight && now > hold.expiry) {
      state.stats.overrun_total += now - hold.expiry;
    }
    if (hold.expiry_timer != sim::kInvalidTimer) {
      wheel_.Cancel(hold.expiry_timer);
    }
    if (hold.fence_timer != sim::kInvalidTimer) {
      wheel_.Cancel(hold.fence_timer);
    }
    dev.groups_held -= hold.groups;
    dev.holds.erase(hit);
    if (Enforcing()) {
      // Clean close of the gate: submits between this release and the
      // next grant are rejected (that is the flood containment), without
      // counting an overstay against a polite releaser.
      if (gpu::GpuDevice* d = ResolveDevice(state.device)) {
        d->FenceTokenEpoch(container);
      }
    }
    RecordGrantTrace("release", container, now);
    TryGrantSpatial(state.device);
    return Status::Ok();
  }
  if (!dev.holder.has_value() || *dev.holder != container) {
    return FailedPreconditionError("container does not hold the token: " +
                                   container.value());
  }
  state.usage.Stop(sim_->Now());
  // Hold accounting: total hold time and the slice past the quota deadline
  // (overrun from non-preemptive kernels).
  const Time now = sim_->Now();
  if (now > state.grant_time) {
    state.stats.held_total += now - state.grant_time;
  }
  if (!dev.token_valid && now > dev.expiry) {
    state.stats.overrun_total += now - dev.expiry;
  }
  if (dev.expiry_timer != sim::kInvalidTimer) {
    wheel_.Cancel(dev.expiry_timer);
    dev.expiry_timer = sim::kInvalidTimer;
  }
  if (dev.fence_timer != sim::kInvalidTimer) {
    wheel_.Cancel(dev.fence_timer);
    dev.fence_timer = sim::kInvalidTimer;
  }
  dev.holder.reset();
  dev.token_valid = false;
  if (Enforcing()) {
    if (gpu::GpuDevice* d = ResolveDevice(state.device)) {
      d->FenceTokenEpoch(container);
    }
  }
  RecordGrantTrace("release", container, now);
  TryGrant(state.device);
  return Status::Ok();
}

TokenBackend::ContainerStats TokenBackend::StatsOf(
    const ContainerId& container) const {
  auto it = containers_.find(container);
  if (it == containers_.end()) return {};
  return it->second.stats;
}

Status TokenBackend::ExtendQuota(const ContainerId& container,
                                 Duration extra) {
  auto it = containers_.find(container);
  if (it == containers_.end()) {
    return NotFoundError("container not registered: " + container.value());
  }
  DeviceState& dev = devices_.at(it->second.device);
  const GpuUuid device_id = it->second.device;
  if (config_.spatial_enabled) {
    auto hit = dev.holds.find(container);
    if (hit == dev.holds.end() || !hit->second.valid) {
      return FailedPreconditionError("container holds no valid token: " +
                                     container.value());
    }
    if (extra.count() <= 0) return Status::Ok();
    Hold& hold = hit->second;
    wheel_.Cancel(hold.expiry_timer);
    hold.expiry += extra;
    const ContainerId holder = container;
    hold.expiry_timer = wheel_.ScheduleAt(hold.expiry,
                                          [this, device_id, holder] {
      OnHoldExpiry(device_id, holder);
    });
    if (hold.fence_timer != sim::kInvalidTimer) {
      wheel_.Cancel(hold.fence_timer);
      hold.fence_timer = wheel_.ScheduleAt(
          hold.expiry + config_.enforcement.fence_grace,
          [this, device_id, holder] {
            OnHoldFenceDeadline(device_id, holder);
          });
    }
    return Status::Ok();
  }
  if (!dev.holder.has_value() || *dev.holder != container ||
      !dev.token_valid) {
    return FailedPreconditionError("container holds no valid token: " +
                                   container.value());
  }
  if (extra.count() <= 0) return Status::Ok();
  wheel_.Cancel(dev.expiry_timer);
  dev.expiry += extra;
  dev.expiry_timer = wheel_.ScheduleAt(dev.expiry, [this, device_id] {
    OnExpiry(device_id);
  });
  if (dev.fence_timer != sim::kInvalidTimer) {
    wheel_.Cancel(dev.fence_timer);
    dev.fence_timer = wheel_.ScheduleAt(
        dev.expiry + config_.enforcement.fence_grace,
        [this, device_id] { OnFenceDeadline(device_id); });
  }
  return Status::Ok();
}

double TokenBackend::UsageOf(const ContainerId& container) const {
  auto it = containers_.find(container);
  if (it == containers_.end()) return 0.0;
  return it->second.usage.Usage(sim_->Now());
}

std::optional<ContainerId> TokenBackend::HolderOf(const GpuUuid& device) const {
  auto it = devices_.find(device);
  if (it == devices_.end()) return std::nullopt;
  if (config_.spatial_enabled && !it->second.holds.empty()) {
    return it->second.holds.begin()->first;
  }
  return it->second.holder;
}

std::size_t TokenBackend::ActiveHolders(const GpuUuid& device) const {
  auto it = devices_.find(device);
  if (it == devices_.end()) return 0;
  if (config_.spatial_enabled) return it->second.holds.size();
  return it->second.holder.has_value() ? 1 : 0;
}

std::size_t TokenBackend::QueueLength(const GpuUuid& device) const {
  auto it = devices_.find(device);
  if (it == devices_.end()) return 0;
  return it->second.queue.size();
}

void TokenBackend::ScheduleReeval(DeviceState& dev, const GpuUuid& device_id) {
  if (dev.reeval_timer != sim::kInvalidTimer) return;
  dev.reeval_timer = wheel_.ScheduleAfter(config_.reeval_period, [this,
                                                                  device_id] {
    auto it = devices_.find(device_id);
    if (it == devices_.end()) return;
    it->second.reeval_timer = sim::kInvalidTimer;
    TryGrant(device_id);
  });
}

void TokenBackend::CancelIdleReeval(DeviceState& dev) {
  if (dev.queue.empty() && dev.reeval_timer != sim::kInvalidTimer) {
    wheel_.Cancel(dev.reeval_timer);
    dev.reeval_timer = sim::kInvalidTimer;
  }
}

void TokenBackend::TryGrant(const GpuUuid& device_id) {
  if (config_.spatial_enabled) {
    TryGrantSpatial(device_id);
    return;
  }
  DeviceState& dev = devices_.at(device_id);
  if (dev.holder.has_value() || dev.grant_in_flight) return;
  if (dev.queue.empty()) return;

  const Time now = sim_->Now();

  // Step 1: filter requesters already at their gpu_limit. Usage and spec
  // go through the enforcement lens: measured (not self-reported)
  // attribution, and clamped limits for repeat offenders.
  std::vector<ContainerId> eligible;
  for (const ContainerId& c : dev.queue) {
    const ContainerState& s = containers_.at(c);
    if (SchedulingUsage(s, now) < EffectiveLimit(c, s)) eligible.push_back(c);
  }
  if (eligible.empty()) {
    // Everyone is throttled; usage decays as the window slides, so check
    // again shortly.
    ScheduleReeval(dev, device_id);
    return;
  }

  // Step 2: prefer the container farthest below its guaranteed minimum.
  const ContainerId* pick = nullptr;
  double best_deficit = 0.0;
  std::uint64_t best_seq = 0;
  for (const ContainerId& c : eligible) {
    const ContainerState& s = containers_.at(c);
    const double deficit = EffectiveRequest(c, s) - SchedulingUsage(s, now);
    if (deficit <= 0.0) continue;
    if (pick == nullptr || deficit > best_deficit ||
        (deficit == best_deficit && s.enqueue_seq < best_seq)) {
      pick = &c;
      best_deficit = deficit;
      best_seq = s.enqueue_seq;
    }
  }

  // Step 3: all requesters have met their minimum — grant to the lowest
  // current usage so residual capacity is divided fairly.
  if (pick == nullptr) {
    double best_usage = 0.0;
    for (const ContainerId& c : eligible) {
      const ContainerState& s = containers_.at(c);
      const double usage = SchedulingUsage(s, now);
      if (pick == nullptr || usage < best_usage ||
          (usage == best_usage && s.enqueue_seq < best_seq)) {
        pick = &c;
        best_usage = usage;
        best_seq = s.enqueue_seq;
      }
    }
  }

  assert(pick != nullptr);
  GrantTo(dev, device_id, *pick);
}

void TokenBackend::GrantTo(DeviceState& dev, const GpuUuid& device_id,
                           const ContainerId& container) {
  ContainerState& state = containers_.at(container);
  dev.queue.erase(std::remove(dev.queue.begin(), dev.queue.end(), container),
                  dev.queue.end());
  state.queued = false;
  dev.holder = container;
  dev.grant_in_flight = true;
  ++grants_;
  peak_holders_ = std::max<std::size_t>(peak_holders_, 1);

  // The hand-off costs one exchange latency, during which the device is
  // idle; the token is valid from the end of the exchange for one quota.
  // The epoch guard is belt-and-braces here: a restart also invalidates
  // this wheel timer outright.
  const ContainerId granted = container;
  wheel_.ScheduleAfter(config_.exchange_latency, [this, device_id, granted,
                                                  epoch = epoch_] {
    if (epoch != epoch_) return;  // daemon restarted mid-exchange
    auto dit = devices_.find(device_id);
    if (dit == devices_.end()) return;
    DeviceState& d = dit->second;
    if (!d.holder.has_value() || *d.holder != granted) return;  // unregistered
    auto cit = containers_.find(granted);
    if (cit == containers_.end()) return;
    d.grant_in_flight = false;
    d.token_valid = true;
    // While the thrash detector has this device in TQ rotation the grant
    // carries the nvshare-style exclusive quantum instead of the normal
    // quota — long residency bursts instead of a migration per hand-off.
    d.expiry = sim_->Now() + GrantQuotaFor(device_id);
    cit->second.grant_time = sim_->Now();
    ++cit->second.stats.grants;
    cit->second.usage.Start(sim_->Now());
    d.expiry_timer = wheel_.ScheduleAt(d.expiry, [this, device_id] {
      OnExpiry(device_id);
    });
    if (Enforcing()) {
      // Open the device gate for this grant only: a fresh monotonic epoch
      // is admitted, and the overstay deadline is armed one fence_grace
      // past the quota so a polite overrun (one non-preemptive kernel)
      // never trips it.
      if (gpu::GpuDevice* gd = ResolveDevice(device_id)) {
        gd->AdmitTokenEpoch(granted, ++token_epoch_);
      }
      d.fence_timer = wheel_.ScheduleAt(
          d.expiry + config_.enforcement.fence_grace,
          [this, device_id] { OnFenceDeadline(device_id); });
    }
    RecordGrantTrace("grant", granted, d.expiry);
    cit->second.client->OnTokenGranted(d.expiry);
  });
}

void TokenBackend::Restart() {
  ++epoch_;  // invalidate in-flight grant hand-offs
  ++restarts_;
  down_ = true;
  RecordGrantTrace("restart", ContainerId(""), sim_->Now());
  // All per-device token state dies with the daemon. One wholesale wheel
  // invalidation replaces the per-timer cancels: every outstanding timer
  // id of the old incarnation goes stale at once (generation stamps), so
  // nothing can fire into the new one.
  wheel_.InvalidateAll();
  for (auto& [device_id, dev] : devices_) {
    if (Enforcing()) {
      // Every outstanding token dies with the daemon: fence the holders'
      // epochs at the device so nothing can submit on a zombie token
      // during the downtime. Grants of the new incarnation admit fresh
      // (still-monotonic) epochs. Per-owner fencing is order-independent,
      // so iterating the unordered device map here is deterministic.
      if (gpu::GpuDevice* d = ResolveDevice(device_id)) {
        if (dev.holder.has_value()) d->FenceTokenEpoch(*dev.holder);
        for (const auto& entry : dev.holds) {
          d->FenceTokenEpoch(entry.first);
        }
      }
    }
    dev.expiry_timer = sim::kInvalidTimer;
    dev.reeval_timer = sim::kInvalidTimer;
    dev.fence_timer = sim::kInvalidTimer;
    dev.queue.clear();
    dev.holder.reset();
    dev.token_valid = false;
    dev.grant_in_flight = false;
    dev.holds.clear();
    dev.groups_held = 0;
  }
  // Registered frontends become reattach candidates: their sockets
  // reconnect once the daemon is back. Sliding-window usage is lost — the
  // rebuilt daemon starts everyone from a clean slate.
  for (const auto& [container, state] : containers_) {
    pending_reattach_[container] = {state.device, state.spec, state.client};
  }
  containers_.clear();
  // The come-back deadline re-arms the wheel for the new incarnation.
  wheel_.ScheduleAfter(config_.restart_downtime, [this, epoch = epoch_] {
    if (epoch != epoch_) return;  // restarted again before coming up
    down_ = false;
    // pending_reattach_ is a sorted map — deterministic reattach order.
    auto batch = std::move(pending_reattach_);
    pending_reattach_.clear();
    for (const auto& [container, info] : batch) {
      if (!RegisterContainer(container, info.device, info.spec, info.client)
               .ok()) {
        continue;
      }
      ++reattached_;
      info.client->OnBackendRestart();
    }
  });
}

int TokenBackend::ClaimOf(const ContainerState& state) const {
  // No slice claim = the whole GPU: the container holds every SM group,
  // which reduces spatial mode to one-token-at-a-time for it.
  if (state.spec.slice_groups <= 0) return config_.sm_groups;
  return std::min(state.spec.slice_groups, config_.sm_groups);
}

void TokenBackend::TryGrantSpatial(const GpuUuid& device_id) {
  DeviceState& dev = devices_.at(device_id);
  // Grants loop until space or eligibility runs out: one release can admit
  // several small-slice waiters in the same decision.
  while (!dev.queue.empty()) {
    const Time now = sim_->Now();
    const int free = config_.sm_groups - dev.groups_held;

    // Space filter: claims that don't fit the free SM groups wait for a
    // release (not a reeval poll — window decay can't free groups). With
    // every claim full-GPU this reduces to the temporal "holder exists →
    // return" early-out. A queued container that still has a hold is a
    // re-requester racing its own release (the frontend re-requests before
    // releasing); granting it now would stack a second hold on the same
    // entry, which the imminent release would erase — dropping the grant
    // and leaking its groups. Its release re-enters this function and
    // grants it a fresh hold then.
    std::vector<ContainerId> space_eligible;
    for (const ContainerId& c : dev.queue) {
      if (dev.holds.count(c) > 0) continue;
      if (ClaimOf(containers_.at(c)) <= free) space_eligible.push_back(c);
    }
    if (space_eligible.empty()) return;

    // Step 1: filter requesters already at their gpu_limit (measured
    // attribution + clamped specs, as in the temporal path).
    std::vector<ContainerId> eligible;
    for (const ContainerId& c : space_eligible) {
      const ContainerState& s = containers_.at(c);
      if (SchedulingUsage(s, now) < EffectiveLimit(c, s)) {
        eligible.push_back(c);
      }
    }
    if (eligible.empty()) {
      // Everyone who fits is throttled; usage decays as the window
      // slides, so check again shortly.
      ScheduleReeval(dev, device_id);
      return;
    }

    // Step 2: prefer the container farthest below its guaranteed minimum.
    const ContainerId* pick = nullptr;
    double best_deficit = 0.0;
    std::uint64_t best_seq = 0;
    for (const ContainerId& c : eligible) {
      const ContainerState& s = containers_.at(c);
      const double deficit = EffectiveRequest(c, s) - SchedulingUsage(s, now);
      if (deficit <= 0.0) continue;
      if (pick == nullptr || deficit > best_deficit ||
          (deficit == best_deficit && s.enqueue_seq < best_seq)) {
        pick = &c;
        best_deficit = deficit;
        best_seq = s.enqueue_seq;
      }
    }

    // Step 3: all requesters met their minimum — lowest usage wins.
    if (pick == nullptr) {
      double best_usage = 0.0;
      for (const ContainerId& c : eligible) {
        const ContainerState& s = containers_.at(c);
        const double usage = SchedulingUsage(s, now);
        if (pick == nullptr || usage < best_usage ||
            (usage == best_usage && s.enqueue_seq < best_seq)) {
          pick = &c;
          best_usage = usage;
          best_seq = s.enqueue_seq;
        }
      }
    }

    assert(pick != nullptr);
    GrantSpatialTo(dev, device_id, *pick);
  }
}

void TokenBackend::GrantSpatialTo(DeviceState& dev, const GpuUuid& device_id,
                                  const ContainerId& container) {
  ContainerState& state = containers_.at(container);
  dev.queue.erase(std::remove(dev.queue.begin(), dev.queue.end(), container),
                  dev.queue.end());
  state.queued = false;
  Hold& hold = dev.holds[container];
  hold.in_flight = true;
  hold.valid = false;
  hold.groups = ClaimOf(state);
  dev.groups_held += hold.groups;
  peak_holders_ = std::max(peak_holders_, dev.holds.size());
  ++grants_;

  // Same exchange protocol as the temporal GrantTo, per hold: the token
  // becomes valid after one exchange latency, for one quota.
  const ContainerId granted = container;
  wheel_.ScheduleAfter(config_.exchange_latency, [this, device_id, granted,
                                                  epoch = epoch_] {
    if (epoch != epoch_) return;  // daemon restarted mid-exchange
    auto dit = devices_.find(device_id);
    if (dit == devices_.end()) return;
    auto hit = dit->second.holds.find(granted);
    if (hit == dit->second.holds.end()) return;  // unregistered
    auto cit = containers_.find(granted);
    if (cit == containers_.end()) return;
    Hold& h = hit->second;
    h.in_flight = false;
    h.valid = true;
    h.expiry = sim_->Now() + config_.quota;
    cit->second.grant_time = sim_->Now();
    ++cit->second.stats.grants;
    cit->second.usage.Start(sim_->Now());
    h.expiry_timer = wheel_.ScheduleAt(h.expiry, [this, device_id, granted] {
      OnHoldExpiry(device_id, granted);
    });
    if (Enforcing()) {
      if (gpu::GpuDevice* gd = ResolveDevice(device_id)) {
        gd->AdmitTokenEpoch(granted, ++token_epoch_);
      }
      h.fence_timer = wheel_.ScheduleAt(
          h.expiry + config_.enforcement.fence_grace,
          [this, device_id, granted] {
            OnHoldFenceDeadline(device_id, granted);
          });
    }
    RecordGrantTrace("grant", granted, h.expiry);
    cit->second.client->OnTokenGranted(h.expiry);
  });
}

void TokenBackend::OnHoldExpiry(const GpuUuid& device_id,
                                const ContainerId& container) {
  auto dit = devices_.find(device_id);
  if (dit == devices_.end()) return;
  auto hit = dit->second.holds.find(container);
  if (hit == dit->second.holds.end()) return;
  hit->second.expiry_timer = sim::kInvalidTimer;
  hit->second.valid = false;
  auto it = containers_.find(container);
  if (it == containers_.end()) return;
  // As in the temporal path: the holder keeps its groups (and keeps
  // accruing usage) until it releases — kernels are non-preemptive.
  RecordGrantTrace("expire", container, sim_->Now());
  it->second.client->OnTokenExpired();
}

void TokenBackend::OnExpiry(const GpuUuid& device_id) {
  DeviceState& dev = devices_.at(device_id);
  dev.expiry_timer = sim::kInvalidTimer;
  if (!dev.holder.has_value()) return;
  dev.token_valid = false;
  auto it = containers_.find(*dev.holder);
  if (it == containers_.end()) return;
  // The holder keeps the token (and keeps accruing usage) until it releases
  // — its in-flight kernel is non-preemptive.
  RecordGrantTrace("expire", *dev.holder, sim_->Now());
  it->second.client->OnTokenExpired();
}

// --- Isolation enforcement ----------------------------------------------

gpu::GpuDevice* TokenBackend::ResolveDevice(const GpuUuid& device) const {
  if (!device_resolver_) return nullptr;
  return device_resolver_(device);
}

bool TokenBackend::IsClamped(const ContainerId& container) const {
  const auto it = violations_.find(container);
  return it != violations_.end() && it->second.clamped;
}

double TokenBackend::SchedulingUsage(const ContainerState& state,
                                     Time now) const {
  const double measured = state.usage.Usage(now);
  if (!Enforcing() && state.claimed_usage.has_value()) {
    // Without enforcement the daemon trusts the frontend's self-reported
    // sampler value — an under-reporter looks permanently starved and
    // wins every max-deficit / lowest-usage decision. This is the hole
    // bench_study_isolation demonstrates; polite frontends never report,
    // so pre-enforcement behavior is byte-identical.
    return std::min(measured, *state.claimed_usage);
  }
  return measured;
}

double TokenBackend::EffectiveLimit(const ContainerId& container,
                                    const ContainerState& state) const {
  if (Enforcing() && IsClamped(container)) {
    return std::min(state.spec.gpu_limit, config_.enforcement.clamp_limit);
  }
  return state.spec.gpu_limit;
}

double TokenBackend::EffectiveRequest(const ContainerId& container,
                                      const ContainerState& state) const {
  // A clamped tenant keeps no guaranteed minimum: it only sees residual
  // capacity, below its clamped limit.
  if (Enforcing() && IsClamped(container)) return 0.0;
  return state.spec.gpu_request;
}

void TokenBackend::RecordViolation(const ContainerId& container,
                                   ViolationKind kind) {
  if (!Enforcing()) return;
  IsolationStats& s = violations_[container];
  switch (kind) {
    case ViolationKind::kOverstay: ++s.overstays; break;
    case ViolationKind::kFencedSubmit: ++s.fenced_submits; break;
    case ViolationKind::kMemoryQuota: ++s.memory_violations; break;
    case ViolationKind::kMetricsSpoof: ++s.spoofs; break;
  }
  ++violations_total_;
  const EnforcementConfig& e = config_.enforcement;
  if (!s.clamped && e.clamp_threshold > 0 &&
      s.total() >= static_cast<std::uint64_t>(e.clamp_threshold)) {
    s.clamped = true;
    ++clampdowns_total_;
  }
  if (!s.evicted && e.evict_threshold > 0 &&
      s.total() >= static_cast<std::uint64_t>(e.evict_threshold)) {
    s.evicted = true;
    ++evictions_total_;
    if (eviction_fn_) {
      // Deferred one event: violations surface deep inside submit paths
      // (device -> violation fn -> here) and eviction tears the whole
      // workload stack down — re-entering that from under a kernel submit
      // would destroy the very frontend making the call.
      const std::string reason =
          std::string("isolation violations (last: ") + ViolationKindName(kind) +
          ")";
      sim_->ScheduleAfter(Duration{0}, [this, container, reason] {
        if (eviction_fn_) eviction_fn_(container, reason);
      });
    }
  }
}

TokenBackend::IsolationStats TokenBackend::IsolationOf(
    const ContainerId& container) const {
  const auto it = violations_.find(container);
  if (it == violations_.end()) return {};
  return it->second;
}

std::vector<std::pair<ContainerId, TokenBackend::IsolationStats>>
TokenBackend::IsolationLedger() const {
  return {violations_.begin(), violations_.end()};
}

void TokenBackend::ReportUsage(const ContainerId& container, double claimed) {
  auto it = containers_.find(container);
  if (it == containers_.end()) return;
  it->second.claimed_usage = std::max(0.0, claimed);
  if (Enforcing()) {
    // Server-side attribution: the claim never enters scheduling; it is
    // only checked against the daemon's own measurement for under-reports.
    const EnforcementConfig& e = config_.enforcement;
    const double measured = it->second.usage.Usage(sim_->Now());
    if (measured > e.spoof_floor &&
        claimed < measured * (1.0 - e.spoof_tolerance)) {
      RecordViolation(container, ViolationKind::kMetricsSpoof);
    }
  }
}

// --- SLO admission control ------------------------------------------------

void TokenBackend::SetServiceSlo(const ContainerId& container,
                                 Duration slo_p99) {
  if (!config_.admission.enabled) return;
  auto [it, inserted] =
      serving_.try_emplace(container, config_.admission.window);
  it->second.slo = slo_p99;
}

void TokenBackend::ReportRequestLatency(const ContainerId& container, Time now,
                                        Duration latency) {
  if (!config_.admission.enabled) return;
  auto it = serving_.find(container);
  if (it == serving_.end()) return;
  it->second.digest.Record(now, latency);
}

AdmissionDecision TokenBackend::AdmitRequest(const ContainerId& container,
                                             Time now) {
  if (!config_.admission.enabled) return AdmissionDecision::kAdmit;
  auto it = serving_.find(container);
  if (it == serving_.end() || it->second.slo.count() <= 0) {
    return AdmissionDecision::kAdmit;
  }
  ServingState& state = it->second;
  if (state.digest.WindowCount(now) < config_.admission.min_samples) {
    return AdmissionDecision::kAdmit;  // cold start: no trustworthy estimate
  }
  const Duration p99 = state.digest.Quantile(now, 0.99);
  if (ToSeconds(p99) < config_.admission.headroom * ToSeconds(state.slo)) {
    return AdmissionDecision::kAdmit;
  }
  if (config_.admission.policy == AdmissionConfig::Policy::kQueue) {
    ++state.queued;
    ++admission_queued_;
    return AdmissionDecision::kQueue;
  }
  ++state.sheds;
  ++admission_sheds_;
  return AdmissionDecision::kShed;
}

double TokenBackend::ObservedP99Of(const ContainerId& container, Time now) {
  auto it = serving_.find(container);
  if (it == serving_.end()) return 0.0;
  return it->second.digest.QuantileSeconds(now, 0.99);
}

// --- Memory oversubscription (nvshare-TQ) --------------------------------

Duration TokenBackend::GrantQuotaFor(const GpuUuid& device_id) {
  if (!config_.tq.enabled) return config_.quota;
  return tq_.Engaged(device_id, sim_->Now()) ? config_.tq.quantum
                                             : config_.quota;
}

void TokenBackend::ReportSwapBytes(const ContainerId& container,
                                   std::uint64_t bytes) {
  if (!config_.tq.enabled || bytes == 0) return;
  auto it = containers_.find(container);
  if (it == containers_.end()) return;
  tq_.OnSwapBytes(it->second.device, bytes, sim_->Now());
}

void TokenBackend::OnFenceDeadline(const GpuUuid& device_id) {
  auto dit = devices_.find(device_id);
  if (dit == devices_.end()) return;
  DeviceState& dev = dit->second;
  dev.fence_timer = sim::kInvalidTimer;
  // A clean release or an ExtendQuota re-arm cancels this timer, so firing
  // with a valid token (or no holder) means a stale tick — ignore it.
  if (!dev.holder.has_value() || dev.token_valid) return;
  const ContainerId container = *dev.holder;
  auto cit = containers_.find(container);
  if (cit == containers_.end()) return;
  ContainerState& state = cit->second;
  const Time now = sim_->Now();
  // The holder sat on an expired token a full fence_grace past the quota:
  // declare the overstay, fence its epoch at the device (in-flight
  // kernels finish, nothing new is admitted), and reclaim the token so
  // polite waiters stop starving.
  state.usage.Stop(now);
  if (now > state.grant_time) {
    state.stats.held_total += now - state.grant_time;
  }
  if (now > dev.expiry) {
    state.stats.overrun_total += now - dev.expiry;
  }
  if (gpu::GpuDevice* d = ResolveDevice(device_id)) {
    d->FenceTokenEpoch(container);
  }
  dev.holder.reset();
  dev.token_valid = false;
  dev.grant_in_flight = false;
  RecordGrantTrace("fence", container, now);
  RecordViolation(container, ViolationKind::kOverstay);
  TryGrant(device_id);
}

void TokenBackend::OnHoldFenceDeadline(const GpuUuid& device_id,
                                       const ContainerId& container) {
  auto dit = devices_.find(device_id);
  if (dit == devices_.end()) return;
  DeviceState& dev = dit->second;
  auto hit = dev.holds.find(container);
  if (hit == dev.holds.end()) return;
  Hold& hold = hit->second;
  hold.fence_timer = sim::kInvalidTimer;
  if (hold.valid || hold.in_flight) return;  // stale tick
  auto cit = containers_.find(container);
  if (cit == containers_.end()) return;
  ContainerState& state = cit->second;
  const Time now = sim_->Now();
  state.usage.Stop(now);
  if (now > state.grant_time) {
    state.stats.held_total += now - state.grant_time;
  }
  if (now > hold.expiry) {
    state.stats.overrun_total += now - hold.expiry;
  }
  if (gpu::GpuDevice* d = ResolveDevice(device_id)) {
    d->FenceTokenEpoch(container);
  }
  dev.groups_held -= hold.groups;
  dev.holds.erase(hit);
  RecordGrantTrace("fence", container, now);
  RecordViolation(container, ViolationKind::kOverstay);
  TryGrantSpatial(device_id);
}

}  // namespace ks::vgpu
