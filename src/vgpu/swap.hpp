#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/status.hpp"
#include "common/time.hpp"

namespace ks::vgpu {

/// Knobs for one device's over-commitment model. Defaults match the
/// pre-page-table behavior: 2 MiB pages (CUDA large-page granularity, and
/// every allocation in the test corpus is a multiple of it), a
/// PCIe-gen3-ish link, and an unbounded host backing store.
struct SwapConfig {
  /// Residency granularity. Allocations round up to whole pages.
  std::uint64_t page_bytes = 2ull << 20;
  /// Effective host<->device migration rate for this device's link.
  double link_bandwidth_bytes_per_s = 12e9;
  /// Upper bound on total allocation as a multiple of physical capacity
  /// (e.g. 2.0 allows 2x device memory in aggregate). 0 means unbounded,
  /// the legacy behavior.
  double oversubscription_factor = 0.0;
};

/// Cluster-level switch for the over-commitment extension. Off by default:
/// frontends keep the strict paper-§4.5 quota behavior, no SwapManager is
/// created, and every existing trace is byte-identical. When enabled, the
/// workload host wires each KubeShare container to its device's shared
/// SwapManager built from `swap`; pair with
/// KubeShareConfig::allow_memory_overcommit so the scheduler admits
/// over-committed placements, and with BackendConfig::tq for the
/// nvshare-style anti-thrashing rotation.
struct OversubscriptionConfig {
  bool enabled = false;
  SwapConfig swap;
};

/// GPUswap-style memory over-commitment for one device (the extension the
/// paper points at in §4.5: "there are some existing approaches [4,19,32]
/// to support memory over-commitment, and our work can be integrated with
/// these solutions").
///
/// Containers may allocate more, in aggregate, than physical device
/// memory (bounded by `SwapConfig::oversubscription_factor` when set). A
/// container's pages must be resident while it runs; bringing them in
/// evicts the least-recently-running containers' pages to host memory,
/// and the migration time (bytes moved over the host-device link) is
/// charged to the in-bound container — the "performance overhead from the
/// memory swapping operations due to the limited memory bandwidth" the
/// paper warns about.
///
/// Residency is tracked at page granularity. The host<->device link is a
/// shared serial resource: concurrent migrations queue behind each other,
/// so the charged time for a swap-in is queue wait + transfer time at the
/// nominal link rate. Eviction picks the least-recently-run owner; owners
/// that never ran tie-break by registration order, so a sweep's results
/// do not depend on container-id spellings or map iteration order.
class SwapManager {
 public:
  /// `capacity_bytes` is the physical device memory.
  SwapManager(std::uint64_t capacity_bytes, SwapConfig config);

  /// Legacy convenience ctor: default page size, unbounded backing store.
  explicit SwapManager(std::uint64_t capacity_bytes,
                       double link_bandwidth_bytes_per_s = 12e9);

  std::uint64_t capacity() const { return capacity_bytes_; }
  std::uint64_t page_bytes() const { return config_.page_bytes; }
  const SwapConfig& config() const { return config_; }

  /// Allocates `bytes` (rounded up to whole pages) for `owner`. The pages
  /// land resident while space is free, otherwise swapped-out (they will
  /// be migrated in when the owner runs). Fails for zero-byte requests
  /// and, when an oversubscription factor is configured, for requests
  /// that would push total allocation past capacity x factor.
  Status Allocate(const ContainerId& owner, std::uint64_t bytes);

  /// Releases `bytes` (rounded up to whole pages) of `owner`'s
  /// allocation, resident pages first.
  Status Free(const ContainerId& owner, std::uint64_t bytes);

  /// Drops every allocation of `owner`.
  void FreeAll(const ContainerId& owner);

  /// Makes all of `owner`'s pages resident, evicting other containers'
  /// pages (least-recently-run first, registration order among never-run
  /// owners) as needed. Returns the time charged to the in-bound owner:
  /// link queue wait plus (bytes swapped in + bytes evicted) / link
  /// bandwidth. Also stamps `owner` as most recently run at `now`.
  Duration MakeResident(const ContainerId& owner, Time now);

  std::uint64_t AllocatedBy(const ContainerId& owner) const;
  std::uint64_t ResidentOf(const ContainerId& owner) const;
  std::uint64_t SwappedOf(const ContainerId& owner) const;
  std::uint64_t total_allocated() const {
    return total_allocated_pages_ * config_.page_bytes;
  }
  std::uint64_t total_resident() const {
    return total_resident_pages_ * config_.page_bytes;
  }
  std::uint64_t total_swapped() const {
    return total_allocated() - total_resident();
  }
  std::uint64_t swap_ins() const { return swap_ins_; }
  std::uint64_t bytes_migrated() const { return bytes_migrated_; }
  /// Bytes moved by the most recent MakeResident call (0 when the working
  /// set was already resident) — the per-hand-off swap traffic callers
  /// report to thrash detection.
  std::uint64_t last_migration_bytes() const { return last_migration_bytes_; }
  /// Wall time the link spent transferring (excludes queue wait).
  Duration link_busy_total() const { return link_busy_total_; }
  /// Fraction of [0, now] the link spent transferring.
  double LinkBusyFraction(Time now) const;

  /// Deterministic one-line-per-owner picture of the residency state,
  /// for crash-rebuild byte-equality checks.
  std::string DebugString() const;

 private:
  struct State {
    std::uint64_t pages_allocated = 0;
    std::uint64_t pages_resident = 0;
    Time last_run{0};
    /// First-registration order, the eviction tie-break among owners that
    /// have never run (all `last_run == 0`).
    std::uint64_t reg_seq = 0;
  };

  std::uint64_t PagesFor(std::uint64_t bytes) const {
    return (bytes + config_.page_bytes - 1) / config_.page_bytes;
  }
  std::uint64_t capacity_pages() const {
    return capacity_bytes_ / config_.page_bytes;
  }

  std::uint64_t capacity_bytes_;
  SwapConfig config_;
  std::map<ContainerId, State> containers_;
  std::uint64_t next_reg_seq_ = 0;
  std::uint64_t total_allocated_pages_ = 0;
  std::uint64_t total_resident_pages_ = 0;
  std::uint64_t swap_ins_ = 0;
  std::uint64_t bytes_migrated_ = 0;
  std::uint64_t last_migration_bytes_ = 0;
  /// The shared link frees up at this instant; migrations starting before
  /// it queue behind the in-flight transfer.
  Time link_free_at_{0};
  Duration link_busy_total_{0};
};

}  // namespace ks::vgpu
