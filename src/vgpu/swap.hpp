#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/ids.hpp"
#include "common/status.hpp"
#include "common/time.hpp"

namespace ks::vgpu {

/// GPUswap-style memory over-commitment for one device (the extension the
/// paper points at in §4.5: "there are some existing approaches [4,19,32]
/// to support memory over-commitment, and our work can be integrated with
/// these solutions").
///
/// Containers may allocate more, in aggregate, than physical device
/// memory. A container's pages must be resident while it runs; bringing
/// them in evicts the least-recently-running containers' pages to host
/// memory, and the migration time (bytes moved over the host-device link)
/// is charged to the in-bound container — the "performance overhead from
/// the memory swapping operations due to the limited memory bandwidth"
/// the paper warns about.
///
/// Residency is tracked at byte granularity (no page table is modeled:
/// what matters for the evaluation is *how many bytes* move per token
/// hand-off).
class SwapManager {
 public:
  /// `capacity_bytes` is the physical device memory; `link_bandwidth` is
  /// the effective host<->device migration rate (PCIe-gen3-ish default).
  explicit SwapManager(std::uint64_t capacity_bytes,
                       double link_bandwidth_bytes_per_s = 12e9);

  std::uint64_t capacity() const { return capacity_bytes_; }

  /// Allocates `bytes` for `owner`. The allocation lands resident when
  /// space is free, otherwise swapped-out (it will be migrated in when the
  /// owner runs). Only fails for zero-byte requests — host backing store
  /// is unbounded in this model.
  Status Allocate(const ContainerId& owner, std::uint64_t bytes);

  /// Releases `bytes` of `owner`'s allocation (resident pages first).
  Status Free(const ContainerId& owner, std::uint64_t bytes);

  /// Drops every allocation of `owner`.
  void FreeAll(const ContainerId& owner);

  /// Makes all of `owner`'s pages resident, evicting other containers'
  /// pages (least-recently-resident first) as needed. Returns the
  /// migration time: (bytes swapped in + bytes evicted) / link bandwidth.
  /// Also stamps `owner` as most recently run.
  Duration MakeResident(const ContainerId& owner, Time now);

  std::uint64_t AllocatedBy(const ContainerId& owner) const;
  std::uint64_t ResidentOf(const ContainerId& owner) const;
  std::uint64_t total_allocated() const { return total_allocated_; }
  std::uint64_t total_resident() const { return total_resident_; }
  std::uint64_t swap_ins() const { return swap_ins_; }
  std::uint64_t bytes_migrated() const { return bytes_migrated_; }

 private:
  struct State {
    std::uint64_t allocated = 0;
    std::uint64_t resident = 0;
    Time last_run{0};
  };

  std::uint64_t capacity_bytes_;
  double bandwidth_;
  std::map<ContainerId, State> containers_;
  std::uint64_t total_allocated_ = 0;
  std::uint64_t total_resident_ = 0;
  std::uint64_t swap_ins_ = 0;
  std::uint64_t bytes_migrated_ = 0;
};

}  // namespace ks::vgpu
