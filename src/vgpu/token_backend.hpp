#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "baselines/nvshare_tq.hpp"
#include "common/ids.hpp"
#include "common/sliding_window.hpp"
#include "common/status.hpp"
#include "common/time.hpp"
#include "metrics/latency_digest.hpp"
#include "sim/simulation.hpp"
#include "sim/timer_wheel.hpp"
#include "vgpu/resource_spec.hpp"

namespace ks::gpu {
class GpuDevice;
}  // namespace ks::gpu

namespace ks::vgpu {

/// Per-tenant isolation enforcement (ROADMAP item 5, Guardian direction):
/// hard token fencing at the device, quota clamp-down after repeated
/// violations, and eviction of repeat offenders. Off by default — with
/// `enabled == false` every path below is bypassed and the backend is
/// byte-identical to the pre-enforcement behavior, which is what keeps the
/// differential oracles (TokenBackendReference, GpuDeviceReference) valid.
struct EnforcementConfig {
  bool enabled = false;
  /// Overrun grace past quota expiry before a still-holding tenant is
  /// declared an overstayer and fenced at the device. Must exceed the
  /// longest polite kernel (kernels are non-preemptive, so polite holders
  /// legitimately overrun by up to one kernel).
  Duration fence_grace = Millis(50);
  /// Violations before the tenant's spec is clamped down (gpu_request
  /// treated as 0, gpu_limit capped at clamp_limit). 0 disables clamping.
  int clamp_threshold = 3;
  double clamp_limit = 0.05;
  /// Violations before the tenant is reported to the eviction callback
  /// (DevMgr tears the sharePod down). 0 disables eviction.
  int evict_threshold = 8;
  /// Self-reported usage below measured * (1 - spoof_tolerance) counts as
  /// a metrics-spoof violation (only checked above spoof_floor, where the
  /// sliding window is meaningful).
  double spoof_tolerance = 0.25;
  double spoof_floor = 0.05;
};

/// Kinds of tenant misbehavior the enforcement layer attributes.
enum class ViolationKind {
  kOverstay,      // still holding fence_grace past quota expiry
  kFencedSubmit,  // kernel submitted without an admitted token epoch
  kMemoryQuota,   // allocation past the device-enforced memory quota
  kMetricsSpoof,  // self-reported usage under-reports measured usage
};

inline const char* ViolationKindName(ViolationKind k) {
  switch (k) {
    case ViolationKind::kOverstay: return "overstay";
    case ViolationKind::kFencedSubmit: return "fenced_submit";
    case ViolationKind::kMemoryQuota: return "memory_quota";
    case ViolationKind::kMetricsSpoof: return "metrics_spoof";
  }
  return "unknown";
}

/// SLO-aware admission control at the daemon (ROADMAP item 4, SGDRC
/// direction): when a service's observed p99 approaches its SLO, the
/// daemon sheds or queues new requests instead of letting the backlog push
/// every request past the deadline. Off by default — with `enabled ==
/// false` the daemon stores no serving state and AdmitRequest always
/// admits, so existing traces stay byte-identical and
/// TokenBackendReference remains the admit-everything oracle.
struct AdmissionConfig {
  bool enabled = false;
  enum class Policy {
    kShed,   ///< reject at the door (client sees an immediate error)
    kQueue,  ///< hold at the door; the frontend retries after a delay
  };
  Policy policy = Policy::kShed;
  /// Admission trips once observed p99 >= headroom * slo.
  double headroom = 0.9;
  /// Sliding window of the per-service latency digest (two rotating
  /// epochs; the estimate covers one to two windows of history).
  Duration window = Seconds(5.0);
  /// Samples required in the window before the p99 estimate is trusted;
  /// below this the daemon admits unconditionally (cold start, quiet
  /// service).
  std::uint64_t min_samples = 20;
};

/// What the daemon tells a service frontend about one request at the door.
enum class AdmissionDecision {
  kAdmit,
  kShed,
  kQueue,
};

inline const char* AdmissionDecisionName(AdmissionDecision d) {
  switch (d) {
    case AdmissionDecision::kAdmit: return "admit";
    case AdmissionDecision::kShed: return "shed";
    case AdmissionDecision::kQueue: return "queue";
  }
  return "unknown";
}

/// Tuning knobs of the per-node backend daemon (paper §4.5).
struct BackendConfig {
  /// Time quota attached to each valid token. The paper settles on 100 ms
  /// (Fig 7: <=5% slowdown even at 30 ms; smaller quota = finer control but
  /// more token exchanges).
  Duration quota = Millis(100);
  /// Cost of one token hand-off: the IPC round trip between frontend and
  /// backend plus the CUDA synchronization before yielding. The GPU is idle
  /// for this long on every grant, which is exactly the Fig 7 overhead.
  Duration exchange_latency = Micros(1500);
  /// Sliding window over which per-container usage rates are measured.
  Duration usage_window = Seconds(10.0);
  /// Re-evaluation period while every queued requester sits at its
  /// gpu_limit (usage decays as the window slides, so a requester will
  /// become eligible again without any new event arriving).
  Duration reeval_period = Millis(5);
  /// How long the daemon is down across a Restart() before it has rebuilt
  /// its device state and re-accepts the frontends that survived (systemd
  /// restart + socket re-handshake, scaled to simulation-friendly values).
  Duration restart_downtime = Millis(50);
  /// Timer-wheel tick of the wheel-based TokenBackend: renewals landing in
  /// the same window fire from one engine event. The default is the GCD of
  /// every other duration knob above, so daemon deadlines stay exact under
  /// the default config — coarsen it to trade deadline precision for fewer
  /// events (bench_engine's token-cluster scenario measures the trade).
  /// TokenBackendReference ignores this knob.
  Duration coalesce_window = Micros(500);
  /// Spatial sharing (MIG-style slices): when enabled, TokenBackend grants
  /// multiple simultaneous tokens per device as long as the holders' SM-
  /// group claims fit the device's `sm_groups`. A container whose
  /// ResourceSpec::slice_groups is 0 claims every group (full-GPU,
  /// temporal-style exclusive hold). TokenBackendReference ignores both
  /// knobs — it stays the single-token oracle.
  bool spatial_enabled = false;
  int sm_groups = 7;
  /// Isolation enforcement knobs. TokenBackendReference ignores these —
  /// it stays the polite-tenant oracle.
  EnforcementConfig enforcement;
  /// nvshare-style exclusive-time-quantum anti-thrashing for memory-
  /// oversubscribed devices: frontends report swap traffic per grant, and
  /// once a device's swap bytes per detection window cross the threshold
  /// its grants switch from `quota` to the (much longer) `tq.quantum`
  /// until the traffic calms. Temporal grant path only (a TQ rotation is
  /// by definition exclusive); off by default, and TokenBackendReference
  /// ignores it — it stays the quota-grant oracle.
  baselines::NvshareTqConfig tq;
  /// SLO-aware admission control at the daemon door. Off by default;
  /// TokenBackendReference ignores it — it stays the admit-everything
  /// oracle.
  AdmissionConfig admission;
};

/// Callback surface of the per-container frontend, as seen by the backend.
/// In the real system these are messages over a Unix socket; here they are
/// direct calls dispatched from simulation events.
class TokenClient {
 public:
  virtual ~TokenClient() = default;

  /// The token is now valid for this container until `expiry`. The frontend
  /// may submit kernels until then.
  virtual void OnTokenGranted(Time expiry) = 0;

  /// The quota ran out. The frontend must stop submitting new kernels and
  /// call ReleaseToken() once its in-flight kernel (if any) retires —
  /// kernels are non-preemptive, so a small overrun is possible.
  virtual void OnTokenExpired() = 0;

  /// The backend daemon restarted and has just re-registered this frontend
  /// (the socket reconnected). Any token the frontend believed it held is
  /// gone — it must drop its token state and re-request if it has work.
  virtual void OnBackendRestart() {}
};

/// The contract of the per-node backend daemon: one instance manages the
/// tokens of every GPU on a node independently (paper: "only one backend
/// module is needed on a host machine").
///
/// Token scheduling follows the paper's three-step elastic policy verbatim:
///  1. filter requesters whose sliding-window usage already reached their
///     gpu_limit;
///  2. among the rest, prefer the container farthest below its gpu_request
///     (guaranteeing minimum demands — KubeShare-Sched never over-commits
///     the sum of gpu_requests on a device);
///  3. if every requester has reached its gpu_request, grant to the one
///     with the lowest current usage (fair division of residual capacity).
///
/// Two implementations exist: TokenBackend (default) batches every daemon
/// deadline onto a per-node timer wheel, and TokenBackendReference keeps
/// one engine event per deadline. The reference is the documentation of
/// record for the paper's semantics — the wheel must match it trace-for-
/// trace (tests/vgpu/token_wheel_equivalence_test.cpp), mirroring the
/// ScheduleSharePod / ScheduleSharePodReference oracle pair.
class TokenBackendApi {
 public:
  virtual ~TokenBackendApi() = default;

  virtual const BackendConfig& config() const = 0;

  /// Makes a device known to the backend. Idempotent.
  virtual void RegisterDevice(const GpuUuid& device) = 0;

  /// Registers a container that will contend for `device`. The client
  /// pointer must outlive the registration.
  virtual Status RegisterContainer(const ContainerId& container,
                                   const GpuUuid& device,
                                   const ResourceSpec& spec,
                                   TokenClient* client) = 0;

  /// Removes a container; an outstanding token is reclaimed immediately.
  virtual Status UnregisterContainer(const ContainerId& container) = 0;

  /// Vertical resize: replaces a running container's compute spec. Takes
  /// effect at the next grant decision (the current hold is untouched);
  /// gpu_mem changes are ignored — allocations are already placed.
  virtual Status UpdateSpec(const ContainerId& container,
                            const ResourceSpec& spec) = 0;

  /// Frontend request: the container has kernels to run and needs the
  /// token. Idempotent while already queued or holding.
  virtual Status RequestToken(const ContainerId& container) = 0;

  /// Frontend release: the holder yields (early, with no more work, or
  /// after expiry once its in-flight kernel retired).
  virtual Status ReleaseToken(const ContainerId& container) = 0;

  /// Postpones the holder's quota expiry by `extra`. Used by the memory
  /// over-commitment extension: the time slice should cover kernel
  /// execution, not the page migration that precedes it — without the
  /// extension a migration longer than the quota would expire every grant
  /// before a single kernel runs (swap thrash with zero progress).
  virtual Status ExtendQuota(const ContainerId& container, Duration extra) = 0;

  /// Sliding-window usage rate of a container — the quantity Fig 6 plots
  /// per job ("the GPU utilization of individual container is measured by
  /// the allocated usage time from our vGPU device library").
  virtual double UsageOf(const ContainerId& container) const = 0;

  /// Current holder of a device's token (valid or in overrun), if any.
  /// Spatial backends with several concurrent holders report the first in
  /// ContainerId order — use ActiveHolders() for the count.
  virtual std::optional<ContainerId> HolderOf(const GpuUuid& device) const = 0;

  /// Tokens currently granted (valid, in overrun, or mid-exchange) on a
  /// device. Single-token backends derive this from HolderOf.
  virtual std::size_t ActiveHolders(const GpuUuid& device) const {
    return HolderOf(device).has_value() ? 1 : 0;
  }

  /// High-water mark of ActiveHolders over any device since construction.
  /// At most 1 for single-token backends, by construction.
  virtual std::size_t peak_active_holders() const {
    return grants() > 0 ? 1 : 0;
  }

  /// Number of containers queued for a device's token.
  virtual std::size_t QueueLength(const GpuUuid& device) const = 0;

  /// Total number of token grants performed (all devices) — the Fig 7
  /// exchange count.
  virtual std::uint64_t grants() const = 0;

  /// Fault injection: the daemon dies and restarts. All token/queue state
  /// and sliding windows are lost (state is in-memory in the real daemon
  /// too); every pending timer is invalidated. Containers registered at
  /// crash time are remembered as reattach candidates: after
  /// BackendConfig::restart_downtime the daemon re-registers those still
  /// alive (ones unregistered during the downtime — e.g. their node died —
  /// are skipped) and tells each via TokenClient::OnBackendRestart so the
  /// frontend re-requests. Devices stay registered (rediscovered on boot).
  virtual void Restart() = 0;

  virtual std::uint64_t restarts() const = 0;
  /// Containers re-registered across restarts (tokens re-acquired follow).
  virtual std::uint64_t reattached() const = 0;
  virtual bool down() const = 0;

  /// Per-container accounting, for observability and the isolation
  /// analyses: how often the container got the token, how long it held it
  /// in total, and how much of that was overrun past the quota (the
  /// non-preemptive-kernel effect bench_ablation_kernel_length measures).
  struct ContainerStats {
    std::uint64_t grants = 0;
    Duration held_total{0};
    Duration overrun_total{0};
  };
  virtual ContainerStats StatsOf(const ContainerId& container) const = 0;

  /// Pending daemon timers (renewal/reeval/restart deadlines), however the
  /// implementation stores them. Zero when the daemon owes the engine
  /// nothing — the dangling-reeval regression test pins this.
  virtual std::size_t pending_timers() const = 0;

  // --- Isolation enforcement (no-op defaults keep TokenBackendReference
  // --- the untouched polite-tenant oracle) -----------------------------

  /// Per-tenant violation ledger. Survives Restart() — a daemon crash
  /// forgives no violation (the ledger is rebuilt state, not token state).
  struct IsolationStats {
    std::uint64_t overstays = 0;
    std::uint64_t fenced_submits = 0;
    std::uint64_t memory_violations = 0;
    std::uint64_t spoofs = 0;
    bool clamped = false;
    bool evicted = false;
    std::uint64_t total() const {
      return overstays + fenced_submits + memory_violations + spoofs;
    }
  };

  /// Attributes one violation to `container` and escalates (clamp-down,
  /// eviction) per EnforcementConfig. Devices route their fenced-submit /
  /// memory-quota observations here via the cluster wiring.
  virtual void RecordViolation(const ContainerId& container,
                               ViolationKind kind) {
    (void)container;
    (void)kind;
  }
  virtual IsolationStats IsolationOf(const ContainerId& container) const {
    (void)container;
    return {};
  }
  /// The full ledger in ContainerId order, for metrics export.
  virtual std::vector<std::pair<ContainerId, IsolationStats>>
  IsolationLedger() const {
    return {};
  }
  virtual std::uint64_t violations_total() const { return 0; }
  virtual std::uint64_t clampdowns_total() const { return 0; }
  virtual std::uint64_t evictions_total() const { return 0; }

  // --- Memory oversubscription (no-op defaults keep the reference
  // --- backend the swap-blind oracle) -----------------------------------

  /// Frontend report of swap traffic incurred on a token hand-off (the
  /// bytes MakeResident migrated for this container). Feeds the nvshare-TQ
  /// thrash detector when BackendConfig::tq is enabled.
  virtual void ReportSwapBytes(const ContainerId& container,
                               std::uint64_t bytes) {
    (void)container;
    (void)bytes;
  }
  /// Times any device switched from sharing to TQ rotation.
  virtual std::uint64_t tq_engagements() const { return 0; }
  /// True while `device` is under TQ rotation.
  virtual bool TqEngaged(const GpuUuid& device) const {
    (void)device;
    return false;
  }

  // --- SLO admission control (no-op defaults keep TokenBackendReference
  // --- the admit-everything oracle) --------------------------------------

  /// Declares the p99 SLO of the service a container replica belongs to.
  /// Called by the serving frontend when a replica comes up; a no-op while
  /// BackendConfig::admission is disabled (no serving state is kept, so
  /// the disabled daemon is byte-identical to the pre-admission one).
  virtual void SetServiceSlo(const ContainerId& container, Duration slo_p99) {
    (void)container;
    (void)slo_p99;
  }

  /// Per-request latency report feeding the daemon's windowed per-service
  /// digest. Zero-allocation on the digest side; a no-op while admission
  /// is disabled.
  virtual void ReportRequestLatency(const ContainerId& container, Time now,
                                    Duration latency) {
    (void)container;
    (void)now;
    (void)latency;
  }

  /// The admission decision for one new request bound for `container`.
  /// Always kAdmit while admission is disabled, during cold start
  /// (fewer than AdmissionConfig::min_samples in the window), or while
  /// observed p99 stays under headroom * SLO.
  virtual AdmissionDecision AdmitRequest(const ContainerId& container,
                                         Time now) {
    (void)container;
    (void)now;
    return AdmissionDecision::kAdmit;
  }

  /// Observed windowed p99 of a container's service, in seconds; 0 when
  /// unknown. Non-const: the lazy window rotation advances on access.
  virtual double ObservedP99Of(const ContainerId& container, Time now) {
    (void)container;
    (void)now;
    return 0.0;
  }

  virtual std::uint64_t admission_sheds() const { return 0; }
  virtual std::uint64_t admission_queued() const { return 0; }

  /// Frontend-sampler self-report of the container's usage rate. The
  /// untrusted input of the metrics-spoofing attack: without enforcement
  /// the daemon trusts it in grant decisions; with enforcement the daemon
  /// schedules on its own measured attribution and flags under-reports.
  virtual void ReportUsage(const ContainerId& container, double claimed) {
    (void)container;
    (void)claimed;
  }

  /// Invoked (asynchronously, once per tenant) when a tenant crosses the
  /// eviction threshold; DevMgr wires this to sharePod teardown.
  using EvictionFn =
      std::function<void(const ContainerId&, const std::string& reason)>;
  virtual void SetEvictionFn(EvictionFn fn) { (void)fn; }

  /// Resolves a device uuid to the simulated device so the backend can
  /// drive its token gate / memory quota. Wired by k8s::Cluster when
  /// enforcement is on.
  using DeviceResolver = std::function<gpu::GpuDevice*(const GpuUuid&)>;
  virtual void SetDeviceResolver(DeviceResolver fn) { (void)fn; }

  /// Observer of token lifecycle transitions. `what` is one of "grant",
  /// "expire", "release", "restart"; `when` is the quota expiry for grants
  /// and the transition time otherwise. The differential suite records
  /// these from twin cluster runs and demands byte-equal traces across
  /// device execution modes.
  using GrantTraceFn =
      std::function<void(const char* what, const ContainerId&, Time when)>;
  void SetGrantTraceFn(GrantTraceFn fn) { grant_trace_ = std::move(fn); }

 protected:
  void RecordGrantTrace(const char* what, const ContainerId& container,
                        Time when) {
    if (grant_trace_) grant_trace_(what, container, when);
  }

 private:
  GrantTraceFn grant_trace_;
};

/// Selects the token-backend implementation a cluster builds per node.
enum class TokenTimerMode {
  kWheel,      ///< TokenBackend: per-node timer wheel (default)
  kReference,  ///< TokenBackendReference: one engine event per deadline
};

/// Wheel-based backend daemon: every deadline the daemon owns (quota
/// expiries, grant hand-offs, throttle re-evaluations, restart downtime)
/// lives on one per-node sim::TimerWheel, so the whole daemon keeps at
/// most ONE engine event armed. Deadlines are quantized up to
/// BackendConfig::coalesce_window; with the default window (the GCD of the
/// default config durations) daemon behaviour is tick-for-tick identical
/// to TokenBackendReference.
class TokenBackend : public TokenBackendApi {
 public:
  TokenBackend(sim::Simulation* sim, BackendConfig config = {});

  const BackendConfig& config() const override { return config_; }
  void RegisterDevice(const GpuUuid& device) override;
  Status RegisterContainer(const ContainerId& container, const GpuUuid& device,
                           const ResourceSpec& spec,
                           TokenClient* client) override;
  Status UnregisterContainer(const ContainerId& container) override;
  Status UpdateSpec(const ContainerId& container,
                    const ResourceSpec& spec) override;
  Status RequestToken(const ContainerId& container) override;
  Status ReleaseToken(const ContainerId& container) override;
  Status ExtendQuota(const ContainerId& container, Duration extra) override;
  double UsageOf(const ContainerId& container) const override;
  std::optional<ContainerId> HolderOf(const GpuUuid& device) const override;
  std::size_t ActiveHolders(const GpuUuid& device) const override;
  std::size_t peak_active_holders() const override { return peak_holders_; }
  std::size_t QueueLength(const GpuUuid& device) const override;
  std::uint64_t grants() const override { return grants_; }
  void Restart() override;
  std::uint64_t restarts() const override { return restarts_; }
  std::uint64_t reattached() const override { return reattached_; }
  bool down() const override { return down_; }
  ContainerStats StatsOf(const ContainerId& container) const override;
  std::size_t pending_timers() const override { return wheel_.pending(); }

  void RecordViolation(const ContainerId& container,
                       ViolationKind kind) override;
  IsolationStats IsolationOf(const ContainerId& container) const override;
  std::vector<std::pair<ContainerId, IsolationStats>> IsolationLedger()
      const override;
  std::uint64_t violations_total() const override {
    return violations_total_;
  }
  std::uint64_t clampdowns_total() const override {
    return clampdowns_total_;
  }
  std::uint64_t evictions_total() const override { return evictions_total_; }
  void ReportSwapBytes(const ContainerId& container,
                       std::uint64_t bytes) override;
  std::uint64_t tq_engagements() const override { return tq_.engagements(); }
  bool TqEngaged(const GpuUuid& device) const override {
    return tq_.EngagedNow(device);
  }
  void SetServiceSlo(const ContainerId& container, Duration slo_p99) override;
  void ReportRequestLatency(const ContainerId& container, Time now,
                            Duration latency) override;
  AdmissionDecision AdmitRequest(const ContainerId& container,
                                 Time now) override;
  double ObservedP99Of(const ContainerId& container, Time now) override;
  std::uint64_t admission_sheds() const override { return admission_sheds_; }
  std::uint64_t admission_queued() const override { return admission_queued_; }
  void ReportUsage(const ContainerId& container, double claimed) override;
  void SetEvictionFn(EvictionFn fn) override {
    eviction_fn_ = std::move(fn);
  }
  void SetDeviceResolver(DeviceResolver fn) override {
    device_resolver_ = std::move(fn);
  }

  /// The per-node wheel, for observability (cluster metrics export the
  /// coalescing ratio) and the chaos injector's re-arm check.
  const sim::TimerWheel& wheel() const { return wheel_; }

 private:
  struct ContainerState {
    GpuUuid device;
    ResourceSpec spec;
    TokenClient* client = nullptr;
    SlidingWindowUsage usage;
    bool queued = false;
    std::uint64_t enqueue_seq = 0;  // FIFO tie-break
    Time grant_time{0};             // of the current hold
    ContainerStats stats;
    /// Last self-reported usage (ReportUsage). Trusted in grant decisions
    /// only while enforcement is off — the spoofing hole.
    std::optional<double> claimed_usage;
    explicit ContainerState(Duration window) : usage(window) {}
  };

  /// One concurrent token in spatial mode: a slice-holder's grant state,
  /// the per-holder analogue of the temporal DeviceState fields.
  struct Hold {
    bool valid = false;      // false while mid-exchange or in overrun
    bool in_flight = false;  // exchange latency elapsing
    Time expiry{0};
    sim::TimerId expiry_timer = sim::kInvalidTimer;
    /// Enforcement only: overstay deadline at expiry + fence_grace.
    sim::TimerId fence_timer = sim::kInvalidTimer;
    int groups = 0;  // SM groups the hold occupies
  };

  struct DeviceState {
    std::deque<ContainerId> queue;
    std::optional<ContainerId> holder;
    bool token_valid = false;      // false while expired-but-not-released
    bool grant_in_flight = false;  // exchange latency elapsing
    Time expiry{0};                // current quota deadline
    sim::TimerId expiry_timer = sim::kInvalidTimer;
    sim::TimerId reeval_timer = sim::kInvalidTimer;
    /// Enforcement only: overstay deadline at expiry + fence_grace.
    sim::TimerId fence_timer = sim::kInvalidTimer;
    /// Spatial mode only: concurrent holds, ContainerId-sorted for
    /// deterministic iteration, plus the SM groups they pin.
    std::map<ContainerId, Hold> holds;
    int groups_held = 0;
  };

  void TryGrant(const GpuUuid& device);
  void GrantTo(DeviceState& dev, const GpuUuid& device_id,
               const ContainerId& container);
  /// Quota attached to the next grant on `device_id`: the TQ quantum while
  /// the thrash detector has the device in rotation, the normal quota
  /// otherwise. Identical to config_.quota whenever TQ is disabled.
  Duration GrantQuotaFor(const GpuUuid& device_id);
  void OnExpiry(const GpuUuid& device);
  void ScheduleReeval(DeviceState& dev, const GpuUuid& device_id);
  void CancelIdleReeval(DeviceState& dev);

  // Spatial-mode twins of the grant path. Dispatched from the same public
  // entry points when config_.spatial_enabled; the temporal code above is
  // untouched when it is off.
  int ClaimOf(const ContainerState& state) const;
  void TryGrantSpatial(const GpuUuid& device);
  void GrantSpatialTo(DeviceState& dev, const GpuUuid& device_id,
                      const ContainerId& container);
  void OnHoldExpiry(const GpuUuid& device, const ContainerId& container);

  // Enforcement internals. All no-ops / pass-throughs when
  // config_.enforcement.enabled is false.
  bool Enforcing() const { return config_.enforcement.enabled; }
  gpu::GpuDevice* ResolveDevice(const GpuUuid& device) const;
  bool IsClamped(const ContainerId& container) const;
  /// Usage rate grant decisions run on: the daemon's own measured
  /// attribution under enforcement, the (spoofable) self-report otherwise.
  double SchedulingUsage(const ContainerState& state, Time now) const;
  double EffectiveLimit(const ContainerId& container,
                        const ContainerState& state) const;
  double EffectiveRequest(const ContainerId& container,
                          const ContainerState& state) const;
  void OnFenceDeadline(const GpuUuid& device);
  void OnHoldFenceDeadline(const GpuUuid& device,
                           const ContainerId& container);

  /// What the daemon needs to re-admit a surviving frontend after a
  /// restart. Keyed by a sorted map so reattach order is deterministic.
  struct ReattachInfo {
    GpuUuid device;
    ResourceSpec spec;
    TokenClient* client = nullptr;
  };

  sim::Simulation* sim_;
  BackendConfig config_;
  /// Every daemon deadline rides this wheel; Restart() invalidates it
  /// wholesale (the generation stamps turn outstanding ids stale) and the
  /// downtime timer re-arms it for the new incarnation.
  sim::TimerWheel wheel_;
  std::unordered_map<GpuUuid, DeviceState> devices_;
  std::unordered_map<ContainerId, ContainerState> containers_;
  std::map<ContainerId, ReattachInfo> pending_reattach_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t grants_ = 0;
  /// Bumped by Restart(); in-flight grant hand-offs no-op across it.
  std::uint64_t epoch_ = 0;
  std::uint64_t restarts_ = 0;
  std::uint64_t reattached_ = 0;
  std::size_t peak_holders_ = 0;
  bool down_ = false;

  /// Per-service admission state: SLO target and the windowed latency
  /// digest p99 estimates come from. Keyed separately from containers_ —
  /// like the violation ledger, it is rebuilt-state, not token-state, so a
  /// daemon Restart() keeps the latency history that would otherwise blind
  /// admission control exactly when a restart's backlog needs it. Only
  /// populated while config_.admission.enabled (disabled daemons carry
  /// zero serving state).
  struct ServingState {
    Duration slo{0};
    metrics::WindowedLatencyDigest digest;
    std::uint64_t sheds = 0;
    std::uint64_t queued = 0;
    explicit ServingState(Duration window) : digest(window) {}
  };
  std::map<ContainerId, ServingState> serving_;
  std::uint64_t admission_sheds_ = 0;
  std::uint64_t admission_queued_ = 0;

  /// Violation ledger, keyed separately from containers_ so Restart()
  /// (which clears container state) forgives nothing; sorted for
  /// deterministic metrics export.
  std::map<ContainerId, IsolationStats> violations_;
  std::uint64_t violations_total_ = 0;
  std::uint64_t clampdowns_total_ = 0;
  std::uint64_t evictions_total_ = 0;
  /// Monotonic token epoch admitted at the device gate on every grant.
  /// Never reset — a post-restart grant must out-rank every fenced epoch.
  std::uint64_t token_epoch_ = 0;
  /// nvshare-TQ thrash detector. Deliberately NOT cleared by Restart():
  /// like the violation ledger, engagement state is rebuilt-state, not
  /// token-state — a daemon crash must not bounce a thrashing device back
  /// into swap-storm sharing.
  baselines::TqController tq_;
  EvictionFn eviction_fn_;
  DeviceResolver device_resolver_;
};

}  // namespace ks::vgpu
