#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/ids.hpp"
#include "cuda/api.hpp"
#include "vgpu/resource_spec.hpp"
#include "vgpu/swap.hpp"
#include "vgpu/token_backend.hpp"

namespace ks::vgpu {

/// Scripted misbehavior of a hostile tenant (ROADMAP item 5, Guardian
/// direction). The frontend hook is the LD_PRELOAD-analog *client-side*
/// library — a tenant controls its own copy, so a hostile build can simply
/// stop honoring the token protocol. Each flag enables one behavior; the
/// chaos injector arms them for a bounded window via the adversarial
/// FaultKinds, and the enforcement that contains them lives server-side
/// (GpuDevice token gates / memory quotas, TokenBackend attribution).
struct AdversarialSpec {
  /// Ignore OnTokenExpired: keep token_valid_ and keep submitting until
  /// the device fences the epoch (contained as an overstay violation).
  bool overstay = false;
  /// Submit kernels straight to the driver on every attack tick, token or
  /// no token (contained as fenced-submit violations).
  bool kernel_flood = false;
  /// cuMemAlloc past the gpu_mem quota on every attack tick, bypassing
  /// the hook's own ledger (contained by the device memory quota).
  bool memory_probe = false;
  /// Self-report usage * spoof_factor to the backend sampler on every
  /// attack tick (contained by server-side usage attribution).
  bool metrics_spoof = false;
  Duration attack_period = Millis(5);
  gpu::KernelDesc flood_kernel{Millis(1), 0.0, "flood", 1.0};
  std::uint64_t probe_bytes = 1ull << 30;
  double spoof_factor = 0.1;
};

/// The per-container frontend of the vGPU device library (paper §4.5).
///
/// In the real system this is a dynamic library injected with LD_PRELOAD
/// that interposes on every memory- and compute-related CUDA driver call.
/// Here it is a CudaApi decorator installed between the workload and the
/// driver-level CudaContext — the same structural position, so every call
/// the workload makes flows through the same checks:
///
///  - memory calls (MemAlloc / ArrayCreate) are rejected with
///    CUDA_ERROR_OUT_OF_MEMORY once the container's gpu_mem quota would be
///    exceeded (no over-commitment, per the paper);
///  - kernel launches are held in per-stream queues until the container
///    holds a valid token from the node's TokenBackend; when the token
///    expires the frontend stops submitting, lets the in-flight kernels
///    retire, and releases the token; when its queues drain it releases
///    the token early ("revoked by its holder").
class FrontendHook final : public cuda::CudaApi, public TokenClient {
 public:
  /// `inner` is the driver-level API (not owned). `device_memory_bytes` is
  /// the physical capacity used to convert the fractional gpu_mem into a
  /// byte quota. Registration with the backend happens in the constructor;
  /// the destructor unregisters.
  FrontendHook(cuda::CudaApi* inner, TokenBackendApi* backend,
               ContainerId container, GpuUuid device, ResourceSpec spec,
               std::uint64_t device_memory_bytes);
  ~FrontendHook() override;

  FrontendHook(const FrontendHook&) = delete;
  FrontendHook& operator=(const FrontendHook&) = delete;

  // --- CudaApi ----------------------------------------------------------
  cuda::CudaResult MemAlloc(gpu::DevicePtr* out, std::uint64_t bytes) override;
  cuda::CudaResult MemFree(gpu::DevicePtr ptr) override;
  cuda::CudaResult ArrayCreate(gpu::DevicePtr* out, std::uint64_t width,
                               std::uint64_t height,
                               std::uint64_t element_bytes) override;
  cuda::CudaResult MemPrefetch(std::uint64_t bytes, Duration duration,
                               cuda::HostFn on_complete) override;
  cuda::CudaResult StreamCreate(cuda::StreamId* out) override;
  cuda::CudaResult StreamDestroy(cuda::StreamId stream) override;
  cuda::CudaResult LaunchKernel(const gpu::KernelDesc& desc,
                                cuda::StreamId stream,
                                cuda::HostFn on_complete) override;
  /// Declared kernel streams are the frontend's batching unit: while the
  /// token is valid, up to a token-interval's worth of units (sized from
  /// ExclusiveKernelTime against the grant's expiry) is forwarded as one
  /// inner launch, so the device can fuse them onto a single engine event.
  /// The final in-quota unit is always forwarded alone, keeping
  /// expiry-boundary event ordering identical to unbatched forwarding.
  cuda::CudaResult LaunchKernelStream(const gpu::KernelDesc& desc, int count,
                                      cuda::StreamId stream,
                                      gpu::UnitDoneFn on_unit) override;
  std::size_t CancelPending(cuda::StreamId stream) override;
  std::size_t RetiredUnits(cuda::StreamId stream) const override;
  Duration ExclusiveKernelTime(const gpu::KernelDesc& desc) const override;
  Time Now() const override;
  cuda::CudaResult Synchronize(cuda::HostFn fn) override;

  // Events keep stream order through the hook's own queues: a record is
  // forwarded to the driver only after every kernel launched before it on
  // the same stream has been forwarded and retired. Forwarding a marker
  // needs no token — events consume no GPU time.
  cuda::CudaResult EventCreate(cuda::EventId* out) override;
  cuda::CudaResult EventRecord(cuda::EventId event,
                               cuda::StreamId stream) override;
  cuda::CudaResult EventQuery(cuda::EventId event) override;
  cuda::CudaResult EventSynchronize(cuda::EventId event,
                                    cuda::HostFn fn) override;
  cuda::CudaResult EventElapsedTime(Duration* out, cuda::EventId start,
                                    cuda::EventId end) override;
  cuda::CudaResult EventDestroy(cuda::EventId event) override;

  std::uint64_t AllocatedBytes() const override { return allocated_bytes_; }
  std::size_t PendingKernels() const override { return pending_kernels_; }

  // --- TokenClient --------------------------------------------------------
  void OnTokenGranted(Time expiry) override;
  void OnTokenExpired() override;
  void OnBackendRestart() override;

  // --- Memory over-commitment extension -----------------------------------
  /// Switches memory management to GPUswap-style over-commitment
  /// (DESIGN.md extension; paper §4.5 points at [4,19,32]): allocations
  /// are served by the device's shared SwapManager instead of the physical
  /// ledger, and each token grant first migrates this container's working
  /// set on-device — kernel submission is delayed by the migration time.
  /// Must be called before the first allocation; `swap` is shared by every
  /// container on the device.
  void EnableMemoryOvercommit(SwapManager* swap, sim::Simulation* sim);
  bool overcommit_enabled() const { return swap_ != nullptr; }

  // --- Adversarial-client extension ----------------------------------------
  /// Turns this hook hostile: arms a repeating attack tick (every
  /// `spec.attack_period`) that performs the enabled behaviors, plus the
  /// passive overstay behavior in OnTokenExpired. Driven by the chaos
  /// injector's adversarial FaultKinds; deterministic (pure sim events).
  void SetAdversarial(const AdversarialSpec& spec, sim::Simulation* sim);
  /// Back to polite: cancels the attack tick and, if overstaying on a dead
  /// token, drops the zombie token state and re-enters the normal
  /// request/release protocol.
  void ClearAdversarial();
  bool adversarial() const { return adversarial_.has_value(); }
  /// The active misbehavior set, or nullptr when polite — lets the chaos
  /// injector compose flags across overlapping adversarial faults.
  const AdversarialSpec* adversarial_spec() const {
    return adversarial_ ? &*adversarial_ : nullptr;
  }
  std::uint64_t attack_ticks() const { return attack_ticks_; }

  // --- Introspection ------------------------------------------------------
  bool holds_valid_token() const { return token_valid_; }
  std::uint64_t memory_quota_bytes() const { return memory_quota_bytes_; }
  const ContainerId& container() const { return container_; }
  const GpuUuid& device() const { return device_; }
  /// Count of launches rejected before reaching the driver (should stay 0;
  /// launches are queued, never rejected, but kept for failure injection).
  std::uint64_t oom_rejections() const { return oom_rejections_; }

 private:
  struct PendingEntry {
    bool is_event = false;
    bool is_repeat = false;
    int count = 1;  // units, for repeat entries
    gpu::KernelDesc desc;
    cuda::HostFn fn;
    gpu::UnitDoneFn unit_fn;
    cuda::EventId event = 0;
  };
  struct StreamQueue {
    std::deque<PendingEntry> pending;
    bool in_flight = false;
    /// Forwarded batch (token-interval fast path): units handed to the
    /// inner driver as one LaunchKernelStream call. `segs` maps delivered
    /// units back to each source entry's callback, and lets a backend
    /// restart recall the unstarted tail into `pending`.
    gpu::KernelDesc fwd_desc;
    std::size_t fwd_size = 0;
    std::size_t fwd_delivered = 0;
    std::vector<std::pair<int, gpu::UnitDoneFn>> segs;
    std::size_t seg_idx = 0;
    int seg_fired = 0;
  };

  /// Forwards the next kernel of every stream that has one, while the token
  /// is valid.
  void Drain();
  /// Forwards event markers at queue heads (token-independent).
  void FlushMarkers();
  void OnKernelRetired(cuda::StreamId stream, cuda::HostFn user_fn);
  void OnUnitRetired(cuda::StreamId stream, Time finish);
  /// Pulls every not-yet-started unit of forwarded batches back into the
  /// frontend queues (token died under them: expiry or backend restart).
  /// The in-flight unit always retires on its own — kernels are
  /// non-preemptive.
  void RecallForwardedTails();
  void MaybeReleaseOrRerequest();
  void MaybeFireSync();
  bool HasQueuedWork() const;
  void AttackTick();

  cuda::CudaApi* inner_;
  TokenBackendApi* backend_;
  ContainerId container_;
  GpuUuid device_;
  ResourceSpec spec_;
  std::uint64_t memory_quota_bytes_;

  std::uint64_t allocated_bytes_ = 0;
  std::unordered_map<gpu::DevicePtr, std::uint64_t> ptr_bytes_;
  std::uint64_t oom_rejections_ = 0;

  std::unordered_map<cuda::StreamId, StreamQueue> streams_;
  /// Events recorded through the hook whose marker has not reached the
  /// driver yet, with any synchronize-waiters registered meanwhile.
  std::unordered_map<cuda::EventId, std::vector<cuda::HostFn>>
      queued_events_;
  std::size_t pending_kernels_ = 0;  // queued here + in flight below
  std::size_t in_flight_ = 0;

  bool token_valid_ = false;
  bool token_held_ = false;  // holder (valid or overrun) per backend
  bool token_requested_ = false;
  /// Expiry of the current grant — the token-interval hint that sizes
  /// forwarded batches. Stale once the token lapses (guarded by
  /// token_valid_).
  Time expiry_{0};

  SwapManager* swap_ = nullptr;
  sim::Simulation* sim_ = nullptr;
  /// A migration charged through the inner driver's MemPrefetch lane is in
  /// flight; Drain() holds every kernel until it completes.
  bool swap_pending_ = false;
  gpu::DevicePtr next_swap_ptr_ = 1ull << 48;  // distinct from device ptrs

  std::optional<AdversarialSpec> adversarial_;
  sim::Simulation* adv_sim_ = nullptr;
  sim::EventId adv_event_ = sim::kInvalidEvent;
  std::uint64_t attack_ticks_ = 0;

  std::vector<cuda::HostFn> sync_waiters_;
};

}  // namespace ks::vgpu
