#pragma once

#include <cstdint>
#include <functional>

#include "gpu/device.hpp"

namespace ks::cuda {

/// CUDA-driver-style result codes. The subset the vGPU device library
/// interacts with: memory results (interception rejects over-quota
/// allocations with kErrorOutOfMemory, paper §4.5) and launch results.
enum class CudaResult {
  kSuccess,
  kErrorInvalidValue,
  kErrorOutOfMemory,
  kErrorInvalidContext,
  kErrorInvalidHandle,
  kErrorNotReady,
  kErrorNotPermitted,
};

const char* CudaResultName(CudaResult r);

using StreamId = std::uint64_t;
inline constexpr StreamId kDefaultStream = 0;

using EventId = std::uint64_t;

/// Fired when a launched kernel completes (cuLaunchHostFunc ordering).
using HostFn = std::function<void()>;

/// The CUDA driver API surface used by the workloads, expressed as an
/// abstract interface.
///
/// This interface is the reproduction's LD_PRELOAD seam: the real KubeShare
/// device library interposes on libcuda.so symbols (cuMemAlloc,
/// cuArrayCreate, cuLaunchKernel, cuLaunchGrid, ...) via the dynamic
/// linker; here the vGPU frontend implements CudaApi as a decorator over
/// the driver-level implementation, which gives the identical
/// wrap-every-call structure without a real driver underneath.
class CudaApi {
 public:
  virtual ~CudaApi() = default;

  // --- Memory (cuMemAlloc / cuMemFree / cuArrayCreate) -----------------
  virtual CudaResult MemAlloc(gpu::DevicePtr* out, std::uint64_t bytes) = 0;
  virtual CudaResult MemFree(gpu::DevicePtr ptr) = 0;
  /// cuArrayCreate-equivalent: a 2D array of `width` x `height` elements of
  /// `element_bytes` each. Allocates width*height*element_bytes.
  virtual CudaResult ArrayCreate(gpu::DevicePtr* out, std::uint64_t width,
                                 std::uint64_t height,
                                 std::uint64_t element_bytes) = 0;

  /// cuMemPrefetchAsync-equivalent: moves `bytes` over the host<->device
  /// link for `duration`, firing `on_complete` when the transfer lands.
  /// The over-commitment layer routes page migrations through this call so
  /// the driver context can charge them into the device's busy-time
  /// accounting. The default implementation completes immediately — the
  /// call is a no-op for API implementations that do not model the link
  /// (and for every pre-existing decorator).
  virtual CudaResult MemPrefetch(std::uint64_t bytes, Duration duration,
                                 HostFn on_complete) {
    (void)bytes;
    (void)duration;
    if (on_complete) on_complete();
    return CudaResult::kSuccess;
  }

  // --- Streams ----------------------------------------------------------
  virtual CudaResult StreamCreate(StreamId* out) = 0;
  virtual CudaResult StreamDestroy(StreamId stream) = 0;

  // --- Execution (cuLaunchKernel / cuLaunchGrid) -------------------------
  /// Launches a kernel on `stream`. Kernels on the same stream run in FIFO
  /// order; kernels on distinct streams may overlap on the device.
  /// `on_complete` fires when the kernel retires.
  virtual CudaResult LaunchKernel(const gpu::KernelDesc& desc, StreamId stream,
                                  HostFn on_complete) = 0;

  /// Declares `count` identical kernels enqueued back to back on `stream`
  /// (a steady kernel stream: train steps, fixed-cost inference requests).
  /// `on_unit` fires once per unit in FIFO order with the unit's exact
  /// finish time; delivery may be batched in arrears onto a single engine
  /// event (the fused-stream fast path), so callbacks must use the
  /// `finish` argument rather than the current simulation time. Semantics
  /// are otherwise identical to `count` LaunchKernel calls.
  virtual CudaResult LaunchKernelStream(const gpu::KernelDesc& desc, int count,
                                        StreamId stream,
                                        gpu::UnitDoneFn on_unit) = 0;

  /// Cancels every not-yet-started kernel queued on `stream` (the in-flight
  /// one always retires — kernels are non-preemptive). Units already due
  /// under fusion are delivered first. Returns the number cancelled.
  virtual std::size_t CancelPending(StreamId stream) = 0;

  /// Kernels launched on `stream` (either entry point) that have finished
  /// by now, including due-but-undelivered fused units — the analytic
  /// progress probe jobs poll mid-run.
  virtual std::size_t RetiredUnits(StreamId stream) const = 0;

  /// Exact wall time one instance of `desc` takes with the device to
  /// itself. The vGPU frontend uses this to size token-interval batches.
  virtual Duration ExclusiveKernelTime(const gpu::KernelDesc& desc) const = 0;

  /// Current simulation time, so jobs schedule against the same clock the
  /// device retires against.
  virtual Time Now() const = 0;

  /// Invokes `fn` once all work submitted so far has retired
  /// (cuCtxSynchronize expressed in callback form for the event-driven
  /// world).
  virtual CudaResult Synchronize(HostFn fn) = 0;

  // --- Events (cuEventCreate / cuEventRecord / cuEventQuery / ...) -------
  /// Creates a timing/ordering event.
  virtual CudaResult EventCreate(EventId* out) = 0;
  /// Records the event on `stream`: it completes when every kernel
  /// enqueued on that stream before the record has retired. Re-recording
  /// an event resets it.
  virtual CudaResult EventRecord(EventId event, StreamId stream) = 0;
  /// cuEventQuery: kSuccess when complete, kErrorNotReady while pending.
  virtual CudaResult EventQuery(EventId event) = 0;
  /// Invokes `fn` when the event completes (cuEventSynchronize in callback
  /// form). Fires immediately for an already-complete event.
  virtual CudaResult EventSynchronize(EventId event, HostFn fn) = 0;
  /// cuEventElapsedTime: completion-to-completion time of two complete
  /// events, in `out` (simulated time).
  virtual CudaResult EventElapsedTime(Duration* out, EventId start,
                                      EventId end) = 0;
  virtual CudaResult EventDestroy(EventId event) = 0;

  // --- Introspection ------------------------------------------------------
  virtual std::uint64_t AllocatedBytes() const = 0;
  virtual std::size_t PendingKernels() const = 0;
};

inline const char* CudaResultName(CudaResult r) {
  switch (r) {
    case CudaResult::kSuccess: return "CUDA_SUCCESS";
    case CudaResult::kErrorInvalidValue: return "CUDA_ERROR_INVALID_VALUE";
    case CudaResult::kErrorOutOfMemory: return "CUDA_ERROR_OUT_OF_MEMORY";
    case CudaResult::kErrorInvalidContext: return "CUDA_ERROR_INVALID_CONTEXT";
    case CudaResult::kErrorInvalidHandle: return "CUDA_ERROR_INVALID_HANDLE";
    case CudaResult::kErrorNotReady: return "CUDA_ERROR_NOT_READY";
    case CudaResult::kErrorNotPermitted: return "CUDA_ERROR_NOT_PERMITTED";
  }
  return "CUDA_ERROR_UNKNOWN";
}

}  // namespace ks::cuda
