#include "cuda/context.hpp"

#include <cassert>
#include <utility>

namespace ks::cuda {

CudaContext::CudaContext(gpu::GpuDevice* device, ContainerId owner)
    : device_(device), owner_(std::move(owner)) {
  assert(device_ != nullptr);
  streams_.try_emplace(kDefaultStream);
}

CudaContext::~CudaContext() {
  // Context destruction releases every allocation this context owns, as
  // cuCtxDestroy does, and orphans in-flight kernels so their completion
  // events cannot call back into this (freed) context.
  device_->DetachOwner(owner_);
  device_->FreeAll(owner_);
}

CudaResult CudaContext::MemAlloc(gpu::DevicePtr* out, std::uint64_t bytes) {
  if (out == nullptr || bytes == 0) return CudaResult::kErrorInvalidValue;
  auto result = device_->Allocate(owner_, bytes);
  if (!result.ok()) return CudaResult::kErrorOutOfMemory;
  *out = *result;
  owned_ptrs_.insert(*result);
  allocated_bytes_ += bytes;
  return CudaResult::kSuccess;
}

CudaResult CudaContext::MemFree(gpu::DevicePtr ptr) {
  auto it = owned_ptrs_.find(ptr);
  if (it == owned_ptrs_.end()) return CudaResult::kErrorInvalidValue;
  const std::uint64_t before = device_->MemoryUsedBy(owner_);
  if (!device_->Free(ptr).ok()) return CudaResult::kErrorInvalidValue;
  allocated_bytes_ -= before - device_->MemoryUsedBy(owner_);
  owned_ptrs_.erase(it);
  return CudaResult::kSuccess;
}

CudaResult CudaContext::ArrayCreate(gpu::DevicePtr* out, std::uint64_t width,
                                    std::uint64_t height,
                                    std::uint64_t element_bytes) {
  if (width == 0 || height == 0 || element_bytes == 0) {
    return CudaResult::kErrorInvalidValue;
  }
  return MemAlloc(out, width * height * element_bytes);
}

CudaResult CudaContext::MemPrefetch(std::uint64_t bytes, Duration duration,
                                    HostFn on_complete) {
  gpu::UnitDoneFn done;
  if (on_complete) {
    done = [fn = std::move(on_complete)](Time) { fn(); };
  }
  device_->ChargeMigration(owner_, bytes, duration, std::move(done));
  return CudaResult::kSuccess;
}

CudaResult CudaContext::StreamCreate(StreamId* out) {
  if (out == nullptr) return CudaResult::kErrorInvalidValue;
  const StreamId id = next_stream_++;
  streams_.try_emplace(id);
  *out = id;
  return CudaResult::kSuccess;
}

CudaResult CudaContext::StreamDestroy(StreamId stream) {
  if (stream == kDefaultStream) return CudaResult::kErrorInvalidValue;
  auto it = streams_.find(stream);
  if (it == streams_.end()) return CudaResult::kErrorInvalidHandle;
  if (it->second.in_flight || !it->second.queue.empty()) {
    return CudaResult::kErrorNotReady;
  }
  streams_.erase(it);
  return CudaResult::kSuccess;
}

CudaResult CudaContext::LaunchKernel(const gpu::KernelDesc& desc,
                                     StreamId stream, HostFn on_complete) {
  auto it = streams_.find(stream);
  if (it == streams_.end()) return CudaResult::kErrorInvalidHandle;
  if (desc.nominal_duration.count() <= 0) {
    return CudaResult::kErrorInvalidValue;
  }
  ++pending_kernels_;
  Entry entry;
  entry.desc = desc;
  entry.fn = std::move(on_complete);
  it->second.queue.push_back(std::move(entry));
  if (!it->second.in_flight) SubmitNext(stream);
  return CudaResult::kSuccess;
}

namespace {
bool SameKernel(const gpu::KernelDesc& a, const gpu::KernelDesc& b) {
  return a.nominal_duration == b.nominal_duration &&
         a.bandwidth_demand == b.bandwidth_demand && a.name == b.name;
}
}  // namespace

void CudaContext::SubmitNext(StreamId stream_id) {
  // Loops so a run of device-rejected (token-fenced) submits drains the
  // queue iteratively instead of recursing per dropped entry.
  for (;;) {
    const auto stream_it = streams_.find(stream_id);
    if (stream_it == streams_.end()) return;  // destroyed by a sync waiter
    Stream& stream = stream_it->second;
    // Event markers at the head of the queue complete immediately — every
    // earlier kernel on this FIFO stream has retired.
    while (!stream.in_flight && !stream.queue.empty() &&
           stream.queue.front().is_event) {
      const EventId event = stream.queue.front().event;
      stream.queue.pop_front();
      CompleteEvent(event);
    }
    if (stream.in_flight || stream.queue.empty()) return;
    if (stream.queue.front().is_repeat) {
      // Coalesce the head run of identical-desc repeat entries into one
      // device-level repeat batch; `segs` remembers each entry's callback.
      const gpu::KernelDesc desc = stream.queue.front().desc;
      int total = 0;
      stream.segs.clear();
      stream.seg_idx = 0;
      stream.seg_fired = 0;
      while (!stream.queue.empty() && stream.queue.front().is_repeat &&
             SameKernel(stream.queue.front().desc, desc)) {
        Entry entry = std::move(stream.queue.front());
        stream.queue.pop_front();
        total += entry.count;
        stream.segs.emplace_back(entry.count, std::move(entry.unit_fn));
      }
      stream.in_flight = true;
      stream.batch_size = static_cast<std::size_t>(total);
      stream.batch_delivered = 0;
      stream.batch = device_->SubmitRepeat(
          owner_, desc, total,
          [this, stream_id](Time finish) { OnUnitRetired(stream_id, finish); });
      if (stream.batch == 0) {
        // The device fenced the batch (expired/revoked token epoch): the
        // units are dropped without callbacks, and the stream keeps
        // draining so queued work behind the fence cannot wedge it.
        stream.in_flight = false;
        stream.batch_size = 0;
        stream.segs.clear();
        pending_kernels_ -= static_cast<std::size_t>(total);
        MaybeFireSync();
        continue;
      }
      return;
    }
    Entry entry = std::move(stream.queue.front());
    stream.queue.pop_front();
    stream.in_flight = true;
    const gpu::KernelId id = device_->Submit(
        owner_, entry.desc,
        [this, stream_id, user_fn = std::move(entry.fn)]() mutable {
          OnKernelRetired(stream_id, std::move(user_fn));
        });
    if (id == 0) {
      stream.in_flight = false;
      --pending_kernels_;
      MaybeFireSync();
      continue;
    }
    return;
  }
}

void CudaContext::OnKernelRetired(StreamId stream_id, HostFn user_fn) {
  auto it = streams_.find(stream_id);
  if (it != streams_.end()) {
    it->second.in_flight = false;
    ++it->second.retired_units;
  }
  --pending_kernels_;
  if (user_fn) user_fn();
  if (it != streams_.end()) SubmitNext(stream_id);
  MaybeFireSync();
}

void CudaContext::OnUnitRetired(StreamId stream_id, Time finish) {
  auto it = streams_.find(stream_id);
  if (it == streams_.end()) {
    --pending_kernels_;
    MaybeFireSync();
    return;
  }
  Stream& stream = it->second;
  ++stream.retired_units;
  ++stream.batch_delivered;
  --pending_kernels_;
  // Map this unit back to its entry's callback. CancelPending may have
  // shrunk batch_size below the segment total; tail segments past the
  // final delivered unit are simply never reached.
  gpu::UnitDoneFn user_fn;
  while (stream.seg_idx < stream.segs.size() &&
         stream.seg_fired >= stream.segs[stream.seg_idx].first) {
    ++stream.seg_idx;
    stream.seg_fired = 0;
  }
  if (stream.seg_idx < stream.segs.size()) {
    user_fn = stream.segs[stream.seg_idx].second;
    ++stream.seg_fired;
  }
  const bool last = stream.batch_delivered >= stream.batch_size;
  if (last) {
    stream.in_flight = false;
    stream.batch = 0;
    stream.batch_size = 0;
    stream.batch_delivered = 0;
    stream.segs.clear();
    stream.seg_idx = 0;
    stream.seg_fired = 0;
  }
  if (user_fn) user_fn(finish);
  if (last && streams_.count(stream_id) > 0) SubmitNext(stream_id);
  MaybeFireSync();
}

CudaResult CudaContext::LaunchKernelStream(const gpu::KernelDesc& desc,
                                           int count, StreamId stream,
                                           gpu::UnitDoneFn on_unit) {
  auto it = streams_.find(stream);
  if (it == streams_.end()) return CudaResult::kErrorInvalidHandle;
  if (desc.nominal_duration.count() <= 0 || count <= 0) {
    return CudaResult::kErrorInvalidValue;
  }
  pending_kernels_ += static_cast<std::size_t>(count);
  Entry entry;
  entry.is_repeat = true;
  entry.count = count;
  entry.desc = desc;
  entry.unit_fn = std::move(on_unit);
  it->second.queue.push_back(std::move(entry));
  if (!it->second.in_flight) SubmitNext(stream);
  return CudaResult::kSuccess;
}

std::size_t CudaContext::CancelPending(StreamId stream) {
  auto it = streams_.find(stream);
  if (it == streams_.end()) return 0;
  Stream& s = it->second;
  std::size_t cancelled = 0;
  if (s.batch != 0) {
    // Due fused units deliver synchronously (through OnUnitRetired) before
    // the unstarted tail is cancelled; the in-flight unit still retires
    // later and closes the batch.
    const std::size_t tail = device_->CancelRepeatTail(s.batch);
    if (tail > 0) {
      cancelled += tail;
      pending_kernels_ -= tail;
      s.batch_size -= tail;
    }
  }
  for (auto qit = s.queue.begin(); qit != s.queue.end();) {
    if (qit->is_event) {
      ++qit;
      continue;
    }
    const auto units =
        static_cast<std::size_t>(qit->is_repeat ? qit->count : 1);
    pending_kernels_ -= units;
    cancelled += units;
    qit = s.queue.erase(qit);
  }
  // Event markers left at the head complete now that nothing precedes them.
  if (!s.in_flight) SubmitNext(stream);
  MaybeFireSync();
  return cancelled;
}

std::size_t CudaContext::RetiredUnits(StreamId stream) const {
  auto it = streams_.find(stream);
  if (it == streams_.end()) return 0;
  const Stream& s = it->second;
  std::size_t total = s.retired_units;
  if (s.batch != 0) {
    // Due-but-undelivered units of the in-flight fused batch count: the
    // analytic probe keeps mid-run progress exact across device modes.
    const std::size_t due = device_->RepeatUnitsFinished(s.batch);
    if (due > s.batch_delivered) total += due - s.batch_delivered;
  }
  return total;
}

Duration CudaContext::ExclusiveKernelTime(const gpu::KernelDesc& desc) const {
  // Owner-aware: a container pinned to a spatial slice sizes its token
  // batches with the slice-stretched unit wall time.
  return device_->ExclusiveWallTimeFor(owner_, desc);
}

Time CudaContext::Now() const { return device_->sim()->Now(); }

CudaResult CudaContext::Synchronize(HostFn fn) {
  if (!fn) return CudaResult::kErrorInvalidValue;
  if (pending_kernels_ == 0) {
    fn();
    return CudaResult::kSuccess;
  }
  sync_waiters_.push_back(std::move(fn));
  return CudaResult::kSuccess;
}

void CudaContext::MaybeFireSync() {
  if (pending_kernels_ != 0 || sync_waiters_.empty()) return;
  auto waiters = std::move(sync_waiters_);
  sync_waiters_.clear();
  for (auto& fn : waiters) fn();
}

CudaResult CudaContext::EventCreate(EventId* out) {
  if (out == nullptr) return CudaResult::kErrorInvalidValue;
  const EventId id = next_event_++;
  events_.try_emplace(id);
  *out = id;
  return CudaResult::kSuccess;
}

CudaResult CudaContext::EventRecord(EventId event, StreamId stream) {
  auto eit = events_.find(event);
  if (eit == events_.end()) return CudaResult::kErrorInvalidHandle;
  auto sit = streams_.find(stream);
  if (sit == streams_.end()) return CudaResult::kErrorInvalidHandle;
  // Re-recording resets the event.
  eit->second.recorded = true;
  eit->second.complete = false;
  if (!sit->second.in_flight && sit->second.queue.empty()) {
    CompleteEvent(event);
    return CudaResult::kSuccess;
  }
  Entry marker;
  marker.is_event = true;
  marker.event = event;
  sit->second.queue.push_back(std::move(marker));
  return CudaResult::kSuccess;
}

void CudaContext::CompleteEvent(EventId event) {
  auto it = events_.find(event);
  if (it == events_.end()) return;  // destroyed while in a queue
  it->second.complete = true;
  it->second.completed_at = device_->sim()->Now();
  auto waiters = std::move(it->second.waiters);
  it->second.waiters.clear();
  for (auto& fn : waiters) {
    if (fn) fn();
  }
}

CudaResult CudaContext::EventQuery(EventId event) {
  auto it = events_.find(event);
  if (it == events_.end()) return CudaResult::kErrorInvalidHandle;
  if (!it->second.recorded) return CudaResult::kErrorInvalidValue;
  return it->second.complete ? CudaResult::kSuccess
                             : CudaResult::kErrorNotReady;
}

CudaResult CudaContext::EventSynchronize(EventId event, HostFn fn) {
  if (!fn) return CudaResult::kErrorInvalidValue;
  auto it = events_.find(event);
  if (it == events_.end()) return CudaResult::kErrorInvalidHandle;
  if (!it->second.recorded) return CudaResult::kErrorInvalidValue;
  if (it->second.complete) {
    fn();
  } else {
    it->second.waiters.push_back(std::move(fn));
  }
  return CudaResult::kSuccess;
}

CudaResult CudaContext::EventElapsedTime(Duration* out, EventId start,
                                         EventId end) {
  if (out == nullptr) return CudaResult::kErrorInvalidValue;
  auto sit = events_.find(start);
  auto eit = events_.find(end);
  if (sit == events_.end() || eit == events_.end()) {
    return CudaResult::kErrorInvalidHandle;
  }
  if (!sit->second.complete || !eit->second.complete) {
    return CudaResult::kErrorNotReady;
  }
  *out = eit->second.completed_at - sit->second.completed_at;
  return CudaResult::kSuccess;
}

CudaResult CudaContext::EventDestroy(EventId event) {
  if (events_.erase(event) == 0) return CudaResult::kErrorInvalidHandle;
  return CudaResult::kSuccess;
}

}  // namespace ks::cuda
