#pragma once

#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/ids.hpp"
#include "cuda/api.hpp"
#include "gpu/device.hpp"

namespace ks::cuda {

/// Driver-level CUDA context: binds one container to one device and
/// implements the CudaApi surface directly against the simulated GPU.
///
/// Stream ordering is enforced here (the device itself executes whatever it
/// is given): each stream is a FIFO — at most one kernel of a stream is in
/// flight on the device; the next is submitted when the previous retires.
/// Kernels of different streams (or different contexts) overlap on the
/// device, which is what makes the no-compute-isolation baselines
/// measurably interfere.
class CudaContext final : public CudaApi {
 public:
  CudaContext(gpu::GpuDevice* device, ContainerId owner);
  ~CudaContext() override;

  CudaContext(const CudaContext&) = delete;
  CudaContext& operator=(const CudaContext&) = delete;

  const ContainerId& owner() const { return owner_; }
  gpu::GpuDevice* device() const { return device_; }

  CudaResult MemAlloc(gpu::DevicePtr* out, std::uint64_t bytes) override;
  CudaResult MemFree(gpu::DevicePtr ptr) override;
  CudaResult ArrayCreate(gpu::DevicePtr* out, std::uint64_t width,
                         std::uint64_t height,
                         std::uint64_t element_bytes) override;
  CudaResult MemPrefetch(std::uint64_t bytes, Duration duration,
                         HostFn on_complete) override;

  CudaResult StreamCreate(StreamId* out) override;
  CudaResult StreamDestroy(StreamId stream) override;

  CudaResult LaunchKernel(const gpu::KernelDesc& desc, StreamId stream,
                          HostFn on_complete) override;
  CudaResult LaunchKernelStream(const gpu::KernelDesc& desc, int count,
                                StreamId stream,
                                gpu::UnitDoneFn on_unit) override;
  std::size_t CancelPending(StreamId stream) override;
  std::size_t RetiredUnits(StreamId stream) const override;
  Duration ExclusiveKernelTime(const gpu::KernelDesc& desc) const override;
  Time Now() const override;
  CudaResult Synchronize(HostFn fn) override;

  CudaResult EventCreate(EventId* out) override;
  CudaResult EventRecord(EventId event, StreamId stream) override;
  CudaResult EventQuery(EventId event) override;
  CudaResult EventSynchronize(EventId event, HostFn fn) override;
  CudaResult EventElapsedTime(Duration* out, EventId start,
                              EventId end) override;
  CudaResult EventDestroy(EventId event) override;

  std::uint64_t AllocatedBytes() const override { return allocated_bytes_; }
  std::size_t PendingKernels() const override { return pending_kernels_; }

 private:
  /// A stream queue entry: a kernel, a declared repeat run (fused-stream
  /// path), or an event marker that completes the event once every earlier
  /// kernel on the stream has retired.
  struct Entry {
    bool is_event = false;
    bool is_repeat = false;
    int count = 1;  // units, for repeat entries
    gpu::KernelDesc desc;
    HostFn fn;
    gpu::UnitDoneFn unit_fn;
    EventId event = 0;
  };
  struct Stream {
    std::deque<Entry> queue;
    bool in_flight = false;
    /// Kernels of this stream retired so far (both entry points).
    std::size_t retired_units = 0;
    /// In-flight repeat batch forwarded to the device as one SubmitRepeat:
    /// adjacent identical-desc repeat entries coalesce, and `segs` maps
    /// delivered units back to each entry's callback.
    gpu::RepeatId batch = 0;
    std::size_t batch_size = 0;
    std::size_t batch_delivered = 0;
    std::vector<std::pair<int, gpu::UnitDoneFn>> segs;
    std::size_t seg_idx = 0;
    int seg_fired = 0;
  };
  struct EventState {
    bool recorded = false;
    bool complete = false;
    Time completed_at{0};
    std::vector<HostFn> waiters;
  };

  void SubmitNext(StreamId stream_id);
  void OnKernelRetired(StreamId stream_id, HostFn user_fn);
  void OnUnitRetired(StreamId stream_id, Time finish);
  void CompleteEvent(EventId event);
  void MaybeFireSync();

  gpu::GpuDevice* device_;
  ContainerId owner_;

  std::uint64_t allocated_bytes_ = 0;
  std::unordered_set<gpu::DevicePtr> owned_ptrs_;

  StreamId next_stream_ = 1;
  std::unordered_map<StreamId, Stream> streams_;

  EventId next_event_ = 1;
  std::unordered_map<EventId, EventState> events_;

  std::size_t pending_kernels_ = 0;
  std::vector<HostFn> sync_waiters_;
};

}  // namespace ks::cuda
