#include "chaos/fault_plan.hpp"

#include <algorithm>
#include <random>

namespace ks::chaos {

namespace {

// Thin deterministic helpers over mt19937_64. std::uniform_*_distribution
// is implementation-defined; raw modulo/scaling keeps a plan byte-identical
// for a given seed regardless of the standard library.
std::uint64_t NextIndex(std::mt19937_64& rng, std::uint64_t n) {
  return n == 0 ? 0 : rng() % n;
}

double NextDouble(std::mt19937_64& rng) {
  return static_cast<double>(rng() >> 11) * (1.0 / 9007199254740992.0);
}

Duration NextDuration(std::mt19937_64& rng, Duration lo, Duration hi) {
  if (hi <= lo) return lo;
  const std::uint64_t span = static_cast<std::uint64_t>((hi - lo).count());
  return lo + Duration{static_cast<std::int64_t>(NextIndex(rng, span))};
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNodeCrash: return "NodeCrash";
    case FaultKind::kNodeRecover: return "NodeRecover";
    case FaultKind::kTokenDaemonRestart: return "TokenDaemonRestart";
    case FaultKind::kContainerOomKill: return "ContainerOomKill";
    case FaultKind::kApiLatencySpike: return "ApiLatencySpike";
    case FaultKind::kDropWatchEvent: return "DropWatchEvent";
    case FaultKind::kDevMgrCrash: return "DevMgrCrash";
    case FaultKind::kSchedCrash: return "SchedCrash";
    case FaultKind::kLeaderPartition: return "LeaderPartition";
    case FaultKind::kTenantTokenOverstay: return "TenantTokenOverstay";
    case FaultKind::kTenantKernelFlood: return "TenantKernelFlood";
    case FaultKind::kTenantMemoryProbe: return "TenantMemoryProbe";
    case FaultKind::kTenantMetricsSpoof: return "TenantMetricsSpoof";
  }
  return "Unknown";
}

std::string Fault::ToString() const {
  std::string out = FormatTime(at);
  out += " ";
  out += FaultKindName(kind);
  if (!node.empty()) out += " node=" + node;
  if (!pod.empty()) out += " pod=" + pod;
  if (duration.count() > 0) out += " duration=" + FormatTime(duration);
  if (latency.count() > 0) out += " latency=" + FormatTime(latency);
  if (drop_count > 0) out += " drop=" + std::to_string(drop_count);
  return out;
}

FaultPlan FaultPlan::Random(const RandomPlanOptions& options) {
  std::mt19937_64 rng(options.seed);
  struct Entry {
    FaultKind kind;
    double weight;
  };
  std::vector<Entry> entries;
  if (!options.nodes.empty()) {
    if (options.node_crash_weight > 0) {
      entries.push_back({FaultKind::kNodeCrash, options.node_crash_weight});
    }
    if (options.daemon_restart_weight > 0) {
      entries.push_back(
          {FaultKind::kTokenDaemonRestart, options.daemon_restart_weight});
    }
  }
  if (options.oom_kill_weight > 0) {
    entries.push_back({FaultKind::kContainerOomKill, options.oom_kill_weight});
  }
  if (options.latency_spike_weight > 0) {
    entries.push_back(
        {FaultKind::kApiLatencySpike, options.latency_spike_weight});
  }
  if (options.drop_event_weight > 0) {
    entries.push_back({FaultKind::kDropWatchEvent, options.drop_event_weight});
  }
  if (options.devmgr_crash_weight > 0) {
    entries.push_back({FaultKind::kDevMgrCrash, options.devmgr_crash_weight});
  }
  if (options.sched_crash_weight > 0) {
    entries.push_back({FaultKind::kSchedCrash, options.sched_crash_weight});
  }
  if (options.leader_partition_weight > 0) {
    entries.push_back(
        {FaultKind::kLeaderPartition, options.leader_partition_weight});
  }
  // Adversarial kinds append after every pre-existing entry so a plan that
  // enables none of them draws the identical PRNG sequence as before.
  if (options.tenant_overstay_weight > 0) {
    entries.push_back(
        {FaultKind::kTenantTokenOverstay, options.tenant_overstay_weight});
  }
  if (options.tenant_flood_weight > 0) {
    entries.push_back(
        {FaultKind::kTenantKernelFlood, options.tenant_flood_weight});
  }
  if (options.tenant_probe_weight > 0) {
    entries.push_back(
        {FaultKind::kTenantMemoryProbe, options.tenant_probe_weight});
  }
  if (options.tenant_spoof_weight > 0) {
    entries.push_back(
        {FaultKind::kTenantMetricsSpoof, options.tenant_spoof_weight});
  }

  FaultPlan plan;
  if (entries.empty() || options.fault_count <= 0) return plan;
  double total_weight = 0;
  for (const Entry& e : entries) total_weight += e.weight;

  for (int i = 0; i < options.fault_count; ++i) {
    Fault fault;
    fault.at = options.start +
               NextDuration(rng, Duration{0}, options.horizon - options.start);
    double pick = NextDouble(rng) * total_weight;
    fault.kind = entries.back().kind;
    for (const Entry& e : entries) {
      if (pick < e.weight) {
        fault.kind = e.kind;
        break;
      }
      pick -= e.weight;
    }
    switch (fault.kind) {
      case FaultKind::kNodeCrash:
        fault.node = options.nodes[NextIndex(rng, options.nodes.size())];
        fault.duration =
            NextDuration(rng, options.outage_min, options.outage_max);
        break;
      case FaultKind::kTokenDaemonRestart:
        fault.node = options.nodes[NextIndex(rng, options.nodes.size())];
        break;
      case FaultKind::kContainerOomKill:
        break;  // pod chosen at injection time from the live cluster
      case FaultKind::kApiLatencySpike:
        fault.latency = options.spike_latency;
        fault.duration = options.spike_duration;
        break;
      case FaultKind::kDropWatchEvent:
        fault.drop_count =
            options.drop_count_min +
            static_cast<int>(NextIndex(
                rng, static_cast<std::uint64_t>(
                         options.drop_count_max - options.drop_count_min + 1)));
        break;
      case FaultKind::kDevMgrCrash:
      case FaultKind::kSchedCrash:
        fault.duration = NextDuration(rng, options.controller_downtime_min,
                                      options.controller_downtime_max);
        break;
      case FaultKind::kLeaderPartition:
        fault.duration =
            NextDuration(rng, options.partition_min, options.partition_max);
        break;
      case FaultKind::kTenantTokenOverstay:
      case FaultKind::kTenantKernelFlood:
      case FaultKind::kTenantMemoryProbe:
      case FaultKind::kTenantMetricsSpoof:
        // Target job chosen at injection time from the live cluster.
        fault.duration =
            NextDuration(rng, options.adversarial_min, options.adversarial_max);
        break;
      case FaultKind::kNodeRecover:
        break;  // never generated: crashes carry their own outage duration
    }
    plan.faults.push_back(std::move(fault));
  }
  // Stable sort by time: equal-time faults keep generation order, so the
  // plan (and thus the injection sequence) is fully deterministic.
  std::stable_sort(
      plan.faults.begin(), plan.faults.end(),
      [](const Fault& a, const Fault& b) { return a.at < b.at; });
  return plan;
}

std::string FaultPlan::ToString() const {
  std::string out;
  for (const Fault& f : faults) {
    out += f.ToString();
    out += "\n";
  }
  return out;
}

}  // namespace ks::chaos
