#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/fault_plan.hpp"
#include "common/status.hpp"
#include "k8s/cluster.hpp"
#include "k8s/leader_election.hpp"
#include "kubeshare/kubeshare.hpp"

namespace ks::workload {
class WorkloadHost;
}  // namespace ks::workload

namespace ks::chaos {

/// Everything the injector itself can observe about a chaos run. The
/// component-level recovery counters (evictions, vGPUs reclaimed, sharePods
/// requeued, frontends re-registered) live on the components that perform
/// the recovery; metrics::CollectRecoveryMetrics gathers both sides.
struct ChaosStats {
  std::uint64_t faults_injected = 0;
  std::uint64_t node_crashes = 0;
  std::uint64_t node_recoveries = 0;
  std::uint64_t daemon_restarts = 0;
  /// Daemon restarts after which the node's token timer wheel was verified
  /// re-armed (a pending rebuild deadline exists — the wheel cannot be left
  /// dead after InvalidateAll, or every lease on the node would hang).
  std::uint64_t wheel_rearms_verified = 0;
  std::uint64_t oom_kills = 0;
  std::uint64_t latency_spikes = 0;
  std::uint64_t watch_events_dropped = 0;
  std::uint64_t devmgr_crashes = 0;
  std::uint64_t sched_crashes = 0;
  std::uint64_t leader_partitions = 0;
  /// Adversarial-tenant faults injected, by kind, plus how many hostile
  /// windows were closed again (the tenant returned to the polite
  /// protocol; windows open at end-of-run or ended by eviction don't
  /// close).
  std::uint64_t tenant_overstays = 0;
  std::uint64_t tenant_floods = 0;
  std::uint64_t tenant_probes = 0;
  std::uint64_t tenant_spoofs = 0;
  std::uint64_t tenant_attacks_cleared = 0;
  /// Faults skipped because their target was gone (node already down,
  /// no running pod to OOM-kill, ...). Skips are recorded, not errors —
  /// a random plan may legitimately race its own outages.
  std::uint64_t faults_skipped = 0;

  /// Node-crash recovery measurement: a crash snapshots the pods bound to
  /// the node; the fault is "recovered" when none of them is still
  /// non-terminal on that node (evicted, finished, or requeued elsewhere).
  std::uint64_t recoveries_measured = 0;
  std::uint64_t recoveries_timed_out = 0;
  Duration total_recovery_time{0};

  /// DevMgr-crash recovery: crash snapshots the non-terminal sharePods;
  /// recovered when the rebuilt pool passes its index invariants and every
  /// snapshot member is terminal, requeued, running, or has a live
  /// workload pod again.
  std::uint64_t devmgr_recoveries_measured = 0;
  Duration devmgr_recovery_time{0};
  /// Sched-crash recovery: crash snapshots the unscheduled sharePods;
  /// recovered when each is scheduled, terminal, or gone.
  std::uint64_t sched_recoveries_measured = 0;
  Duration sched_recovery_time{0};
  /// Leader-partition recovery: time until a non-partitioned candidate
  /// holds leadership again.
  std::uint64_t leader_takeovers_measured = 0;
  Duration leader_takeover_time{0};

  Duration MeanTimeToRecovery() const {
    if (recoveries_measured == 0) return Duration{0};
    return total_recovery_time / static_cast<std::int64_t>(recoveries_measured);
  }
  Duration MeanDevMgrRecovery() const {
    if (devmgr_recoveries_measured == 0) return Duration{0};
    return devmgr_recovery_time /
           static_cast<std::int64_t>(devmgr_recoveries_measured);
  }
  Duration MeanSchedRecovery() const {
    if (sched_recoveries_measured == 0) return Duration{0};
    return sched_recovery_time /
           static_cast<std::int64_t>(sched_recoveries_measured);
  }
  Duration MeanLeaderTakeover() const {
    if (leader_takeovers_measured == 0) return Duration{0};
    return leader_takeover_time /
           static_cast<std::int64_t>(leader_takeovers_measured);
  }
};

struct InjectorConfig {
  /// Poll cadence for the node-crash recovery (MTTR) probe.
  Duration recovery_poll = Millis(500);
  /// Give up probing a crash's recovery after this long (keeps the event
  /// queue drainable if the cluster never re-converges).
  Duration recovery_timeout = Seconds(120);
};

/// Deterministic fault injector: replays a FaultPlan through the simulation
/// clock against a live cluster. Every injection lands in the event queue
/// at its scripted time, so the same plan against the same cluster and
/// workload yields a byte-identical event timeline.
class FaultInjector {
 public:
  FaultInjector(k8s::Cluster* cluster, FaultPlan plan,
                InjectorConfig config = {});

  /// Schedules every fault in the plan. Call once, before running the
  /// simulation (faults whose time has already passed are skipped).
  Status Arm();

  /// Targets the KubeShare control plane for kDevMgrCrash / kSchedCrash
  /// (and registers its elector for kLeaderPartition, when it has one).
  /// Without this, controller faults are recorded as skips.
  void SetKubeShare(kubeshare::KubeShare* kubeshare);

  /// Registers an additional leader-election candidate (e.g. a standby
  /// replica in a test) as a kLeaderPartition target / takeover observer.
  void RegisterElector(k8s::LeaderElector* elector);

  /// Targets the workload host for the kTenant* adversarial faults — the
  /// injector flips a running job's frontend hook hostile through it.
  /// Without this, adversarial faults are recorded as skips.
  void SetWorkloadHost(workload::WorkloadHost* host);

  const ChaosStats& stats() const { return stats_; }
  const FaultPlan& plan() const { return plan_; }

 private:
  void Inject(const Fault& fault);
  void InjectNodeCrash(const Fault& fault);
  void InjectNodeRecover(const Fault& fault);
  void InjectDaemonRestart(const Fault& fault);
  void InjectOomKill(const Fault& fault);
  void InjectDropEvents(const Fault& fault);
  void InjectLatencySpike(const Fault& fault);
  void InjectDevMgrCrash(const Fault& fault);
  void InjectSchedCrash(const Fault& fault);
  void InjectLeaderPartition(const Fault& fault);
  void InjectAdversarial(const Fault& fault);
  /// Drops `kind`'s behavior flag from the job's hook when the hostile
  /// window closes (other still-open windows keep their flags).
  void ClearAdversarial(const std::string& job, FaultKind kind);

  /// MTTR probe for one node crash: polls until every pod that was bound
  /// to the node at crash time has left it (or the timeout expires).
  void PollRecovery(std::string node, std::vector<std::string> affected,
                    Time crashed_at);
  /// MTTR probes for the controller crash faults (see ChaosStats).
  void PollDevMgrRecovery(std::vector<std::string> snapshot, Time crashed_at);
  void PollSchedRecovery(std::vector<std::string> snapshot, Time crashed_at);
  void PollLeaderTakeover(Time partitioned_at);
  void RecordSkip(const Fault& fault, const std::string& why);

  k8s::Cluster* cluster_;
  FaultPlan plan_;
  InjectorConfig config_;
  kubeshare::KubeShare* kubeshare_ = nullptr;
  workload::WorkloadHost* workload_host_ = nullptr;
  std::vector<k8s::LeaderElector*> electors_;
  bool armed_ = false;
  ChaosStats stats_;
};

}  // namespace ks::chaos
