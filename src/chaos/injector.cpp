#include "chaos/injector.hpp"

#include <cassert>

#include "k8s/resources.hpp"
#include "workload/host.hpp"

namespace ks::chaos {

namespace {
constexpr const char* kComponent = "chaos";
}  // namespace

FaultInjector::FaultInjector(k8s::Cluster* cluster, FaultPlan plan,
                             InjectorConfig config)
    : cluster_(cluster), plan_(std::move(plan)), config_(config) {
  assert(cluster_ != nullptr);
}

void FaultInjector::SetKubeShare(kubeshare::KubeShare* kubeshare) {
  kubeshare_ = kubeshare;
  if (kubeshare_ != nullptr && kubeshare_->elector() != nullptr) {
    RegisterElector(kubeshare_->elector());
  }
}

void FaultInjector::SetWorkloadHost(workload::WorkloadHost* host) {
  workload_host_ = host;
}

void FaultInjector::RegisterElector(k8s::LeaderElector* elector) {
  for (k8s::LeaderElector* e : electors_) {
    if (e == elector) return;
  }
  electors_.push_back(elector);
}

Status FaultInjector::Arm() {
  if (armed_) return FailedPreconditionError("injector already armed");
  armed_ = true;
  const Time now = cluster_->sim().Now();
  for (const Fault& fault : plan_.faults) {
    if (fault.at < now) continue;
    cluster_->sim().ScheduleAfter(fault.at - now,
                                  [this, fault] { Inject(fault); });
  }
  return Status::Ok();
}

void FaultInjector::Inject(const Fault& fault) {
  cluster_->api().events().Record(kComponent, "plan", "InjectFault",
                                  fault.ToString());
  switch (fault.kind) {
    case FaultKind::kNodeCrash: InjectNodeCrash(fault); break;
    case FaultKind::kNodeRecover: InjectNodeRecover(fault); break;
    case FaultKind::kTokenDaemonRestart: InjectDaemonRestart(fault); break;
    case FaultKind::kContainerOomKill: InjectOomKill(fault); break;
    case FaultKind::kApiLatencySpike: InjectLatencySpike(fault); break;
    case FaultKind::kDropWatchEvent: InjectDropEvents(fault); break;
    case FaultKind::kDevMgrCrash: InjectDevMgrCrash(fault); break;
    case FaultKind::kSchedCrash: InjectSchedCrash(fault); break;
    case FaultKind::kLeaderPartition: InjectLeaderPartition(fault); break;
    case FaultKind::kTenantTokenOverstay:
    case FaultKind::kTenantKernelFlood:
    case FaultKind::kTenantMemoryProbe:
    case FaultKind::kTenantMetricsSpoof:
      InjectAdversarial(fault);
      break;
  }
}

void FaultInjector::RecordSkip(const Fault& fault, const std::string& why) {
  ++stats_.faults_skipped;
  cluster_->api().events().Record(kComponent, "plan", "FaultSkipped",
                                  std::string(FaultKindName(fault.kind)) +
                                      ": " + why);
}

void FaultInjector::InjectNodeCrash(const Fault& fault) {
  if (cluster_->NodeCrashed(fault.node)) {
    RecordSkip(fault, "node already down: " + fault.node);
    return;
  }
  // Snapshot the affected set BEFORE the crash: the non-terminal pods
  // bound to the node. Recovery = all of them gone from the node.
  std::vector<std::string> affected;
  for (const k8s::Pod& pod : cluster_->api().pods().List()) {
    if (pod.status.node_name == fault.node && !pod.terminal()) {
      affected.push_back(pod.meta.name);
    }
  }
  const Status crashed = cluster_->CrashNode(fault.node);
  if (!crashed.ok()) {
    RecordSkip(fault, crashed.ToString());
    return;
  }
  ++stats_.faults_injected;
  ++stats_.node_crashes;
  const Time crashed_at = cluster_->sim().Now();
  if (!affected.empty()) {
    cluster_->sim().ScheduleAfter(config_.recovery_poll,
                                  [this, node = fault.node, affected,
                                   crashed_at]() mutable {
                                    PollRecovery(std::move(node),
                                                 std::move(affected),
                                                 crashed_at);
                                  });
  }
  if (fault.duration.count() > 0) {
    cluster_->sim().ScheduleAfter(fault.duration, [this, fault] {
      Fault recover;
      recover.at = fault.at + fault.duration;
      recover.kind = FaultKind::kNodeRecover;
      recover.node = fault.node;
      Inject(recover);
    });
  }
}

void FaultInjector::InjectNodeRecover(const Fault& fault) {
  if (!cluster_->NodeCrashed(fault.node)) {
    RecordSkip(fault, "node not down: " + fault.node);
    return;
  }
  const Status recovered = cluster_->RecoverNode(fault.node);
  if (!recovered.ok()) {
    RecordSkip(fault, recovered.ToString());
    return;
  }
  ++stats_.faults_injected;
  ++stats_.node_recoveries;
}

void FaultInjector::InjectDaemonRestart(const Fault& fault) {
  k8s::Cluster::NodeHandle* node = cluster_->FindNode(fault.node);
  if (node == nullptr) {
    RecordSkip(fault, "no node: " + fault.node);
    return;
  }
  if (node->crashed) {
    RecordSkip(fault, "node down, daemon already dead: " + fault.node);
    return;
  }
  node->token_backend->Restart();
  ++stats_.faults_injected;
  ++stats_.daemon_restarts;
  // Restart() wipes every pending renewal (the wheel's InvalidateAll);
  // the rebuild deadline it schedules must be the one timer left standing,
  // or the daemon never comes back and every lease on the node hangs.
  assert(node->token_backend->down());
  if (node->token_backend->pending_timers() > 0) {
    ++stats_.wheel_rearms_verified;
    cluster_->api().events().Record(kComponent, "node/" + fault.node,
                                    "TokenWheelRearmed");
  }
}

void FaultInjector::InjectOomKill(const Fault& fault) {
  std::string target = fault.pod;
  if (target.empty()) {
    // The kernel OOM-killer goes for the memory hog: pick the running pod
    // with the largest memory request, tie-broken by CPU request and then
    // by name (List() is name-sorted), so the choice is a deterministic
    // function of cluster state. Infrastructure pause pods request
    // nothing and are only hit when nothing else runs.
    std::pair<std::int64_t, std::int64_t> best{-1, -1};
    for (const k8s::Pod& pod : cluster_->api().pods().List()) {
      if (pod.status.phase != k8s::PodPhase::kRunning || pod.terminal()) {
        continue;
      }
      const std::pair<std::int64_t, std::int64_t> score{
          pod.spec.requests.Get(k8s::kResourceMemory),
          pod.spec.requests.Get(k8s::kResourceCpu)};
      if (score > best) {
        best = score;
        target = pod.meta.name;
      }
    }
  }
  if (target.empty()) {
    RecordSkip(fault, "no running pod to OOM-kill");
    return;
  }
  const Status killed = cluster_->OomKillPod(target);
  if (!killed.ok()) {
    RecordSkip(fault, killed.ToString());
    return;
  }
  ++stats_.faults_injected;
  ++stats_.oom_kills;
}

void FaultInjector::InjectLatencySpike(const Fault& fault) {
  k8s::ObjectStore<k8s::Pod>& pods = cluster_->api().pods();
  k8s::ObjectStore<k8s::Node>& nodes = cluster_->api().nodes();
  const Duration pods_before = pods.notify_latency();
  const Duration nodes_before = nodes.notify_latency();
  pods.SetNotifyLatency(fault.latency);
  nodes.SetNotifyLatency(fault.latency);
  ++stats_.faults_injected;
  ++stats_.latency_spikes;
  cluster_->sim().ScheduleAfter(
      fault.duration, [this, pods_before, nodes_before] {
        cluster_->api().pods().SetNotifyLatency(pods_before);
        cluster_->api().nodes().SetNotifyLatency(nodes_before);
        cluster_->api().events().Record(kComponent, "apiserver",
                                        "LatencyRestored");
      });
}

void FaultInjector::InjectDropEvents(const Fault& fault) {
  cluster_->api().pods().DropEvents(fault.drop_count);
  ++stats_.faults_injected;
  stats_.watch_events_dropped += static_cast<std::uint64_t>(fault.drop_count);
}

void FaultInjector::InjectDevMgrCrash(const Fault& fault) {
  if (kubeshare_ == nullptr) {
    RecordSkip(fault, "no KubeShare control plane attached");
    return;
  }
  if (kubeshare_->devmgr().crashes() > kubeshare_->devmgr().rebuilds()) {
    RecordSkip(fault, "DevMgr already down");
    return;
  }
  // Snapshot the in-flight population: every non-terminal sharePod at the
  // moment of death. Recovery = each one terminal, requeued, or running
  // again under the rebuilt pool.
  std::vector<std::string> snapshot;
  for (const kubeshare::SharePod& sp : kubeshare_->sharepods().List()) {
    if (!sp.terminal()) snapshot.push_back(sp.meta.name);
  }
  kubeshare_->devmgr().Crash();
  ++stats_.faults_injected;
  ++stats_.devmgr_crashes;
  const Time crashed_at = cluster_->sim().Now();
  const Duration downtime =
      fault.duration.count() > 0 ? fault.duration : Seconds(2);
  cluster_->sim().ScheduleAfter(downtime, [this, snapshot, crashed_at] {
    const Status restarted = kubeshare_->devmgr().Restart();
    cluster_->api().events().Record(kComponent, "kubeshare-devmgr",
                                    "Restarted", restarted.ToString());
    cluster_->sim().ScheduleAfter(
        config_.recovery_poll, [this, snapshot, crashed_at]() mutable {
          PollDevMgrRecovery(std::move(snapshot), crashed_at);
        });
  });
}

void FaultInjector::InjectSchedCrash(const Fault& fault) {
  if (kubeshare_ == nullptr) {
    RecordSkip(fault, "no KubeShare control plane attached");
    return;
  }
  // Snapshot the pending population: recovery = each one placed (or
  // terminal/deleted) after the restart's relist.
  std::vector<std::string> snapshot;
  for (const kubeshare::SharePod& sp : kubeshare_->sharepods().List()) {
    if (!sp.terminal() && !sp.scheduled()) snapshot.push_back(sp.meta.name);
  }
  kubeshare_->sched().Crash();
  ++stats_.faults_injected;
  ++stats_.sched_crashes;
  const Time crashed_at = cluster_->sim().Now();
  const Duration downtime =
      fault.duration.count() > 0 ? fault.duration : Seconds(2);
  cluster_->sim().ScheduleAfter(downtime, [this, snapshot, crashed_at] {
    const Status restarted = kubeshare_->sched().Restart();
    cluster_->api().events().Record(kComponent, "kubeshare-sched",
                                    "Restarted", restarted.ToString());
    cluster_->sim().ScheduleAfter(
        config_.recovery_poll, [this, snapshot, crashed_at]() mutable {
          PollSchedRecovery(std::move(snapshot), crashed_at);
        });
  });
}

void FaultInjector::InjectLeaderPartition(const Fault& fault) {
  k8s::LeaderElector* leader = nullptr;
  for (k8s::LeaderElector* e : electors_) {
    if (e->IsLeader() && !e->partitioned()) leader = e;
  }
  if (leader == nullptr) {
    RecordSkip(fault, "no un-partitioned leader to partition");
    return;
  }
  leader->SetPartitioned(true);
  ++stats_.faults_injected;
  ++stats_.leader_partitions;
  cluster_->api().events().Record(kComponent, "leader-election",
                                  "LeaderPartitioned",
                                  leader->config().identity);
  const Time partitioned_at = cluster_->sim().Now();
  const Duration length =
      fault.duration.count() > 0 ? fault.duration : Seconds(15);
  cluster_->sim().ScheduleAfter(length, [this, leader] {
    leader->SetPartitioned(false);
    cluster_->api().events().Record(kComponent, "leader-election",
                                    "PartitionHealed",
                                    leader->config().identity);
  });
  cluster_->sim().ScheduleAfter(config_.recovery_poll, [this, partitioned_at] {
    PollLeaderTakeover(partitioned_at);
  });
}

void FaultInjector::InjectAdversarial(const Fault& fault) {
  if (workload_host_ == nullptr) {
    RecordSkip(fault, "no workload host attached");
    return;
  }
  std::string job = fault.pod;
  if (job.empty()) {
    // Deterministic default target: the first running KubeShare job in
    // name order — a pure function of cluster state, like the OOM-killer's
    // memory-hog pick above.
    const std::vector<std::string> running =
        workload_host_->RunningKubeShareJobs();
    if (!running.empty()) job = running.front();
  }
  if (job.empty()) {
    RecordSkip(fault, "no running KubeShare job to turn hostile");
    return;
  }
  vgpu::FrontendHook* hook = workload_host_->MutableRunningHook(job);
  if (hook == nullptr) {
    RecordSkip(fault, "job not running under a frontend hook: " + job);
    return;
  }
  // Overlapping windows compose: start from whatever misbehavior is
  // already active and add this fault's flag.
  vgpu::AdversarialSpec spec =
      hook->adversarial() ? *hook->adversarial_spec() : vgpu::AdversarialSpec{};
  switch (fault.kind) {
    case FaultKind::kTenantTokenOverstay:
      spec.overstay = true;
      ++stats_.tenant_overstays;
      break;
    case FaultKind::kTenantKernelFlood:
      spec.kernel_flood = true;
      ++stats_.tenant_floods;
      break;
    case FaultKind::kTenantMemoryProbe:
      spec.memory_probe = true;
      ++stats_.tenant_probes;
      break;
    case FaultKind::kTenantMetricsSpoof:
      spec.metrics_spoof = true;
      ++stats_.tenant_spoofs;
      break;
    default:
      RecordSkip(fault, "not an adversarial fault");
      return;
  }
  hook->SetAdversarial(spec, &cluster_->sim());
  ++stats_.faults_injected;
  cluster_->api().events().Record(kComponent, "job/" + job, "TenantHostile",
                                  FaultKindName(fault.kind));
  if (fault.duration.count() > 0) {
    cluster_->sim().ScheduleAfter(fault.duration,
                                  [this, job, kind = fault.kind] {
                                    ClearAdversarial(job, kind);
                                  });
  }
}

void FaultInjector::ClearAdversarial(const std::string& job, FaultKind kind) {
  // Re-resolve: the job may have finished, been evicted, or restarted into
  // a fresh (polite) hook since the window opened.
  vgpu::FrontendHook* hook =
      workload_host_ == nullptr ? nullptr
                                : workload_host_->MutableRunningHook(job);
  if (hook == nullptr || !hook->adversarial()) return;
  vgpu::AdversarialSpec spec = *hook->adversarial_spec();
  switch (kind) {
    case FaultKind::kTenantTokenOverstay: spec.overstay = false; break;
    case FaultKind::kTenantKernelFlood: spec.kernel_flood = false; break;
    case FaultKind::kTenantMemoryProbe: spec.memory_probe = false; break;
    case FaultKind::kTenantMetricsSpoof: spec.metrics_spoof = false; break;
    default: return;
  }
  if (spec.overstay || spec.kernel_flood || spec.memory_probe ||
      spec.metrics_spoof) {
    hook->SetAdversarial(spec, &cluster_->sim());
  } else {
    hook->ClearAdversarial();
  }
  ++stats_.tenant_attacks_cleared;
  cluster_->api().events().Record(kComponent, "job/" + job, "TenantPolite",
                                  FaultKindName(kind));
}

void FaultInjector::PollDevMgrRecovery(std::vector<std::string> snapshot,
                                       Time crashed_at) {
  const Time now = cluster_->sim().Now();
  bool clear = kubeshare_->pool().CheckIndexInvariants().ok();
  if (clear) {
    for (const std::string& name : snapshot) {
      auto sp = kubeshare_->sharepods().Get(name);
      if (!sp.ok() || sp->terminal()) continue;  // finished or deleted
      if (!sp->scheduled()) continue;            // requeued: sched's court
      if (sp->status.phase == kubeshare::SharePodPhase::kRunning) continue;
      // Scheduled but not running: converged only once its workload pod
      // exists again (acquisition/launch still in flight otherwise).
      if (!sp->status.workload_pod.empty() &&
          cluster_->api().pods().Contains(sp->status.workload_pod)) {
        continue;
      }
      clear = false;
      break;
    }
  }
  if (clear) {
    ++stats_.devmgr_recoveries_measured;
    stats_.devmgr_recovery_time += now - crashed_at;
    cluster_->api().events().Record(
        kComponent, "kubeshare-devmgr", "Recovered",
        "converged in " + FormatTime(now - crashed_at));
    return;
  }
  if (now - crashed_at >= config_.recovery_timeout) {
    ++stats_.recoveries_timed_out;
    cluster_->api().events().Record(kComponent, "kubeshare-devmgr",
                                    "RecoveryTimeout");
    return;
  }
  cluster_->sim().ScheduleAfter(
      config_.recovery_poll,
      [this, snapshot = std::move(snapshot), crashed_at]() mutable {
        PollDevMgrRecovery(std::move(snapshot), crashed_at);
      });
}

void FaultInjector::PollSchedRecovery(std::vector<std::string> snapshot,
                                      Time crashed_at) {
  const Time now = cluster_->sim().Now();
  bool clear = true;
  for (const std::string& name : snapshot) {
    auto sp = kubeshare_->sharepods().Get(name);
    if (!sp.ok() || sp->terminal() || sp->scheduled()) continue;
    clear = false;
    break;
  }
  if (clear) {
    ++stats_.sched_recoveries_measured;
    stats_.sched_recovery_time += now - crashed_at;
    cluster_->api().events().Record(
        kComponent, "kubeshare-sched", "Recovered",
        "converged in " + FormatTime(now - crashed_at));
    return;
  }
  if (now - crashed_at >= config_.recovery_timeout) {
    ++stats_.recoveries_timed_out;
    cluster_->api().events().Record(kComponent, "kubeshare-sched",
                                    "RecoveryTimeout");
    return;
  }
  cluster_->sim().ScheduleAfter(
      config_.recovery_poll,
      [this, snapshot = std::move(snapshot), crashed_at]() mutable {
        PollSchedRecovery(std::move(snapshot), crashed_at);
      });
}

void FaultInjector::PollLeaderTakeover(Time partitioned_at) {
  const Time now = cluster_->sim().Now();
  for (k8s::LeaderElector* e : electors_) {
    if (e->IsLeader() && !e->partitioned()) {
      ++stats_.leader_takeovers_measured;
      stats_.leader_takeover_time += now - partitioned_at;
      cluster_->api().events().Record(
          kComponent, "leader-election", "TakeoverObserved",
          e->config().identity + " after " + FormatTime(now - partitioned_at));
      return;
    }
  }
  if (now - partitioned_at >= config_.recovery_timeout) {
    ++stats_.recoveries_timed_out;
    cluster_->api().events().Record(kComponent, "leader-election",
                                    "TakeoverTimeout");
    return;
  }
  cluster_->sim().ScheduleAfter(config_.recovery_poll, [this, partitioned_at] {
    PollLeaderTakeover(partitioned_at);
  });
}

void FaultInjector::PollRecovery(std::string node,
                                 std::vector<std::string> affected,
                                 Time crashed_at) {
  const Time now = cluster_->sim().Now();
  bool clear = true;
  for (const std::string& name : affected) {
    auto pod = cluster_->api().pods().Get(name);
    if (!pod.ok()) continue;  // deleted (e.g. requeued workload) = gone
    if (pod->status.node_name == node && !pod->terminal()) {
      clear = false;
      break;
    }
  }
  if (clear) {
    ++stats_.recoveries_measured;
    stats_.total_recovery_time += now - crashed_at;
    cluster_->api().events().Record(
        kComponent, "node/" + node, "Recovered",
        "drained in " + FormatTime(now - crashed_at));
    return;
  }
  if (now - crashed_at >= config_.recovery_timeout) {
    ++stats_.recoveries_timed_out;
    cluster_->api().events().Record(kComponent, "node/" + node,
                                    "RecoveryTimeout");
    return;
  }
  cluster_->sim().ScheduleAfter(
      config_.recovery_poll,
      [this, node = std::move(node), affected = std::move(affected),
       crashed_at]() mutable {
        PollRecovery(std::move(node), std::move(affected), crashed_at);
      });
}

}  // namespace ks::chaos
