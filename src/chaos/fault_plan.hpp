#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.hpp"

namespace ks::chaos {

/// The fault vocabulary of the chaos subsystem. Each kind maps to one
/// concrete failure the cluster components have recovery paths for:
///  - kNodeCrash: hard node failure (containers, kubelet and the node's
///    token daemon all die); recovery = eviction + DevMgr reclaim/requeue.
///  - kNodeRecover: the crashed node comes back (kubelet resync).
///  - kTokenDaemonRestart: only the vGPU token daemon dies and restarts;
///    recovery = frontend re-registration + sliding-window reset.
///  - kContainerOomKill: the kernel OOM-killer takes one container;
///    recovery = sharePod requeue ("OOMKilled").
///  - kApiLatencySpike: watch-notification latency jumps for a while; no
///    state is lost but every controller lags.
///  - kDropWatchEvent: the apiserver silently loses the next N watch
///    notifications; recovery = DevMgr's periodic reconcile pass.
///  - kDevMgrCrash: KubeShare-DevMgr dies — watches dropped, the in-memory
///    vGPU pool and sharePod record tables lost — and restarts after
///    `duration`; recovery = relist + RebuildFromApiServer.
///  - kSchedCrash: KubeShare-Sched dies (queue and backoff state lost) and
///    restarts after `duration`; recovery = the watch-replay relist
///    re-enqueueing every still-unscheduled sharePod.
///  - kLeaderPartition: the elected control-plane leader is partitioned
///    from its lease past expiry; recovery = standby takeover, with the
///    deposed leader's stale writes rejected by fencing.
///
/// The kTenant* kinds are adversarial-client faults: one tenant's frontend
/// hook (its own copy of the device library) turns hostile for `duration`.
/// They have no recovery path in the classic sense — containment is
/// server-side isolation enforcement (token-epoch fencing at the device,
/// memory quotas, usage attribution, clamp-down and eviction in the token
/// backend; see docs/robustness.md):
///  - kTenantTokenOverstay: the tenant ignores token expiry and keeps
///    submitting on the dead grant.
///  - kTenantKernelFlood: the tenant submits kernels straight to the
///    driver, token or no token.
///  - kTenantMemoryProbe: the tenant allocates past its gpu_mem quota,
///    bypassing the client-side check.
///  - kTenantMetricsSpoof: the tenant under-reports its usage to the
///    backend's sampler to win max-deficit token selection.
enum class FaultKind {
  kNodeCrash,
  kNodeRecover,
  kTokenDaemonRestart,
  kContainerOomKill,
  kApiLatencySpike,
  kDropWatchEvent,
  kDevMgrCrash,
  kSchedCrash,
  kLeaderPartition,
  kTenantTokenOverstay,
  kTenantKernelFlood,
  kTenantMemoryProbe,
  kTenantMetricsSpoof,
};

const char* FaultKindName(FaultKind kind);

/// One scripted fault. Which fields matter depends on `kind`:
///   node      — kNodeCrash / kNodeRecover / kTokenDaemonRestart
///   pod       — kContainerOomKill ("" = injector picks a running pod);
///               kTenant*: the target *job* name ("" = injector picks the
///               first running KubeShare job)
///   duration  — kNodeCrash: outage length before auto-recovery (0 = stays
///               down until an explicit kNodeRecover); kApiLatencySpike:
///               how long the spike lasts; kDevMgrCrash / kSchedCrash:
///               controller downtime before restart; kLeaderPartition:
///               how long the leader stays partitioned; kTenant*: how long
///               the tenant stays hostile (0 = for the rest of the run)
///   latency   — kApiLatencySpike: the degraded watch latency
///   drop_count— kDropWatchEvent: notifications to lose
struct Fault {
  Time at{0};
  FaultKind kind = FaultKind::kNodeCrash;
  std::string node;
  std::string pod;
  Duration duration{0};
  Duration latency{0};
  int drop_count = 0;

  std::string ToString() const;
};

/// Options for FaultPlan::Random. Kinds with weight 0 never appear.
struct RandomPlanOptions {
  std::uint64_t seed = 42;
  /// Faults are injected at uniform times in [start, horizon).
  Time start{Seconds(1)};
  Time horizon{Seconds(60)};
  int fault_count = 8;
  /// Nodes eligible for node-scoped faults.
  std::vector<std::string> nodes;
  double node_crash_weight = 1.0;
  double daemon_restart_weight = 1.0;
  double oom_kill_weight = 1.0;
  double latency_spike_weight = 0.5;
  double drop_event_weight = 0.5;
  /// Controller faults default to 0 so plans generated before these kinds
  /// existed stay byte-identical for the same seed.
  double devmgr_crash_weight = 0.0;
  double sched_crash_weight = 0.0;
  double leader_partition_weight = 0.0;
  /// Adversarial-tenant faults also default to 0 for the same byte-equality
  /// reason.
  double tenant_overstay_weight = 0.0;
  double tenant_flood_weight = 0.0;
  double tenant_probe_weight = 0.0;
  double tenant_spoof_weight = 0.0;
  /// Node outages auto-recover after a duration drawn from this range.
  Duration outage_min{Seconds(5)};
  Duration outage_max{Seconds(15)};
  Duration spike_latency{Millis(250)};
  Duration spike_duration{Seconds(2)};
  int drop_count_min = 1;
  int drop_count_max = 3;
  /// Controller downtime range for kDevMgrCrash / kSchedCrash.
  Duration controller_downtime_min{Seconds(2)};
  Duration controller_downtime_max{Seconds(5)};
  /// Partition length range for kLeaderPartition. The default floor sits
  /// past the default 10 s lease so a takeover actually happens.
  Duration partition_min{Seconds(12)};
  Duration partition_max{Seconds(20)};
  /// Hostile-window length range for the kTenant* faults. The floor clears
  /// several 100 ms token quanta so the attack spans multiple grants.
  Duration adversarial_min{Seconds(3)};
  Duration adversarial_max{Seconds(8)};
};

/// A deterministic, pre-computed fault schedule. The same options always
/// produce the same plan (seeded PRNG, no wall-clock input), which is what
/// makes chaos runs replayable and their recovery timelines comparable.
struct FaultPlan {
  std::vector<Fault> faults;

  /// Generates a plan with `fault_count` faults sorted by injection time.
  /// Same options => identical plan, independent of call time.
  static FaultPlan Random(const RandomPlanOptions& options);

  std::string ToString() const;
};

}  // namespace ks::chaos
