#pragma once

#include <cstdint>

#include "k8s/cluster.hpp"
#include "kubeshare/kubeshare.hpp"
#include "metrics/prometheus.hpp"

namespace ks::metrics {

/// Snapshot of every recovery-path counter the cluster components keep.
/// Plain data — independent of how the faults were produced (the chaos
/// injector, a hand-scripted test, or nothing at all), so it carries no
/// dependency on the chaos subsystem.
struct RecoveryMetrics {
  // Control plane.
  std::uint64_t node_not_ready_transitions = 0;
  std::uint64_t pods_evicted = 0;
  // Node agents (summed over nodes).
  std::uint64_t runtime_crashes = 0;
  std::uint64_t backend_restarts = 0;
  std::uint64_t frontends_reattached = 0;
  // Apiserver faults observed.
  std::uint64_t watch_events_dropped = 0;
  // KubeShare recovery (zero when KubeShare is not installed).
  std::uint64_t vgpus_reclaimed = 0;
  std::uint64_t sharepods_requeued = 0;
  std::uint64_t reconcile_passes = 0;
  // Crash-consistency (this PR's faults): optimistic-concurrency
  // rejections, fenced stale-leader writes, controller deaths/rebuilds,
  // and leader elections observed.
  std::uint64_t update_conflicts = 0;
  std::uint64_t fenced_writes_rejected = 0;
  std::uint64_t controller_crashes = 0;
  std::uint64_t controller_rebuilds = 0;
  std::uint64_t leader_elections = 0;
};

RecoveryMetrics CollectRecoveryMetrics(k8s::Cluster& cluster,
                                       kubeshare::KubeShare* kubeshare);

/// Exports the snapshot as ks_recovery_* gauges.
void ExportRecoveryMetrics(const RecoveryMetrics& metrics,
                           PrometheusExporter& exporter);

}  // namespace ks::metrics
