#include "metrics/cluster_metrics.hpp"

#include <map>

#include "metrics/recovery.hpp"

namespace ks::metrics {

void ExportClusterMetrics(k8s::Cluster& cluster,
                          kubeshare::KubeShare* kubeshare,
                          PrometheusExporter& exporter) {
  const Time now = cluster.sim().Now();

  for (std::size_t n = 0; n < cluster.node_count(); ++n) {
    auto& node = cluster.node(n);
    for (auto& dev : node.gpus) {
      dev->utilization().Flush(now);
      const PrometheusExporter::Labels labels{{"uuid", dev->uuid().value()},
                                              {"node", node.name}};
      exporter.Gauge("ks_gpu_busy_seconds_total",
                     "Cumulative device busy time", labels,
                     ToSeconds(dev->utilization().TotalBusy()));
      exporter.Gauge("ks_gpu_memory_used_fraction",
                     "Fraction of device memory allocated", labels,
                     static_cast<double>(dev->used_memory()) /
                         static_cast<double>(dev->spec().memory_bytes));
    }
  }

  // Event-engine health: how much the timer wheel / shared sampler tick
  // compress the schedule. Pull-at-read-time by construction — these are
  // plain counter reads, no sampling events of their own.
  exporter.Gauge("ks_sim_lifetime_events",
                 "Engine events scheduled since simulation start", {},
                 static_cast<double>(cluster.sim().lifetime_events()));
  exporter.Gauge("ks_sim_pending_events",
                 "Engine events currently scheduled", {},
                 static_cast<double>(cluster.sim().pending()));
  if (cluster.tick_hub() != nullptr) {
    exporter.Gauge("ks_sampler_hub_fires",
                   "Instrument callbacks delivered by the shared tick", {},
                   static_cast<double>(cluster.tick_hub()->fires()));
    exporter.Gauge("ks_sampler_hub_ticks",
                   "Engine events the shared tick consumed", {},
                   static_cast<double>(cluster.tick_hub()->ticks()));
  }
  for (std::size_t n = 0; n < cluster.node_count(); ++n) {
    auto& node = cluster.node(n);
    exporter.Gauge("ks_token_timers_pending",
                   "Renewal deadlines resident in the node's token timers",
                   {{"node", node.name}},
                   static_cast<double>(node.token_backend->pending_timers()));
    if (auto* wheel_backend =
            dynamic_cast<vgpu::TokenBackend*>(node.token_backend.get())) {
      exporter.Gauge("ks_token_wheel_ticks",
                     "Engine events the node's timer wheel consumed",
                     {{"node", node.name}},
                     static_cast<double>(wheel_backend->wheel().stats().ticks));
      exporter.Gauge(
          "ks_token_wheel_timers_scheduled",
          "Renewal deadlines placed on the node's timer wheel",
          {{"node", node.name}},
          static_cast<double>(wheel_backend->wheel().stats().scheduled));
    }
  }

  if (cluster.config().spatial.enabled) {
    for (std::size_t n = 0; n < cluster.node_count(); ++n) {
      auto& node = cluster.node(n);
      for (auto& dev : node.gpus) {
        exporter.Gauge(
            "ks_spatial_concurrent_tokens",
            "Containers holding a compute token on the device right now",
            {{"uuid", dev->uuid().value()}, {"node", node.name}},
            static_cast<double>(
                node.token_backend->ActiveHolders(dev->uuid())));
      }
    }
  }

  std::map<std::string, int> pods_by_phase;
  for (const k8s::Pod& pod : cluster.api().pods().List()) {
    ++pods_by_phase[k8s::PodPhaseName(pod.status.phase)];
  }
  for (const auto& [phase, count] : pods_by_phase) {
    exporter.Gauge("ks_pods", "Pod count by phase", {{"phase", phase}},
                   count);
  }

  ExportRecoveryMetrics(CollectRecoveryMetrics(cluster, kubeshare), exporter);

  if (kubeshare == nullptr) return;

  std::map<std::string, int> vgpus_by_state;
  for (const kubeshare::VgpuInfo* dev : kubeshare->pool().List()) {
    ++vgpus_by_state[kubeshare::VgpuStateName(dev->state)];
    exporter.Gauge("ks_vgpu_used_util",
                   "Committed compute fraction (sum of gpu_requests)",
                   {{"id", dev->id.value()}, {"node", dev->node}},
                   dev->used_util);
    if (kubeshare->pool().spatial_enabled() && dev->slices.groups() > 0) {
      exporter.Gauge("ks_spatial_slice_occupancy",
                     "Fraction of the device's SM groups assigned to slices",
                     {{"id", dev->id.value()}, {"node", dev->node}},
                     static_cast<double>(dev->slices.UsedGroups()) /
                         static_cast<double>(dev->slices.groups()));
    }
  }
  if (kubeshare->pool().spatial_enabled()) {
    exporter.Gauge("ks_spatial_fragmentation_ratio",
                   "Pool-wide slice fragmentation (1 - largest free "
                   "run / free groups, aggregated)",
                   {}, kubeshare->pool().FragmentationRatio());
  }
  for (const auto& [state, count] : vgpus_by_state) {
    exporter.Gauge("ks_vgpu_pool_size", "vGPU count by lifecycle state",
                   {{"state", state}}, count);
  }

  std::map<std::string, int> sharepods_by_phase;
  for (const kubeshare::SharePod& sp : kubeshare->sharepods().List()) {
    ++sharepods_by_phase[kubeshare::SharePodPhaseName(sp.status.phase)];
  }
  for (const auto& [phase, count] : sharepods_by_phase) {
    exporter.Gauge("ks_sharepods", "SharePod count by phase",
                   {{"phase", phase}}, count);
  }
  exporter.Gauge("ks_vgpus_created_total", "vGPU acquisitions", {},
                 static_cast<double>(kubeshare->devmgr().vgpus_created()));
  exporter.Gauge("ks_vgpus_released_total", "vGPU releases", {},
                 static_cast<double>(kubeshare->devmgr().vgpus_released()));
}

}  // namespace ks::metrics
