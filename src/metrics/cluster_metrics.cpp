#include "metrics/cluster_metrics.hpp"

#include <map>

#include "metrics/recovery.hpp"

namespace ks::metrics {

void ExportClusterMetrics(k8s::Cluster& cluster,
                          kubeshare::KubeShare* kubeshare,
                          PrometheusExporter& exporter) {
  const Time now = cluster.sim().Now();

  for (std::size_t n = 0; n < cluster.node_count(); ++n) {
    auto& node = cluster.node(n);
    for (auto& dev : node.gpus) {
      dev->utilization().Flush(now);
      const PrometheusExporter::Labels labels{{"uuid", dev->uuid().value()},
                                              {"node", node.name}};
      exporter.Gauge("ks_gpu_busy_seconds_total",
                     "Cumulative device busy time", labels,
                     ToSeconds(dev->utilization().TotalBusy()));
      exporter.Gauge("ks_gpu_memory_used_fraction",
                     "Fraction of device memory allocated", labels,
                     static_cast<double>(dev->used_memory()) /
                         static_cast<double>(dev->spec().memory_bytes));
    }
  }

  std::map<std::string, int> pods_by_phase;
  for (const k8s::Pod& pod : cluster.api().pods().List()) {
    ++pods_by_phase[k8s::PodPhaseName(pod.status.phase)];
  }
  for (const auto& [phase, count] : pods_by_phase) {
    exporter.Gauge("ks_pods", "Pod count by phase", {{"phase", phase}},
                   count);
  }

  ExportRecoveryMetrics(CollectRecoveryMetrics(cluster, kubeshare), exporter);

  if (kubeshare == nullptr) return;

  std::map<std::string, int> vgpus_by_state;
  for (const kubeshare::VgpuInfo* dev : kubeshare->pool().List()) {
    ++vgpus_by_state[kubeshare::VgpuStateName(dev->state)];
    exporter.Gauge("ks_vgpu_used_util",
                   "Committed compute fraction (sum of gpu_requests)",
                   {{"id", dev->id.value()}, {"node", dev->node}},
                   dev->used_util);
  }
  for (const auto& [state, count] : vgpus_by_state) {
    exporter.Gauge("ks_vgpu_pool_size", "vGPU count by lifecycle state",
                   {{"state", state}}, count);
  }

  std::map<std::string, int> sharepods_by_phase;
  for (const kubeshare::SharePod& sp : kubeshare->sharepods().List()) {
    ++sharepods_by_phase[kubeshare::SharePodPhaseName(sp.status.phase)];
  }
  for (const auto& [phase, count] : sharepods_by_phase) {
    exporter.Gauge("ks_sharepods", "SharePod count by phase",
                   {{"phase", phase}}, count);
  }
  exporter.Gauge("ks_vgpus_created_total", "vGPU acquisitions", {},
                 static_cast<double>(kubeshare->devmgr().vgpus_created()));
  exporter.Gauge("ks_vgpus_released_total", "vGPU releases", {},
                 static_cast<double>(kubeshare->devmgr().vgpus_released()));
}

}  // namespace ks::metrics
