#include "metrics/sampler.hpp"

#include <algorithm>
#include <cassert>

namespace ks::metrics {

PeriodicSampler::PeriodicSampler(sim::Simulation* sim, Duration period,
                                 Probe probe)
    : sim_(sim), period_(period), probe_(std::move(probe)) {
  assert(sim_ != nullptr);
  assert(period_.count() > 0);
  assert(probe_);
}

PeriodicSampler::PeriodicSampler(sim::TickHub* hub, Duration period,
                                 Probe probe)
    : sim_(hub->sim()), hub_(hub), period_(period), probe_(std::move(probe)) {
  assert(period_.count() > 0);
  assert(probe_);
}

PeriodicSampler::~PeriodicSampler() { Stop(); }

void PeriodicSampler::Start() {
  if (running_) return;
  running_ = true;
  if (hub_ != nullptr) {
    sub_ = hub_->Subscribe(period_, [this] { Tick(); });
  } else {
    event_ = sim_->ScheduleAfter(period_, [this] { Tick(); });
  }
}

void PeriodicSampler::Stop() {
  if (!running_) return;
  running_ = false;
  if (hub_ != nullptr) {
    hub_->Unsubscribe(sub_);
    sub_ = 0;
  } else {
    sim_->Cancel(event_);
    event_ = sim::kInvalidEvent;
  }
}

void PeriodicSampler::Tick() {
  series_.push_back({sim_->Now(), probe_()});
  // In pull mode the hub re-arms; push mode self-reschedules.
  if (hub_ == nullptr && running_) {
    event_ = sim_->ScheduleAfter(period_, [this] { Tick(); });
  }
}

double PeriodicSampler::MaxValue() const {
  double best = 0.0;
  for (const Sample& s : series_) best = std::max(best, s.value);
  return best;
}

double PeriodicSampler::MeanValue() const {
  if (series_.empty()) return 0.0;
  double total = 0.0;
  for (const Sample& s : series_) total += s.value;
  return total / static_cast<double>(series_.size());
}

}  // namespace ks::metrics
