#include "metrics/sampler.hpp"

#include <algorithm>
#include <cassert>

namespace ks::metrics {

PeriodicSampler::PeriodicSampler(sim::Simulation* sim, Duration period,
                                 Probe probe)
    : sim_(sim), period_(period), probe_(std::move(probe)) {
  assert(sim_ != nullptr);
  assert(period_.count() > 0);
  assert(probe_);
}

void PeriodicSampler::Start() {
  if (running_) return;
  running_ = true;
  event_ = sim_->ScheduleAfter(period_, [this] { Tick(); });
}

void PeriodicSampler::Stop() {
  if (!running_) return;
  running_ = false;
  sim_->Cancel(event_);
  event_ = sim::kInvalidEvent;
}

void PeriodicSampler::Tick() {
  series_.push_back({sim_->Now(), probe_()});
  if (running_) {
    event_ = sim_->ScheduleAfter(period_, [this] { Tick(); });
  }
}

double PeriodicSampler::MaxValue() const {
  double best = 0.0;
  for (const Sample& s : series_) best = std::max(best, s.value);
  return best;
}

double PeriodicSampler::MeanValue() const {
  if (series_.empty()) return 0.0;
  double total = 0.0;
  for (const Sample& s : series_) total += s.value;
  return total / static_cast<double>(series_.size());
}

}  // namespace ks::metrics
