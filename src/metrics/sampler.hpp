#pragma once

#include <functional>
#include <vector>

#include "common/time.hpp"
#include "sim/simulation.hpp"

namespace ks::metrics {

/// Periodically samples a scalar (pool size, active GPUs, queue depth, ...)
/// into a time series — the generic instrument behind the Fig 9 timelines.
class PeriodicSampler {
 public:
  using Probe = std::function<double()>;

  PeriodicSampler(sim::Simulation* sim, Duration period, Probe probe);

  void Start();
  void Stop();

  struct Sample {
    Time at{0};
    double value = 0.0;
  };
  const std::vector<Sample>& series() const { return series_; }

  double MaxValue() const;
  double MeanValue() const;

 private:
  void Tick();

  sim::Simulation* sim_;
  Duration period_;
  Probe probe_;
  bool running_ = false;
  sim::EventId event_ = sim::kInvalidEvent;
  std::vector<Sample> series_;
};

}  // namespace ks::metrics
