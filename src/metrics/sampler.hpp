#pragma once

#include <functional>
#include <vector>

#include "common/time.hpp"
#include "sim/simulation.hpp"
#include "sim/tick_hub.hpp"

namespace ks::metrics {

/// Periodically samples a scalar (pool size, active GPUs, queue depth, ...)
/// into a time series — the generic instrument behind the Fig 9 timelines.
///
/// Two sampling modes:
///  - push (reference): the sampler keeps a private self-rescheduling
///    engine event — one event per sample. This is the original behaviour,
///    kept as the oracle for the pull mode.
///  - pull: the sampler subscribes to a shared sim::TickHub, so all
///    instruments on a hub multiplex onto (at most) one armed engine
///    event. Probes are read-only, so samples are byte-identical to push
///    mode whenever the period sits on the hub's grid
///    (tests/metrics/sampler_pull_test.cpp locks this in).
class PeriodicSampler {
 public:
  using Probe = std::function<double()>;

  /// Push mode (reference): one engine event per sample.
  PeriodicSampler(sim::Simulation* sim, Duration period, Probe probe);

  /// Pull mode: rides `hub`'s shared tick.
  PeriodicSampler(sim::TickHub* hub, Duration period, Probe probe);

  ~PeriodicSampler();
  PeriodicSampler(const PeriodicSampler&) = delete;
  PeriodicSampler& operator=(const PeriodicSampler&) = delete;

  void Start();
  void Stop();

  struct Sample {
    Time at{0};
    double value = 0.0;
  };
  const std::vector<Sample>& series() const { return series_; }

  double MaxValue() const;
  double MeanValue() const;

 private:
  void Tick();

  sim::Simulation* sim_;
  sim::TickHub* hub_ = nullptr;
  Duration period_;
  Probe probe_;
  bool running_ = false;
  sim::EventId event_ = sim::kInvalidEvent;
  sim::TickHub::SubId sub_ = 0;
  std::vector<Sample> series_;
};

}  // namespace ks::metrics
