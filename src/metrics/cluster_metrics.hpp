#pragma once

#include "k8s/cluster.hpp"
#include "kubeshare/kubeshare.hpp"
#include "metrics/prometheus.hpp"

namespace ks::metrics {

/// Snapshots the observable state of a cluster (and KubeShare, when
/// installed) into Prometheus gauges:
///   ks_gpu_busy_seconds_total{uuid,node}     device busy time
///   ks_gpu_memory_used_fraction{uuid,node}   device memory in use
///   ks_pods{phase}                           pod counts by phase
///   ks_vgpu_pool_size{state}                 vGPU counts by lifecycle state
///   ks_vgpu_used_util{id,node}               per-vGPU committed compute
///   ks_sharepods{phase}                      sharePod counts by phase
///   ks_vgpus_created_total / _released_total lifecycle counters
///   ks_recovery_*                            fault-recovery counters
///                                            (see metrics/recovery.hpp)
void ExportClusterMetrics(k8s::Cluster& cluster,
                          kubeshare::KubeShare* kubeshare,
                          PrometheusExporter& exporter);

}  // namespace ks::metrics
