#include "metrics/throughput.hpp"

#include <algorithm>

namespace ks::metrics {

double ThroughputTimeline::JobsPerMinute(Time from, Time to) const {
  if (to <= from) return 0.0;
  std::size_t n = 0;
  for (const Time t : completions_) {
    if (t >= from && t < to) ++n;
  }
  return static_cast<double>(n) / (ToSeconds(to - from) / 60.0);
}

double ThroughputTimeline::OverallJobsPerMinute(Time origin) const {
  if (completions_.empty()) return 0.0;
  const Time end = completions_.back();
  if (end <= origin) return 0.0;
  return static_cast<double>(completions_.size()) /
         (ToSeconds(end - origin) / 60.0);
}

double ThroughputTimeline::PeakJobsPerMinute(Duration window) const {
  if (completions_.empty() || window.count() <= 0) return 0.0;
  double best = 0.0;
  for (std::size_t i = 0; i < completions_.size(); ++i) {
    const Time from = completions_[i];
    const Time to = from + window;
    std::size_t n = 0;
    for (std::size_t j = i; j < completions_.size() && completions_[j] < to;
         ++j) {
      ++n;
    }
    best = std::max(best,
                    static_cast<double>(n) / (ToSeconds(window) / 60.0));
  }
  return best;
}

}  // namespace ks::metrics
