#include "metrics/recovery.hpp"

namespace ks::metrics {

RecoveryMetrics CollectRecoveryMetrics(k8s::Cluster& cluster,
                                       kubeshare::KubeShare* kubeshare) {
  RecoveryMetrics out;
  out.node_not_ready_transitions =
      cluster.node_controller().not_ready_transitions();
  out.pods_evicted = cluster.node_controller().evictions();
  for (std::size_t n = 0; n < cluster.node_count(); ++n) {
    auto& node = cluster.node(n);
    out.runtime_crashes += node.runtime->crashes();
    out.backend_restarts += node.token_backend->restarts();
    out.frontends_reattached += node.token_backend->reattached();
  }
  out.watch_events_dropped = cluster.api().pods().dropped_events();
  out.update_conflicts = cluster.api().pods().update_conflicts() +
                         cluster.api().nodes().update_conflicts() +
                         cluster.api().leases().update_conflicts();
  out.fenced_writes_rejected = cluster.api().pods().fencing().rejected() +
                               cluster.api().nodes().fencing().rejected() +
                               cluster.api().leases().fencing().rejected();
  if (kubeshare != nullptr) {
    out.vgpus_reclaimed = kubeshare->devmgr().vgpus_reclaimed();
    out.sharepods_requeued = kubeshare->devmgr().sharepods_requeued();
    out.reconcile_passes = kubeshare->devmgr().reconcile_passes();
    out.update_conflicts += kubeshare->sharepods().update_conflicts();
    out.fenced_writes_rejected += kubeshare->sharepods().fencing().rejected();
    out.controller_crashes =
        kubeshare->devmgr().crashes() + kubeshare->sched().crashes();
    out.controller_rebuilds = kubeshare->devmgr().rebuilds();
    if (kubeshare->elector() != nullptr) {
      out.leader_elections = kubeshare->elector()->elections_won();
    }
  }
  return out;
}

void ExportRecoveryMetrics(const RecoveryMetrics& metrics,
                           PrometheusExporter& exporter) {
  exporter.Gauge("ks_recovery_node_not_ready_total",
                 "Node Ready->NotReady transitions", {},
                 static_cast<double>(metrics.node_not_ready_transitions));
  exporter.Gauge("ks_recovery_pods_evicted_total",
                 "Pods evicted off lost nodes", {},
                 static_cast<double>(metrics.pods_evicted));
  exporter.Gauge("ks_recovery_runtime_crashes_total",
                 "Container-runtime crash events", {},
                 static_cast<double>(metrics.runtime_crashes));
  exporter.Gauge("ks_recovery_backend_restarts_total",
                 "Token-daemon restarts", {},
                 static_cast<double>(metrics.backend_restarts));
  exporter.Gauge("ks_recovery_frontends_reattached_total",
                 "Frontends re-registered after a daemon restart", {},
                 static_cast<double>(metrics.frontends_reattached));
  exporter.Gauge("ks_recovery_watch_events_dropped_total",
                 "Watch notifications lost at the apiserver", {},
                 static_cast<double>(metrics.watch_events_dropped));
  exporter.Gauge("ks_recovery_vgpus_reclaimed_total",
                 "vGPUs garbage-collected off dead nodes", {},
                 static_cast<double>(metrics.vgpus_reclaimed));
  exporter.Gauge("ks_recovery_sharepods_requeued_total",
                 "SharePods rescheduled after infrastructure kills", {},
                 static_cast<double>(metrics.sharepods_requeued));
  exporter.Gauge("ks_recovery_reconcile_passes_total",
                 "DevMgr reconcile passes", {},
                 static_cast<double>(metrics.reconcile_passes));
  exporter.Gauge("ks_recovery_update_conflicts_total",
                 "Optimistic-concurrency write rejections", {},
                 static_cast<double>(metrics.update_conflicts));
  exporter.Gauge("ks_recovery_fenced_writes_rejected_total",
                 "Stale leader writes rejected by fencing", {},
                 static_cast<double>(metrics.fenced_writes_rejected));
  exporter.Gauge("ks_recovery_controller_crashes_total",
                 "KubeShare controller deaths injected", {},
                 static_cast<double>(metrics.controller_crashes));
  exporter.Gauge("ks_recovery_controller_rebuilds_total",
                 "DevMgr state reconstructions from the apiserver", {},
                 static_cast<double>(metrics.controller_rebuilds));
  exporter.Gauge("ks_recovery_leader_elections_total",
                 "Leader-election acquisitions", {},
                 static_cast<double>(metrics.leader_elections));
}

}  // namespace ks::metrics
