#pragma once

#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace ks::metrics {

/// Minimal Prometheus text-exposition-format writer (the scrape format of
/// the real KubeShare's monitoring side-cars). Gauges only — counters in
/// this simulation are just monotone gauges.
///
///   PrometheusExporter exp;
///   exp.Gauge("kubeshare_vgpu_pool_size", "vGPUs held", {}, 3);
///   exp.Gauge("gpu_utilization", "busy fraction",
///             {{"uuid", "GPU-0-0"}}, 0.82);
///   exp.Write(os);
class PrometheusExporter {
 public:
  using Labels = std::map<std::string, std::string>;

  /// Records one sample. Repeated calls with the same metric name but
  /// different labels become one family under a single HELP/TYPE header.
  void Gauge(const std::string& name, const std::string& help, Labels labels,
             double value);

  /// Emits the exposition format: families sorted by name, samples in
  /// insertion order.
  void Write(std::ostream& os) const;

  void Clear() { families_.clear(); }
  std::size_t sample_count() const;

  /// Escapes a label value per the exposition format (backslash, quote,
  /// newline).
  static std::string EscapeLabelValue(const std::string& value);

 private:
  struct Sample {
    Labels labels;
    double value;
  };
  struct Family {
    std::string help;
    std::vector<Sample> samples;
  };
  std::map<std::string, Family> families_;
};

}  // namespace ks::metrics
