#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "k8s/cluster.hpp"
#include "metrics/prometheus.hpp"

namespace ks::metrics {

/// One service's SLO snapshot, produced by the serving frontend
/// (serving::ServiceFrontend::Sample). Plain data — ks_metrics stays
/// independent of the serving layer the same way it takes a SwapLookupFn
/// instead of the workload host.
struct ServiceSloSample {
  std::string service;
  double slo_s = 0.0;   // p99 target, seconds
  double p50_s = 0.0;   // observed percentiles over the service's lifetime
  double p99_s = 0.0;
  double p999_s = 0.0;
  std::uint64_t arrived = 0;
  std::uint64_t served = 0;
  std::uint64_t shed = 0;            // rejected at the admission door
  std::uint64_t queued_retries = 0;  // admission kQueue round trips
  std::uint64_t violations = 0;      // served past the SLO
  std::uint64_t lost = 0;            // died with their replica
  std::uint64_t replicas_ready = 0;
  /// (violations + shed + lost) / arrived — a shed request IS a violated
  /// request from the client's perspective; admission trades a few of them
  /// for keeping the served ones inside the SLO.
  double violation_rate = 0.0;
};

/// Snapshot of the SLO-serving machinery: per-service latency percentiles
/// and request accounting, plus the daemon-side admission counters summed
/// over every node backend.
struct SloMetrics {
  std::vector<ServiceSloSample> services;
  std::uint64_t admission_sheds_total = 0;
  std::uint64_t admission_queued_total = 0;
};

/// Combines frontend-side samples with the cluster's daemon-side admission
/// counters (TokenBackendApi::admission_sheds / admission_queued, summed
/// across nodes).
SloMetrics CollectSloMetrics(k8s::Cluster& cluster,
                             std::vector<ServiceSloSample> samples);

/// Exports the snapshot as ks_slo_* gauges (per-service series carry a
/// `service` label).
void ExportSloMetrics(const SloMetrics& metrics,
                      PrometheusExporter& exporter);

}  // namespace ks::metrics
