#pragma once

#include <array>
#include <cstdint>

#include "common/time.hpp"

namespace ks::metrics {

/// Fixed-size streaming latency estimator (HDR-histogram-style log-bucket
/// layout): p50/p99/p99.9 over microsecond-resolution samples with bounded
/// relative error, O(1) allocation-free updates, and exact merges.
///
/// Why not a sorted vector: the serving layer records one latency per
/// request, and the north star is millions of clients — per-request storage
/// must be O(1), not O(requests). Why not a t-digest: merges of t-digests
/// are approximate and order-dependent, which would make cross-node SLO
/// aggregation depend on merge order; log-bucket histograms merge by
/// element-wise addition, which is exact, associative and commutative (the
/// property test pins this).
///
/// Layout: values are bucketed by their binary magnitude with kSubBuckets
/// linear sub-buckets per power of two, so the relative width of any bucket
/// is at most 1/kSubBuckets (~3.1%). Quantiles answer with the bucket's
/// lower edge, hence for the rank-selected sample x:
///     Quantile(q) <= x <= Quantile(q) * (1 + 1/kSubBuckets) + 1us
/// The full index range covers every representable std::uint64_t count of
/// microseconds in kBuckets = 1920 fixed slots (~15 KiB) — no resizing,
/// ever, which is what "zero allocation on the update path" means.
class LatencyDigest {
 public:
  static constexpr int kSubBits = 5;
  static constexpr int kSubBuckets = 1 << kSubBits;  // 32
  static constexpr int kBuckets = (64 - kSubBits + 1) * kSubBuckets;  // 1920

  /// Records one latency sample. Negative durations clamp to zero (they
  /// cannot occur for arrival->finish spans, but the digest must never
  /// index out of range). Allocation-free and noexcept by construction.
  void Record(Duration d) noexcept {
    const std::int64_t raw = d.count();
    const std::uint64_t v = raw < 0 ? 0u : static_cast<std::uint64_t>(raw);
    ++counts_[IndexFor(v)];
    ++count_;
    sum_us_ += v;
    if (v < min_us_) min_us_ = v;
    if (v > max_us_) max_us_ = v;
  }

  /// Element-wise addition — the exact merge that makes per-node digests
  /// aggregate into a cluster digest with no precision loss.
  void Merge(const LatencyDigest& other) noexcept {
    for (int i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
    count_ += other.count_;
    sum_us_ += other.sum_us_;
    if (other.min_us_ < min_us_) min_us_ = other.min_us_;
    if (other.max_us_ > max_us_) max_us_ = other.max_us_;
  }

  void Clear() noexcept {
    counts_.fill(0);
    count_ = 0;
    sum_us_ = 0;
    min_us_ = ~0ull;
    max_us_ = 0;
  }

  /// Nearest-rank quantile, q in [0, 1]: the lower edge of the bucket
  /// holding the ceil(q * count)-th smallest sample. Zero when empty.
  Duration Quantile(double q) const {
    return QuantileOver(*this, nullptr, q);
  }
  double QuantileSeconds(double q) const { return ToSeconds(Quantile(q)); }

  /// Quantile over the union of two digests without materializing the
  /// merge — the windowed estimator queries (current + previous epoch)
  /// per admission decision, and a 15 KiB copy per request would dwarf
  /// the update cost this class exists to avoid.
  static Duration QuantileUnion(const LatencyDigest& a, const LatencyDigest& b,
                                double q) {
    return QuantileOver(a, &b, q);
  }

  std::uint64_t count() const { return count_; }
  Duration SumLatency() const {
    return Duration{static_cast<std::int64_t>(sum_us_)};
  }
  double MeanSeconds() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_us_) / 1e6 /
                             static_cast<double>(count_);
  }
  Duration Min() const {
    return count_ == 0 ? Duration{0}
                       : Duration{static_cast<std::int64_t>(min_us_)};
  }
  Duration Max() const {
    return Duration{static_cast<std::int64_t>(max_us_)};
  }

  /// Bucket index of a microsecond value. Exposed for the property tests.
  static int IndexFor(std::uint64_t v) noexcept {
    if (v < kSubBuckets) return static_cast<int>(v);
    int msb = 63;
    while ((v & (1ull << msb)) == 0) --msb;  // v >= 32, so msb >= kSubBits
    const int shift = msb - kSubBits;
    return (shift + 1) * kSubBuckets +
           static_cast<int>((v >> shift) & (kSubBuckets - 1));
  }

  /// Smallest microsecond value mapping to bucket `idx` — the quantile
  /// representative.
  static std::uint64_t LowerEdge(int idx) noexcept {
    if (idx < 2 * kSubBuckets) return static_cast<std::uint64_t>(idx);
    const int shift = idx / kSubBuckets - 1;
    const std::uint64_t sub = static_cast<std::uint64_t>(idx % kSubBuckets);
    return (kSubBuckets + sub) << shift;
  }

 private:
  static Duration QuantileOver(const LatencyDigest& a, const LatencyDigest* b,
                               double q) {
    const std::uint64_t total = a.count_ + (b != nullptr ? b->count_ : 0);
    if (total == 0) return Duration{0};
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    std::uint64_t rank =
        static_cast<std::uint64_t>(q * static_cast<double>(total));
    if (static_cast<double>(rank) < q * static_cast<double>(total)) ++rank;
    if (rank == 0) rank = 1;
    if (rank > total) rank = total;
    std::uint64_t cum = 0;
    for (int i = 0; i < kBuckets; ++i) {
      cum += a.counts_[i] + (b != nullptr ? b->counts_[i] : 0);
      if (cum >= rank) {
        return Duration{static_cast<std::int64_t>(LowerEdge(i))};
      }
    }
    return Duration{static_cast<std::int64_t>(LowerEdge(kBuckets - 1))};
  }

  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_us_ = 0;
  std::uint64_t min_us_ = ~0ull;
  std::uint64_t max_us_ = 0;
};

/// Sliding-window view over a LatencyDigest: two rotating epochs, queried
/// as their union, so "observed p99" always covers between one and two
/// windows of history. Rotation happens lazily on access — the estimator
/// owes the simulation engine no events, matching the TickHub discipline
/// that periodic instruments must not keep private timers.
class WindowedLatencyDigest {
 public:
  explicit WindowedLatencyDigest(Duration window) : window_(window) {}

  void Record(Time now, Duration d) noexcept {
    MaybeRotate(now);
    current_.Record(d);
  }

  Duration Quantile(Time now, double q) {
    MaybeRotate(now);
    return LatencyDigest::QuantileUnion(current_, previous_, q);
  }
  double QuantileSeconds(Time now, double q) {
    return ToSeconds(Quantile(now, q));
  }

  /// Samples inside the current + previous epoch.
  std::uint64_t WindowCount(Time now) {
    MaybeRotate(now);
    return current_.count() + previous_.count();
  }

  Duration window() const { return window_; }

 private:
  void MaybeRotate(Time now) noexcept {
    if (window_.count() <= 0) return;
    if (now < epoch_ + window_) return;
    if (now >= epoch_ + window_ + window_) {
      // Idle long enough that both epochs are stale: drop everything and
      // re-anchor the epoch grid at the current window boundary.
      current_.Clear();
      previous_.Clear();
      epoch_ = Time{(now.count() / window_.count()) * window_.count()};
      return;
    }
    previous_ = current_;
    current_.Clear();
    epoch_ += window_;
  }

  Duration window_;
  Time epoch_{0};
  LatencyDigest current_;
  LatencyDigest previous_;
};

}  // namespace ks::metrics
