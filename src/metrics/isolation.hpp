#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "k8s/cluster.hpp"
#include "kubeshare/kubeshare.hpp"
#include "metrics/prometheus.hpp"

namespace ks::metrics {

/// Snapshot of the isolation-enforcement counters: what the token gates
/// and memory quotas caught at the devices, what the token backends
/// attributed per tenant, and how the escalation ladder (clamp-down,
/// eviction) responded. Plain data, like RecoveryMetrics — independent of
/// whether the violations came from the chaos injector's adversarial
/// faults or a hand-scripted hostile tenant.
struct IsolationMetrics {
  // Backend violation ledgers (summed over nodes).
  std::uint64_t violations_total = 0;
  std::uint64_t clampdowns_total = 0;
  std::uint64_t evictions_total = 0;
  // Per-kind totals across every tenant's ledger entry.
  std::uint64_t overstays = 0;
  std::uint64_t fenced_submits = 0;
  std::uint64_t memory_violations = 0;
  std::uint64_t metrics_spoofs = 0;
  // Device-side rejection counters (summed over GPUs). These can exceed
  // the backend's fenced_submits when enforcement wiring is absent — they
  // count at the gate, not at the ledger.
  std::uint64_t fenced_kernel_rejections = 0;
  std::uint64_t memory_quota_rejections = 0;
  // DevMgr evictions actually carried out (zero without KubeShare).
  std::uint64_t tenants_evicted = 0;

  struct TenantEntry {
    std::string container;
    std::uint64_t overstays = 0;
    std::uint64_t fenced_submits = 0;
    std::uint64_t memory_violations = 0;
    std::uint64_t metrics_spoofs = 0;
    bool clamped = false;
    bool evicted = false;
  };
  /// One entry per tenant with a non-empty ledger, in (node, container)
  /// order.
  std::vector<TenantEntry> tenants;
};

IsolationMetrics CollectIsolationMetrics(k8s::Cluster& cluster,
                                         kubeshare::KubeShare* kubeshare);

/// Exports the snapshot as ks_isolation_* gauges (per-tenant series carry
/// a `tenant` label).
void ExportIsolationMetrics(const IsolationMetrics& metrics,
                            PrometheusExporter& exporter);

}  // namespace ks::metrics
