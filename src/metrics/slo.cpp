#include "metrics/slo.hpp"

namespace ks::metrics {

SloMetrics CollectSloMetrics(k8s::Cluster& cluster,
                             std::vector<ServiceSloSample> samples) {
  SloMetrics out;
  out.services = std::move(samples);
  for (std::size_t i = 0; i < cluster.node_count(); ++i) {
    const vgpu::TokenBackendApi* backend = cluster.node(i).token_backend.get();
    if (backend == nullptr) continue;
    out.admission_sheds_total += backend->admission_sheds();
    out.admission_queued_total += backend->admission_queued();
  }
  return out;
}

void ExportSloMetrics(const SloMetrics& metrics,
                      PrometheusExporter& exporter) {
  for (const ServiceSloSample& s : metrics.services) {
    const PrometheusExporter::Labels labels{{"service", s.service}};
    exporter.Gauge("ks_slo_target_seconds", "p99 latency SLO of the service",
                   labels, s.slo_s);
    exporter.Gauge("ks_slo_p50_seconds", "observed p50 request latency",
                   labels, s.p50_s);
    exporter.Gauge("ks_slo_p99_seconds", "observed p99 request latency",
                   labels, s.p99_s);
    exporter.Gauge("ks_slo_p999_seconds", "observed p99.9 request latency",
                   labels, s.p999_s);
    exporter.Gauge("ks_slo_requests_total", "client requests arrived", labels,
                   static_cast<double>(s.arrived));
    exporter.Gauge("ks_slo_served_total", "requests served to completion",
                   labels, static_cast<double>(s.served));
    exporter.Gauge("ks_slo_shed_total",
                   "requests rejected at the admission door", labels,
                   static_cast<double>(s.shed));
    exporter.Gauge("ks_slo_queued_retries_total",
                   "admission queue-policy retry round trips", labels,
                   static_cast<double>(s.queued_retries));
    exporter.Gauge("ks_slo_violations_total", "requests served past the SLO",
                   labels, static_cast<double>(s.violations));
    exporter.Gauge("ks_slo_lost_total",
                   "requests that died with their replica", labels,
                   static_cast<double>(s.lost));
    exporter.Gauge("ks_slo_replicas_ready", "replicas accepting requests",
                   labels, static_cast<double>(s.replicas_ready));
    exporter.Gauge("ks_slo_violation_rate",
                   "(violations + shed + lost) / arrived", labels,
                   s.violation_rate);
  }
  exporter.Gauge("ks_slo_admission_sheds_total",
                 "daemon-side shed decisions across all node backends", {},
                 static_cast<double>(metrics.admission_sheds_total));
  exporter.Gauge("ks_slo_admission_queued_total",
                 "daemon-side queue decisions across all node backends", {},
                 static_cast<double>(metrics.admission_queued_total));
}

}  // namespace ks::metrics
