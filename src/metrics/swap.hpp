#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "k8s/cluster.hpp"
#include "metrics/prometheus.hpp"
#include "vgpu/swap.hpp"

namespace ks::metrics {

/// Snapshot of the memory-oversubscription machinery: page residency per
/// device, migration traffic over the host<->device links, and the
/// nvshare-TQ anti-thrashing state at the token backends. Plain data, like
/// IsolationMetrics.
struct SwapMetrics {
  // Summed over every device with a SwapManager.
  std::uint64_t allocated_bytes = 0;
  std::uint64_t resident_bytes = 0;
  std::uint64_t swapped_bytes = 0;
  std::uint64_t migrations_total = 0;
  std::uint64_t bytes_migrated_total = 0;
  /// TQ engagement transitions summed over node backends.
  std::uint64_t tq_engagements_total = 0;

  struct DeviceEntry {
    std::string uuid;
    std::uint64_t allocated_bytes = 0;
    std::uint64_t resident_bytes = 0;
    std::uint64_t swapped_bytes = 0;
    std::uint64_t migrations = 0;
    std::uint64_t bytes_migrated = 0;
    /// Fraction of [0, now] this device's link spent transferring pages.
    double link_busy_fraction = 0.0;
    /// Device currently serialized under the exclusive time quantum.
    bool tq_engaged = false;
  };
  /// One entry per device that has a SwapManager, in (node, gpu) order.
  std::vector<DeviceEntry> devices;
};

/// `swap_of` maps a device to its SwapManager (or nullptr when the device
/// never over-committed) — typically workload::WorkloadHost::SwapFor;
/// ks_metrics takes a lookup instead of the host to stay independent of
/// the workload layer.
using SwapLookupFn =
    std::function<const vgpu::SwapManager*(const GpuUuid&)>;

SwapMetrics CollectSwapMetrics(k8s::Cluster& cluster,
                               const SwapLookupFn& swap_of);

/// Exports the snapshot as ks_swap_* gauges (per-device series carry a
/// `gpu` label).
void ExportSwapMetrics(const SwapMetrics& metrics,
                       PrometheusExporter& exporter);

}  // namespace ks::metrics
