#include "metrics/swap.hpp"

namespace ks::metrics {

SwapMetrics CollectSwapMetrics(k8s::Cluster& cluster,
                               const SwapLookupFn& swap_of) {
  SwapMetrics out;
  const Time now = cluster.sim().Now();
  for (std::size_t n = 0; n < cluster.node_count(); ++n) {
    auto& node = cluster.node(n);
    out.tq_engagements_total += node.token_backend->tq_engagements();
    for (const auto& gpu : node.gpus) {
      const vgpu::SwapManager* swap =
          swap_of ? swap_of(gpu->uuid()) : nullptr;
      if (swap == nullptr) continue;
      SwapMetrics::DeviceEntry entry;
      entry.uuid = gpu->uuid().value();
      entry.allocated_bytes = swap->total_allocated();
      entry.resident_bytes = swap->total_resident();
      entry.swapped_bytes = swap->total_swapped();
      entry.migrations = swap->swap_ins();
      entry.bytes_migrated = swap->bytes_migrated();
      entry.link_busy_fraction = swap->LinkBusyFraction(now);
      entry.tq_engaged = node.token_backend->TqEngaged(gpu->uuid());
      out.allocated_bytes += entry.allocated_bytes;
      out.resident_bytes += entry.resident_bytes;
      out.swapped_bytes += entry.swapped_bytes;
      out.migrations_total += entry.migrations;
      out.bytes_migrated_total += entry.bytes_migrated;
      out.devices.push_back(std::move(entry));
    }
  }
  return out;
}

void ExportSwapMetrics(const SwapMetrics& metrics,
                       PrometheusExporter& exporter) {
  exporter.Gauge("ks_swap_allocated_bytes",
                 "Bytes allocated through over-committed SwapManagers", {},
                 static_cast<double>(metrics.allocated_bytes));
  exporter.Gauge("ks_swap_resident_bytes",
                 "Bytes resident on device across over-committed GPUs", {},
                 static_cast<double>(metrics.resident_bytes));
  exporter.Gauge("ks_swap_swapped_bytes",
                 "Bytes swapped out to host memory", {},
                 static_cast<double>(metrics.swapped_bytes));
  exporter.Gauge("ks_swap_migrations_total",
                 "Swap-in migrations performed on token grants", {},
                 static_cast<double>(metrics.migrations_total));
  exporter.Gauge("ks_swap_bytes_migrated_total",
                 "Bytes moved over host<->device links by migrations", {},
                 static_cast<double>(metrics.bytes_migrated_total));
  exporter.Gauge("ks_swap_tq_engagements_total",
                 "Devices switched from sharing to TQ rotation", {},
                 static_cast<double>(metrics.tq_engagements_total));
  for (const SwapMetrics::DeviceEntry& d : metrics.devices) {
    const PrometheusExporter::Labels labels{{"gpu", d.uuid}};
    exporter.Gauge("ks_swap_device_resident_bytes",
                   "Bytes resident on one over-committed device", labels,
                   static_cast<double>(d.resident_bytes));
    exporter.Gauge("ks_swap_device_swapped_bytes",
                   "Bytes of one device swapped out to host memory", labels,
                   static_cast<double>(d.swapped_bytes));
    exporter.Gauge("ks_swap_device_migrations_total",
                   "Swap-in migrations on one device", labels,
                   static_cast<double>(d.migrations));
    exporter.Gauge("ks_swap_device_link_busy_fraction",
                   "Fraction of wall time the device link moved pages",
                   labels, d.link_busy_fraction);
    exporter.Gauge("ks_swap_device_tq_engaged",
                   "1 while the device is serialized under the TQ quantum",
                   labels, d.tq_engaged ? 1.0 : 0.0);
  }
}

}  // namespace ks::metrics
