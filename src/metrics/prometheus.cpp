#include "metrics/prometheus.hpp"

#include <cmath>

namespace ks::metrics {

void PrometheusExporter::Gauge(const std::string& name,
                               const std::string& help, Labels labels,
                               double value) {
  Family& family = families_[name];
  if (family.help.empty()) family.help = help;
  family.samples.push_back({std::move(labels), value});
}

std::string PrometheusExporter::EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

void PrometheusExporter::Write(std::ostream& os) const {
  for (const auto& [name, family] : families_) {
    os << "# HELP " << name << ' ' << family.help << '\n';
    os << "# TYPE " << name << " gauge\n";
    for (const Sample& s : family.samples) {
      os << name;
      if (!s.labels.empty()) {
        os << '{';
        bool first = true;
        for (const auto& [k, v] : s.labels) {
          if (!first) os << ',';
          first = false;
          os << k << "=\"" << EscapeLabelValue(v) << '"';
        }
        os << '}';
      }
      os << ' ';
      if (std::isnan(s.value)) {
        os << "NaN";
      } else {
        os << s.value;
      }
      os << '\n';
    }
  }
}

std::size_t PrometheusExporter::sample_count() const {
  std::size_t n = 0;
  for (const auto& [name, family] : families_) n += family.samples.size();
  return n;
}

}  // namespace ks::metrics
