#pragma once

#include <vector>

#include "common/time.hpp"

namespace ks::metrics {

/// Aggregates completion timestamps into the throughput quantities the
/// paper reports: jobs per minute over the makespan, and windowed rates
/// for timelines.
class ThroughputTimeline {
 public:
  void NoteCompletion(Time t) { completions_.push_back(t); }

  std::size_t count() const { return completions_.size(); }

  /// Completions within [from, to), scaled to a per-minute rate.
  double JobsPerMinute(Time from, Time to) const;

  /// Overall rate from `origin` to the last completion.
  double OverallJobsPerMinute(Time origin = kTimeZero) const;

  /// Peak rate over any window of the given length (sliding by completion
  /// events).
  double PeakJobsPerMinute(Duration window) const;

  Time last_completion() const {
    return completions_.empty() ? kTimeZero : completions_.back();
  }

 private:
  std::vector<Time> completions_;  // in completion order
};

}  // namespace ks::metrics
