#include "metrics/isolation.hpp"

namespace ks::metrics {

IsolationMetrics CollectIsolationMetrics(k8s::Cluster& cluster,
                                         kubeshare::KubeShare* kubeshare) {
  IsolationMetrics out;
  for (std::size_t n = 0; n < cluster.node_count(); ++n) {
    auto& node = cluster.node(n);
    out.violations_total += node.token_backend->violations_total();
    out.clampdowns_total += node.token_backend->clampdowns_total();
    out.evictions_total += node.token_backend->evictions_total();
    for (const auto& [container, stats] :
         node.token_backend->IsolationLedger()) {
      out.overstays += stats.overstays;
      out.fenced_submits += stats.fenced_submits;
      out.memory_violations += stats.memory_violations;
      out.metrics_spoofs += stats.spoofs;
      IsolationMetrics::TenantEntry entry;
      entry.container = container.value();
      entry.overstays = stats.overstays;
      entry.fenced_submits = stats.fenced_submits;
      entry.memory_violations = stats.memory_violations;
      entry.metrics_spoofs = stats.spoofs;
      entry.clamped = stats.clamped;
      entry.evicted = stats.evicted;
      out.tenants.push_back(std::move(entry));
    }
    for (const auto& gpu : node.gpus) {
      out.fenced_kernel_rejections += gpu->fenced_kernel_rejections();
      out.memory_quota_rejections += gpu->memory_quota_rejections();
    }
  }
  if (kubeshare != nullptr) {
    out.tenants_evicted = kubeshare->devmgr().tenants_evicted();
  }
  return out;
}

void ExportIsolationMetrics(const IsolationMetrics& metrics,
                            PrometheusExporter& exporter) {
  exporter.Gauge("ks_isolation_violations_total",
                 "Tenant isolation violations attributed by token backends",
                 {}, static_cast<double>(metrics.violations_total));
  exporter.Gauge("ks_isolation_clampdowns_total",
                 "Tenants clamped to the penalty limit", {},
                 static_cast<double>(metrics.clampdowns_total));
  exporter.Gauge("ks_isolation_evictions_total",
                 "Eviction requests raised by token backends", {},
                 static_cast<double>(metrics.evictions_total));
  exporter.Gauge("ks_isolation_overstays_total",
                 "Token grants reclaimed by the fence deadline", {},
                 static_cast<double>(metrics.overstays));
  exporter.Gauge("ks_isolation_fenced_submits_total",
                 "Fenced-submit violations attributed to tenants", {},
                 static_cast<double>(metrics.fenced_submits));
  exporter.Gauge("ks_isolation_memory_violations_total",
                 "Memory-quota violations attributed to tenants", {},
                 static_cast<double>(metrics.memory_violations));
  exporter.Gauge("ks_isolation_metrics_spoofs_total",
                 "Under-reported usage samples caught by attribution", {},
                 static_cast<double>(metrics.metrics_spoofs));
  exporter.Gauge("ks_isolation_fenced_kernel_rejections_total",
                 "Kernel submissions rejected at device token gates", {},
                 static_cast<double>(metrics.fenced_kernel_rejections));
  exporter.Gauge("ks_isolation_memory_quota_rejections_total",
                 "Allocations rejected at device memory quotas", {},
                 static_cast<double>(metrics.memory_quota_rejections));
  exporter.Gauge("ks_isolation_tenants_evicted_total",
                 "SharePods evicted by isolation enforcement", {},
                 static_cast<double>(metrics.tenants_evicted));
  for (const IsolationMetrics::TenantEntry& t : metrics.tenants) {
    const PrometheusExporter::Labels labels{{"tenant", t.container}};
    exporter.Gauge("ks_isolation_tenant_violations",
                   "Isolation violations attributed to one tenant", labels,
                   static_cast<double>(t.overstays + t.fenced_submits +
                                       t.memory_violations +
                                       t.metrics_spoofs));
    exporter.Gauge("ks_isolation_tenant_clamped",
                   "1 when the tenant is quota-clamped", labels,
                   t.clamped ? 1.0 : 0.0);
    exporter.Gauge("ks_isolation_tenant_evicted",
                   "1 when the tenant was referred for eviction", labels,
                   t.evicted ? 1.0 : 0.0);
  }
}

}  // namespace ks::metrics
