#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

#include "runtime/token_server.hpp"

namespace ks::runtime {

/// Tuning knobs of the reconnecting client.
struct VgpuClientConfig {
  double gpu_request = 0.5;
  double gpu_limit = 1.0;
  /// Backoff between acquire attempts while the daemon is unreachable,
  /// doubling per failure up to the cap.
  std::chrono::microseconds backoff_initial{500};
  std::chrono::microseconds backoff_max{8'000};
  /// Give up after this many consecutive failed attempts (0 = keep trying
  /// until Stop()).
  int max_attempts = 0;
};

/// Resolves the node's current token daemon. In the real system this is
/// the Unix-socket connect: across a daemon restart the old socket is
/// dead and a reconnect reaches the new incarnation, which is why the
/// resolver is consulted again on every retry. Returning nullptr means
/// "daemon down right now" (connect refused).
using ServerResolver = std::function<TokenServer*()>;

/// The frontend's token session with the per-node daemon, hardened for
/// daemon death: Acquire() survives the TokenServer shutting down
/// mid-call by re-resolving the endpoint, re-registering, and retrying
/// with exponential backoff until the token is granted or the client is
/// stopped. This is the real-thread counterpart of the simulation's
/// TokenBackend::Restart() reattach path.
class VgpuClient {
 public:
  VgpuClient(ServerResolver resolver, std::string id,
             VgpuClientConfig config = {});
  ~VgpuClient();

  VgpuClient(const VgpuClient&) = delete;
  VgpuClient& operator=(const VgpuClient&) = delete;

  /// Blocks until the token is granted, retrying across daemon deaths.
  /// Returns false once the client is stopped or max_attempts is
  /// exhausted — never hangs on a dead server.
  bool Acquire();

  /// True while the token from the current daemon incarnation is valid.
  bool Valid();

  /// Returns the token if this client holds it. Safe across restarts (a
  /// dead daemon's token needs no release).
  void Release();

  /// Unblocks any thread inside Acquire() and unregisters from the live
  /// daemon, if any. Idempotent; called by the destructor.
  void Stop();

  const std::string& id() const { return id_; }
  bool stopped() const { return stop_.load(); }
  /// Times the client re-registered with a fresh daemon incarnation after
  /// its previous one died (tokens re-acquired through recovery).
  std::uint64_t reconnects() const { return reconnects_.load(); }
  std::uint64_t acquisitions() const { return acquisitions_.load(); }

 private:
  /// Resolves the current server and registers with it if it is a new
  /// incarnation. Returns nullptr while the daemon is down. Caller must
  /// not hold mutex_.
  TokenServer* EnsureRegistered();
  /// Interruptible backoff sleep; returns false if stopped meanwhile.
  bool BackoffWait(std::chrono::microseconds d);

  ServerResolver resolver_;
  std::string id_;
  VgpuClientConfig config_;

  std::mutex mutex_;
  std::condition_variable stop_cv_;
  TokenServer* current_ = nullptr;  // guarded by mutex_
  bool ever_registered_ = false;    // guarded by mutex_

  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> reconnects_{0};
  std::atomic<std::uint64_t> acquisitions_{0};
};

}  // namespace ks::runtime
