#include "runtime/worker.hpp"

namespace ks::runtime {

GreedyWorker::GreedyWorker(TokenServer* server, std::string id,
                           double gpu_request, double gpu_limit,
                           std::chrono::microseconds kernel)
    : server_(server), id_(std::move(id)), kernel_(kernel) {
  server_->RegisterClient(id_, gpu_request, gpu_limit);
}

GreedyWorker::~GreedyWorker() { Stop(); }

void GreedyWorker::Start() {
  if (started_) return;
  started_ = true;
  thread_ = std::thread([this] { Run(); });
}

void GreedyWorker::Stop() {
  if (!started_) {
    server_->UnregisterClient(id_);  // idempotent
    return;
  }
  stop_.store(true);
  // Unregistering unblocks a pending Acquire without disturbing the other
  // clients of the shared server.
  server_->UnregisterClient(id_);
  if (thread_.joinable()) thread_.join();
  started_ = false;
}

void GreedyWorker::Run() {
  while (!stop_.load()) {
    if (!server_->Acquire(id_)) return;
    // Hold the token and run kernels until the quota expires. A kernel in
    // flight when the lease lapses still completes (non-preemptive).
    while (!stop_.load() && server_->Valid(id_)) {
      std::this_thread::sleep_for(kernel_);
      work_done_us_.fetch_add(kernel_.count());
    }
    server_->Release(id_);
  }
}

BurstyWorker::BurstyWorker(TokenServer* server, std::string id,
                           double gpu_request, double gpu_limit,
                           std::chrono::microseconds kernel,
                           int kernels_per_burst,
                           std::chrono::microseconds gap, std::uint64_t seed)
    : server_(server),
      id_(std::move(id)),
      kernel_(kernel),
      kernels_per_burst_(kernels_per_burst),
      gap_(gap),
      rng_state_(seed * 2654435761u + 1) {
  server_->RegisterClient(id_, gpu_request, gpu_limit);
}

BurstyWorker::~BurstyWorker() { Stop(); }

void BurstyWorker::Start() {
  if (started_) return;
  started_ = true;
  thread_ = std::thread([this] { Run(); });
}

void BurstyWorker::Stop() {
  if (!started_) {
    server_->UnregisterClient(id_);
    return;
  }
  stop_.store(true);
  server_->UnregisterClient(id_);
  if (thread_.joinable()) thread_.join();
  started_ = false;
}

void BurstyWorker::Run() {
  while (!stop_.load()) {
    // One burst: acquire, run the batch (re-acquiring when the quota lapses
    // mid-burst), release, idle out the gap.
    int remaining = kernels_per_burst_;
    while (remaining > 0 && !stop_.load()) {
      if (!server_->Acquire(id_)) return;
      while (remaining > 0 && !stop_.load() && server_->Valid(id_)) {
        std::this_thread::sleep_for(kernel_);
        work_done_us_.fetch_add(kernel_.count());
        --remaining;
      }
      server_->Release(id_);
    }
    bursts_.fetch_add(1);
    // xorshift jitter on the gap (0.5x .. 1.5x) so bursts desynchronize.
    rng_state_ ^= rng_state_ << 13;
    rng_state_ ^= rng_state_ >> 7;
    rng_state_ ^= rng_state_ << 17;
    const auto jitter = gap_.count() / 2 +
                        static_cast<std::int64_t>(rng_state_ %
                                                  static_cast<std::uint64_t>(
                                                      gap_.count() + 1));
    std::this_thread::sleep_for(std::chrono::microseconds(jitter));
  }
}

}  // namespace ks::runtime
