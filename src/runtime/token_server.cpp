#include "runtime/token_server.hpp"

#include <algorithm>
#include <cassert>

namespace ks::runtime {

TokenServer::TokenServer(TokenServerConfig config)
    : config_(config), epoch_(Clock::now()) {}

TokenServer::~TokenServer() { Shutdown(); }

Time TokenServer::NowTicks() const {
  return std::chrono::duration_cast<Duration>(Clock::now() - epoch_);
}

void TokenServer::RegisterClient(const std::string& id, double gpu_request,
                                 double gpu_limit) {
  std::lock_guard<std::mutex> lock(mutex_);
  Client client{Duration{config_.usage_window.count()}};
  client.request = gpu_request;
  client.limit = gpu_limit;
  clients_.emplace(id, std::move(client));
}

void TokenServer::UnregisterClient(const std::string& id) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (holder_ == id) {
      clients_.at(id).usage.Stop(NowTicks());
      holder_.reset();
    }
    clients_.erase(id);
  }
  cv_.notify_all();
}

std::optional<std::string> TokenServer::PickNextLocked() {
  const Time now = NowTicks();
  const std::string* pick = nullptr;
  double best_deficit = 0.0;
  double best_usage = 0.0;
  std::uint64_t best_seq = 0;
  bool pick_by_deficit = false;

  for (auto& [id, c] : clients_) {
    if (!c.waiting) continue;
    const double usage = c.usage.Usage(now);
    if (usage >= c.limit) continue;  // step 1: filter at gpu_limit
    const double deficit = c.request - usage;
    if (deficit > 0.0) {
      // Step 2: farthest below its guaranteed minimum wins.
      if (!pick_by_deficit || deficit > best_deficit ||
          (deficit == best_deficit && c.enqueue_seq < best_seq)) {
        pick = &id;
        best_deficit = deficit;
        best_seq = c.enqueue_seq;
        pick_by_deficit = true;
      }
    } else if (!pick_by_deficit) {
      // Step 3: lowest usage among the satisfied.
      if (pick == nullptr || usage < best_usage ||
          (usage == best_usage && c.enqueue_seq < best_seq)) {
        pick = &id;
        best_usage = usage;
        best_seq = c.enqueue_seq;
      }
    }
  }
  if (pick == nullptr) return std::nullopt;
  return *pick;
}

bool TokenServer::Acquire(const std::string& id) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = clients_.find(id);
  if (it == clients_.end() || shutdown_) return false;
  if (holder_ == id) return true;

  it->second.waiting = true;
  it->second.enqueue_seq = next_seq_++;

  for (;;) {
    if (shutdown_) return false;
    it = clients_.find(id);
    if (it == clients_.end()) return false;  // unregistered while waiting

    if (!holder_.has_value()) {
      // Token free: the policy decides who goes; only the chosen waiter
      // may take it (others keep waiting).
      auto next = PickNextLocked();
      if (next.has_value() && *next == id) {
        it->second.waiting = false;
        holder_ = id;
        holder_deadline_ = Clock::now() + config_.quota;
        it->second.usage.Start(NowTicks());
        ++grants_;
        return true;
      }
      if (next.has_value()) {
        // Someone else should run; poke them.
        cv_.notify_all();
      }
    }
    // Deadline-aware parking (the thread-world analog of the simulated
    // backend's timer wheel): while the token is held nothing can change
    // before the holder's quota deadline except a Release — and that
    // notifies — so sleep straight through to the deadline instead of
    // polling. The 2 ms floor doubles as the free-token poll (so
    // limit-throttled clients re-qualify as their window slides) and as
    // the backstop against a holder overrunning its expired quota.
    const auto backstop = Clock::now() + std::chrono::milliseconds(2);
    cv_.wait_until(lock, holder_.has_value()
                             ? std::max(holder_deadline_, backstop)
                             : backstop);
  }
}

bool TokenServer::Valid(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (shutdown_) return false;
  return holder_ == id && Clock::now() < holder_deadline_;
}

void TokenServer::Release(const std::string& id) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (holder_ != id) return;
    auto it = clients_.find(id);
    if (it != clients_.end()) it->second.usage.Stop(NowTicks());
    holder_.reset();
  }
  cv_.notify_all();
}

double TokenServer::UsageOf(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = clients_.find(id);
  if (it == clients_.end()) return 0.0;
  return it->second.usage.Usage(NowTicks());
}

std::uint64_t TokenServer::grants() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return grants_;
}

std::vector<TokenServer::ClientView> TokenServer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Time now = NowTicks();
  std::vector<ClientView> out;
  out.reserve(clients_.size());
  for (const auto& [id, c] : clients_) {
    ClientView view;
    view.id = id;
    view.request = c.request;
    view.limit = c.limit;
    view.usage = c.usage.Usage(now);
    view.holding = holder_ == id;
    view.waiting = c.waiting;
    out.push_back(std::move(view));
  }
  return out;
}

void TokenServer::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) return;
    shutdown_ = true;
    // Revoke the outstanding token so the holder's usage accounting closes
    // and Valid() turns false immediately — a dead daemon enforces nothing
    // and grants nothing.
    if (holder_.has_value()) {
      auto it = clients_.find(*holder_);
      if (it != clients_.end()) it->second.usage.Stop(NowTicks());
      holder_.reset();
    }
  }
  cv_.notify_all();
}

bool TokenServer::is_shutdown() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shutdown_;
}

}  // namespace ks::runtime
