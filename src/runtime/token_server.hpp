#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/sliding_window.hpp"

namespace ks::runtime {

/// Configuration of the real-thread token server.
struct TokenServerConfig {
  std::chrono::microseconds quota{100'000};         // 100 ms
  std::chrono::microseconds usage_window{2'000'000};  // 2 s
};

/// The vGPU backend's token protocol implemented with real threads,
/// mutexes and condition variables — the shape the per-node daemon takes
/// outside the simulation. Client threads block in Acquire() until the
/// token is theirs, run kernels while Valid() holds, and Release() when
/// the quota expires or their queue drains.
///
/// The grant policy is the same three-step elastic allocation as
/// vgpu::TokenBackend (filter at gpu_limit, prioritize below gpu_request,
/// then lowest usage), with usage measured over a sliding window of real
/// time. Thread-safety: one mutex guards all state; waiters are parked on
/// a single condition variable and re-evaluated on every release. Parking
/// is deadline-aware: while the token is held, waiters sleep through to
/// the holder's quota deadline (a release notifies them early); only when
/// the token is free do they poll, so limit-throttled clients re-qualify
/// as their usage decays.
class TokenServer {
 public:
  explicit TokenServer(TokenServerConfig config = {});
  ~TokenServer();

  TokenServer(const TokenServer&) = delete;
  TokenServer& operator=(const TokenServer&) = delete;

  void RegisterClient(const std::string& id, double gpu_request,
                      double gpu_limit);
  void UnregisterClient(const std::string& id);

  /// Blocks until the token is granted to `id` (or the server shuts down /
  /// the client is unregistered — then returns false). Re-entrant acquire
  /// by the current holder returns true immediately.
  bool Acquire(const std::string& id);

  /// True while `id` holds the token and its quota has not expired.
  bool Valid(const std::string& id) const;

  /// Gives the token back. No-op if `id` is not the holder.
  void Release(const std::string& id);

  double UsageOf(const std::string& id) const;
  std::uint64_t grants() const;

  /// Consistent view of every registered client taken under one lock —
  /// what a monitoring scrape sees.
  struct ClientView {
    std::string id;
    double request = 0.0;
    double limit = 1.0;
    double usage = 0.0;
    bool holding = false;
    bool waiting = false;
  };
  std::vector<ClientView> Snapshot() const;

  /// Wakes every waiter with failure; subsequent Acquires fail fast, the
  /// outstanding token (if any) is revoked and Valid() turns false for
  /// everyone. Idempotent.
  void Shutdown();

  bool is_shutdown() const;

 private:
  using Clock = std::chrono::steady_clock;

  Time NowTicks() const;
  /// Returns the id the policy would grant to, or nullopt. Caller holds
  /// the mutex.
  std::optional<std::string> PickNextLocked();

  struct Client {
    double request = 0.0;
    double limit = 1.0;
    SlidingWindowUsage usage;
    bool waiting = false;
    std::uint64_t enqueue_seq = 0;
    explicit Client(Duration window) : usage(window) {}
  };

  TokenServerConfig config_;
  Clock::time_point epoch_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::unordered_map<std::string, Client> clients_;
  std::optional<std::string> holder_;
  Clock::time_point holder_deadline_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t grants_ = 0;
  bool shutdown_ = false;
};

}  // namespace ks::runtime
