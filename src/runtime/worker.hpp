#pragma once

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "runtime/token_server.hpp"

namespace ks::runtime {

/// A client thread that always has another kernel to run — the real-thread
/// analogue of a training job. Each "kernel" is a fixed-length chunk of
/// work executed only while the token lease is valid; the worker releases
/// at quota expiry and immediately queues again.
class GreedyWorker {
 public:
  GreedyWorker(TokenServer* server, std::string id, double gpu_request,
               double gpu_limit,
               std::chrono::microseconds kernel = std::chrono::milliseconds(1));
  ~GreedyWorker();

  GreedyWorker(const GreedyWorker&) = delete;
  GreedyWorker& operator=(const GreedyWorker&) = delete;

  void Start();
  /// Signals the thread, joins it, and unregisters the client.
  void Stop();

  /// Total kernel time executed, in microseconds.
  std::int64_t work_done_us() const { return work_done_us_.load(); }
  const std::string& id() const { return id_; }

 private:
  void Run();

  TokenServer* server_;
  std::string id_;
  std::chrono::microseconds kernel_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<std::int64_t> work_done_us_{0};
  bool started_ = false;
};

/// A client thread with bursty demand: batches of kernels separated by
/// idle gaps (an inference service's shape). Between bursts it holds no
/// token at all — the real-thread analogue of the frontend's early
/// release.
class BurstyWorker {
 public:
  BurstyWorker(TokenServer* server, std::string id, double gpu_request,
               double gpu_limit,
               std::chrono::microseconds kernel = std::chrono::milliseconds(1),
               int kernels_per_burst = 4,
               std::chrono::microseconds gap = std::chrono::milliseconds(6),
               std::uint64_t seed = 1);
  ~BurstyWorker();

  BurstyWorker(const BurstyWorker&) = delete;
  BurstyWorker& operator=(const BurstyWorker&) = delete;

  void Start();
  void Stop();

  std::int64_t work_done_us() const { return work_done_us_.load(); }
  std::uint64_t bursts_completed() const { return bursts_.load(); }
  const std::string& id() const { return id_; }

 private:
  void Run();

  TokenServer* server_;
  std::string id_;
  std::chrono::microseconds kernel_;
  int kernels_per_burst_;
  std::chrono::microseconds gap_;
  std::uint64_t rng_state_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<std::int64_t> work_done_us_{0};
  std::atomic<std::uint64_t> bursts_{0};
  bool started_ = false;
};

}  // namespace ks::runtime
