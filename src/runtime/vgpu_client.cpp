#include "runtime/vgpu_client.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace ks::runtime {

VgpuClient::VgpuClient(ServerResolver resolver, std::string id,
                       VgpuClientConfig config)
    : resolver_(std::move(resolver)), id_(std::move(id)), config_(config) {
  assert(resolver_ != nullptr);
}

VgpuClient::~VgpuClient() { Stop(); }

TokenServer* VgpuClient::EnsureRegistered() {
  std::lock_guard<std::mutex> lock(mutex_);
  TokenServer* server = resolver_();
  if (server == nullptr || server->is_shutdown()) {
    // Connect refused, or we reached a corpse mid-teardown.
    if (current_ == server || server == nullptr) current_ = nullptr;
    return nullptr;
  }
  if (server != current_) {
    server->RegisterClient(id_, config_.gpu_request, config_.gpu_limit);
    if (ever_registered_) ++reconnects_;
    ever_registered_ = true;
    current_ = server;
  }
  return current_;
}

bool VgpuClient::BackoffWait(std::chrono::microseconds d) {
  std::unique_lock<std::mutex> lock(mutex_);
  stop_cv_.wait_for(lock, d, [this] { return stop_.load(); });
  return !stop_.load();
}

bool VgpuClient::Acquire() {
  auto backoff = config_.backoff_initial;
  int failures = 0;
  while (!stop_.load()) {
    TokenServer* server = EnsureRegistered();
    if (server != nullptr) {
      if (server->Acquire(id_)) {
        ++acquisitions_;
        return true;
      }
      // Acquire failed: the daemon shut down mid-wait (or we were
      // unregistered by Stop). Fall through to backoff and re-resolve —
      // the next incarnation will grant after reattach.
    }
    ++failures;
    if (config_.max_attempts > 0 && failures >= config_.max_attempts) {
      return false;
    }
    if (!BackoffWait(backoff)) return false;
    backoff = std::min(backoff * 2, config_.backoff_max);
  }
  return false;
}

bool VgpuClient::Valid() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (current_ == nullptr) return false;
  return current_->Valid(id_);
}

void VgpuClient::Release() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (current_ == nullptr) return;
  current_->Release(id_);
}

void VgpuClient::Stop() {
  TokenServer* server = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_.exchange(true)) return;
    server = current_;
    current_ = nullptr;
  }
  stop_cv_.notify_all();
  // Unregistering wakes a thread blocked inside server->Acquire(id_).
  if (server != nullptr && !server->is_shutdown()) {
    server->UnregisterClient(id_);
  }
}

}  // namespace ks::runtime
