#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace ks::spatial {

/// Cluster-wide spatial sharing knobs. Disabled by default: every sharePod
/// then claims the whole GPU and the token daemon stays strictly temporal
/// (one token per device), byte-equal to the pre-spatial system.
struct SpatialConfig {
  bool enabled = false;
  /// SM groups per GPU. 7 matches the A100 MIG compute-slice granularity
  /// (1g..7g profiles); any value in [1, 64] is accepted.
  int sm_groups = 7;
};

/// A MIG-style slice profile: `groups` contiguous SM groups out of the
/// device total, with proportional compute throughput and a memory wall.
struct SliceProfile {
  int groups = 0;
  /// Fraction of the device's SMs (and thus peak throughput) the slice
  /// owns. Linear in groups, as MIG compute slices are.
  double compute_fraction = 0.0;
  /// Fraction of device memory the slice may allocate before OOM.
  double memory_fraction = 0.0;
};

/// The static slice geometry of one GPU model: how many SM groups it has
/// and what each k-group profile provides. Pure arithmetic — no state.
class SliceGeometry {
 public:
  explicit SliceGeometry(int sm_groups = 7);

  int sm_groups() const { return sm_groups_; }

  /// Profile of a `groups`-wide slice; `groups` is clamped to
  /// [1, sm_groups].
  SliceProfile Profile(int groups) const;

  double ComputeFraction(int groups) const;
  std::uint64_t MemoryWallBytes(int groups, std::uint64_t device_bytes) const;

 private:
  int sm_groups_;
};

/// Occupancy bitmap over one GPU's SM groups. Slices are contiguous group
/// runs (MIG placement rule); allocation is first-fit at the lowest
/// offset, which keeps free space consolidated at the high end and makes
/// allocation order deterministic.
class SliceMap {
 public:
  SliceMap() = default;
  explicit SliceMap(int groups);

  int groups() const { return groups_; }
  int FreeGroups() const;
  int UsedGroups() const { return groups_ - FreeGroups(); }
  std::uint64_t mask() const { return mask_; }

  bool InRange(int offset, int len) const;
  bool IsFree(int offset, int len) const;

  /// Lowest offset of a free contiguous run of `len` groups, or nullopt.
  std::optional<int> FirstFit(int len) const;

  Status Occupy(int offset, int len);
  Status Release(int offset, int len);

  /// Length of the longest free contiguous run.
  int LargestFreeRun() const;

  /// Per-device fragmentation: 1 - largest_free_run / free_groups, i.e.
  /// the fraction of free capacity that is unusable by the largest slice
  /// that could otherwise fit. 0 when fully free, fully used, or when the
  /// free space is one contiguous run.
  double FragmentationScore() const;

  /// Occupancy picture, '#' used / '.' free, e.g. "##..#..".
  std::string DebugString() const;

  friend bool operator==(const SliceMap& a, const SliceMap& b) {
    return a.groups_ == b.groups_ && a.mask_ == b.mask_;
  }
  friend bool operator!=(const SliceMap& a, const SliceMap& b) {
    return !(a == b);
  }

 private:
  int groups_ = 0;
  std::uint64_t mask_ = 0;  // bit g set => group g occupied
};

/// Pool-level fragmentation ratio across devices:
/// 1 - sum(largest free run) / sum(free groups). 0 when nothing is free.
double PoolFragmentationRatio(const std::vector<const SliceMap*>& maps);

}  // namespace ks::spatial
