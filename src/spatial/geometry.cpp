#include "spatial/geometry.hpp"

#include <algorithm>
#include <cassert>

namespace ks::spatial {

SliceGeometry::SliceGeometry(int sm_groups) : sm_groups_(sm_groups) {
  assert(sm_groups_ >= 1 && sm_groups_ <= 64);
}

SliceProfile SliceGeometry::Profile(int groups) const {
  SliceProfile profile;
  profile.groups = std::clamp(groups, 1, sm_groups_);
  profile.compute_fraction =
      static_cast<double>(profile.groups) / static_cast<double>(sm_groups_);
  profile.memory_fraction = profile.compute_fraction;
  return profile;
}

double SliceGeometry::ComputeFraction(int groups) const {
  return Profile(groups).compute_fraction;
}

std::uint64_t SliceGeometry::MemoryWallBytes(
    int groups, std::uint64_t device_bytes) const {
  return static_cast<std::uint64_t>(
      Profile(groups).memory_fraction * static_cast<double>(device_bytes));
}

SliceMap::SliceMap(int groups) : groups_(groups) {
  assert(groups_ >= 0 && groups_ <= 64);
}

int SliceMap::FreeGroups() const {
  int used = 0;
  for (int g = 0; g < groups_; ++g) {
    if ((mask_ >> g) & 1u) ++used;
  }
  return groups_ - used;
}

bool SliceMap::InRange(int offset, int len) const {
  return offset >= 0 && len >= 1 && offset + len <= groups_;
}

bool SliceMap::IsFree(int offset, int len) const {
  if (!InRange(offset, len)) return false;
  for (int g = offset; g < offset + len; ++g) {
    if ((mask_ >> g) & 1u) return false;
  }
  return true;
}

std::optional<int> SliceMap::FirstFit(int len) const {
  if (len < 1 || len > groups_) return std::nullopt;
  for (int offset = 0; offset + len <= groups_; ++offset) {
    if (IsFree(offset, len)) return offset;
  }
  return std::nullopt;
}

Status SliceMap::Occupy(int offset, int len) {
  if (!InRange(offset, len)) {
    return InvalidArgumentError("slice out of range");
  }
  if (!IsFree(offset, len)) {
    return FailedPreconditionError("slice groups already occupied");
  }
  for (int g = offset; g < offset + len; ++g) mask_ |= (1ull << g);
  return Status::Ok();
}

Status SliceMap::Release(int offset, int len) {
  if (!InRange(offset, len)) {
    return InvalidArgumentError("slice out of range");
  }
  for (int g = offset; g < offset + len; ++g) {
    if (((mask_ >> g) & 1u) == 0) {
      return FailedPreconditionError("slice group not occupied");
    }
  }
  for (int g = offset; g < offset + len; ++g) mask_ &= ~(1ull << g);
  return Status::Ok();
}

int SliceMap::LargestFreeRun() const {
  int best = 0;
  int run = 0;
  for (int g = 0; g < groups_; ++g) {
    if ((mask_ >> g) & 1u) {
      run = 0;
    } else {
      ++run;
      best = std::max(best, run);
    }
  }
  return best;
}

double SliceMap::FragmentationScore() const {
  const int free = FreeGroups();
  if (free == 0) return 0.0;
  return 1.0 - static_cast<double>(LargestFreeRun()) /
                   static_cast<double>(free);
}

std::string SliceMap::DebugString() const {
  std::string out;
  out.reserve(static_cast<std::size_t>(groups_));
  for (int g = 0; g < groups_; ++g) {
    out.push_back(((mask_ >> g) & 1u) ? '#' : '.');
  }
  return out;
}

double PoolFragmentationRatio(const std::vector<const SliceMap*>& maps) {
  std::int64_t free = 0;
  std::int64_t largest = 0;
  for (const SliceMap* map : maps) {
    if (map == nullptr) continue;
    free += map->FreeGroups();
    largest += map->LargestFreeRun();
  }
  if (free == 0) return 0.0;
  return 1.0 - static_cast<double>(largest) / static_cast<double>(free);
}

}  // namespace ks::spatial
