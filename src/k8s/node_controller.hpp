#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/status.hpp"
#include "common/time.hpp"
#include "k8s/apiserver.hpp"

namespace ks::k8s {

/// Node lifecycle controller — the slice of kube-controller-manager that
/// turns a stopped heartbeat into observable cluster state. The cluster
/// reports heartbeat loss/resumption (a dead kubelet cannot announce its
/// own death); after `detection_latency` the controller marks the Node
/// NotReady, and after a further `eviction_timeout` it evicts every pod
/// still bound there (phase Failed, message "NodeLost"). While the node
/// stays down it re-sweeps each eviction interval, catching pods whose
/// binds were in flight when the node died. Recovery flips the Node back
/// to Ready after the same detection latency.
///
/// All bookkeeping is keyed by node name in sorted maps and pods are
/// evicted in ObjectStore::List() order, so the eviction timeline is
/// deterministic for a given fault schedule.
class NodeLifecycleController {
 public:
  NodeLifecycleController(ApiServer* api, Duration detection_latency,
                          Duration eviction_timeout);

  /// Heartbeats stopped (node crashed). Idempotent while the node is down.
  void ReportNodeFailure(const std::string& node_name);

  /// Heartbeats resumed (node recovered).
  void ReportNodeRecovery(const std::string& node_name);

  bool IsFailed(const std::string& node_name) const;

  std::uint64_t evictions() const { return evictions_; }
  std::uint64_t not_ready_transitions() const { return not_ready_; }

 private:
  struct NodeState {
    bool failed = false;
    /// Bumped on every report; pending timers capture the generation they
    /// were armed under and no-op if the node flapped in between.
    std::uint64_t generation = 0;
  };

  void MarkNotReady(const std::string& node_name, std::uint64_t generation);
  void EvictPods(const std::string& node_name, std::uint64_t generation);
  void SetNodeReady(const std::string& node_name, bool ready);

  ApiServer* api_;
  sim::Simulation* sim_;
  Duration detection_latency_;
  Duration eviction_timeout_;
  std::map<std::string, NodeState> states_;
  std::uint64_t evictions_ = 0;
  std::uint64_t not_ready_ = 0;
};

}  // namespace ks::k8s
