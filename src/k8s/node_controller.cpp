#include "k8s/node_controller.hpp"

#include <cassert>

namespace ks::k8s {

namespace {
constexpr const char* kComponent = "node-controller";
}  // namespace

NodeLifecycleController::NodeLifecycleController(ApiServer* api,
                                                 Duration detection_latency,
                                                 Duration eviction_timeout)
    : api_(api),
      sim_(api->sim()),
      detection_latency_(detection_latency),
      eviction_timeout_(eviction_timeout) {
  assert(api_ != nullptr);
}

void NodeLifecycleController::ReportNodeFailure(const std::string& node_name) {
  NodeState& state = states_[node_name];
  if (state.failed) return;
  state.failed = true;
  const std::uint64_t generation = ++state.generation;
  sim_->ScheduleAfter(detection_latency_, [this, node_name, generation] {
    MarkNotReady(node_name, generation);
  });
}

void NodeLifecycleController::ReportNodeRecovery(
    const std::string& node_name) {
  NodeState& state = states_[node_name];
  if (!state.failed) return;
  state.failed = false;
  const std::uint64_t generation = ++state.generation;
  sim_->ScheduleAfter(detection_latency_, [this, node_name, generation] {
    auto it = states_.find(node_name);
    if (it == states_.end() || it->second.generation != generation) return;
    SetNodeReady(node_name, true);
    api_->events().Record(kComponent, "node/" + node_name, "NodeReady");
  });
}

bool NodeLifecycleController::IsFailed(const std::string& node_name) const {
  auto it = states_.find(node_name);
  return it != states_.end() && it->second.failed;
}

void NodeLifecycleController::MarkNotReady(const std::string& node_name,
                                           std::uint64_t generation) {
  auto it = states_.find(node_name);
  if (it == states_.end() || it->second.generation != generation) return;
  ++not_ready_;
  SetNodeReady(node_name, false);
  api_->events().Record(kComponent, "node/" + node_name, "NodeNotReady");
  sim_->ScheduleAfter(eviction_timeout_, [this, node_name, generation] {
    EvictPods(node_name, generation);
  });
}

void NodeLifecycleController::EvictPods(const std::string& node_name,
                                        std::uint64_t generation) {
  auto it = states_.find(node_name);
  if (it == states_.end() || it->second.generation != generation) return;
  std::uint64_t evicted = 0;
  for (const Pod& pod : api_->pods().List()) {
    if (pod.status.node_name != node_name) continue;
    if (pod.terminal()) continue;
    ++evictions_;
    ++evicted;
    api_->events().Record(kComponent, "pod/" + pod.meta.name, "Evicted",
                          "NodeLost");
    (void)api_->SetPodPhase(pod.meta.name, PodPhase::kFailed, "NodeLost");
  }
  // Re-sweep while pods keep turning up (a bind in flight when the node
  // died can land afterwards). A clean sweep ends the loop — the scheduler
  // skips NotReady nodes, so nothing new can arrive — keeping the event
  // queue drainable while the node stays down.
  if (evicted > 0) {
    sim_->ScheduleAfter(eviction_timeout_, [this, node_name, generation] {
      EvictPods(node_name, generation);
    });
  }
}

void NodeLifecycleController::SetNodeReady(const std::string& node_name,
                                           bool ready) {
  (void)RetryOnConflict(api_->nodes(), node_name, [&](Node& node) {
    if (node.ready == ready) {
      return FailedPreconditionError("node condition unchanged");
    }
    node.ready = ready;
    return Status::Ok();
  });
}

}  // namespace ks::k8s
