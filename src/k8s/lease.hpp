#pragma once

#include <cstdint>
#include <string>

#include "common/time.hpp"
#include "k8s/objects.hpp"

namespace ks::k8s {

/// coordination.k8s.io/Lease, reduced to the fields leader election needs.
/// One Lease object per elected role ("kubeshare-sched",
/// "kubeshare-devmgr"); the current leader renews it, standbys watch for it
/// to expire. The fencing token is the number of acquisitions so far — it
/// increases every time leadership changes hands, never on renewal, so a
/// write stamped with an old token identifies a deposed leader (see
/// FencingGate in store.hpp).
struct Lease {
  ObjectMeta meta;
  /// Identity of the current holder; empty when the lease is unheld.
  std::string holder;
  /// Monotonic acquisition counter (Kubernetes' leaseTransitions, used
  /// here as the fencing token stamped into the leader's writes).
  std::uint64_t fencing_token = 0;
  /// Last renewal instant; the lease expires `lease_duration` after it.
  Time renew_time{0};
  Duration lease_duration{Seconds(10)};

  bool Held() const { return !holder.empty(); }
  bool ExpiredAt(Time now) const {
    return !Held() || now - renew_time >= lease_duration;
  }
};

}  // namespace ks::k8s
