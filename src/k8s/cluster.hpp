#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "gpu/device.hpp"
#include "gpu/device_reference.hpp"
#include "gpu/nvml.hpp"
#include "k8s/apiserver.hpp"
#include "k8s/device_plugin.hpp"
#include "k8s/kubelet.hpp"
#include "k8s/node_controller.hpp"
#include "k8s/runtime.hpp"
#include "k8s/scheduler.hpp"
#include "sim/simulation.hpp"
#include "sim/tick_hub.hpp"
#include "spatial/geometry.hpp"
#include "vgpu/swap.hpp"
#include "vgpu/token_backend.hpp"
#include "vgpu/token_backend_reference.hpp"

namespace ks::k8s {

/// Shape of the simulated testbed. Defaults model the paper's evaluation
/// cluster: 8 AWS p3.8xlarge nodes, each with a 36-core CPU, 244 GB RAM and
/// 4 Tesla V100 GPUs (§5.1).
struct ClusterConfig {
  int nodes = 8;
  int gpus_per_node = 4;
  std::int64_t cpu_millicores = 36000;
  std::int64_t memory_bytes = 244ll * 1024 * 1024 * 1024;
  gpu::GpuSpec gpu_spec;
  LatencyModel latency;
  vgpu::BackendConfig backend;
  /// MIG-style spatial sharing (SM-group slices, concurrent tokens,
  /// fragmentation-aware placement). Disabled by default: the cluster
  /// behaves byte-identically to the temporal-only system.
  spatial::SpatialConfig spatial;
  /// GPUswap-style memory oversubscription (ROADMAP item 2): cuMemAlloc
  /// past physical capacity is served by a per-device SwapManager, token
  /// grants pay page-migration time over the shared host<->device link,
  /// and `backend.tq` can add the nvshare-style exclusive-time-quantum
  /// anti-thrashing rotation. Disabled by default: the cluster behaves
  /// byte-identically to the strict-quota system.
  vgpu::OversubscriptionConfig oversub;
  /// Which token-renewal timer implementation the per-node daemons use:
  /// the hierarchical timer wheel (default) or the one-event-per-deadline
  /// reference backend kept as the differential-test oracle.
  vgpu::TokenTimerMode token_timers = vgpu::TokenTimerMode::kWheel;
  /// Which device execution engine the GPUs use: the virtual-time core
  /// with fused kernel streams (default) or the per-kernel reference
  /// engine kept as the differential-test oracle.
  gpu::GpuExecMode exec = gpu::GpuExecMode::kFused;
  /// Grid for the shared sampler tick (NVML poll and any pull-mode
  /// PeriodicSampler ride one sim::TickHub instead of keeping private
  /// self-rescheduling events). Zero keeps monitors in push mode.
  Duration sampler_granularity = Millis(1);
  /// Watch fan-out delivery path for every store on the apiserver (and
  /// KubeShare's sharePod store, which joins the same hub). kBatched — the
  /// default — coalesces same-time deliveries into one engine event;
  /// watcher-visible ordering and timing are byte-identical to kUnbatched,
  /// which stays available as the differential comparison path.
  WatchFanout watch_fanout = WatchFanout::kBatched;
  /// Use the scaling-factor device plugin (the §3.1 trick) instead of the
  /// stock whole-GPU plugin. Used by the fragmentation baselines.
  bool scaled_plugin = false;
  int plugin_scale = 100;
  /// Node lifecycle controller timings: how long after a node stops
  /// heartbeating it is marked NotReady, and how much longer until its
  /// pods are evicted (kube-controller-manager's
  /// --node-monitor-grace-period / --pod-eviction-timeout, scaled down to
  /// simulation-friendly values).
  Duration node_detection = Seconds(4);
  Duration pod_eviction_timeout = Seconds(5);
  /// Informer-style periodic relist for every kubelet and the scheduler,
  /// repairing state lost to dropped watch events (chaos testing). Zero
  /// disables it — the default, because the perpetual resync loop keeps
  /// the event queue non-empty forever, so Simulation::Run() would never
  /// return; callers that enable it must drive with RunUntil().
  Duration component_resync = Millis(0);
};

/// A fully-wired simulated Kubernetes cluster: apiserver, kube-scheduler,
/// and per node a kubelet, container runtime, device plugin, the physical
/// GPUs, and the vGPU token-backend daemon KubeShare's device library talks
/// to. Owns every component; everything runs on one Simulation.
class Cluster {
 public:
  explicit Cluster(ClusterConfig config = {});
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Starts kubelets (registering nodes) and the scheduler. Call once,
  /// before running the simulation.
  Status Start();

  sim::Simulation& sim() { return sim_; }
  ApiServer& api() { return *api_; }
  KubeScheduler& scheduler() { return *scheduler_; }
  gpu::NvmlMonitor& nvml() { return *nvml_; }
  /// Shared sampler tick all pull-mode instruments multiplex onto.
  /// Null when ClusterConfig::sampler_granularity is zero (push mode).
  sim::TickHub* tick_hub() { return tick_hub_.get(); }
  const ClusterConfig& config() const { return config_; }

  struct NodeHandle {
    std::string name;
    std::vector<std::unique_ptr<gpu::GpuDevice>> gpus;
    std::unique_ptr<DevicePlugin> plugin;
    std::unique_ptr<ContainerRuntime> runtime;
    std::unique_ptr<Kubelet> kubelet;
    std::unique_ptr<vgpu::TokenBackendApi> token_backend;
    bool crashed = false;
  };

  std::size_t node_count() const { return nodes_.size(); }
  NodeHandle& node(std::size_t i) { return *nodes_.at(i); }
  NodeHandle* FindNode(const std::string& name);

  gpu::GpuDevice* FindGpu(const GpuUuid& uuid);
  /// Token backend of the node hosting `uuid` (every GPU has exactly one).
  vgpu::TokenBackendApi* BackendForGpu(const GpuUuid& uuid);

  /// Installs one application-side start/stop hook across all node
  /// runtimes (the workload layer's attachment point).
  void SetContainerStartHook(ContainerRuntime::StartHook hook);
  void SetContainerStopHook(ContainerRuntime::StopHook hook);

  /// Convenience for workloads: exits the container of `pod_name` wherever
  /// it runs.
  Status ExitPodContainer(const std::string& pod_name, bool success,
                          const std::string& reason = "");

  NodeLifecycleController& node_controller() { return *node_controller_; }

  /// Fault injection: hard-crashes a node. Every container on it dies
  /// (stop hooks fire), the kubelet loses its state, and the node's token
  /// daemon goes down with it (its state rebuild is scheduled for when the
  /// node is back). The control plane notices via the node lifecycle
  /// controller after ClusterConfig::node_detection.
  Status CrashNode(const std::string& node_name);

  /// Fault injection: brings a crashed node back. The kubelet resyncs and
  /// the node is marked Ready again after the detection latency.
  Status RecoverNode(const std::string& node_name);

  bool NodeCrashed(const std::string& node_name);

  /// Fault injection: the kernel OOM-killer takes out a pod's container.
  /// Surfaces as a Failed pod with message "OOMKilled".
  Status OomKillPod(const std::string& pod_name);

 private:
  void ScheduleResync();

  ClusterConfig config_;
  sim::Simulation sim_;
  std::unique_ptr<sim::TickHub> tick_hub_;
  std::unique_ptr<ApiServer> api_;
  std::unique_ptr<KubeScheduler> scheduler_;
  std::unique_ptr<NodeLifecycleController> node_controller_;
  std::unique_ptr<gpu::NvmlMonitor> nvml_;
  std::vector<std::unique_ptr<NodeHandle>> nodes_;
  bool started_ = false;
};

}  // namespace ks::k8s
