#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "sim/simulation.hpp"

namespace ks::k8s {

/// A cluster event, in the spirit of `kubectl get events`: which component
/// did what to which object, and why.
struct ClusterEvent {
  Time at{0};
  std::string component;  // "kube-scheduler", "kubelet/node-0", ...
  std::string object;     // "pod/train-1", "vgpu/vgpu-3", ...
  std::string reason;     // CamelCase machine-readable reason
  std::string message;    // human-readable detail
};

/// Append-only event sink shared by every control-plane component. Events
/// are the observability surface of the simulation: scheduling decisions,
/// admissions, vGPU lifecycle transitions and failures all land here, and
/// the scenario tool's `report events` prints them.
class EventRecorder {
 public:
  explicit EventRecorder(sim::Simulation* sim) : sim_(sim) {}

  void Record(std::string component, std::string object, std::string reason,
              std::string message = "") {
    events_.push_back({sim_->Now(), std::move(component), std::move(object),
                       std::move(reason), std::move(message)});
  }

  const std::vector<ClusterEvent>& events() const { return events_; }

  /// Events touching one object.
  std::vector<ClusterEvent> For(const std::string& object) const {
    std::vector<ClusterEvent> out;
    for (const ClusterEvent& e : events_) {
      if (e.object == object) out.push_back(e);
    }
    return out;
  }

  /// Count of events with the given reason.
  std::size_t CountReason(const std::string& reason) const {
    std::size_t n = 0;
    for (const ClusterEvent& e : events_) {
      if (e.reason == reason) ++n;
    }
    return n;
  }

  /// Prints the last `tail` events (all of them when tail == 0).
  void Print(std::ostream& os, std::size_t tail = 0) const;

 private:
  sim::Simulation* sim_;
  std::vector<ClusterEvent> events_;
};

inline void EventRecorder::Print(std::ostream& os, std::size_t tail) const {
  const std::size_t start =
      (tail == 0 || tail >= events_.size()) ? 0 : events_.size() - tail;
  for (std::size_t i = start; i < events_.size(); ++i) {
    const ClusterEvent& e = events_[i];
    os << FormatTime(e.at) << "  " << e.component << "  " << e.object << "  "
       << e.reason;
    if (!e.message.empty()) os << "  (" << e.message << ")";
    os << "\n";
  }
}

}  // namespace ks::k8s
