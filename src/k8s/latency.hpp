#pragma once

#include "common/time.hpp"

namespace ks::k8s {

/// Latencies of the pod-creation pipeline and control-plane operations.
/// Defaults are calibrated so a solo pod creation lands in the "a few
/// seconds" range the paper reports (Fig 10 dashed line), dominated by the
/// container runtime start.
struct LatencyModel {
  /// apiserver write / etcd persist per mutating call.
  Duration api_write = Millis(15);
  /// Watch propagation (store -> informer caches).
  Duration watch_propagation = Millis(1);
  /// kube-scheduler: fixed overhead per pod scheduling cycle...
  Duration sched_fixed = Millis(10);
  /// ...plus per-node filter/score cost.
  Duration sched_per_node = Millis(1);
  /// kubelet pod sync: admission, cgroup setup, volume mounts.
  Duration kubelet_sync = Millis(200);
  /// Device plugin Allocate RPC.
  Duration device_allocate = Millis(50);
  /// Container runtime (Docker) create+start for a cached image.
  Duration container_start = Millis(1800);
  /// One-time image pull per (image, node); 0 disables the model (every
  /// image pre-pulled, the paper's steady-state assumption). Concurrent
  /// starts of the same image on a node coalesce onto one pull.
  Duration image_pull = Duration{0};
  /// Runtime work the node can do concurrently; extra pod creations on the
  /// same node queue behind this many parallel workers, which is what makes
  /// creation latency grow with concurrent requests in Fig 10.
  int runtime_workers = 2;
  /// Container teardown.
  Duration container_stop = Millis(300);
};

}  // namespace ks::k8s
