#include "k8s/cluster.hpp"

#include <cassert>

namespace ks::k8s {

Cluster::Cluster(ClusterConfig config) : config_(config) {
  api_ = std::make_unique<ApiServer>(&sim_, config_.latency,
                                     config_.watch_fanout);
  scheduler_ = std::make_unique<KubeScheduler>(api_.get());
  node_controller_ = std::make_unique<NodeLifecycleController>(
      api_.get(), config_.node_detection, config_.pod_eviction_timeout);
  if (config_.sampler_granularity.count() > 0) {
    tick_hub_ = std::make_unique<sim::TickHub>(&sim_,
                                               config_.sampler_granularity);
  }
  nvml_ = std::make_unique<gpu::NvmlMonitor>(&sim_, Seconds(1),
                                             tick_hub_.get());

  for (int n = 0; n < config_.nodes; ++n) {
    auto handle = std::make_unique<NodeHandle>();
    handle->name = "node-" + std::to_string(n);

    std::vector<gpu::GpuDevice*> raw_gpus;
    for (int g = 0; g < config_.gpus_per_node; ++g) {
      const GpuUuid uuid("GPU-" + std::to_string(n) + "-" +
                         std::to_string(g));
      std::unique_ptr<gpu::GpuDevice> dev;
      if (config_.exec == gpu::GpuExecMode::kReference) {
        dev = std::make_unique<gpu::GpuDeviceReference>(&sim_, uuid,
                                                        config_.gpu_spec);
      } else {
        dev = std::make_unique<gpu::GpuDevice>(&sim_, uuid, config_.gpu_spec);
      }
      nvml_->Register(dev.get());
      raw_gpus.push_back(dev.get());
      handle->gpus.push_back(std::move(dev));
    }

    if (config_.scaled_plugin) {
      handle->plugin = std::make_unique<ScaledNvidiaDevicePlugin>(
          raw_gpus, config_.plugin_scale);
    } else {
      handle->plugin = std::make_unique<NvidiaDevicePlugin>(raw_gpus);
    }

    handle->runtime = std::make_unique<ContainerRuntime>(
        &sim_, handle->name, raw_gpus, config_.latency);

    ResourceList machine;
    machine.Set(kResourceCpu, config_.cpu_millicores);
    machine.Set(kResourceMemory, config_.memory_bytes);
    handle->kubelet = std::make_unique<Kubelet>(
        api_.get(), handle->name, machine, handle->runtime.get(),
        handle->plugin.get());

    // The spatial knobs ride the backend config into each node's token
    // daemon (the daemon itself has no view of ClusterConfig).
    vgpu::BackendConfig backend_cfg = config_.backend;
    if (config_.spatial.enabled) {
      backend_cfg.spatial_enabled = true;
      backend_cfg.sm_groups = config_.spatial.sm_groups;
    }
    if (config_.token_timers == vgpu::TokenTimerMode::kWheel) {
      handle->token_backend =
          std::make_unique<vgpu::TokenBackend>(&sim_, backend_cfg);
    } else {
      handle->token_backend =
          std::make_unique<vgpu::TokenBackendReference>(&sim_, backend_cfg);
    }
    for (gpu::GpuDevice* g : raw_gpus) {
      handle->token_backend->RegisterDevice(g->uuid());
    }
    if (backend_cfg.enforcement.enabled) {
      // Isolation enforcement closes the loop between daemon and device:
      // the backend drives the per-owner token gates / memory quotas, and
      // the device reports what the gates caught back to the backend's
      // per-tenant violation ledger.
      handle->token_backend->SetDeviceResolver(
          [this](const GpuUuid& u) { return FindGpu(u); });
      vgpu::TokenBackendApi* backend = handle->token_backend.get();
      for (gpu::GpuDevice* g : raw_gpus) {
        g->SetViolationFn([backend](const ContainerId& owner,
                                    gpu::DeviceViolation v) {
          backend->RecordViolation(
              owner, v == gpu::DeviceViolation::kMemoryQuota
                         ? vgpu::ViolationKind::kMemoryQuota
                         : vgpu::ViolationKind::kFencedSubmit);
        });
      }
    }

    nodes_.push_back(std::move(handle));
  }
}

Cluster::~Cluster() = default;

Status Cluster::Start() {
  if (started_) return FailedPreconditionError("cluster already started");
  started_ = true;
  for (auto& node : nodes_) {
    KS_RETURN_IF_ERROR(node->kubelet->Start());
  }
  KS_RETURN_IF_ERROR(scheduler_->Start());
  if (config_.component_resync.count() > 0) ScheduleResync();
  return Status::Ok();
}

void Cluster::ScheduleResync() {
  // Perpetual self-rescheduling loop: only runs when the resync knob is
  // set, and then the simulation must be driven with RunUntil().
  sim_.ScheduleAfter(config_.component_resync, [this] {
    for (auto& node : nodes_) node->kubelet->ResyncOnce();
    scheduler_->ResyncOnce();
    ScheduleResync();
  });
}

Cluster::NodeHandle* Cluster::FindNode(const std::string& name) {
  for (auto& node : nodes_) {
    if (node->name == name) return node.get();
  }
  return nullptr;
}

gpu::GpuDevice* Cluster::FindGpu(const GpuUuid& uuid) {
  for (auto& node : nodes_) {
    for (auto& dev : node->gpus) {
      if (dev->uuid() == uuid) return dev.get();
    }
  }
  return nullptr;
}

vgpu::TokenBackendApi* Cluster::BackendForGpu(const GpuUuid& uuid) {
  for (auto& node : nodes_) {
    for (auto& dev : node->gpus) {
      if (dev->uuid() == uuid) return node->token_backend.get();
    }
  }
  return nullptr;
}

void Cluster::SetContainerStartHook(ContainerRuntime::StartHook hook) {
  for (auto& node : nodes_) {
    node->runtime->SetStartHook(hook);
  }
}

void Cluster::SetContainerStopHook(ContainerRuntime::StopHook hook) {
  for (auto& node : nodes_) {
    node->runtime->SetStopHook(hook);
  }
}

Status Cluster::ExitPodContainer(const std::string& pod_name, bool success,
                                 const std::string& reason) {
  auto pod = api_->pods().Get(pod_name);
  if (!pod.ok()) return pod.status();
  NodeHandle* node = FindNode(pod->status.node_name);
  if (node == nullptr) {
    return NotFoundError("pod not bound to a known node: " + pod_name);
  }
  return node->runtime->ExitContainerByPod(pod_name, success, reason);
}

Status Cluster::CrashNode(const std::string& node_name) {
  NodeHandle* node = FindNode(node_name);
  if (node == nullptr) return NotFoundError("no node: " + node_name);
  if (node->crashed) {
    return FailedPreconditionError("node already crashed: " + node_name);
  }
  node->crashed = true;
  api_->events().Record("chaos", "node/" + node_name, "NodeCrash");
  // Order matters: containers die first (stop hooks tear down the
  // in-container stacks, which unregister from the token backend on the
  // next event), then the kubelet forgets everything, then the token
  // daemon's state is wiped — by the time its restart window elapses only
  // genuinely surviving frontends re-register (none, for a node crash).
  node->runtime->CrashAll();
  (void)node->kubelet->Crash();
  node->token_backend->Restart();
  node_controller_->ReportNodeFailure(node_name);
  return Status::Ok();
}

Status Cluster::RecoverNode(const std::string& node_name) {
  NodeHandle* node = FindNode(node_name);
  if (node == nullptr) return NotFoundError("no node: " + node_name);
  if (!node->crashed) {
    return FailedPreconditionError("node is not crashed: " + node_name);
  }
  node->crashed = false;
  api_->events().Record("chaos", "node/" + node_name, "NodeRecover");
  (void)node->kubelet->Recover();
  node_controller_->ReportNodeRecovery(node_name);
  return Status::Ok();
}

bool Cluster::NodeCrashed(const std::string& node_name) {
  NodeHandle* node = FindNode(node_name);
  return node != nullptr && node->crashed;
}

Status Cluster::OomKillPod(const std::string& pod_name) {
  auto pod = api_->pods().Get(pod_name);
  if (!pod.ok()) return pod.status();
  NodeHandle* node = FindNode(pod->status.node_name);
  if (node == nullptr) {
    return NotFoundError("pod not bound to a known node: " + pod_name);
  }
  api_->events().Record("chaos", "pod/" + pod_name, "OomKill");
  return node->runtime->ExitContainerByPod(pod_name, false, "OOMKilled");
}

}  // namespace ks::k8s
