#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/time.hpp"
#include "k8s/apiserver.hpp"
#include "k8s/lease.hpp"
#include "k8s/store.hpp"

namespace ks::k8s {

struct LeaderElectorConfig {
  /// Name of the Lease object contended for ("kubeshare-devmgr", ...).
  std::string lease_name;
  /// This candidate's identity, recorded as the holder while leading.
  std::string identity;
  /// How long a won lease stays valid without renewal.
  Duration lease_duration = Seconds(10);
  /// Renewal cadence while leading (must be well under lease_duration).
  Duration renew_period = Seconds(3);
  /// Acquisition-retry cadence while standing by.
  Duration retry_period = Seconds(2);
};

/// Lease-based leader election on the simulation clock, following the
/// client-go leaderelection loop: candidates race to create/take over a
/// Lease object, the winner renews it every renew_period, and standbys
/// poll until the lease goes lease_duration without renewal, then take
/// over. Every acquisition increments the lease's fencing token; the
/// winner raises the registered FencingGate floors to its token so writes
/// stamped by any earlier leader are rejected at the store (the fencing
/// discipline — a paused or partitioned ex-leader cannot clobber state it
/// no longer owns, however late its writes land).
///
/// The partition fault (SetPartitioned) models a wedged leader — GC pause
/// or a partition of the election channel: lease reads/writes blackhole,
/// so the leader neither renews nor learns it was deposed, while its
/// controller keeps emitting (fenced, hence rejected) writes. On heal, the
/// next renewal attempt observes the new holder and steps down.
class LeaderElector {
 public:
  LeaderElector(ApiServer* api, LeaderElectorConfig config);

  LeaderElector(const LeaderElector&) = delete;
  LeaderElector& operator=(const LeaderElector&) = delete;

  /// Stores whose fencing floor this elector raises when it wins. Must be
  /// registered before Start().
  void RegisterGate(FencingGate* gate);

  /// on_started(fencing_token) fires when this candidate becomes leader;
  /// on_stopped() when it loses or releases leadership.
  void SetCallbacks(std::function<void(std::uint64_t)> on_started,
                    std::function<void()> on_stopped);

  /// Begins the acquire/renew loop. Idempotent.
  void Start();

  /// Stops campaigning; a current leader releases the lease (unless
  /// partitioned, in which case it just goes silent and the lease ages out).
  void Stop();

  /// Chaos hook: true blackholes this candidate's lease traffic.
  void SetPartitioned(bool partitioned);
  bool partitioned() const { return partitioned_; }

  bool IsLeader() const { return leader_; }
  /// Valid while IsLeader(); the token to stamp into controller writes.
  std::uint64_t fencing_token() const { return token_; }

  std::uint64_t elections_won() const { return elections_won_; }
  std::uint64_t stepdowns() const { return stepdowns_; }
  const LeaderElectorConfig& config() const { return config_; }

 private:
  void ScheduleTick(Duration after);
  void Tick();
  void TryAcquireOrRenew();
  void BecomeLeader(std::uint64_t token);
  void StepDown();

  ApiServer* api_;
  LeaderElectorConfig config_;
  std::vector<FencingGate*> gates_;
  std::function<void(std::uint64_t)> on_started_;
  std::function<void()> on_stopped_;

  bool running_ = false;
  bool partitioned_ = false;
  bool leader_ = false;
  std::uint64_t token_ = 0;
  // Bumped by Start/Stop so ticks scheduled before a stop are no-ops.
  std::uint64_t epoch_ = 0;
  std::uint64_t elections_won_ = 0;
  std::uint64_t stepdowns_ = 0;
};

}  // namespace ks::k8s
