#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "k8s/apiserver.hpp"
#include "k8s/device_plugin.hpp"
#include "k8s/runtime.hpp"

namespace ks::k8s {

/// The node agent: watches for pods bound to its node, admits them against
/// node capacity, performs device-plugin allocation, and drives the
/// container runtime. It also advertises the node (with the device plugin's
/// resource count folded into capacity) to the apiserver, which is how the
/// scheduler learns about custom devices (§2.2).
///
/// Faithful to the framework limitation the paper leans on: the kubelet
/// picks device IDs from the plugin's free list itself, in registration
/// order — neither the scheduler nor the user can influence which physical
/// device a pod lands on (implicit, late binding — §3.2).
class Kubelet {
 public:
  Kubelet(ApiServer* api, std::string node_name, ResourceList machine_capacity,
          ContainerRuntime* runtime, DevicePlugin* plugin);

  /// Registers the node object and starts watching for work.
  Status Start();

  /// Node crash: the agent loses all in-memory state (pod records,
  /// reservations, device assignments) and stops reacting to watch events.
  /// It does not talk to the apiserver — a dead node cannot; the control
  /// plane notices through the node lifecycle controller.
  Status Crash();

  /// Node recovery: the agent comes back with empty state and resyncs
  /// against the apiserver. Pods that were Running here before the crash
  /// are reported Failed ("NodeLost": their containers died with the node,
  /// restartPolicy is Never in this model); pods bound while the agent was
  /// down are adopted and started fresh.
  Status Recover();

  bool crashed() const { return crashed_; }

  /// Informer-style relist, repairing state lost to dropped watch events:
  /// adopts bound pods this agent never heard about (a swallowed Added)
  /// and reaps records whose pod object vanished (a swallowed Deleted).
  /// Real kubelets do this on their sync period; here it is driven by
  /// Cluster when ClusterConfig::component_resync is enabled.
  void ResyncOnce();

  /// ListAndWatch refresh: re-reads the plugin's device list, marks units
  /// (un)healthy, and re-advertises the node capacity. In-use units that
  /// turned unhealthy stay attached to their pod until it releases them;
  /// they just stop being allocatable (matching the real framework).
  Status RefreshDevices();

  const std::string& node_name() const { return node_name_; }

  /// Resources currently reserved by admitted (non-terminal) pods.
  const ResourceList& allocated() const { return allocated_; }

  /// Free device units of the plugin resource.
  std::size_t FreeDeviceUnits() const;

  /// Device units currently assigned to a pod (empty if none).
  std::vector<std::string> UnitsOf(const std::string& pod_name) const;

 private:
  enum class PodState { kSyncing, kStarting, kRunning, kTerminated };

  void OnPodEvent(const WatchEvent<Pod>& event);
  void AdoptPod(const Pod& pod);
  void SyncPod(const Pod& pod);
  void StartViaRuntime(const std::string& name,
                       std::map<std::string, std::string> env);
  void FinishPod(const std::string& pod_name, bool success,
                 const std::string& reason);
  void ReleasePod(const std::string& pod_name);
  Expected<std::vector<std::string>> PickDeviceUnits(std::int64_t count);

  ApiServer* api_;
  sim::Simulation* sim_;
  std::string node_name_;
  ResourceList capacity_;
  ContainerRuntime* runtime_;
  DevicePlugin* plugin_;  // may be null (CPU-only node)

  ResourceList allocated_;
  struct UnitSlot {
    std::string id;
    bool in_use = false;
    bool healthy = true;
  };
  std::vector<UnitSlot> units_;

  struct PodRecord {
    PodState state = PodState::kSyncing;
    ResourceList requests;
    std::vector<std::string> unit_ids;
  };
  std::unordered_map<std::string, PodRecord> pods_;
  bool started_ = false;
  bool crashed_ = false;
};

}  // namespace ks::k8s
