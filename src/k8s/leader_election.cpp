#include "k8s/leader_election.hpp"

#include <utility>

namespace ks::k8s {

LeaderElector::LeaderElector(ApiServer* api, LeaderElectorConfig config)
    : api_(api), config_(std::move(config)) {}

void LeaderElector::RegisterGate(FencingGate* gate) {
  gates_.push_back(gate);
}

void LeaderElector::SetCallbacks(std::function<void(std::uint64_t)> on_started,
                                 std::function<void()> on_stopped) {
  on_started_ = std::move(on_started);
  on_stopped_ = std::move(on_stopped);
}

void LeaderElector::Start() {
  if (running_) return;
  running_ = true;
  ++epoch_;
  Tick();
}

void LeaderElector::Stop() {
  if (!running_) return;
  running_ = false;
  ++epoch_;
  if (leader_ && !partitioned_) {
    // Graceful release: clear the holder so a standby can acquire without
    // waiting out the lease. The token is NOT reset — the next winner still
    // increments past it, keeping fencing monotonic.
    (void)RetryOnConflict(api_->leases(), config_.lease_name,
                          [&](Lease& lease) {
                            if (lease.holder == config_.identity) {
                              lease.holder.clear();
                            }
                            return Status::Ok();
                          });
  }
  if (leader_) StepDown();
}

void LeaderElector::SetPartitioned(bool partitioned) {
  partitioned_ = partitioned;
}

void LeaderElector::ScheduleTick(Duration after) {
  const std::uint64_t epoch = epoch_;
  api_->sim()->ScheduleAfter(after, [this, epoch] {
    if (epoch != epoch_) return;
    Tick();
  });
}

void LeaderElector::Tick() {
  if (!running_) return;
  TryAcquireOrRenew();
  ScheduleTick(leader_ ? config_.renew_period : config_.retry_period);
}

void LeaderElector::TryAcquireOrRenew() {
  // A partitioned candidate's lease traffic blackholes: no renewal reaches
  // the apiserver, and no read tells it about a new holder, so a
  // partitioned leader keeps believing it leads — the exact state fencing
  // exists for.
  if (partitioned_) return;

  const Time now = api_->sim()->Now();
  auto lease = api_->leases().Get(config_.lease_name);

  if (!lease.ok()) {
    // First candidate to arrive creates the lease and takes it.
    Lease fresh;
    fresh.meta.name = config_.lease_name;
    fresh.holder = config_.identity;
    fresh.fencing_token = 1;
    fresh.renew_time = now;
    fresh.lease_duration = config_.lease_duration;
    if (api_->leases().Create(fresh).ok()) BecomeLeader(fresh.fencing_token);
    return;
  }

  if (lease->holder == config_.identity) {
    // Renew. Losing the renewal race (someone took the lease over after it
    // expired under us) means we were deposed.
    bool still_ours = false;
    Status s = RetryOnConflict(api_->leases(), config_.lease_name,
                               [&](Lease& l) {
                                 still_ours = l.holder == config_.identity;
                                 if (still_ours) l.renew_time = now;
                                 return Status::Ok();
                               });
    if (s.ok() && still_ours) {
      if (!leader_) BecomeLeader(lease->fencing_token);
    } else if (leader_) {
      StepDown();
    }
    return;
  }

  if (leader_) {
    // The lease names someone else: we were deposed while out of touch.
    StepDown();
  }

  if (!lease->ExpiredAt(now)) return;

  // Expired under another holder — contend for it. The mutator re-checks
  // expiry so racing standbys serialize through the version check and only
  // one wins the takeover.
  std::uint64_t won_token = 0;
  Status s = RetryOnConflict(api_->leases(), config_.lease_name,
                             [&](Lease& l) {
                               if (!l.ExpiredAt(now)) {
                                 return FailedPreconditionError(
                                     "lease renewed by " + l.holder);
                               }
                               l.holder = config_.identity;
                               l.fencing_token += 1;
                               l.renew_time = now;
                               l.lease_duration = config_.lease_duration;
                               won_token = l.fencing_token;
                               return Status::Ok();
                             });
  if (s.ok()) BecomeLeader(won_token);
}

void LeaderElector::BecomeLeader(std::uint64_t token) {
  leader_ = true;
  token_ = token;
  ++elections_won_;
  for (FencingGate* gate : gates_) gate->Raise(token);
  if (on_started_) on_started_(token);
}

void LeaderElector::StepDown() {
  if (!leader_) return;
  leader_ = false;
  ++stepdowns_;
  if (on_stopped_) on_stopped_();
}

}  // namespace ks::k8s
