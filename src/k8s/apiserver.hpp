#pragma once

#include <string>

#include "common/status.hpp"
#include "k8s/events.hpp"
#include "k8s/latency.hpp"
#include "k8s/lease.hpp"
#include "k8s/objects.hpp"
#include "k8s/store.hpp"
#include "sim/simulation.hpp"

namespace ks::k8s {

/// The frontend to shared cluster state: typed stores for the built-in
/// kinds plus helpers for the mutations the components perform (bind,
/// phase transitions). Custom resource kinds (KubeShare's sharePod) live in
/// their own ObjectStore owned by the extension — the apiserver does not
/// need to know about them, which is the compatibility property the paper
/// emphasizes (§4.6).
class ApiServer {
 public:
  /// `fanout` selects the watch delivery path for every store on this
  /// apiserver (kBatched coalesces same-time deliveries into one engine
  /// event via the shared hub; watcher-visible order and timing are
  /// identical across modes — see WatchFanout). Extension stores that can
  /// interleave deliveries with the built-in kinds (KubeShare's sharePod
  /// store) must join the same hub via watch_hub().
  ApiServer(sim::Simulation* sim, LatencyModel latency = {},
            WatchFanout fanout = WatchFanout::kBatched)
      : sim_(sim),
        latency_(latency),
        fanout_(fanout),
        watch_hub_(sim),
        pods_(sim, latency.watch_propagation, fanout, &watch_hub_),
        nodes_(sim, latency.watch_propagation, fanout, &watch_hub_),
        leases_(sim, latency.watch_propagation, fanout, &watch_hub_),
        events_(sim) {}

  ObjectStore<Pod>& pods() { return pods_; }
  const ObjectStore<Pod>& pods() const { return pods_; }
  ObjectStore<Node>& nodes() { return nodes_; }
  const ObjectStore<Node>& nodes() const { return nodes_; }
  ObjectStore<Lease>& leases() { return leases_; }
  const ObjectStore<Lease>& leases() const { return leases_; }
  EventRecorder& events() { return events_; }
  const EventRecorder& events() const { return events_; }

  sim::Simulation* sim() { return sim_; }
  const LatencyModel& latency() const { return latency_; }

  WatchFanout watch_fanout() const { return fanout_; }
  /// The delivery hub shared by every store on this apiserver. Extension
  /// stores pass this to their ObjectStore constructor so cross-store
  /// same-time deliveries keep the unbatched path's exact order.
  WatchHub& watch_hub() { return watch_hub_; }
  const WatchHub& watch_hub() const { return watch_hub_; }

  /// Binds a pending pod to a node (the scheduler's Bind subresource call).
  /// A leader-elected scheduler passes its fencing token so a deposed
  /// replica's late bind is rejected instead of applied.
  Status BindPod(const std::string& pod_name, const std::string& node_name,
                 std::uint64_t fencing_token = 0) {
    if (!nodes_.Contains(node_name)) {
      return NotFoundError("no node: " + node_name);
    }
    return RetryOnConflict(
        pods_, pod_name,
        [&](Pod& pod) {
          if (pod.scheduled()) {
            return FailedPreconditionError("pod already bound: " + pod_name);
          }
          pod.status.node_name = node_name;
          pod.status.scheduled_time = sim_->Now();
          return Status::Ok();
        },
        fencing_token);
  }

  /// Kubelet status updates.
  Status SetPodPhase(const std::string& pod_name, PodPhase phase,
                     const std::string& message = "") {
    return RetryOnConflict(pods_, pod_name, [&](Pod& pod) {
      pod.status.phase = phase;
      if (!message.empty()) pod.status.message = message;
      if (phase == PodPhase::kRunning) pod.status.running_time = sim_->Now();
      if (phase == PodPhase::kSucceeded || phase == PodPhase::kFailed) {
        pod.status.finished_time = sim_->Now();
      }
      return Status::Ok();
    });
  }

  Status SetPodEnv(const std::string& pod_name,
                   std::map<std::string, std::string> env,
                   std::uint64_t fencing_token = 0) {
    return RetryOnConflict(
        pods_, pod_name,
        [&](Pod& pod) {
          pod.status.effective_env = env;
          return Status::Ok();
        },
        fencing_token);
  }

 private:
  sim::Simulation* sim_;
  LatencyModel latency_;
  WatchFanout fanout_;
  WatchHub watch_hub_;
  ObjectStore<Pod> pods_;
  ObjectStore<Node> nodes_;
  ObjectStore<Lease> leases_;
  EventRecorder events_;
};

}  // namespace ks::k8s
