#pragma once

#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "common/status.hpp"
#include "gpu/device.hpp"
#include "k8s/latency.hpp"
#include "sim/simulation.hpp"

namespace ks::k8s {

/// A started container as seen by the application layer: identity, the
/// effective environment, and the GPUs resolved from
/// NVIDIA_VISIBLE_DEVICES.
struct ContainerInstance {
  ContainerId id;
  std::string pod_name;
  std::string node_name;
  std::map<std::string, std::string> env;
  std::vector<gpu::GpuDevice*> visible_gpus;
};

/// Simulated Docker daemon for one node.
///
/// Start requests are executed by a bounded worker pool
/// (LatencyModel::runtime_workers): with more concurrent creations than
/// workers, requests queue — the mechanism behind pod-creation latency
/// growing with concurrency in Fig 10.
///
/// The application side attaches via the start hook: when a container
/// reaches running state, the hook receives the ContainerInstance and can
/// build its in-container stack (CUDA context, vGPU frontend, workload).
/// Containers finish by calling ExitContainer, which is what the kubelet
/// observes.
class ContainerRuntime {
 public:
  using StartHook = std::function<void(const ContainerInstance&)>;
  using StopHook = std::function<void(const ContainerInstance&)>;
  /// (pod_name, success, reason) reported upward to the kubelet. `reason`
  /// is empty for a normal exit; kill paths set it (e.g. "OOMKilled") so
  /// the pod phase message carries the cause.
  using ExitFn =
      std::function<void(const std::string&, bool, const std::string&)>;

  ContainerRuntime(sim::Simulation* sim, std::string node_name,
                   std::vector<gpu::GpuDevice*> gpus, LatencyModel latency);

  /// Registers the application-side hook fired when a container starts.
  void SetStartHook(StartHook hook) { start_hook_ = std::move(hook); }
  /// Fired when a container is torn down (either exit or kill).
  void SetStopHook(StopHook hook) { stop_hook_ = std::move(hook); }
  /// Registers the kubelet's exit listener.
  void SetExitListener(ExitFn fn) { exit_fn_ = std::move(fn); }

  /// Queues a container start. `on_running` fires once the container is up
  /// (after the image pull if `image` is not yet cached on this node, plus
  /// worker queueing and container_start latency). An empty image is
  /// treated as pre-pulled.
  void StartContainer(const std::string& pod_name,
                      std::map<std::string, std::string> env,
                      std::function<void(const ContainerInstance&)> on_running,
                      const std::string& image = "");

  bool ImageCached(const std::string& image) const {
    auto it = images_.find(image);
    return it != images_.end() && it->second.cached;
  }
  std::uint64_t image_pulls() const { return image_pulls_; }

  /// Application-initiated exit (the main process returned). `reason`
  /// annotates abnormal exits and is forwarded to the exit listener.
  Status ExitContainer(const ContainerId& id, bool success,
                       const std::string& reason = "");

  /// Exit lookup by pod name (one container per pod in this model).
  Status ExitContainerByPod(const std::string& pod_name, bool success,
                            const std::string& reason = "");

  /// Kubelet-initiated kill (pod deleted). Fires the stop hook after
  /// container_stop latency; `on_stopped` runs afterwards.
  Status KillContainer(const std::string& pod_name,
                       std::function<void()> on_stopped = nullptr);

  /// Node-crash semantics: every running container dies instantly (the
  /// stop hook fires so in-container stacks are destroyed — processes on a
  /// dead node are gone), queued starts and image-pull waiters are
  /// discarded, and all in-flight runtime callbacks (worker completions,
  /// pull completions, pending kills) are invalidated. The exit listener
  /// is NOT fired: the kubelet on a crashed node is dead too, so the
  /// control plane only learns of the pods' fate through node-lifecycle
  /// eviction. Pulled images survive (disk outlives the crash).
  void CrashAll();
  std::uint64_t crashes() const { return crashes_; }

  std::size_t running_containers() const { return running_.size(); }
  std::size_t queued_starts() const { return start_queue_.size(); }
  bool IsRunning(const std::string& pod_name) const;

  /// Container id of a running pod's container, if any.
  std::optional<ContainerId> ContainerIdOf(const std::string& pod_name) const {
    auto it = by_pod_.find(pod_name);
    if (it == by_pod_.end()) return std::nullopt;
    return it->second;
  }

 private:
  struct StartRequest {
    std::string pod_name;
    std::map<std::string, std::string> env;
    std::function<void(const ContainerInstance&)> on_running;
  };

  void PumpStartQueue();
  void Enqueue(StartRequest request);
  std::vector<gpu::GpuDevice*> ResolveVisibleGpus(
      const std::map<std::string, std::string>& env) const;

  sim::Simulation* sim_;
  std::string node_name_;
  std::vector<gpu::GpuDevice*> gpus_;
  LatencyModel latency_;

  StartHook start_hook_;
  StopHook stop_hook_;
  ExitFn exit_fn_;

  struct ImageState {
    bool cached = false;
    bool pulling = false;
    std::vector<StartRequest> waiters;
  };
  std::map<std::string, ImageState> images_;
  std::uint64_t image_pulls_ = 0;

  std::deque<StartRequest> start_queue_;
  int busy_workers_ = 0;
  std::uint64_t next_container_ = 1;
  std::unordered_map<ContainerId, ContainerInstance> running_;
  std::unordered_map<std::string, ContainerId> by_pod_;
  /// Bumped by CrashAll; scheduled callbacks capture the epoch they were
  /// created under and no-op if the daemon restarted in between.
  std::uint64_t epoch_ = 0;
  std::uint64_t crashes_ = 0;
};

}  // namespace ks::k8s
