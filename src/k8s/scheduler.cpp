#include "k8s/scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <string>
#include <vector>

#include "common/log.hpp"

namespace ks::k8s {

KubeScheduler::KubeScheduler(ApiServer* api, Duration retry_backoff)
    : api_(api), sim_(api->sim()), retry_backoff_(retry_backoff) {}

Status KubeScheduler::Start() {
  if (started_) return FailedPreconditionError("scheduler already started");
  started_ = true;
  api_->pods().Watch([this](const WatchEvent<Pod>& ev) { OnPodEvent(ev); });
  return Status::Ok();
}

void KubeScheduler::OnPodEvent(const WatchEvent<Pod>& event) {
  const Pod& pod = event.object;
  switch (event.type) {
    case WatchEventType::kAdded:
    case WatchEventType::kModified:
      if (pod.terminal()) {
        Unreserve(pod.meta.name);
        return;
      }
      if (pod.scheduled()) {
        // Bound by us (already reserved) or directly by an extension
        // (KubeShare sharePods carry nodeName at creation) — account for it
        // so native scheduling sees the node pressure either way.
        if (reservations_.count(pod.meta.name) == 0) {
          Reserve(pod, pod.status.node_name);
        }
        return;
      }
      Enqueue(pod.meta.name);
      return;
    case WatchEventType::kDeleted:
      Unreserve(pod.meta.name);
      return;
  }
}

void KubeScheduler::ResyncOnce() {
  // List() is name-sorted, so the enqueue order is deterministic. Enqueue
  // dedups against queued_, and ScheduleOne re-checks the pod state at
  // cycle time, so re-listing an already-queued pod is harmless.
  for (const Pod& pod : api_->pods().List()) {
    if (pod.terminal()) continue;
    if (pod.scheduled()) {
      if (reservations_.count(pod.meta.name) == 0) {
        Reserve(pod, pod.status.node_name);
      }
      continue;
    }
    Enqueue(pod.meta.name);
  }
  // Release reservations whose pod vanished or finished (dropped Deleted
  // or terminal Modified event). reservations_ is unordered — sort.
  std::vector<std::string> stale;
  for (const auto& [name, res] : reservations_) {
    auto pod = api_->pods().Get(name);
    if (!pod.ok() || pod->terminal()) stale.push_back(name);
  }
  std::sort(stale.begin(), stale.end());
  for (const std::string& name : stale) Unreserve(name);
}

void KubeScheduler::Enqueue(const std::string& pod_name) {
  if (queued_.count(pod_name) > 0) return;
  queued_.insert(pod_name);
  queue_.push_back(pod_name);
  Pump();
}

void KubeScheduler::Pump() {
  if (cycle_active_ || queue_.empty()) return;
  cycle_active_ = true;
  const std::string pod_name = queue_.front();
  queue_.pop_front();
  queued_.erase(pod_name);
  const Duration cycle = api_->latency().sched_fixed +
                         api_->latency().sched_per_node *
                             static_cast<std::int64_t>(api_->nodes().size());
  sim_->ScheduleAfter(cycle, [this, pod_name] {
    cycle_active_ = false;
    ScheduleOne(pod_name);
    Pump();
  });
}

void KubeScheduler::ScheduleOne(const std::string& pod_name) {
  auto pod = api_->pods().Get(pod_name);
  if (!pod.ok() || pod->scheduled() || pod->terminal()) return;

  auto node = PickNode(*pod);
  if (!node.ok()) {
    // Unschedulable: back off and retry — capacity frees up as pods finish.
    ++retry_count_;
    api_->events().Record("kube-scheduler", "pod/" + pod_name,
                          "FailedScheduling", node.status().message());
    sim_->ScheduleAfter(retry_backoff_, [this, pod_name] {
      auto p = api_->pods().Get(pod_name);
      if (!p.ok() || p->scheduled() || p->terminal()) return;
      Enqueue(pod_name);
    });
    return;
  }

  Reserve(*pod, *node);
  const Status bound = api_->BindPod(pod_name, *node);
  if (!bound.ok()) {
    KS_LOG(kWarn) << "bind failed for " << pod_name << ": " << bound;
    Unreserve(pod_name);
    return;
  }
  ++scheduled_count_;
  api_->events().Record("kube-scheduler", "pod/" + pod_name, "Scheduled",
                        "assigned to " + *node);
}

Expected<std::string> KubeScheduler::PickNode(const Pod& pod) const {
  std::string best;
  bool found = false;
  double best_score = 0.0;
  std::vector<Node> nodes = api_->nodes().List();
  for (const Node& node : nodes) {
    if (!node.ready) continue;
    // Filter: nodeSelector labels.
    bool selector_ok = true;
    for (const auto& [k, v] : pod.spec.node_selector) {
      auto it = node.meta.labels.find(k);
      if (it == node.meta.labels.end() || it->second != v) {
        selector_ok = false;
        break;
      }
    }
    if (!selector_ok) continue;
    // Filter: aggregate resource fit.
    ResourceList free = node.capacity;
    auto ait = node_allocated_.find(node.meta.name);
    if (ait != node_allocated_.end()) free.Subtract(ait->second);
    if (!free.Fits(pod.spec.requests)) continue;

    // Score: LeastAllocated — prefer the node with the most free capacity,
    // fraction-averaged over the resources the pod asks for.
    double score = 0.0;
    int terms = 0;
    for (const auto& [name, qty] : pod.spec.requests.items()) {
      const std::int64_t cap = node.capacity.Get(name);
      if (cap <= 0 || qty == 0) continue;
      score += static_cast<double>(free.Get(name)) /
               static_cast<double>(cap);
      ++terms;
    }
    if (terms > 0) score /= terms;
    if (!found || score > best_score) {
      best = node.meta.name;
      found = true;
      best_score = score;
    }
  }
  if (!found) {
    return UnavailableError("no node fits pod " + pod.meta.name);
  }
  return best;
}

void KubeScheduler::Reserve(const Pod& pod, const std::string& node) {
  reservations_[pod.meta.name] = {node, pod.spec.requests};
  node_allocated_[node].Add(pod.spec.requests);
}

void KubeScheduler::Unreserve(const std::string& pod_name) {
  auto it = reservations_.find(pod_name);
  if (it == reservations_.end()) return;
  node_allocated_[it->second.node].Subtract(it->second.requests);
  reservations_.erase(it);
}

ResourceList KubeScheduler::AllocatedOn(const std::string& node) const {
  auto it = node_allocated_.find(node);
  return it == node_allocated_.end() ? ResourceList{} : it->second;
}

}  // namespace ks::k8s
