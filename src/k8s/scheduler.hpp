#pragma once

#include <deque>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "common/status.hpp"
#include "k8s/apiserver.hpp"

namespace ks::k8s {

/// kube-scheduler: assigns pending pods to nodes, considering resource
/// requests and aggregate node capacity.
///
/// Two properties of the stock scheduler matter for the paper:
///  - it only sees *aggregate* per-node resource counts, never individual
///    device identities (§3.1), so it cannot avoid intra-node device
///    fragmentation;
///  - pods that already carry a nodeName bypass it entirely, which is the
///    hook KubeShare-DevMgr uses to co-exist with it (§4.6).
///
/// Scoring follows the default LeastAllocated spreading policy. Pods are
/// scheduled serially (one scheduling cycle at a time), each cycle costing
/// sched_fixed + sched_per_node * |nodes|.
class KubeScheduler {
 public:
  explicit KubeScheduler(ApiServer* api, Duration retry_backoff = Seconds(1));

  Status Start();

  /// Informer-style relist, repairing cache state lost to dropped watch
  /// events: enqueues pending pods whose Added event was swallowed, adds
  /// missing reservations for extension-bound pods, and drops reservations
  /// whose pod is gone or terminal. Driven by Cluster when
  /// ClusterConfig::component_resync is enabled.
  void ResyncOnce();

  std::uint64_t scheduled_count() const { return scheduled_count_; }
  std::uint64_t retry_count() const { return retry_count_; }
  std::size_t queue_length() const { return queue_.size(); }

  /// Node resources reserved by scheduled, non-terminal pods (scheduler
  /// cache view; exposed for tests).
  ResourceList AllocatedOn(const std::string& node) const;

 private:
  void OnPodEvent(const WatchEvent<Pod>& event);
  void Enqueue(const std::string& pod_name);
  void Pump();
  void ScheduleOne(const std::string& pod_name);
  Expected<std::string> PickNode(const Pod& pod) const;
  void Reserve(const Pod& pod, const std::string& node);
  void Unreserve(const std::string& pod_name);

  ApiServer* api_;
  sim::Simulation* sim_;
  Duration retry_backoff_;

  std::deque<std::string> queue_;
  std::unordered_set<std::string> queued_;
  bool cycle_active_ = false;

  struct Reservation {
    std::string node;
    ResourceList requests;
  };
  std::unordered_map<std::string, Reservation> reservations_;
  std::unordered_map<std::string, ResourceList> node_allocated_;

  std::uint64_t scheduled_count_ = 0;
  std::uint64_t retry_count_ = 0;
  bool started_ = false;
};

}  // namespace ks::k8s
