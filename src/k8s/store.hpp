#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/time.hpp"
#include "sim/simulation.hpp"

namespace ks::k8s {

enum class WatchEventType { kAdded, kModified, kDeleted };

template <typename T>
struct WatchEvent {
  WatchEventType type;
  T object;  // final state (for kDeleted, the state at deletion)
};

using WatchId = std::uint64_t;

/// Typed object store with watch semantics — the etcd + apiserver storage
/// path reduced to what the controllers in this reproduction observe:
/// linearized CRUD on named objects, monotonically increasing resource
/// versions, and asynchronous watch notification (events are delivered
/// through the event queue after a small propagation latency, never
/// synchronously, mirroring how real controllers see a delayed cache).
///
/// Every API object kind gets its own store; adding a custom resource kind
/// (KubeShare's sharePod) is just instantiating another store — the
/// "operator pattern" needs no apiserver change.
template <typename T>
class ObjectStore {
 public:
  using WatchFn = std::function<void(const WatchEvent<T>&)>;

  explicit ObjectStore(sim::Simulation* sim,
                       Duration notify_latency = Millis(1))
      : sim_(sim), notify_latency_(notify_latency) {}

  ObjectStore(const ObjectStore&) = delete;
  ObjectStore& operator=(const ObjectStore&) = delete;

  Status Create(T object) {
    const std::string name = object.meta.name;
    if (name.empty()) return InvalidArgumentError("object has no name");
    if (objects_.count(name) > 0) {
      return AlreadyExistsError("object exists: " + name);
    }
    object.meta.uid = next_uid_++;
    object.meta.resource_version = ++version_;
    object.meta.creation_time = sim_->Now();
    objects_.emplace(name, object);
    Notify({WatchEventType::kAdded, std::move(object)});
    return Status::Ok();
  }

  Expected<T> Get(const std::string& name) const {
    auto it = objects_.find(name);
    if (it == objects_.end()) return NotFoundError("no object: " + name);
    return it->second;
  }

  bool Contains(const std::string& name) const {
    return objects_.count(name) > 0;
  }

  std::vector<T> List() const {
    std::vector<T> out;
    out.reserve(objects_.size());
    for (const auto& [name, obj] : objects_) out.push_back(obj);
    return out;
  }

  std::size_t size() const { return objects_.size(); }

  /// Replaces the stored object. The update wins unconditionally (no
  /// optimistic-concurrency conflict in this single-writer-per-field
  /// model), but the uid and creation time are preserved.
  Status Update(T object) {
    auto it = objects_.find(object.meta.name);
    if (it == objects_.end()) {
      return NotFoundError("no object: " + object.meta.name);
    }
    object.meta.uid = it->second.meta.uid;
    object.meta.creation_time = it->second.meta.creation_time;
    object.meta.resource_version = ++version_;
    it->second = object;
    Notify({WatchEventType::kModified, std::move(object)});
    return Status::Ok();
  }

  Status Delete(const std::string& name) {
    auto it = objects_.find(name);
    if (it == objects_.end()) return NotFoundError("no object: " + name);
    T final_state = it->second;
    objects_.erase(it);
    ++version_;
    Notify({WatchEventType::kDeleted, std::move(final_state)});
    return Status::Ok();
  }

  /// Registers a watcher. Watchers receive all subsequent events; existing
  /// objects are replayed as kAdded events (the informer "list" phase) so a
  /// controller starting late still converges.
  WatchId Watch(WatchFn fn) {
    const WatchId id = next_watch_++;
    watchers_.emplace(id, std::move(fn));
    for (const auto& [name, obj] : objects_) {
      T copy = obj;
      const WatchId wid = id;
      sim_->ScheduleAfter(notify_latency_, [this, wid, copy = std::move(copy)] {
        auto it = watchers_.find(wid);
        if (it == watchers_.end()) return;
        it->second(WatchEvent<T>{WatchEventType::kAdded, copy});
      });
    }
    return id;
  }

  void Unwatch(WatchId id) { watchers_.erase(id); }

  std::uint64_t version() const { return version_; }

  /// Fault injection: overrides the watch-notification latency (an
  /// apiserver latency spike degrades every informer downstream). The
  /// change applies to notifications issued after the call; in-flight
  /// deliveries keep the latency they were scheduled with.
  void SetNotifyLatency(Duration latency) { notify_latency_ = latency; }
  Duration notify_latency() const { return notify_latency_; }

  /// Fault injection: silently discards the next `count` store mutations'
  /// watch notifications (no watcher sees them — the event is lost at the
  /// apiserver, as a dropped watch stream loses it). The store itself stays
  /// consistent; only controllers relying on the watch go stale, which is
  /// exactly what a reconcile/resync pass must repair.
  void DropEvents(int count) { drop_pending_ += count; }
  std::uint64_t dropped_events() const { return dropped_events_; }

 private:
  void Notify(WatchEvent<T> event) {
    if (drop_pending_ > 0) {
      --drop_pending_;
      ++dropped_events_;
      return;
    }
    // Snapshot the watcher ids; a watcher registered during delivery must
    // not observe this event twice (it replays current state instead).
    std::vector<WatchId> ids;
    ids.reserve(watchers_.size());
    for (const auto& [id, fn] : watchers_) ids.push_back(id);
    for (const WatchId id : ids) {
      sim_->ScheduleAfter(notify_latency_, [this, id, event] {
        auto it = watchers_.find(id);
        if (it == watchers_.end()) return;
        it->second(event);
      });
    }
  }

  sim::Simulation* sim_;
  Duration notify_latency_;
  std::map<std::string, T> objects_;
  std::map<WatchId, WatchFn> watchers_;
  std::uint64_t next_uid_ = 1;
  std::uint64_t version_ = 0;
  WatchId next_watch_ = 1;
  int drop_pending_ = 0;
  std::uint64_t dropped_events_ = 0;
};

}  // namespace ks::k8s
