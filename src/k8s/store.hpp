#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/time.hpp"
#include "sim/simulation.hpp"

namespace ks::k8s {

enum class WatchEventType { kAdded, kModified, kDeleted };

template <typename T>
struct WatchEvent {
  WatchEventType type;
  T object;  // final state (for kDeleted, the state at deletion)
};

using WatchId = std::uint64_t;

/// Watch notification delivery strategy.
///
/// kUnbatched is the original path: every (event, watcher) pair gets its own
/// engine event at now + notify_latency. At 100k sharePods the fan-out
/// dominates the engine — events × watchers heap pushes per sync window.
///
/// kBatched coalesces deliveries through a WatchHub: all deliveries landing
/// on the same virtual time share ONE engine event, executed in exactly the
/// order the unbatched path would have run them (the hub preserves enqueue
/// order, and enqueue order equals the legacy schedule order). Delivery
/// times and watcher-visible ordering are identical by construction — only
/// the engine event count drops.
enum class WatchFanout { kUnbatched, kBatched };

/// Shared delivery scheduler for batched watch fan-out. One hub serves all
/// stores that can interleave deliveries at the same virtual time (the
/// ApiServer's built-in stores and KubeShare's sharePod store share one);
/// per-time batching across stores is what keeps cross-store delivery order
/// byte-identical to the unbatched path.
class WatchHub {
 public:
  explicit WatchHub(sim::Simulation* sim) : sim_(sim) {}

  WatchHub(const WatchHub&) = delete;
  WatchHub& operator=(const WatchHub&) = delete;

  /// Enqueues a delivery closure for absolute time `at`. The first closure
  /// for a given time arms one engine event; later closures for the same
  /// time ride it. Closures enqueued *during* a flush for the same time
  /// (zero-latency cascades) arm a fresh event, which the engine runs after
  /// the current one — the same FIFO order the unbatched path yields.
  void Enqueue(Time at, std::function<void()> fn) {
    ++deliveries_;
    auto [it, fresh] = pending_.try_emplace(at);
    it->second.push_back(std::move(fn));
    if (fresh) {
      ++batches_;
      sim_->ScheduleAt(at, [this, at] { Flush(at); });
    }
  }

  /// Engine events actually armed (one per distinct delivery time).
  std::uint64_t batches() const { return batches_; }
  /// Individual (event, watcher) deliveries carried — what the engine event
  /// count would have been unbatched.
  std::uint64_t deliveries() const { return deliveries_; }

 private:
  void Flush(Time at) {
    auto node = pending_.extract(at);
    if (node.empty()) return;
    for (auto& fn : node.mapped()) fn();
  }

  sim::Simulation* sim_;
  std::map<Time, std::vector<std::function<void()>>> pending_;
  std::uint64_t batches_ = 0;
  std::uint64_t deliveries_ = 0;
};

/// Write-fencing gate shared by a store's mutating operations. A leader
/// elector that wins a lease with fencing token N raises the floor to N at
/// the apiserver; any later write stamped with an older token — a deposed
/// leader that does not yet know it lost — is rejected as a Conflict
/// instead of clobbering the new leader's state. Token 0 marks an unfenced
/// writer (infrastructure components that do not run leader-elected) and
/// always passes.
class FencingGate {
 public:
  /// Raises the floor (monotonic: a floor never goes back down).
  void Raise(std::uint64_t token) {
    if (token > floor_) floor_ = token;
  }

  bool Admits(std::uint64_t token) const {
    return token == 0 || token >= floor_;
  }

  std::uint64_t floor() const { return floor_; }
  std::uint64_t rejected() const { return rejected_; }
  void RecordRejection() { ++rejected_; }

 private:
  std::uint64_t floor_ = 0;
  std::uint64_t rejected_ = 0;
};

/// Typed object store with watch semantics — the etcd + apiserver storage
/// path reduced to what the controllers in this reproduction observe:
/// linearized CRUD on named objects, monotonically increasing resource
/// versions, and asynchronous watch notification (events are delivered
/// through the event queue after a small propagation latency, never
/// synchronously, mirroring how real controllers see a delayed cache).
///
/// Every API object kind gets its own store; adding a custom resource kind
/// (KubeShare's sharePod) is just instantiating another store — the
/// "operator pattern" needs no apiserver change.
template <typename T>
class ObjectStore {
 public:
  using WatchFn = std::function<void(const WatchEvent<T>&)>;

  /// `fanout` selects the delivery path; kBatched coalesces same-time
  /// deliveries through `hub`. Stores whose deliveries can interleave at
  /// the same virtual time must share one hub to keep cross-store order
  /// identical to the unbatched path; a null hub under kBatched gets a
  /// private one (fine for a store alone on its engine, as in most tests).
  explicit ObjectStore(sim::Simulation* sim,
                       Duration notify_latency = Millis(1),
                       WatchFanout fanout = WatchFanout::kUnbatched,
                       WatchHub* hub = nullptr)
      : sim_(sim), notify_latency_(notify_latency), fanout_(fanout),
        hub_(hub) {
    if (fanout_ == WatchFanout::kBatched && hub_ == nullptr) {
      owned_hub_ = std::make_unique<WatchHub>(sim);
      hub_ = owned_hub_.get();
    }
  }

  ObjectStore(const ObjectStore&) = delete;
  ObjectStore& operator=(const ObjectStore&) = delete;

  Status Create(T object, std::uint64_t fencing_token = 0) {
    const std::string name = object.meta.name;
    if (name.empty()) return InvalidArgumentError("object has no name");
    KS_RETURN_IF_ERROR(CheckFencing(fencing_token));
    if (objects_.count(name) > 0) {
      return AlreadyExistsError("object exists: " + name);
    }
    object.meta.uid = next_uid_++;
    object.meta.resource_version = ++version_;
    object.meta.creation_time = sim_->Now();
    objects_.emplace(name, object);
    Notify({WatchEventType::kAdded, std::move(object)});
    return Status::Ok();
  }

  Expected<T> Get(const std::string& name) const {
    auto it = objects_.find(name);
    if (it == objects_.end()) return NotFoundError("no object: " + name);
    return it->second;
  }

  bool Contains(const std::string& name) const {
    return objects_.count(name) > 0;
  }

  std::vector<T> List() const {
    std::vector<T> out;
    out.reserve(objects_.size());
    for (const auto& [name, obj] : objects_) out.push_back(obj);
    return out;
  }

  std::size_t size() const { return objects_.size(); }

  /// Zero-copy scan in name order. List() copies every object — at 100k
  /// sharePods that copy dominated the scheduler's pump loop; read-only
  /// passes use this instead. The callback must not mutate the store.
  void ForEach(const std::function<void(const T&)>& fn) const {
    for (const auto& [name, obj] : objects_) fn(obj);
  }

  /// Replaces the stored object with optimistic concurrency: the submitted
  /// object's resource_version is the version the writer read, and the
  /// update is rejected as a Conflict if the stored object has moved on —
  /// a concurrent controller won the race and this writer must re-read
  /// (see RetryOnConflict). resource_version 0 bypasses the check
  /// (an unconditional write, as Kubernetes permits when the field is
  /// unset). The uid and creation time are always preserved.
  Status Update(T object, std::uint64_t fencing_token = 0) {
    auto it = objects_.find(object.meta.name);
    if (it == objects_.end()) {
      return NotFoundError("no object: " + object.meta.name);
    }
    KS_RETURN_IF_ERROR(CheckFencing(fencing_token));
    if (object.meta.resource_version != 0 &&
        object.meta.resource_version != it->second.meta.resource_version) {
      ++update_conflicts_;
      return ConflictError(
          "stale write to " + object.meta.name + ": expected version " +
          std::to_string(object.meta.resource_version) + ", store has " +
          std::to_string(it->second.meta.resource_version));
    }
    object.meta.uid = it->second.meta.uid;
    object.meta.creation_time = it->second.meta.creation_time;
    object.meta.resource_version = ++version_;
    it->second = object;
    Notify({WatchEventType::kModified, std::move(object)});
    return Status::Ok();
  }

  /// Deletes by name. A non-zero expected_version makes the delete
  /// conditional: it fails with Conflict if the object changed since the
  /// writer read it (preconditions.resourceVersion in Kubernetes terms).
  Status Delete(const std::string& name, std::uint64_t expected_version = 0,
                std::uint64_t fencing_token = 0) {
    auto it = objects_.find(name);
    if (it == objects_.end()) return NotFoundError("no object: " + name);
    KS_RETURN_IF_ERROR(CheckFencing(fencing_token));
    if (expected_version != 0 &&
        expected_version != it->second.meta.resource_version) {
      ++update_conflicts_;
      return ConflictError(
          "stale delete of " + name + ": expected version " +
          std::to_string(expected_version) + ", store has " +
          std::to_string(it->second.meta.resource_version));
    }
    T final_state = it->second;
    objects_.erase(it);
    // The deletion is itself a versioned mutation: the event carries the
    // deletion's resource_version, not the object's last-update version,
    // so replaying a watch stream against a relist snapshot keeps a total
    // order (an informer must be able to tell "deleted after my list" from
    // "deleted before it").
    final_state.meta.resource_version = ++version_;
    Notify({WatchEventType::kDeleted, std::move(final_state)});
    return Status::Ok();
  }

  /// Registers a watcher. Watchers receive all subsequent events; existing
  /// objects are replayed as kAdded events (the informer "list" phase) so a
  /// controller starting late still converges.
  WatchId Watch(WatchFn fn) {
    const WatchId id = next_watch_++;
    watchers_.emplace(id, std::move(fn));
    for (const auto& [name, obj] : objects_) {
      Deliver(id, WatchEvent<T>{WatchEventType::kAdded, obj});
    }
    return id;
  }

  void Unwatch(WatchId id) { watchers_.erase(id); }

  std::uint64_t version() const { return version_; }

  /// Fault injection: overrides the watch-notification latency (an
  /// apiserver latency spike degrades every informer downstream). The
  /// change applies to notifications issued after the call; in-flight
  /// deliveries keep the latency they were scheduled with.
  void SetNotifyLatency(Duration latency) { notify_latency_ = latency; }
  Duration notify_latency() const { return notify_latency_; }

  /// Fault injection: silently discards the next `count` store mutations'
  /// watch notifications (no watcher sees them — the event is lost at the
  /// apiserver, as a dropped watch stream loses it). The store itself stays
  /// consistent; only controllers relying on the watch go stale, which is
  /// exactly what a reconcile/resync pass must repair.
  void DropEvents(int count) { drop_pending_ += count; }
  std::uint64_t dropped_events() const { return dropped_events_; }

  /// Optimistic-concurrency rejections issued by Update/Delete.
  std::uint64_t update_conflicts() const { return update_conflicts_; }

  WatchFanout fanout() const { return fanout_; }
  /// The hub carrying this store's batched deliveries (null when
  /// unbatched). Shared hubs aggregate across every store wired to them.
  WatchHub* watch_hub() { return hub_; }

  /// Individual (event, watcher) deliveries issued by this store — the
  /// engine-event count the unbatched path would have spent. Counted in
  /// both modes, so batched-vs-unbatched comparisons share a denominator.
  std::uint64_t watch_deliveries() const { return watch_deliveries_; }
  /// Engine events this store actually armed for fan-out (unbatched mode
  /// only; in batched mode the shared hub's batches() is the analogue).
  std::uint64_t unbatched_fanout_events() const {
    return unbatched_fanout_events_;
  }

  FencingGate& fencing() { return fencing_; }
  const FencingGate& fencing() const { return fencing_; }

 private:
  Status CheckFencing(std::uint64_t token) {
    if (fencing_.Admits(token)) return Status::Ok();
    fencing_.RecordRejection();
    return ConflictError("fenced write rejected: token " +
                         std::to_string(token) + " below floor " +
                         std::to_string(fencing_.floor()));
  }

  void Notify(WatchEvent<T> event) {
    if (drop_pending_ > 0) {
      --drop_pending_;
      ++dropped_events_;
      return;
    }
    // Snapshot the watcher ids; a watcher registered during delivery must
    // not observe this event twice (it replays current state instead).
    std::vector<WatchId> ids;
    ids.reserve(watchers_.size());
    for (const auto& [id, fn] : watchers_) ids.push_back(id);
    for (const WatchId id : ids) Deliver(id, event);
  }

  /// One (event, watcher) delivery at now + notify_latency. Both fan-out
  /// modes run the same closure at the same virtual time; they differ only
  /// in whether the closure gets a private engine event or rides the hub's
  /// per-time batch. Enqueue order equals legacy schedule order, so the
  /// watcher-visible sequence is identical across modes.
  void Deliver(WatchId id, WatchEvent<T> event) {
    ++watch_deliveries_;
    const Time at = sim_->Now() + notify_latency_;
    auto closure = [this, id, event = std::move(event)] {
      auto it = watchers_.find(id);
      if (it == watchers_.end()) return;
      it->second(event);
    };
    if (fanout_ == WatchFanout::kBatched) {
      hub_->Enqueue(at, std::move(closure));
    } else {
      ++unbatched_fanout_events_;
      sim_->ScheduleAt(at, std::move(closure));
    }
  }

  sim::Simulation* sim_;
  Duration notify_latency_;
  WatchFanout fanout_;
  WatchHub* hub_ = nullptr;
  std::unique_ptr<WatchHub> owned_hub_;
  std::uint64_t watch_deliveries_ = 0;
  std::uint64_t unbatched_fanout_events_ = 0;
  std::map<std::string, T> objects_;
  std::map<WatchId, WatchFn> watchers_;
  std::uint64_t next_uid_ = 1;
  std::uint64_t version_ = 0;
  WatchId next_watch_ = 1;
  int drop_pending_ = 0;
  std::uint64_t dropped_events_ = 0;
  std::uint64_t update_conflicts_ = 0;
  FencingGate fencing_;
};

/// Read-modify-write with bounded retries — the standard controller write
/// path under optimistic concurrency (client-go's RetryOnConflict). Each
/// attempt re-reads the current object, applies `mutate`, and submits the
/// result carrying the freshly-read resource_version; a Conflict means a
/// concurrent writer moved the object, so the loop re-reads and tries
/// again. The apiserver is synchronous in this reproduction, so the
/// re-read always observes the winning write and the loop converges in one
/// retry — the bound exists to turn a logic bug (a mutator that always
/// conflicts) into an error instead of livelock.
///
/// `mutate` has signature Status(T&). Returning a non-OK status aborts the
/// loop and surfaces that status (the hook for "stop retrying, the object
/// became terminal"). Fencing rejections are NOT retried: a floor only
/// rises, so a deposed leader re-submitting the same stale token can never
/// succeed — the conflict is returned immediately.
template <typename T, typename MutateFn>
Status RetryOnConflict(ObjectStore<T>& store, const std::string& name,
                       MutateFn&& mutate, std::uint64_t fencing_token = 0,
                       int max_attempts = 5) {
  Status last = InternalError("RetryOnConflict: no attempts made");
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    auto object = store.Get(name);
    if (!object.ok()) return object.status();
    KS_RETURN_IF_ERROR(mutate(*object));
    last = store.Update(*std::move(object), fencing_token);
    if (last.code() != StatusCode::kConflict) return last;
    if (!store.fencing().Admits(fencing_token)) return last;  // deposed
  }
  return last;
}

/// Conditional delete with the same retry discipline: re-reads the object,
/// consults `approve` (Status(const T&) — non-OK aborts, e.g. "someone
/// else already repurposed the name"), and deletes at the observed
/// version.
template <typename T, typename ApproveFn>
Status RetryDeleteOnConflict(ObjectStore<T>& store, const std::string& name,
                             ApproveFn&& approve,
                             std::uint64_t fencing_token = 0,
                             int max_attempts = 5) {
  Status last = InternalError("RetryDeleteOnConflict: no attempts made");
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    auto object = store.Get(name);
    if (!object.ok()) return object.status();
    KS_RETURN_IF_ERROR(approve(*object));
    last = store.Delete(name, object->meta.resource_version, fencing_token);
    if (last.code() != StatusCode::kConflict) return last;
    if (!store.fencing().Admits(fencing_token)) return last;  // deposed
  }
  return last;
}

}  // namespace ks::k8s
