#include "k8s/kubelet.hpp"

#include <algorithm>
#include <cassert>

#include "common/log.hpp"

namespace ks::k8s {

Kubelet::Kubelet(ApiServer* api, std::string node_name,
                 ResourceList machine_capacity, ContainerRuntime* runtime,
                 DevicePlugin* plugin)
    : api_(api),
      sim_(api->sim()),
      node_name_(std::move(node_name)),
      capacity_(std::move(machine_capacity)),
      runtime_(runtime),
      plugin_(plugin) {
  assert(api_ != nullptr);
  assert(runtime_ != nullptr);
}

Status Kubelet::Start() {
  if (started_) return FailedPreconditionError("kubelet already started");
  started_ = true;

  // Device plugin registration: fold the advertised device count into the
  // node capacity pushed to the apiserver.
  if (plugin_ != nullptr) {
    for (const PluginDevice& d : plugin_->ListDevices()) {
      if (d.healthy) units_.push_back({d.id, false});
    }
    capacity_.Set(plugin_->resource_name(),
                  static_cast<std::int64_t>(units_.size()));
  }

  Node node;
  node.meta.name = node_name_;
  node.meta.labels["kubernetes.io/hostname"] = node_name_;
  node.capacity = capacity_;
  KS_RETURN_IF_ERROR(api_->nodes().Create(node));

  runtime_->SetExitListener([this](const std::string& pod_name, bool ok,
                                   const std::string& reason) {
    FinishPod(pod_name, ok, reason);
  });

  api_->pods().Watch([this](const WatchEvent<Pod>& ev) { OnPodEvent(ev); });
  return Status::Ok();
}

void Kubelet::OnPodEvent(const WatchEvent<Pod>& event) {
  if (crashed_) return;  // a dead agent sees nothing
  const Pod& pod = event.object;
  if (pod.status.node_name != node_name_) return;

  if (event.type == WatchEventType::kDeleted) {
    auto it = pods_.find(pod.meta.name);
    if (it == pods_.end()) return;
    if (it->second.state == PodState::kRunning ||
        it->second.state == PodState::kStarting) {
      (void)runtime_->KillContainer(pod.meta.name);
    }
    ReleasePod(pod.meta.name);
    return;
  }

  // Added/Modified: pick up newly-bound pods exactly once.
  if (pod.terminal()) return;
  if (pods_.count(pod.meta.name) > 0) return;
  AdoptPod(pod);
}

void Kubelet::AdoptPod(const Pod& pod) {
  pods_[pod.meta.name].state = PodState::kSyncing;
  pods_[pod.meta.name].requests = pod.spec.requests;
  const std::string name = pod.meta.name;
  sim_->ScheduleAfter(api_->latency().kubelet_sync, [this, name] {
    if (crashed_) return;
    auto it = pods_.find(name);
    if (it == pods_.end()) return;  // deleted while syncing
    auto pod_now = api_->pods().Get(name);
    if (!pod_now.ok()) return;
    SyncPod(*pod_now);
  });
}

Status Kubelet::Crash() {
  if (!started_) return FailedPreconditionError("kubelet not started");
  if (crashed_) return FailedPreconditionError("kubelet already crashed");
  crashed_ = true;
  // All in-memory state is gone: records, reservations, device bindings.
  pods_.clear();
  allocated_ = ResourceList{};
  for (UnitSlot& slot : units_) slot.in_use = false;
  return Status::Ok();
}

Status Kubelet::Recover() {
  if (!crashed_) return FailedPreconditionError("kubelet is not crashed");
  crashed_ = false;
  // Resync against the apiserver (List() is sorted — deterministic order).
  for (const Pod& pod : api_->pods().List()) {
    if (pod.status.node_name != node_name_) continue;
    if (pod.terminal()) continue;
    if (pod.status.phase == PodPhase::kRunning) {
      // Its container died with the node; restartPolicy is Never here.
      api_->events().Record("kubelet/" + node_name_, "pod/" + pod.meta.name,
                            "NodeLost");
      (void)api_->SetPodPhase(pod.meta.name, PodPhase::kFailed, "NodeLost");
      continue;
    }
    // Bound while the agent was down (or mid-sync at crash): start fresh.
    if (pods_.count(pod.meta.name) == 0) AdoptPod(pod);
  }
  return Status::Ok();
}

void Kubelet::ResyncOnce() {
  if (crashed_) return;
  // Reap records whose backing object is gone (dropped Deleted event):
  // kill the container and release the reservation, as OnPodEvent would
  // have. pods_ is unordered — sort the names for a deterministic order.
  std::vector<std::string> gone;
  for (const auto& [name, rec] : pods_) {
    if (!api_->pods().Contains(name)) gone.push_back(name);
  }
  std::sort(gone.begin(), gone.end());
  for (const std::string& name : gone) {
    const PodState state = pods_.at(name).state;
    if (state == PodState::kRunning || state == PodState::kStarting) {
      (void)runtime_->KillContainer(name);
    }
    ReleasePod(name);
  }
  // Adopt bound pods we never saw (dropped Added event). An unknown pod
  // already in phase Running is unreachable outside the crash path (only
  // this agent moves pods to Running), so it is left to Recover().
  for (const Pod& pod : api_->pods().List()) {
    if (pod.status.node_name != node_name_) continue;
    if (pod.terminal() || pod.status.phase == PodPhase::kRunning) continue;
    if (pods_.count(pod.meta.name) == 0) AdoptPod(pod);
  }
}

Status Kubelet::RefreshDevices() {
  if (plugin_ == nullptr) {
    return FailedPreconditionError("node has no device plugin");
  }
  const auto devices = plugin_->ListDevices();
  // Mark health on known units; append units that newly appeared.
  for (const PluginDevice& d : devices) {
    bool known = false;
    for (UnitSlot& slot : units_) {
      if (slot.id == d.id) {
        slot.healthy = d.healthy;
        known = true;
        break;
      }
    }
    if (!known) units_.push_back({d.id, false, d.healthy});
  }
  // Units the plugin no longer reports are gone.
  for (UnitSlot& slot : units_) {
    const bool reported = std::any_of(
        devices.begin(), devices.end(),
        [&](const PluginDevice& d) { return d.id == slot.id; });
    if (!reported) slot.healthy = false;
  }
  // Re-advertise: capacity counts healthy units only.
  std::int64_t healthy = 0;
  for (const UnitSlot& slot : units_) {
    if (slot.healthy) ++healthy;
  }
  capacity_.Set(plugin_->resource_name(), healthy);
  return RetryOnConflict(api_->nodes(), node_name_, [&](Node& node) {
    node.capacity.Set(plugin_->resource_name(), healthy);
    return Status::Ok();
  });
}

Expected<std::vector<std::string>> Kubelet::PickDeviceUnits(
    std::int64_t count) {
  std::vector<std::string> picked;
  for (UnitSlot& slot : units_) {
    if (static_cast<std::int64_t>(picked.size()) == count) break;
    if (!slot.in_use && slot.healthy) {
      slot.in_use = true;
      picked.push_back(slot.id);
    }
  }
  if (static_cast<std::int64_t>(picked.size()) != count) {
    for (const std::string& id : picked) {
      for (UnitSlot& slot : units_) {
        if (slot.id == id) slot.in_use = false;
      }
    }
    return ResourceExhaustedError("not enough free device units");
  }
  return picked;
}

void Kubelet::SyncPod(const Pod& pod) {
  const std::string name = pod.meta.name;
  PodRecord& rec = pods_.at(name);

  // Admission: reserve machine resources.
  ResourceList free = capacity_;
  free.Subtract(allocated_);
  if (!free.Fits(pod.spec.requests)) {
    pods_.erase(name);
    api_->events().Record("kubelet/" + node_name_, "pod/" + name,
                          "OutOfResources");
    (void)api_->SetPodPhase(name, PodPhase::kFailed, "OutOfResources");
    return;
  }
  allocated_.Add(pod.spec.requests);

  // Device allocation, if the pod asks for plugin devices.
  std::map<std::string, std::string> env = pod.spec.env;
  const std::int64_t device_count =
      plugin_ != nullptr ? pod.spec.requests.Get(plugin_->resource_name()) : 0;

  if (device_count > 0) {
    auto units = PickDeviceUnits(device_count);
    if (!units.ok()) {
      allocated_.Subtract(pod.spec.requests);
      pods_.erase(name);
      (void)api_->SetPodPhase(name, PodPhase::kFailed, "OutOfDevices");
      return;
    }
    rec.unit_ids = *units;
    // The Allocate RPC to the device plugin.
    sim_->ScheduleAfter(api_->latency().device_allocate,
                        [this, name, env, units = *units]() mutable {
      auto it = pods_.find(name);
      if (it == pods_.end()) return;
      auto resp = plugin_->Allocate(units);
      if (!resp.ok()) {
        ReleasePod(name);
        (void)api_->SetPodPhase(name, PodPhase::kFailed,
                                "DeviceAllocateFailed");
        return;
      }
      for (const auto& [k, v] : resp->env) env[k] = v;
      StartViaRuntime(name, std::move(env));
    });
  } else {
    StartViaRuntime(name, std::move(env));
  }
}

void Kubelet::StartViaRuntime(const std::string& name,
                              std::map<std::string, std::string> env) {
  auto it = pods_.find(name);
  if (it == pods_.end()) return;  // deleted while allocating
  it->second.state = PodState::kStarting;
  std::string image;
  if (auto pod = api_->pods().Get(name); pod.ok()) image = pod->spec.image;
  runtime_->StartContainer(name, std::move(env),
                           [this, name](const ContainerInstance& inst) {
    auto pit = pods_.find(name);
    if (pit == pods_.end()) return;
    pit->second.state = PodState::kRunning;
    api_->events().Record("kubelet/" + node_name_, "pod/" + name, "Started");
    (void)api_->SetPodEnv(name, inst.env);
    (void)api_->SetPodPhase(name, PodPhase::kRunning);
  }, image);
}

void Kubelet::FinishPod(const std::string& pod_name, bool success,
                        const std::string& reason) {
  if (crashed_) return;
  auto it = pods_.find(pod_name);
  if (it == pods_.end()) return;
  ReleasePod(pod_name);
  if (!reason.empty()) {
    api_->events().Record("kubelet/" + node_name_, "pod/" + pod_name, reason);
  }
  (void)api_->SetPodPhase(pod_name,
                          success ? PodPhase::kSucceeded : PodPhase::kFailed,
                          reason);
}

void Kubelet::ReleasePod(const std::string& pod_name) {
  auto it = pods_.find(pod_name);
  if (it == pods_.end()) return;
  allocated_.Subtract(it->second.requests);
  for (const std::string& id : it->second.unit_ids) {
    for (UnitSlot& slot : units_) {
      if (slot.id == id) slot.in_use = false;
    }
  }
  pods_.erase(it);
}

std::size_t Kubelet::FreeDeviceUnits() const {
  std::size_t free = 0;
  for (const UnitSlot& s : units_) {
    if (!s.in_use && s.healthy) ++free;
  }
  return free;
}

std::vector<std::string> Kubelet::UnitsOf(const std::string& pod_name) const {
  auto it = pods_.find(pod_name);
  if (it == pods_.end()) return {};
  return it->second.unit_ids;
}

}  // namespace ks::k8s
