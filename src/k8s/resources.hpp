#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace ks::k8s {

/// Well-known resource names. CPU is counted in millicores and memory in
/// bytes, following Kubernetes conventions; custom device resources (the
/// subject of this paper) are plain integers.
inline constexpr const char* kResourceCpu = "cpu";
inline constexpr const char* kResourceMemory = "memory";
inline constexpr const char* kResourceNvidiaGpu = "nvidia.com/gpu";

/// A set of named resource quantities (a Kubernetes ResourceList). The
/// device-plugin framework forces custom device quantities to be integers —
/// the limitation KubeShare exists to work around (§3.1).
class ResourceList {
 public:
  ResourceList() = default;
  ResourceList(std::initializer_list<std::pair<const std::string, std::int64_t>>
                   items)
      : quantities_(items) {}

  std::int64_t Get(const std::string& name) const {
    auto it = quantities_.find(name);
    return it == quantities_.end() ? 0 : it->second;
  }

  void Set(const std::string& name, std::int64_t quantity) {
    if (quantity == 0) {
      quantities_.erase(name);
    } else {
      quantities_[name] = quantity;
    }
  }

  /// this += other
  void Add(const ResourceList& other) {
    for (const auto& [name, qty] : other.quantities_) {
      Set(name, Get(name) + qty);
    }
  }

  /// this -= other (clamped at zero; under-flow indicates an accounting bug
  /// upstream, but the store must stay consistent).
  void Subtract(const ResourceList& other) {
    for (const auto& [name, qty] : other.quantities_) {
      const std::int64_t next = Get(name) - qty;
      Set(name, next < 0 ? 0 : next);
    }
  }

  /// True when every quantity in `request` is available in *this.
  bool Fits(const ResourceList& request) const {
    for (const auto& [name, qty] : request.quantities_) {
      if (qty > Get(name)) return false;
    }
    return true;
  }

  bool empty() const { return quantities_.empty(); }

  const std::map<std::string, std::int64_t>& items() const {
    return quantities_;
  }

  friend bool operator==(const ResourceList&, const ResourceList&) = default;

 private:
  std::map<std::string, std::int64_t> quantities_;
};

}  // namespace ks::k8s
