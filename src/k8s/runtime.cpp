#include "k8s/runtime.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "common/log.hpp"
#include "k8s/device_plugin.hpp"

namespace ks::k8s {

ContainerRuntime::ContainerRuntime(sim::Simulation* sim,
                                   std::string node_name,
                                   std::vector<gpu::GpuDevice*> gpus,
                                   LatencyModel latency)
    : sim_(sim),
      node_name_(std::move(node_name)),
      gpus_(std::move(gpus)),
      latency_(latency) {
  assert(sim_ != nullptr);
}

std::vector<gpu::GpuDevice*> ContainerRuntime::ResolveVisibleGpus(
    const std::map<std::string, std::string>& env) const {
  std::vector<gpu::GpuDevice*> out;
  auto it = env.find(kNvidiaVisibleDevices);
  if (it == env.end()) return out;
  std::stringstream ss(it->second);
  std::string uuid;
  while (std::getline(ss, uuid, ',')) {
    for (gpu::GpuDevice* g : gpus_) {
      if (g->uuid().value() == uuid) {
        out.push_back(g);
        break;
      }
    }
  }
  return out;
}

void ContainerRuntime::StartContainer(
    const std::string& pod_name, std::map<std::string, std::string> env,
    std::function<void(const ContainerInstance&)> on_running,
    const std::string& image) {
  StartRequest request{pod_name, std::move(env), std::move(on_running)};
  if (image.empty() || latency_.image_pull.count() <= 0) {
    Enqueue(std::move(request));
    return;
  }
  ImageState& state = images_[image];
  if (state.cached) {
    Enqueue(std::move(request));
    return;
  }
  state.waiters.push_back(std::move(request));
  if (state.pulling) return;  // coalesce onto the in-flight pull
  state.pulling = true;
  ++image_pulls_;
  sim_->ScheduleAfter(latency_.image_pull, [this, image, epoch = epoch_] {
    if (epoch != epoch_) return;  // daemon crashed mid-pull
    ImageState& s = images_[image];
    s.cached = true;
    s.pulling = false;
    auto waiters = std::move(s.waiters);
    s.waiters.clear();
    for (StartRequest& w : waiters) Enqueue(std::move(w));
  });
}

void ContainerRuntime::Enqueue(StartRequest request) {
  start_queue_.push_back(std::move(request));
  PumpStartQueue();
}

void ContainerRuntime::PumpStartQueue() {
  while (busy_workers_ < latency_.runtime_workers && !start_queue_.empty()) {
    StartRequest req = std::move(start_queue_.front());
    start_queue_.pop_front();
    ++busy_workers_;
    sim_->ScheduleAfter(latency_.container_start, [this, req = std::move(req),
                                                   epoch = epoch_] {
      if (epoch != epoch_) return;  // daemon crashed mid-start
      --busy_workers_;
      ContainerInstance inst;
      inst.id = ContainerId(node_name_ + "/" + req.pod_name + "#" +
                            std::to_string(next_container_++));
      inst.pod_name = req.pod_name;
      inst.node_name = node_name_;
      inst.env = req.env;
      inst.visible_gpus = ResolveVisibleGpus(req.env);
      running_.emplace(inst.id, inst);
      by_pod_[req.pod_name] = inst.id;
      if (req.on_running) req.on_running(inst);
      if (start_hook_) start_hook_(inst);
      PumpStartQueue();
    });
  }
}

Status ContainerRuntime::ExitContainer(const ContainerId& id, bool success,
                                       const std::string& reason) {
  auto it = running_.find(id);
  if (it == running_.end()) {
    return NotFoundError("no running container: " + id.value());
  }
  ContainerInstance inst = std::move(it->second);
  running_.erase(it);
  by_pod_.erase(inst.pod_name);
  if (stop_hook_) stop_hook_(inst);
  if (exit_fn_) exit_fn_(inst.pod_name, success, reason);
  return Status::Ok();
}

Status ContainerRuntime::ExitContainerByPod(const std::string& pod_name,
                                            bool success,
                                            const std::string& reason) {
  auto it = by_pod_.find(pod_name);
  if (it == by_pod_.end()) {
    return NotFoundError("no running container for pod: " + pod_name);
  }
  return ExitContainer(it->second, success, reason);
}

Status ContainerRuntime::KillContainer(const std::string& pod_name,
                                       std::function<void()> on_stopped) {
  auto it = by_pod_.find(pod_name);
  if (it == by_pod_.end()) {
    // The pod may still be queued for start; cancel the pending request.
    for (auto qit = start_queue_.begin(); qit != start_queue_.end(); ++qit) {
      if (qit->pod_name == pod_name) {
        start_queue_.erase(qit);
        if (on_stopped) on_stopped();
        return Status::Ok();
      }
    }
    // ... or still waiting on an image pull.
    for (auto& [image, state] : images_) {
      for (auto wit = state.waiters.begin(); wit != state.waiters.end();
           ++wit) {
        if (wit->pod_name == pod_name) {
          state.waiters.erase(wit);
          if (on_stopped) on_stopped();
          return Status::Ok();
        }
      }
    }
    return NotFoundError("no container for pod: " + pod_name);
  }
  const ContainerId id = it->second;
  sim_->ScheduleAfter(latency_.container_stop, [this, id, epoch = epoch_,
                                                on_stopped =
                                                    std::move(on_stopped)] {
    if (epoch != epoch_) return;  // daemon crashed before the stop landed
    auto rit = running_.find(id);
    if (rit != running_.end()) {
      ContainerInstance inst = std::move(rit->second);
      running_.erase(rit);
      by_pod_.erase(inst.pod_name);
      if (stop_hook_) stop_hook_(inst);
    }
    if (on_stopped) on_stopped();
  });
  return Status::Ok();
}

void ContainerRuntime::CrashAll() {
  ++epoch_;  // invalidate every in-flight start/pull/kill callback
  ++crashes_;
  start_queue_.clear();
  for (auto& [image, state] : images_) {
    state.pulling = false;
    state.waiters.clear();
  }
  busy_workers_ = 0;
  // Tear down running containers in sorted order — running_ is an
  // unordered_map and stop hooks are observable (determinism).
  std::vector<ContainerId> ids;
  ids.reserve(running_.size());
  for (const auto& [id, inst] : running_) ids.push_back(id);
  std::sort(ids.begin(), ids.end(),
            [](const ContainerId& a, const ContainerId& b) {
              return a.value() < b.value();
            });
  for (const ContainerId& id : ids) {
    auto it = running_.find(id);
    if (it == running_.end()) continue;  // stop hook cascaded into an exit
    ContainerInstance inst = std::move(it->second);
    running_.erase(it);
    by_pod_.erase(inst.pod_name);
    if (stop_hook_) stop_hook_(inst);
  }
}

bool ContainerRuntime::IsRunning(const std::string& pod_name) const {
  return by_pod_.count(pod_name) > 0;
}

}  // namespace ks::k8s
