#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "gpu/device.hpp"
#include "k8s/resources.hpp"

namespace ks::k8s {

/// Environment variable through which GPUs are attached to containers (the
/// nvidia-docker2 mechanism the paper describes in §2.2).
inline constexpr const char* kNvidiaVisibleDevices = "NVIDIA_VISIBLE_DEVICES";

struct PluginDevice {
  std::string id;
  bool healthy = true;
};

/// What a plugin returns from Allocate: everything the kubelet needs to
/// attach the device (we model the env-var part, which is all the NVIDIA
/// plugin uses).
struct AllocateResponse {
  std::map<std::string, std::string> env;
};

/// The Kubernetes device-plugin framework interface (§2.2): a plugin
/// registers a resource name, advertises device instances via ListAndWatch,
/// and answers Allocate calls for device IDs that the *kubelet* picked.
///
/// Two framework properties matter for the paper's argument and are
/// preserved here: device quantities are integers only, and the plugin is
/// never told which pod an Allocate call is for (implicit, late binding —
/// §3.2).
class DevicePlugin {
 public:
  virtual ~DevicePlugin() = default;

  virtual std::string resource_name() const = 0;

  /// Snapshot of the ListAndWatch stream.
  virtual std::vector<PluginDevice> ListDevices() const = 0;

  /// Vendor-specific allocation for kubelet-chosen device IDs.
  virtual Expected<AllocateResponse> Allocate(
      const std::vector<std::string>& device_ids) = 0;
};

/// The stock NVIDIA device plugin: one device unit per physical GPU;
/// Allocate returns NVIDIA_VISIBLE_DEVICES with the GPU UUIDs. Whole-GPU
/// granularity — the native-Kubernetes baseline.
class NvidiaDevicePlugin final : public DevicePlugin {
 public:
  explicit NvidiaDevicePlugin(std::vector<gpu::GpuDevice*> gpus);

  std::string resource_name() const override { return kResourceNvidiaGpu; }
  std::vector<PluginDevice> ListDevices() const override;
  Expected<AllocateResponse> Allocate(
      const std::vector<std::string>& device_ids) override;

  /// Health transition (XID error, thermal trip, ...). The kubelet picks
  /// the change up on its next ListAndWatch refresh — "whenever a device
  /// state changes ... its device plugin returns the new device list to
  /// kubelet" (§2.2).
  Status SetDeviceHealth(const std::string& uuid, bool healthy);

 private:
  std::vector<gpu::GpuDevice*> gpus_;
  std::map<std::string, bool> health_;  // default healthy
};

/// The scaling-factor trick (§3.1): each physical GPU is advertised as
/// `scale` integer units so users can express fractions as integers. The
/// allocated units map back to the physical GPU that owns the *first*
/// allocated unit — when a request's units straddle GPUs (fragmentation),
/// the container is still attached to a single GPU, silently
/// over-committing it. This reproduces the Fig 3a failure mode of sharing
/// solutions that do not treat GPUs as first-class resources.
class ScaledNvidiaDevicePlugin final : public DevicePlugin {
 public:
  ScaledNvidiaDevicePlugin(std::vector<gpu::GpuDevice*> gpus, int scale);

  std::string resource_name() const override { return kResourceNvidiaGpu; }
  std::vector<PluginDevice> ListDevices() const override;
  Expected<AllocateResponse> Allocate(
      const std::vector<std::string>& device_ids) override;

  int scale() const { return scale_; }

  /// Unit id -> owning GPU uuid (exposed for tests and the fragmentation
  /// benchmark).
  Expected<std::string> GpuOfUnit(const std::string& unit_id) const;

 private:
  std::vector<gpu::GpuDevice*> gpus_;
  int scale_;
};

}  // namespace ks::k8s
