#include "k8s/device_plugin.hpp"

#include <algorithm>

#include "k8s/resources.hpp"

namespace ks::k8s {

namespace {
std::string JoinIds(const std::vector<std::string>& ids) {
  std::string out;
  for (const std::string& id : ids) {
    if (!out.empty()) out += ',';
    out += id;
  }
  return out;
}
}  // namespace

NvidiaDevicePlugin::NvidiaDevicePlugin(std::vector<gpu::GpuDevice*> gpus)
    : gpus_(std::move(gpus)) {}

std::vector<PluginDevice> NvidiaDevicePlugin::ListDevices() const {
  std::vector<PluginDevice> out;
  out.reserve(gpus_.size());
  for (const gpu::GpuDevice* g : gpus_) {
    auto it = health_.find(g->uuid().value());
    out.push_back({g->uuid().value(), it == health_.end() || it->second});
  }
  return out;
}

Status NvidiaDevicePlugin::SetDeviceHealth(const std::string& uuid,
                                           bool healthy) {
  const bool known = std::any_of(
      gpus_.begin(), gpus_.end(),
      [&](const gpu::GpuDevice* g) { return g->uuid().value() == uuid; });
  if (!known) return NotFoundError("unknown device: " + uuid);
  health_[uuid] = healthy;
  return Status::Ok();
}

Expected<AllocateResponse> NvidiaDevicePlugin::Allocate(
    const std::vector<std::string>& device_ids) {
  if (device_ids.empty()) {
    return InvalidArgumentError("empty device id list");
  }
  for (const std::string& id : device_ids) {
    const bool known = std::any_of(
        gpus_.begin(), gpus_.end(),
        [&](const gpu::GpuDevice* g) { return g->uuid().value() == id; });
    if (!known) return NotFoundError("unknown device id: " + id);
  }
  AllocateResponse resp;
  resp.env[kNvidiaVisibleDevices] = JoinIds(device_ids);
  return resp;
}

ScaledNvidiaDevicePlugin::ScaledNvidiaDevicePlugin(
    std::vector<gpu::GpuDevice*> gpus, int scale)
    : gpus_(std::move(gpus)), scale_(scale > 0 ? scale : 1) {}

std::vector<PluginDevice> ScaledNvidiaDevicePlugin::ListDevices() const {
  std::vector<PluginDevice> out;
  out.reserve(gpus_.size() * static_cast<std::size_t>(scale_));
  for (const gpu::GpuDevice* g : gpus_) {
    for (int unit = 0; unit < scale_; ++unit) {
      out.push_back({g->uuid().value() + "#" + std::to_string(unit), true});
    }
  }
  return out;
}

Expected<std::string> ScaledNvidiaDevicePlugin::GpuOfUnit(
    const std::string& unit_id) const {
  const auto hash = unit_id.rfind('#');
  if (hash == std::string::npos) {
    return InvalidArgumentError("not a scaled unit id: " + unit_id);
  }
  const std::string uuid = unit_id.substr(0, hash);
  for (const gpu::GpuDevice* g : gpus_) {
    if (g->uuid().value() == uuid) return uuid;
  }
  return NotFoundError("unknown device id: " + unit_id);
}

Expected<AllocateResponse> ScaledNvidiaDevicePlugin::Allocate(
    const std::vector<std::string>& device_ids) {
  if (device_ids.empty()) {
    return InvalidArgumentError("empty device id list");
  }
  // The kubelet hands over whatever free units it picked; the container can
  // only be attached to one GPU, so the plugin uses the owner of the first
  // unit and ignores where the rest live. Fractional accounting is thereby
  // only correct in aggregate — the fragmentation problem of §3.1.
  auto owner = GpuOfUnit(device_ids.front());
  if (!owner.ok()) return owner.status();
  AllocateResponse resp;
  resp.env[kNvidiaVisibleDevices] = *owner;
  return resp;
}

}  // namespace ks::k8s
