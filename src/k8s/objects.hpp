#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"
#include "k8s/resources.hpp"

namespace ks::k8s {

/// Object metadata common to every API object (a slice of ObjectMeta).
struct ObjectMeta {
  std::string name;
  std::uint64_t uid = 0;
  std::map<std::string, std::string> labels;
  Time creation_time{0};
  std::uint64_t resource_version = 0;
};

/// Pod lifecycle phase, matching the Kubernetes PodPhase values.
enum class PodPhase {
  kPending,    // accepted, not all containers running (includes unscheduled)
  kRunning,    // bound to a node, containers started
  kSucceeded,  // all containers terminated successfully
  kFailed,     // a container terminated in failure
};

inline const char* PodPhaseName(PodPhase p) {
  switch (p) {
    case PodPhase::kPending: return "Pending";
    case PodPhase::kRunning: return "Running";
    case PodPhase::kSucceeded: return "Succeeded";
    case PodPhase::kFailed: return "Failed";
  }
  return "Unknown";
}

/// The user-supplied specification of a pod (one container per pod, as the
/// paper assumes: "container and pod are interchangeable terms").
struct PodSpec {
  std::string image = "workload:latest";
  ResourceList requests;
  ResourceList limits;
  /// Simple nodeSelector: every entry must match a node label.
  std::map<std::string, std::string> node_selector;
  /// Environment supplied by the user; the kubelet merges device-plugin
  /// env on top (e.g. NVIDIA_VISIBLE_DEVICES).
  std::map<std::string, std::string> env;
};

/// Observed pod state maintained by the control plane and the kubelet.
struct PodStatus {
  PodPhase phase = PodPhase::kPending;
  /// Node the scheduler bound the pod to; empty while unscheduled.
  std::string node_name;
  /// Effective container environment after device allocation.
  std::map<std::string, std::string> effective_env;
  std::optional<Time> scheduled_time;
  std::optional<Time> running_time;
  std::optional<Time> finished_time;
  std::string message;
};

struct Pod {
  ObjectMeta meta;
  PodSpec spec;
  PodStatus status;

  bool scheduled() const { return !status.node_name.empty(); }
  bool terminal() const {
    return status.phase == PodPhase::kSucceeded ||
           status.phase == PodPhase::kFailed;
  }
};

/// A cluster node: capacity advertised by the kubelet (including device
/// plugin resources) and labels for nodeSelector matching.
struct Node {
  ObjectMeta meta;
  ResourceList capacity;
  bool ready = true;
};

}  // namespace ks::k8s
