#include "serving/arrivals.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ks::serving {

RateEnvelope::RateEnvelope(std::vector<Segment> segments)
    : segments_(std::move(segments)) {
  assert(!segments_.empty());
  assert(segments_.front().start == Time{0});
  for (const Segment& s : segments_) {
    assert(s.rate_hz >= 0.0);
    max_rate_hz_ = std::max(max_rate_hz_, s.rate_hz);
  }
}

RateEnvelope RateEnvelope::Steady(double rate_hz) {
  return RateEnvelope({{Time{0}, rate_hz}});
}

RateEnvelope RateEnvelope::Diurnal(double base_hz, double peak_hz,
                                   Duration period, int steps) {
  assert(steps > 0);
  assert(period.count() > 0);
  std::vector<Segment> segs;
  segs.reserve(static_cast<std::size_t>(steps));
  const double amp = (peak_hz - base_hz) * 0.5;
  for (int i = 0; i < steps; ++i) {
    // Midpoint-sampled raised sinusoid: trough at t=0, crest at period/2.
    const double phase = 2.0 * M_PI * (static_cast<double>(i) + 0.5) /
                         static_cast<double>(steps);
    const double rate = base_hz + amp * (1.0 - std::cos(phase));
    segs.push_back({Time{period.count() * i / steps}, rate});
  }
  RateEnvelope env(std::move(segs));
  env.period_ = period;
  return env;
}

RateEnvelope RateEnvelope::FlashCrowd(double base_hz, double peak_hz, Time at,
                                      Duration ramp, Duration hold,
                                      int ramp_steps) {
  assert(ramp_steps > 0);
  std::vector<Segment> segs;
  segs.push_back({Time{0}, base_hz});
  const double rise = peak_hz - base_hz;
  for (int i = 0; i < ramp_steps; ++i) {
    const double frac = (static_cast<double>(i) + 0.5) /
                        static_cast<double>(ramp_steps);
    segs.push_back(
        {at + Duration{ramp.count() * i / ramp_steps}, base_hz + rise * frac});
  }
  segs.push_back({at + ramp, peak_hz});
  for (int i = 0; i < ramp_steps; ++i) {
    const double frac = (static_cast<double>(i) + 0.5) /
                        static_cast<double>(ramp_steps);
    segs.push_back({at + ramp + hold + Duration{ramp.count() * i / ramp_steps},
                    peak_hz - rise * frac});
  }
  segs.push_back({at + ramp + hold + ramp, base_hz});
  return RateEnvelope(std::move(segs));
}

double RateEnvelope::RateAt(Time t) const {
  if (segments_.empty()) return 0.0;
  if (period_.count() > 0) {
    t = Time{t.count() % period_.count()};
  }
  // Last segment whose start <= t.
  auto it = std::upper_bound(
      segments_.begin(), segments_.end(), t,
      [](Time value, const Segment& s) { return value < s.start; });
  assert(it != segments_.begin());
  return std::prev(it)->rate_hz;
}

RateEnvelope RateEnvelope::Scaled(double factor) const {
  RateEnvelope out = *this;
  out.max_rate_hz_ = 0.0;
  for (Segment& s : out.segments_) {
    s.rate_hz *= factor;
    out.max_rate_hz_ = std::max(out.max_rate_hz_, s.rate_hz);
  }
  return out;
}

ThinningSequence::ThinningSequence(RateEnvelope envelope, std::uint64_t seed)
    : envelope_(std::move(envelope)), rng_(seed) {}

Time ThinningSequence::Next() {
  const double max_rate = envelope_.max_rate_hz();
  if (max_rate <= 0.0) return kNoArrival;
  const Duration mean = Seconds(1.0 / max_rate);
  for (;;) {
    // Lewis-Shedler: candidate gaps at the majorant rate, accepted with
    // probability lambda(t)/majorant. One exponential + one uniform draw
    // per candidate, in this exact order — the contract both generators
    // share.
    Duration gap = rng_.ExponentialInterarrival(mean);
    // The sim clock is integral microseconds; a zero-rounded gap must
    // still advance time or two arrivals would coincide.
    if (gap.count() <= 0) gap = Duration{1};
    cursor_ += gap;
    const double u = rng_.Uniform(0.0, 1.0);
    if (u * max_rate < envelope_.RateAt(cursor_)) return cursor_;
  }
}

ReferenceArrivalProcess::ReferenceArrivalProcess(sim::Simulation* sim,
                                                RateEnvelope envelope,
                                                std::uint64_t seed, Time until,
                                                ArrivalFn fn)
    : sim_(sim),
      seq_(std::move(envelope), seed),
      until_(until),
      fn_(std::move(fn)) {
  assert(sim_ != nullptr);
}

void ReferenceArrivalProcess::Start() {
  if (started_) return;
  started_ = true;
  next_ = seq_.Next();
  if (next_ < until_) Arm(next_);
}

void ReferenceArrivalProcess::Stop() {
  if (event_ != sim::kInvalidEvent) {
    sim_->Cancel(event_);
    event_ = sim::kInvalidEvent;
  }
  started_ = false;
}

void ReferenceArrivalProcess::Arm(Time at) {
  ++engine_events_;
  event_ = sim_->ScheduleAt(at, [this] {
    event_ = sim::kInvalidEvent;
    const Time arrival = next_;
    ++arrivals_;
    next_ = seq_.Next();
    if (next_ < until_) Arm(next_);
    if (fn_) fn_(arrival);
  });
}

BatchedArrivalStream::BatchedArrivalStream(sim::Simulation* sim,
                                           RateEnvelope envelope,
                                           std::uint64_t seed, Time until,
                                           Duration window, BatchFn fn)
    : sim_(sim),
      seq_(std::move(envelope), seed),
      until_(until),
      window_(window),
      fn_(std::move(fn)) {
  assert(sim_ != nullptr);
}

void BatchedArrivalStream::Start() {
  if (started_) return;
  started_ = true;
  next_ = seq_.Next();
  if (next_ < until_) ArmFor(next_);
}

void BatchedArrivalStream::Stop() {
  if (event_ != sim::kInvalidEvent) {
    sim_->Cancel(event_);
    event_ = sim::kInvalidEvent;
  }
  started_ = false;
}

void BatchedArrivalStream::ArmFor(Time arrival) {
  ++engine_events_;
  if (window_.count() <= 0) {
    // Per-request (batch = 1) mode: the event lands exactly at the arrival
    // and the callback's call sequence mirrors ReferenceArrivalProcess
    // call for call, which is what makes the downstream request traces
    // byte-equal to the oracle.
    event_ = sim_->ScheduleAt(arrival, [this] {
      event_ = sim::kInvalidEvent;
      batch_.clear();
      batch_.push_back(next_);
      ++arrivals_;
      ++batches_;
      next_ = seq_.Next();
      if (next_ < until_) ArmFor(next_);
      if (fn_) fn_(batch_);
    });
    return;
  }
  // First window boundary strictly after the arrival: the batch delivered
  // at a boundary covers (boundary - window, boundary], so every delivered
  // arrival is already in the past. Empty windows never get an event —
  // the stream jumps straight to the window containing the next arrival.
  const Time boundary =
      Time{(arrival.count() / window_.count()) * window_.count()} + window_;
  event_ = sim_->ScheduleAt(boundary,
                            [this, boundary] { OnWindowEnd(boundary); });
}

void BatchedArrivalStream::OnWindowEnd(Time boundary) {
  event_ = sim::kInvalidEvent;
  batch_.clear();
  while (next_ <= boundary && next_ < until_) {
    batch_.push_back(next_);
    ++arrivals_;
    next_ = seq_.Next();
  }
  ++batches_;
  if (next_ < until_) ArmFor(next_);
  if (fn_ && !batch_.empty()) fn_(batch_);
}

}  // namespace ks::serving
