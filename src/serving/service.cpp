#include "serving/service.hpp"

#include <algorithm>
#include <cassert>
#include <deque>
#include <vector>

#include "vgpu/frontend_hook.hpp"
#include "vgpu/token_backend.hpp"

namespace ks::serving {

struct ServiceFrontend::Core : std::enable_shared_from_this<Core> {
  k8s::Cluster* cluster = nullptr;
  workload::WorkloadHost* host = nullptr;
  sim::Simulation* sim = nullptr;
  ServiceConfig cfg;

  struct Replica {
    std::string name;
    workload::RequestServerJob* job = nullptr;
    ContainerId container;
    vgpu::TokenBackendApi* backend = nullptr;
    std::uint64_t outstanding = 0;  // dispatched, not yet served
  };
  /// Ready replicas, name-sorted so round-robin order is deterministic
  /// regardless of container start interleaving.
  std::vector<Replica> replicas;
  std::size_t rr = 0;

  std::unique_ptr<BatchedArrivalStream> stream;
  std::unique_ptr<ReferenceArrivalProcess> reference;

  /// Arrivals buffered while no replica is ready (service cold start,
  /// every replica crashed). Dispatched FIFO when one comes up.
  std::deque<Time> waiting;
  std::uint64_t arrived = 0;
  std::uint64_t served = 0;
  std::uint64_t shed = 0;
  std::uint64_t lost = 0;
  std::uint64_t violations = 0;
  std::uint64_t queued_retries = 0;
  std::uint64_t pending_retries = 0;

  metrics::LatencyDigest digest;
  metrics::WindowedLatencyDigest windowed;
  TraceFn trace;

  explicit Core(ServiceConfig config)
      : cfg(std::move(config)), windowed(cfg.stats_window) {}

  void Trace(const char* what, Time arrival, Time when,
             const std::string& replica) {
    if (trace) trace(what, arrival, when, replica);
  }

  void OnArrival(Time arrival) {
    ++arrived;
    Trace("arrive", arrival, sim->Now(), "");
    Dispatch(arrival);
  }

  void OnArrivals(const std::vector<Time>& batch) {
    for (Time t : batch) OnArrival(t);
  }

  Replica* FindReplica(const std::string& name) {
    for (Replica& r : replicas) {
      if (r.name == name) return &r;
    }
    return nullptr;
  }

  void Dispatch(Time arrival) {
    if (replicas.empty()) {
      Trace("wait", arrival, sim->Now(), "");
      waiting.push_back(arrival);
      return;
    }
    if (rr >= replicas.size()) rr = 0;
    Replica& r = replicas[rr];
    ++rr;
    const Time now = sim->Now();
    if (r.backend != nullptr) {
      switch (r.backend->AdmitRequest(r.container, now)) {
        case vgpu::AdmissionDecision::kAdmit:
          break;
        case vgpu::AdmissionDecision::kShed:
          ++shed;
          Trace("shed", arrival, now, r.name);
          return;
        case vgpu::AdmissionDecision::kQueue: {
          ++queued_retries;
          ++pending_retries;
          Trace("queue", arrival, now, r.name);
          std::weak_ptr<Core> weak = weak_from_this();
          sim->ScheduleAfter(cfg.queue_retry, [weak, arrival] {
            if (auto core = weak.lock()) {
              --core->pending_retries;
              core->Dispatch(arrival);
            }
          });
          return;
        }
      }
    }
    std::weak_ptr<Core> weak = weak_from_this();
    const std::string name = r.name;
    const bool ok =
        r.job->Submit(arrival, [weak, name](Time a, Time finish) {
          if (auto core = weak.lock()) core->OnServed(name, a, finish);
        });
    if (!ok) {
      // Replica raced down between registry update and dispatch; park the
      // request for the next replica-up.
      Trace("wait", arrival, now, name);
      waiting.push_back(arrival);
      return;
    }
    ++r.outstanding;
    Trace("dispatch", arrival, now, name);
  }

  void OnServed(const std::string& replica, Time arrival, Time finish) {
    ++served;
    const Duration latency = finish - arrival;
    digest.Record(latency);
    windowed.Record(sim->Now(), latency);
    if (latency > cfg.slo_p99) ++violations;
    if (Replica* r = FindReplica(replica)) {
      if (r->outstanding > 0) --r->outstanding;
      if (r->backend != nullptr) {
        r->backend->ReportRequestLatency(r->container, sim->Now(), latency);
      }
    }
    Trace("serve", arrival, finish, replica);
  }

  void OnReplica(const std::string& name, workload::RequestServerJob* job,
                 bool up) {
    if (up) {
      Replica r;
      r.name = name;
      r.job = job;
      if (vgpu::FrontendHook* hook = host->MutableRunningHook(name)) {
        r.container = hook->container();
        r.backend = cluster->BackendForGpu(hook->device());
        if (r.backend != nullptr) {
          r.backend->SetServiceSlo(r.container, cfg.slo_p99);
        }
      }
      auto pos = std::lower_bound(
          replicas.begin(), replicas.end(), name,
          [](const Replica& a, const std::string& n) { return a.name < n; });
      if (pos != replicas.end() && pos->name == name) {
        *pos = std::move(r);  // relaunched replica (crash requeue)
      } else {
        replicas.insert(pos, std::move(r));
      }
      // Drain the cold-start buffer now that someone can serve.
      std::deque<Time> flush;
      flush.swap(waiting);
      for (Time t : flush) Dispatch(t);
      return;
    }
    auto pos = std::find_if(replicas.begin(), replicas.end(),
                            [&](const Replica& r) { return r.name == name; });
    if (pos == replicas.end()) return;
    if (pos->outstanding > 0) {
      // Requests queued on the dying replica die with it (the job's
      // stopped_ guard keeps their ServedFns from ever firing).
      lost += pos->outstanding;
      Trace("lost", Time{0}, sim->Now(), name);
    }
    replicas.erase(pos);
    if (rr >= replicas.size()) rr = 0;
  }
};

ServiceFrontend::ServiceFrontend(k8s::Cluster* cluster,
                                 workload::WorkloadHost* host,
                                 ServiceConfig config)
    : config_(config), core_(std::make_shared<Core>(std::move(config))) {
  assert(cluster != nullptr && host != nullptr);
  core_->cluster = cluster;
  core_->host = host;
  core_->sim = &cluster->sim();
}

ServiceFrontend::~ServiceFrontend() { Stop(); }

std::function<void(const std::string&)> ServiceFrontend::MakeReplicaHook() {
  std::weak_ptr<Core> weak = core_;
  workload::WorkloadHost* host = core_->host;
  const workload::RequestServerSpec spec = config_.replica;
  return [weak, host, spec](const std::string& replica_name) {
    host->ExpectJob(replica_name, [weak, spec, replica_name]()
                                      -> std::unique_ptr<workload::Job> {
      return std::make_unique<workload::RequestServerJob>(
          spec, [weak, replica_name](workload::RequestServerJob* self,
                                     bool up) {
            if (auto core = weak.lock()) {
              core->OnReplica(replica_name, self, up);
            }
          });
    });
  };
}

void ServiceFrontend::Start() {
  std::weak_ptr<Core> weak = core_;
  if (config_.use_reference_generator) {
    core_->reference = std::make_unique<ReferenceArrivalProcess>(
        core_->sim, config_.envelope, config_.seed, config_.until,
        [weak](Time arrival) {
          if (auto core = weak.lock()) core->OnArrival(arrival);
        });
    core_->reference->Start();
    return;
  }
  core_->stream = std::make_unique<BatchedArrivalStream>(
      core_->sim, config_.envelope, config_.seed, config_.until,
      config_.batch_window, [weak](const std::vector<Time>& batch) {
        if (auto core = weak.lock()) core->OnArrivals(batch);
      });
  core_->stream->Start();
}

void ServiceFrontend::Stop() {
  if (core_->stream != nullptr) core_->stream->Stop();
  if (core_->reference != nullptr) core_->reference->Stop();
}

std::uint64_t ServiceFrontend::arrived() const { return core_->arrived; }
std::uint64_t ServiceFrontend::served() const { return core_->served; }
std::uint64_t ServiceFrontend::shed() const { return core_->shed; }
std::uint64_t ServiceFrontend::lost() const { return core_->lost; }
std::uint64_t ServiceFrontend::violations() const {
  return core_->violations;
}
std::uint64_t ServiceFrontend::queued_retries() const {
  return core_->queued_retries;
}
std::size_t ServiceFrontend::ready_replicas() const {
  return core_->replicas.size();
}

bool ServiceFrontend::Drained() const {
  return core_->waiting.empty() && core_->pending_retries == 0 &&
         core_->arrived == core_->served + core_->shed + core_->lost;
}

std::uint64_t ServiceFrontend::generator_events() const {
  if (core_->stream != nullptr) return core_->stream->engine_events();
  if (core_->reference != nullptr) return core_->reference->engine_events();
  return 0;
}

std::uint64_t ServiceFrontend::generator_batches() const {
  if (core_->stream != nullptr) return core_->stream->batches();
  if (core_->reference != nullptr) return core_->reference->arrivals();
  return 0;
}

const metrics::LatencyDigest& ServiceFrontend::digest() const {
  return core_->digest;
}

double ServiceFrontend::ObservedP99Seconds() {
  return core_->windowed.QuantileSeconds(core_->sim->Now(), 0.99);
}

std::function<double()> ServiceFrontend::MakeAutoscalerProbe() {
  std::weak_ptr<Core> weak = core_;
  return [weak]() -> double {
    auto core = weak.lock();
    if (!core) return 0.0;
    const double p99 =
        core->windowed.QuantileSeconds(core->sim->Now(), 0.99);
    if (p99 > 0.0) return p99;
    // The window is empty. If the service has served traffic and every
    // request reached a terminal state, the fleet is idle — report a
    // near-zero p99 so the controller can scale it down. Before the first
    // serves there is no evidence either way: no decision.
    const bool drained = core->waiting.empty() &&
                         core->pending_retries == 0 &&
                         core->arrived == core->served + core->shed +
                                              core->lost;
    return (drained && core->served > 0) ? 1e-4 : 0.0;
  };
}

metrics::ServiceSloSample ServiceFrontend::Sample() {
  metrics::ServiceSloSample s;
  s.service = config_.name;
  s.slo_s = ToSeconds(config_.slo_p99);
  s.p50_s = core_->digest.QuantileSeconds(0.50);
  s.p99_s = core_->digest.QuantileSeconds(0.99);
  s.p999_s = core_->digest.QuantileSeconds(0.999);
  s.arrived = core_->arrived;
  s.served = core_->served;
  s.shed = core_->shed;
  s.queued_retries = core_->queued_retries;
  s.violations = core_->violations;
  s.lost = core_->lost;
  s.replicas_ready = core_->replicas.size();
  s.violation_rate =
      core_->arrived == 0
          ? 0.0
          : static_cast<double>(core_->violations + core_->shed +
                                core_->lost) /
                static_cast<double>(core_->arrived);
  return s;
}

void ServiceFrontend::SetTraceFn(TraceFn fn) {
  core_->trace = std::move(fn);
}

}  // namespace ks::serving
