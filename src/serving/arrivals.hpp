#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "sim/simulation.hpp"

namespace ks::serving {

/// Piecewise-constant aggregate request-rate envelope lambda(t), in
/// requests/second. This is the trace format of the load generator: a
/// diurnal curve or a flash crowd is sampled into constant segments, and
/// the thinning sampler stays exact over each segment (no rate drift
/// inside a step, which is what keeps the batched and per-request
/// generators drawing identical random sequences).
class RateEnvelope {
 public:
  struct Segment {
    Time start{0};      // segment is [start, next.start)
    double rate_hz = 0.0;
  };

  RateEnvelope() = default;
  /// `segments` must be sorted by start with segments.front().start == 0.
  explicit RateEnvelope(std::vector<Segment> segments);

  /// Constant rate — the steady mix.
  static RateEnvelope Steady(double rate_hz);

  /// Diurnal curve: a raised sinusoid between base_hz (trough) and peak_hz
  /// (crest) with the given period, sampled into `steps` constant segments
  /// per period. The envelope repeats (RateAt wraps modulo period).
  static RateEnvelope Diurnal(double base_hz, double peak_hz, Duration period,
                              int steps = 24);

  /// Flash crowd: steady base_hz, then at `at` a linear ramp over `ramp`
  /// up to peak_hz, held for `hold`, ramped back down. Ramps are sampled
  /// into `ramp_steps` constant segments each.
  static RateEnvelope FlashCrowd(double base_hz, double peak_hz, Time at,
                                 Duration ramp, Duration hold,
                                 int ramp_steps = 8);

  double RateAt(Time t) const;
  /// The thinning majorant: max segment rate.
  double max_rate_hz() const { return max_rate_hz_; }
  /// Period for repeating envelopes (Diurnal); zero means no wrap.
  Duration period() const { return period_; }
  const std::vector<Segment>& segments() const { return segments_; }

  /// Same shape, every rate multiplied by `factor` — per-service request
  /// mixes share one traffic shape at different volumes.
  RateEnvelope Scaled(double factor) const;

 private:
  std::vector<Segment> segments_;
  double max_rate_hz_ = 0.0;
  Duration period_{0};
};

/// Sentinel for "no further arrival".
inline constexpr Time kNoArrival{std::numeric_limits<std::int64_t>::max()};

/// The shared arrival core both generators consume: Lewis-Shedler thinning
/// of a homogeneous Poisson process at the envelope's majorant rate. Each
/// Next() draws (exponential gap, uniform accept) pairs in a fixed order,
/// so two sequences built from the same envelope and seed yield identical
/// arrival timestamps — the batched stream and the per-request reference
/// are byte-equal at the arrival level BY CONSTRUCTION, not by tuning
/// (tests/serving/arrival_equivalence_test.cpp pins it).
class ThinningSequence {
 public:
  ThinningSequence(RateEnvelope envelope, std::uint64_t seed);

  /// Next arrival time, strictly increasing. kNoArrival once the sequence
  /// is exhausted (zero-rate envelope).
  Time Next();

 private:
  RateEnvelope envelope_;
  Rng rng_;
  Time cursor_{0};
};

/// Per-request reference generator: one engine event per arrival, the
/// differential oracle. This is exactly what "plain Poisson clients" cost
/// the engine before this subsystem existed — kept so the batched path has
/// an executable specification to be measured (and pinned) against.
class ReferenceArrivalProcess {
 public:
  using ArrivalFn = std::function<void(Time arrival)>;

  ReferenceArrivalProcess(sim::Simulation* sim, RateEnvelope envelope,
                          std::uint64_t seed, Time until, ArrivalFn fn);
  ~ReferenceArrivalProcess() { Stop(); }

  ReferenceArrivalProcess(const ReferenceArrivalProcess&) = delete;
  ReferenceArrivalProcess& operator=(const ReferenceArrivalProcess&) = delete;

  void Start();
  void Stop();

  std::uint64_t arrivals() const { return arrivals_; }
  /// Engine events this generator scheduled (== arrivals, by design).
  std::uint64_t engine_events() const { return engine_events_; }

 private:
  void Arm(Time at);

  sim::Simulation* sim_;
  ThinningSequence seq_;
  Time until_;
  ArrivalFn fn_;
  Time next_{0};
  sim::EventId event_ = sim::kInvalidEvent;
  std::uint64_t arrivals_ = 0;
  std::uint64_t engine_events_ = 0;
  bool started_ = false;
};

/// Batched arrival stream: aggregates every arrival landing inside one
/// `window` into a single engine event fired at the window's end, so N
/// simulated clients cost the engine one event per non-empty window
/// instead of one per request. Empty windows are skipped entirely (the
/// next event is armed at the window containing the next arrival), so an
/// idle service costs zero events.
///
/// window <= 0 degenerates to per-request mode: one singleton batch per
/// arrival, delivered at the arrival time — the configuration the
/// differential suite requires to be byte-equal to the reference.
class BatchedArrivalStream {
 public:
  /// `arrivals` is non-empty and ascending; every time is <= Now() (the
  /// batch is delivered at the window end, after the arrivals happened).
  using BatchFn = std::function<void(const std::vector<Time>& arrivals)>;

  BatchedArrivalStream(sim::Simulation* sim, RateEnvelope envelope,
                       std::uint64_t seed, Time until, Duration window,
                       BatchFn fn);
  ~BatchedArrivalStream() { Stop(); }

  BatchedArrivalStream(const BatchedArrivalStream&) = delete;
  BatchedArrivalStream& operator=(const BatchedArrivalStream&) = delete;

  void Start();
  void Stop();

  std::uint64_t arrivals() const { return arrivals_; }
  std::uint64_t batches() const { return batches_; }
  /// Engine events this generator scheduled: one per non-empty window in
  /// batched mode, one per arrival in per-request mode.
  std::uint64_t engine_events() const { return engine_events_; }

 private:
  void ArmFor(Time arrival);
  void OnWindowEnd(Time boundary);

  sim::Simulation* sim_;
  ThinningSequence seq_;
  Time until_;
  Duration window_;
  BatchFn fn_;
  Time next_{0};  // next not-yet-delivered arrival from the sequence
  sim::EventId event_ = sim::kInvalidEvent;
  std::vector<Time> batch_;  // reused buffer; capacity survives batches
  std::uint64_t arrivals_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t engine_events_ = 0;
  bool started_ = false;
};

}  // namespace ks::serving
