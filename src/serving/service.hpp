#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/time.hpp"
#include "k8s/cluster.hpp"
#include "metrics/latency_digest.hpp"
#include "metrics/slo.hpp"
#include "serving/arrivals.hpp"
#include "workload/host.hpp"
#include "workload/job.hpp"

namespace ks::serving {

/// One SLO-bound inference service: an arrival stream (the aggregate
/// traffic of `clients` simulated clients), a p99 latency target, and the
/// replica template the requests fan out over.
struct ServiceConfig {
  std::string name = "svc";
  /// Aggregate request rate of every client of this service.
  RateEnvelope envelope;
  /// How many simulated client processes the envelope aggregates —
  /// bookkeeping only (the generator's cost is independent of it, which is
  /// the whole point of batched arrival streams).
  std::uint64_t clients = 0;
  Duration slo_p99 = Millis(250);
  /// Arrival batching window; <= 0 selects per-request generation (one
  /// engine event per arrival — the differential-oracle configuration).
  Duration batch_window = Millis(10);
  /// Use ReferenceArrivalProcess instead of BatchedArrivalStream — the
  /// per-request oracle path of the differential suite.
  bool use_reference_generator = false;
  /// Arrivals stop at this simulation time (in-flight work still drains).
  Time until = Seconds(60.0);
  std::uint64_t seed = 1;
  /// Re-dispatch delay for requests held at the door under the
  /// AdmissionConfig::Policy::kQueue policy.
  Duration queue_retry = Millis(20);
  /// Window of the frontend's own sliding p99 estimate (the autoscaler
  /// probe).
  Duration stats_window = Seconds(5.0);
  /// Replica template: the request server each replica runs.
  workload::RequestServerSpec replica;
};

/// The service's front door: owns the arrival generator, tracks ready
/// replicas (RequestServerJob lifecycle), dispatches requests round-robin,
/// consults the replica's node token daemon for admission, and records
/// every latency into streaming digests (cumulative + windowed). This is
/// the layer that turns "millions of clients" into O(replicas) state and
/// O(non-empty windows) engine events.
class ServiceFrontend {
 public:
  /// Observer for the differential suite: `what` is one of "arrive",
  /// "dispatch", "serve", "shed", "queue", "wait", "lost"; `arrival` is
  /// the request's client-side arrival time; `when` the event time (the
  /// finish time for "serve"); `replica` the replica involved (empty for
  /// generator-level records).
  using TraceFn = std::function<void(const char* what, Time arrival, Time when,
                                     const std::string& replica)>;

  ServiceFrontend(k8s::Cluster* cluster, workload::WorkloadHost* host,
                  ServiceConfig config);
  ~ServiceFrontend();

  ServiceFrontend(const ServiceFrontend&) = delete;
  ServiceFrontend& operator=(const ServiceFrontend&) = delete;

  /// The hook to install on the service's SharePodReplicaSet
  /// (SetReplicaHook): registers a RequestServerJob factory with the
  /// WorkloadHost for every new replica name, wired back into this
  /// frontend's replica registry. Safe to invoke after the frontend died
  /// (the callbacks hold weak references).
  std::function<void(const std::string& replica_name)> MakeReplicaHook();

  /// Starts the arrival generator. Call after the replicaset is started
  /// (requests arriving before the first replica is ready are buffered).
  void Start();
  /// Stops generating arrivals; dispatched work keeps draining.
  void Stop();

  const ServiceConfig& config() const { return config_; }

  std::uint64_t arrived() const;
  std::uint64_t served() const;
  std::uint64_t shed() const;
  /// Requests that died with their replica (scale-down or crash while
  /// queued on it).
  std::uint64_t lost() const;
  /// Served past the SLO.
  std::uint64_t violations() const;
  std::uint64_t queued_retries() const;
  std::size_t ready_replicas() const;
  /// Every arrived request reached a terminal state (served, shed or
  /// lost) and nothing is buffered or held for retry.
  bool Drained() const;

  std::uint64_t generator_events() const;
  std::uint64_t generator_batches() const;

  /// Cumulative latency digest over the service's lifetime.
  const metrics::LatencyDigest& digest() const;
  /// Sliding-window p99 estimate — the autoscaler's metric probe.
  double ObservedP99Seconds();
  /// Ready-made SloAutoscaler probe: the sliding-window p99 while traffic
  /// flows, a near-zero reading once the service has served real traffic
  /// and fully drained (an idle fleet is far under any SLO, so the
  /// controller may shrink it), and 0 — "no decision" — in the cold-start
  /// gap before the first serves. Holds a weak reference; safe to call
  /// after the frontend is gone (reads 0).
  std::function<double()> MakeAutoscalerProbe();
  /// Snapshot for the ks_slo_* exporter.
  metrics::ServiceSloSample Sample();

  void SetTraceFn(TraceFn fn);

 private:
  struct Core;

  ServiceConfig config_;
  /// All mutable state lives behind a shared_ptr: job factories, replica
  /// lifecycle callbacks and queue-retry events capture weak references,
  /// so callbacks firing during cluster teardown (after this frontend is
  /// gone) degrade to no-ops instead of use-after-free.
  std::shared_ptr<Core> core_;
};

}  // namespace ks::serving
