#include "scale/cluster_model.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <utility>

#include "sim/simulation.hpp"

namespace ks::scale {
namespace {

using sim::ShardedSimulation;
using sim::ShardForIndex;
using sim::SplitMix64;

// ---------------------------------------------------------------------------
// Lane discipline.
//
// Every model activity fires at a time of the form  m * window + lane  —
// window-quantized with a per-class microsecond offset. Consequences:
//  * two events at the same microsecond are always the same class, and
//    same-class events for distinct entities commute (a token grant for pod
//    A and one for pod B touch disjoint state), so engine tie-breaking
//    order — the one thing that differs between the single and sharded
//    engines, and between per-entry and calendar posting — can never change
//    model state or the (sorted) traces;
//  * cross-shard messages fire exactly on window boundaries (lane 0) and
//    their processing happens in the drain tick one microsecond later,
//    after *all* same-window arrivals have been appended — the drain sorts
//    its inbox canonically, which erases the one genuinely engine-dependent
//    ordering (append interleaving across source shards);
//  * window-quantization means all same-class work in a shard-window shares
//    ONE calendar bucket, so the scale path spends one engine event where
//    the per-entry baseline spends dozens — the event economy the bench
//    measures.
enum Lane : std::int64_t {
  kLaneMsg = 0,       // cross-shard message appends; node crash/recover
  kLaneDrain = 1,     // per-shard inbox drains
  kLaneToken = 2,     // token-renewal grants
  kLaneKernel = 3,    // kernel bursts
  kLaneNvml = 4,      // per-node NVML samples
  kLaneComplete = 5,  // pod completions
  kLaneHeartbeat = 6, // kubelet heartbeats
  kLaneControl = 7,   // global: creations, scheduler ticks, watch delivery
};

enum class WorkKind : std::uint8_t {
  kCreate = 0,
  kToken = 1,
  kKernel = 2,
  kNvml = 3,
  kComplete = 4,
  kHeartbeat = 5,
  kCrash = 6,
  kRecover = 7,
};

struct Work {
  WorkKind kind;
  std::uint32_t a = 0;  // pod uid or node id
};

enum class MsgKind : std::uint8_t {
  kBind = 0,        // global -> node: a=uid, b=node
  kBindReject = 1,  // node -> global: a=uid, b=node (node was down)
  kPodExit = 2,     // node -> global: a=uid, b=(node<<1)|ok
  kNodeDown = 3,    // node -> global: a=node
  kNodeUp = 4,      // node -> global: a=node
  kHeartbeat = 5,   // node -> global: a=node
};

struct Msg {
  MsgKind kind;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
};

bool MsgLess(const Msg& x, const Msg& y) {
  if (x.kind != y.kind) return x.kind < y.kind;
  if (x.a != y.a) return x.a < y.a;
  return x.b < y.b;
}

bool WorkLess(const Work& x, const Work& y) {
  if (x.kind != y.kind) return x.kind < y.kind;
  return x.a < y.a;
}

// Store-visible pod lifecycle (the global-shard mirror of truth).
enum class PodState : std::uint8_t {
  kPending = 0,
  kScheduled = 1,
  kDone = 2,
  kFailed = 3,
};

struct StoreRec {
  PodState state = PodState::kPending;
  std::uint32_t node = 0xffffffff;
  std::uint64_t version = 0;
  Time created{0};
  Time scheduled{0};
  Time finished{0};
  Time last_mutated{0};
  std::uint32_t attempts = 0;
};

struct WatchEv {
  std::uint64_t version;
  std::uint32_t uid;
  PodState state;
  std::uint32_t node;
};

// ---------------------------------------------------------------------------
// Engine facade: the model runs unmodified on either engine; only event
// placement differs. Shard indices are ignored by the single engine.
class EngineFacade {
 public:
  virtual ~EngineFacade() = default;
  virtual void At(int shard, Time t, sim::EventCallback fn) = 0;
  virtual Time Now(int shard) const = 0;
  virtual void RunUntil(Time t) = 0;
  virtual std::uint64_t engine_events() const = 0;
  virtual std::uint64_t windows() const { return 0; }
  virtual std::uint64_t cross_shard_sends() const { return 0; }
  virtual std::uint64_t lookahead_violations() const { return 0; }
  virtual Status CapacityStatus() const = 0;
};

class SingleEngine final : public EngineFacade {
 public:
  void At(int, Time t, sim::EventCallback fn) override {
    sim_.ScheduleAt(t, std::move(fn));
  }
  Time Now(int) const override { return sim_.Now(); }
  void RunUntil(Time t) override { sim_.RunUntil(t); }
  std::uint64_t engine_events() const override {
    return sim_.lifetime_events();
  }
  Status CapacityStatus() const override { return sim_.CapacityStatus(); }

 private:
  sim::Simulation sim_;
};

class ShardedEngine final : public EngineFacade {
 public:
  explicit ShardedEngine(sim::ShardedConfig cfg) : sharded_(cfg) {}
  void At(int shard, Time t, sim::EventCallback fn) override {
    sharded_.ScheduleAt(shard, t, std::move(fn));
  }
  Time Now(int shard) const override { return sharded_.Now(shard); }
  void RunUntil(Time t) override { sharded_.RunUntil(t); }
  std::uint64_t engine_events() const override {
    return sharded_.lifetime_events();
  }
  std::uint64_t windows() const override { return sharded_.windows(); }
  std::uint64_t cross_shard_sends() const override {
    return sharded_.cross_shard_sends();
  }
  std::uint64_t lookahead_violations() const override {
    return sharded_.lookahead_violations();
  }
  Status CapacityStatus() const override { return sharded_.CapacityStatus(); }

 private:
  ShardedSimulation sharded_;
};

// Hot per-shard accumulators, cache-line separated: node shards write them
// concurrently under threaded drains.
struct alignas(64) ShardStats {
  std::uint64_t works = 0;
  std::uint64_t msgs = 0;
  std::uint64_t token_grants = 0;
  std::uint64_t kernel_bursts = 0;
  std::uint64_t nvml_samples = 0;
  std::uint64_t heartbeats = 0;
  std::uint64_t completions = 0;
  std::uint64_t crash_kills = 0;
  std::uint64_t hostile_fences = 0;
  std::uint64_t fenced_bursts = 0;
  // Order-insensitive trace digest: commutative sum + xor of entry hashes,
  // so engine tie-breaking order cannot affect it, but any changed /
  // missing / duplicated entry does.
  std::uint64_t trace_sum = 0;
  std::uint64_t trace_xor = 0;
  std::uint64_t trace_count = 0;
};

std::int64_t CeilDiv(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

// ---------------------------------------------------------------------------
class ClusterModel {
 public:
  ClusterModel(const ScaleConfig& cfg, EngineFacade* engine, bool calendar,
               bool batched_watch)
      : cfg_(cfg),
        engine_(engine),
        calendar_mode_(calendar),
        batched_watch_(batched_watch),
        w_(cfg.window.count()) {
    assert(w_ >= 8);
    slots_per_node_ = cfg_.gpu_slots_per_node > 0
                          ? cfg_.gpu_slots_per_node
                          : std::max<int>(1, 2 * cfg_.sharepods / cfg_.nodes);
    shard_count_ = cfg_.node_shards + 1;
    max_uids_ = static_cast<std::uint32_t>(
        cfg_.sharepods * 3 + cfg_.nodes + 1024);

    // uid- and node-indexed state. Preallocated once: vectors must never
    // reallocate mid-run (node shards hold references concurrently).
    store_.resize(max_uids_);
    mirror_version_.assign(max_uids_, 0);
    mirror_state_.assign(max_uids_, PodState::kPending);
    alive_.assign(max_uids_, 0);
    token_fenced_.assign(max_uids_, 0);
    hostile_grants_.assign(max_uids_, 0);
    node_shard_.resize(cfg_.nodes);
    node_up_.assign(cfg_.nodes, 1);
    node_sched_.assign(cfg_.nodes, 1);
    auth_load_.assign(cfg_.nodes, 0);
    node_load_.assign(cfg_.nodes, 0);
    last_heartbeat_.assign(cfg_.nodes, Time{0});
    resident_.resize(cfg_.nodes);
    snapshot_.assign(cfg_.nodes, 0);

    stats_.resize(shard_count_);
    inbox_.resize(shard_count_);
    drain_armed_.assign(shard_count_, 0);
    calendar_.resize(shard_count_);
    if (cfg_.capture_traces) trace_text_.resize(shard_count_);

    // Deterministic shard assignment: seeded hash of the node index — never
    // pointer values or container order (satellite fix; keeps
    // BENCH_scale.json byte-reproducible across runs and platforms).
    for (int n = 0; n < cfg_.nodes; ++n) {
      node_shard_[n] = ShardForIndex(cfg_.seed, n, cfg_.node_shards);
    }
  }

  void Setup() {
    // Initial sharePods: created on the global shard, staggered across the
    // control lane of the first second's windows.
    const std::int64_t create_slots = std::max<std::int64_t>(
        1, Seconds(1).count() / w_);
    for (int i = 0; i < cfg_.sharepods; ++i) {
      const std::uint32_t uid = next_uid_++;
      const Time t{Duration{(i % create_slots) * w_ + kLaneControl}};
      Post(ShardedSimulation::kGlobalShard, t, Work{WorkKind::kCreate, uid});
    }
    // Per-node periodic instruments.
    for (std::uint32_t n = 0; n < static_cast<std::uint32_t>(cfg_.nodes);
         ++n) {
      const int shard = node_shard_[n];
      Post(shard, FirstOnGrid(Time{0}, Phase(0xA11Au, n, cfg_.nvml_period),
                              cfg_.nvml_period, kLaneNvml),
           Work{WorkKind::kNvml, n});
      Post(shard, FirstOnGrid(Time{0}, Phase(0xBEA7u, n, cfg_.heartbeat),
                              cfg_.heartbeat, kLaneHeartbeat),
           Work{WorkKind::kHeartbeat, n});
    }
    // Chaos: pre-armed crash/recover pairs on deterministic victims.
    std::set<std::uint32_t> victims;
    std::uint64_t draw = 0;
    while (static_cast<int>(victims.size()) < cfg_.crash_nodes &&
           static_cast<int>(victims.size()) < cfg_.nodes) {
      victims.insert(static_cast<std::uint32_t>(
          Draw(0xC4A5Bu, draw++) % cfg_.nodes));
    }
    int i = 0;
    for (const std::uint32_t n : victims) {
      const Time down = AlignDown(cfg_.crash_at + cfg_.crash_stagger * i);
      const Time up = AlignDown(down + cfg_.crash_downtime);
      Post(node_shard_[n], down + Duration{kLaneMsg},
           Work{WorkKind::kCrash, n});
      Post(node_shard_[n], up + Duration{kLaneMsg},
           Work{WorkKind::kRecover, n});
      ++i;
    }
    // DevMgr informer crash + resync.
    for (int c = 0; c < cfg_.devmgr_crashes; ++c) {
      const Time down{AlignDown(cfg_.devmgr_crash_at + cfg_.window * c) +
                      Duration{kLaneControl}};
      const Time up{AlignDown(Time{down.count() - kLaneControl} +
                              cfg_.devmgr_resync_after) +
                    Duration{kLaneControl}};
      engine_->At(ShardedSimulation::kGlobalShard, down, [this] {
        devmgr_subscribed_ = false;
      });
      engine_->At(ShardedSimulation::kGlobalShard, up, [this] {
        devmgr_subscribed_ = true;
        ++devmgr_resyncs_;
        // Informer relist: replay current store state as Added events at
        // the current versions. Already-applied versions are skipped —
        // that idempotence is the no-duplicate property under test.
        for (std::uint32_t uid = 1; uid < next_uid_; ++uid) {
          const StoreRec& r = store_[uid];
          ApplyMirror(WatchEv{r.version, uid, r.state, r.node});
        }
      });
    }
  }

  ScaleResult Finish(double wall_seconds) {
    ScaleResult out;
    out.shards = cfg_.node_shards;
    out.useful_events = 0;
    for (const ShardStats& s : stats_) {
      out.useful_events += s.works + s.msgs;
      out.token_grants += s.token_grants;
      out.kernel_bursts += s.kernel_bursts;
      out.nvml_samples += s.nvml_samples;
      out.heartbeats += s.heartbeats;
      out.crash_kills += s.crash_kills;
      out.hostile_fenced += s.hostile_fences;
      out.fenced_bursts += s.fenced_bursts;
    }
    out.useful_events += watch_deliveries_;
    out.engine_events = engine_->engine_events();
    out.wall_seconds = wall_seconds;
    out.events_per_sec =
        wall_seconds > 0 ? static_cast<double>(out.useful_events) /
                               wall_seconds
                         : 0;
    out.scheduled = scheduled_;
    out.occ_conflicts = occ_conflicts_;
    out.bind_rejects = bind_rejects_;
    out.snapshot_refreshes = snapshot_refreshes_;
    out.sched_failures = sched_failures_;
    out.created = created_;
    out.completed = completed_ok_;
    out.failed = failed_;
    out.watch_events = watch_events_;
    out.watch_deliveries = watch_deliveries_;
    out.watch_fanout_events = watch_fanout_events_;
    out.watch_fanout_unbatched = watch_deliveries_;
    out.devmgr_missed_deliveries = devmgr_missed_;
    out.devmgr_resyncs = devmgr_resyncs_;
    out.devmgr_stale_skips = devmgr_stale_skips_;
    out.watch_order_violations = watch_order_violations_;
    out.windows = engine_->windows();
    out.cross_shard_sends = engine_->cross_shard_sends();
    out.lookahead_violations = engine_->lookahead_violations();

    // Scheduler latency percentiles (creation -> placement commit).
    auto pct = [this](double p) -> double {
      if (sched_latency_us_.empty()) return 0;
      std::vector<std::int64_t> v = sched_latency_us_;
      const std::size_t idx = static_cast<std::size_t>(
          p * static_cast<double>(v.size() - 1));
      std::nth_element(v.begin(), v.begin() + idx, v.end());
      return static_cast<double>(v[idx]) / 1000.0;
    };
    out.sched_p50_ms = pct(0.50);
    out.sched_p99_ms = pct(0.99);

    // Mirror divergence: after resync the DevMgr view must equal the store
    // — any lost or duplicated watch event shows up here. Mutations so
    // close to the horizon that their delivery was still in flight when
    // the run was cut are excluded (the horizon is a measurement artifact,
    // not a lost event).
    const Time in_flight_after =
        cfg_.duration - cfg_.api_latency - cfg_.window - Duration{8};
    for (std::uint32_t uid = 1; uid < next_uid_; ++uid) {
      if (store_[uid].last_mutated >= in_flight_after) continue;
      if (mirror_state_[uid] != store_[uid].state ||
          mirror_version_[uid] != store_[uid].version) {
        ++out.devmgr_mirror_divergence;
      }
    }

    // State digest: canonical walk of the final store + authoritative loads
    // + counters. Engine-order independent by construction (sorted walk).
    std::uint64_t d = SplitMix64(cfg_.seed ^ 0xD16E57ull);
    auto mix = [&d](std::uint64_t x) { d = SplitMix64(d ^ x); };
    mix(next_uid_);
    for (std::uint32_t uid = 1; uid < next_uid_; ++uid) {
      const StoreRec& r = store_[uid];
      mix(static_cast<std::uint64_t>(r.state) | (std::uint64_t{r.node} << 8));
      mix(r.version);
      mix(static_cast<std::uint64_t>(r.created.count()));
      mix(static_cast<std::uint64_t>(r.scheduled.count()));
      mix(static_cast<std::uint64_t>(r.finished.count()));
    }
    for (int n = 0; n < cfg_.nodes; ++n) {
      mix(static_cast<std::uint64_t>(auth_load_[n]) |
          (std::uint64_t{node_sched_[n]} << 32) |
          (std::uint64_t{node_up_[n]} << 33));
      mix(static_cast<std::uint64_t>(last_heartbeat_[n].count()));
    }
    mix(scheduled_);
    mix(occ_conflicts_);
    mix(bind_rejects_);
    mix(completed_ok_);
    mix(failed_);
    mix(watch_events_);
    out.state_digest = d;

    // Trace digest: the per-shard accumulators are commutative over
    // individual trace entries, so summing them across shards before the
    // final mix makes the digest independent of the shard partition too —
    // the same physics under 1, 4 or 16 shards digests identically.
    std::uint64_t sum = 0, xr = 0, count = 0;
    for (int s = 0; s < shard_count_; ++s) {
      sum += stats_[s].trace_sum;
      xr ^= stats_[s].trace_xor;
      count += stats_[s].trace_count;
    }
    std::uint64_t td = SplitMix64(cfg_.seed ^ 0x7AACEull);
    td = SplitMix64(td ^ sum);
    td = SplitMix64(td ^ xr);
    td = SplitMix64(td ^ count);
    out.trace_digest = td;

    if (cfg_.capture_traces) {
      out.shard_traces.resize(shard_count_);
      for (int s = 0; s < shard_count_; ++s) {
        std::sort(trace_text_[s].begin(), trace_text_[s].end());
        std::string joined;
        for (const std::string& line : trace_text_[s]) {
          joined += line;
          joined += '\n';
        }
        out.shard_traces[s] = std::move(joined);
      }
    }
    return out;
  }

 private:
  // --- deterministic draws (stateless: pure functions of seed + tags) ----
  std::uint64_t Draw(std::uint64_t tag, std::uint64_t x) const {
    return SplitMix64(SplitMix64(cfg_.seed ^ tag) ^ x);
  }
  /// Phase (in whole windows) of a periodic activity for entity `x`.
  std::int64_t Phase(std::uint64_t tag, std::uint64_t x,
                     Duration period) const {
    return static_cast<std::int64_t>(
        Draw(tag, x) % static_cast<std::uint64_t>(period.count() / w_));
  }

  /// Whether the pod models an adversarial tenant (revocation-ignoring).
  /// A pure function of the uid so every engine kind agrees without state.
  bool IsHostile(std::uint32_t uid) const {
    return cfg_.hostile_every > 0 &&
           uid % static_cast<std::uint32_t>(cfg_.hostile_every) == 0;
  }

  Time AlignDown(Time t) const { return Time{Duration{(t.count() / w_) * w_}}; }
  /// Next window boundary strictly after t.
  Time NextWindow(Time t) const {
    return Time{Duration{(t.count() / w_ + 1) * w_}};
  }
  /// First time strictly after `now` of the form
  /// (phase + k * period/w) * w + lane.
  Time FirstOnGrid(Time now, std::int64_t phase_windows, Duration period,
                   std::int64_t lane) const {
    const std::int64_t first = phase_windows * w_ + lane;
    if (now.count() < first) return Time{Duration{first}};
    const std::int64_t k =
        CeilDiv(now.count() - first + 1, period.count());
    return Time{Duration{first + k * period.count()}};
  }

  // --- posting ------------------------------------------------------------
  /// Schedules a unit of model work. Baseline mode: one engine event per
  /// work. Calendar mode: works land in a per-shard per-time bucket; the
  /// first arms ONE engine event, the drain runs the bucket in canonical
  /// order (same-time works commute by the lane discipline, so this order
  /// is immaterial to state — sorting just makes it manifestly so).
  void Post(int shard, Time t, Work w) {
    if (!calendar_mode_) {
      engine_->At(shard, t, [this, shard, w] { RunWork(shard, w); });
      return;
    }
    auto [it, fresh] = calendar_[shard].try_emplace(t);
    it->second.push_back(w);
    if (fresh) {
      engine_->At(shard, t, [this, shard, t] { DrainBucket(shard, t); });
    }
  }

  void DrainBucket(int shard, Time t) {
    auto node = calendar_[shard].extract(t);
    if (node.empty()) return;
    std::vector<Work>& works = node.mapped();
    std::sort(works.begin(), works.end(), WorkLess);
    for (const Work& w : works) RunWork(shard, w);
  }

  /// Cross-shard message: fires on the next window boundary at or after
  /// now + api_latency (lane 0), is appended to the target's inbox, and is
  /// processed by the drain tick 1 µs later — after every same-window
  /// arrival, in canonical (not arrival) order.
  void Send(int from_shard, int to_shard, Msg m) {
    const Time now = NowOf(from_shard);
    const Time fire = NextWindow(now + cfg_.api_latency - cfg_.window);
    engine_->At(to_shard, fire, [this, to_shard, m] {
      inbox_[to_shard].push_back(m);
      if (!drain_armed_[to_shard]) {
        drain_armed_[to_shard] = 1;
        const Time at = NowOf(to_shard) + Duration{kLaneDrain};
        engine_->At(to_shard, at, [this, to_shard] { DrainInbox(to_shard); });
      }
    });
  }

  Time NowOf(int shard) const { return engine_->Now(shard); }

  void DrainInbox(int shard) {
    drain_armed_[shard] = 0;
    std::vector<Msg> msgs = std::move(inbox_[shard]);
    inbox_[shard].clear();
    std::sort(msgs.begin(), msgs.end(), MsgLess);
    for (const Msg& m : msgs) {
      ++stats_[shard].msgs;
      if (shard == ShardedSimulation::kGlobalShard) {
        HandleGlobalMsg(m);
      } else {
        HandleNodeMsg(shard, m);
      }
    }
  }

  // --- work execution -------------------------------------------------------
  void RunWork(int shard, Work w);
  void HandleGlobalMsg(const Msg& m);
  void HandleNodeMsg(int shard, const Msg& m);
  std::uint32_t PodNode(std::uint32_t uid) const;

  void Trace(int shard, char kind, Time t, std::uint64_t a, std::uint64_t b) {
    ShardStats& s = stats_[shard];
    std::uint64_t h = SplitMix64(
        (static_cast<std::uint64_t>(kind) << 56) ^
        static_cast<std::uint64_t>(t.count()));
    h = SplitMix64(h ^ (a << 1) ^ (b << 33));
    s.trace_sum += h;
    s.trace_xor ^= h;
    ++s.trace_count;
    if (cfg_.capture_traces) {
      char buf[96];
      std::snprintf(buf, sizeof(buf), "t=%012lld %c a=%llu b=%llu",
                    static_cast<long long>(t.count()), kind,
                    static_cast<unsigned long long>(a),
                    static_cast<unsigned long long>(b));
      trace_text_[shard].push_back(buf);
    }
  }

  // --- global-shard store + watch -------------------------------------------
  void StoreMutate(std::uint32_t uid, PodState state, std::uint32_t node,
                   Time now) {
    StoreRec& r = store_[uid];
    r.state = state;
    r.node = node;
    r.version = ++store_version_;
    r.last_mutated = now;
    ++watch_events_;
    const WatchEv ev{r.version, uid, state, node};
    const Time at = NextWindow(now + cfg_.api_latency - cfg_.window) +
                    Duration{kLaneControl};
    for (int sub = 0; sub < kSubscribers; ++sub) {
      ++watch_deliveries_;
      if (batched_watch_) {
        auto [it, fresh] = watch_pending_[sub].try_emplace(at);
        it->second.push_back(ev);
        if (fresh) {
          ++watch_fanout_events_;
          engine_->At(ShardedSimulation::kGlobalShard, at,
                      [this, sub, at] { DeliverBatch(sub, at); });
        }
      } else {
        ++watch_fanout_events_;
        engine_->At(ShardedSimulation::kGlobalShard, at,
                    [this, sub, ev] { DeliverOne(sub, ev); });
      }
    }
  }

  void DeliverBatch(int sub, Time at) {
    auto node = watch_pending_[sub].extract(at);
    if (node.empty()) return;
    std::uint64_t last_version = 0;
    for (const WatchEv& ev : node.mapped()) {
      // Resource-version ordering within a batch: enqueue order is store
      // mutation order, so versions must be strictly increasing.
      if (ev.version <= last_version) ++watch_order_violations_;
      last_version = ev.version;
      DeliverOne(sub, ev);
    }
  }

  void DeliverOne(int sub, const WatchEv& ev) {
    if (sub == kSubSched) {
      OnSchedEvent(ev);
    } else {
      if (!devmgr_subscribed_) {
        ++devmgr_missed_;
        return;
      }
      ApplyMirror(ev);
    }
  }

  void ApplyMirror(const WatchEv& ev) {
    if (ev.version <= mirror_version_[ev.uid]) {
      ++devmgr_stale_skips_;  // resync replay of an already-applied version
      return;
    }
    mirror_version_[ev.uid] = ev.version;
    mirror_state_[ev.uid] = ev.state;
  }

  // --- scheduler (global shard) ----------------------------------------------
  void OnSchedEvent(const WatchEv& ev) {
    if (ev.state != PodState::kPending) return;
    sched_pending_.push_back(ev.uid);
    ArmSchedTick();
  }

  void ArmSchedTick() {
    if (sched_tick_armed_) return;
    sched_tick_armed_ = true;
    const Time now = NowOf(ShardedSimulation::kGlobalShard);
    const Time at = NextWindow(now) + Duration{kLaneControl};
    engine_->At(ShardedSimulation::kGlobalShard, at,
                [this, at] { SchedTick(at); });
  }

  void SchedTick(Time now) {
    sched_tick_armed_ = false;
    // Snapshot-based scheduling: one consistent copy of the per-node loads
    // per tick; placement probes read the snapshot, the commit validates
    // against the authoritative table (validate-on-commit — a stale winner
    // is a counted conflict, never a wrong placement).
    snapshot_ = auth_load_;
    ++snapshot_refreshes_;
    std::vector<std::uint32_t> batch = std::move(sched_pending_);
    sched_pending_.clear();
    for (const std::uint32_t uid : batch) ScheduleOne(uid, now);
    if (!sched_pending_.empty()) ArmSchedTick();
  }

  void ScheduleOne(std::uint32_t uid, Time now) {
    StoreRec& r = store_[uid];
    if (r.state != PodState::kPending) return;
    if (r.attempts >= kMaxAttempts) {
      ++sched_failures_;
      StoreMutate(uid, PodState::kFailed, 0xffffffff, now);
      return;
    }
    // Power-of-two-choices against the snapshot.
    const std::uint64_t att = r.attempts++;
    const std::uint32_t n1 = static_cast<std::uint32_t>(
        Draw(0x9B0BEull, (std::uint64_t{uid} << 20) ^ (att * 2)) % cfg_.nodes);
    const std::uint32_t n2 = static_cast<std::uint32_t>(
        Draw(0x9B0BEull, (std::uint64_t{uid} << 20) ^ (att * 2 + 1)) %
        cfg_.nodes);
    std::uint32_t pick = snapshot_[n1] <= snapshot_[n2] ? n1 : n2;
    for (int probe = 0; probe < 2; ++probe) {
      // Validate-on-commit against the authoritative table.
      if (node_sched_[pick] && auth_load_[pick] < slots_per_node_) {
        ++auth_load_[pick];
        ++snapshot_[pick];
        r.scheduled = now;
        sched_latency_us_.push_back((now - r.created).count());
        ++scheduled_;
        StoreMutate(uid, PodState::kScheduled, pick, now);
        Trace(ShardedSimulation::kGlobalShard, 'P', now, uid, pick);
        Send(ShardedSimulation::kGlobalShard, node_shard_[pick],
             Msg{MsgKind::kBind, uid, pick});
        return;
      }
      ++occ_conflicts_;
      pick = pick == n1 ? n2 : n1;
    }
    // No capacity this tick: park for the next one.
    sched_pending_.push_back(uid);
  }

  void CreatePod(std::uint32_t uid, Time now) {
    ++created_;
    StoreRec& r = store_[uid];
    r.created = now;
    StoreMutate(uid, PodState::kPending, 0xffffffff, now);
  }

  // --- configuration + state ---------------------------------------------
  static constexpr int kSubSched = 0;
  static constexpr int kSubDevMgr = 1;
  static constexpr int kSubscribers = 2;
  static constexpr std::uint32_t kMaxAttempts = 64;

  const ScaleConfig cfg_;
  EngineFacade* engine_;
  const bool calendar_mode_;
  const bool batched_watch_;
  const std::int64_t w_;
  int shard_count_;
  int slots_per_node_;
  std::uint32_t max_uids_;

  // Global-shard state.
  std::uint32_t next_uid_ = 1;
  std::uint64_t store_version_ = 0;
  std::vector<StoreRec> store_;
  std::vector<std::uint64_t> mirror_version_;
  std::vector<PodState> mirror_state_;
  bool devmgr_subscribed_ = true;
  std::map<Time, std::vector<WatchEv>> watch_pending_[kSubscribers];
  std::vector<std::uint32_t> sched_pending_;
  bool sched_tick_armed_ = false;
  std::vector<std::int32_t> auth_load_;
  std::vector<std::int32_t> snapshot_;
  std::vector<std::uint8_t> node_sched_;
  std::vector<Time> last_heartbeat_;
  std::vector<std::int64_t> sched_latency_us_;

  // Node-shard state (indexed by node / uid; each entry touched only by its
  // owner shard).
  std::vector<int> node_shard_;
  std::vector<std::uint8_t> node_up_;
  std::vector<std::int32_t> node_load_;
  std::vector<std::uint8_t> alive_;
  std::vector<std::uint8_t> token_fenced_;
  std::vector<std::uint16_t> hostile_grants_;
  std::vector<std::set<std::uint32_t>> resident_;

  // Per-shard infrastructure.
  std::vector<ShardStats> stats_;
  std::vector<std::vector<Msg>> inbox_;
  std::vector<std::uint8_t> drain_armed_;
  std::vector<std::map<Time, std::vector<Work>>> calendar_;
  std::vector<std::vector<std::string>> trace_text_;

  // Counters (global-shard only).
  std::uint64_t created_ = 0;
  std::uint64_t scheduled_ = 0;
  std::uint64_t completed_ok_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t occ_conflicts_ = 0;
  std::uint64_t bind_rejects_ = 0;
  std::uint64_t snapshot_refreshes_ = 0;
  std::uint64_t sched_failures_ = 0;
  std::uint64_t watch_events_ = 0;
  std::uint64_t watch_deliveries_ = 0;
  std::uint64_t watch_fanout_events_ = 0;
  std::uint64_t watch_order_violations_ = 0;
  std::uint64_t devmgr_missed_ = 0;
  std::uint64_t devmgr_resyncs_ = 0;
  std::uint64_t devmgr_stale_skips_ = 0;
};

// --- work execution -------------------------------------------------------

void ClusterModel::RunWork(int shard, Work w) {
  ShardStats& s = stats_[shard];
  ++s.works;
  const Time now = NowOf(shard);
  switch (w.kind) {
    case WorkKind::kCreate: {
      CreatePod(w.a, now);
      break;
    }
    case WorkKind::kToken: {
      const std::uint32_t uid = w.a;
      if (!alive_[uid]) break;  // stale timer of an exited pod: fizzles
      if (token_fenced_[uid]) break;  // gate closed: renewal refused
      if (IsHostile(uid) &&
          hostile_grants_[uid] >= cfg_.hostile_fence_after) {
        // The over-budget tenant asks again; the backend fences its gate
        // instead of granting. No further grants — but the tenant keeps
        // bursting (see kKernel), which is exactly the containment shape
        // the full vgpu stack enforces.
        token_fenced_[uid] = 1;
        ++s.hostile_fences;
        Trace(shard, 'G', now, uid, store_[uid].node);
        break;
      }
      ++s.token_grants;
      if (IsHostile(uid)) ++hostile_grants_[uid];
      Trace(shard, 'T', now, uid, store_[uid].node);
      Post(shard, now + cfg_.token_quota, w);
      break;
    }
    case WorkKind::kKernel: {
      const std::uint32_t uid = w.a;
      if (!alive_[uid]) break;
      if (token_fenced_[uid]) {
        // Revocation-ignoring flood: rejected at the gate, never useful
        // work, but still traced — hostile schedules are part of the
        // byte-equality surface.
        ++s.fenced_bursts;
        Trace(shard, 'F', now, uid, store_[uid].node);
        Post(shard, now + cfg_.kernel_period, w);
        break;
      }
      ++s.kernel_bursts;
      Trace(shard, 'K', now, uid, store_[uid].node);
      Post(shard, now + cfg_.kernel_period, w);
      break;
    }
    case WorkKind::kNvml: {
      const std::uint32_t node = w.a;
      if (node_up_[node]) {
        ++s.nvml_samples;
        Trace(shard, 'N', now, node,
              static_cast<std::uint64_t>(node_load_[node]));
      }
      Post(shard, now + cfg_.nvml_period, w);
      break;
    }
    case WorkKind::kHeartbeat: {
      const std::uint32_t node = w.a;
      if (node_up_[node]) {
        ++s.heartbeats;
        Send(shard, ShardedSimulation::kGlobalShard,
             Msg{MsgKind::kHeartbeat, node});
      }
      Post(shard, now + cfg_.heartbeat, w);
      break;
    }
    case WorkKind::kComplete: {
      const std::uint32_t uid = w.a;
      if (!alive_[uid]) break;  // killed by a crash before finishing
      alive_[uid] = 0;
      const std::uint32_t node = PodNode(uid);
      resident_[node].erase(uid);
      --node_load_[node];
      ++s.completions;
      Trace(shard, 'C', now, uid, node);
      Send(shard, ShardedSimulation::kGlobalShard,
           Msg{MsgKind::kPodExit, uid, (node << 1) | 1u});
      break;
    }
    case WorkKind::kCrash: {
      const std::uint32_t node = w.a;
      node_up_[node] = 0;
      Trace(shard, 'D', now, node, resident_[node].size());
      // std::set iterates in uid order — deterministic kill sequence.
      for (const std::uint32_t uid : resident_[node]) {
        alive_[uid] = 0;
        ++s.crash_kills;
        Trace(shard, 'X', now, uid, node);
        Send(shard, ShardedSimulation::kGlobalShard,
             Msg{MsgKind::kPodExit, uid, (node << 1) | 0u});
      }
      resident_[node].clear();
      node_load_[node] = 0;
      Send(shard, ShardedSimulation::kGlobalShard,
           Msg{MsgKind::kNodeDown, node});
      break;
    }
    case WorkKind::kRecover: {
      const std::uint32_t node = w.a;
      node_up_[node] = 1;
      Trace(shard, 'U', now, node, 0);
      Send(shard, ShardedSimulation::kGlobalShard,
           Msg{MsgKind::kNodeUp, node});
      break;
    }
  }
}

std::uint32_t ClusterModel::PodNode(std::uint32_t uid) const {
  // The node a pod was bound to. Written by the global shard before the
  // bind message is sent, read by the owning node shard after it arrives —
  // the window barrier between the two is the synchronization.
  return store_[uid].node;
}

void ClusterModel::HandleNodeMsg(int shard, const Msg& m) {
  const Time now = NowOf(shard);
  switch (m.kind) {
    case MsgKind::kBind: {
      const std::uint32_t uid = m.a;
      const std::uint32_t node = m.b;
      if (!node_up_[node]) {
        Send(shard, ShardedSimulation::kGlobalShard,
             Msg{MsgKind::kBindReject, uid, node});
        break;
      }
      alive_[uid] = 1;
      resident_[node].insert(uid);
      ++node_load_[node];
      Trace(shard, 'S', now, uid, node);
      // Periodic lanes, phases drawn statelessly from the pod's stream.
      Post(shard,
           FirstOnGrid(now, Phase(0x70CEBull, uid, cfg_.token_quota),
                       cfg_.token_quota, kLaneToken),
           Work{WorkKind::kToken, uid});
      Post(shard,
           FirstOnGrid(now, Phase(0x6E12Full, uid, cfg_.kernel_period),
                       cfg_.kernel_period, kLaneKernel),
           Work{WorkKind::kKernel, uid});
      // Lifetime: uniform on the window grid with the configured mean.
      const std::int64_t min_w =
          std::max<std::int64_t>(1, cfg_.min_lifetime.count() / w_);
      const std::int64_t mean_w =
          std::max(min_w + 1, cfg_.mean_lifetime.count() / w_);
      const std::int64_t span_w = 2 * (mean_w - min_w);
      const std::int64_t life_w =
          min_w + static_cast<std::int64_t>(
                      Draw(0x11FE7ull, uid) % static_cast<std::uint64_t>(
                                                  std::max<std::int64_t>(
                                                      1, span_w)));
      Post(shard,
           Time{Duration{(AlignDown(now).count() / w_ + life_w) * w_ +
                         kLaneComplete}},
           Work{WorkKind::kComplete, uid});
      break;
    }
    default:
      // Node shards receive only binds.
      break;
  }
}

void ClusterModel::HandleGlobalMsg(const Msg& m) {
  const Time now = NowOf(ShardedSimulation::kGlobalShard);
  switch (m.kind) {
    case MsgKind::kPodExit: {
      const std::uint32_t uid = m.a;
      const std::uint32_t node = m.b >> 1;
      const bool ok = (m.b & 1u) != 0;
      --auth_load_[node];
      if (ok) {
        ++completed_ok_;
        StoreMutate(uid, PodState::kDone, node, now);
      } else {
        ++failed_;
        StoreMutate(uid, PodState::kFailed, node, now);
      }
      store_[uid].finished = now;
      // Churn: every exit is replaced by a fresh sharePod, keeping the
      // live-pod target constant for the soak's duration.
      if (next_uid_ < max_uids_) {
        CreatePod(next_uid_++, now);
      }
      break;
    }
    case MsgKind::kBindReject: {
      ++bind_rejects_;
      --auth_load_[m.b];
      // Re-pend through the store: the scheduler learns about the bounced
      // pod through its own watch, exactly like a fresh creation.
      StoreMutate(m.a, PodState::kPending, 0xffffffff, now);
      break;
    }
    case MsgKind::kNodeDown:
      node_sched_[m.a] = 0;
      break;
    case MsgKind::kNodeUp:
      node_sched_[m.a] = 1;
      break;
    case MsgKind::kHeartbeat:
      last_heartbeat_[m.a] = now;
      break;
    default:
      break;
  }
}

}  // namespace

const char* EngineKindName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kSingleBaseline:
      return "single-baseline";
    case EngineKind::kSingleBatched:
      return "single-batched";
    case EngineKind::kShardedSerial:
      return "sharded-serial";
    case EngineKind::kShardedParallel:
      return "sharded-parallel";
  }
  return "unknown";
}

ScaleResult RunScaleModel(const ScaleConfig& config, EngineKind kind) {
  std::unique_ptr<EngineFacade> engine;
  const bool sharded = kind == EngineKind::kShardedSerial ||
                       kind == EngineKind::kShardedParallel;
  if (sharded) {
    sim::ShardedConfig sc;
    sc.node_shards = config.node_shards;
    sc.threads = kind == EngineKind::kShardedParallel ? config.threads : 0;
    sc.window = config.window;
    engine = std::make_unique<ShardedEngine>(sc);
  } else {
    engine = std::make_unique<SingleEngine>();
  }
  // The scale-path event economy (work calendars + batched watch fan-out)
  // rides every kind except the baseline, which keeps the pre-sharding
  // one-event-per-activity idiom as the oracle and throughput reference.
  const bool economy = kind != EngineKind::kSingleBaseline;
  ClusterModel model(config, engine.get(), /*calendar=*/economy,
                     /*batched_watch=*/economy);
  model.Setup();
  const auto wall_start = std::chrono::steady_clock::now();
  engine->RunUntil(config.duration);
  const auto wall_end = std::chrono::steady_clock::now();
  const double wall =
      std::chrono::duration<double>(wall_end - wall_start).count();
  ScaleResult out = model.Finish(wall);
  out.engine = EngineKindName(kind);
  out.threads = sharded && kind == EngineKind::kShardedParallel
                    ? config.threads
                    : 0;
  if (!sharded) out.shards = 0;
  Status cap = engine->CapacityStatus();
  assert(cap.ok());
  (void)cap;
  return out;
}

}  // namespace ks::scale
