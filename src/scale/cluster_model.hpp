#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "sim/sharded.hpp"

namespace ks::scale {

/// Which engine drives the model.
enum class EngineKind {
  /// One sim::Simulation, every activity is its own engine event, watch
  /// fan-out unbatched — the pre-sharding idiom, kept as the byte-equality
  /// oracle and the throughput baseline.
  kSingleBaseline,
  /// One sim::Simulation but with the scale-path event economy (per-shard
  /// work calendars + batched watch fan-out). Isolates the economy win
  /// from the sharding win.
  kSingleBatched,
  /// ShardedSimulation, serial drain (threads = 0).
  kShardedSerial,
  /// ShardedSimulation with worker threads.
  kShardedParallel,
};

/// Configuration for the pod-churn soak. Every period and phase is
/// quantized to the synchronization window, and every activity class fires
/// on its own microsecond lane within the window (see cluster_model.cpp) —
/// the discipline that makes all four engine kinds byte-equal.
struct ScaleConfig {
  int nodes = 10000;
  int sharepods = 100000;  // live target; churn replaces completed pods
  int gpu_slots_per_node = 0;  // 0: derived as 2 * sharepods / nodes

  int node_shards = 16;
  int threads = 0;  // kShardedParallel only
  Duration window = Millis(1);
  Duration duration = Seconds(5);
  std::uint64_t seed = 1;

  /// Model timings (all multiples of `window`).
  Duration api_latency = Millis(1);      // cross-shard lookahead anchor
  Duration token_quota = Millis(100);    // token-renewal grant period
  Duration kernel_period = Millis(40);   // kernel burst period per pod
  Duration nvml_period = Seconds(1);     // per-node NVML sampling
  Duration heartbeat = Seconds(10);      // kubelet heartbeat
  Duration mean_lifetime = Seconds(20);  // pod lifetime (uniform, mean this)
  Duration min_lifetime = Millis(200);

  /// Chaos: hard node crashes (every resident pod dies, capacity returns
  /// through the exit/reject message paths) and a DevMgr informer crash +
  /// resync (the lost-watch-events recovery the batched fan-out must
  /// survive without losing or duplicating an event).
  int crash_nodes = 0;
  Duration crash_at = Seconds(2);
  Duration crash_stagger = Millis(500);
  Duration crash_downtime = Seconds(2);
  int devmgr_crashes = 0;
  Duration devmgr_crash_at = Seconds(3);
  Duration devmgr_resync_after = Millis(500);

  /// Adversarial tenants: every `hostile_every`-th pod (by uid) ignores
  /// token revocation. After `hostile_fence_after` grants its gate fences —
  /// no further grants — and every subsequent kernel burst is rejected at
  /// the gate (counted + traced as a fenced burst, never as useful work).
  /// 0 disables. The hostile schedule rides the same window/lane grid as
  /// polite work, so it is part of the byte-equality differential surface.
  int hostile_every = 0;
  int hostile_fence_after = 3;

  /// Record full per-shard trace dumps (canonically sorted) for the
  /// differential tests. Off for benches — the order-insensitive digest is
  /// always computed.
  bool capture_traces = false;
};

/// Everything the soak reports. Digest + trace fields are the differential
/// surface: equal across all EngineKinds for the same config.
struct ScaleResult {
  std::string engine;
  int shards = 0;
  int threads = 0;

  // Throughput.
  std::uint64_t useful_events = 0;  // model actions: works + msgs + deliveries
  std::uint64_t engine_events = 0;  // Simulation lifetime events consumed
  double wall_seconds = 0;
  double events_per_sec = 0;  // useful_events / wall_seconds

  // Scheduler.
  double sched_p50_ms = 0;
  double sched_p99_ms = 0;
  std::uint64_t scheduled = 0;
  std::uint64_t occ_conflicts = 0;   // snapshot winner failed validate-commit
  std::uint64_t bind_rejects = 0;    // bind reached a crashed node
  std::uint64_t snapshot_refreshes = 0;
  std::uint64_t sched_failures = 0;  // attempts exhausted

  // Churn.
  std::uint64_t created = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t crash_kills = 0;

  // Workload volume.
  std::uint64_t token_grants = 0;
  std::uint64_t kernel_bursts = 0;
  std::uint64_t nvml_samples = 0;
  std::uint64_t heartbeats = 0;

  // Adversarial tenants (zero when hostile_every == 0).
  std::uint64_t hostile_fenced = 0;  // gates closed on over-budget tenants
  std::uint64_t fenced_bursts = 0;   // bursts rejected at closed gates

  // Watch fan-out economy.
  std::uint64_t watch_events = 0;            // store mutations notified
  std::uint64_t watch_deliveries = 0;        // (event, subscriber) pairs
  std::uint64_t watch_fanout_events = 0;     // engine events actually armed
  std::uint64_t watch_fanout_unbatched = 0;  // what unbatched would have armed
  std::uint64_t devmgr_missed_deliveries = 0;
  std::uint64_t devmgr_resyncs = 0;
  std::uint64_t devmgr_stale_skips = 0;  // resync replays already applied
  std::uint64_t devmgr_mirror_divergence = 0;  // MUST be 0: lost/dup events
  std::uint64_t watch_order_violations = 0;    // MUST be 0: rv order in batch

  // Sharded-engine internals (zero for single-engine kinds).
  std::uint64_t windows = 0;
  std::uint64_t cross_shard_sends = 0;
  std::uint64_t lookahead_violations = 0;  // MUST be 0

  // Differential surface.
  std::uint64_t state_digest = 0;  // canonical final store/pool/mirror state
  std::uint64_t trace_digest = 0;  // per-shard order-insensitive, combined
  std::vector<std::string> shard_traces;  // capture_traces only
};

/// Runs the pod-churn soak on the requested engine. Deterministic: the
/// result (except wall_seconds / events_per_sec) is a pure function of
/// (config, kind-independent model semantics) — byte-equal across kinds.
ScaleResult RunScaleModel(const ScaleConfig& config, EngineKind kind);

const char* EngineKindName(EngineKind kind);

}  // namespace ks::scale
