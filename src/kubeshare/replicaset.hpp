#pragma once

#include <functional>
#include <set>
#include <string>

#include "kubeshare/kubeshare.hpp"

namespace ks::kubeshare {

/// A ReplicationController-style operator over sharePods, demonstrating
/// the paper's compatibility claim (§4.6): "any higher level controllers
/// (e.g. replication controller, deployment controller) can seamlessly
/// integrate or adapt to our solution by requesting a sharePod instead of
/// the native pod."
///
/// The controller keeps `replicas` non-terminal sharePods stamped from a
/// template alive: replacements are created when replicas finish, fail or
/// are deleted; surplus replicas are deleted on scale-down. Reconciliation
/// is edge-triggered from the sharePod watch, like any other controller in
/// this codebase.
class SharePodReplicaSet {
 public:
  struct Spec {
    std::string name;          // also the label value stamped on replicas
    int replicas = 1;
    SharePodSpec template_spec;
  };

  /// Invoked with each new replica's name just before its sharePod is
  /// created — the hook where the application layer registers the job that
  /// will run in the replica (WorkloadHost::ExpectJob).
  using ReplicaHook = std::function<void(const std::string& replica_name)>;

  SharePodReplicaSet(KubeShare* kubeshare, Spec spec);

  Status Start();
  void SetReplicaHook(ReplicaHook hook) { hook_ = std::move(hook); }

  /// Changes the desired replica count and reconciles.
  void Scale(int replicas);

  int desired() const { return spec_.replicas; }
  std::size_t live() const { return live_.size(); }
  std::uint64_t created_total() const { return created_total_; }

  /// Label key stamped on owned sharePods.
  static constexpr const char* kOwnerLabel = "kubeshare.io/replicaset";

 private:
  void OnSharePodEvent(const k8s::WatchEvent<SharePod>& event);
  void Reconcile();
  std::string NextName();

  KubeShare* kubeshare_;
  Spec spec_;
  ReplicaHook hook_;
  std::set<std::string> live_;  // non-terminal owned replicas
  std::uint64_t next_index_ = 0;
  std::uint64_t created_total_ = 0;
  bool started_ = false;
};

}  // namespace ks::kubeshare
