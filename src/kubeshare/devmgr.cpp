#include "kubeshare/devmgr.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <vector>

#include "common/log.hpp"
#include "k8s/device_plugin.hpp"
#include "k8s/resources.hpp"

namespace ks::kubeshare {

namespace {
std::string FormatFraction(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6f", v);
  return buf;
}

/// Recovers the N out of counter-derived names ("kubeshare-vgpu-N",
/// "vgpu-N") so a rebuilt controller can resume its counters past every id
/// already persisted at the apiserver. 0 when the tail is not a number.
std::uint64_t TrailingNumber(const std::string& name) {
  const auto pos = name.find_last_of('-');
  if (pos == std::string::npos || pos + 1 >= name.size()) return 0;
  char* end = nullptr;
  const unsigned long long n =
      std::strtoull(name.c_str() + pos + 1, &end, 10);
  if (end == nullptr || *end != '\0') return 0;
  return static_cast<std::uint64_t>(n);
}
}  // namespace

KubeShareDevMgr::KubeShareDevMgr(k8s::Cluster* cluster,
                                 k8s::ObjectStore<SharePod>* sharepods,
                                 VgpuPool* pool, KubeShareConfig config)
    : cluster_(cluster),
      sharepods_(sharepods),
      pool_(pool),
      config_(config) {
  assert(cluster_ != nullptr && sharepods_ != nullptr && pool_ != nullptr);
}

Status KubeShareDevMgr::Start() {
  if (started_) return FailedPreconditionError("KubeShare-DevMgr started");
  started_ = true;
  sharepod_watch_ = sharepods_->Watch(
      [this](const k8s::WatchEvent<SharePod>& ev) { OnSharePodEvent(ev); });
  pod_watch_ = cluster_->api().pods().Watch(
      [this](const k8s::WatchEvent<k8s::Pod>& ev) { OnPodEvent(ev); });
  if (config_.reconcile_period.count() > 0) ScheduleReconcile();
  return Status::Ok();
}

void KubeShareDevMgr::Crash() {
  if (!started_) return;
  started_ = false;
  ++crashes_;
  ++epoch_;
  sharepods_->Unwatch(sharepod_watch_);
  cluster_->api().pods().Unwatch(pod_watch_);
  sharepod_watch_ = 0;
  pod_watch_ = 0;
  records_.clear();
  acquisition_pods_.clear();
  acquisition_owner_.clear();
  workload_owner_.clear();
  pool_->Clear();
}

Status KubeShareDevMgr::Restart() {
  if (started_) return FailedPreconditionError("KubeShare-DevMgr running");
  KS_RETURN_IF_ERROR(RebuildFromApiServer());
  return Start();
}

void KubeShareDevMgr::SetFencingTokenProvider(
    std::function<std::uint64_t()> provider) {
  token_provider_ = std::move(provider);
}

std::uint64_t KubeShareDevMgr::Token() const {
  return token_provider_ ? token_provider_() : 0;
}

void KubeShareDevMgr::ScheduleReconcile() {
  // Perpetual resync loop — callers running with reconcile enabled drive
  // the simulation with RunUntil (Run() would never drain the queue).
  const std::uint64_t epoch = epoch_;
  cluster_->sim().ScheduleAfter(config_.reconcile_period, [this, epoch] {
    if (epoch != epoch_) return;  // DevMgr crashed meanwhile
    ReconcileOnce();
    ScheduleReconcile();
  });
}

void KubeShareDevMgr::ScheduleLaunch(const std::string& name) {
  // The vGPU info query (GPUID -> UUID translation through the apiserver)
  // before the workload pod can be created.
  const std::uint64_t epoch = epoch_;
  cluster_->sim().ScheduleAfter(config_.devmgr_query, [this, name, epoch] {
    if (epoch != epoch_) return;  // DevMgr crashed meanwhile
    LaunchWorkloadPod(name);
  });
}

Status KubeShareDevMgr::RebuildFromApiServer() {
  ++rebuilds_;
  rebuilt_vgpus_ = 0;
  rebuilt_records_ = 0;

  // Phase 1: acquisition pods. Each non-terminal one holds a physical GPU
  // for the GPUID in its label; its node selector names the node and — once
  // Running — its effective environment carries the device UUID the plugin
  // injected. That triple is the entire GPUID<->UUID mapping, durable at
  // the apiserver, which is what makes the in-memory pool reconstructible.
  for (const k8s::Pod& pod : cluster_->api().pods().List()) {
    auto role = pod.meta.labels.find(kRoleLabel);
    if (role == pod.meta.labels.end() || role->second != kRoleAcquisition) {
      continue;
    }
    next_acq_ = std::max(next_acq_, TrailingNumber(pod.meta.name) + 1);
    if (pod.terminal()) continue;  // acquisition failed; nothing to hold
    auto idl = pod.meta.labels.find(kGpuIdLabel);
    if (idl == pod.meta.labels.end()) continue;
    const GpuId id(idl->second);
    std::string node = pod.status.node_name;
    if (auto sel = pod.spec.node_selector.find("kubernetes.io/hostname");
        sel != pod.spec.node_selector.end()) {
      node = sel->second;
    }
    if (!pool_->Contains(id)) {
      KS_RETURN_IF_ERROR(pool_->CreateWithId(id, node).status());
      ++rebuilt_vgpus_;
    }
    pool_->EnsureNextIdAtLeast(TrailingNumber(id.value()) + 1);
    acquisition_pods_[id] = pod.meta.name;
    acquisition_owner_[pod.meta.name] = id;
    VgpuInfo* dev = pool_->Find(id);
    if (dev != nullptr && !dev->uuid.has_value() &&
        pod.status.phase == k8s::PodPhase::kRunning) {
      auto env = pod.status.effective_env.find(k8s::kNvidiaVisibleDevices);
      if (env != pod.status.effective_env.end()) {
        KS_RETURN_IF_ERROR(pool_->Activate(id, GpuUuid(env->second)));
      }
    }
  }

  // Phase 2: scheduled sharePods, in List()'s name order (deterministic
  // rebuild order). Re-attach each to its recorded device and re-adopt the
  // workload pod when one is live; otherwise resume the lifecycle where it
  // stopped — query+launch if the UUID is known, (re-)acquire if not.
  for (const SharePod& sp : sharepods_->List()) {
    if (sp.terminal() || !sp.scheduled()) continue;
    const std::string name = sp.meta.name;
    if (records_.count(name) > 0) continue;
    if (!pool_->Contains(sp.spec.gpu_id)) {
      if (sp.spec.node_name.empty()) {
        Requeue(name, "rebuild: scheduled without a node");
        continue;
      }
      // No acquisition pod survived for this GPUID (crash hit between the
      // spec write and EnsureVgpu); re-create the entry, the acquisition
      // restarts below.
      KS_RETURN_IF_ERROR(
          pool_->CreateWithId(sp.spec.gpu_id, sp.spec.node_name).status());
      pool_->EnsureNextIdAtLeast(TrailingNumber(sp.spec.gpu_id.value()) + 1);
      ++rebuilt_vgpus_;
    }
    if (pool_->DeviceOf(name) != sp.spec.gpu_id) {
      // Pinning the recorded slice_offset keeps the rebuilt occupancy
      // byte-equal to the pre-crash pool regardless of reattach order.
      const Status attached =
          pool_->Attach(sp.spec.gpu_id, name, sp.spec.gpu, sp.spec.locality,
                        sp.spec.slice_offset);
      if (!attached.ok()) {
        // The placement no longer fits (the scheduler over-committed the
        // device while the pool was dark). Infrastructure's fault, not the
        // job's: send it back through KubeShare-Sched.
        Requeue(name, "rebuild: " + attached.message());
        continue;
      }
    }

    SharePodRec rec;
    rec.device = sp.spec.gpu_id;
    const std::string& workload = sp.status.workload_pod;
    bool launch = false;
    if (!workload.empty() && cluster_->api().pods().Contains(workload)) {
      rec.workload_pod = workload;
      workload_owner_[workload] = name;
      auto pod = cluster_->api().pods().Get(workload);
      // Terminal pods adopt as kRunning; the reconcile pass repairs them
      // into Finish/Requeue exactly as it repairs a dropped watch event.
      rec.state = pod->status.phase == k8s::PodPhase::kPending
                      ? RecState::kLaunching
                      : RecState::kRunning;
    } else {
      VgpuInfo* dev = pool_->Find(sp.spec.gpu_id);
      if (dev != nullptr && dev->uuid.has_value()) {
        rec.state = RecState::kLaunching;
        launch = true;
      } else {
        rec.state = RecState::kAwaitingVgpu;
      }
    }
    records_.emplace(name, rec);
    ++rebuilt_records_;
    if (launch) ScheduleLaunch(name);
    EnsureVgpu(sp.spec.gpu_id);  // no-op when already acquiring/active
  }

  // Phase 3: orphaned workload pods — live containers holding a device
  // with no non-terminal sharePod owning them (the sharePod finished or
  // was deleted during the downtime). Stop them; nothing will.
  std::vector<std::string> orphans;
  // Read-only scan (deletes happen after), so ForEach avoids List()'s full
  // copy of every pod. Phases 1/2 mutate stores mid-loop and keep List().
  cluster_->api().pods().ForEach([&](const k8s::Pod& pod) {
    auto role = pod.meta.labels.find(kRoleLabel);
    if (role == pod.meta.labels.end() || role->second != kRoleWorkload) {
      return;
    }
    if (pod.terminal()) return;
    if (workload_owner_.count(pod.meta.name) > 0) return;
    orphans.push_back(pod.meta.name);
  });
  for (const std::string& name : orphans) {
    (void)cluster_->api().pods().Delete(name, 0, Token());
  }

  // Phase 4: vGPUs nobody is attached to follow the pool policy, exactly
  // as if their last detach had just happened — on-demand releases them
  // (and their acquisition pods) back to Kubernetes, reservation keeps
  // them warm. No orphaned vGPU survives the rebuild unaccounted.
  std::vector<GpuId> idle(pool_->idle_devices().begin(),
                          pool_->idle_devices().end());
  for (const GpuId& id : idle) MaybeReleaseVgpu(id);

  cluster_->api().events().Record(
      "kubeshare-devmgr", "devmgr", "Rebuilt",
      std::to_string(rebuilt_vgpus_) + " vGPUs, " +
          std::to_string(rebuilt_records_) + " records from apiserver");
  return pool_->CheckIndexInvariants();
}

void KubeShareDevMgr::OnSharePodEvent(const k8s::WatchEvent<SharePod>& event) {
  if (event.type == k8s::WatchEventType::kDeleted) {
    TearDown(event.object.meta.name);
    return;
  }
  // Reconcile against the store's *current* state, not the event payload:
  // watch events are delivered with a delay, so a stale Modified event can
  // trail a teardown — acting on its snapshot would resurrect a finished
  // sharePod (re-acquiring a GPU for nobody).
  auto pod = sharepods_->Get(event.object.meta.name);
  if (!pod.ok() || pod->terminal() || !pod->scheduled()) return;
  if (records_.count(pod->meta.name) > 0) return;  // already handled
  HandleScheduled(*pod);
}

Status KubeShareDevMgr::EnsureAttached(const SharePod& pod) {
  if (pool_->DeviceOf(pod.meta.name) == pod.spec.gpu_id) return Status::Ok();
  // User-pinned GPUID: the vGPU may not exist yet. Creating it requires
  // knowing the node; that is part of the first-class contract (Script 1
  // carries both GPUID and nodeName).
  if (!pool_->Contains(pod.spec.gpu_id)) {
    if (pod.spec.node_name.empty()) {
      return InvalidArgumentError(
          "pinned GPUID with no nodeName: " + pod.spec.gpu_id.value());
    }
    KS_RETURN_IF_ERROR(
        pool_->CreateWithId(pod.spec.gpu_id, pod.spec.node_name).status());
  }
  return pool_->Attach(pod.spec.gpu_id, pod.meta.name, pod.spec.gpu,
                       pod.spec.locality, pod.spec.slice_offset);
}

void KubeShareDevMgr::HandleScheduled(const SharePod& pod) {
  const std::string name = pod.meta.name;
  const Status attached = EnsureAttached(pod);
  if (!attached.ok()) {
    SetSharePodPhase(name, SharePodPhase::kRejected, attached.ToString());
    return;
  }

  SharePodRec rec;
  rec.device = pod.spec.gpu_id;
  records_.emplace(name, rec);

  VgpuInfo* dev = pool_->Find(pod.spec.gpu_id);
  assert(dev != nullptr);
  if (dev->uuid.has_value()) {
    records_.at(name).state = RecState::kLaunching;
    ScheduleLaunch(name);
  } else {
    EnsureVgpu(pod.spec.gpu_id);  // workload launches on activation
  }
  SetSharePodPhase(name, SharePodPhase::kScheduled);
}

void KubeShareDevMgr::EnsureVgpu(const GpuId& id) {
  if (acquisition_pods_.count(id) > 0) return;  // already acquiring
  VgpuInfo* dev = pool_->Find(id);
  if (dev == nullptr || dev->uuid.has_value()) return;

  // "The sole purpose of this pod is to allocate the GPU without running
  // any workload" (§4.4).
  k8s::Pod acq;
  acq.meta.name = "kubeshare-vgpu-" + std::to_string(next_acq_++);
  acq.meta.labels[kManagedLabel] = "true";
  acq.meta.labels[kRoleLabel] = kRoleAcquisition;
  // The GPUID this pod holds a physical GPU for — the durable half of the
  // pool's GPUID<->UUID mapping that RebuildFromApiServer reads back.
  acq.meta.labels[kGpuIdLabel] = id.value();
  acq.spec.image = "kubeshare/pause:latest";
  acq.spec.requests.Set(k8s::kResourceNvidiaGpu, 1);
  acq.spec.node_selector["kubernetes.io/hostname"] = dev->node;
  const Status created = cluster_->api().pods().Create(acq, Token());
  if (!created.ok()) {
    KS_LOG(kError) << "acquisition pod create failed: " << created;
    return;
  }
  ++vgpus_created_;
  acquisition_pods_[id] = acq.meta.name;
  acquisition_owner_[acq.meta.name] = id;
  cluster_->api().events().Record("kubeshare-devmgr", "vgpu/" + id.value(),
                                  "Acquiring", "via pod " + acq.meta.name +
                                                   " on " + dev->node);
}

Expected<GpuId> KubeShareDevMgr::ReserveVgpu(const std::string& node) {
  VgpuInfo& dev = pool_->Create(node);
  EnsureVgpu(dev.id);
  return dev.id;
}

void KubeShareDevMgr::ActivateVgpuFromPod(const GpuId& id,
                                          const k8s::Pod& pod) {
  VgpuInfo* dev = pool_->Find(id);
  if (dev == nullptr || dev->uuid.has_value()) return;
  auto env = pod.status.effective_env.find(k8s::kNvidiaVisibleDevices);
  if (env == pod.status.effective_env.end()) {
    KS_LOG(kError) << "acquisition pod has no visible devices";
    return;
  }
  (void)pool_->Activate(id, GpuUuid(env->second));
  cluster_->api().events().Record("kubeshare-devmgr", "vgpu/" + id.value(),
                                  "Activated", "UUID " + env->second);
  // Launch every sharePod that was waiting on this vGPU.
  for (const std::string& name : pool_->Find(id)->attached) {
    auto rit = records_.find(name);
    if (rit == records_.end() ||
        rit->second.state != RecState::kAwaitingVgpu) {
      continue;
    }
    rit->second.state = RecState::kLaunching;
    ScheduleLaunch(name);
  }
  // An idle reservation stays idle until someone attaches.
}

void KubeShareDevMgr::LaunchWorkloadPod(const std::string& sharepod_name) {
  auto it = records_.find(sharepod_name);
  if (it == records_.end()) return;  // torn down meanwhile
  auto sp = sharepods_->Get(sharepod_name);
  if (!sp.ok() || sp->terminal()) return;
  VgpuInfo* dev = pool_->Find(it->second.device);
  if (dev == nullptr || !dev->uuid.has_value()) return;

  k8s::Pod pod;
  pod.meta.name = sharepod_name + "-pod";
  pod.meta.labels[kManagedLabel] = "true";
  pod.meta.labels[kRoleLabel] = kRoleWorkload;
  pod.spec = sp->spec.pod;
  // The sharePod must not also request whole GPUs from the plugin.
  pod.spec.requests.Set(k8s::kResourceNvidiaGpu, 0);
  // Explicit binding: DevMgr chooses the node (and thereby the exact GPU),
  // bypassing kube-scheduler (§4.4).
  pod.status.node_name = dev->node;
  // Device attachment + device-library configuration via environment.
  pod.spec.env[k8s::kNvidiaVisibleDevices] = dev->uuid->value();
  pod.spec.env[kEnvSharePod] = sharepod_name;
  pod.spec.env[kEnvGpuId] = dev->id.value();
  pod.spec.env[kEnvGpuRequest] = FormatFraction(sp->spec.gpu.gpu_request);
  pod.spec.env[kEnvGpuLimit] = FormatFraction(sp->spec.gpu.gpu_limit);
  pod.spec.env[kEnvGpuMem] = FormatFraction(sp->spec.gpu.gpu_mem);
  if (sp->spec.gpu.slice_groups > 0) {
    pod.spec.env[kEnvSliceGroups] =
        std::to_string(sp->spec.gpu.slice_groups);
    if (auto slice = pool_->SliceOf(sharepod_name)) {
      pod.meta.labels[kSliceLabel] = std::to_string(slice->first) + "-" +
                                     std::to_string(slice->second);
    }
  }

  const Status created = cluster_->api().pods().Create(pod, Token());
  if (!created.ok()) {
    SetSharePodPhase(sharepod_name, SharePodPhase::kFailed,
                     "workload pod creation failed: " + created.ToString());
    return;
  }
  ++workload_launched_;
  it->second.state = RecState::kLaunching;
  it->second.workload_pod = pod.meta.name;
  workload_owner_[pod.meta.name] = sharepod_name;

  (void)k8s::RetryOnConflict(
      *sharepods_, sharepod_name,
      [&](SharePod& sp) {
        sp.status.workload_pod = pod.meta.name;
        return Status::Ok();
      },
      Token());
}

void KubeShareDevMgr::OnPodEvent(const k8s::WatchEvent<k8s::Pod>& event) {
  const k8s::Pod& pod = event.object;

  // --- Acquisition pods ------------------------------------------------
  if (auto ait = acquisition_owner_.find(pod.meta.name);
      ait != acquisition_owner_.end()) {
    const GpuId vgpu = ait->second;
    if (event.type == k8s::WatchEventType::kDeleted) {
      // A release we initiated erases the owner map first; reaching here
      // means someone ELSE deleted the pod that holds this vGPU's physical
      // GPU. The binding (UUID) is gone — fail the attached sharePods and
      // drop the vGPU rather than run containers on a device Kubernetes
      // may hand to someone else.
      acquisition_owner_.erase(ait);
      acquisition_pods_.erase(vgpu);
      cluster_->api().events().Record(
          "kubeshare-devmgr", "vgpu/" + vgpu.value(), "Lost",
          "acquisition pod deleted externally");
      VgpuInfo* dev = pool_->Find(vgpu);
      if (dev != nullptr) {
        const auto attached = dev->attached;  // copy: FinishSharePod mutates
        for (const std::string& name : attached) {
          FinishSharePod(name, SharePodPhase::kFailed,
                         "vGPU lost: acquisition pod deleted");
        }
      }
      if (pool_->Contains(vgpu)) {
        (void)pool_->Remove(vgpu);
        ++vgpus_released_;
      }
      return;
    }
    if (pod.status.phase == k8s::PodPhase::kRunning) {
      ActivateVgpuFromPod(vgpu, pod);
    } else if (pod.status.phase == k8s::PodPhase::kFailed) {
      if (config_.requeue_lost_workloads &&
          (pod.status.message == "NodeLost" ||
           pod.status.message == "OOMKilled")) {
        // Infrastructure killed the acquisition pod (node loss, kernel
        // OOM); the GPUID<->UUID binding died with it. Recoverable:
        // reclaim the vGPU and let the sharePods be placed elsewhere.
        ReclaimVgpu(vgpu, "acquisition pod killed: " + pod.status.message);
        return;
      }
      // The node had no free GPU after all; fail the attached sharePods.
      VgpuInfo* dev = pool_->Find(vgpu);
      if (dev != nullptr) {
        const auto attached = dev->attached;  // copy: FinishSharePod mutates
        for (const std::string& name : attached) {
          FinishSharePod(name, SharePodPhase::kFailed,
                         "vGPU acquisition failed");
        }
      }
    }
    return;
  }

  // --- Workload pods ---------------------------------------------------
  auto wit = workload_owner_.find(pod.meta.name);
  if (wit == workload_owner_.end()) return;
  const std::string sharepod_name = wit->second;
  if (event.type == k8s::WatchEventType::kDeleted) return;

  switch (pod.status.phase) {
    case k8s::PodPhase::kRunning: {
      auto rit = records_.find(sharepod_name);
      if (rit != records_.end() && rit->second.state == RecState::kLaunching) {
        rit->second.state = RecState::kRunning;
        (void)k8s::RetryOnConflict(
            *sharepods_, sharepod_name,
            [&](SharePod& sp) {
              if (sp.terminal()) {
                return FailedPreconditionError("sharePod terminal");
              }
              sp.status.phase = SharePodPhase::kRunning;
              sp.status.running_time = cluster_->sim().Now();
              return Status::Ok();
            },
            Token());
      }
      return;
    }
    case k8s::PodPhase::kSucceeded:
      FinishSharePod(sharepod_name, SharePodPhase::kSucceeded);
      return;
    case k8s::PodPhase::kFailed:
      OnWorkloadPodFailed(sharepod_name, pod.status.message);
      return;
    case k8s::PodPhase::kPending:
      return;
  }
}

void KubeShareDevMgr::OnWorkloadPodFailed(const std::string& sharepod_name,
                                          const std::string& message) {
  // Infrastructure kills are recoverable — the job did nothing wrong; send
  // it back through KubeShare-Sched. Application failures stay failures.
  if (config_.requeue_lost_workloads &&
      (message == "NodeLost" || message == "OOMKilled")) {
    Requeue(sharepod_name, message);
    return;
  }
  FinishSharePod(sharepod_name, SharePodPhase::kFailed, message);
}

void KubeShareDevMgr::Requeue(const std::string& name,
                              const std::string& reason) {
  auto it = records_.find(name);
  if (it != records_.end()) {
    const std::string workload = it->second.workload_pod;
    records_.erase(it);
    if (!workload.empty()) {
      workload_owner_.erase(workload);
      // Delete the stale (terminal) pod object so the relaunch can reuse
      // the workload pod name.
      if (cluster_->api().pods().Contains(workload)) {
        (void)cluster_->api().pods().Delete(workload, 0, Token());
      }
    }
  }
  if (auto device = pool_->Detach(name); device.ok()) MaybeReleaseVgpu(*device);
  const Status s = k8s::RetryOnConflict(
      *sharepods_, name,
      [&](SharePod& sp) {
        if (sp.terminal()) return FailedPreconditionError("sharePod terminal");
        sp.spec.gpu_id = GpuId{};
        sp.spec.node_name.clear();
        sp.status.phase = SharePodPhase::kPending;
        sp.status.workload_pod.clear();
        sp.status.message = reason;
        return Status::Ok();
      },
      Token());
  if (!s.ok()) return;
  ++sharepods_requeued_;
  cluster_->api().events().Record("kubeshare-devmgr", "sharepod/" + name,
                                  "Requeued", reason);
}

void KubeShareDevMgr::ReclaimVgpu(const GpuId& id, const std::string& detail) {
  VgpuInfo* dev = pool_->Find(id);
  if (dev == nullptr) return;
  cluster_->api().events().Record("kubeshare-devmgr", "vgpu/" + id.value(),
                                  "Reclaimed", detail);
  const auto attached = dev->attached;  // copy: Requeue mutates via Detach
  for (const std::string& name : attached) Requeue(name, "NodeLost");
  if (auto ait = acquisition_pods_.find(id); ait != acquisition_pods_.end()) {
    acquisition_owner_.erase(ait->second);
    if (cluster_->api().pods().Contains(ait->second)) {
      (void)cluster_->api().pods().Delete(ait->second, 0, Token());
    }
    acquisition_pods_.erase(ait);
  }
  // Requeue -> Detach may already have released the now-idle vGPU (pool
  // policy); remove it ourselves otherwise. Either way it left the pool.
  if (pool_->Contains(id)) {
    (void)pool_->Remove(id);
    ++vgpus_released_;
  }
  ++vgpus_reclaimed_;
}

void KubeShareDevMgr::ReconcileOnce() {
  ++reconcile_passes_;
  // Pass 1: vGPUs stranded on NotReady nodes — the physical binding is
  // dead even if no pod event ever said so.
  std::vector<GpuId> dead;
  for (const VgpuInfo* dev : pool_->List()) {
    auto node = cluster_->api().nodes().Get(dev->node);
    if (node.ok() && !node->ready) dead.push_back(dev->id);
  }
  for (const GpuId& id : dead) ReclaimVgpu(id, "reconcile: node NotReady");

  // Pass 2: records whose workload pod reached a terminal phase without
  // the watch delivering it (dropped event). Sorted snapshot — records_
  // is an unordered_map and the repairs are observable.
  std::vector<std::string> names;
  names.reserve(records_.size());
  for (const auto& [name, rec] : records_) names.push_back(name);
  std::sort(names.begin(), names.end());
  for (const std::string& name : names) {
    auto rit = records_.find(name);
    if (rit == records_.end()) continue;  // repaired by an earlier entry
    const std::string workload = rit->second.workload_pod;
    if (workload.empty()) continue;
    auto pod = cluster_->api().pods().Get(workload);
    if (!pod.ok()) continue;
    if (pod->status.phase == k8s::PodPhase::kSucceeded) {
      FinishSharePod(name, SharePodPhase::kSucceeded);
    } else if (pod->status.phase == k8s::PodPhase::kFailed) {
      OnWorkloadPodFailed(name, pod->status.message);
    }
  }

  // Pass 3: vGPUs whose acquisition pod reached Running without the watch
  // delivering it — the store holds the UUID but the pool entry is still
  // pending, stranding every attached sharePod. acquisition_pods_ is an
  // ordered map, so the repair order is deterministic.
  for (const auto& [id, pod_name] : acquisition_pods_) {
    const VgpuInfo* dev = pool_->Find(id);
    if (dev == nullptr || dev->uuid.has_value()) continue;
    auto pod = cluster_->api().pods().Get(pod_name);
    if (pod.ok() && pod->status.phase == k8s::PodPhase::kRunning) {
      ActivateVgpuFromPod(id, *pod);
    }
  }

  // Pass 4: scheduled sharePods the watch never delivered (dropped Add /
  // Modified). List() is sorted by name.
  for (const SharePod& sp : sharepods_->List()) {
    if (sp.terminal() || !sp.scheduled()) continue;
    if (records_.count(sp.meta.name) > 0) continue;
    HandleScheduled(sp);
  }
}

void KubeShareDevMgr::SetSharePodPhase(const std::string& name,
                                       SharePodPhase phase,
                                       const std::string& message) {
  (void)k8s::RetryOnConflict(
      *sharepods_, name,
      [&](SharePod& sp) {
        if (sp.terminal()) return FailedPreconditionError("sharePod terminal");
        sp.status.phase = phase;
        if (!message.empty()) sp.status.message = message;
        if (phase == SharePodPhase::kRunning) {
          sp.status.running_time = cluster_->sim().Now();
        }
        if (phase == SharePodPhase::kSucceeded ||
            phase == SharePodPhase::kFailed ||
            phase == SharePodPhase::kRejected) {
          sp.status.finished_time = cluster_->sim().Now();
        }
        return Status::Ok();
      },
      Token());
}

void KubeShareDevMgr::EvictTenant(const std::string& node,
                                  const ContainerId& container,
                                  const std::string& reason) {
  k8s::Cluster::NodeHandle* handle = cluster_->FindNode(node);
  if (handle == nullptr) return;
  // workload_owner_ is an ordered map, so a (pathological) double match
  // resolves deterministically to the lexicographically-first workload pod.
  for (const auto& [workload, sharepod] : workload_owner_) {
    const auto cid = handle->runtime->ContainerIdOf(workload);
    if (!cid.has_value() || !(*cid == container)) continue;
    // Copy before FinishSharePod: its TearDown erases this workload_owner_
    // node, which would free the string `sharepod` refers into.
    const std::string victim = sharepod;
    ++tenants_evicted_;
    cluster_->api().events().Record("kubeshare-devmgr",
                                    "sharepod/" + victim, "TenantEvicted",
                                    reason);
    FinishSharePod(victim, SharePodPhase::kFailed, "Evicted: " + reason);
    return;
  }
}

void KubeShareDevMgr::FinishSharePod(const std::string& name,
                                     SharePodPhase phase,
                                     const std::string& message) {
  SetSharePodPhase(name, phase, message);
  TearDown(name);
}

void KubeShareDevMgr::TearDown(const std::string& name) {
  auto it = records_.find(name);
  if (it == records_.end()) {
    // Not yet scheduled or already cleaned; still detach any reservation.
    if (auto dev = pool_->Detach(name); dev.ok()) MaybeReleaseVgpu(*dev);
    return;
  }
  const std::string workload = it->second.workload_pod;
  records_.erase(it);
  if (!workload.empty()) {
    workload_owner_.erase(workload);
    auto pod = cluster_->api().pods().Get(workload);
    if (pod.ok() && !pod->terminal()) {
      (void)cluster_->api().pods().Delete(workload, 0, Token());
    }
  }
  auto device = pool_->Detach(name);
  if (device.ok()) MaybeReleaseVgpu(*device);
}

void KubeShareDevMgr::MaybeReleaseVgpu(const GpuId& id) {
  VgpuInfo* dev = pool_->Find(id);
  if (dev == nullptr || !dev->attached.empty()) return;
  if (config_.pool_policy == PoolPolicy::kReservation) return;  // keep idle
  if (config_.pool_policy == PoolPolicy::kHybrid) {
    // Keep up to hybrid_reserve idle vGPUs warm; release beyond that.
    int idle = 0;
    for (const VgpuInfo* d : pool_->List()) {
      if (d->state == VgpuState::kIdle) ++idle;
    }
    if (idle <= config_.hybrid_reserve) return;
  }
  // On-demand: hand the physical GPU back to Kubernetes immediately.
  auto ait = acquisition_pods_.find(id);
  if (ait != acquisition_pods_.end()) {
    acquisition_owner_.erase(ait->second);
    (void)cluster_->api().pods().Delete(ait->second, 0, Token());
    acquisition_pods_.erase(ait);
  }
  (void)pool_->Remove(id);
  ++vgpus_released_;
  cluster_->api().events().Record("kubeshare-devmgr", "vgpu/" + id.value(),
                                  "Released",
                                  "returned physical GPU to Kubernetes");
}

}  // namespace ks::kubeshare
