#include "kubeshare/devmgr.hpp"

#include <algorithm>
#include <cassert>
#include <vector>

#include "common/log.hpp"
#include "k8s/device_plugin.hpp"
#include "k8s/resources.hpp"

namespace ks::kubeshare {

namespace {
std::string FormatFraction(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6f", v);
  return buf;
}
}  // namespace

KubeShareDevMgr::KubeShareDevMgr(k8s::Cluster* cluster,
                                 k8s::ObjectStore<SharePod>* sharepods,
                                 VgpuPool* pool, KubeShareConfig config)
    : cluster_(cluster),
      sharepods_(sharepods),
      pool_(pool),
      config_(config) {
  assert(cluster_ != nullptr && sharepods_ != nullptr && pool_ != nullptr);
}

Status KubeShareDevMgr::Start() {
  if (started_) return FailedPreconditionError("KubeShare-DevMgr started");
  started_ = true;
  sharepods_->Watch(
      [this](const k8s::WatchEvent<SharePod>& ev) { OnSharePodEvent(ev); });
  cluster_->api().pods().Watch(
      [this](const k8s::WatchEvent<k8s::Pod>& ev) { OnPodEvent(ev); });
  if (config_.reconcile_period.count() > 0) ScheduleReconcile();
  return Status::Ok();
}

void KubeShareDevMgr::ScheduleReconcile() {
  // Perpetual resync loop — callers running with reconcile enabled drive
  // the simulation with RunUntil (Run() would never drain the queue).
  cluster_->sim().ScheduleAfter(config_.reconcile_period, [this] {
    ReconcileOnce();
    ScheduleReconcile();
  });
}

void KubeShareDevMgr::OnSharePodEvent(const k8s::WatchEvent<SharePod>& event) {
  if (event.type == k8s::WatchEventType::kDeleted) {
    TearDown(event.object.meta.name);
    return;
  }
  // Reconcile against the store's *current* state, not the event payload:
  // watch events are delivered with a delay, so a stale Modified event can
  // trail a teardown — acting on its snapshot would resurrect a finished
  // sharePod (re-acquiring a GPU for nobody).
  auto pod = sharepods_->Get(event.object.meta.name);
  if (!pod.ok() || pod->terminal() || !pod->scheduled()) return;
  if (records_.count(pod->meta.name) > 0) return;  // already handled
  HandleScheduled(*pod);
}

Status KubeShareDevMgr::EnsureAttached(const SharePod& pod) {
  if (pool_->DeviceOf(pod.meta.name) == pod.spec.gpu_id) return Status::Ok();
  // User-pinned GPUID: the vGPU may not exist yet. Creating it requires
  // knowing the node; that is part of the first-class contract (Script 1
  // carries both GPUID and nodeName).
  if (!pool_->Contains(pod.spec.gpu_id)) {
    if (pod.spec.node_name.empty()) {
      return InvalidArgumentError(
          "pinned GPUID with no nodeName: " + pod.spec.gpu_id.value());
    }
    KS_RETURN_IF_ERROR(
        pool_->CreateWithId(pod.spec.gpu_id, pod.spec.node_name).status());
  }
  return pool_->Attach(pod.spec.gpu_id, pod.meta.name, pod.spec.gpu,
                       pod.spec.locality);
}

void KubeShareDevMgr::HandleScheduled(const SharePod& pod) {
  const std::string name = pod.meta.name;
  const Status attached = EnsureAttached(pod);
  if (!attached.ok()) {
    SetSharePodPhase(name, SharePodPhase::kRejected, attached.ToString());
    return;
  }

  SharePodRec rec;
  rec.device = pod.spec.gpu_id;
  records_.emplace(name, rec);

  VgpuInfo* dev = pool_->Find(pod.spec.gpu_id);
  assert(dev != nullptr);
  if (dev->uuid.has_value()) {
    records_.at(name).state = RecState::kLaunching;
    // The vGPU info query (GPUID -> UUID translation through the
    // apiserver) before the workload pod can be created.
    cluster_->sim().ScheduleAfter(config_.devmgr_query, [this, name] {
      LaunchWorkloadPod(name);
    });
  } else {
    EnsureVgpu(pod.spec.gpu_id);  // workload launches on activation
  }
  SetSharePodPhase(name, SharePodPhase::kScheduled);
}

void KubeShareDevMgr::EnsureVgpu(const GpuId& id) {
  if (acquisition_pods_.count(id) > 0) return;  // already acquiring
  VgpuInfo* dev = pool_->Find(id);
  if (dev == nullptr || dev->uuid.has_value()) return;

  // "The sole purpose of this pod is to allocate the GPU without running
  // any workload" (§4.4).
  k8s::Pod acq;
  acq.meta.name = "kubeshare-vgpu-" + std::to_string(next_acq_++);
  acq.meta.labels[kManagedLabel] = "true";
  acq.meta.labels[kRoleLabel] = kRoleAcquisition;
  acq.spec.image = "kubeshare/pause:latest";
  acq.spec.requests.Set(k8s::kResourceNvidiaGpu, 1);
  acq.spec.node_selector["kubernetes.io/hostname"] = dev->node;
  const Status created = cluster_->api().pods().Create(acq);
  if (!created.ok()) {
    KS_LOG(kError) << "acquisition pod create failed: " << created;
    return;
  }
  ++vgpus_created_;
  acquisition_pods_[id] = acq.meta.name;
  acquisition_owner_[acq.meta.name] = id;
  cluster_->api().events().Record("kubeshare-devmgr", "vgpu/" + id.value(),
                                  "Acquiring", "via pod " + acq.meta.name +
                                                   " on " + dev->node);
}

Expected<GpuId> KubeShareDevMgr::ReserveVgpu(const std::string& node) {
  VgpuInfo& dev = pool_->Create(node);
  EnsureVgpu(dev.id);
  return dev.id;
}

void KubeShareDevMgr::LaunchWorkloadPod(const std::string& sharepod_name) {
  auto it = records_.find(sharepod_name);
  if (it == records_.end()) return;  // torn down meanwhile
  auto sp = sharepods_->Get(sharepod_name);
  if (!sp.ok() || sp->terminal()) return;
  VgpuInfo* dev = pool_->Find(it->second.device);
  if (dev == nullptr || !dev->uuid.has_value()) return;

  k8s::Pod pod;
  pod.meta.name = sharepod_name + "-pod";
  pod.meta.labels[kManagedLabel] = "true";
  pod.meta.labels[kRoleLabel] = kRoleWorkload;
  pod.spec = sp->spec.pod;
  // The sharePod must not also request whole GPUs from the plugin.
  pod.spec.requests.Set(k8s::kResourceNvidiaGpu, 0);
  // Explicit binding: DevMgr chooses the node (and thereby the exact GPU),
  // bypassing kube-scheduler (§4.4).
  pod.status.node_name = dev->node;
  // Device attachment + device-library configuration via environment.
  pod.spec.env[k8s::kNvidiaVisibleDevices] = dev->uuid->value();
  pod.spec.env[kEnvSharePod] = sharepod_name;
  pod.spec.env[kEnvGpuId] = dev->id.value();
  pod.spec.env[kEnvGpuRequest] = FormatFraction(sp->spec.gpu.gpu_request);
  pod.spec.env[kEnvGpuLimit] = FormatFraction(sp->spec.gpu.gpu_limit);
  pod.spec.env[kEnvGpuMem] = FormatFraction(sp->spec.gpu.gpu_mem);

  const Status created = cluster_->api().pods().Create(pod);
  if (!created.ok()) {
    SetSharePodPhase(sharepod_name, SharePodPhase::kFailed,
                     "workload pod creation failed: " + created.ToString());
    return;
  }
  ++workload_launched_;
  it->second.state = RecState::kLaunching;
  it->second.workload_pod = pod.meta.name;
  workload_owner_[pod.meta.name] = sharepod_name;

  auto sp_now = sharepods_->Get(sharepod_name);
  if (sp_now.ok()) {
    SharePod updated = *sp_now;
    updated.status.workload_pod = pod.meta.name;
    (void)sharepods_->Update(updated);
  }
}

void KubeShareDevMgr::OnPodEvent(const k8s::WatchEvent<k8s::Pod>& event) {
  const k8s::Pod& pod = event.object;

  // --- Acquisition pods ------------------------------------------------
  if (auto ait = acquisition_owner_.find(pod.meta.name);
      ait != acquisition_owner_.end()) {
    const GpuId vgpu = ait->second;
    if (event.type == k8s::WatchEventType::kDeleted) {
      // A release we initiated erases the owner map first; reaching here
      // means someone ELSE deleted the pod that holds this vGPU's physical
      // GPU. The binding (UUID) is gone — fail the attached sharePods and
      // drop the vGPU rather than run containers on a device Kubernetes
      // may hand to someone else.
      acquisition_owner_.erase(ait);
      acquisition_pods_.erase(vgpu);
      cluster_->api().events().Record(
          "kubeshare-devmgr", "vgpu/" + vgpu.value(), "Lost",
          "acquisition pod deleted externally");
      VgpuInfo* dev = pool_->Find(vgpu);
      if (dev != nullptr) {
        const auto attached = dev->attached;  // copy: FinishSharePod mutates
        for (const std::string& name : attached) {
          FinishSharePod(name, SharePodPhase::kFailed,
                         "vGPU lost: acquisition pod deleted");
        }
      }
      if (pool_->Contains(vgpu)) {
        (void)pool_->Remove(vgpu);
        ++vgpus_released_;
      }
      return;
    }
    if (pod.status.phase == k8s::PodPhase::kRunning) {
      VgpuInfo* dev = pool_->Find(vgpu);
      if (dev == nullptr || dev->uuid.has_value()) return;
      auto env = pod.status.effective_env.find(k8s::kNvidiaVisibleDevices);
      if (env == pod.status.effective_env.end()) {
        KS_LOG(kError) << "acquisition pod has no visible devices";
        return;
      }
      (void)pool_->Activate(vgpu, GpuUuid(env->second));
      cluster_->api().events().Record("kubeshare-devmgr",
                                      "vgpu/" + vgpu.value(), "Activated",
                                      "UUID " + env->second);
      // Launch every sharePod that was waiting on this vGPU.
      for (const std::string& name : pool_->Find(vgpu)->attached) {
        auto rit = records_.find(name);
        if (rit == records_.end() ||
            rit->second.state != RecState::kAwaitingVgpu) {
          continue;
        }
        rit->second.state = RecState::kLaunching;
        cluster_->sim().ScheduleAfter(config_.devmgr_query, [this, name] {
          LaunchWorkloadPod(name);
        });
      }
      // An idle reservation stays idle until someone attaches.
    } else if (pod.status.phase == k8s::PodPhase::kFailed) {
      if (config_.requeue_lost_workloads &&
          (pod.status.message == "NodeLost" ||
           pod.status.message == "OOMKilled")) {
        // Infrastructure killed the acquisition pod (node loss, kernel
        // OOM); the GPUID<->UUID binding died with it. Recoverable:
        // reclaim the vGPU and let the sharePods be placed elsewhere.
        ReclaimVgpu(vgpu, "acquisition pod killed: " + pod.status.message);
        return;
      }
      // The node had no free GPU after all; fail the attached sharePods.
      VgpuInfo* dev = pool_->Find(vgpu);
      if (dev != nullptr) {
        const auto attached = dev->attached;  // copy: FinishSharePod mutates
        for (const std::string& name : attached) {
          FinishSharePod(name, SharePodPhase::kFailed,
                         "vGPU acquisition failed");
        }
      }
    }
    return;
  }

  // --- Workload pods ---------------------------------------------------
  auto wit = workload_owner_.find(pod.meta.name);
  if (wit == workload_owner_.end()) return;
  const std::string sharepod_name = wit->second;
  if (event.type == k8s::WatchEventType::kDeleted) return;

  switch (pod.status.phase) {
    case k8s::PodPhase::kRunning: {
      auto rit = records_.find(sharepod_name);
      if (rit != records_.end() && rit->second.state == RecState::kLaunching) {
        rit->second.state = RecState::kRunning;
        auto sp = sharepods_->Get(sharepod_name);
        if (sp.ok() && !sp->terminal()) {
          SharePod updated = *sp;
          updated.status.phase = SharePodPhase::kRunning;
          updated.status.running_time = cluster_->sim().Now();
          (void)sharepods_->Update(updated);
        }
      }
      return;
    }
    case k8s::PodPhase::kSucceeded:
      FinishSharePod(sharepod_name, SharePodPhase::kSucceeded);
      return;
    case k8s::PodPhase::kFailed:
      OnWorkloadPodFailed(sharepod_name, pod.status.message);
      return;
    case k8s::PodPhase::kPending:
      return;
  }
}

void KubeShareDevMgr::OnWorkloadPodFailed(const std::string& sharepod_name,
                                          const std::string& message) {
  // Infrastructure kills are recoverable — the job did nothing wrong; send
  // it back through KubeShare-Sched. Application failures stay failures.
  if (config_.requeue_lost_workloads &&
      (message == "NodeLost" || message == "OOMKilled")) {
    Requeue(sharepod_name, message);
    return;
  }
  FinishSharePod(sharepod_name, SharePodPhase::kFailed, message);
}

void KubeShareDevMgr::Requeue(const std::string& name,
                              const std::string& reason) {
  auto it = records_.find(name);
  if (it != records_.end()) {
    const std::string workload = it->second.workload_pod;
    records_.erase(it);
    if (!workload.empty()) {
      workload_owner_.erase(workload);
      // Delete the stale (terminal) pod object so the relaunch can reuse
      // the workload pod name.
      if (cluster_->api().pods().Contains(workload)) {
        (void)cluster_->api().pods().Delete(workload);
      }
    }
  }
  if (auto device = pool_->Detach(name); device.ok()) MaybeReleaseVgpu(*device);
  auto sp = sharepods_->Get(name);
  if (!sp.ok() || sp->terminal()) return;
  SharePod updated = *sp;
  updated.spec.gpu_id = GpuId{};
  updated.spec.node_name.clear();
  updated.status.phase = SharePodPhase::kPending;
  updated.status.workload_pod.clear();
  updated.status.message = reason;
  (void)sharepods_->Update(updated);
  ++sharepods_requeued_;
  cluster_->api().events().Record("kubeshare-devmgr", "sharepod/" + name,
                                  "Requeued", reason);
}

void KubeShareDevMgr::ReclaimVgpu(const GpuId& id, const std::string& detail) {
  VgpuInfo* dev = pool_->Find(id);
  if (dev == nullptr) return;
  cluster_->api().events().Record("kubeshare-devmgr", "vgpu/" + id.value(),
                                  "Reclaimed", detail);
  const auto attached = dev->attached;  // copy: Requeue mutates via Detach
  for (const std::string& name : attached) Requeue(name, "NodeLost");
  if (auto ait = acquisition_pods_.find(id); ait != acquisition_pods_.end()) {
    acquisition_owner_.erase(ait->second);
    if (cluster_->api().pods().Contains(ait->second)) {
      (void)cluster_->api().pods().Delete(ait->second);
    }
    acquisition_pods_.erase(ait);
  }
  // Requeue -> Detach may already have released the now-idle vGPU (pool
  // policy); remove it ourselves otherwise. Either way it left the pool.
  if (pool_->Contains(id)) {
    (void)pool_->Remove(id);
    ++vgpus_released_;
  }
  ++vgpus_reclaimed_;
}

void KubeShareDevMgr::ReconcileOnce() {
  ++reconcile_passes_;
  // Pass 1: vGPUs stranded on NotReady nodes — the physical binding is
  // dead even if no pod event ever said so.
  std::vector<GpuId> dead;
  for (const VgpuInfo* dev : pool_->List()) {
    auto node = cluster_->api().nodes().Get(dev->node);
    if (node.ok() && !node->ready) dead.push_back(dev->id);
  }
  for (const GpuId& id : dead) ReclaimVgpu(id, "reconcile: node NotReady");

  // Pass 2: records whose workload pod reached a terminal phase without
  // the watch delivering it (dropped event). Sorted snapshot — records_
  // is an unordered_map and the repairs are observable.
  std::vector<std::string> names;
  names.reserve(records_.size());
  for (const auto& [name, rec] : records_) names.push_back(name);
  std::sort(names.begin(), names.end());
  for (const std::string& name : names) {
    auto rit = records_.find(name);
    if (rit == records_.end()) continue;  // repaired by an earlier entry
    const std::string workload = rit->second.workload_pod;
    if (workload.empty()) continue;
    auto pod = cluster_->api().pods().Get(workload);
    if (!pod.ok()) continue;
    if (pod->status.phase == k8s::PodPhase::kSucceeded) {
      FinishSharePod(name, SharePodPhase::kSucceeded);
    } else if (pod->status.phase == k8s::PodPhase::kFailed) {
      OnWorkloadPodFailed(name, pod->status.message);
    }
  }

  // Pass 3: scheduled sharePods the watch never delivered (dropped Add /
  // Modified). List() is sorted by name.
  for (const SharePod& sp : sharepods_->List()) {
    if (sp.terminal() || !sp.scheduled()) continue;
    if (records_.count(sp.meta.name) > 0) continue;
    HandleScheduled(sp);
  }
}

void KubeShareDevMgr::SetSharePodPhase(const std::string& name,
                                       SharePodPhase phase,
                                       const std::string& message) {
  auto sp = sharepods_->Get(name);
  if (!sp.ok()) return;
  SharePod updated = *sp;
  if (updated.terminal()) return;
  updated.status.phase = phase;
  if (!message.empty()) updated.status.message = message;
  if (phase == SharePodPhase::kRunning) {
    updated.status.running_time = cluster_->sim().Now();
  }
  if (phase == SharePodPhase::kSucceeded || phase == SharePodPhase::kFailed ||
      phase == SharePodPhase::kRejected) {
    updated.status.finished_time = cluster_->sim().Now();
  }
  (void)sharepods_->Update(updated);
}

void KubeShareDevMgr::FinishSharePod(const std::string& name,
                                     SharePodPhase phase,
                                     const std::string& message) {
  SetSharePodPhase(name, phase, message);
  TearDown(name);
}

void KubeShareDevMgr::TearDown(const std::string& name) {
  auto it = records_.find(name);
  if (it == records_.end()) {
    // Not yet scheduled or already cleaned; still detach any reservation.
    if (auto dev = pool_->Detach(name); dev.ok()) MaybeReleaseVgpu(*dev);
    return;
  }
  const std::string workload = it->second.workload_pod;
  records_.erase(it);
  if (!workload.empty()) {
    workload_owner_.erase(workload);
    auto pod = cluster_->api().pods().Get(workload);
    if (pod.ok() && !pod->terminal()) {
      (void)cluster_->api().pods().Delete(workload);
    }
  }
  auto device = pool_->Detach(name);
  if (device.ok()) MaybeReleaseVgpu(*device);
}

void KubeShareDevMgr::MaybeReleaseVgpu(const GpuId& id) {
  VgpuInfo* dev = pool_->Find(id);
  if (dev == nullptr || !dev->attached.empty()) return;
  if (config_.pool_policy == PoolPolicy::kReservation) return;  // keep idle
  if (config_.pool_policy == PoolPolicy::kHybrid) {
    // Keep up to hybrid_reserve idle vGPUs warm; release beyond that.
    int idle = 0;
    for (const VgpuInfo* d : pool_->List()) {
      if (d->state == VgpuState::kIdle) ++idle;
    }
    if (idle <= config_.hybrid_reserve) return;
  }
  // On-demand: hand the physical GPU back to Kubernetes immediately.
  auto ait = acquisition_pods_.find(id);
  if (ait != acquisition_pods_.end()) {
    acquisition_owner_.erase(ait->second);
    (void)cluster_->api().pods().Delete(ait->second);
    acquisition_pods_.erase(ait);
  }
  (void)pool_->Remove(id);
  ++vgpus_released_;
  cluster_->api().events().Record("kubeshare-devmgr", "vgpu/" + id.value(),
                                  "Released",
                                  "returned physical GPU to Kubernetes");
}

}  // namespace ks::kubeshare
