#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "k8s/cluster.hpp"
#include "k8s/leader_election.hpp"
#include "kubeshare/config.hpp"
#include "kubeshare/devmgr.hpp"
#include "kubeshare/pool.hpp"
#include "kubeshare/scheduler.hpp"
#include "kubeshare/sharepod.hpp"

namespace ks::kubeshare {

/// The framework facade: the sharePod custom resource store plus the two
/// controllers (KubeShare-Sched and KubeShare-DevMgr) installed onto an
/// existing cluster — the operator pattern of §4.6. Nothing in the cluster
/// (apiserver, kube-scheduler, kubelets) is modified; native pods keep
/// working side by side.
class KubeShare {
 public:
  explicit KubeShare(k8s::Cluster* cluster, KubeShareConfig config = {});

  Status Start();

  k8s::ObjectStore<SharePod>& sharepods() { return sharepods_; }
  const k8s::ObjectStore<SharePod>& sharepods() const { return sharepods_; }
  VgpuPool& pool() { return pool_; }
  const VgpuPool& pool() const { return pool_; }
  KubeShareSched& sched() { return *sched_; }
  KubeShareDevMgr& devmgr() { return *devmgr_; }
  const KubeShareConfig& config() const { return config_; }
  /// The control plane's leader elector; nullptr unless
  /// KubeShareConfig::enable_leader_election is set.
  k8s::LeaderElector* elector() { return elector_.get(); }

  /// Validates and submits a sharePod (the client entry point).
  Status CreateSharePod(SharePod pod);

  /// Vertical elasticity (the dynamic-adjustment direction KubeShare's
  /// successors explore): changes a sharePod's gpu_request/gpu_limit in
  /// place. The pool reservation is adjusted (growth is bounded by the
  /// device's residual capacity — no migration), and if the workload
  /// container is already running, the node's token backend applies the
  /// new spec at its next grant decision. gpu_mem cannot be resized:
  /// allocations are already placed.
  Status ResizeSharePod(const std::string& name, double gpu_request,
                        double gpu_limit);

  /// Gang admission for co-scheduled groups (e.g. the workers of one
  /// distributed training job, §4.2's affinity use case): the group is
  /// validated by a dry run of Algorithm 1 against a copy of the current
  /// pool — if any member has no feasible placement, nothing is created
  /// (all-or-nothing). On success every member is submitted; the real
  /// placements happen through the normal controller path and may differ
  /// from the dry run if the cluster changes in between (best-effort gang,
  /// like kube-scheduler coscheduling plugins).
  Status CreateSharePodGroup(std::vector<SharePod> pods);

  /// What the in-container device library needs, decoded from the
  /// environment DevMgr injected. Returns nullopt for containers that are
  /// not KubeShare workloads.
  struct Binding {
    std::string sharepod;
    GpuId gpu_id;
    vgpu::ResourceSpec spec;
  };
  static std::optional<Binding> ParseBinding(
      const std::map<std::string, std::string>& env);

 private:
  k8s::Cluster* cluster_;
  KubeShareConfig config_;
  k8s::ObjectStore<SharePod> sharepods_;
  VgpuPool pool_;
  std::unique_ptr<KubeShareSched> sched_;
  std::unique_ptr<KubeShareDevMgr> devmgr_;
  std::unique_ptr<k8s::LeaderElector> elector_;
  bool started_ = false;
};

}  // namespace ks::kubeshare
