#pragma once

namespace ks::kubeshare {

/// Placement variants for the Step-3 design-choice ablation. kPaper is
/// Algorithm 1 as published (best-fit on unlabelled devices, worst-fit on
/// labelled ones); the alternatives quantify that choice in
/// bench_ablation_placement.
enum class PlacementVariant {
  kPaper,
  kWorstFitEverywhere,  // spread: always the roomiest feasible device
  kFirstFit,            // naive: first feasible device in pool order
};

}  // namespace ks::kubeshare
