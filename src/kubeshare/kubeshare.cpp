#include "kubeshare/kubeshare.hpp"

#include <cstdlib>
#include <map>

#include "kubeshare/algorithm.hpp"

namespace ks::kubeshare {

KubeShare::KubeShare(k8s::Cluster* cluster, KubeShareConfig config)
    : cluster_(cluster),
      config_(config),
      // The sharePod store joins the apiserver's delivery hub: its watch
      // events interleave with pod/node events at the same virtual times,
      // and sharing the hub is what keeps that order byte-identical to the
      // unbatched path.
      sharepods_(&cluster->sim(), cluster->api().latency().watch_propagation,
                 cluster->api().watch_fanout(),
                 &cluster->api().watch_hub()) {
  pool_.set_memory_overcommit(config_.allow_memory_overcommit,
                              config_.memory_overcommit_factor);
  if (cluster_->config().spatial.enabled) {
    pool_.EnableSpatial(cluster_->config().spatial.sm_groups);
  }
  sched_ = std::make_unique<KubeShareSched>(cluster_, &sharepods_, &pool_,
                                            config_);
  devmgr_ = std::make_unique<KubeShareDevMgr>(cluster_, &sharepods_, &pool_,
                                              config_);
}

Status KubeShare::Start() {
  if (started_) return FailedPreconditionError("KubeShare already started");
  started_ = true;
  if (config_.enable_leader_election) {
    k8s::LeaderElectorConfig lec;
    lec.lease_name = "kubeshare-controller";
    lec.identity = "kubeshare-0";
    lec.lease_duration = config_.lease_duration;
    lec.renew_period = config_.lease_renew_period;
    lec.retry_period = config_.lease_retry_period;
    elector_ =
        std::make_unique<k8s::LeaderElector>(&cluster_->api(), std::move(lec));
    // A win must fence BOTH stores the controllers write through: the
    // sharePod custom resource and the native pods they create/delete.
    elector_->RegisterGate(&sharepods_.fencing());
    elector_->RegisterGate(&cluster_->api().pods().fencing());
    // The controllers stamp whatever token the elector last won. A deposed
    // leader that does not know it lost keeps stamping its stale token —
    // and the raised gate rejects those writes, which is the guarantee.
    auto token = [e = elector_.get()] { return e->fencing_token(); };
    sched_->SetFencingTokenProvider(token);
    devmgr_->SetFencingTokenProvider(token);
    elector_->Start();
  }
  KS_RETURN_IF_ERROR(sched_->Start());
  KS_RETURN_IF_ERROR(devmgr_->Start());
  // Close the isolation-enforcement loop: each node's token backend can
  // report a repeat offender (violation ledger past its eviction
  // threshold) and DevMgr evicts the offender's sharePod. The hook is a
  // no-op unless BackendConfig::enforcement is enabled — the backend never
  // calls it otherwise.
  for (std::size_t i = 0; i < cluster_->node_count(); ++i) {
    k8s::Cluster::NodeHandle& node = cluster_->node(i);
    node.token_backend->SetEvictionFn(
        [this, name = node.name](const ContainerId& container,
                                 const std::string& reason) {
          devmgr_->EvictTenant(name, container, reason);
        });
  }
  return Status::Ok();
}

Status KubeShare::CreateSharePod(SharePod pod) {
  KS_RETURN_IF_ERROR(pod.spec.gpu.Validate());
  if (pod.meta.name.empty()) {
    return InvalidArgumentError("sharePod has no name");
  }
  return sharepods_.Create(std::move(pod));
}

Status KubeShare::ResizeSharePod(const std::string& name, double gpu_request,
                                 double gpu_limit) {
  auto sp = sharepods_.Get(name);
  if (!sp.ok()) return sp.status();
  if (sp->terminal()) {
    return FailedPreconditionError("sharePod is terminal: " + name);
  }
  if (!sp->scheduled()) {
    // Not placed yet: just rewrite the spec; Algorithm 1 will see it.
    SharePod updated = *sp;
    updated.spec.gpu.gpu_request = gpu_request;
    updated.spec.gpu.gpu_limit = gpu_limit;
    KS_RETURN_IF_ERROR(updated.spec.gpu.Validate());
    return sharepods_.Update(updated);
  }

  KS_RETURN_IF_ERROR(pool_.UpdateAttachment(name, gpu_request, gpu_limit));
  SharePod updated = *sp;
  updated.spec.gpu.gpu_request = gpu_request;
  updated.spec.gpu.gpu_limit = gpu_limit;
  KS_RETURN_IF_ERROR(sharepods_.Update(updated));

  // Propagate to the running container's device library, if it is up.
  auto device = pool_.Get(updated.spec.gpu_id);
  if (device.ok() && device->uuid.has_value() &&
      !updated.status.workload_pod.empty()) {
    if (k8s::Cluster::NodeHandle* node = cluster_->FindNode(device->node)) {
      if (auto cid = node->runtime->ContainerIdOf(updated.status.workload_pod)) {
        vgpu::ResourceSpec spec = updated.spec.gpu;
        (void)node->token_backend->UpdateSpec(*cid, spec);
      }
    }
  }
  cluster_->api().events().Record(
      "kubeshare", "sharepod/" + name, "Resized",
      "gpu_request=" + std::to_string(gpu_request) +
          " gpu_limit=" + std::to_string(gpu_limit));
  return Status::Ok();
}

Status KubeShare::CreateSharePodGroup(std::vector<SharePod> pods) {
  if (pods.empty()) return InvalidArgumentError("empty sharePod group");
  for (const SharePod& pod : pods) {
    KS_RETURN_IF_ERROR(pod.spec.gpu.Validate());
    if (pod.meta.name.empty()) {
      return InvalidArgumentError("sharePod has no name");
    }
    if (sharepods_.Contains(pod.meta.name)) {
      return AlreadyExistsError("sharePod exists: " + pod.meta.name);
    }
  }

  // Dry run: place every member on a copy of the pool, consuming the
  // physical-GPU supply as the copy grows.
  VgpuPool dry_run = pool_;
  auto supply = sched_->FreePhysicalGpus();
  std::map<std::string, std::size_t> base_count;
  for (const NodeFreeGpus& n : supply) {
    base_count[n.node] = pool_.CountOnNode(n.node);
  }
  for (const SharePod& pod : pods) {
    std::vector<NodeFreeGpus> adjusted = supply;
    for (NodeFreeGpus& n : adjusted) {
      n.free -= static_cast<int>(dry_run.CountOnNode(n.node) -
                                 base_count[n.node]);
    }
    ScheduleRequest request;
    request.sharepod = pod.meta.name;
    request.gpu = pod.spec.gpu;
    request.locality = pod.spec.locality;
    request.node_constraint = pod.spec.node_name;
    auto placed = ScheduleSharePod(dry_run, request, adjusted,
                                   config_.placement);
    if (!placed.ok()) {
      return Status(placed.status().code(),
                    "gang admission failed at member " + pod.meta.name +
                        ": " + placed.status().message());
    }
  }

  for (SharePod& pod : pods) {
    KS_RETURN_IF_ERROR(sharepods_.Create(std::move(pod)));
  }
  return Status::Ok();
}

std::optional<KubeShare::Binding> KubeShare::ParseBinding(
    const std::map<std::string, std::string>& env) {
  auto name = env.find(kEnvSharePod);
  if (name == env.end()) return std::nullopt;
  Binding binding;
  binding.sharepod = name->second;
  if (auto it = env.find(kEnvGpuId); it != env.end()) {
    binding.gpu_id = GpuId(it->second);
  }
  auto parse = [&env](const char* key, double fallback) {
    auto it = env.find(key);
    if (it == env.end()) return fallback;
    return std::strtod(it->second.c_str(), nullptr);
  };
  binding.spec.gpu_request = parse(kEnvGpuRequest, 0.0);
  binding.spec.gpu_limit = parse(kEnvGpuLimit, 1.0);
  binding.spec.gpu_mem = parse(kEnvGpuMem, 1.0);
  binding.spec.slice_groups =
      static_cast<int>(parse(kEnvSliceGroups, 0.0));
  return binding;
}

}  // namespace ks::kubeshare
