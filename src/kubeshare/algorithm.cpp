#include "kubeshare/algorithm.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ks::kubeshare {

namespace {

constexpr double kEps = 1e-9;

bool NodeAllowed(const ScheduleRequest& r, const std::string& node) {
  return r.node_constraint.empty() || r.node_constraint == node;
}

bool FitsResources(const ScheduleRequest& r, const VgpuInfo& d,
                   double mem_capacity) {
  if (r.gpu.gpu_request > d.residual_util() + kEps) return false;
  // mem_capacity is 1.0 normally, the oversubscription factor (or
  // infinity) under over-commitment — VgpuPool::mem_capacity().
  return r.gpu.gpu_mem <= mem_capacity - d.used_mem + kEps;
}

/// Slice feasibility on spatial pools: the claim needs a free contiguous
/// SM-group run. Trivially true for temporal requests and on non-spatial
/// pools (idle devices are fully free, so they always pass).
bool FitsSlices(const ScheduleRequest& r, const VgpuInfo& d, bool spatial) {
  if (!spatial || r.gpu.slice_groups <= 0) return true;
  return d.slices.FirstFit(r.gpu.slice_groups).has_value();
}

/// Fragmentation the device would have after first-fit placing the claim:
/// the packing score of the fragmentation-aware Step 3 (lower is better —
/// keep the surviving free space in large contiguous runs).
double PostPlacementFragmentation(const VgpuInfo& d, int claim) {
  spatial::SliceMap map = d.slices;
  const auto fit = map.FirstFit(claim);
  assert(fit.has_value());
  const Status occupied = map.Occupy(*fit, claim);
  assert(occupied.ok());
  (void)occupied;
  return map.FragmentationScore();
}

/// Picks the node with the most free physical GPUs (spreading new vGPUs,
/// so the native scheduler keeps room too). Returns nullptr when no node
/// has supply.
const NodeFreeGpus* PickNodeForNewDevice(
    const ScheduleRequest& r, const std::vector<NodeFreeGpus>& free_gpus) {
  const NodeFreeGpus* best = nullptr;
  for (const NodeFreeGpus& n : free_gpus) {
    if (n.free <= 0 || !NodeAllowed(r, n.node)) continue;
    if (best == nullptr || n.free > best->free) best = &n;
  }
  return best;
}

// `id` is deliberately taken by value: callers may pass a reference into a
// pool index (e.g. the idle-device set) that Attach itself mutates.
Expected<GpuId> AttachOrPropagate(VgpuPool& pool, GpuId id,
                                  const ScheduleRequest& r) {
  const Status s = pool.Attach(id, r.sharepod, r.gpu, r.locality);
  if (!s.ok()) return s;
  return id;
}

}  // namespace

Expected<GpuId> ScheduleSharePodReference(
    VgpuPool& pool, const ScheduleRequest& r,
    const std::vector<NodeFreeGpus>& free_gpus, PlacementVariant variant) {
  KS_RETURN_IF_ERROR(r.gpu.Validate());
  const bool sliced = pool.spatial_enabled() && r.gpu.slice_groups > 0;
  if (sliced && r.gpu.slice_groups > pool.sm_groups()) {
    return RejectedError("slice claim exceeds device geometry");
  }

  const auto devices = pool.List();

  // ---- Step 1: affinity label (lines 1-14) ---------------------------
  if (r.locality.affinity.has_value()) {
    const VgpuInfo* labelled = nullptr;
    for (const VgpuInfo* d : devices) {
      if (d->affinity.count(*r.locality.affinity) > 0 &&
          NodeAllowed(r, d->node)) {
        labelled = d;
        break;
      }
    }
    if (labelled != nullptr) {
      // The affinity constraint forces this device; any conflict is a hard
      // rejection (lines 4-6).
      if (r.locality.exclusion != labelled->exclusion) {
        return RejectedError("exclusion conflict with affinity device " +
                             labelled->id.value());
      }
      if (r.locality.anti_affinity.has_value() &&
          labelled->anti_affinity.count(*r.locality.anti_affinity) > 0) {
        return RejectedError("anti-affinity conflict on affinity device " +
                             labelled->id.value());
      }
      if (!FitsResources(r, *labelled, pool.mem_capacity())) {
        return RejectedError("insufficient resources on affinity device " +
                             labelled->id.value());
      }
      if (!FitsSlices(r, *labelled, pool.spatial_enabled())) {
        return RejectedError("insufficient slice groups on affinity device " +
                             labelled->id.value());
      }
      return AttachOrPropagate(pool, labelled->id, r);
    }
    // First container of this affinity group: prefer an idle device so the
    // group has maximal room (lines 9-14), else create one.
    for (const VgpuInfo* d : devices) {
      if (d->idle() && NodeAllowed(r, d->node)) {
        return AttachOrPropagate(pool, d->id, r);
      }
    }
    const NodeFreeGpus* node = PickNodeForNewDevice(r, free_gpus);
    if (node == nullptr) {
      return UnavailableError("no free physical GPU for new vGPU");
    }
    VgpuInfo& fresh = pool.Create(node->node);
    return AttachOrPropagate(pool, fresh.id, r);
  }

  // ---- Step 2: filter by exclusion / anti-affinity / resources
  //      (lines 15-20; idle devices skip the checks, line 17) -----------
  std::vector<const VgpuInfo*> candidates;
  for (const VgpuInfo* d : devices) {
    if (!NodeAllowed(r, d->node)) continue;
    if (d->idle()) {
      candidates.push_back(d);
      continue;
    }
    const bool excl_conflict =
        (r.locality.exclusion.has_value() || d->exclusion.has_value()) &&
        r.locality.exclusion != d->exclusion;
    if (excl_conflict) continue;
    if (r.locality.anti_affinity.has_value() &&
        d->anti_affinity.count(*r.locality.anti_affinity) > 0) {
      continue;
    }
    if (!FitsResources(r, *d, pool.mem_capacity())) continue;
    if (!FitsSlices(r, *d, pool.spatial_enabled())) continue;
    candidates.push_back(d);
  }

  // ---- Step 3: placement (lines 21-26) --------------------------------
  // Ties (typical among idle devices, which all have full residual) break
  // toward the least-loaded node so simultaneous placements spread like
  // the native scheduler's instead of queueing on one kubelet.
  std::map<std::string, int> node_attached;
  for (const VgpuInfo* d : pool.List()) {
    node_attached[d->node] += static_cast<int>(d->attached.size());
  }
  auto tie_break_better = [&](const VgpuInfo* d, const VgpuInfo* pick) {
    return node_attached[d->node] < node_attached[pick->node];
  };
  // Fragmentation-aware packing: on spatial pools a slice claim ranks
  // candidates first by post-placement fragmentation (lowest wins), so
  // slices consolidate and large free runs survive; residual capacity and
  // the node tie-break only order devices whose fragmentation ties.
  // Returns <0 / 0 / >0 like strcmp; always 0 for temporal requests.
  auto frag_compare = [&](const VgpuInfo* d, const VgpuInfo* pick) {
    if (!sliced) return 0;
    const double fd = PostPlacementFragmentation(*d, r.gpu.slice_groups);
    const double fp = PostPlacementFragmentation(*pick, r.gpu.slice_groups);
    if (fd < fp - kEps) return -1;
    if (fd > fp + kEps) return 1;
    return 0;
  };
  auto best_fit = [&](bool labelled) {
    const VgpuInfo* pick = nullptr;
    for (const VgpuInfo* d : candidates) {
      if (d->affinity.empty() == labelled) continue;
      if (pick == nullptr) {
        pick = d;
        continue;
      }
      const int frag = frag_compare(d, pick);
      if (frag > 0) continue;
      if (frag < 0 ||
          d->residual_util() < pick->residual_util() - kEps ||
          (std::abs(d->residual_util() - pick->residual_util()) <= kEps &&
           (d->residual_mem() < pick->residual_mem() - kEps ||
            (std::abs(d->residual_mem() - pick->residual_mem()) <= kEps &&
             tie_break_better(d, pick))))) {
        pick = d;
      }
    }
    return pick;
  };
  auto worst_fit = [&](bool labelled) {
    const VgpuInfo* pick = nullptr;
    for (const VgpuInfo* d : candidates) {
      if (d->affinity.empty() == labelled) continue;
      if (pick == nullptr) {
        pick = d;
        continue;
      }
      const int frag = frag_compare(d, pick);
      if (frag > 0) continue;
      if (frag < 0 ||
          d->residual_util() > pick->residual_util() + kEps ||
          (std::abs(d->residual_util() - pick->residual_util()) <= kEps &&
           (d->residual_mem() > pick->residual_mem() + kEps ||
            (std::abs(d->residual_mem() - pick->residual_mem()) <= kEps &&
             tie_break_better(d, pick))))) {
        pick = d;
      }
    }
    return pick;
  };

  const VgpuInfo* pick = nullptr;
  switch (variant) {
    case PlacementVariant::kPaper:
      // Best fit among unlabelled devices (squeeze into the tightest hole
      // so existing vGPUs fill up before new ones open), then worst fit
      // among labelled devices (leave them roomy for their groups).
      pick = best_fit(/*labelled=*/false);
      if (pick == nullptr) pick = worst_fit(/*labelled=*/true);
      break;
    case PlacementVariant::kWorstFitEverywhere:
      pick = worst_fit(false);
      if (pick == nullptr) pick = worst_fit(true);
      break;
    case PlacementVariant::kFirstFit:
      if (!candidates.empty()) pick = candidates.front();
      break;
  }
  if (pick != nullptr) {
    return AttachOrPropagate(pool, pick->id, r);
  }

  const NodeFreeGpus* node = PickNodeForNewDevice(r, free_gpus);
  if (node == nullptr) {
    return UnavailableError("no device fits and no free physical GPU");
  }
  VgpuInfo& fresh = pool.Create(node->node);
  return AttachOrPropagate(pool, fresh.id, r);
}

Expected<GpuId> ScheduleSharePod(VgpuPool& pool, const ScheduleRequest& r,
                                 const std::vector<NodeFreeGpus>& free_gpus,
                                 PlacementVariant variant) {
  KS_RETURN_IF_ERROR(r.gpu.Validate());
  const bool sliced = pool.spatial_enabled() && r.gpu.slice_groups > 0;
  if (sliced && r.gpu.slice_groups > pool.sm_groups()) {
    return RejectedError("slice claim exceeds device geometry");
  }

  // Index-accelerated Algorithm 1. Every index iterates in GpuId order —
  // the same order the reference scan visits pool.List() — so each step
  // selects the identical device; only the work to find it changes.

  // ---- Step 1: affinity label, via the label index --------------------
  if (r.locality.affinity.has_value()) {
    if (const std::set<GpuId>* group =
            pool.DevicesWithAffinity(*r.locality.affinity)) {
      for (const GpuId& id : *group) {
        const VgpuInfo* labelled = pool.Find(id);
        assert(labelled != nullptr);
        if (!NodeAllowed(r, labelled->node)) continue;
        if (r.locality.exclusion != labelled->exclusion) {
          return RejectedError("exclusion conflict with affinity device " +
                               labelled->id.value());
        }
        if (r.locality.anti_affinity.has_value() &&
            labelled->anti_affinity.count(*r.locality.anti_affinity) > 0) {
          return RejectedError("anti-affinity conflict on affinity device " +
                               labelled->id.value());
        }
        if (!FitsResources(r, *labelled, pool.mem_capacity())) {
          return RejectedError("insufficient resources on affinity device " +
                               labelled->id.value());
        }
        if (!FitsSlices(r, *labelled, pool.spatial_enabled())) {
          return RejectedError(
              "insufficient slice groups on affinity device " +
              labelled->id.value());
        }
        return AttachOrPropagate(pool, labelled->id, r);
      }
    }
    // First container of this affinity group: first idle device from the
    // idle index, else a new device.
    for (const GpuId& id : pool.idle_devices()) {
      const VgpuInfo* d = pool.Find(id);
      assert(d != nullptr);
      if (NodeAllowed(r, d->node)) return AttachOrPropagate(pool, id, r);
    }
    const NodeFreeGpus* node = PickNodeForNewDevice(r, free_gpus);
    if (node == nullptr) {
      return UnavailableError("no free physical GPU for new vGPU");
    }
    VgpuInfo& fresh = pool.Create(node->node);
    return AttachOrPropagate(pool, fresh.id, r);
  }

  // ---- Steps 2+3 fused into one pass over the pool --------------------
  // Residual-index precheck: with no idle device (idle candidates need no
  // capacity check) and a request above every device's residual compute,
  // the candidate set is provably empty — skip the scan and go straight to
  // new_dev(). Conservative: never claims infeasible when a candidate
  // exists. Skipped under a node constraint (the index is cluster-wide).
  const bool provably_no_candidate =
      r.node_constraint.empty() && pool.idle_devices().empty() &&
      r.gpu.gpu_request > pool.MaxResidualUtil() + kEps;

  const VgpuInfo* pick = nullptr;
  if (!provably_no_candidate) {
    // Same comparison chains as the reference best_fit/worst_fit, with the
    // per-node attach counts read from the pool index instead of a map
    // rebuilt per request.
    auto tie_break_better = [&](const VgpuInfo& d, const VgpuInfo& p) {
      return pool.AttachedOnNode(d.node) < pool.AttachedOnNode(p.node);
    };
    auto better_best = [&](const VgpuInfo& d, const VgpuInfo* p) {
      return p == nullptr || d.residual_util() < p->residual_util() - kEps ||
             (std::abs(d.residual_util() - p->residual_util()) <= kEps &&
              (d.residual_mem() < p->residual_mem() - kEps ||
               (std::abs(d.residual_mem() - p->residual_mem()) <= kEps &&
                tie_break_better(d, *p))));
    };
    auto better_worst = [&](const VgpuInfo& d, const VgpuInfo* p) {
      return p == nullptr || d.residual_util() > p->residual_util() + kEps ||
             (std::abs(d.residual_util() - p->residual_util()) <= kEps &&
              (d.residual_mem() > p->residual_mem() + kEps ||
               (std::abs(d.residual_mem() - p->residual_mem()) <= kEps &&
                tie_break_better(d, *p))));
    };
    // Same fragmentation-first ordering as the reference Step 3: only a
    // slice claim activates it, and residual capacity breaks frag ties.
    auto improves_with_frag = [&](const VgpuInfo& d, const VgpuInfo* p,
                                  auto&& base) {
      if (p == nullptr) return true;
      if (sliced) {
        const double fd = PostPlacementFragmentation(d, r.gpu.slice_groups);
        const double fp = PostPlacementFragmentation(*p, r.gpu.slice_groups);
        if (fd < fp - kEps) return true;
        if (fd > fp + kEps) return false;
      }
      return static_cast<bool>(base(d, p));
    };

    const VgpuInfo* primary = nullptr;    // unlabelled-group winner
    const VgpuInfo* secondary = nullptr;  // labelled-group winner
    for (const auto& [id, d] : pool.entries()) {
      if (!NodeAllowed(r, d.node)) continue;
      if (!d.idle()) {
        const bool excl_conflict =
            (r.locality.exclusion.has_value() || d.exclusion.has_value()) &&
            r.locality.exclusion != d.exclusion;
        if (excl_conflict) continue;
        if (r.locality.anti_affinity.has_value() &&
            d.anti_affinity.count(*r.locality.anti_affinity) > 0) {
          continue;
        }
        if (!FitsResources(r, d, pool.mem_capacity())) continue;
        if (!FitsSlices(r, d, pool.spatial_enabled())) continue;
      }
      if (variant == PlacementVariant::kFirstFit) {
        pick = &d;
        break;
      }
      const VgpuInfo*& winner = d.affinity.empty() ? primary : secondary;
      const bool improves = (variant == PlacementVariant::kPaper &&
                             d.affinity.empty())
                                ? improves_with_frag(d, winner, better_best)
                                : improves_with_frag(d, winner, better_worst);
      if (improves) winner = &d;
    }
    if (variant != PlacementVariant::kFirstFit && pick == nullptr) {
      pick = primary != nullptr ? primary : secondary;
    }
  }
  if (pick != nullptr) {
    return AttachOrPropagate(pool, pick->id, r);
  }

  const NodeFreeGpus* node = PickNodeForNewDevice(r, free_gpus);
  if (node == nullptr) {
    return UnavailableError("no device fits and no free physical GPU");
  }
  VgpuInfo& fresh = pool.Create(node->node);
  return AttachOrPropagate(pool, fresh.id, r);
}

}  // namespace ks::kubeshare
