#include "kubeshare/replicaset.hpp"

#include <cassert>

#include "common/log.hpp"

namespace ks::kubeshare {

SharePodReplicaSet::SharePodReplicaSet(KubeShare* kubeshare, Spec spec)
    : kubeshare_(kubeshare), spec_(std::move(spec)) {
  assert(kubeshare_ != nullptr);
  assert(!spec_.name.empty());
}

Status SharePodReplicaSet::Start() {
  if (started_) return FailedPreconditionError("replicaset already started");
  if (spec_.replicas < 0) return InvalidArgumentError("negative replicas");
  started_ = true;
  kubeshare_->sharepods().Watch(
      [this](const k8s::WatchEvent<SharePod>& ev) { OnSharePodEvent(ev); });
  Reconcile();
  return Status::Ok();
}

void SharePodReplicaSet::OnSharePodEvent(
    const k8s::WatchEvent<SharePod>& event) {
  const SharePod& pod = event.object;
  auto it = pod.meta.labels.find(kOwnerLabel);
  if (it == pod.meta.labels.end() || it->second != spec_.name) return;

  if (event.type == k8s::WatchEventType::kDeleted || pod.terminal()) {
    if (live_.erase(pod.meta.name) > 0) Reconcile();
    return;
  }
  live_.insert(pod.meta.name);
}

std::string SharePodReplicaSet::NextName() {
  return spec_.name + "-" + std::to_string(next_index_++);
}

void SharePodReplicaSet::Scale(int replicas) {
  if (replicas < 0) replicas = 0;
  spec_.replicas = replicas;
  if (started_) Reconcile();
}

void SharePodReplicaSet::Reconcile() {
  // Scale up: create replacements from the template.
  while (static_cast<int>(live_.size()) < spec_.replicas) {
    const std::string name = NextName();
    if (hook_) hook_(name);
    SharePod pod;
    pod.meta.name = name;
    pod.meta.labels[kOwnerLabel] = spec_.name;
    pod.spec = spec_.template_spec;
    const Status s = kubeshare_->CreateSharePod(pod);
    if (!s.ok()) {
      KS_LOG(kError) << "replica create failed: " << s;
      return;
    }
    ++created_total_;
    live_.insert(name);
  }
  // Scale down: delete the newest surplus replicas. Conditional delete:
  // the victim is removed at the version we observed — if a controller
  // mutates it concurrently the delete retries against the fresh state.
  while (static_cast<int>(live_.size()) > spec_.replicas) {
    const std::string victim = *live_.rbegin();
    live_.erase(victim);
    (void)k8s::RetryDeleteOnConflict(
        kubeshare_->sharepods(), victim,
        [](const SharePod&) { return Status::Ok(); });
  }
}

}  // namespace ks::kubeshare
