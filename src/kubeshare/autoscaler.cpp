#include "kubeshare/autoscaler.hpp"

#include <algorithm>
#include <cassert>

namespace ks::kubeshare {

SloAutoscaler::SloAutoscaler(sim::Simulation* sim, sim::TickHub* hub,
                             SharePodReplicaSet* replicaset,
                             AutoscalerConfig config, MetricProbe probe)
    : sim_(sim),
      hub_(hub),
      replicaset_(replicaset),
      config_(config),
      probe_(std::move(probe)) {
  assert(sim_ != nullptr && replicaset_ != nullptr);
}

SloAutoscaler::~SloAutoscaler() { Disarm(); }

Status SloAutoscaler::Start() {
  if (started_) return FailedPreconditionError("autoscaler already started");
  if (!probe_) return InvalidArgumentError("autoscaler needs a metric probe");
  if (config_.min_replicas < 0 || config_.max_replicas < config_.min_replicas) {
    return InvalidArgumentError("autoscaler replica bounds are inverted");
  }
  if (config_.period <= Duration{0}) {
    return InvalidArgumentError("autoscaler period must be positive");
  }
  started_ = true;
  down_ = false;
  const int clamped = std::clamp(replicaset_->desired(), config_.min_replicas,
                                 config_.max_replicas);
  if (clamped != replicaset_->desired()) replicaset_->Scale(clamped);
  Arm();
  return Status::Ok();
}

void SloAutoscaler::Crash() {
  if (!started_ || down_) return;
  down_ = true;
  ++crashes_;
  Disarm();
}

void SloAutoscaler::Restart() {
  if (!started_ || !down_) return;
  down_ = false;
  // Fresh rate-limit clocks: the restarted process has no memory of its
  // previous decisions, so it waits out a full cooldown before acting.
  const Time now = sim_->Now();
  last_up_ = now;
  last_down_ = now;
  Arm();
}

void SloAutoscaler::Arm() {
  if (hub_ != nullptr) {
    sub_ = hub_->Subscribe(config_.period, [this] { Evaluate(); });
    return;
  }
  event_ = sim_->ScheduleAfter(config_.period, [this] {
    event_ = sim::kInvalidEvent;
    Evaluate();
    if (started_ && !down_) Arm();
  });
}

void SloAutoscaler::Disarm() {
  if (hub_ != nullptr && sub_ != 0) {
    hub_->Unsubscribe(sub_);
    sub_ = 0;
  }
  if (event_ != sim::kInvalidEvent) {
    sim_->Cancel(event_);
    event_ = sim::kInvalidEvent;
  }
}

void SloAutoscaler::Evaluate() {
  if (down_) return;  // hub tick raced a crash
  ++evaluations_;
  // The replicaset is the store: re-read desired() every tick instead of
  // trusting an in-memory shadow, so a controller that crashed and
  // restarted (or a concurrent Scale from an operator) is handled the same
  // as steady state.
  const int current = replicaset_->desired();
  const double p99 = probe_();
  last_p99_s_ = p99;
  if (p99 <= 0.0) return;  // cold start: no samples yet
  const double slo = ToSeconds(config_.slo_p99);
  const Time now = sim_->Now();
  if (p99 >= config_.up_threshold * slo) {
    if (now - last_up_ < config_.up_cooldown) return;
    const int target =
        std::min(current + config_.up_step, config_.max_replicas);
    if (target <= current) return;
    last_up_ = now;
    ++scale_ups_;
    replicaset_->Scale(target);
    return;
  }
  if (p99 < config_.down_threshold * slo) {
    if (now - last_down_ < config_.down_cooldown) return;
    const int target =
        std::max(current - config_.down_step, config_.min_replicas);
    if (target >= current) return;
    last_down_ = now;
    ++scale_downs_;
    replicaset_->Scale(target);
    return;
  }
  // Inside the dead band: hold.
}

}  // namespace ks::kubeshare
