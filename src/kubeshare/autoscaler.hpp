#pragma once

#include <cstdint>
#include <functional>
#include <limits>

#include "common/status.hpp"
#include "common/time.hpp"
#include "kubeshare/replicaset.hpp"
#include "sim/simulation.hpp"
#include "sim/tick_hub.hpp"

namespace ks::kubeshare {

/// Tuning of the SLO-headroom horizontal autoscaler.
struct AutoscalerConfig {
  /// The p99 latency target the controller defends.
  Duration slo_p99 = Millis(250);
  int min_replicas = 1;
  int max_replicas = 8;
  /// Scale up once observed p99 >= up_threshold * slo; scale down once it
  /// falls under down_threshold * slo. The dead band between them is the
  /// first half of the hysteresis (the cooldowns are the second half) —
  /// without it the controller would flap on every estimate wiggle.
  double up_threshold = 0.85;
  double down_threshold = 0.40;
  /// Evaluation period (rides the cluster's shared TickHub when one
  /// exists, so the controller costs the engine no private events).
  Duration period = Seconds(1.0);
  /// Minimum spacing between consecutive scale-ups / scale-downs.
  /// Scale-down is deliberately the slower direction: adding capacity
  /// fixes an SLO breach, removing it can cause one.
  Duration up_cooldown = Seconds(2.0);
  Duration down_cooldown = Seconds(10.0);
  /// Replicas added / removed per decision. Up is the bigger step for the
  /// same asymmetry reason.
  int up_step = 2;
  int down_step = 1;
};

/// Metrics-driven horizontal autoscaler on top of SharePodReplicaSet
/// (ROADMAP item 4): every `period` it reads the service's observed p99
/// from a metric probe (typically serving::ServiceFrontend's windowed
/// digest, i.e. the same estimate the ks_slo_* family exports) and scales
/// the replicaset on SLO headroom with hysteresis.
///
/// Crash-restart safety follows the codebase's controller discipline: the
/// system of record for the scale decision is the replicaset's desired
/// count — every evaluation re-reads rs->desired() and writes through
/// Scale() (whose reconciliation uses the apiserver's optimistic
/// concurrency via RetryOnConflict on the delete path). The controller
/// itself keeps only rate-limit state (cooldown clocks), so a crashed and
/// restarted autoscaler resumes from the surviving desired count instead
/// of resetting the fleet (tests/recovery/autoscaler_recovery_test.cpp
/// replays this across the chaos seed matrix).
class SloAutoscaler {
 public:
  /// Returns the service's observed p99 in seconds; <= 0 means "no data"
  /// (cold start) and produces no decision.
  using MetricProbe = std::function<double()>;

  SloAutoscaler(sim::Simulation* sim, sim::TickHub* hub,
                SharePodReplicaSet* replicaset, AutoscalerConfig config,
                MetricProbe probe);
  ~SloAutoscaler();

  SloAutoscaler(const SloAutoscaler&) = delete;
  SloAutoscaler& operator=(const SloAutoscaler&) = delete;

  /// Arms the evaluation tick. Also clamps the replicaset into
  /// [min_replicas, max_replicas] immediately.
  Status Start();

  /// Fault injection: the controller process dies. The tick disarms and
  /// in-memory rate-limit state is lost; the replicaset (the store) keeps
  /// its desired count and its replicas keep serving.
  void Crash();
  /// The controller restarts: re-reads desired() from the store and
  /// resumes evaluating. Cooldown clocks restart from the restart time —
  /// a rebooted controller rate-limits conservatively rather than acting
  /// on history it no longer has.
  void Restart();

  bool down() const { return down_; }
  const AutoscalerConfig& config() const { return config_; }
  std::uint64_t evaluations() const { return evaluations_; }
  std::uint64_t scale_ups() const { return scale_ups_; }
  std::uint64_t scale_downs() const { return scale_downs_; }
  std::uint64_t crashes() const { return crashes_; }
  /// Last probe reading, for observability.
  double last_p99_s() const { return last_p99_s_; }

 private:
  void Arm();
  void Disarm();
  void Evaluate();

  sim::Simulation* sim_;
  sim::TickHub* hub_;  // may be null: falls back to a private event
  SharePodReplicaSet* replicaset_;
  AutoscalerConfig config_;
  MetricProbe probe_;

  sim::TickHub::SubId sub_ = 0;
  sim::EventId event_ = sim::kInvalidEvent;
  bool started_ = false;
  bool down_ = false;
  Time last_up_{std::numeric_limits<std::int64_t>::min() / 4};
  Time last_down_{std::numeric_limits<std::int64_t>::min() / 4};
  std::uint64_t evaluations_ = 0;
  std::uint64_t scale_ups_ = 0;
  std::uint64_t scale_downs_ = 0;
  std::uint64_t crashes_ = 0;
  double last_p99_s_ = 0.0;
};

}  // namespace ks::kubeshare
