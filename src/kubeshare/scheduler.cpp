#include "kubeshare/scheduler.hpp"

#include <cassert>
#include <chrono>
#include <iterator>

#include "common/log.hpp"
#include "k8s/resources.hpp"

namespace ks::kubeshare {

KubeShareSched::KubeShareSched(k8s::Cluster* cluster,
                               k8s::ObjectStore<SharePod>* sharepods,
                               VgpuPool* pool, KubeShareConfig config)
    : cluster_(cluster),
      sharepods_(sharepods),
      pool_(pool),
      config_(config) {
  assert(cluster_ != nullptr && sharepods_ != nullptr && pool_ != nullptr);
}

Status KubeShareSched::Start() {
  if (started_) return FailedPreconditionError("KubeShare-Sched started");
  started_ = true;
  watch_ = sharepods_->Watch(
      [this](const k8s::WatchEvent<SharePod>& ev) { OnSharePodEvent(ev); });
  return Status::Ok();
}

void KubeShareSched::Crash() {
  if (!started_) return;
  started_ = false;
  ++crashes_;
  ++epoch_;
  sharepods_->Unwatch(watch_);
  watch_ = 0;
  queue_.clear();
  queued_.clear();
  waiting_.clear();
  flush_scheduled_ = false;
  cycle_active_ = false;
  // In-memory caches die with the process; the version guard would keep a
  // stale snapshot correct, but a restarted scheduler starts cold.
  snapshot_valid_ = false;
  snapshot_base_.clear();
}

Status KubeShareSched::Restart() {
  if (started_) return FailedPreconditionError("KubeShare-Sched running");
  return Start();
}

void KubeShareSched::SetFencingTokenProvider(
    std::function<std::uint64_t()> provider) {
  token_provider_ = std::move(provider);
}

std::uint64_t KubeShareSched::Token() const {
  return token_provider_ ? token_provider_() : 0;
}

std::vector<NodeFreeGpus> KubeShareSched::FreePhysicalGpus() const {
  const std::uint64_t pods_v = cluster_->api().pods().version();
  const std::uint64_t nodes_v = cluster_->api().nodes().version();
  if (!snapshot_valid_ || snapshot_pods_version_ != pods_v ||
      snapshot_nodes_version_ != nodes_v) {
    // Rebuild the store-derived base: one consistent pass over the pod and
    // node stores, valid until either store's version moves again.
    snapshot_base_.clear();
    // Native (non-KubeShare) GPU pods per node.
    std::map<std::string, int> native;
    cluster_->api().pods().ForEach([&](const k8s::Pod& pod) {
      if (pod.terminal() || !pod.scheduled()) return;
      if (pod.meta.labels.count(kManagedLabel) > 0) return;
      const auto gpus = pod.spec.requests.Get(k8s::kResourceNvidiaGpu);
      if (gpus > 0) native[pod.status.node_name] += static_cast<int>(gpus);
    });
    cluster_->api().nodes().ForEach([&](const k8s::Node& node) {
      // A NotReady node's GPUs are not schedulable capacity — new vGPUs
      // must not be acquired there (the acquisition pod could never start).
      if (!node.ready) return;
      NodeFreeGpus entry;
      entry.node = node.meta.name;
      // Physical GPU count: with the stock plugin this equals the
      // advertised capacity; KubeShare requires the stock (unscaled)
      // plugin.
      entry.free =
          static_cast<int>(node.capacity.Get(k8s::kResourceNvidiaGpu)) -
          native[node.meta.name];
      snapshot_base_.push_back(entry);
    });
    snapshot_pods_version_ = pods_v;
    snapshot_nodes_version_ = nodes_v;
    snapshot_valid_ = true;
    ++snapshot_refreshes_;
  } else {
    ++snapshot_hits_;
  }
  // The pool term moves with Algorithm 1's own reservations inside a
  // cycle, so it is applied live rather than baked into the snapshot.
  std::vector<NodeFreeGpus> out = snapshot_base_;
  for (NodeFreeGpus& entry : out) {
    entry.free -= static_cast<int>(pool_->CountOnNode(entry.node));
  }
  return out;
}

void KubeShareSched::OnSharePodEvent(const k8s::WatchEvent<SharePod>& event) {
  if (event.type == k8s::WatchEventType::kDeleted) return;
  const SharePod& pod = event.object;
  if (pod.terminal()) return;
  if (pod.scheduled()) return;  // already has a GPUID
  Enqueue(pod.meta.name);
}

void KubeShareSched::Enqueue(const std::string& name) {
  if (queued_.count(name) > 0) return;
  queued_.insert(name);
  queue_.push_back(name);
  Pump();
}

void KubeShareSched::Pump() {
  if (cycle_active_ || queue_.empty()) return;
  cycle_active_ = true;
  // Highest priority first; FIFO among equals (queue_ is in arrival
  // order). Unresolvable names fall back to priority 0 and get cleaned up
  // by ScheduleOne.
  auto pick = queue_.begin();
  int best_priority = 0;
  if (auto sp = sharepods_->Get(*pick); sp.ok()) {
    best_priority = sp->spec.priority;
  }
  for (auto it = std::next(queue_.begin()); it != queue_.end(); ++it) {
    int priority = 0;
    if (auto sp = sharepods_->Get(*it); sp.ok()) priority = sp->spec.priority;
    if (priority > best_priority) {
      best_priority = priority;
      pick = it;
    }
  }
  const std::string name = *pick;
  queue_.erase(pick);
  queued_.erase(name);
  // The O(N) term counts *live* sharePods (Fig 11): each cycle re-reads
  // the status of every non-terminal sharePod through the apiserver.
  // Completed sharePods drop out of the loop. ForEach, not List: the scan
  // only needs the terminal flag, and at 100k sharePods a full deep copy
  // per cycle dominates the scheduler's own work.
  std::int64_t live = 0;
  sharepods_->ForEach([&](const SharePod& sp) {
    if (!sp.terminal()) ++live;
  });
  const Duration cycle =
      config_.sched_fixed + config_.sched_per_sharepod * live;
  const std::uint64_t epoch = epoch_;
  cluster_->sim().ScheduleAfter(cycle, [this, name, epoch] {
    if (epoch != epoch_) return;  // scheduler crashed meanwhile
    cycle_active_ = false;
    ScheduleOne(name);
    Pump();
  });
}

void KubeShareSched::ScheduleOne(const std::string& name) {
  auto pod = sharepods_->Get(name);
  if (!pod.ok() || pod->terminal()) return;
  if (pod->scheduled()) return;

  ScheduleRequest request;
  request.sharepod = name;
  request.gpu = pod->spec.gpu;
  request.locality = pod->spec.locality;
  request.node_constraint = pod->spec.node_name;

  const auto free = FreePhysicalGpus();
  const auto wall_start = std::chrono::steady_clock::now();
  auto result = ScheduleSharePod(*pool_, request, free, config_.placement);
  const auto wall_end = std::chrono::steady_clock::now();
  decision_stats_.Add(
      std::chrono::duration<double, std::micro>(wall_end - wall_start)
          .count());

  if (!result.ok()) {
    if (result.status().code() == StatusCode::kUnavailable) {
      // No capacity right now: park it and flush all waiters together
      // after the backoff, so priority re-orders the contenders.
      ++retry_count_;
      waiting_.insert(name);
      if (!flush_scheduled_) {
        flush_scheduled_ = true;
        const std::uint64_t epoch = epoch_;
        cluster_->sim().ScheduleAfter(config_.sched_retry, [this, epoch] {
          if (epoch != epoch_) return;  // scheduler crashed meanwhile
          flush_scheduled_ = false;
          auto parked = std::move(waiting_);
          waiting_.clear();
          // Batch: everyone joins the queue before the next cycle starts,
          // so the priority pick sees the whole group.
          for (const std::string& waiter : parked) {
            auto p = sharepods_->Get(waiter);
            if (!p.ok() || p->terminal() || p->scheduled()) continue;
            if (queued_.insert(waiter).second) queue_.push_back(waiter);
          }
          Pump();
        });
      }
      return;
    }
    // Constraint violation: Algorithm 1 "return -1".
    ++rejected_count_;
    cluster_->api().events().Record("kubeshare-sched", "sharepod/" + name,
                                    "Rejected", result.status().message());
    const std::string reason = result.status().ToString();
    (void)k8s::RetryOnConflict(
        *sharepods_, name,
        [&](SharePod& sp) {
          sp.status.phase = SharePodPhase::kRejected;
          sp.status.message = reason;
          return Status::Ok();
        },
        Token());
    return;
  }

  auto device = pool_->Get(*result);
  assert(device.ok());
  // Slice placements are part of the scheduling decision: persist the
  // assigned SM-group offset so a restarted DevMgr re-attaches the exact
  // same groups instead of re-running first-fit against a rebuilt pool.
  const auto slice = pool_->SliceOf(name);
  const Status wrote = k8s::RetryOnConflict(
      *sharepods_, name,
      [&](SharePod& sp) {
        sp.spec.gpu_id = *result;
        sp.spec.node_name = device->node;
        sp.spec.slice_offset = slice.has_value() ? slice->first : -1;
        sp.status.scheduled_time = cluster_->sim().Now();
        return Status::Ok();
      },
      Token());
  if (!wrote.ok()) {
    // The placement never reached the apiserver (fenced write from a
    // deposed leader, or the object vanished) — undo the pool
    // reservation Algorithm 1 made, or the capacity leaks.
    (void)pool_->Detach(name);
    if (auto dev_now = pool_->Get(*result);
        dev_now.ok() && dev_now->attached.empty() &&
        !dev_now->uuid.has_value()) {
      (void)pool_->Remove(*result);
    }
    return;
  }
  ++scheduled_count_;
  cluster_->api().events().Record(
      "kubeshare-sched", "sharepod/" + name, "Scheduled",
      "vGPU " + result->value() + " on " + device->node);
}

}  // namespace ks::kubeshare
