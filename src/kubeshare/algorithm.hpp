#pragma once

#include <string>
#include <vector>

#include "common/status.hpp"
#include "kubeshare/algorithm_variant.hpp"
#include "kubeshare/pool.hpp"

namespace ks::kubeshare {

/// A scheduling request: the `r` of Algorithm 1.
struct ScheduleRequest {
  std::string sharepod;
  vgpu::ResourceSpec gpu;
  LocalitySpec locality;
  /// If non-empty, the user pinned the node (SharePodSpec.nodeName); the
  /// device must live there.
  std::string node_constraint;
};

/// Per-node count of physical GPUs not yet converted into vGPUs (and not
/// held by native pods) — the supply new_dev() can draw from.
struct NodeFreeGpus {
  std::string node;
  int free = 0;
};

/// Locality & Resource Aware Scheduling — the paper's Algorithm 1,
/// implemented verbatim over the vGPU pool:
///
///  Step 1  If the request carries an affinity label and a device already
///          has it, the request MUST go there; exclusion/anti-affinity/
///          capacity conflicts are hard rejections (kRejected). If no
///          device carries the label yet, prefer an idle device, else a
///          new one, so future same-affinity requests have room.
///  Step 2  Otherwise filter devices by exclusion, anti-affinity and
///          residual resources (idle devices pass trivially).
///  Step 3  best-fit among devices WITHOUT affinity labels; then worst-fit
///          among devices WITH affinity labels (keep labelled devices
///          roomy for their future co-residents); finally a new device.
///
/// On success the placement is reserved in the pool (Attach / Create) and
/// the GPUID is returned. Error codes distinguish outcomes:
///   kRejected     — constraint violation, terminal ("return -1");
///   kUnavailable  — no capacity now, the caller should retry later
///                   (new_dev() needs a free physical GPU).
Expected<GpuId> ScheduleSharePod(VgpuPool& pool, const ScheduleRequest& r,
                                 const std::vector<NodeFreeGpus>& free_gpus,
                                 PlacementVariant variant =
                                     PlacementVariant::kPaper);

/// Reference implementation of Algorithm 1: the literal three-step scan
/// over pool.List(), rebuilding the per-node attach counts per request.
/// Kept verbatim as the behavioral oracle — ScheduleSharePod is the
/// index-accelerated path and must pick the same device for the same pool
/// state and request (cross-checked by the scheduler-equivalence property
/// test). Use this one when auditing against the paper's pseudo-code.
Expected<GpuId> ScheduleSharePodReference(
    VgpuPool& pool, const ScheduleRequest& r,
    const std::vector<NodeFreeGpus>& free_gpus,
    PlacementVariant variant = PlacementVariant::kPaper);

}  // namespace ks::kubeshare
