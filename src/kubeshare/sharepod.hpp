#pragma once

#include <optional>
#include <string>

#include "common/ids.hpp"
#include "k8s/objects.hpp"
#include "vgpu/resource_spec.hpp"

namespace ks::kubeshare {

/// Environment variables through which KubeShare-DevMgr passes the vGPU
/// binding and resource spec into the container (consumed by the in-container
/// device library; paper §4.4 "install and initialize the device library
/// inside the container").
/// Label stamped on every native pod KubeShare creates, so its own GPU
/// consumption can be told apart from other users' native GPU pods.
inline constexpr const char* kManagedLabel = "kubeshare.io/managed";
/// Role label on managed pods: "acquisition" (the empty pod that holds a
/// physical GPU for the vGPU pool) or "workload" (the user's container).
inline constexpr const char* kRoleLabel = "kubeshare.io/role";
inline constexpr const char* kRoleAcquisition = "acquisition";
inline constexpr const char* kRoleWorkload = "workload";
/// GPUID an acquisition pod holds the physical GPU for. Stamped at
/// creation so a restarted DevMgr can rebuild the GPUID<->UUID half of the
/// vGPU pool from the apiserver alone (the pod's node selector names the
/// node; its effective environment carries the UUID once Running).
inline constexpr const char* kGpuIdLabel = "kubeshare.io/gpu-id";
/// Slice placement of a spatially-shared workload pod, "offset/groups"
/// (e.g. "2/1"): observability only — the authoritative copy lives in the
/// SharePodSpec so a restarted DevMgr rebuilds placements from the CRD.
inline constexpr const char* kSliceLabel = "kubeshare.io/slice";

inline constexpr const char* kEnvSharePod = "KUBESHARE_SHAREPOD";
inline constexpr const char* kEnvGpuId = "KUBESHARE_GPUID";
inline constexpr const char* kEnvGpuRequest = "KUBESHARE_GPU_REQUEST";
inline constexpr const char* kEnvGpuLimit = "KUBESHARE_GPU_LIMIT";
inline constexpr const char* kEnvGpuMem = "KUBESHARE_GPU_MEM";
/// SM-group slice claim (integer; absent or "0" = temporal full-GPU).
inline constexpr const char* kEnvSliceGroups = "KUBESHARE_SLICE_GROUPS";

/// Locality constraints of §4.2: all three are arbitrary string labels.
struct LocalitySpec {
  /// Containers with the same affinity label are forced onto one GPU.
  std::optional<Label> affinity;
  /// Containers with the same anti-affinity label are forced onto
  /// different GPUs.
  std::optional<Label> anti_affinity;
  /// GPU sharing is excluded across different exclusion labels: a device
  /// carrying exclusion label X only accepts containers labelled X.
  std::optional<Label> exclusion;
};

/// SharePodSpec (paper Script 1): the original PodSpec plus GPU usage
/// requirements, the (virtual) GPU identifier and its node. gpu_id and
/// node_name are normally filled in by KubeShare-Sched, but a user may set
/// them directly — GPUs are first-class, explicitly addressable resources.
struct SharePodSpec {
  k8s::PodSpec pod;
  vgpu::ResourceSpec gpu;
  LocalitySpec locality;
  GpuId gpu_id;            // empty until scheduled (or user-pinned)
  std::string node_name;   // empty until scheduled (or user-pinned)
  /// First SM group of the slice KubeShare-Sched assigned when
  /// gpu.slice_groups > 0 on a spatial pool; -1 until placed. Persisted in
  /// the spec so a restarted DevMgr re-attaches the exact same groups.
  int slice_offset = -1;
  /// Scheduling priority: higher-priority sharePods leave the queue first
  /// (ties break FIFO). No preemption — priority orders admission only,
  /// like Kubernetes PriorityClass without the eviction half.
  int priority = 0;
};

enum class SharePodPhase {
  kPending,     // created, not yet mapped to a vGPU
  kScheduled,   // GPUID assigned, vGPU/workload pod being prepared
  kRunning,     // workload container running with the device library
  kSucceeded,
  kFailed,
  kRejected,    // constraint violation (Algorithm 1 "return -1")
};

inline const char* SharePodPhaseName(SharePodPhase p) {
  switch (p) {
    case SharePodPhase::kPending: return "Pending";
    case SharePodPhase::kScheduled: return "Scheduled";
    case SharePodPhase::kRunning: return "Running";
    case SharePodPhase::kSucceeded: return "Succeeded";
    case SharePodPhase::kFailed: return "Failed";
    case SharePodPhase::kRejected: return "Rejected";
  }
  return "Unknown";
}

struct SharePodStatus {
  SharePodPhase phase = SharePodPhase::kPending;
  /// Name of the native pod DevMgr launched for this sharePod.
  std::string workload_pod;
  std::string message;
  std::optional<Time> scheduled_time;
  std::optional<Time> running_time;
  std::optional<Time> finished_time;
};

/// The custom resource KubeShare registers with the apiserver (operator
/// pattern: custom resource + custom controller, §4.6).
struct SharePod {
  k8s::ObjectMeta meta;
  SharePodSpec spec;
  SharePodStatus status;

  bool scheduled() const { return !spec.gpu_id.empty(); }
  bool terminal() const {
    return status.phase == SharePodPhase::kSucceeded ||
           status.phase == SharePodPhase::kFailed ||
           status.phase == SharePodPhase::kRejected;
  }
};

}  // namespace ks::kubeshare
