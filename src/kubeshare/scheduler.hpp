#pragma once

#include <deque>
#include <functional>
#include <string>
#include <unordered_set>

#include "common/stats.hpp"
#include "k8s/cluster.hpp"
#include "k8s/store.hpp"
#include "kubeshare/algorithm.hpp"
#include "kubeshare/config.hpp"
#include "kubeshare/pool.hpp"
#include "kubeshare/sharepod.hpp"

namespace ks::kubeshare {

/// KubeShare-Sched: the controller that decides the container -> vGPU
/// mapping (paper §4.3). It watches unscheduled sharePods, runs Algorithm 1
/// against the vGPU pool, and writes the chosen GPUID/nodeName back into
/// the SharePodSpec; KubeShare-DevMgr picks the update up from there.
///
/// Scheduling is serial, one cycle at a time, costing
/// sched_fixed + sched_per_sharepod * |sharePods| (the O(N) complexity of
/// Fig 11 — each cycle re-reads every sharePod's status through the
/// apiserver).
class KubeShareSched {
 public:
  KubeShareSched(k8s::Cluster* cluster,
                 k8s::ObjectStore<SharePod>* sharepods, VgpuPool* pool,
                 KubeShareConfig config);

  Status Start();

  /// Chaos model of a scheduler process death: the watch is dropped and
  /// the in-memory queue/backoff state is lost. Timers already in flight
  /// become no-ops (epoch guard). The shared pool is NOT touched — it is
  /// DevMgr's state to lose.
  void Crash();

  /// Brings a crashed scheduler back. Re-watching replays every sharePod
  /// as an Added event (the informer list phase), which re-enqueues all
  /// still-unscheduled sharePods — the relist IS the state reconstruction.
  Status Restart();

  /// Leader-election hook: writes are stamped with the token this returns
  /// (0 = unfenced). A deposed leader keeps returning its stale token, so
  /// the store rejects its writes — which is the point.
  void SetFencingTokenProvider(std::function<std::uint64_t()> provider);

  /// Free physical (not-yet-vGPU) GPUs per node: node capacity minus vGPUs
  /// already acquired there minus native GPU pods. This is the supply
  /// Algorithm 1's new_dev() can draw on.
  ///
  /// Snapshot-based: the (node, capacity - native pods) base is rebuilt
  /// only when the pod or node store's resource version moves — one
  /// consistent relist per apiserver state, not per decision. The vGPU
  /// pool term is applied live at read time, and the placement write is
  /// still validated on commit (the OCC Conflict path in ScheduleOne), so
  /// a stale snapshot costs at most a retry, never a double booking.
  std::vector<NodeFreeGpus> FreePhysicalGpus() const;

  std::uint64_t scheduled_count() const { return scheduled_count_; }
  std::uint64_t rejected_count() const { return rejected_count_; }
  std::uint64_t retry_count() const { return retry_count_; }
  /// Snapshot cache behaviour: rebuilds vs. version-match reuses.
  std::uint64_t snapshot_refreshes() const { return snapshot_refreshes_; }
  std::uint64_t snapshot_hits() const { return snapshot_hits_; }
  std::uint64_t crashes() const { return crashes_; }
  /// Pure-algorithm time (wall clock) per decision — Fig 11's subject.
  const RunningStats& decision_stats() const { return decision_stats_; }

 private:
  void OnSharePodEvent(const k8s::WatchEvent<SharePod>& event);
  void Enqueue(const std::string& name);
  void Pump();
  void ScheduleOne(const std::string& name);
  void HandlePinned(SharePod pod);
  std::uint64_t Token() const;

  k8s::Cluster* cluster_;
  k8s::ObjectStore<SharePod>* sharepods_;
  VgpuPool* pool_;
  KubeShareConfig config_;
  std::function<std::uint64_t()> token_provider_;

  std::deque<std::string> queue_;
  std::unordered_set<std::string> queued_;
  /// Unschedulable sharePods parked until the next flush. Flushing them
  /// back as a group (rather than per-pod timers) lets priority reorder
  /// the contenders every time capacity might have freed up.
  std::unordered_set<std::string> waiting_;
  bool flush_scheduled_ = false;
  bool cycle_active_ = false;
  bool started_ = false;
  k8s::WatchId watch_ = 0;
  /// Bumped by Crash so timers scheduled pre-crash no-op post-restart.
  std::uint64_t epoch_ = 0;
  std::uint64_t crashes_ = 0;

  std::uint64_t scheduled_count_ = 0;
  std::uint64_t rejected_count_ = 0;
  std::uint64_t retry_count_ = 0;
  RunningStats decision_stats_;

  /// FreePhysicalGpus snapshot cache, keyed on the pod/node store versions
  /// it was built from. mutable: the cache is an observable-behaviour-free
  /// memoization of a const query.
  mutable std::vector<NodeFreeGpus> snapshot_base_;
  mutable std::uint64_t snapshot_pods_version_ = 0;
  mutable std::uint64_t snapshot_nodes_version_ = 0;
  mutable bool snapshot_valid_ = false;
  mutable std::uint64_t snapshot_refreshes_ = 0;
  mutable std::uint64_t snapshot_hits_ = 0;
};

}  // namespace ks::kubeshare
