#pragma once

#include <deque>
#include <functional>
#include <string>
#include <unordered_set>

#include "common/stats.hpp"
#include "k8s/cluster.hpp"
#include "k8s/store.hpp"
#include "kubeshare/algorithm.hpp"
#include "kubeshare/config.hpp"
#include "kubeshare/pool.hpp"
#include "kubeshare/sharepod.hpp"

namespace ks::kubeshare {

/// KubeShare-Sched: the controller that decides the container -> vGPU
/// mapping (paper §4.3). It watches unscheduled sharePods, runs Algorithm 1
/// against the vGPU pool, and writes the chosen GPUID/nodeName back into
/// the SharePodSpec; KubeShare-DevMgr picks the update up from there.
///
/// Scheduling is serial, one cycle at a time, costing
/// sched_fixed + sched_per_sharepod * |sharePods| (the O(N) complexity of
/// Fig 11 — each cycle re-reads every sharePod's status through the
/// apiserver).
class KubeShareSched {
 public:
  KubeShareSched(k8s::Cluster* cluster,
                 k8s::ObjectStore<SharePod>* sharepods, VgpuPool* pool,
                 KubeShareConfig config);

  Status Start();

  /// Free physical (not-yet-vGPU) GPUs per node: node capacity minus vGPUs
  /// already acquired there minus native GPU pods. This is the supply
  /// Algorithm 1's new_dev() can draw on.
  std::vector<NodeFreeGpus> FreePhysicalGpus() const;

  std::uint64_t scheduled_count() const { return scheduled_count_; }
  std::uint64_t rejected_count() const { return rejected_count_; }
  std::uint64_t retry_count() const { return retry_count_; }
  /// Pure-algorithm time (wall clock) per decision — Fig 11's subject.
  const RunningStats& decision_stats() const { return decision_stats_; }

 private:
  void OnSharePodEvent(const k8s::WatchEvent<SharePod>& event);
  void Enqueue(const std::string& name);
  void Pump();
  void ScheduleOne(const std::string& name);
  void HandlePinned(SharePod pod);

  k8s::Cluster* cluster_;
  k8s::ObjectStore<SharePod>* sharepods_;
  VgpuPool* pool_;
  KubeShareConfig config_;

  std::deque<std::string> queue_;
  std::unordered_set<std::string> queued_;
  /// Unschedulable sharePods parked until the next flush. Flushing them
  /// back as a group (rather than per-pod timers) lets priority reorder
  /// the contenders every time capacity might have freed up.
  std::unordered_set<std::string> waiting_;
  bool flush_scheduled_ = false;
  bool cycle_active_ = false;
  bool started_ = false;

  std::uint64_t scheduled_count_ = 0;
  std::uint64_t rejected_count_ = 0;
  std::uint64_t retry_count_ = 0;
  RunningStats decision_stats_;
};

}  // namespace ks::kubeshare
