#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/status.hpp"
#include "kubeshare/sharepod.hpp"
#include "spatial/geometry.hpp"

namespace ks::kubeshare {

/// Lifecycle of a vGPU (paper §4.4): created (acquiring the physical GPU
/// from Kubernetes), active (>= 1 sharePod attached), idle (still held,
/// nothing attached), and deletion (released back to Kubernetes).
enum class VgpuState { kCreating, kActive, kIdle };

inline const char* VgpuStateName(VgpuState s) {
  switch (s) {
    case VgpuState::kCreating: return "Creating";
    case VgpuState::kActive: return "Active";
    case VgpuState::kIdle: return "Idle";
  }
  return "Unknown";
}

/// One entry of the vGPU pool: the scheduler's view of a shared device.
/// used_util / used_mem are the sums of the attached sharePods' gpu_request
/// and gpu_mem — the commitments Algorithm 1 packs against (the elastic
/// runtime allocation above the requests is the token backend's business,
/// not the scheduler's).
struct VgpuInfo {
  GpuId id;
  std::string node;
  std::optional<GpuUuid> uuid;  // known once the acquisition pod runs
  VgpuState state = VgpuState::kCreating;
  double used_util = 0.0;
  double used_mem = 0.0;
  std::set<Label> affinity;
  std::set<Label> anti_affinity;
  std::optional<Label> exclusion;
  std::set<std::string> attached;  // sharePod names
  /// SM-group occupancy (spatial pools only; groups()==0 otherwise).
  /// Maintained incrementally by Attach/Detach from the slice claims.
  spatial::SliceMap slices;

  double residual_util() const { return 1.0 - used_util; }
  double residual_mem() const { return 1.0 - used_mem; }
  bool idle() const { return attached.empty(); }
};

/// The vGPU pool: all shared GPUs currently held by KubeShare, spread over
/// the cluster's nodes. KubeShare-Sched reserves placements here
/// synchronously (so concurrent scheduling can never over-commit a device)
/// and KubeShare-DevMgr drives each entry through its lifecycle.
class VgpuPool {
 public:
  /// With memory over-commitment on (GPUswap extension), Attach enforces
  /// `factor` x capacity instead of the physical gpu_mem residual — the
  /// device library swaps the overflow. factor 0 = unbounded (legacy).
  void set_memory_overcommit(bool enabled, double factor = 0.0) {
    memory_overcommit_ = enabled;
    overcommit_factor_ = factor;
  }
  bool memory_overcommit() const { return memory_overcommit_; }
  double memory_overcommit_factor() const { return overcommit_factor_; }
  /// The gpu_mem sum a device may carry: 1.0 normally, the configured
  /// factor (or infinity when 0) under over-commitment.
  double mem_capacity() const;

  /// Turns on MIG-style spatial sharing: every device (existing and
  /// future) carries a SliceMap of `sm_groups` SM groups, and Attach
  /// allocates contiguous slice runs for specs with slice_groups > 0.
  /// Survives Clear() — it is process configuration, not pool state.
  void EnableSpatial(int sm_groups);
  bool spatial_enabled() const { return sm_groups_ > 0; }
  int sm_groups() const { return sm_groups_; }

  /// Adds a vGPU in kCreating state on `node` with a fresh id.
  /// KubeShare-Sched calls this through new_dev() in Algorithm 1.
  VgpuInfo& Create(const std::string& node);

  /// Adds a vGPU with a caller-chosen id (user-pinned GPUIDs).
  Expected<GpuId> CreateWithId(const GpuId& id, const std::string& node);

  bool Contains(const GpuId& id) const { return entries_.count(id) > 0; }
  Expected<VgpuInfo> Get(const GpuId& id) const;
  VgpuInfo* Find(const GpuId& id);

  std::vector<const VgpuInfo*> List() const;
  std::size_t size() const { return entries_.size(); }
  std::size_t CountOnNode(const std::string& node) const;

  /// Ordered read access to all entries, without materializing the
  /// pointer vector List() builds.
  const std::map<GpuId, VgpuInfo>& entries() const { return entries_; }

  // ---- Incremental indices (see docs/performance.md) -------------------
  // Maintained by every mutator so the scheduler never rescans the pool.
  // All GpuId/string-keyed values, no pointers: copying the pool (the
  // gang-admission dry run does) copies consistent indices. Each set
  // iterates in GpuId order — the same order as entries_ — which is what
  // keeps the indexed scheduler's picks identical to the reference scan.

  /// Devices with no attachments (VgpuInfo::idle()), in GpuId order.
  const std::set<GpuId>& idle_devices() const { return idle_; }

  /// Devices carrying affinity label `l`, in GpuId order; nullptr if none.
  const std::set<GpuId>* DevicesWithAffinity(const Label& l) const;

  /// Total attachments across devices on `node` (the scheduler's
  /// tie-break key), without a pool scan.
  int AttachedOnNode(const std::string& node) const;

  /// Largest residual compute capacity over all devices; -1 when the pool
  /// is empty. A request above this cannot fit any existing device, which
  /// lets the scheduler skip straight to the new-device path.
  double MaxResidualUtil() const;

  /// Rebuilds every index from entries_/attachments_ and compares with the
  /// incrementally-maintained state. Test hook: any mismatch is a bug in a
  /// mutator's index upkeep.
  Status CheckIndexInvariants() const;

  /// Marks the acquisition complete (UUID learned from the launched pod).
  Status Activate(const GpuId& id, const GpuUuid& uuid);

  /// Reserves capacity and labels for `sharepod` on device `id`. Fails if
  /// the reservation would over-commit or violate the device's exclusion
  /// label; label sets are extended as Algorithm 1 lines 7/11-13 do.
  /// `slice_offset` applies only on spatial pools with gpu.slice_groups
  /// > 0: -1 lets the pool pick the first-fit (lowest-offset) free run; a
  /// concrete offset pins the exact groups (DevMgr rebuild re-attaching
  /// the placement the scheduler persisted in the SharePodSpec).
  Status Attach(const GpuId& id, const std::string& sharepod,
                const vgpu::ResourceSpec& gpu, const LocalitySpec& locality,
                int slice_offset = -1);

  /// The slice run (offset, groups) a sharePod holds, if it holds one.
  std::optional<std::pair<int, int>> SliceOf(const std::string& sharepod)
      const;

  /// Pool-wide slice fragmentation ratio (0 on non-spatial pools).
  double FragmentationRatio() const;

  /// Adjusts an existing attachment's compute reservation in place
  /// (vertical resize). Fails if the new gpu_request does not fit the
  /// device's residual capacity (memory is not resizable: the container's
  /// allocations are already placed).
  Status UpdateAttachment(const std::string& sharepod, double gpu_request,
                          double gpu_limit);

  /// Releases the sharePod's reservation. Device label sets and usage are
  /// recomputed from the remaining attachments (the paper's pseudo-code
  /// only accumulates labels; for a long-lived pool they must decay when
  /// their contributors leave, or anti-affinity would block devices
  /// forever). Returns the device the sharePod was attached to.
  Expected<GpuId> Detach(const std::string& sharepod);

  /// Removes an idle vGPU from the pool (the deletion phase).
  Status Remove(const GpuId& id);

  /// GPUID of the device a sharePod is attached to, if any.
  std::optional<GpuId> DeviceOf(const std::string& sharepod) const;

  /// Crash model: drops every entry, attachment, and index — the
  /// in-memory state a dead DevMgr loses. The id counter survives on
  /// purpose: GPUIDs already recorded in sharePod specs at the apiserver
  /// must never be re-minted for a different device after the restart.
  void Clear();

  /// Rebuild helper: after re-creating entries whose counter-derived ids
  /// ("vgpu-N") were recovered from the apiserver, advance the counter
  /// past the largest recovered N so fresh ids stay unique.
  void EnsureNextIdAtLeast(std::uint64_t next);

  /// Canonical full dump (sorted entries, %.6f usage) for state-equality
  /// assertions: a pool rebuilt from apiserver objects must render
  /// byte-identical to the never-crashed pool. Fixed precision absorbs the
  /// ulp drift of summing the same attachments in a different order.
  std::string DebugString() const;

 private:
  struct Attachment {
    GpuId device;
    vgpu::ResourceSpec gpu;
    LocalitySpec locality;
    int slice_offset = -1;  // -1: no slice held (temporal attachment)
  };

  void RecomputeDevice(VgpuInfo& dev);

  /// Index upkeep around a mutation of `dev`'s usage/labels/attachments.
  /// Call OnBeforeDeviceChange with the device's current state, mutate,
  /// then OnAfterDeviceChange with the new state.
  void OnBeforeDeviceChange(const VgpuInfo& dev);
  void OnAfterDeviceChange(const VgpuInfo& dev);

  std::map<GpuId, VgpuInfo> entries_;
  std::map<std::string, Attachment> attachments_;
  std::uint64_t next_id_ = 1;
  bool memory_overcommit_ = false;
  double overcommit_factor_ = 0.0;  // 0: unbounded when over-committing
  int sm_groups_ = 0;  // 0: spatial sharing off

  // Incremental indices — see the accessor block above.
  std::set<GpuId> idle_;
  std::map<Label, std::set<GpuId>> affinity_index_;
  std::map<std::string, int> node_attached_;
  std::map<std::string, int> node_devices_;
  std::multiset<double> residuals_;
};

}  // namespace ks::kubeshare
