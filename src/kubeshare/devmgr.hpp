#pragma once

#include <map>
#include <string>
#include <unordered_map>

#include "k8s/cluster.hpp"
#include "k8s/store.hpp"
#include "kubeshare/config.hpp"
#include "kubeshare/pool.hpp"
#include "kubeshare/sharepod.hpp"

namespace ks::kubeshare {

/// KubeShare-DevMgr: the custom controller that owns the vGPU lifecycle and
/// the explicit container <-> device binding (paper §4.4).
///
/// For each scheduled sharePod it:
///  1. ensures the target vGPU exists — acquiring a physical GPU from
///     Kubernetes by launching an empty *acquisition pod* that requests one
///     nvidia.com/gpu on the chosen node, and reading the device UUID out
///     of the environment the device plugin injected;
///  2. launches the *workload pod* bound directly to the node (bypassing
///     kube-scheduler), with NVIDIA_VISIBLE_DEVICES set to the vGPU's UUID
///     and the KUBESHARE_* variables the in-container device library reads;
///  3. mirrors the workload pod's phase back onto the sharePod; and
///  4. on detachment, applies the pool policy: on-demand releases idle
///     vGPUs (deleting the acquisition pod, handing the GPU back to
///     Kubernetes) while reservation keeps them idle for reuse.
class KubeShareDevMgr {
 public:
  KubeShareDevMgr(k8s::Cluster* cluster, k8s::ObjectStore<SharePod>* sharepods,
                  VgpuPool* pool, KubeShareConfig config);

  Status Start();

  /// Reservation-mode helper: pre-acquires a vGPU on `node` so later
  /// sharePods skip the acquisition latency (§4.4 "reservation manner").
  Expected<GpuId> ReserveVgpu(const std::string& node);

  std::uint64_t vgpus_created() const { return vgpus_created_; }
  std::uint64_t vgpus_released() const { return vgpus_released_; }
  std::uint64_t workload_pods_launched() const { return workload_launched_; }

 private:
  enum class RecState {
    kAwaitingVgpu,    // vGPU still acquiring its physical GPU
    kLaunching,       // workload pod being created
    kRunning,
    kDone,
  };
  struct SharePodRec {
    RecState state = RecState::kAwaitingVgpu;
    GpuId device;
    std::string workload_pod;
  };

  void OnSharePodEvent(const k8s::WatchEvent<SharePod>& event);
  void OnPodEvent(const k8s::WatchEvent<k8s::Pod>& event);

  void HandleScheduled(const SharePod& pod);
  /// Pinned-GPUID path: the user wrote gpu_id directly; DevMgr validates
  /// and reserves the placement that KubeShare-Sched would otherwise have
  /// made.
  Status EnsureAttached(const SharePod& pod);
  void EnsureVgpu(const GpuId& id);
  void LaunchWorkloadPod(const std::string& sharepod_name);
  void FinishSharePod(const std::string& name, SharePodPhase phase,
                      const std::string& message = "");
  void TearDown(const std::string& name);
  void MaybeReleaseVgpu(const GpuId& id);
  void SetSharePodPhase(const std::string& name, SharePodPhase phase,
                        const std::string& message = "");

  k8s::Cluster* cluster_;
  k8s::ObjectStore<SharePod>* sharepods_;
  VgpuPool* pool_;
  KubeShareConfig config_;
  bool started_ = false;

  std::unordered_map<std::string, SharePodRec> records_;
  std::map<GpuId, std::string> acquisition_pods_;   // vGPU -> pod name
  std::map<std::string, GpuId> acquisition_owner_;  // pod name -> vGPU
  std::map<std::string, std::string> workload_owner_;  // pod -> sharePod

  std::uint64_t vgpus_created_ = 0;
  std::uint64_t vgpus_released_ = 0;
  std::uint64_t workload_launched_ = 0;
  std::uint64_t next_acq_ = 1;
};

}  // namespace ks::kubeshare
