#pragma once

#include <functional>
#include <map>
#include <string>
#include <unordered_map>

#include "k8s/cluster.hpp"
#include "k8s/store.hpp"
#include "kubeshare/config.hpp"
#include "kubeshare/pool.hpp"
#include "kubeshare/sharepod.hpp"

namespace ks::kubeshare {

/// KubeShare-DevMgr: the custom controller that owns the vGPU lifecycle and
/// the explicit container <-> device binding (paper §4.4).
///
/// For each scheduled sharePod it:
///  1. ensures the target vGPU exists — acquiring a physical GPU from
///     Kubernetes by launching an empty *acquisition pod* that requests one
///     nvidia.com/gpu on the chosen node, and reading the device UUID out
///     of the environment the device plugin injected;
///  2. launches the *workload pod* bound directly to the node (bypassing
///     kube-scheduler), with NVIDIA_VISIBLE_DEVICES set to the vGPU's UUID
///     and the KUBESHARE_* variables the in-container device library reads;
///  3. mirrors the workload pod's phase back onto the sharePod; and
///  4. on detachment, applies the pool policy: on-demand releases idle
///     vGPUs (deleting the acquisition pod, handing the GPU back to
///     Kubernetes) while reservation keeps them idle for reuse.
class KubeShareDevMgr {
 public:
  KubeShareDevMgr(k8s::Cluster* cluster, k8s::ObjectStore<SharePod>* sharepods,
                  VgpuPool* pool, KubeShareConfig config);

  Status Start();

  /// Chaos model of a DevMgr process death: both watches drop, the
  /// SharePodRec / acquisition-pod tables are lost, and the in-memory
  /// vGPU pool — DevMgr's to own — is wiped (paper §4.2: DevMgr holds the
  /// only copy of the GPUID<->UUID mapping). Timers already in flight
  /// become no-ops (epoch guard). Nothing at the apiserver is touched:
  /// acquisition pods keep holding their physical GPUs, workload pods
  /// keep running — which is exactly what Restart rebuilds from.
  void Crash();

  /// Brings a crashed DevMgr back: relists from the apiserver, rebuilds
  /// the vGPU pool and record tables (RebuildFromApiServer), then
  /// re-watches — replayed Added events and the periodic reconcile pass
  /// idempotently repair whatever moved during the downtime.
  Status Restart();

  /// State reconstruction, callable on any start: rebuilds the pool from
  /// acquisition pods (GPUID label -> node/UUID binding), re-attaches
  /// every scheduled sharePod, re-adopts live workload pods, and releases
  /// orphaned vGPUs per the pool policy. Idempotent over current pool
  /// contents; cross-checked by VgpuPool::CheckIndexInvariants().
  Status RebuildFromApiServer();

  /// Leader-election hook: writes are stamped with the token this returns
  /// (0 = unfenced), so a deposed DevMgr's stale writes are rejected.
  void SetFencingTokenProvider(std::function<std::uint64_t()> provider);

  /// Reservation-mode helper: pre-acquires a vGPU on `node` so later
  /// sharePods skip the acquisition latency (§4.4 "reservation manner").
  Expected<GpuId> ReserveVgpu(const std::string& node);

  /// One reconcile/resync pass (also runs periodically when
  /// KubeShareConfig::reconcile_period > 0):
  ///  1. vGPUs on NotReady nodes are reclaimed — their GPUID<->UUID binding
  ///     is dead with the node — and their sharePods requeued;
  ///  2. records whose workload pod reached a terminal phase without the
  ///     watch delivering it (dropped event) are repaired;
  ///  3. scheduled sharePods the watch never delivered are adopted.
  void ReconcileOnce();

  /// Isolation-enforcement hook: a node's token backend reports a repeat
  /// offender (violation ledger past the eviction threshold); DevMgr maps
  /// the container back to its sharePod and fails it through the normal
  /// teardown path. No-op when no running workload pod on `node` maps to
  /// `container` (already finished or torn down).
  void EvictTenant(const std::string& node, const ContainerId& container,
                   const std::string& reason);

  std::uint64_t vgpus_created() const { return vgpus_created_; }
  std::uint64_t vgpus_released() const { return vgpus_released_; }
  std::uint64_t workload_pods_launched() const { return workload_launched_; }
  /// vGPUs garbage-collected off dead nodes by the reconcile pass.
  std::uint64_t vgpus_reclaimed() const { return vgpus_reclaimed_; }
  /// SharePods sent back through KubeShare-Sched after losing their node,
  /// device, or container to an infrastructure fault.
  std::uint64_t sharepods_requeued() const { return sharepods_requeued_; }
  std::uint64_t reconcile_passes() const { return reconcile_passes_; }
  std::uint64_t crashes() const { return crashes_; }
  std::uint64_t rebuilds() const { return rebuilds_; }
  /// vGPU entries / sharePod records recovered by the last rebuild.
  std::uint64_t rebuilt_vgpus() const { return rebuilt_vgpus_; }
  std::uint64_t rebuilt_records() const { return rebuilt_records_; }
  /// SharePods failed by isolation enforcement (EvictTenant).
  std::uint64_t tenants_evicted() const { return tenants_evicted_; }

 private:
  enum class RecState {
    kAwaitingVgpu,    // vGPU still acquiring its physical GPU
    kLaunching,       // workload pod being created
    kRunning,
    kDone,
  };
  struct SharePodRec {
    RecState state = RecState::kAwaitingVgpu;
    GpuId device;
    std::string workload_pod;
  };

  void OnSharePodEvent(const k8s::WatchEvent<SharePod>& event);
  void OnPodEvent(const k8s::WatchEvent<k8s::Pod>& event);

  void HandleScheduled(const SharePod& pod);
  /// Strips the sharePod's placement (gpu_id/node_name/workload pod) and
  /// returns it to Pending so KubeShare-Sched places it again. The stale
  /// workload-pod object is deleted so the name can be reused.
  void Requeue(const std::string& name, const std::string& reason);
  /// Routes a failed workload pod: infrastructure kills ("NodeLost",
  /// "OOMKilled") requeue when configured; anything else fails the
  /// sharePod.
  void OnWorkloadPodFailed(const std::string& sharepod_name,
                           const std::string& message);
  /// Drops a vGPU whose physical binding is gone (dead node / evicted
  /// acquisition pod) and requeues every attached sharePod.
  void ReclaimVgpu(const GpuId& id, const std::string& detail);
  void ScheduleReconcile();
  /// Pinned-GPUID path: the user wrote gpu_id directly; DevMgr validates
  /// and reserves the placement that KubeShare-Sched would otherwise have
  /// made.
  Status EnsureAttached(const SharePod& pod);
  void EnsureVgpu(const GpuId& id);
  /// Completes a pending vGPU from its Running acquisition pod: reads the
  /// UUID out of the injected environment, activates the pool entry, and
  /// launches every sharePod that was waiting. Called from the watch path
  /// and from the reconcile pass (a dropped Running event otherwise
  /// strands the vGPU in kPending forever). No-op if already active.
  void ActivateVgpuFromPod(const GpuId& id, const k8s::Pod& pod);
  void LaunchWorkloadPod(const std::string& sharepod_name);
  void FinishSharePod(const std::string& name, SharePodPhase phase,
                      const std::string& message = "");
  void TearDown(const std::string& name);
  void MaybeReleaseVgpu(const GpuId& id);
  void SetSharePodPhase(const std::string& name, SharePodPhase phase,
                        const std::string& message = "");
  void ScheduleLaunch(const std::string& name);
  std::uint64_t Token() const;

  k8s::Cluster* cluster_;
  k8s::ObjectStore<SharePod>* sharepods_;
  VgpuPool* pool_;
  KubeShareConfig config_;
  std::function<std::uint64_t()> token_provider_;
  bool started_ = false;
  k8s::WatchId sharepod_watch_ = 0;
  k8s::WatchId pod_watch_ = 0;
  /// Bumped by Crash so timers scheduled pre-crash no-op post-restart.
  std::uint64_t epoch_ = 0;

  std::unordered_map<std::string, SharePodRec> records_;
  std::map<GpuId, std::string> acquisition_pods_;   // vGPU -> pod name
  std::map<std::string, GpuId> acquisition_owner_;  // pod name -> vGPU
  std::map<std::string, std::string> workload_owner_;  // pod -> sharePod

  std::uint64_t vgpus_created_ = 0;
  std::uint64_t vgpus_released_ = 0;
  std::uint64_t workload_launched_ = 0;
  std::uint64_t vgpus_reclaimed_ = 0;
  std::uint64_t sharepods_requeued_ = 0;
  std::uint64_t reconcile_passes_ = 0;
  std::uint64_t crashes_ = 0;
  std::uint64_t rebuilds_ = 0;
  std::uint64_t rebuilt_vgpus_ = 0;
  std::uint64_t rebuilt_records_ = 0;
  std::uint64_t tenants_evicted_ = 0;
  std::uint64_t next_acq_ = 1;
};

}  // namespace ks::kubeshare
