#pragma once

#include "common/time.hpp"
#include "kubeshare/algorithm_variant.hpp"

namespace ks::kubeshare {

/// vGPU pool lifecycle policy (paper §4.4): on-demand releases idle vGPUs
/// back to Kubernetes immediately (lowest GPU hoarding, pays the
/// acquisition latency per miss); reservation keeps idle vGPUs around
/// (fast re-binding, but the kube-scheduler sees them as allocated);
/// hybrid — the "hybrid strategy can also be designed" the paper sketches
/// — keeps up to `hybrid_reserve` idle vGPUs and releases the rest.
enum class PoolPolicy { kOnDemand, kReservation, kHybrid };

struct KubeShareConfig {
  /// Fixed cost per KubeShare-Sched cycle...
  Duration sched_fixed = Millis(3);
  /// ...plus the per-SharePod status query cost — the O(N) term measured
  /// in Fig 11 (the paper's Go implementation stays under 400 ms at 100
  /// SharePods; 1.5 ms/SharePod keeps the same linear shape inside that
  /// bound without making the serial scheduler the throughput bottleneck).
  Duration sched_per_sharepod = Micros(1500);
  /// Backoff before retrying a SharePod that found no capacity.
  Duration sched_retry = Millis(500);
  /// DevMgr's vGPU info query + container environment preparation — the
  /// bulk of the ~15% no-creation overhead of Fig 10.
  Duration devmgr_query = Millis(250);
  PoolPolicy pool_policy = PoolPolicy::kOnDemand;
  /// Idle vGPUs kept warm under PoolPolicy::kHybrid.
  int hybrid_reserve = 2;
  /// GPUswap-style memory over-commitment (DESIGN.md extension): the
  /// scheduler stops rejecting placements whose gpu_mem sum exceeds 1.0,
  /// and the device library swaps working sets on token grants. The
  /// workload host must also enable over-commitment so the frontends are
  /// wired to a SwapManager.
  bool allow_memory_overcommit = false;
  /// Bound on the per-device gpu_mem sum the scheduler will admit when
  /// over-commitment is on, as a multiple of physical capacity (e.g. 2.0
  /// packs up to 2x device memory of commitments per vGPU). 0 keeps the
  /// legacy unbounded behavior. Mirror of
  /// SwapConfig::oversubscription_factor so the scheduler's accounting
  /// stays consistent with what the device libraries will actually admit.
  double memory_overcommit_factor = 0.0;
  /// Step-3 placement policy (kPaper = Algorithm 1 as published; the other
  /// variants exist for the design-choice ablation).
  PlacementVariant placement = PlacementVariant::kPaper;
  /// Periodic DevMgr reconcile/resync pass (0 = disabled, the seed
  /// behavior). Each pass garbage-collects vGPUs and GPUID<->UUID bindings
  /// stranded on NotReady nodes, requeues their sharePods, repairs records
  /// whose terminal workload-pod transition was missed (a dropped watch
  /// event), and adopts scheduled sharePods the watch never delivered.
  Duration reconcile_period = Millis(0);
  /// Requeue a sharePod through KubeShare-Sched when its workload pod was
  /// killed by infrastructure failure ("NodeLost" eviction, "OOMKilled")
  /// instead of marking it Failed. Application failures still fail it.
  bool requeue_lost_workloads = true;
  /// Run the control plane behind a Lease-based leader election. The
  /// facade campaigns for the "kubeshare-controller" lease and stamps the
  /// won fencing token into every controller write, so a deposed replica's
  /// stale writes are rejected at the store instead of applied.
  bool enable_leader_election = false;
  /// Lease parameters when enable_leader_election is set (client-go
  /// defaults scaled to the simulation's pace).
  Duration lease_duration = Seconds(10);
  Duration lease_renew_period = Seconds(3);
  Duration lease_retry_period = Seconds(2);
};

}  // namespace ks::kubeshare
