#include "kubeshare/pool.hpp"

#include <cassert>
#include <cstdio>
#include <limits>

namespace ks::kubeshare {

namespace {
constexpr double kCapacityEps = 1e-9;
}

double VgpuPool::mem_capacity() const {
  if (!memory_overcommit_) return 1.0;
  if (overcommit_factor_ <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return overcommit_factor_;
}

void VgpuPool::EnableSpatial(int sm_groups) {
  assert(sm_groups >= 1 && sm_groups <= 64);
  sm_groups_ = sm_groups;
  for (auto& [id, dev] : entries_) {
    if (dev.slices.groups() != sm_groups_) {
      assert(dev.slices.UsedGroups() == 0);
      dev.slices = spatial::SliceMap(sm_groups_);
    }
  }
}

VgpuInfo& VgpuPool::Create(const std::string& node) {
  // The paper's new_dev() "generates a device variable with a new hashed
  // id"; a counter-derived id is equally unique and keeps runs
  // deterministic.
  GpuId id("vgpu-" + std::to_string(next_id_++));
  VgpuInfo info;
  info.id = id;
  info.node = node;
  if (sm_groups_ > 0) info.slices = spatial::SliceMap(sm_groups_);
  auto [it, inserted] = entries_.emplace(id, std::move(info));
  assert(inserted);
  ++node_devices_[node];
  OnAfterDeviceChange(it->second);
  return it->second;
}

Expected<GpuId> VgpuPool::CreateWithId(const GpuId& id,
                                       const std::string& node) {
  if (id.empty()) return InvalidArgumentError("empty GPUID");
  if (entries_.count(id) > 0) {
    return AlreadyExistsError("vGPU exists: " + id.value());
  }
  VgpuInfo info;
  info.id = id;
  info.node = node;
  if (sm_groups_ > 0) info.slices = spatial::SliceMap(sm_groups_);
  auto [it, inserted] = entries_.emplace(id, std::move(info));
  ++node_devices_[node];
  OnAfterDeviceChange(it->second);
  return id;
}

Expected<VgpuInfo> VgpuPool::Get(const GpuId& id) const {
  auto it = entries_.find(id);
  if (it == entries_.end()) return NotFoundError("no vGPU: " + id.value());
  return it->second;
}

VgpuInfo* VgpuPool::Find(const GpuId& id) {
  auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : &it->second;
}

std::vector<const VgpuInfo*> VgpuPool::List() const {
  std::vector<const VgpuInfo*> out;
  out.reserve(entries_.size());
  for (const auto& [id, info] : entries_) out.push_back(&info);
  return out;
}

std::size_t VgpuPool::CountOnNode(const std::string& node) const {
  auto it = node_devices_.find(node);
  return it == node_devices_.end() ? 0 : static_cast<std::size_t>(it->second);
}

const std::set<GpuId>* VgpuPool::DevicesWithAffinity(const Label& l) const {
  auto it = affinity_index_.find(l);
  return it == affinity_index_.end() ? nullptr : &it->second;
}

int VgpuPool::AttachedOnNode(const std::string& node) const {
  auto it = node_attached_.find(node);
  return it == node_attached_.end() ? 0 : it->second;
}

double VgpuPool::MaxResidualUtil() const {
  return residuals_.empty() ? -1.0 : *residuals_.rbegin();
}

void VgpuPool::OnBeforeDeviceChange(const VgpuInfo& dev) {
  idle_.erase(dev.id);
  for (const Label& l : dev.affinity) {
    auto it = affinity_index_.find(l);
    if (it != affinity_index_.end()) {
      it->second.erase(dev.id);
      if (it->second.empty()) affinity_index_.erase(it);
    }
  }
  node_attached_[dev.node] -= static_cast<int>(dev.attached.size());
  auto it = residuals_.find(dev.residual_util());
  assert(it != residuals_.end());
  residuals_.erase(it);
}

void VgpuPool::OnAfterDeviceChange(const VgpuInfo& dev) {
  if (dev.idle()) idle_.insert(dev.id);
  for (const Label& l : dev.affinity) affinity_index_[l].insert(dev.id);
  node_attached_[dev.node] += static_cast<int>(dev.attached.size());
  residuals_.insert(dev.residual_util());
}

Status VgpuPool::CheckIndexInvariants() const {
  std::set<GpuId> idle;
  std::map<Label, std::set<GpuId>> affinity;
  std::map<std::string, int> attached;
  std::map<std::string, int> devices;
  std::multiset<double> residuals;
  for (const auto& [id, dev] : entries_) {
    if (dev.idle()) idle.insert(id);
    for (const Label& l : dev.affinity) affinity[l].insert(id);
    attached[dev.node] += static_cast<int>(dev.attached.size());
    ++devices[dev.node];
    residuals.insert(dev.residual_util());
  }
  // The incremental maps may retain zero-count entries for nodes whose
  // devices all left; normalize both sides before comparing.
  auto nonzero = [](const std::map<std::string, int>& m) {
    std::map<std::string, int> out;
    for (const auto& [k, v] : m) {
      if (v != 0) out.emplace(k, v);
    }
    return out;
  };
  if (idle != idle_) return InternalError("idle-device index out of sync");
  if (affinity != affinity_index_) {
    return InternalError("affinity-label index out of sync");
  }
  if (nonzero(attached) != nonzero(node_attached_)) {
    return InternalError("node-attached index out of sync");
  }
  if (nonzero(devices) != nonzero(node_devices_)) {
    return InternalError("node-device index out of sync");
  }
  if (residuals != residuals_) {
    return InternalError("residual index out of sync");
  }
  // Slice occupancy: replaying every attachment's recorded run into a
  // fresh map must reproduce each device's incrementally-maintained
  // bitmap exactly (and never collide).
  std::map<GpuId, spatial::SliceMap> slice_maps;
  for (const auto& [id, dev] : entries_) {
    slice_maps.emplace(id, spatial::SliceMap(dev.slices.groups()));
  }
  for (const auto& [name, att] : attachments_) {
    if (att.slice_offset < 0) continue;
    auto it = slice_maps.find(att.device);
    if (it == slice_maps.end()) {
      return InternalError("slice attachment to unknown device: " + name);
    }
    if (!it->second.Occupy(att.slice_offset, att.gpu.slice_groups).ok()) {
      return InternalError("overlapping slice attachments: " + name);
    }
  }
  for (const auto& [id, dev] : entries_) {
    if (slice_maps.at(id) != dev.slices) {
      return InternalError("slice occupancy out of sync on " + id.value());
    }
  }
  return Status::Ok();
}

Status VgpuPool::Activate(const GpuId& id, const GpuUuid& uuid) {
  VgpuInfo* dev = Find(id);
  if (dev == nullptr) return NotFoundError("no vGPU: " + id.value());
  if (dev->uuid.has_value()) {
    return FailedPreconditionError("vGPU already activated: " + id.value());
  }
  dev->uuid = uuid;
  dev->state = dev->attached.empty() ? VgpuState::kIdle : VgpuState::kActive;
  return Status::Ok();
}

Status VgpuPool::Attach(const GpuId& id, const std::string& sharepod,
                        const vgpu::ResourceSpec& gpu,
                        const LocalitySpec& locality, int slice_offset) {
  VgpuInfo* dev = Find(id);
  if (dev == nullptr) return NotFoundError("no vGPU: " + id.value());
  if (attachments_.count(sharepod) > 0) {
    return AlreadyExistsError("sharePod already attached: " + sharepod);
  }
  if (gpu.gpu_request > dev->residual_util() + kCapacityEps) {
    return ResourceExhaustedError("insufficient compute on " + id.value());
  }
  if (gpu.gpu_mem > mem_capacity() - dev->used_mem + kCapacityEps) {
    return ResourceExhaustedError("insufficient memory on " + id.value());
  }
  if (dev->exclusion.has_value() && locality.exclusion != dev->exclusion &&
      !dev->attached.empty()) {
    return RejectedError("exclusion label mismatch on " + id.value());
  }
  if (locality.anti_affinity.has_value() &&
      dev->anti_affinity.count(*locality.anti_affinity) > 0) {
    return RejectedError("anti-affinity violation on " + id.value());
  }
  // Spatial claims reserve a contiguous SM-group run. Claims are ignored
  // on non-spatial pools (the spec degrades to a temporal attachment).
  int granted_offset = -1;
  if (sm_groups_ > 0 && gpu.slice_groups > 0) {
    if (gpu.slice_groups > sm_groups_) {
      return RejectedError("slice claim exceeds device geometry on " +
                           id.value());
    }
    if (slice_offset >= 0) {
      if (!dev->slices.IsFree(slice_offset, gpu.slice_groups)) {
        return ResourceExhaustedError("pinned slice busy on " + id.value());
      }
      granted_offset = slice_offset;
    } else {
      auto fit = dev->slices.FirstFit(gpu.slice_groups);
      if (!fit.has_value()) {
        return ResourceExhaustedError("insufficient slice groups on " +
                                      id.value());
      }
      granted_offset = *fit;
    }
  }

  OnBeforeDeviceChange(*dev);
  if (granted_offset >= 0) {
    const Status occupied =
        dev->slices.Occupy(granted_offset, gpu.slice_groups);
    assert(occupied.ok());
    (void)occupied;
  }
  dev->used_util += gpu.gpu_request;
  dev->used_mem += gpu.gpu_mem;
  if (locality.affinity.has_value()) dev->affinity.insert(*locality.affinity);
  if (locality.anti_affinity.has_value()) {
    dev->anti_affinity.insert(*locality.anti_affinity);
  }
  dev->exclusion = locality.exclusion;
  dev->attached.insert(sharepod);
  if (dev->uuid.has_value()) dev->state = VgpuState::kActive;
  attachments_[sharepod] = {id, gpu, locality, granted_offset};
  OnAfterDeviceChange(*dev);
  return Status::Ok();
}

std::optional<std::pair<int, int>> VgpuPool::SliceOf(
    const std::string& sharepod) const {
  auto it = attachments_.find(sharepod);
  if (it == attachments_.end() || it->second.slice_offset < 0) {
    return std::nullopt;
  }
  return std::make_pair(it->second.slice_offset,
                        it->second.gpu.slice_groups);
}

double VgpuPool::FragmentationRatio() const {
  if (sm_groups_ == 0) return 0.0;
  std::vector<const spatial::SliceMap*> maps;
  maps.reserve(entries_.size());
  for (const auto& [id, dev] : entries_) maps.push_back(&dev.slices);
  return spatial::PoolFragmentationRatio(maps);
}

Status VgpuPool::UpdateAttachment(const std::string& sharepod,
                                  double gpu_request, double gpu_limit) {
  auto it = attachments_.find(sharepod);
  if (it == attachments_.end()) {
    return NotFoundError("sharePod not attached: " + sharepod);
  }
  vgpu::ResourceSpec updated = it->second.gpu;
  updated.gpu_request = gpu_request;
  updated.gpu_limit = gpu_limit;
  KS_RETURN_IF_ERROR(updated.Validate());
  VgpuInfo* dev = Find(it->second.device);
  assert(dev != nullptr);
  const double delta = gpu_request - it->second.gpu.gpu_request;
  if (delta > dev->residual_util() + kCapacityEps) {
    return ResourceExhaustedError("insufficient compute on " +
                                  it->second.device.value());
  }
  it->second.gpu = updated;
  OnBeforeDeviceChange(*dev);
  dev->used_util += delta;
  OnAfterDeviceChange(*dev);
  return Status::Ok();
}

Expected<GpuId> VgpuPool::Detach(const std::string& sharepod) {
  auto it = attachments_.find(sharepod);
  if (it == attachments_.end()) {
    return NotFoundError("sharePod not attached: " + sharepod);
  }
  const GpuId device = it->second.device;
  const int slice_offset = it->second.slice_offset;
  const int slice_groups = it->second.gpu.slice_groups;
  attachments_.erase(it);
  VgpuInfo* dev = Find(device);
  if (dev != nullptr) {
    OnBeforeDeviceChange(*dev);
    if (slice_offset >= 0) {
      const Status released = dev->slices.Release(slice_offset, slice_groups);
      assert(released.ok());
      (void)released;
    }
    dev->attached.erase(sharepod);
    RecomputeDevice(*dev);
    if (dev->attached.empty() && dev->uuid.has_value()) {
      dev->state = VgpuState::kIdle;
    }
    OnAfterDeviceChange(*dev);
  }
  return device;
}

void VgpuPool::RecomputeDevice(VgpuInfo& dev) {
  dev.used_util = 0.0;
  dev.used_mem = 0.0;
  dev.affinity.clear();
  dev.anti_affinity.clear();
  dev.exclusion.reset();
  for (const std::string& name : dev.attached) {
    const Attachment& a = attachments_.at(name);
    dev.used_util += a.gpu.gpu_request;
    dev.used_mem += a.gpu.gpu_mem;
    if (a.locality.affinity.has_value()) {
      dev.affinity.insert(*a.locality.affinity);
    }
    if (a.locality.anti_affinity.has_value()) {
      dev.anti_affinity.insert(*a.locality.anti_affinity);
    }
    if (a.locality.exclusion.has_value()) dev.exclusion = a.locality.exclusion;
  }
}

Status VgpuPool::Remove(const GpuId& id) {
  auto it = entries_.find(id);
  if (it == entries_.end()) return NotFoundError("no vGPU: " + id.value());
  if (!it->second.attached.empty()) {
    return FailedPreconditionError("vGPU still attached: " + id.value());
  }
  OnBeforeDeviceChange(it->second);
  if (--node_devices_[it->second.node] == 0) {
    node_devices_.erase(it->second.node);
  }
  entries_.erase(it);
  return Status::Ok();
}

std::optional<GpuId> VgpuPool::DeviceOf(const std::string& sharepod) const {
  auto it = attachments_.find(sharepod);
  if (it == attachments_.end()) return std::nullopt;
  return it->second.device;
}

void VgpuPool::Clear() {
  entries_.clear();
  attachments_.clear();
  idle_.clear();
  affinity_index_.clear();
  node_attached_.clear();
  node_devices_.clear();
  residuals_.clear();
  // next_id_ intentionally survives — see the header comment.
}

void VgpuPool::EnsureNextIdAtLeast(std::uint64_t next) {
  if (next > next_id_) next_id_ = next;
}

std::string VgpuPool::DebugString() const {
  std::string out;
  char buf[64];
  for (const auto& [id, dev] : entries_) {
    out += id.value();
    out += " node=" + dev.node;
    out += " uuid=" + (dev.uuid.has_value() ? dev.uuid->value() : "-");
    out += std::string(" state=") + VgpuStateName(dev.state);
    std::snprintf(buf, sizeof buf, " util=%.6f mem=%.6f", dev.used_util,
                  dev.used_mem);
    out += buf;
    out += " attached=[";
    bool first = true;
    for (const std::string& name : dev.attached) {
      if (!first) out += ",";
      first = false;
      out += name;
    }
    out += "]";
    for (const Label& l : dev.affinity) out += " aff=" + l.value();
    for (const Label& l : dev.anti_affinity) out += " anti=" + l.value();
    if (dev.exclusion.has_value()) out += " excl=" + dev.exclusion->value();
    // Spatial pools dump the slice picture too, so the crash-restart
    // byte-equality tests also pin slice placements. Non-spatial pools
    // keep the pre-spatial format verbatim.
    if (sm_groups_ > 0) out += " slices=" + dev.slices.DebugString();
    out += "\n";
  }
  return out;
}

}  // namespace ks::kubeshare
