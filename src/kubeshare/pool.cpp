#include "kubeshare/pool.hpp"

#include <cassert>

namespace ks::kubeshare {

namespace {
constexpr double kCapacityEps = 1e-9;
}

VgpuInfo& VgpuPool::Create(const std::string& node) {
  // The paper's new_dev() "generates a device variable with a new hashed
  // id"; a counter-derived id is equally unique and keeps runs
  // deterministic.
  GpuId id("vgpu-" + std::to_string(next_id_++));
  VgpuInfo info;
  info.id = id;
  info.node = node;
  auto [it, inserted] = entries_.emplace(id, std::move(info));
  assert(inserted);
  return it->second;
}

Expected<GpuId> VgpuPool::CreateWithId(const GpuId& id,
                                       const std::string& node) {
  if (id.empty()) return InvalidArgumentError("empty GPUID");
  if (entries_.count(id) > 0) {
    return AlreadyExistsError("vGPU exists: " + id.value());
  }
  VgpuInfo info;
  info.id = id;
  info.node = node;
  entries_.emplace(id, std::move(info));
  return id;
}

Expected<VgpuInfo> VgpuPool::Get(const GpuId& id) const {
  auto it = entries_.find(id);
  if (it == entries_.end()) return NotFoundError("no vGPU: " + id.value());
  return it->second;
}

VgpuInfo* VgpuPool::Find(const GpuId& id) {
  auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : &it->second;
}

std::vector<const VgpuInfo*> VgpuPool::List() const {
  std::vector<const VgpuInfo*> out;
  out.reserve(entries_.size());
  for (const auto& [id, info] : entries_) out.push_back(&info);
  return out;
}

std::size_t VgpuPool::CountOnNode(const std::string& node) const {
  std::size_t n = 0;
  for (const auto& [id, info] : entries_) {
    if (info.node == node) ++n;
  }
  return n;
}

Status VgpuPool::Activate(const GpuId& id, const GpuUuid& uuid) {
  VgpuInfo* dev = Find(id);
  if (dev == nullptr) return NotFoundError("no vGPU: " + id.value());
  if (dev->uuid.has_value()) {
    return FailedPreconditionError("vGPU already activated: " + id.value());
  }
  dev->uuid = uuid;
  dev->state = dev->attached.empty() ? VgpuState::kIdle : VgpuState::kActive;
  return Status::Ok();
}

Status VgpuPool::Attach(const GpuId& id, const std::string& sharepod,
                        const vgpu::ResourceSpec& gpu,
                        const LocalitySpec& locality) {
  VgpuInfo* dev = Find(id);
  if (dev == nullptr) return NotFoundError("no vGPU: " + id.value());
  if (attachments_.count(sharepod) > 0) {
    return AlreadyExistsError("sharePod already attached: " + sharepod);
  }
  if (gpu.gpu_request > dev->residual_util() + kCapacityEps) {
    return ResourceExhaustedError("insufficient compute on " + id.value());
  }
  if (!memory_overcommit_ &&
      gpu.gpu_mem > dev->residual_mem() + kCapacityEps) {
    return ResourceExhaustedError("insufficient memory on " + id.value());
  }
  if (dev->exclusion.has_value() && locality.exclusion != dev->exclusion &&
      !dev->attached.empty()) {
    return RejectedError("exclusion label mismatch on " + id.value());
  }
  if (locality.anti_affinity.has_value() &&
      dev->anti_affinity.count(*locality.anti_affinity) > 0) {
    return RejectedError("anti-affinity violation on " + id.value());
  }

  dev->used_util += gpu.gpu_request;
  dev->used_mem += gpu.gpu_mem;
  if (locality.affinity.has_value()) dev->affinity.insert(*locality.affinity);
  if (locality.anti_affinity.has_value()) {
    dev->anti_affinity.insert(*locality.anti_affinity);
  }
  dev->exclusion = locality.exclusion;
  dev->attached.insert(sharepod);
  if (dev->uuid.has_value()) dev->state = VgpuState::kActive;
  attachments_[sharepod] = {id, gpu, locality};
  return Status::Ok();
}

Status VgpuPool::UpdateAttachment(const std::string& sharepod,
                                  double gpu_request, double gpu_limit) {
  auto it = attachments_.find(sharepod);
  if (it == attachments_.end()) {
    return NotFoundError("sharePod not attached: " + sharepod);
  }
  vgpu::ResourceSpec updated = it->second.gpu;
  updated.gpu_request = gpu_request;
  updated.gpu_limit = gpu_limit;
  KS_RETURN_IF_ERROR(updated.Validate());
  VgpuInfo* dev = Find(it->second.device);
  assert(dev != nullptr);
  const double delta = gpu_request - it->second.gpu.gpu_request;
  if (delta > dev->residual_util() + kCapacityEps) {
    return ResourceExhaustedError("insufficient compute on " +
                                  it->second.device.value());
  }
  it->second.gpu = updated;
  dev->used_util += delta;
  return Status::Ok();
}

Expected<GpuId> VgpuPool::Detach(const std::string& sharepod) {
  auto it = attachments_.find(sharepod);
  if (it == attachments_.end()) {
    return NotFoundError("sharePod not attached: " + sharepod);
  }
  const GpuId device = it->second.device;
  attachments_.erase(it);
  VgpuInfo* dev = Find(device);
  if (dev != nullptr) {
    dev->attached.erase(sharepod);
    RecomputeDevice(*dev);
    if (dev->attached.empty() && dev->uuid.has_value()) {
      dev->state = VgpuState::kIdle;
    }
  }
  return device;
}

void VgpuPool::RecomputeDevice(VgpuInfo& dev) {
  dev.used_util = 0.0;
  dev.used_mem = 0.0;
  dev.affinity.clear();
  dev.anti_affinity.clear();
  dev.exclusion.reset();
  for (const std::string& name : dev.attached) {
    const Attachment& a = attachments_.at(name);
    dev.used_util += a.gpu.gpu_request;
    dev.used_mem += a.gpu.gpu_mem;
    if (a.locality.affinity.has_value()) {
      dev.affinity.insert(*a.locality.affinity);
    }
    if (a.locality.anti_affinity.has_value()) {
      dev.anti_affinity.insert(*a.locality.anti_affinity);
    }
    if (a.locality.exclusion.has_value()) dev.exclusion = a.locality.exclusion;
  }
}

Status VgpuPool::Remove(const GpuId& id) {
  auto it = entries_.find(id);
  if (it == entries_.end()) return NotFoundError("no vGPU: " + id.value());
  if (!it->second.attached.empty()) {
    return FailedPreconditionError("vGPU still attached: " + id.value());
  }
  entries_.erase(it);
  return Status::Ok();
}

std::optional<GpuId> VgpuPool::DeviceOf(const std::string& sharepod) const {
  auto it = attachments_.find(sharepod);
  if (it == attachments_.end()) return std::nullopt;
  return it->second.device;
}

}  // namespace ks::kubeshare
