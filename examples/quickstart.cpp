// Quickstart: share one GPU between two containers with KubeShare.
//
// Builds a single-node simulated cluster, installs KubeShare, and submits
// two sharePods whose gpu_requests sum to <= 1.0 — they land on the same
// physical GPU and the token-based device library divides the kernel time
// between them. Walks through the full lifecycle and prints what happens.
//
//   $ ./examples/quickstart

#include <cstdio>

#include "k8s/cluster.hpp"
#include "kubeshare/kubeshare.hpp"
#include "workload/host.hpp"
#include "workload/job.hpp"

using namespace ks;

int main() {
  // 1. A one-node "cluster" with a single V100-like GPU.
  k8s::ClusterConfig config;
  config.nodes = 1;
  config.gpus_per_node = 1;
  k8s::Cluster cluster(config);

  // 2. Install KubeShare (sharePod CRD + the two controllers) — nothing in
  //    the cluster itself is modified.
  kubeshare::KubeShare kubeshare(&cluster);

  // 3. The workload host plays the "application inside the container": it
  //    attaches a job to each container when it starts.
  workload::WorkloadHost host(&cluster);

  if (!cluster.Start().ok() || !kubeshare.Start().ok()) {
    std::fprintf(stderr, "failed to start cluster\n");
    return 1;
  }

  // 4. Two training jobs, each guaranteed 40% of the GPU and allowed to use
  //    up to 70% when the other is idle.
  for (const char* name : {"trainer-a", "trainer-b"}) {
    workload::TrainingSpec spec;
    spec.steps = 3000;              // 30 s of kernels at full speed
    spec.step_kernel = Millis(10);  // one ResNet-style step
    spec.model_bytes = 2ull << 30;
    host.ExpectJob(name, [spec] {
      return std::make_unique<workload::TrainingJob>(spec);
    });

    kubeshare::SharePod sp;
    sp.meta.name = name;
    sp.spec.pod.requests.Set(k8s::kResourceCpu, 2000);
    sp.spec.gpu.gpu_request = 0.4;  // guaranteed minimum
    sp.spec.gpu.gpu_limit = 0.7;    // elastic ceiling
    sp.spec.gpu.gpu_mem = 0.4;      // 40% of device memory
    const Status s = kubeshare.CreateSharePod(sp);
    std::printf("submitted sharePod %-10s: %s\n", name, s.ToString().c_str());
  }

  // 5. Watch the system converge: both jobs share the single GPU.
  for (int t = 5; t <= 120; t += 5) {
    cluster.sim().RunUntil(Seconds(t));
    std::printf("t=%3ds |", t);
    for (const char* name : {"trainer-a", "trainer-b"}) {
      auto sp = kubeshare.sharepods().Get(name);
      double usage = 0.0;
      if (const vgpu::FrontendHook* hook = host.RunningHook(name)) {
        usage = cluster.node(0).token_backend->UsageOf(hook->container());
      }
      std::printf(" %s: %-9s usage=%.2f |", name,
                  SharePodPhaseName(sp->status.phase), usage);
    }
    std::printf(" vGPUs=%zu\n", kubeshare.pool().size());
    if (host.completed() + host.failed() >= 2) break;
  }

  std::printf("\nboth jobs done: %zu succeeded, %zu failed\n",
              host.completed(), host.failed());
  std::printf("vGPU pool after release: %zu entries (on-demand policy "
              "returned the GPU to Kubernetes)\n",
              kubeshare.pool().size());
  return host.completed() == 2 ? 0 : 1;
}
