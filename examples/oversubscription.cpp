// Memory oversubscription: pack four training tenants whose aggregate
// working set is 2.5x physical device memory onto ONE GPU.
//
// With ClusterConfig::oversub enabled, each tenant's cuMemAlloc beyond
// physical capacity is backed by host memory (GPUswap-style paging at
// 2 MiB granularity); a tenant's pages migrate onto the device over the
// shared host<->device link whenever its token is granted. Plain quota
// rotation would move the whole working set every 100 ms — swap
// thrashing. BackendConfig::tq is the nvshare-style counter-measure: a
// thrash detector watches swap bytes per interval and, once tripped,
// rotates an exclusive 30 s time quantum among the memory-pressured
// tenants so each burst pays for one migration instead of hundreds.
//
//   $ ./examples/oversubscription

#include <cstdio>

#include "k8s/cluster.hpp"
#include "kubeshare/kubeshare.hpp"
#include "metrics/swap.hpp"
#include "workload/host.hpp"
#include "workload/job.hpp"

using namespace ks;

namespace {
constexpr int kTenants = 4;
constexpr double kFactor = 2.5;  // aggregate allocation / physical memory
}  // namespace

int main() {
  // 1. One node, one GPU, oversubscription on: allocations may total
  //    2.5x device memory, migrating over a 24 GB/s link. The TQ
  //    anti-thrashing rotation arms alongside it.
  k8s::ClusterConfig config;
  config.nodes = 1;
  config.gpus_per_node = 1;
  config.oversub.enabled = true;
  config.oversub.swap.oversubscription_factor = kFactor;
  config.oversub.swap.link_bandwidth_bytes_per_s = 24e9;
  config.backend.tq.enabled = true;
  k8s::Cluster cluster(config);

  // 2. The scheduler must admit the over-committed placement too:
  //    gpu_mem requests are allowed to total `kFactor` per device.
  kubeshare::KubeShareConfig kcfg;
  kcfg.allow_memory_overcommit = true;
  kcfg.memory_overcommit_factor = kFactor;
  kubeshare::KubeShare kubeshare(&cluster, kcfg);
  workload::WorkloadHost host(&cluster);

  if (!cluster.Start().ok() || !kubeshare.Start().ok()) {
    std::fprintf(stderr, "failed to start cluster\n");
    return 1;
  }

  // 3. Four bursty (phased) training tenants, each sized so the four
  //    working sets together are 2.25x the device: every token hand-off
  //    that crosses tenants must swap.
  const auto capacity =
      static_cast<double>(cluster.config().gpu_spec.memory_bytes);
  for (int i = 0; i < kTenants; ++i) {
    const std::string name = "train-" + std::to_string(i);
    workload::PhasedTrainingSpec spec;
    spec.epochs = 3;
    spec.steps_per_epoch = 100;
    spec.step_kernel = Millis(10);
    spec.io_per_epoch = Millis(500);
    spec.model_bytes =
        static_cast<std::uint64_t>(kFactor * 0.9 / kTenants * capacity);
    host.ExpectJob(name, [spec] {
      return std::make_unique<workload::PhasedTrainingJob>(spec);
    });
    kubeshare::SharePod sp;
    sp.meta.name = name;
    sp.spec.gpu.gpu_request = 1.0 / kTenants;
    sp.spec.gpu.gpu_limit = 1.0;
    sp.spec.gpu.gpu_mem = kFactor * 0.95 / kTenants;
    const Status s = kubeshare.CreateSharePod(sp);
    std::printf("submitted %-8s (%.1f GiB model): %s\n", name.c_str(),
                static_cast<double>(spec.model_bytes) / (1ull << 30),
                s.ToString().c_str());
  }

  // 4. Watch the swap traffic and the thrash detector.
  const auto swap_for = [&host](const GpuUuid& uuid) {
    return host.SwapFor(uuid);
  };
  while (host.completed() + host.failed() <
             static_cast<std::size_t>(kTenants) &&
         cluster.sim().Now() < Seconds(300)) {
    cluster.sim().RunUntil(cluster.sim().Now() + Seconds(10));
    const metrics::SwapMetrics m =
        metrics::CollectSwapMetrics(cluster, swap_for);
    std::printf(
        "t=%5.1fs  resident %4.1f / swapped %4.1f GiB  migrations %4llu "
        "(%6.1f GiB moved)  tq %s\n",
        ToSeconds(cluster.sim().Now()),
        static_cast<double>(m.resident_bytes) / (1ull << 30),
        static_cast<double>(m.swapped_bytes) / (1ull << 30),
        static_cast<unsigned long long>(m.migrations_total),
        static_cast<double>(m.bytes_migrated_total) / (1ull << 30),
        m.devices.empty() || !m.devices.front().tq_engaged ? "off"
                                                           : "ENGAGED");
  }

  // 5. Completion report: with TQ the 2.5x-packed mix finishes in well
  //    under the horizon; rerun with config.backend.tq.enabled = false to
  //    watch the same mix thrash (bench_study_oversub sweeps both).
  const metrics::SwapMetrics m = metrics::CollectSwapMetrics(cluster, swap_for);
  std::printf("\ncompleted %zu / %d tenants, %llu migrations, tq engaged "
              "%llu time(s)\n",
              host.completed(), kTenants,
              static_cast<unsigned long long>(m.migrations_total),
              static_cast<unsigned long long>(m.tq_engagements_total));
  for (int i = 0; i < kTenants; ++i) {
    const std::string name = "train-" + std::to_string(i);
    const auto* rec = host.RecordOf(name);
    if (rec != nullptr && rec->has_finished) {
      std::printf("  %-8s finished at t=%.2fs\n", name.c_str(),
                  ToSeconds(rec->finished));
    }
  }
  return host.completed() == kTenants && m.tq_engagements_total > 0 ? 0 : 1;
}
