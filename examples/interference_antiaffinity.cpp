// Interference & anti-affinity: the paper's §5.5 story in miniature.
//
// Two memory-hungry "Job B" services under-request GPU time (they claim
// 45% but really use 75%). Co-located on one GPU they interfere and slow
// each other ~1.5x. Re-running with an anti-affinity label on them forces
// separate GPUs and removes the interference — the capability only a
// first-class GPU scheduler can offer.
//
//   $ ./examples/interference_antiaffinity

#include <cstdio>

#include "k8s/cluster.hpp"
#include "kubeshare/kubeshare.hpp"
#include "workload/host.hpp"
#include "workload/job.hpp"

using namespace ks;

namespace {

/// Runs the two sensitive jobs (plus a small resilient job occupying a
/// GPU, so "spreading" is not free) and returns their mean execution time.
double RunScenario(bool use_anti_affinity) {
  k8s::ClusterConfig config;
  config.nodes = 1;
  config.gpus_per_node = 2;
  k8s::Cluster cluster(config);
  kubeshare::KubeShare kubeshare(&cluster);
  workload::WorkloadHost host(&cluster);
  if (!cluster.Start().ok() || !kubeshare.Start().ok()) return -1;

  for (int i = 0; i < 2; ++i) {
    const std::string name = "sensitive-" + std::to_string(i);
    // Really needs 75% of a GPU, but only claims 45%.
    workload::InferenceSpec spec =
        workload::InferenceSpec::ForDemand(0.75, 2250, Millis(20));
    spec.seed = 7 + static_cast<std::uint64_t>(i);
    host.ExpectJob(name, [spec] {
      return std::make_unique<workload::InferenceJob>(spec);
    });
    kubeshare::SharePod sp;
    sp.meta.name = name;
    sp.spec.gpu.gpu_request = 0.45;
    sp.spec.gpu.gpu_limit = 0.9;
    sp.spec.gpu.gpu_mem = 0.4;
    if (use_anti_affinity) {
      sp.spec.locality.anti_affinity = Label("sensitive");
    }
    (void)kubeshare.CreateSharePod(sp);
  }

  cluster.sim().RunUntil(Minutes(10));
  double total = 0.0;
  for (int i = 0; i < 2; ++i) {
    const auto* rec = host.RecordOf("sensitive-" + std::to_string(i));
    if (rec == nullptr || !rec->has_finished) return -1;
    total += ToSeconds(rec->finished - rec->started);
  }
  return total / 2.0;
}

}  // namespace

int main() {
  std::printf("scenario 1: no locality labels (best-fit packs both "
              "sensitive jobs\n            onto one GPU)\n");
  const double packed = RunScenario(false);
  std::printf("  mean execution time: %.1f s\n\n", packed);

  std::printf("scenario 2: anti-affinity label on the sensitive jobs\n");
  const double spread = RunScenario(true);
  std::printf("  mean execution time: %.1f s\n\n", spread);

  if (packed <= 0 || spread <= 0) return 1;
  std::printf("interference slowdown removed by anti-affinity: %.2fx -> "
              "1.00x\n", packed / spread);
  std::printf("(the paper's Fig 12 B+B pair: ~1.5x when co-located)\n");
  return 0;
}
