// Adversarial tenant walkthrough: one flooding tenant beside two polite
// ones, and what the isolation enforcer does about it.
//
// Three training sharePods share one GPU. At t=10s the chaos injector
// turns "greedy" hostile: its copy of the device library stops honoring
// token revocation — it overstays every grant and floods kernels at the
// driver. Client-side throttling is exactly what a hostile tenant patches
// out, so containment is server-side:
//   1. the device's per-owner token gate fences the dead grant's epoch —
//      flooded submissions are rejected, not run;
//   2. the fence deadline reclaims the overstayed token and attributes an
//      overstay violation;
//   3. repeat violations clamp the tenant's quota down, then DevMgr evicts
//      it (sharePod -> Failed "Evicted: isolation violations");
//   4. the polite neighbors inherit the reclaimed share.
//
//   $ ./examples/hostile_tenant

#include <cstdio>
#include <iostream>

#include "chaos/fault_plan.hpp"
#include "chaos/injector.hpp"
#include "k8s/cluster.hpp"
#include "kubeshare/kubeshare.hpp"
#include "metrics/isolation.hpp"
#include "workload/host.hpp"
#include "workload/job.hpp"

using namespace ks;

int main() {
  k8s::ClusterConfig config;
  config.nodes = 1;
  config.gpus_per_node = 1;
  config.backend.enforcement.enabled = true;
  k8s::Cluster cluster(config);
  kubeshare::KubeShare kubeshare(&cluster);
  workload::WorkloadHost host(&cluster);
  if (!cluster.Start().ok() || !kubeshare.Start().ok()) return 1;

  const char* tenants[] = {"polite-0", "polite-1", "greedy"};
  for (const char* name : tenants) {
    workload::TrainingSpec spec;
    spec.steps = 4000;  // ~40 s of kernels at a fair 1/3 share
    spec.step_kernel = Millis(10);
    spec.model_bytes = 1ull << 30;
    host.ExpectJob(name, [spec] {
      return std::make_unique<workload::TrainingJob>(spec);
    });
    kubeshare::SharePod sp;
    sp.meta.name = name;
    sp.spec.gpu.gpu_request = 0.3;
    sp.spec.gpu.gpu_limit = 1.0;
    sp.spec.gpu.gpu_mem = 0.2;
    if (!kubeshare.CreateSharePod(sp).ok()) return 1;
  }

  // The scripted attack: greedy ignores revocation from t=10s on.
  chaos::FaultPlan plan;
  for (const chaos::FaultKind kind :
       {chaos::FaultKind::kTenantTokenOverstay,
        chaos::FaultKind::kTenantKernelFlood}) {
    chaos::Fault f;
    f.at = Seconds(10);
    f.kind = kind;
    f.pod = "greedy";
    f.duration = Duration{0};  // hostile until the run ends
    plan.faults.push_back(f);
  }
  chaos::FaultInjector injector(&cluster, plan);
  injector.SetKubeShare(&kubeshare);
  injector.SetWorkloadHost(&host);
  if (!injector.Arm().ok()) return 1;

  vgpu::TokenBackendApi* backend = cluster.node(0).token_backend.get();
  std::printf("    t   polite-0  polite-1    greedy   (server-side usage)\n");
  for (int t = 8; t <= 44; t += 4) {
    cluster.sim().RunUntil(Seconds(t));
    std::printf("  %3ds", t);
    for (const char* name : tenants) {
      const vgpu::FrontendHook* hook = host.RunningHook(name);
      std::printf("  %8.3f",
                  hook ? backend->UsageOf(hook->container()) : 0.0);
    }
    std::printf("%s\n",
                host.RunningHook("greedy") == nullptr ? "   <- evicted" : "");
  }
  cluster.sim().RunUntil(Minutes(3));

  std::printf("\nevent timeline (tail):\n");
  cluster.api().events().Print(std::cout, 16);

  const metrics::IsolationMetrics iso =
      metrics::CollectIsolationMetrics(cluster, &kubeshare);
  std::printf("\nisolation summary:\n");
  std::printf("  violations attributed     : %llu (overstays %llu, fenced "
              "submits %llu)\n",
              static_cast<unsigned long long>(iso.violations_total),
              static_cast<unsigned long long>(iso.overstays),
              static_cast<unsigned long long>(iso.fenced_submits));
  std::printf("  fenced kernel rejections  : %llu\n",
              static_cast<unsigned long long>(iso.fenced_kernel_rejections));
  std::printf("  quota clamp-downs         : %llu\n",
              static_cast<unsigned long long>(iso.clampdowns_total));
  std::printf("  tenants evicted           : %llu\n",
              static_cast<unsigned long long>(iso.tenants_evicted));
  std::printf("  jobs completed / failed   : %zu / %zu\n", host.completed(),
              host.failed());
  std::printf("\nthe attack cost the attacker its pod, not its neighbors "
              "their share:\nboth polite tenants finished, greedy's sharePod "
              "is Failed (\"Evicted\").\n");
  return host.completed() == 2 && iso.tenants_evicted == 1 ? 0 : 1;
}
