// ksim — run a declarative KubeShare scenario.
//
//   $ ./examples/ksim scenario.ksim     # run a script
//   $ ./examples/ksim --example         # print a sample script
//   $ ./examples/ksim --example | ./examples/ksim -   # run the sample
//
// The scenario language (clusters, kubeshare policies, jobs with locality
// labels, reports) is documented in src/scenario/scenario.hpp.

#include <fstream>
#include <iostream>
#include <sstream>

#include "scenario/scenario.hpp"

int main(int argc, char** argv) {
  using ks::scenario::Scenario;

  if (argc != 2) {
    std::cerr << "usage: " << argv[0] << " <scenario-file | - | --example>\n";
    return 2;
  }
  const std::string arg = argv[1];
  if (arg == "--example") {
    std::cout << Scenario::ExampleScript();
    return 0;
  }

  std::stringstream buffer;
  if (arg == "-") {
    buffer << std::cin.rdbuf();
  } else {
    std::ifstream file(arg);
    if (!file) {
      std::cerr << "cannot open " << arg << "\n";
      return 2;
    }
    buffer << file.rdbuf();
  }

  auto scenario = Scenario::Parse(buffer);
  if (!scenario.ok()) {
    std::cerr << "parse error: " << scenario.status() << "\n";
    return 1;
  }
  const ks::Status run = scenario->Run(std::cout);
  if (!run.ok()) {
    std::cerr << "runtime error: " << run << "\n";
    return 1;
  }
  return 0;
}
