// Spatial sharing: run three tenants concurrently on ONE GPU with
// MIG-style slices instead of time-slicing the whole device.
//
// Two small-kernel tenants (kernels that saturate a single SM group) each
// claim a 1-group slice, and a large-kernel tenant claims a dedicated
// 4-group slice. With spatial sharing enabled, the token daemon grants all
// three tenants compute tokens *at the same time* — each runs on its own
// SM groups — instead of rotating a single whole-GPU token among them.
//
//   $ ./examples/spatial_sharing

#include <cstdio>

#include "k8s/cluster.hpp"
#include "kubeshare/kubeshare.hpp"
#include "workload/host.hpp"
#include "workload/job.hpp"

using namespace ks;

namespace {
constexpr int kSmGroups = 7;  // A100 MIG compute-slice granularity
}

int main() {
  // 1. A one-node cluster with a single GPU, carved into 7 SM groups.
  k8s::ClusterConfig config;
  config.nodes = 1;
  config.gpus_per_node = 1;
  config.spatial.enabled = true;
  config.spatial.sm_groups = kSmGroups;
  k8s::Cluster cluster(config);
  kubeshare::KubeShare kubeshare(&cluster);
  workload::WorkloadHost host(&cluster);

  if (!cluster.Start().ok() || !kubeshare.Start().ok()) {
    std::fprintf(stderr, "failed to start cluster\n");
    return 1;
  }

  // 2. Three tenants. slice_groups on the sharePod is the spatial claim;
  //    sm_demand on the job says how many SMs its kernels can actually
  //    use (as a fraction of the device), so a right-sized slice runs the
  //    kernel at full speed.
  struct TenantSpec {
    const char* name;
    int slice_groups;
    double sm_demand;
    double gpu_request;
  };
  const TenantSpec tenants[] = {
      {"small-a", 1, 1.0 / kSmGroups, 0.14},
      {"small-b", 1, 1.0 / kSmGroups, 0.14},
      {"large", 4, 4.0 / kSmGroups, 0.55},
  };
  for (const TenantSpec& t : tenants) {
    workload::TrainingSpec spec;
    spec.steps = 800;               // 8 s of kernels at full slice speed
    spec.step_kernel = Millis(10);
    spec.sm_demand = t.sm_demand;
    spec.model_bytes = 1ull << 30;
    host.ExpectJob(t.name, [spec] {
      return std::make_unique<workload::TrainingJob>(spec);
    });

    kubeshare::SharePod sp;
    sp.meta.name = t.name;
    sp.spec.gpu.gpu_request = t.gpu_request;
    sp.spec.gpu.gpu_limit = 1.0;
    sp.spec.gpu.gpu_mem = 0.15;
    sp.spec.gpu.slice_groups = t.slice_groups;
    const Status s = kubeshare.CreateSharePod(sp);
    std::printf("submitted %-8s (slice=%d/%d groups): %s\n", t.name,
                t.slice_groups, kSmGroups, s.ToString().c_str());
  }

  // 3. Watch the slices fill and the tokens overlap.
  std::size_t peak_tokens = 0;
  for (int tick = 0; tick < 24; ++tick) {
    cluster.sim().RunUntil(cluster.sim().Now() + Millis(500));
    peak_tokens = std::max(
        peak_tokens, cluster.node(0).token_backend->peak_active_holders());
    if (tick % 4 == 3) {
      std::printf("t=%4.1fs  concurrent tokens (peak so far): %zu\n",
                  ToSeconds(cluster.sim().Now()), peak_tokens);
      for (const kubeshare::VgpuInfo* dev : kubeshare.pool().List()) {
        std::printf("         %s slices [%s]  (# used, . free)\n",
                    dev->id.value().c_str(),
                    dev->slices.DebugString().c_str());
      }
    }
    if (host.completed() + host.failed() >= 3) break;
  }
  cluster.sim().Run();

  // 4. Completion report. All three tenants ran concurrently: the two
  //    small ones on their 1-group slices at full per-SM speed while the
  //    large one kept its dedicated 4-group slice — no whole-GPU token
  //    rotation, no idle SMs while a small kernel holds the device.
  std::printf("\ncompleted %zu / 3 tenants, peak concurrent tokens %zu\n",
              host.completed(), peak_tokens);
  for (const TenantSpec& t : tenants) {
    const auto* rec = host.RecordOf(t.name);
    if (rec != nullptr && rec->has_finished) {
      std::printf("  %-8s finished at t=%.2fs\n", t.name,
                  ToSeconds(rec->finished));
    }
  }
  return host.completed() == 3 && peak_tokens == 3 ? 0 : 1;
}
