// Training cluster: distributed training with affinity groups.
//
// A parameter-server-style training job has four workers that should share
// one GPU (cheap gradient exchange), plus two independent jobs from other
// teams that must never share with anyone (exclusion labels). Shows how
// the Script-1 locality constraints drive placement on a 2-node cluster.
//
//   $ ./examples/training_cluster

#include <cstdio>

#include "k8s/cluster.hpp"
#include "kubeshare/kubeshare.hpp"
#include "workload/host.hpp"
#include "workload/job.hpp"

using namespace ks;

namespace {

void Submit(kubeshare::KubeShare& kubeshare, workload::WorkloadHost& host,
            const std::string& name, double request,
            kubeshare::LocalitySpec locality) {
  workload::TrainingSpec spec;
  spec.steps = 2000;
  spec.step_kernel = Millis(10);
  spec.model_bytes = 1ull << 30;
  host.ExpectJob(name, [spec] {
    return std::make_unique<workload::TrainingJob>(spec);
  });
  kubeshare::SharePod sp;
  sp.meta.name = name;
  sp.spec.gpu.gpu_request = request;
  sp.spec.gpu.gpu_limit = 1.0;
  sp.spec.gpu.gpu_mem = 0.2;
  sp.spec.locality = std::move(locality);
  const Status s = kubeshare.CreateSharePod(sp);
  if (!s.ok()) std::printf("submit %s failed: %s\n", name.c_str(),
                           s.ToString().c_str());
}

}  // namespace

int main() {
  k8s::ClusterConfig config;
  config.nodes = 2;
  config.gpus_per_node = 2;
  k8s::Cluster cluster(config);
  kubeshare::KubeShare kubeshare(&cluster);
  workload::WorkloadHost host(&cluster);
  if (!cluster.Start().ok() || !kubeshare.Start().ok()) return 1;

  // Four co-trained workers: affinity forces them onto ONE GPU.
  for (int i = 0; i < 4; ++i) {
    kubeshare::LocalitySpec locality;
    locality.affinity = Label("resnet-workers");
    Submit(kubeshare, host, "worker-" + std::to_string(i), 0.2, locality);
  }
  // Two tenants that demand dedicated devices: exclusion labels.
  {
    kubeshare::LocalitySpec locality;
    locality.exclusion = Label("team-red");
    Submit(kubeshare, host, "red-train", 0.5, locality);
  }
  {
    kubeshare::LocalitySpec locality;
    locality.exclusion = Label("team-blue");
    Submit(kubeshare, host, "blue-train", 0.5, locality);
  }

  cluster.sim().RunUntil(Seconds(30));
  std::printf("placements:\n");
  for (const kubeshare::SharePod& sp : kubeshare.sharepods().List()) {
    std::printf("  %-10s -> vGPU %-8s on %-7s (%s)\n", sp.meta.name.c_str(),
                sp.spec.gpu_id.value().c_str(), sp.spec.node_name.c_str(),
                SharePodPhaseName(sp.status.phase));
  }
  std::printf("\nvGPU pool:\n");
  for (const kubeshare::VgpuInfo* dev : kubeshare.pool().List()) {
    std::printf("  %-8s on %-7s used_util=%.2f attached=%zu%s\n",
                dev->id.value().c_str(), dev->node.c_str(), dev->used_util,
                dev->attached.size(),
                dev->exclusion.has_value()
                    ? (" exclusion=" + dev->exclusion->value()).c_str()
                    : "");
  }

  cluster.sim().RunUntil(Minutes(10));
  std::printf("\nall jobs finished: %zu succeeded, %zu failed\n",
              host.completed(), host.failed());
  std::printf("the four affinity workers shared one GPU; each exclusion "
              "tenant had\nits own device.\n");
  return host.completed() == 6 ? 0 : 1;
}
