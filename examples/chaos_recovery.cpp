// Chaos recovery: a node crash in the middle of a training run.
//
// Six training sharePods spread over a 3-node cluster; at t=10s node-1 is
// hard-crashed (containers, kubelet and token daemon die together) and
// comes back 15 s later. Watch the recovery chain in the event timeline:
// node-controller detection -> eviction ("NodeLost") -> DevMgr reclaiming
// the dead node's vGPUs and requeuing its sharePods -> re-scheduling onto
// the survivors -> every job finishing anyway.
//
//   $ ./examples/chaos_recovery

#include <cstdio>
#include <iostream>

#include "chaos/fault_plan.hpp"
#include "chaos/injector.hpp"
#include "k8s/cluster.hpp"
#include "kubeshare/kubeshare.hpp"
#include "metrics/recovery.hpp"
#include "workload/host.hpp"
#include "workload/job.hpp"

using namespace ks;

int main() {
  k8s::ClusterConfig config;
  config.nodes = 3;
  config.gpus_per_node = 2;
  config.node_detection = Seconds(2);
  config.pod_eviction_timeout = Seconds(3);
  config.component_resync = Seconds(2);
  k8s::Cluster cluster(config);

  kubeshare::KubeShareConfig kcfg;
  kcfg.reconcile_period = Seconds(2);
  kcfg.requeue_lost_workloads = true;
  kubeshare::KubeShare kubeshare(&cluster, kcfg);
  workload::WorkloadHost host(&cluster);
  if (!cluster.Start().ok() || !kubeshare.Start().ok()) return 1;

  constexpr int kJobs = 6;
  for (int i = 0; i < kJobs; ++i) {
    const std::string name = "train-" + std::to_string(i);
    workload::TrainingSpec spec;
    spec.steps = 1500;
    spec.step_kernel = Millis(10);
    spec.model_bytes = 1ull << 30;
    host.ExpectJob(name, [spec] {
      return std::make_unique<workload::TrainingJob>(spec);
    });
    kubeshare::SharePod sp;
    sp.meta.name = name;
    sp.spec.gpu.gpu_request = 0.4;
    sp.spec.gpu.gpu_limit = 1.0;
    sp.spec.gpu.gpu_mem = 0.3;
    if (!kubeshare.CreateSharePod(sp).ok()) return 1;
  }

  // The scripted fault: node-1 dies mid-training, back 15 s later.
  chaos::FaultPlan plan;
  chaos::Fault crash;
  crash.at = Seconds(10);
  crash.kind = chaos::FaultKind::kNodeCrash;
  crash.node = "node-1";
  crash.duration = Seconds(15);
  plan.faults.push_back(crash);
  chaos::FaultInjector injector(&cluster, plan);
  if (!injector.Arm().ok()) return 1;

  const Time deadline = Minutes(10);
  while (cluster.sim().Now() < deadline &&
         host.completed() + host.failed() < kJobs) {
    cluster.sim().RunUntil(cluster.sim().Now() + Seconds(1));
  }
  cluster.sim().RunUntil(cluster.sim().Now() + Seconds(5));

  std::printf("event timeline (tail):\n");
  cluster.api().events().Print(std::cout, 40);

  const metrics::RecoveryMetrics rec =
      metrics::CollectRecoveryMetrics(cluster, &kubeshare);
  std::printf("\nrecovery summary:\n");
  std::printf("  jobs completed / failed   : %zu / %zu\n", host.completed(),
              host.failed());
  std::printf("  container restarts        : %zu\n", host.restarts());
  std::printf("  vGPUs reclaimed           : %llu\n",
              static_cast<unsigned long long>(rec.vgpus_reclaimed));
  std::printf("  sharePods requeued        : %llu\n",
              static_cast<unsigned long long>(rec.sharepods_requeued));
  std::printf("  token daemon restarts     : %llu\n",
              static_cast<unsigned long long>(rec.backend_restarts));
  std::printf("  mean time to drain node   : %s\n",
              FormatTime(injector.stats().MeanTimeToRecovery()).c_str());
  std::printf("\nthe crash cost time, not jobs: everything that was running "
              "on node-1\nwas requeued and finished elsewhere or after the "
              "node returned.\n");
  return host.completed() == kJobs ? 0 : 1;
}
