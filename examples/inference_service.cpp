// Inference service: TF-Serving-style model servers behind KubeShare.
//
// Three inference services with different client request rates share two
// GPUs. Each service's GPU demand is proportional to its request rate
// (paper Fig 5), so KubeShare packs them by their declared gpu_requests
// and the device library throttles/elastically shares at runtime.
//
//   $ ./examples/inference_service

#include <cstdio>

#include "gpu/nvml.hpp"
#include "k8s/cluster.hpp"
#include "kubeshare/kubeshare.hpp"
#include "workload/host.hpp"
#include "workload/job.hpp"

using namespace ks;

int main() {
  k8s::ClusterConfig config;
  config.nodes = 1;
  config.gpus_per_node = 2;
  k8s::Cluster cluster(config);
  kubeshare::KubeShare kubeshare(&cluster);
  workload::WorkloadHost host(&cluster);
  if (!cluster.Start().ok() || !kubeshare.Start().ok()) return 1;
  cluster.nvml().Start();

  struct Service {
    const char* name;
    double request_rate_hz;  // client requests per second
    double gpu_request;      // declared demand
  };
  // demand = rate * 20ms kernel: 0.5, 0.3, 0.2. The declared requests add
  // headroom over the measured demand; Algorithm 1's best-fit packs the
  // detector into the segmenter's residual capacity (0.75 + 0.25 = 1.0)
  // and the classifier gets the second GPU.
  const Service services[] = {
      {"segmenter", 25.0, 0.75},
      {"classifier", 15.0, 0.35},
      {"detector", 10.0, 0.25},
  };

  for (const Service& svc : services) {
    workload::InferenceSpec spec;
    spec.request_rate_hz = svc.request_rate_hz;
    spec.kernel_per_request = Millis(20);
    spec.total_requests = static_cast<int>(svc.request_rate_hz * 300);
    spec.model_bytes = 3ull << 30;
    spec.seed = 42;
    host.ExpectJob(svc.name, [spec] {
      return std::make_unique<workload::InferenceJob>(spec);
    });

    kubeshare::SharePod sp;
    sp.meta.name = svc.name;
    sp.spec.gpu.gpu_request = svc.gpu_request;
    sp.spec.gpu.gpu_limit = 1.0;  // may absorb residual capacity
    sp.spec.gpu.gpu_mem = 0.25;
    (void)kubeshare.CreateSharePod(sp);
  }

  cluster.sim().RunUntil(Seconds(60));
  std::printf("placements after 60s:\n");
  for (const Service& svc : services) {
    auto sp = kubeshare.sharepods().Get(svc.name);
    std::printf("  %-10s -> vGPU %-8s on %s (%s)\n", svc.name,
                sp->spec.gpu_id.value().c_str(), sp->spec.node_name.c_str(),
                SharePodPhaseName(sp->status.phase));
  }

  cluster.sim().RunUntil(Seconds(310));
  std::printf("\nserved requests after 310s:\n");
  for (const Service& svc : services) {
    const auto* rec = host.RecordOf(svc.name);
    std::printf("  %-10s finished=%s\n", svc.name,
                (rec != nullptr && rec->has_finished) ? "yes" : "no");
  }
  std::printf("\nper-GPU utilization (NVML):\n");
  for (int g = 0; g < 2; ++g) {
    const GpuUuid uuid("GPU-0-" + std::to_string(g));
    std::printf("  %s: %.2f\n", uuid.value().c_str(),
                cluster.nvml().AverageUtilization(uuid));
  }
  std::printf("\nEach service's usage tracks its client request rate; "
              "best-fit packed\nthe detector into the segmenter's residual "
              "GPU capacity.\n");
  return 0;
}
