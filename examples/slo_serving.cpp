// SLO-driven serving under a flash crowd: admission control + autoscaler.
//
// One inference service (10 ms/request replicas, p99 SLO 250 ms) faces a
// flash crowd: 50 rps baseline spiking to 300 rps for 25 seconds. Two
// runs:
//   static  two replicas, no admission — the backlog during the crowd
//           pushes p99 to seconds and most crowd-era requests blow the
//           SLO;
//   auto    the token daemon sheds at the door once observed p99 crosses
//           90% of the SLO, while the SloAutoscaler scales the replicaset
//           toward 8 on p99 headroom — served requests stay near the
//           target and the violation rate drops.
// Ends with the ks_slo_* Prometheus families for the auto run.
//
//   $ ./examples/slo_serving

#include <cstdio>
#include <iostream>
#include <memory>
#include <string>

#include "k8s/cluster.hpp"
#include "kubeshare/autoscaler.hpp"
#include "kubeshare/replicaset.hpp"
#include "metrics/slo.hpp"
#include "serving/service.hpp"
#include "workload/host.hpp"

using namespace ks;

namespace {

void RunMode(bool autoscale, bool dump_metrics) {
  k8s::ClusterConfig ccfg;
  ccfg.nodes = 2;
  ccfg.gpus_per_node = 2;
  if (autoscale) {
    ccfg.backend.admission.enabled = true;
    ccfg.backend.admission.policy = vgpu::AdmissionConfig::Policy::kShed;
  }
  k8s::Cluster cluster(ccfg);
  kubeshare::KubeShare kubeshare(&cluster);
  workload::WorkloadHost host(&cluster);
  if (!cluster.Start().ok() || !kubeshare.Start().ok()) return;

  serving::ServiceConfig cfg;
  cfg.name = "bert-serve";
  cfg.envelope = serving::RateEnvelope::FlashCrowd(
      50.0, 300.0, Seconds(20.0), Seconds(2.0), Seconds(25.0));
  cfg.clients = 3000;  // 0.1 rps per client at the crowd's peak
  cfg.slo_p99 = Millis(250);
  cfg.until = Seconds(60.0);
  cfg.replica.kernel_per_request = Millis(10);
  cfg.replica.model_bytes = 256ull << 20;
  serving::ServiceFrontend frontend(&cluster, &host, cfg);

  kubeshare::SharePodReplicaSet::Spec spec;
  spec.name = "bert-serve";
  spec.replicas = 2;
  spec.template_spec.gpu.gpu_request = 0.45;
  spec.template_spec.gpu.gpu_limit = 1.0;
  spec.template_spec.gpu.gpu_mem = 0.15;
  kubeshare::SharePodReplicaSet rs(&kubeshare, spec);
  rs.SetReplicaHook(frontend.MakeReplicaHook());
  if (!rs.Start().ok()) return;

  std::unique_ptr<kubeshare::SloAutoscaler> scaler;
  if (autoscale) {
    kubeshare::AutoscalerConfig acfg;
    acfg.slo_p99 = cfg.slo_p99;
    acfg.min_replicas = 1;
    acfg.max_replicas = 8;
    scaler = std::make_unique<kubeshare::SloAutoscaler>(
        &cluster.sim(), cluster.tick_hub(), &rs, acfg,
        frontend.MakeAutoscalerProbe());
    if (!scaler->Start().ok()) return;
  }
  frontend.Start();

  std::printf("%s\n", autoscale
                          ? "--- auto: admission (shed @ 90% of SLO) + "
                            "autoscaler (1..8 replicas) ---"
                          : "--- static: 2 replicas, no admission ---");
  std::printf("%6s %9s %9s %6s %6s %9s %9s %8s\n", "t", "arrived", "served",
              "shed", "repl", "p99(ms)", "win p99", "viol%");
  for (int t = 10; t <= 120; t += 10) {
    cluster.sim().RunUntil(Seconds(t));
    const metrics::ServiceSloSample s = frontend.Sample();
    std::printf("%5ds %9llu %9llu %6llu %6d %9.1f %9.1f %7.2f%%\n", t,
                static_cast<unsigned long long>(s.arrived),
                static_cast<unsigned long long>(s.served),
                static_cast<unsigned long long>(s.shed), rs.desired(),
                s.p99_s * 1e3, frontend.ObservedP99Seconds() * 1e3,
                s.violation_rate * 100.0);
    if (t > 60 && frontend.Drained()) break;
  }

  const metrics::ServiceSloSample s = frontend.Sample();
  std::printf("final: p50 %.1f ms  p99 %.1f ms  p99.9 %.1f ms  "
              "violation rate %.2f%%\n\n",
              s.p50_s * 1e3, s.p99_s * 1e3, s.p999_s * 1e3,
              s.violation_rate * 100.0);

  if (dump_metrics) {
    metrics::PrometheusExporter exporter;
    metrics::ExportSloMetrics(
        metrics::CollectSloMetrics(cluster, {frontend.Sample()}), exporter);
    std::printf("--- ks_slo_* exposition (auto run) ---\n");
    exporter.Write(std::cout);
  }
}

}  // namespace

int main() {
  std::printf("flash crowd: 50 rps baseline, 300 rps for 25 s starting at "
              "t=20 s;\n10 ms/request replicas, p99 SLO 250 ms.\n\n");
  RunMode(/*autoscale=*/false, /*dump_metrics=*/false);
  RunMode(/*autoscale=*/true, /*dump_metrics=*/true);
  std::printf("\nStatic provisioning melts during the crowd (p99 in the "
              "seconds); the\nadmission door plus the autoscaler keep served "
              "latency near the target\nand cut the violation rate.\n");
  return 0;
}
