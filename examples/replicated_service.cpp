// Replicated inference service: a higher-level controller over sharePods.
//
// The paper argues (§4.6) that because KubeShare's controllers wrap the
// kubelet, "any higher level controllers (e.g. replication controller)
// can seamlessly integrate ... by requesting a sharePod instead of the
// native pod". This example runs a SharePodReplicaSet keeping three
// fractional-GPU model servers alive: replicas that finish (or die) are
// replaced automatically, and a scale-up packs new replicas onto the
// shared GPUs.
//
//   $ ./examples/replicated_service

#include <cstdio>

#include "k8s/cluster.hpp"
#include "kubeshare/replicaset.hpp"
#include "workload/host.hpp"
#include "workload/job.hpp"

using namespace ks;

int main() {
  k8s::ClusterConfig config;
  config.nodes = 1;
  config.gpus_per_node = 2;
  k8s::Cluster cluster(config);
  kubeshare::KubeShare kubeshare(&cluster);
  workload::WorkloadHost host(&cluster);
  if (!cluster.Start().ok() || !kubeshare.Start().ok()) return 1;

  kubeshare::SharePodReplicaSet::Spec spec;
  spec.name = "resnet-serve";
  spec.replicas = 3;
  spec.template_spec.gpu.gpu_request = 0.3;
  spec.template_spec.gpu.gpu_limit = 0.8;
  spec.template_spec.gpu.gpu_mem = 0.3;
  kubeshare::SharePodReplicaSet replicaset(&kubeshare, spec);

  // Each replica serves a finite batch of requests, then exits — so the
  // controller continuously replaces finished replicas (a crash-looping
  // service would behave the same way).
  replicaset.SetReplicaHook([&](const std::string& name) {
    workload::InferenceSpec job = workload::InferenceSpec::ForDemand(
        0.3, /*total_requests=*/450, Millis(20));
    job.seed = std::hash<std::string>{}(name);
    host.ExpectJob(name, [job] {
      return std::make_unique<workload::InferenceJob>(job);
    });
  });
  if (!replicaset.Start().ok()) return 1;

  auto report = [&](int t) {
    int running = 0;
    for (const kubeshare::SharePod& sp : kubeshare.sharepods().List()) {
      if (sp.status.phase == kubeshare::SharePodPhase::kRunning) ++running;
    }
    std::printf("t=%3ds desired=%d live=%zu running=%d vGPUs=%zu "
                "replicas-created=%llu\n",
                t, replicaset.desired(), replicaset.live(), running,
                kubeshare.pool().size(),
                static_cast<unsigned long long>(replicaset.created_total()));
  };

  for (int t = 15; t <= 90; t += 15) {
    cluster.sim().RunUntil(Seconds(t));
    report(t);
  }

  std::printf("\nscaling up to 5 replicas...\n");
  replicaset.Scale(5);
  for (int t = 105; t <= 150; t += 15) {
    cluster.sim().RunUntil(Seconds(t));
    report(t);
  }

  std::printf("\nscaling down to 0 and draining...\n");
  replicaset.Scale(0);
  cluster.sim().RunUntil(Seconds(200));
  report(200);
  std::printf("\nGPUs were shared by up to 5 replicas; finished replicas "
              "were replaced\nwithout any change to the cluster's native "
              "controllers.\n");
  return 0;
}
