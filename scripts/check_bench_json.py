#!/usr/bin/env python3
"""Validate BENCH_*.json benchmark reports (schema ks-bench/1).

Usage: check_bench_json.py FILE [FILE...]

Checks, per file:
  * parses as JSON, top level is an object;
  * "schema" == "ks-bench/1";
  * "study" is a non-empty string and matches the BENCH_<study>.json
    file name;
  * "rows" is a non-empty list of objects;
  * every row value is a JSON scalar (no nested containers);
  * numeric values are finite (the writer turns NaN/Inf into null, so a
    bare NaN in the text means a corrupt file);
  * rows of the same (study) agree on their key sets, so downstream
    tooling can treat the rows as a table;
  * studies whose rows come from full cluster runs (study_chaos,
    ablation_placement, fig9) report a positive integer "total_events"
    in every row, so event-count regressions across timer modes stay
    visible in the archived reports;
  * fig9 rows carry non-empty "exec" and "workload" discriminators (the
    device-engine comparison must stay in the archived report);
  * spatial rows carry a non-empty "mix" and a "mode" of "temporal" or
    "spatial", plus finite non-negative "goodput", "goodput_gain" and
    "fragmentation_ratio" (in [0, 1]) and a non-negative integer
    "concurrent_tokens_peak" — the goodput/fragmentation comparison is
    the study's reason to exist and must not silently drop out;
  * the engine study's cluster-scenario rows ("pattern" of
    "token-cluster" or "kernel-cluster") report a positive integer
    "total_events", so the per-mode event counts the fused device
    engine is benchmarked on cannot silently vanish;
  * isolation rows carry a "mode" of baseline|unenforced|enforced, a
    non-empty "tenant", a boolean "hostile", finite non-negative "usage"
    and "ratio_vs_baseline", and non-negative integer enforcement
    counters; the study's acceptance gate is also enforced here — every
    polite tenant keeps >= 95% of its baseline usage when enforcement is
    on (and enforcement visibly engaged: violations_total > 0), while
    with enforcement off the attack collapses at least one polite
    tenant below 80% — a report where enforcement makes no difference
    means the subsystem silently stopped working;
  * oversub rows carry a "mode" of share|tq, a finite positive "factor"
    and "completion_time_s", non-negative integer migration counters,
    and a "link_busy_fraction" in [0, 1]; the study's acceptance gate is
    also enforced here — the tq run at factor 2.5 completes every job
    within 2x the 1.0x baseline's time, while the share run at 2.5
    demonstrates swap-thrashing (>= 2x the tq time, or incomplete) — a
    report where TQ makes no difference means the anti-thrashing
    subsystem silently stopped working;
  * serving rows come in two kinds. Cluster rows (pattern of
    steady|diurnal|flash-crowd) carry a "mode" of static|auto, finite
    non-negative latency percentiles (p50 <= p99 <= p99.9), a
    "slo_violation_rate" in [0, 1], non-negative request counters with
    arrived == served + shed + lost (every request reaches a terminal
    state), and a positive "replicas_peak". Generator rows (pattern
    "arrivals") carry a "mode" of per-request|batched, positive
    "clients"/"arrivals"/"engine_events" and a positive
    "events_per_request". Two acceptance gates are enforced on the
    report itself: on the flash crowd the autoscaler+admission run's
    violation rate beats static provisioning's, and at the largest
    client count the batched generator costs >= 5x fewer engine events
    per request than the per-request reference — a report where either
    stops holding means the serving subsystem silently stopped earning
    its keep;
  * scale rows (the 10k-node / 100k-sharePod soak) carry a non-empty
    "engine", finite positive "events_per_sec", finite non-negative
    "sched_p99_ms" and "speedup_vs_single", a positive integer
    "total_events", and zero for the hard invariants
    ("lookahead_violations", "mirror_divergence",
    "watch_order_violations") — a nonzero invariant is a correctness
    bug published as a perf number, which is the one thing this report
    must never do.

Exit status 0 when every file passes, 1 otherwise. Stdlib only.
"""

import json
import math
import os
import sys


def fail(path, msg):
    print(f"{path}: {msg}", file=sys.stderr)
    return False


def check_isolation_gate(path, rows):
    """The isolation study's acceptance gate, enforced on the report itself:
    polite tenants keep >= 95% of baseline usage under enforcement, and the
    unenforced run demonstrates the collapse enforcement prevents."""
    ok = True
    polite = [r for r in rows
              if isinstance(r, dict) and r.get("hostile") is False]
    enforced = [r for r in polite if r.get("mode") == "enforced"]
    unenforced = [r for r in polite if r.get("mode") == "unenforced"]
    if not enforced or not unenforced:
        return fail(path, "isolation report lacks enforced/unenforced "
                          "polite-tenant rows")
    for r in enforced:
        ratio = r.get("ratio_vs_baseline")
        if not isinstance(ratio, (int, float)) or isinstance(ratio, bool) \
                or ratio < 0.95:
            ok = fail(
                path,
                f"enforced polite tenant {r.get('tenant')!r} kept only "
                f"{ratio!r} of its baseline usage (gate: >= 0.95)",
            )
        violations = r.get("violations_total")
        if not isinstance(violations, int) or violations <= 0:
            ok = fail(path, "enforced rows report violations_total == 0 — "
                            "enforcement never engaged")
    if not any(isinstance(r.get("ratio_vs_baseline"), (int, float))
               and not isinstance(r.get("ratio_vs_baseline"), bool)
               and r.get("ratio_vs_baseline") < 0.8 for r in unenforced):
        ok = fail(path, "no unenforced polite tenant fell below 0.8x "
                        "baseline — the attack had no visible effect")
    return ok


def check_oversub_gate(path, rows):
    """The oversubscription study's acceptance gate: the TQ rotation keeps
    a 2.5x-oversubscribed bursty mix within 2x of the fits-in-memory
    baseline, and the plain-sharing run at 2.5x shows the thrashing
    collapse TQ prevents."""
    def pick(mode, factor):
        for r in rows:
            if isinstance(r, dict) and r.get("mode") == mode \
                    and r.get("factor") == factor:
                return r
        return None

    base = pick("tq", 1.0)
    tq = pick("tq", 2.5)
    share = pick("share", 2.5)
    if base is None or tq is None or share is None:
        return fail(path, "oversub report lacks the factor 1.0/2.5 rows "
                          "the gate compares")
    ok = True
    for name, r in (("baseline", base), ("tq@2.5", tq)):
        if r.get("completed") != r.get("jobs"):
            ok = fail(path, f"{name} row left jobs incomplete: "
                            f"{r.get('completed')!r}/{r.get('jobs')!r}")
    base_t = base.get("completion_time_s")
    tq_t = tq.get("completion_time_s")
    share_t = share.get("completion_time_s")
    times_ok = all(isinstance(t, (int, float)) and not isinstance(t, bool)
                   and t > 0 for t in (base_t, tq_t, share_t))
    if not times_ok:
        return fail(path, "oversub gate rows carry non-positive or missing "
                          "completion_time_s")
    if tq_t > 2.0 * base_t:
        ok = fail(
            path,
            f"tq completion at 2.5x ({tq_t}s) exceeds 2x the 1.0x "
            f"baseline ({base_t}s) — the TQ rotation stopped containing "
            f"the migration overhead",
        )
    collapsed = share.get("completed") != share.get("jobs") \
        or share_t >= 2.0 * tq_t
    if not collapsed:
        ok = fail(
            path,
            f"share completion at 2.5x ({share_t}s) shows no thrashing "
            f"collapse vs tq ({tq_t}s) — the workload no longer "
            f"exercises the oversubscribed regime",
        )
    if not isinstance(tq.get("tq_engagements"), int) \
            or tq.get("tq_engagements") <= 0:
        ok = fail(path, "tq@2.5 row reports tq_engagements == 0 — the "
                        "thrash detector never engaged")
    return ok


def check_serving_gate(path, rows):
    """The serving study's acceptance gates: the autoscaler+admission run
    beats static provisioning on flash-crowd SLO-violation rate, and the
    batched arrival generator costs >= 5x fewer engine events per request
    than the per-request reference at the largest client count."""
    def rate(mode):
        for r in rows:
            if isinstance(r, dict) and r.get("pattern") == "flash-crowd" \
                    and r.get("mode") == mode:
                return r.get("slo_violation_rate")
        return None

    ok = True
    static_rate = rate("static")
    auto_rate = rate("auto")
    rates_ok = all(isinstance(v, (int, float)) and not isinstance(v, bool)
                   for v in (static_rate, auto_rate))
    if not rates_ok:
        ok = fail(path, "serving report lacks the flash-crowd static/auto "
                        "rows the gate compares")
    elif auto_rate >= static_rate:
        ok = fail(
            path,
            f"flash-crowd violation rate under autoscaler+admission "
            f"({auto_rate}) does not beat static provisioning "
            f"({static_rate}) — the control loop stopped earning its keep",
        )

    gen = [r for r in rows
           if isinstance(r, dict) and r.get("pattern") == "arrivals"]
    largest = 0
    for r in gen:
        clients = r.get("clients")
        if isinstance(clients, int) and not isinstance(clients, bool):
            largest = max(largest, clients)

    def events(mode):
        for r in gen:
            if r.get("clients") == largest and r.get("mode") == mode:
                return r.get("events_per_request")
        return None

    per_request = events("per-request")
    batched = events("batched")
    events_ok = all(isinstance(v, (int, float)) and not isinstance(v, bool)
                    and v > 0 for v in (per_request, batched))
    if largest == 0 or not events_ok:
        ok = fail(path, "serving report lacks the per-request/batched "
                        "generator rows the gate compares")
    elif batched * 5.0 > per_request:
        ok = fail(
            path,
            f"batched generator at {largest} clients costs "
            f"{batched} events/request vs {per_request} per-request — "
            f"less than the 5x reduction the batching exists to deliver",
        )
    return ok


# Studies whose every row is produced by a whole-cluster run and must carry
# the engine's scheduled-event count.
TOTAL_EVENTS_REQUIRED = {"study_chaos", "ablation_placement", "fig9",
                         "spatial", "scale", "isolation", "oversub",
                         "serving"}


def check_file(path):
    try:
        with open(path, "rb") as f:
            report = json.load(f)
    except (OSError, ValueError) as e:
        return fail(path, f"unreadable or invalid JSON: {e}")

    if not isinstance(report, dict):
        return fail(path, "top level is not an object")
    if report.get("schema") != "ks-bench/1":
        return fail(path, f"bad schema tag: {report.get('schema')!r}")

    study = report.get("study")
    if not isinstance(study, str) or not study:
        return fail(path, "missing or empty \"study\"")
    expected_name = f"BENCH_{study}.json"
    if os.path.basename(path) != expected_name:
        return fail(path, f"file name does not match study (want {expected_name})")

    rows = report.get("rows")
    if not isinstance(rows, list) or not rows:
        return fail(path, "\"rows\" missing, not a list, or empty")

    ok = True
    key_sets = {}
    for i, row in enumerate(rows):
        if not isinstance(row, dict) or not row:
            ok = fail(path, f"row {i} is not a non-empty object")
            continue
        for key, value in row.items():
            if isinstance(value, (dict, list)):
                ok = fail(path, f"row {i} field {key!r} is a nested container")
            if isinstance(value, float) and not math.isfinite(value):
                ok = fail(path, f"row {i} field {key!r} is not finite")
        needs_events = study in TOTAL_EVENTS_REQUIRED or (
            study == "engine"
            and row.get("pattern") in ("token-cluster", "kernel-cluster"))
        if needs_events:
            events = row.get("total_events")
            if not isinstance(events, int) or isinstance(events, bool) \
                    or events <= 0:
                ok = fail(
                    path,
                    f"row {i} \"total_events\" missing or not a positive "
                    f"integer: {events!r}",
                )
        if study == "fig9":
            for field in ("exec", "workload"):
                value = row.get(field)
                if not isinstance(value, str) or not value:
                    ok = fail(
                        path,
                        f"row {i} {field!r} missing or not a non-empty "
                        f"string: {value!r}",
                    )
        if study == "spatial":
            mix = row.get("mix")
            if not isinstance(mix, str) or not mix:
                ok = fail(path, f"row {i} \"mix\" missing or empty: {mix!r}")
            if row.get("mode") not in ("temporal", "spatial"):
                ok = fail(
                    path,
                    f"row {i} \"mode\" must be temporal|spatial: "
                    f"{row.get('mode')!r}",
                )
            for field in ("goodput", "goodput_gain", "fragmentation_ratio"):
                value = row.get(field)
                if not isinstance(value, (int, float)) \
                        or isinstance(value, bool) or value < 0:
                    ok = fail(
                        path,
                        f"row {i} {field!r} missing or not a non-negative "
                        f"number: {value!r}",
                    )
            frag = row.get("fragmentation_ratio")
            if isinstance(frag, (int, float)) and not isinstance(frag, bool) \
                    and frag > 1:
                ok = fail(path, f"row {i} \"fragmentation_ratio\" > 1: {frag!r}")
            tokens = row.get("concurrent_tokens_peak")
            if not isinstance(tokens, int) or isinstance(tokens, bool) \
                    or tokens < 0:
                ok = fail(
                    path,
                    f"row {i} \"concurrent_tokens_peak\" missing or not a "
                    f"non-negative integer: {tokens!r}",
                )
        if study == "isolation":
            if row.get("mode") not in ("baseline", "unenforced", "enforced"):
                ok = fail(
                    path,
                    f"row {i} \"mode\" must be baseline|unenforced|enforced: "
                    f"{row.get('mode')!r}",
                )
            tenant = row.get("tenant")
            if not isinstance(tenant, str) or not tenant:
                ok = fail(path,
                          f"row {i} \"tenant\" missing or empty: {tenant!r}")
            if not isinstance(row.get("hostile"), bool):
                ok = fail(
                    path,
                    f"row {i} \"hostile\" missing or not a boolean: "
                    f"{row.get('hostile')!r}",
                )
            for field in ("usage", "ratio_vs_baseline"):
                value = row.get(field)
                if not isinstance(value, (int, float)) \
                        or isinstance(value, bool) or value < 0:
                    ok = fail(
                        path,
                        f"row {i} {field!r} missing or not a non-negative "
                        f"number: {value!r}",
                    )
            for field in ("violations_total", "fenced_rejections",
                          "clampdowns_total", "evictions_total"):
                value = row.get(field)
                if not isinstance(value, int) or isinstance(value, bool) \
                        or value < 0:
                    ok = fail(
                        path,
                        f"row {i} {field!r} missing or not a non-negative "
                        f"integer: {value!r}",
                    )
        if study == "oversub":
            if row.get("mode") not in ("share", "tq"):
                ok = fail(
                    path,
                    f"row {i} \"mode\" must be share|tq: {row.get('mode')!r}",
                )
            for field in ("factor", "completion_time_s"):
                value = row.get(field)
                if not isinstance(value, (int, float)) \
                        or isinstance(value, bool) or value <= 0:
                    ok = fail(
                        path,
                        f"row {i} {field!r} missing or not a positive "
                        f"number: {value!r}",
                    )
            for field in ("jobs", "completed", "migrations",
                          "bytes_migrated", "tq_engagements"):
                value = row.get(field)
                if not isinstance(value, int) or isinstance(value, bool) \
                        or value < 0:
                    ok = fail(
                        path,
                        f"row {i} {field!r} missing or not a non-negative "
                        f"integer: {value!r}",
                    )
            busy = row.get("link_busy_fraction")
            if not isinstance(busy, (int, float)) or isinstance(busy, bool) \
                    or busy < 0 or busy > 1:
                ok = fail(
                    path,
                    f"row {i} \"link_busy_fraction\" missing or outside "
                    f"[0, 1]: {busy!r}",
                )
        if study == "serving":
            pattern = row.get("pattern")
            if pattern == "arrivals":
                if row.get("mode") not in ("per-request", "batched"):
                    ok = fail(
                        path,
                        f"row {i} \"mode\" must be per-request|batched: "
                        f"{row.get('mode')!r}",
                    )
                for field in ("clients", "arrivals", "engine_events"):
                    value = row.get(field)
                    if not isinstance(value, int) or isinstance(value, bool) \
                            or value <= 0:
                        ok = fail(
                            path,
                            f"row {i} {field!r} missing or not a positive "
                            f"integer: {value!r}",
                        )
                epr = row.get("events_per_request")
                if not isinstance(epr, (int, float)) \
                        or isinstance(epr, bool) or epr <= 0:
                    ok = fail(
                        path,
                        f"row {i} \"events_per_request\" missing or not a "
                        f"positive number: {epr!r}",
                    )
            else:
                if pattern not in ("steady", "diurnal", "flash-crowd"):
                    ok = fail(
                        path,
                        f"row {i} \"pattern\" must be steady|diurnal|"
                        f"flash-crowd|arrivals: {pattern!r}",
                    )
                if row.get("mode") not in ("static", "auto"):
                    ok = fail(
                        path,
                        f"row {i} \"mode\" must be static|auto: "
                        f"{row.get('mode')!r}",
                    )
                percentiles = []
                for field in ("p50_ms", "p99_ms", "p999_ms"):
                    value = row.get(field)
                    if not isinstance(value, (int, float)) \
                            or isinstance(value, bool) or value < 0:
                        ok = fail(
                            path,
                            f"row {i} {field!r} missing or not a "
                            f"non-negative number: {value!r}",
                        )
                    else:
                        percentiles.append(value)
                if len(percentiles) == 3 and \
                        not (percentiles[0] <= percentiles[1]
                             <= percentiles[2]):
                    ok = fail(
                        path,
                        f"row {i} percentiles are not monotone: "
                        f"{percentiles!r}",
                    )
                rate = row.get("slo_violation_rate")
                if not isinstance(rate, (int, float)) \
                        or isinstance(rate, bool) or rate < 0 or rate > 1:
                    ok = fail(
                        path,
                        f"row {i} \"slo_violation_rate\" missing or outside "
                        f"[0, 1]: {rate!r}",
                    )
                counters = {}
                for field in ("arrived", "served", "shed", "lost"):
                    value = row.get(field)
                    if not isinstance(value, int) or isinstance(value, bool) \
                            or value < 0:
                        ok = fail(
                            path,
                            f"row {i} {field!r} missing or not a "
                            f"non-negative integer: {value!r}",
                        )
                    else:
                        counters[field] = value
                if len(counters) == 4 and counters["arrived"] != \
                        counters["served"] + counters["shed"] \
                        + counters["lost"]:
                    ok = fail(
                        path,
                        f"row {i} leaks requests: arrived "
                        f"{counters['arrived']} != served + shed + lost "
                        f"{counters['served'] + counters['shed'] + counters['lost']}",
                    )
                peak = row.get("replicas_peak")
                if not isinstance(peak, int) or isinstance(peak, bool) \
                        or peak <= 0:
                    ok = fail(
                        path,
                        f"row {i} \"replicas_peak\" missing or not a "
                        f"positive integer: {peak!r}",
                    )
        if study == "scale":
            engine = row.get("engine")
            if not isinstance(engine, str) or not engine:
                ok = fail(path,
                          f"row {i} \"engine\" missing or empty: {engine!r}")
            eps = row.get("events_per_sec")
            if not isinstance(eps, (int, float)) or isinstance(eps, bool) \
                    or eps <= 0:
                ok = fail(
                    path,
                    f"row {i} \"events_per_sec\" missing or not a positive "
                    f"number: {eps!r}",
                )
            for field in ("sched_p99_ms", "speedup_vs_single"):
                value = row.get(field)
                if not isinstance(value, (int, float)) \
                        or isinstance(value, bool) or value < 0:
                    ok = fail(
                        path,
                        f"row {i} {field!r} missing or not a non-negative "
                        f"number: {value!r}",
                    )
            for field in ("lookahead_violations", "mirror_divergence",
                          "watch_order_violations"):
                value = row.get(field)
                if value != 0 or isinstance(value, bool):
                    ok = fail(
                        path,
                        f"row {i} invariant {field!r} must be 0: {value!r}",
                    )
        # Rows may legitimately differ in shape between row kinds (e.g.
        # bench_engine's per-engine rows vs its summary row, or its
        # token-cluster vs kernel-cluster scenario rows); group by the
        # discriminator fields that are present.
        kind = (row.get("pattern"), row.get("engine"), row.get("mode"),
                row.get("policy"))
        keys = frozenset(row.keys())
        if kind in key_sets and key_sets[kind] != keys:
            ok = fail(
                path,
                f"row {i} key set {sorted(keys)} differs from earlier "
                f"rows of the same kind {sorted(key_sets[kind])}",
            )
        key_sets.setdefault(kind, keys)
    if study == "isolation":
        ok = check_isolation_gate(path, rows) and ok
    if study == "oversub":
        ok = check_oversub_gate(path, rows) and ok
    if study == "serving":
        ok = check_serving_gate(path, rows) and ok
    return ok


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 1
    all_ok = True
    for path in argv[1:]:
        if check_file(path):
            print(f"{path}: ok")
        else:
            all_ok = False
    return 0 if all_ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
